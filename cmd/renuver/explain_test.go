package main

import (
	"bufio"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

func TestExplainCellText(t *testing.T) {
	in := writeTemp(t, "dirty.csv", dirtyCSV)
	rfds := writeTemp(t, "sigma.rfd", sigmaFile)
	var out strings.Builder
	err := explainCell(explainConfig{
		in: in, rfds: rfds, order: "asc", verify: "lhs",
		row: 7, attr: "Phone", logger: quietLogger(),
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	// Example 5.9: t3's phone is closest but violates Phone->Class; the
	// trace must show the veto and the eventual resolution from t2.
	for _, want := range []string{
		"cell (row 7, Phone)", "cluster threshold", "candidate row",
		"violates", "resolved", "310-392-9025",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("explain output missing %q:\n%s", want, text)
		}
	}
}

func TestExplainCellJSON(t *testing.T) {
	in := writeTemp(t, "dirty.csv", dirtyCSV)
	rfds := writeTemp(t, "sigma.rfd", sigmaFile)
	var out strings.Builder
	err := explainCell(explainConfig{
		in: in, rfds: rfds, order: "asc", verify: "lhs",
		row: 7, attr: "Phone", asJSON: true, logger: quietLogger(),
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(out.String()))
	var kinds []string
	for sc.Scan() {
		var ev struct {
			Kind string `json:"kind"`
			Row  int    `json:"row"`
			Attr int    `json:"attr"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		if ev.Row != 6 || ev.Attr != 2 {
			t.Errorf("event for cell (%d,%d), want (6,2)", ev.Row, ev.Attr)
		}
		kinds = append(kinds, ev.Kind)
	}
	if len(kinds) == 0 || kinds[0] != "cell_started" || kinds[len(kinds)-1] != "cell_resolved" {
		t.Errorf("event kinds = %v", kinds)
	}
}

func TestExplainCellErrors(t *testing.T) {
	in := writeTemp(t, "dirty.csv", dirtyCSV)
	rfds := writeTemp(t, "sigma.rfd", sigmaFile)
	var out strings.Builder

	// Non-missing cell: nothing to explain.
	err := explainCell(explainConfig{
		in: in, rfds: rfds, order: "asc", verify: "lhs",
		row: 1, attr: "Phone", logger: quietLogger(),
	}, &out)
	if err == nil || !strings.Contains(err.Error(), "not missing") {
		t.Errorf("non-missing cell error = %v", err)
	}

	// Unknown attribute.
	err = explainCell(explainConfig{
		in: in, rfds: rfds, order: "asc", verify: "lhs",
		row: 7, attr: "Nope", logger: quietLogger(),
	}, &out)
	if err == nil || !strings.Contains(err.Error(), "unknown attribute") {
		t.Errorf("unknown attribute error = %v", err)
	}

	// Row out of range.
	err = explainCell(explainConfig{
		in: in, rfds: rfds, order: "asc", verify: "lhs",
		row: 99, attr: "Phone", logger: quietLogger(),
	}, &out)
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("out-of-range error = %v", err)
	}

	// Missing input file.
	err = explainCell(explainConfig{
		in: filepath.Join(t.TempDir(), "gone.csv"), order: "asc", verify: "lhs",
		row: 1, attr: "Phone", logger: quietLogger(),
	}, &out)
	if err == nil {
		t.Error("missing input accepted")
	}
}

func TestExplainPositionalAttr(t *testing.T) {
	// -attr also accepts a 1-based position: Phone is column 3.
	in := writeTemp(t, "dirty.csv", dirtyCSV)
	rfds := writeTemp(t, "sigma.rfd", sigmaFile)
	var out strings.Builder
	err := explainCell(explainConfig{
		in: in, rfds: rfds, order: "asc", verify: "lhs",
		row: 4, attr: "3", logger: quietLogger(),
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "cell (row 4, Phone)") {
		t.Errorf("positional attr output:\n%s", out.String())
	}
}
