// Command renuver imputes the missing values of a CSV (or JSON-lines)
// file with the RENUVER algorithm. Files ending in .jsonl/.ndjson are
// read and written as newline-delimited JSON; everything else is CSV.
//
// Usage:
//
//	renuver -in dirty.csv -out clean.csv [-rfds sigma.rfd] [-threshold 15]
//	        [-order asc|desc] [-verify lhs|both|off] [-report] [-stats]
//	renuver explain -in dirty.csv -row 7 -attr Phone [-rfds sigma.rfd]
//	renuver compile -in base.csv -out base.rnv [-rfds sigma.rfd]
//	renuver delta -artifact base.rnv -delta changes.json [-out next.rnv]
//	renuver serve -metrics-addr 127.0.0.1:8080 -in base.csv [-rfds sigma.rfd]
//	renuver serve -metrics-addr 127.0.0.1:8080 -artifact base.rnv
//
// When -rfds is omitted the RFDcs are discovered on the input first
// (threshold limit -threshold). With -report, per-cell imputation
// provenance is printed to stderr; with -stats, the run's counters and
// per-phase wall clock are printed as JSON to stderr. Progress goes to
// stderr as structured log lines (-log-json switches them to JSON).
//
// The explain form re-runs imputation with the provenance tracer focused
// on one cell and prints its full decision trace — which RFDc clusters
// applied, which donors were considered at what Eq. 2 distance, which
// candidate a dependency vetoed (and the witness tuple), and how the
// cell resolved. See explain.go.
//
// The compile form precompiles a base instance plus its (discovered or
// loaded) RFDc set into a versioned binary session artifact — see
// compile.go. The delta form applies a JSON mutation batch (the same
// shape the server's POST /v1/delta accepts) to an artifact offline and
// re-encodes the evolved session — see delta.go. The serve form starts
// a long-lived imputation service:
// POST a CSV (or a JSON tuple batch) to /impute, read cumulative
// metrics on /metrics (JSON, or Prometheus text format via Accept),
// fetch the latest decision trace on /trace/last, and profile via
// /debug/pprof — see serve.go. With -artifact it boots from a compiled
// artifact near-instantly, skipping discovery and compilation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"strings"

	renuver "repro"
)

// version identifies the build; override it at link time with
// `-ldflags "-X main.version=v1.2.3"`. It is reported by -version and
// exported as the renuver_build_info metric of `renuver serve`.
var version = "dev"

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "-version", "--version", "version":
			fmt.Printf("renuver %s %s levenshtein_kernel=%s artifact_format=v%d\n",
				version, runtime.Version(), renuver.ActiveKernelName(), renuver.ArtifactFormatVersion)
			return
		case "compile":
			if err := runCompile(os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "renuver compile:", err)
				os.Exit(1)
			}
			return
		case "serve":
			if err := runServe(os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "renuver serve:", err)
				os.Exit(1)
			}
			return
		case "delta":
			if err := runDelta(os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "renuver delta:", err)
				os.Exit(1)
			}
			return
		case "explain":
			if err := runExplain(os.Args[2:]); err != nil {
				fmt.Fprintln(os.Stderr, "renuver explain:", err)
				os.Exit(1)
			}
			return
		}
	}
	var cfg runConfig
	var logJSON bool
	flag.StringVar(&cfg.in, "in", "", "input CSV with missing values (required)")
	flag.StringVar(&cfg.out, "out", "", "output CSV (default: stdout)")
	flag.StringVar(&cfg.rfds, "rfds", "", "RFDc set file; discovered from the input when omitted")
	flag.Float64Var(&cfg.threshold, "threshold", 15, "discovery threshold limit when -rfds is omitted")
	flag.IntVar(&cfg.maxLHS, "maxlhs", 2, "discovery LHS size limit when -rfds is omitted")
	flag.StringVar(&cfg.order, "order", "asc", "RHS-threshold cluster order: asc (paper prose) or desc (Algorithm 2 literal)")
	flag.StringVar(&cfg.verify, "verify", "lhs", "IS_FAULTLESS scope: lhs (Algorithm 4), both, off")
	flag.BoolVar(&cfg.report, "report", false, "print per-cell imputation provenance to stderr")
	flag.BoolVar(&cfg.stats, "stats", false, "print run counters and per-phase wall clock as JSON to stderr")
	flag.StringVar(&cfg.saveRFDs, "save-rfds", "", "write the (discovered) RFDc set to this file")
	flag.IntVar(&cfg.workers, "workers", 0, "parallel workers: tuple scans (0 = serial) and discovery (0 = all CPUs; output identical)")
	flag.IntVar(&cfg.shards, "shards", 0, "discovery pattern shards and donor-pool sub-indexes (0 = unsharded; output identical for any value)")
	flag.StringVar(&cfg.donors, "donors", "", "comma-separated reference CSVs for the multi-dataset extension")
	flag.BoolVar(&logJSON, "log-json", false, "emit progress logs as JSON lines")
	flag.Parse()
	if cfg.in == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := validateParallelism("-workers", cfg.workers); err != nil {
		fmt.Fprintln(os.Stderr, "renuver:", err)
		os.Exit(2)
	}
	if err := validateParallelism("-shards", cfg.shards); err != nil {
		fmt.Fprintln(os.Stderr, "renuver:", err)
		os.Exit(2)
	}
	cfg.logger = newLogger(logJSON)
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "renuver:", err)
		os.Exit(1)
	}
}

// newLogger builds the progress logger: human-readable key=value lines
// by default, one JSON object per line under -log-json. Both go to
// stderr so stdout stays reserved for the imputed relation.
func newLogger(jsonLines bool) *slog.Logger {
	if jsonLines {
		return slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	return slog.New(slog.NewTextHandler(os.Stderr, nil))
}

// loadRelation reads CSV or (by .jsonl/.ndjson extension) JSON lines.
func loadRelation(path string) (*renuver.Relation, error) {
	if strings.HasSuffix(path, ".jsonl") || strings.HasSuffix(path, ".ndjson") {
		return renuver.LoadJSONLinesFile(path)
	}
	return renuver.LoadCSVFile(path)
}

// saveRelation writes CSV or (by extension) JSON lines.
func saveRelation(path string, rel *renuver.Relation) error {
	if strings.HasSuffix(path, ".jsonl") || strings.HasSuffix(path, ".ndjson") {
		return renuver.SaveJSONLinesFile(path, rel)
	}
	return renuver.SaveCSVFile(path, rel)
}

// runConfig carries the one-shot imputation flags.
type runConfig struct {
	in, out   string
	rfds      string
	saveRFDs  string
	threshold float64
	maxLHS    int
	order     string
	verify    string
	report    bool
	stats     bool
	workers   int
	shards    int
	donors    string
	logger    *slog.Logger
}

// prepareSigma loads Σ from cfg.rfds or discovers it on the input.
func prepareSigma(cfg *runConfig, rel *renuver.Relation) (renuver.RFDSet, error) {
	if cfg.rfds != "" {
		sigma, err := renuver.LoadRFDsFile(cfg.rfds, rel.Schema())
		if err != nil {
			return nil, err
		}
		cfg.logger.Info("loaded RFDcs", "count", len(sigma), "path", cfg.rfds)
		return sigma, nil
	}
	sigma, err := renuver.DiscoverRFDs(rel, renuver.DiscoveryOptions{
		MaxThreshold: cfg.threshold, MaxLHS: cfg.maxLHS, Workers: cfg.workers,
		Shards: cfg.shards,
	})
	if err != nil {
		return nil, err
	}
	cfg.logger.Info("discovered RFDcs", "count", len(sigma), "threshold_limit", cfg.threshold)
	return sigma, nil
}

func run(cfg runConfig) error {
	if cfg.logger == nil {
		cfg.logger = newLogger(false)
	}
	rel, err := loadRelation(cfg.in)
	if err != nil {
		return err
	}
	cfg.logger.Info("loaded input",
		"tuples", rel.Len(), "attributes", rel.Schema().Len(), "missing_cells", rel.CountMissing())

	sigma, err := prepareSigma(&cfg, rel)
	if err != nil {
		return err
	}
	if cfg.saveRFDs != "" {
		if err := renuver.SaveRFDsFile(cfg.saveRFDs, sigma, rel.Schema()); err != nil {
			return err
		}
	}

	opts, err := imputerOptions(cfg.order, cfg.verify, cfg.workers, cfg.shards)
	if err != nil {
		return err
	}

	var res *renuver.Result
	if cfg.donors != "" {
		var pool []*renuver.Relation
		for _, path := range strings.Split(cfg.donors, ",") {
			donor, err := loadRelation(strings.TrimSpace(path))
			if err != nil {
				return err
			}
			pool = append(pool, donor)
		}
		res, err = renuver.NewImputer(sigma, opts...).ImputeWithDonors(rel, pool)
	} else {
		res, err = renuver.Impute(rel, sigma, opts...)
	}
	if err != nil {
		return err
	}
	cfg.logger.Info("imputation done",
		"imputed", res.Stats.Imputed, "missing", res.Stats.MissingCells,
		"key_rfds_filtered", res.Stats.KeyRFDs, "verify_rejections", res.Stats.VerifyRejections)
	if cfg.report {
		fmt.Fprint(os.Stderr, res.Report(rel.Schema()))
	}
	if cfg.stats {
		doc, err := json.MarshalIndent(res.Stats, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "%s\n", doc)
	}

	if cfg.out == "" {
		return renuver.SaveCSV(os.Stdout, res.Relation)
	}
	return saveRelation(cfg.out, res.Relation)
}
