// Command renuver imputes the missing values of a CSV (or JSON-lines)
// file with the RENUVER algorithm. Files ending in .jsonl/.ndjson are
// read and written as newline-delimited JSON; everything else is CSV.
//
// Usage:
//
//	renuver -in dirty.csv -out clean.csv [-rfds sigma.rfd] [-threshold 15]
//	        [-order asc|desc] [-verify lhs|both|off] [-report] [-stats]
//	renuver serve -metrics-addr 127.0.0.1:8080 -in base.csv [-rfds sigma.rfd]
//
// When -rfds is omitted the RFDcs are discovered on the input first
// (threshold limit -threshold). With -report, per-cell imputation
// provenance is printed to stderr; with -stats, the run's counters and
// per-phase wall clock are printed as JSON to stderr.
//
// The serve form starts a long-lived imputation service: POST a CSV to
// /impute, read cumulative metrics on /metrics, and profile via
// /debug/pprof — see serve.go.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	renuver "repro"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		if err := runServe(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "renuver serve:", err)
			os.Exit(1)
		}
		return
	}
	var (
		in        = flag.String("in", "", "input CSV with missing values (required)")
		out       = flag.String("out", "", "output CSV (default: stdout)")
		rfds      = flag.String("rfds", "", "RFDc set file; discovered from the input when omitted")
		threshold = flag.Float64("threshold", 15, "discovery threshold limit when -rfds is omitted")
		maxLHS    = flag.Int("maxlhs", 2, "discovery LHS size limit when -rfds is omitted")
		order     = flag.String("order", "asc", "RHS-threshold cluster order: asc (paper prose) or desc (Algorithm 2 literal)")
		verify    = flag.String("verify", "lhs", "IS_FAULTLESS scope: lhs (Algorithm 4), both, off")
		report    = flag.Bool("report", false, "print per-cell imputation provenance to stderr")
		stats     = flag.Bool("stats", false, "print run counters and per-phase wall clock as JSON to stderr")
		saveRFDs  = flag.String("save-rfds", "", "write the (discovered) RFDc set to this file")
		workers   = flag.Int("workers", 0, "parallel tuple-scan workers (0 = serial)")
		donors    = flag.String("donors", "", "comma-separated reference CSVs for the multi-dataset extension")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*in, *out, *rfds, *saveRFDs, *threshold, *maxLHS, *order, *verify, *report, *stats, *workers, *donors); err != nil {
		fmt.Fprintln(os.Stderr, "renuver:", err)
		os.Exit(1)
	}
}

// loadRelation reads CSV or (by .jsonl/.ndjson extension) JSON lines.
func loadRelation(path string) (*renuver.Relation, error) {
	if strings.HasSuffix(path, ".jsonl") || strings.HasSuffix(path, ".ndjson") {
		return renuver.LoadJSONLinesFile(path)
	}
	return renuver.LoadCSVFile(path)
}

// saveRelation writes CSV or (by extension) JSON lines.
func saveRelation(path string, rel *renuver.Relation) error {
	if strings.HasSuffix(path, ".jsonl") || strings.HasSuffix(path, ".ndjson") {
		return renuver.SaveJSONLinesFile(path, rel)
	}
	return renuver.SaveCSVFile(path, rel)
}

func run(in, out, rfds, saveRFDs string, threshold float64, maxLHS int, order, verify string, report, stats bool, workers int, donors string) error {
	rel, err := loadRelation(in)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loaded %d tuples x %d attributes, %d missing cells\n",
		rel.Len(), rel.Schema().Len(), rel.CountMissing())

	var sigma renuver.RFDSet
	if rfds != "" {
		sigma, err = renuver.LoadRFDsFile(rfds, rel.Schema())
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "loaded %d RFDcs from %s\n", len(sigma), rfds)
	} else {
		sigma, err = renuver.DiscoverRFDs(rel, renuver.DiscoveryOptions{
			MaxThreshold: threshold, MaxLHS: maxLHS,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "discovered %d RFDcs (threshold limit %g)\n", len(sigma), threshold)
	}
	if saveRFDs != "" {
		if err := renuver.SaveRFDsFile(saveRFDs, sigma, rel.Schema()); err != nil {
			return err
		}
	}

	var opts []renuver.Option
	switch order {
	case "asc":
	case "desc":
		opts = append(opts, renuver.WithClusterOrder(renuver.DescendingThreshold))
	default:
		return fmt.Errorf("unknown -order %q", order)
	}
	switch verify {
	case "lhs":
	case "both":
		opts = append(opts, renuver.WithVerifyMode(renuver.VerifyBothSides))
	case "off":
		opts = append(opts, renuver.WithVerifyMode(renuver.VerifyOff))
	default:
		return fmt.Errorf("unknown -verify %q", verify)
	}

	if workers > 1 {
		opts = append(opts, renuver.WithWorkers(workers))
	}

	var res *renuver.Result
	if donors != "" {
		var pool []*renuver.Relation
		for _, path := range strings.Split(donors, ",") {
			donor, err := loadRelation(strings.TrimSpace(path))
			if err != nil {
				return err
			}
			pool = append(pool, donor)
		}
		res, err = renuver.NewImputer(sigma, opts...).ImputeWithDonors(rel, pool)
	} else {
		res, err = renuver.Impute(rel, sigma, opts...)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "imputed %d/%d cells (%d key-RFDcs filtered, %d verify rejections)\n",
		res.Stats.Imputed, res.Stats.MissingCells, res.Stats.KeyRFDs, res.Stats.VerifyRejections)
	if report {
		fmt.Fprint(os.Stderr, res.Report(rel.Schema()))
	}
	if stats {
		doc, err := json.MarshalIndent(res.Stats, "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "%s\n", doc)
	}

	if out == "" {
		return renuver.SaveCSV(os.Stdout, res.Relation)
	}
	return saveRelation(out, res.Relation)
}
