package main

import (
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"testing"

	renuver "repro"
)

const dirtyCSV = `Name,City,Phone,Type,Class
Granita,Malibu,310/456-0488,Californian,6
Chinois Main,LA,310-392-9025,French,5
Citrus,Los Angeles,213/857-0034,Californian,6
Citrus,Los Angeles,,Californian,6
Fenix,Hollywood,213/848-6677,,5
Fenix Argyle,,213/848-6677,French (new),5
C. Main,Los Angeles,,French,5
`

const sigmaFile = `Name(<=8), Phone(<=0), Class(<=1) -> Type(<=0)
Class(<=0) -> Type(<=5)
City(<=2) -> Phone(<=2)
Name(<=4) -> Phone(<=1)
Name(<=8), Phone(<=0) -> City(<=9)
Name(<=6), City(<=9) -> Phone(<=0)
Phone(<=1) -> Class(<=0)
`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// quietLogger keeps test output free of progress lines.
func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// testRun adapts the old positional signature to runConfig.
func testRun(in, out, rfds, saveRFDs string, threshold float64, maxLHS int,
	order, verify string, report, stats bool, workers int, donors string) error {
	return run(runConfig{
		in: in, out: out, rfds: rfds, saveRFDs: saveRFDs,
		threshold: threshold, maxLHS: maxLHS, order: order, verify: verify,
		report: report, stats: stats, workers: workers, donors: donors,
		logger: quietLogger(),
	})
}

func TestRunWithProvidedRFDs(t *testing.T) {
	in := writeTemp(t, "dirty.csv", dirtyCSV)
	rfds := writeTemp(t, "sigma.rfd", sigmaFile)
	out := filepath.Join(t.TempDir(), "clean.csv")
	if err := testRun(in, out, rfds, "", 15, 2, "asc", "lhs", false, false, 0, ""); err != nil {
		t.Fatal(err)
	}
	rel, err := renuver.LoadCSVFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if rel.CountMissing() != 0 {
		t.Errorf("%d cells left missing", rel.CountMissing())
	}
	phone := rel.Schema().MustIndex("Phone")
	if got := rel.Get(6, phone).Str(); got != "310-392-9025" {
		t.Errorf("t7[Phone] = %q", got)
	}
}

func TestRunWithDiscovery(t *testing.T) {
	in := writeTemp(t, "dirty.csv", dirtyCSV)
	out := filepath.Join(t.TempDir(), "clean.csv")
	saved := filepath.Join(t.TempDir(), "sigma.rfd")
	if err := testRun(in, out, "", saved, 9, 2, "asc", "both", true, false, 2, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Errorf("output not written: %v", err)
	}
	data, err := os.ReadFile(saved)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "->") {
		t.Errorf("saved RFDs look wrong: %q", string(data)[:50])
	}
}

func TestRunBadFlags(t *testing.T) {
	in := writeTemp(t, "dirty.csv", dirtyCSV)
	rfds := writeTemp(t, "sigma.rfd", sigmaFile)
	if err := testRun(in, "", rfds, "", 15, 2, "sideways", "lhs", false, false, 0, ""); err == nil {
		t.Error("bad -order accepted")
	}
	if err := testRun(in, "", rfds, "", 15, 2, "asc", "maybe", false, false, 0, ""); err == nil {
		t.Error("bad -verify accepted")
	}
	if err := testRun(filepath.Join(t.TempDir(), "missing.csv"), "", "", "", 15, 2, "asc", "lhs", false, false, 0, ""); err == nil {
		t.Error("missing input accepted")
	}
	if err := testRun(in, "", filepath.Join(t.TempDir(), "missing.rfd"), "", 15, 2, "asc", "lhs", false, false, 0, ""); err == nil {
		t.Error("missing RFD file accepted")
	}
}

func TestRunJSONLinesInAndOut(t *testing.T) {
	in := writeTemp(t, "dirty.jsonl",
		`{"A":"x","B":"v1"}
{"A":"x","B":null}
`)
	rfdsFile := writeTemp(t, "sigma.rfd", "A(<=0) -> B(<=0)\n")
	out := filepath.Join(t.TempDir(), "clean.jsonl")
	if err := testRun(in, out, rfdsFile, "", 15, 2, "asc", "lhs", false, false, 0, ""); err != nil {
		t.Fatal(err)
	}
	rel, err := renuver.LoadJSONLinesFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if rel.CountMissing() != 0 {
		t.Errorf("%d cells left missing in JSON output", rel.CountMissing())
	}
	if got := rel.Get(1, 1).Str(); got != "v1" {
		t.Errorf("imputed B = %q", got)
	}
}

func TestRunWithDonorPool(t *testing.T) {
	// The target has a missing B with no internal donor; the reference
	// file supplies it.
	in := writeTemp(t, "target.csv", "A,B\nx,\ny,v2\n")
	donor := writeTemp(t, "donor.csv", "A,B\nx,v1\n")
	rfds := writeTemp(t, "sigma.rfd", "A(<=0) -> B(<=0)\n")
	out := filepath.Join(t.TempDir(), "clean.csv")
	if err := testRun(in, out, rfds, "", 15, 2, "asc", "lhs", false, false, 0, donor); err != nil {
		t.Fatal(err)
	}
	rel, err := renuver.LoadCSVFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if got := rel.Get(0, 1).Str(); got != "v1" {
		t.Errorf("B = %q, want v1 from the donor file", got)
	}
	// A bad donor path must fail loudly.
	if err := testRun(in, "", rfds, "", 15, 2, "asc", "lhs", false, false, 0, "/nonexistent.csv"); err == nil {
		t.Error("missing donor file accepted")
	}
}

func TestRunDescOrderAndOffVerify(t *testing.T) {
	in := writeTemp(t, "dirty.csv", dirtyCSV)
	rfds := writeTemp(t, "sigma.rfd", sigmaFile)
	out := filepath.Join(t.TempDir(), "clean.csv")
	if err := testRun(in, out, rfds, "", 15, 2, "desc", "off", false, false, 0, ""); err != nil {
		t.Fatal(err)
	}
	rel, err := renuver.LoadCSVFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 7 {
		t.Errorf("rows = %d", rel.Len())
	}
}
