package main

// runCompile is the `renuver compile` mode: the TRIARD-style folder
// pipeline (dataset in, dependency set in or discovered, results out)
// collapsed into one native binary artifact. The base instance is
// compiled once — columnar view, interning tables, candidate index over
// Σ's LHS attributes — Σ is discovered (or loaded), and the whole
// compiled session is serialized into the versioned artifact format.
// Any number of serving replicas then boot from that one file with
// `renuver serve -artifact`, skipping both discovery and compilation.

import (
	"context"
	"flag"
	"fmt"
	"time"

	renuver "repro"
)

func runCompile(args []string) error {
	fs := flag.NewFlagSet("compile", flag.ExitOnError)
	var (
		in        = fs.String("in", "", "base CSV/JSONL compiled into the artifact (required)")
		out       = fs.String("out", "", "artifact output path (required)")
		rfds      = fs.String("rfds", "", "RFDc set file; discovered from the base when omitted")
		threshold = fs.Float64("threshold", 15, "discovery threshold limit when -rfds is omitted")
		maxLHS    = fs.Int("maxlhs", 2, "discovery LHS size limit when -rfds is omitted")
		workers   = fs.Int("workers", 0, "parallel discovery workers (0 = all CPUs; output identical)")
		shards    = fs.Int("shards", 0, "discovery pattern shards (0 = unsharded; output identical for any value)")
		saveRFDs  = fs.String("save-rfds", "", "also write the (discovered) RFDc set to this file")
		logJSON   = fs.Bool("log-json", false, "emit progress logs as JSON lines")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		fs.Usage()
		return fmt.Errorf("compile: -in and -out are required")
	}
	if err := validateParallelism("-workers", *workers); err != nil {
		return fmt.Errorf("compile: %w", err)
	}
	if err := validateParallelism("-shards", *shards); err != nil {
		return fmt.Errorf("compile: %w", err)
	}
	logger := newLogger(*logJSON)

	base, err := loadRelation(*in)
	if err != nil {
		return err
	}
	logger.Info("loaded base",
		"tuples", base.Len(), "attributes", base.Schema().Len(), "missing_cells", base.CountMissing())

	start := time.Now()
	sess, err := renuver.NewSession(base, nil)
	if err != nil {
		return err
	}
	var sigma renuver.RFDSet
	if *rfds != "" {
		if sigma, err = renuver.LoadRFDsFile(*rfds, base.Schema()); err != nil {
			return err
		}
		logger.Info("loaded RFDcs", "count", len(sigma), "path", *rfds)
	} else {
		sigma, err = sess.Discover(context.Background(), renuver.DiscoveryOptions{
			MaxThreshold: *threshold, MaxLHS: *maxLHS, Workers: *workers,
			Shards: *shards,
		})
		if err != nil {
			return err
		}
		logger.Info("discovered RFDcs", "count", len(sigma), "threshold_limit", *threshold)
	}
	if *saveRFDs != "" {
		if err := renuver.SaveRFDsFile(*saveRFDs, sigma, base.Schema()); err != nil {
			return err
		}
	}
	if sess, err = sess.WithSigma(sigma); err != nil {
		return err
	}

	if err := sess.SaveArtifactFile(*out); err != nil {
		return err
	}
	ai := sess.Artifact()
	logger.Info("artifact written", "path", *out,
		"format_version", ai.FormatVersion,
		"checksum", fmt.Sprintf("%016x", ai.Checksum),
		"tuples", ai.Tuples, "arity", ai.Arity, "rules", ai.Rules,
		"bytes", ai.Bytes, "elapsed", time.Since(start).Round(time.Millisecond).String())
	return nil
}
