package main

// runDelta is the `renuver delta` mode: apply one JSON mutation batch
// to a compiled-session artifact offline — the same renuver.Delta the
// Go API's Session.ApplyDelta and the server's POST /v1/delta consume,
// read from a file instead of a request body. The artifact is loaded,
// the delta applied (Σ revalidated over the changed rows, the candidate
// index maintained), and the evolved session re-encoded, so a fleet can
// roll a data change by distributing one new artifact instead of
// replaying mutations against every replica.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	renuver "repro"
)

func runDelta(args []string) error {
	fs := flag.NewFlagSet("delta", flag.ExitOnError)
	var (
		artifactPath = fs.String("artifact", "", "compiled session artifact to mutate (required)")
		deltaPath    = fs.String("delta", "", "JSON delta file: {\"inserts\":[...],\"updates\":[...],\"deletes\":[...]} (required)")
		out          = fs.String("out", "", "output artifact path (default: overwrite -artifact in place)")
		summary      = fs.Bool("summary", true, "print the DeltaResult as JSON to stdout")
		workers      = fs.Int("workers", 0, "parallel workers for the Σ revalidation scan (0 = all CPUs; output identical)")
		logJSON      = fs.Bool("log-json", false, "emit progress logs as JSON lines")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *artifactPath == "" || *deltaPath == "" {
		fs.Usage()
		return fmt.Errorf("delta: -artifact and -delta are required")
	}
	if err := validateParallelism("-workers", *workers); err != nil {
		return fmt.Errorf("delta: %w", err)
	}
	if *out == "" {
		*out = *artifactPath
	}
	logger := newLogger(*logJSON)

	var opts []renuver.Option
	if *workers > 1 {
		opts = append(opts, renuver.WithWorkers(*workers))
	}
	start := time.Now()
	sess, err := renuver.LoadSession(*artifactPath, opts...)
	if err != nil {
		return err
	}
	ai := sess.Artifact()
	logger.Info("artifact loaded", "path", *artifactPath,
		"checksum", fmt.Sprintf("%016x", ai.Checksum),
		"tuples", ai.Tuples, "rules", ai.Rules)

	body, err := os.ReadFile(*deltaPath)
	if err != nil {
		return err
	}
	bv := sess.BaseView()
	if bv == nil {
		return fmt.Errorf("delta: artifact %s is self-contained (no base instance to mutate)", *artifactPath)
	}
	schema := bv.Relation().Schema()
	d, err := decodeDelta(schema, body)
	if err != nil {
		return fmt.Errorf("delta: %w", err)
	}
	res, err := sess.ApplyDelta(context.Background(), d)
	if err != nil {
		return fmt.Errorf("delta: %w", err)
	}
	if err := sess.SaveArtifactFile(*out); err != nil {
		return err
	}
	logger.Info("artifact written", "path", *out,
		"epoch", res.Epoch, "tuples", res.Rows, "rules", res.Rules,
		"inserted", res.Inserted, "updated", res.Updated, "deleted", res.Deleted,
		"sigma_dropped", res.SigmaDropped, "sigma_tightened", res.SigmaTightened,
		"elapsed", time.Since(start).Round(time.Millisecond).String())
	if *summary {
		doc, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		fmt.Printf("%s\n", doc)
	}
	return nil
}
