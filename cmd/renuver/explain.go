package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strconv"
	"strings"

	renuver "repro"
)

// runExplain is the `renuver explain` mode: re-run imputation with the
// provenance tracer focused on a single cell and print that cell's
// decision trace — the answer to "why did tuple t get value X in
// attribute A?" (the paper's Example 5.9 walk-through, automated).
//
// Rows are 1-based to match the -report output; the attribute is named.
func runExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	var (
		in        = fs.String("in", "", "input CSV/JSONL with missing values (required)")
		rfds      = fs.String("rfds", "", "RFDc set file; discovered from the input when omitted")
		threshold = fs.Float64("threshold", 15, "discovery threshold limit when -rfds is omitted")
		maxLHS    = fs.Int("maxlhs", 2, "discovery LHS size limit when -rfds is omitted")
		order     = fs.String("order", "asc", "RHS-threshold cluster order: asc or desc")
		verify    = fs.String("verify", "lhs", "IS_FAULTLESS scope: lhs, both, off")
		row       = fs.Int("row", 0, "1-based row of the cell to explain (required)")
		attr      = fs.String("attr", "", "attribute name (or 1-based position) of the cell (required)")
		asJSON    = fs.Bool("json", false, "print the raw trace events as JSON lines instead of text")
		logJSON   = fs.Bool("log-json", false, "emit progress logs as JSON lines")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *row == 0 || *attr == "" {
		fs.Usage()
		return fmt.Errorf("-in, -row and -attr are required")
	}
	return explainCell(explainConfig{
		in: *in, rfds: *rfds, threshold: *threshold, maxLHS: *maxLHS,
		order: *order, verify: *verify, row: *row, attr: *attr,
		asJSON: *asJSON, logger: newLogger(*logJSON),
	}, os.Stdout)
}

// explainConfig carries the explain-mode flags.
type explainConfig struct {
	in        string
	rfds      string
	threshold float64
	maxLHS    int
	order     string
	verify    string
	row       int
	attr      string
	asJSON    bool
	logger    *slog.Logger
}

// explainCell runs the traced imputation and writes the cell's trace.
func explainCell(cfg explainConfig, w io.Writer) error {
	rel, err := loadRelation(cfg.in)
	if err != nil {
		return err
	}
	attrIdx, err := resolveAttr(rel, cfg.attr)
	if err != nil {
		return err
	}
	if cfg.row < 1 || cfg.row > rel.Len() {
		return fmt.Errorf("-row %d out of range 1..%d", cfg.row, rel.Len())
	}
	rowIdx := cfg.row - 1
	if !rel.Get(rowIdx, attrIdx).IsNull() {
		return fmt.Errorf("cell (row %d, %s) is not missing; only missing cells have decision traces",
			cfg.row, rel.Schema().Attr(attrIdx).Name)
	}

	rc := runConfig{in: cfg.in, rfds: cfg.rfds, threshold: cfg.threshold,
		maxLHS: cfg.maxLHS, logger: cfg.logger}
	sigma, err := prepareSigma(&rc, rel)
	if err != nil {
		return err
	}
	opts, err := imputerOptions(cfg.order, cfg.verify, 0, 0)
	if err != nil {
		return err
	}

	// Trace only the requested cell: the run is otherwise identical, and
	// the per-attribute distance recompute stays off every other cell.
	tracer := renuver.NewRingTracer(1, 1)
	tracer.Only(rowIdx, attrIdx)
	res, err := renuver.Impute(rel, sigma, append(opts, renuver.WithTracer(tracer))...)
	if err != nil {
		return err
	}

	evs := res.Explain(rowIdx, attrIdx)
	if len(evs) == 0 {
		return fmt.Errorf("no trace recorded for cell (row %d, %s)", cfg.row, cfg.attr)
	}
	if cfg.asJSON {
		return tracer.WriteJSONL(w)
	}
	_, err = io.WriteString(w, res.ExplainText(rel.Schema(), rowIdx, attrIdx))
	return err
}

// resolveAttr maps an attribute name (or 1-based position) to its index.
func resolveAttr(rel *renuver.Relation, name string) (int, error) {
	if idx, ok := rel.Schema().Index(name); ok {
		return idx, nil
	}
	if n, err := strconv.Atoi(name); err == nil && n >= 1 && n <= rel.Schema().Len() {
		return n - 1, nil
	}
	return 0, fmt.Errorf("unknown attribute %q (have: %s)",
		name, strings.Join(rel.Schema().Names(), ", "))
}
