package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	renuver "repro"
)

func postDelta(mux http.Handler, path, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	return rec
}

func decodeDeltaResult(t *testing.T, rec *httptest.ResponseRecorder) renuver.DeltaResult {
	t.Helper()
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("delta response Content-Type = %q", ct)
	}
	var res renuver.DeltaResult
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatalf("decoding DeltaResult: %v\n%s", err, rec.Body.String())
	}
	return res
}

// TestServeDeltaEndpoint: the full live-session loop over HTTP — a
// mutation batch is applied through /v1/delta, the epoch advances (body
// and /metrics gauge agree), and a subsequent imputation answers from
// the NEW data: the update rewrites the donor neighborhood's City, so
// the same missing-City tuple imputes differently across the delta.
func TestServeDeltaEndpoint(t *testing.T) {
	mux, _, _ := batchTestMux(t, serveLimits{})

	imputeBody := `{"tuples": [{"Name": "Spago", "City": null, "Phone": "310/652-4025"}]}`
	rec := postBatch(mux, imputeBody)
	if rec.Code != http.StatusOK {
		t.Fatalf("pre-delta impute = %d: %s", rec.Code, rec.Body.String())
	}
	pre := decodeBatchResponse(t, rec)
	if pre.Succeeded != 1 || pre.Results[0].Tuple["City"] != "W. Hollywood" {
		t.Fatalf("pre-delta City = %v (succeeded %d)", pre.Results[0].Tuple["City"], pre.Succeeded)
	}

	// Rewrite both Spago donors' City (attr by name, then by index — the
	// two reference forms the endpoint accepts), plus one insert and one
	// delete to touch every mutation kind.
	deltaBody := `{
		"updates": [
			{"row": 3, "attr": "City", "value": "Venice"},
			{"row": 4, "attr": 1, "value": "Venice"}
		],
		"inserts": [{"Name": "Spago", "City": "Venice", "Phone": "310/652-4025"}],
		"deletes": [1]
	}`
	rec = postDelta(mux, "/v1/delta", deltaBody)
	if rec.Code != http.StatusOK {
		t.Fatalf("delta POST = %d: %s", rec.Code, rec.Body.String())
	}
	res := decodeDeltaResult(t, rec)
	if res.Epoch != 1 || res.Inserted != 1 || res.Updated != 2 || res.Deleted != 1 || res.Rows != 5 {
		t.Fatalf("DeltaResult = %+v", res)
	}

	rec = postBatch(mux, imputeBody)
	if rec.Code != http.StatusOK {
		t.Fatalf("post-delta impute = %d: %s", rec.Code, rec.Body.String())
	}
	post := decodeBatchResponse(t, rec)
	if post.Succeeded != 1 || post.Results[0].Tuple["City"] != "Venice" {
		t.Fatalf("post-delta City = %v (succeeded %d): the live mutation did not reach imputation",
			post.Results[0].Tuple["City"], post.Succeeded)
	}

	// The unversioned alias answers too, and the epoch gauge tracks.
	rec = postDelta(mux, "/delta", `{"deletes": [0]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("unversioned delta = %d: %s", rec.Code, rec.Body.String())
	}
	if res := decodeDeltaResult(t, rec); res.Epoch != 2 {
		t.Fatalf("second delta epoch = %d, want 2", res.Epoch)
	}
	mrec := httptest.NewRecorder()
	mux.ServeHTTP(mrec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(mrec.Body.String(), `"session_epoch": 2`) {
		t.Fatalf("/metrics does not report session_epoch 2:\n%s", mrec.Body.String())
	}
	preq := httptest.NewRequest("GET", "/metrics", nil)
	preq.Header.Set("Accept", "text/plain")
	mrec = httptest.NewRecorder()
	mux.ServeHTTP(mrec, preq)
	if !strings.Contains(mrec.Body.String(), "session_epoch 2") {
		t.Fatalf("prometheus /metrics does not report session_epoch 2:\n%s", mrec.Body.String())
	}
}

// TestServeDeltaErrorEnvelopes: every rejection path speaks the serve
// error dialect — {"error","code"} with the documented status — and
// none of them advances the epoch.
func TestServeDeltaErrorEnvelopes(t *testing.T) {
	mux, _, _ := batchTestMux(t, serveLimits{})
	cases := []struct {
		name, method, ct, body string
		status                 int
		code                   string
	}{
		{"non-POST", "GET", "application/json", "", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"non-JSON content type", "POST", "text/csv", `{"deletes":[0]}`, http.StatusUnsupportedMediaType, "unsupported_media_type"},
		{"malformed JSON", "POST", "application/json", `{"deletes": [`, http.StatusBadRequest, "bad_request"},
		{"unknown top-level field", "POST", "application/json", `{"drop": [0]}`, http.StatusBadRequest, "bad_request"},
		{"unknown attribute", "POST", "application/json",
			`{"updates": [{"row": 0, "attr": "Nope", "value": "x"}]}`, http.StatusBadRequest, "bad_request"},
		{"attr index out of range", "POST", "application/json",
			`{"updates": [{"row": 0, "attr": 9, "value": "x"}]}`, http.StatusBadRequest, "bad_request"},
		{"missing update value", "POST", "application/json",
			`{"updates": [{"row": 0, "attr": "City"}]}`, http.StatusBadRequest, "bad_request"},
		{"empty delta", "POST", "application/json", `{}`, http.StatusUnprocessableEntity, "unprocessable"},
		{"row out of range", "POST", "application/json", `{"deletes": [99]}`, http.StatusUnprocessableEntity, "unprocessable"},
	}
	for _, tc := range cases {
		req := httptest.NewRequest(tc.method, "/v1/delta", strings.NewReader(tc.body))
		req.Header.Set("Content-Type", tc.ct)
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if rec.Code != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, rec.Code, tc.status, rec.Body.String())
			continue
		}
		if _, code := decodeEnvelope(t, rec); code != tc.code {
			t.Errorf("%s: code %q, want %q", tc.name, code, tc.code)
		}
	}

	// Nothing above may have published an epoch.
	rec := postDelta(mux, "/v1/delta", `{"deletes": [0]}`)
	if res := decodeDeltaResult(t, rec); res.Epoch != 1 {
		t.Fatalf("rejected deltas advanced the epoch: first accepted delta = epoch %d", res.Epoch)
	}
}

// TestServeDeltaSelfContained: a session without a base instance (the
// -rfds boot or a self-contained artifact) cannot be mutated.
func TestServeDeltaSelfContained(t *testing.T) {
	mux, _ := newTestMux(t) // testSession passes a nil base
	rec := postDelta(mux, "/v1/delta", `{"deletes": [0]}`)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("self-contained delta = %d, want 422", rec.Code)
	}
	if _, code := decodeEnvelope(t, rec); code != "unprocessable" {
		t.Fatalf("code %q", code)
	}
}

// TestServeDeltaOnArtifactSession: a replica booted from a compiled
// artifact accepts deltas like a compile-on-boot one — the decoded
// index and interners evolve in place — and serves coherent imputations
// afterwards.
func TestServeDeltaOnArtifactSession(t *testing.T) {
	base, err := renuver.LoadCSVString(paperCSV)
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := renuver.DiscoverRFDs(base, renuver.DiscoveryOptions{MaxThreshold: 6})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := renuver.NewSession(base, sigma)
	if err != nil {
		t.Fatal(err)
	}
	artPath := filepath.Join(t.TempDir(), "base.rnv")
	if err := sess.SaveArtifactFile(artPath); err != nil {
		t.Fatal(err)
	}
	loaded, err := renuver.LoadSession(artPath)
	if err != nil {
		t.Fatal(err)
	}
	metrics := renuver.NewMetricsRecorder()
	mux, _ := newServeMux(loaded, metrics, nil, renuver.NewSpanRing(8), quietLogger(), serveLimits{})

	rec := postDelta(mux, "/v1/delta", `{
		"updates": [
			{"row": 3, "attr": "City", "value": "Venice"},
			{"row": 4, "attr": "City", "value": "Venice"}
		]
	}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("delta on artifact session = %d: %s", rec.Code, rec.Body.String())
	}
	if res := decodeDeltaResult(t, rec); res.Epoch != 1 || res.Updated != 2 {
		t.Fatalf("DeltaResult = %+v", res)
	}
	rec = postBatch(mux, `{"tuples": [{"Name": "Spago", "City": null, "Phone": "310/652-4025"}]}`)
	resp := decodeBatchResponse(t, rec)
	if resp.Succeeded != 1 || resp.Results[0].Tuple["City"] != "Venice" {
		t.Fatalf("artifact session did not serve the delta: City = %v", resp.Results[0].Tuple["City"])
	}
}

// TestDeltaCLIRoundTrip: compile an artifact, mutate it offline with
// the `renuver delta` verb, and boot the written artifact — the evolved
// instance must be what the replica serves.
func TestDeltaCLIRoundTrip(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.csv")
	artPath := filepath.Join(dir, "base.rnv")
	nextPath := filepath.Join(dir, "next.rnv")
	deltaPath := filepath.Join(dir, "delta.json")
	if err := os.WriteFile(basePath, []byte(paperCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runCompile([]string{"-in", basePath, "-out", artPath, "-threshold", "6"}); err != nil {
		t.Fatal(err)
	}
	deltaJSON := `{
		"updates": [
			{"row": 3, "attr": "City", "value": "Venice"},
			{"row": 4, "attr": "City", "value": "Venice"}
		],
		"inserts": [{"Name": "Spago", "City": "Venice", "Phone": "310/652-4025"}]
	}`
	if err := os.WriteFile(deltaPath, []byte(deltaJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runDelta([]string{
		"-artifact", artPath, "-delta", deltaPath, "-out", nextPath, "-summary=false",
	}); err != nil {
		t.Fatal(err)
	}

	loaded, err := renuver.LoadSession(nextPath)
	if err != nil {
		t.Fatal(err)
	}
	if ai := loaded.Artifact(); ai == nil || ai.Tuples != 6 {
		t.Fatalf("evolved artifact info = %+v, want 6 tuples", loaded.Artifact())
	}
	req, err := renuver.LoadCSVString("Name,City,Phone\nSpago,,310/652-4025\n")
	if err != nil {
		t.Fatal(err)
	}
	res, err := loaded.Impute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Relation.Row(0)[1].String(); got != "Venice" {
		t.Fatalf("imputed City %q from the evolved artifact, want Venice", got)
	}

	// The original artifact is untouched (we wrote to -out).
	orig, err := renuver.LoadSession(artPath)
	if err != nil {
		t.Fatal(err)
	}
	if orig.Artifact().Tuples != 5 {
		t.Fatalf("source artifact mutated: %d tuples", orig.Artifact().Tuples)
	}
}

// TestDeltaCLIValidation: flag and input failure modes.
func TestDeltaCLIValidation(t *testing.T) {
	dir := t.TempDir()
	if err := runDelta([]string{"-artifact", filepath.Join(dir, "x.rnv")}); err == nil {
		t.Error("missing -delta accepted")
	}
	if err := runDelta([]string{"-delta", filepath.Join(dir, "d.json")}); err == nil {
		t.Error("missing -artifact accepted")
	}
	basePath := filepath.Join(dir, "base.csv")
	artPath := filepath.Join(dir, "base.rnv")
	deltaPath := filepath.Join(dir, "delta.json")
	if err := os.WriteFile(basePath, []byte(paperCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runCompile([]string{"-in", basePath, "-out", artPath, "-threshold", "6"}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(deltaPath, []byte(`{"deletes": [99]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runDelta([]string{"-artifact", artPath, "-delta", deltaPath, "-summary=false"}); err == nil {
		t.Error("out-of-range delete accepted")
	}
	// The rejected run must not have clobbered the artifact in place.
	if sess, err := renuver.LoadSession(artPath); err != nil || sess.Artifact().Tuples != 5 {
		t.Fatalf("artifact damaged by rejected delta: %v", err)
	}

}
