package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestServeSmoke is the end-to-end boot test behind `make smoke`: it
// builds the real binary, starts `renuver serve` on a loopback port,
// drives the /v1 surface with concurrent requests, and verifies a clean
// SIGTERM drain (exit 0). Gated behind RENUVER_SMOKE=1 because it
// compiles the binary and forks a server.
func TestServeSmoke(t *testing.T) {
	if os.Getenv("RENUVER_SMOKE") == "" {
		t.Skip("set RENUVER_SMOKE=1 (or run `make smoke`) to exercise the serve boot path")
	}

	dir := t.TempDir()
	bin := filepath.Join(dir, "renuver")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	basePath := filepath.Join(dir, "base.csv")
	if err := os.WriteFile(basePath, []byte(paperCSV), 0o644); err != nil {
		t.Fatal(err)
	}

	srv := exec.Command(bin, "serve",
		"-in", basePath,
		"-metrics-addr", "127.0.0.1:0",
		"-log-json",
		"-pool-size", "2",
		"-queue-depth", "4",
		"-request-timeout", "10s",
		"-drain-timeout", "10s",
	)
	stderr, err := srv.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill() // no-op after a clean Wait

	// The "listening" log line carries the resolved port; keep draining
	// stderr afterwards so the child never blocks on a full pipe.
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			var line struct {
				Msg  string `json:"msg"`
				Addr string `json:"addr"`
			}
			if json.Unmarshal(sc.Bytes(), &line) == nil && line.Msg == "listening" {
				select {
				case addrCh <- line.Addr:
				default:
				}
			}
		}
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatal("server did not report a listening address within 30s")
	}
	baseURL := "http://" + addr

	get := func(path string) (*http.Response, error) { return http.Get(baseURL + path) }
	for _, path := range []string{"/healthz", "/v1/healthz", "/metrics", "/v1/metrics"} {
		resp, err := get(path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}

	// Concurrent imputation requests against the shared session.
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(baseURL+"/v1/impute", "text/csv", strings.NewReader(paperCSV))
			if err != nil {
				errs <- err
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("POST /v1/impute = %d: %s", resp.StatusCode, body)
				return
			}
			if !strings.Contains(string(body), "Malibu") {
				errs <- fmt.Errorf("imputed CSV missing expected value:\n%s", body)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Graceful drain: SIGTERM must produce exit code 0.
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("server exited uncleanly after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not drain within 30s of SIGTERM")
	}
}
