package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	renuver "repro"
)

// The compile → serve -artifact pipeline end to end at the CLI layer:
// `renuver compile` writes an artifact, a session boots from it, and the
// booted replica answers /impute byte-identically to a replica that
// compiled the same base from scratch.
func TestCompileServeArtifactRoundTrip(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.csv")
	artPath := filepath.Join(dir, "base.rnv")
	rfdsPath := filepath.Join(dir, "sigma.rfd")
	if err := os.WriteFile(basePath, []byte(paperCSV), 0o644); err != nil {
		t.Fatal(err)
	}

	if err := runCompile([]string{
		"-in", basePath, "-out", artPath, "-threshold", "6", "-save-rfds", rfdsPath,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(rfdsPath); err != nil {
		t.Fatalf("-save-rfds did not write: %v", err)
	}

	// Artifact-booted replica.
	loaded, err := renuver.LoadSession(artPath)
	if err != nil {
		t.Fatal(err)
	}
	ai := loaded.Artifact()
	if ai == nil || ai.FormatVersion != renuver.ArtifactFormatVersion || ai.Rules == 0 {
		t.Fatalf("loaded artifact info = %+v", ai)
	}

	// Compile-on-boot replica over the same inputs.
	base, err := renuver.LoadCSVString(paperCSV)
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := renuver.LoadRFDsFile(rfdsPath, base.Schema())
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := renuver.NewSession(base, sigma)
	if err != nil {
		t.Fatal(err)
	}

	post := func(sess *renuver.Session) *httptest.ResponseRecorder {
		metrics := renuver.NewMetricsRecorder()
		mux, _ := newServeMux(sess, metrics, nil, nil, quietLogger(), serveLimits{})
		req := httptest.NewRequest("POST", "/v1/impute", strings.NewReader(paperCSV))
		req.Header.Set("Content-Type", "text/csv")
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		return rec
	}
	fromArtifact, fromScratch := post(loaded), post(compiled)
	if fromArtifact.Code != http.StatusOK || fromScratch.Code != http.StatusOK {
		t.Fatalf("statuses = %d / %d", fromArtifact.Code, fromScratch.Code)
	}
	if fromArtifact.Body.String() != fromScratch.Body.String() {
		t.Errorf("artifact-booted and compile-booted replicas diverged:\n%s\n---\n%s",
			fromArtifact.Body.String(), fromScratch.Body.String())
	}
	// The stats header matches too, once the wall-clock phase breakdown
	// (never deterministic) is zeroed out.
	var statsA, statsB renuver.Stats
	if err := json.Unmarshal([]byte(fromArtifact.Header().Get("X-Renuver-Stats")), &statsA); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(fromScratch.Header().Get("X-Renuver-Stats")), &statsB); err != nil {
		t.Fatal(err)
	}
	statsA.Phases, statsB.Phases = renuver.PhaseTimes{}, renuver.PhaseTimes{}
	if !reflect.DeepEqual(statsA, statsB) {
		t.Errorf("stats diverged:\n%+v\n%+v", statsA, statsB)
	}

	// The artifact-booted replica exports the artifact identity gauge;
	// the compile-booted one does not.
	scrape := func(sess *renuver.Session) string {
		metrics := renuver.NewMetricsRecorder()
		mux, _ := newServeMux(sess, metrics, nil, nil, quietLogger(), serveLimits{})
		req := httptest.NewRequest("GET", "/v1/metrics", nil)
		req.Header.Set("Accept", "text/plain")
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		return rec.Body.String()
	}
	if text := scrape(loaded); !strings.Contains(text, "renuver_artifact_info") {
		t.Errorf("artifact-booted /metrics lacks renuver_artifact_info:\n%s", text)
	}
	if text := scrape(compiled); strings.Contains(text, "renuver_artifact_info") {
		t.Error("compile-booted /metrics unexpectedly exports renuver_artifact_info")
	}
}

func TestCompileFlagValidation(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.csv")
	if err := os.WriteFile(basePath, []byte(paperCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runCompile([]string{"-in", basePath}); err == nil {
		t.Error("missing -out accepted")
	}
	if err := runCompile([]string{"-out", filepath.Join(dir, "x.rnv")}); err == nil {
		t.Error("missing -in accepted")
	}
	if err := runCompile([]string{
		"-in", basePath, "-out", filepath.Join(dir, "x.rnv"), "-workers", "-1",
	}); err == nil {
		t.Error("negative -workers accepted")
	}
}
