package main

// Batch mode of POST /v1/impute: a JSON body carrying many tuples in
// one request. Where the CSV path pays admission, parsing, and span
// bookkeeping per relation, the batch path pays admission once for the
// whole batch and runs each tuple as a child span of one request root —
// the per-call amortization that makes high-volume single-tuple clients
// cheap to serve. Tuples are independent: one malformed or timed-out
// tuple gets its own error envelope while the rest of the batch
// completes.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"mime"
	"net/http"
	"time"

	renuver "repro"
)

// jsonContentType reports whether the request declares a JSON body —
// the discriminator routing /impute into batch mode.
func jsonContentType(header string) bool {
	mt, _, err := mime.ParseMediaType(header)
	if err != nil {
		return false
	}
	return mt == "application/json" || mt == "text/json"
}

// batchRequest is the accepted body shape: either a bare JSON array of
// tuple objects, or an envelope {"tuples": [...]}.
type batchRequest struct {
	Tuples []map[string]json.RawMessage `json:"tuples"`
}

// batchTupleResult is one tuple's outcome. Exactly one of Tuple or
// Error is set: a success carries the (possibly imputed) tuple keyed by
// attribute name plus the imputed attribute names; a failure carries
// the same error envelope shape the CSV path uses.
type batchTupleResult struct {
	Tuple   map[string]any `json:"tuple,omitempty"`
	Imputed []string       `json:"imputed,omitempty"`
	Missing int            `json:"missing,omitempty"`
	Error   string         `json:"error,omitempty"`
	Code    string         `json:"code,omitempty"`
}

// batchResponse is the whole batch's outcome plus totals.
type batchResponse struct {
	Results   []batchTupleResult `json:"results"`
	Tuples    int                `json:"tuples"`
	Succeeded int                `json:"succeeded"`
	Failed    int                `json:"failed"`
	Imputed   int                `json:"imputed"`
}

// batchTupleHook, when non-nil, runs before tuple i of every batch — a
// test seam for deterministic mid-batch cancellation.
var batchTupleHook func(i int)

// decodeJSONValue converts one JSON value into the typed cell value of
// schema attribute a, strictly typed: strings for string attributes,
// integral numbers for ints, numbers for floats, booleans for bools;
// JSON null is the missing value. Shared by the batch-impute tuple
// decoder and the /delta update decoder, so both speak one schema
// dialect.
func decodeJSONValue(schema *renuver.Schema, a int, raw json.RawMessage) (renuver.Value, error) {
	if string(raw) == "null" {
		return renuver.Null, nil
	}
	name := schema.Attr(a).Name
	kind := schema.Attr(a).Kind
	switch kind {
	case renuver.KindString:
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			return renuver.Null, fmt.Errorf("attribute %q expects a string", name)
		}
		return renuver.NewString(s), nil
	case renuver.KindInt:
		var n json.Number
		if err := json.Unmarshal(raw, &n); err != nil {
			return renuver.Null, fmt.Errorf("attribute %q expects an integer", name)
		}
		i, err := n.Int64()
		if err != nil {
			return renuver.Null, fmt.Errorf("attribute %q expects an integer, got %s", name, n)
		}
		return renuver.NewInt(i), nil
	case renuver.KindFloat:
		var n json.Number
		if err := json.Unmarshal(raw, &n); err != nil {
			return renuver.Null, fmt.Errorf("attribute %q expects a number", name)
		}
		f, err := n.Float64()
		if err != nil {
			return renuver.Null, fmt.Errorf("attribute %q expects a number, got %s", name, n)
		}
		return renuver.NewFloat(f), nil
	case renuver.KindBool:
		var b bool
		if err := json.Unmarshal(raw, &b); err != nil {
			return renuver.Null, fmt.Errorf("attribute %q expects a boolean", name)
		}
		return renuver.NewBool(b), nil
	default:
		return renuver.Null, fmt.Errorf("attribute %q has unsupported kind %v", name, kind)
	}
}

// decodeBatchTuple converts one attribute-name-keyed JSON object into a
// positional tuple under the schema (see decodeJSONValue for the value
// rules); an absent attribute is the missing value; unknown attribute
// names are an error.
func decodeBatchTuple(schema *renuver.Schema, obj map[string]json.RawMessage) (renuver.Tuple, error) {
	t := make(renuver.Tuple, schema.Len())
	for name, raw := range obj {
		a, ok := schema.Index(name)
		if !ok {
			return nil, fmt.Errorf("unknown attribute %q", name)
		}
		v, err := decodeJSONValue(schema, a, raw)
		if err != nil {
			return nil, err
		}
		t[a] = v
	}
	return t, nil
}

// renderBatchTuple converts an imputed positional tuple back to the
// attribute-name-keyed JSON shape of the request.
func renderBatchTuple(schema *renuver.Schema, t renuver.Tuple) map[string]any {
	out := make(map[string]any, schema.Len())
	for a := 0; a < schema.Len(); a++ {
		name := schema.Attr(a).Name
		v := t[a]
		switch v.Kind() {
		case renuver.KindNull:
			out[name] = nil
		case renuver.KindString:
			out[name] = v.Str()
		case renuver.KindInt:
			out[name] = v.Int()
		case renuver.KindFloat:
			out[name] = v.Float()
		case renuver.KindBool:
			out[name] = v.Bool()
		}
	}
	return out
}

// handleBatchImpute serves the JSON batch form of /impute. Admission is
// acquired once for the batch; each tuple then runs as its own one-row
// imputation under a per-tuple child span of the request root. A tuple
// that fails to decode or times out gets a per-tuple error envelope; the
// response is 200 whenever the batch itself was admitted and parsed,
// with per-tuple status inside.
func handleBatchImpute(w http.ResponseWriter, r *http.Request, sess *renuver.Session,
	g *gate, metrics *renuver.MetricsRecorder, limits serveLimits, logger *slog.Logger) {

	baseView := sess.BaseView()
	if baseView == nil {
		writeError(w, http.StatusUnprocessableEntity, "unprocessable",
			"batch imputation needs a session with a base instance")
		return
	}
	schema := baseView.Relation().Schema()

	// One admission for the whole batch: N tuples cost one queue slot,
	// not N contended acquisitions.
	release, err := g.acquire(r.Context())
	if err != nil {
		if errors.Is(err, errQueueFull) {
			metrics.Add(renuver.CtrServeRejected, 1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "queue_full",
				"admission queue full; retry later")
			return
		}
		metrics.Add(renuver.CtrServeTimeouts, 1)
		writeError(w, http.StatusServiceUnavailable, "canceled",
			"request abandoned while queued")
		return
	}
	defer release()
	metrics.Add(renuver.CtrServeAccepted, 1)
	lg := reqLogger(r.Context(), logger)

	ctx := r.Context()
	if limits.requestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, limits.requestTimeout)
		defer cancel()
	}

	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "reading body: "+err.Error())
		return
	}
	var tuples []map[string]json.RawMessage
	if trimmed := bytes.TrimLeft(body, " \t\r\n"); len(trimmed) > 0 && trimmed[0] == '[' {
		if err := json.Unmarshal(body, &tuples); err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", "bad JSON batch: "+err.Error())
			return
		}
	} else {
		var envelope batchRequest
		if err := json.Unmarshal(body, &envelope); err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", "bad JSON batch: "+err.Error())
			return
		}
		if envelope.Tuples == nil {
			writeError(w, http.StatusBadRequest, "bad_request",
				`bad JSON batch: expected a tuple array or {"tuples": [...]}`)
			return
		}
		tuples = envelope.Tuples
	}
	if len(tuples) == 0 {
		writeError(w, http.StatusBadRequest, "bad_request", "empty batch")
		return
	}

	// The whole deadline spent queueing or parsing: reject the batch as
	// one timeout rather than stamping N identical envelopes.
	if ctx.Err() != nil {
		metrics.Add(renuver.CtrServeTimeouts, 1)
		writeError(w, http.StatusGatewayTimeout, "timeout",
			"request deadline exceeded before the batch started")
		return
	}

	root := renuver.SpanFromContext(ctx)
	resp := batchResponse{Results: make([]batchTupleResult, len(tuples)), Tuples: len(tuples)}
	start := time.Now()
	expired := false
	for i, obj := range tuples {
		if batchTupleHook != nil {
			batchTupleHook(i)
		}
		if expired || ctx.Err() != nil {
			// Mid-batch expiry: the remaining tuples each get a timeout
			// envelope; completed results are kept and returned.
			expired = true
			resp.Results[i] = batchTupleResult{
				Error: "request deadline exceeded before this tuple ran", Code: "timeout"}
			resp.Failed++
			continue
		}
		t, err := decodeBatchTuple(schema, obj)
		if err != nil {
			resp.Results[i] = batchTupleResult{Error: err.Error(), Code: "bad_tuple"}
			resp.Failed++
			continue
		}
		rel := renuver.NewRelation(schema)
		if err := rel.Append(t); err != nil {
			resp.Results[i] = batchTupleResult{Error: err.Error(), Code: "bad_tuple"}
			resp.Failed++
			continue
		}

		tctx := ctx
		sp := root.Child("batch_tuple")
		if sp.Enabled() {
			sp.Int("index", int64(i))
			tctx = renuver.ContextWithSpan(ctx, sp)
		}
		res, err := sess.Impute(tctx, rel)
		if sp.Enabled() {
			sp.End()
		}
		if err != nil {
			if errors.Is(err, renuver.ErrCanceled) {
				expired = true
				resp.Results[i] = batchTupleResult{
					Error: "request deadline exceeded running this tuple", Code: "timeout"}
				resp.Failed++
				continue
			}
			resp.Results[i] = batchTupleResult{Error: err.Error(), Code: "unprocessable"}
			resp.Failed++
			continue
		}
		imputed := make([]string, 0, len(res.Imputations))
		for _, imp := range res.Imputations {
			imputed = append(imputed, schema.Attr(imp.Cell.Attr).Name)
		}
		resp.Results[i] = batchTupleResult{
			Tuple:   renderBatchTuple(schema, res.Relation.Row(0)),
			Imputed: imputed,
			Missing: res.Stats.MissingCells,
		}
		resp.Succeeded++
		resp.Imputed += res.Stats.Imputed
	}
	if expired {
		metrics.Add(renuver.CtrServeTimeouts, 1)
	}
	if lg != nil {
		lg.Info("batch imputed",
			"tuples", resp.Tuples, "succeeded", resp.Succeeded, "failed", resp.Failed,
			"imputed", resp.Imputed,
			"elapsed", time.Since(start).Round(time.Microsecond).String())
	}

	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = json.NewEncoder(w).Encode(resp)
}
