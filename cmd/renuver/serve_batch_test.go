package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	renuver "repro"
)

// batchTestMux builds a serve mux over a base-backed session (batch mode
// needs the base instance as its donor pool and schema source).
func batchTestMux(t *testing.T, limits serveLimits) (http.Handler, *gate, *renuver.MetricsRecorder) {
	t.Helper()
	metrics := renuver.NewMetricsRecorder()
	base, err := renuver.LoadCSVString(paperCSV)
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := renuver.DiscoverRFDs(base, renuver.DiscoveryOptions{MaxThreshold: 6})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := renuver.NewSession(base, sigma, renuver.WithRecorder(metrics))
	if err != nil {
		t.Fatal(err)
	}
	mux, g := newServeMux(sess, metrics, nil, renuver.NewSpanRing(8), quietLogger(), limits)
	return mux, g, metrics
}

func postBatch(mux http.Handler, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest("POST", "/v1/impute", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	return rec
}

func decodeBatchResponse(t *testing.T, rec *httptest.ResponseRecorder) batchResponse {
	t.Helper()
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("batch response Content-Type = %q", ct)
	}
	var resp batchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding batch response: %v\n%s", err, rec.Body.String())
	}
	return resp
}

// The core batch contract: independent tuples in one request, imputed
// tuples keyed by attribute name, per-tuple error envelopes for the
// malformed ones, and totals that add up.
func TestServeBatchMixedValidity(t *testing.T) {
	mux, _, _ := batchTestMux(t, serveLimits{})

	body := `{"tuples": [
		{"Name": "Granita", "City": null, "Phone": "310/456-0488"},
		{"Name": "Granita", "Nope": "x"},
		{"Name": "Spago", "City": 7, "Phone": "310/652-4025"},
		{"Name": "Spago", "City": "W. Hollywood", "Phone": "310/652-4025"}
	]}`
	rec := postBatch(mux, body)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch POST = %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeBatchResponse(t, rec)
	if resp.Tuples != 4 || resp.Succeeded != 2 || resp.Failed != 2 {
		t.Fatalf("totals = %d/%d/%d, want 4 tuples, 2 succeeded, 2 failed",
			resp.Tuples, resp.Succeeded, resp.Failed)
	}
	if len(resp.Results) != 4 {
		t.Fatalf("results = %d", len(resp.Results))
	}

	// Tuple 0: the paper's recoverable City, imputed from the base.
	r0 := resp.Results[0]
	if r0.Error != "" {
		t.Fatalf("tuple 0 errored: %s (%s)", r0.Error, r0.Code)
	}
	if got := r0.Tuple["City"]; got != "Malibu" {
		t.Errorf("tuple 0 City = %v, want Malibu", got)
	}
	if len(r0.Imputed) != 1 || r0.Imputed[0] != "City" || r0.Missing != 1 {
		t.Errorf("tuple 0 imputed = %v missing = %d", r0.Imputed, r0.Missing)
	}
	if resp.Imputed != 1 {
		t.Errorf("total imputed = %d, want 1", resp.Imputed)
	}

	// Tuple 1: unknown attribute — its own envelope, batch unaffected.
	if r1 := resp.Results[1]; r1.Code != "bad_tuple" || !strings.Contains(r1.Error, "Nope") {
		t.Errorf("tuple 1 = %+v, want bad_tuple naming the attribute", r1)
	}
	// Tuple 2: type mismatch against the schema kind.
	if r2 := resp.Results[2]; r2.Code != "bad_tuple" || !strings.Contains(r2.Error, "string") {
		t.Errorf("tuple 2 = %+v, want bad_tuple type mismatch", r2)
	}
	// Tuple 3: complete tuple, nothing to impute.
	if r3 := resp.Results[3]; r3.Error != "" || len(r3.Imputed) != 0 || r3.Missing != 0 {
		t.Errorf("tuple 3 = %+v, want clean pass-through", r3)
	}
}

// A bare JSON array is accepted as shorthand for {"tuples": [...]}, and
// absent attributes mean missing just like explicit nulls.
func TestServeBatchBareArrayAndAbsentAttrs(t *testing.T) {
	mux, _, _ := batchTestMux(t, serveLimits{})
	rec := postBatch(mux, `[{"Name": "Granita", "Phone": "310/456-0488"}]`)
	if rec.Code != http.StatusOK {
		t.Fatalf("bare array POST = %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeBatchResponse(t, rec)
	if resp.Succeeded != 1 {
		t.Fatalf("totals = %+v", resp)
	}
	if got := resp.Results[0].Tuple["City"]; got != "Malibu" {
		t.Errorf("absent City imputed to %v, want Malibu", got)
	}
}

func TestServeBatchRejectsBadRequests(t *testing.T) {
	mux, _, _ := batchTestMux(t, serveLimits{})
	for name, tc := range map[string]struct {
		body string
		code string
	}{
		"malformed JSON":     {`{"tuples": [`, "bad_request"},
		"wrong envelope":     {`{"rows": []}`, "bad_request"},
		"empty batch":        {`{"tuples": []}`, "bad_request"},
		"empty bare array":   {`[]`, "bad_request"},
		"non-object element": {`[42]`, "bad_request"},
	} {
		rec := postBatch(mux, tc.body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d: %s", name, rec.Code, rec.Body.String())
			continue
		}
		if _, code := decodeEnvelope(t, rec); code != tc.code {
			t.Errorf("%s: code = %q, want %q", name, code, tc.code)
		}
	}
}

// Batch mode needs the base instance; a Σ-only session answers 422.
func TestServeBatchRequiresBase(t *testing.T) {
	metrics := renuver.NewMetricsRecorder()
	sess := testSession(t, metrics) // base-less: NewSession(nil, sigma)
	mux, _ := newServeMux(sess, metrics, nil, nil, quietLogger(), serveLimits{})
	rec := postBatch(mux, `[{"Name": "Granita"}]`)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("base-less batch = %d: %s", rec.Code, rec.Body.String())
	}
	if _, code := decodeEnvelope(t, rec); code != "unprocessable" {
		t.Fatalf("422 code = %q", code)
	}
}

// The batch pays admission once: a saturated gate sheds the whole batch
// with the same 429 + Retry-After contract as the CSV path.
func TestServeBatchBackpressure(t *testing.T) {
	limits := serveLimits{pool: 1, queue: 1}
	mux, g, metrics := batchTestMux(t, limits)

	hold, err := g.acquire(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	g.waiting.Add(int64(limits.queueDepth())) // simulate a full queue
	rec := postBatch(mux, `[{"Name": "Granita", "City": null, "Phone": "310/456-0488"}]`)
	g.waiting.Add(-int64(limits.queueDepth()))
	hold()
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated batch = %d: %s", rec.Code, rec.Body.String())
	}
	if _, code := decodeEnvelope(t, rec); code != "queue_full" {
		t.Fatalf("429 code = %q", code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if metrics.Counter(renuver.CtrServeRejected) == 0 {
		t.Error("serve_rejected not counted")
	}

	// Released gate: the same batch is admitted and served.
	rec = postBatch(mux, `[{"Name": "Granita", "City": null, "Phone": "310/456-0488"}]`)
	if rec.Code != http.StatusOK {
		t.Fatalf("post-release batch = %d: %s", rec.Code, rec.Body.String())
	}
}

// Cancellation mid-batch: completed tuples keep their results, the
// remaining tuples get per-tuple timeout envelopes, and the response is
// still a 200 partial. The batchTupleHook seam makes the cancellation
// point deterministic.
func TestServeBatchMidBatchCancellation(t *testing.T) {
	mux, _, metrics := batchTestMux(t, serveLimits{})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	batchTupleHook = func(i int) {
		if i == 1 {
			cancel()
		}
	}
	defer func() { batchTupleHook = nil }()

	body := `{"tuples": [
		{"Name": "Granita", "City": null, "Phone": "310/456-0488"},
		{"Name": "Spago", "City": null, "Phone": "310/652-4025"},
		{"Name": "Spago", "City": null, "Phone": "310/652-4025"}
	]}`
	req := httptest.NewRequest("POST", "/v1/impute", strings.NewReader(body)).WithContext(ctx)
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)

	if rec.Code != http.StatusOK {
		t.Fatalf("canceled batch = %d: %s", rec.Code, rec.Body.String())
	}
	resp := decodeBatchResponse(t, rec)
	if resp.Succeeded != 1 || resp.Failed != 2 {
		t.Fatalf("totals = %+v, want 1 succeeded / 2 failed", resp)
	}
	if got := resp.Results[0].Tuple["City"]; got != "Malibu" {
		t.Errorf("completed tuple 0 City = %v, want Malibu", got)
	}
	for i := 1; i < 3; i++ {
		if resp.Results[i].Code != "timeout" {
			t.Errorf("tuple %d code = %q, want timeout", i, resp.Results[i].Code)
		}
	}
	if metrics.Counter(renuver.CtrServeTimeouts) == 0 {
		t.Error("serve_timeouts not counted for the mid-batch expiry")
	}
}

// A deadline already expired when the batch starts is one request-level
// 504, not N per-tuple envelopes.
func TestServeBatchExpiredBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	mux, _, _ := batchTestMux(t, serveLimits{})
	req := httptest.NewRequest("POST", "/v1/impute",
		strings.NewReader(`[{"Name": "Granita"}]`)).WithContext(ctx)
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	// The expired context is seen either at admission (503) or at the
	// pre-batch deadline check (504); both are request-level rejections.
	if rec.Code != http.StatusGatewayTimeout && rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("expired batch = %d: %s", rec.Code, rec.Body.String())
	}
}

// The JSON branch hangs off the same /impute route: the CSV contract is
// untouched, and unsupported content types still 415 naming both forms.
func TestServeBatchContentNegotiation(t *testing.T) {
	mux, _, _ := batchTestMux(t, serveLimits{})

	req := httptest.NewRequest("POST", "/impute", strings.NewReader(paperCSV))
	req.Header.Set("Content-Type", "text/csv")
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || !strings.HasPrefix(rec.Header().Get("Content-Type"), "text/csv") {
		t.Fatalf("CSV POST = %d (%s)", rec.Code, rec.Header().Get("Content-Type"))
	}

	req = httptest.NewRequest("POST", "/impute", strings.NewReader("x"))
	req.Header.Set("Content-Type", "application/xml")
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusUnsupportedMediaType {
		t.Fatalf("XML POST = %d", rec.Code)
	}

	// Batch works identically on the unversioned alias.
	req = httptest.NewRequest("POST", "/impute",
		strings.NewReader(`[{"Name": "Granita", "City": null, "Phone": "310/456-0488"}]`))
	req.Header.Set("Content-Type", "application/json; charset=utf-8")
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("unversioned batch = %d: %s", rec.Code, rec.Body.String())
	}
	if resp := decodeBatchResponse(t, rec); resp.Succeeded != 1 {
		t.Fatalf("unversioned batch totals = %+v", resp)
	}
}
