package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	renuver "repro"
)

// paperCSV is the running example of the paper (Figure 1 flavor): the
// missing City is recoverable from the Name/Phone neighborhood.
const paperCSV = `Name,City,Phone
Granita,Malibu,310/456-0488
Granita,Malibu,310/456-0488
Granita,,310/456-0488
Spago,W. Hollywood,310/652-4025
Spago,W. Hollywood,310/652-4025
`

func testSession(t *testing.T, metrics *renuver.MetricsRecorder) *renuver.Session {
	t.Helper()
	base, err := renuver.LoadCSVString(paperCSV)
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := renuver.DiscoverRFDs(base, renuver.DiscoveryOptions{MaxThreshold: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(sigma) == 0 {
		t.Fatal("no RFDcs discovered on the base")
	}
	sess, err := renuver.NewSession(nil, sigma, renuver.WithRecorder(metrics))
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

func newTestMux(t *testing.T) (http.Handler, *renuver.MetricsRecorder) {
	t.Helper()
	metrics := renuver.NewMetricsRecorder()
	sess := testSession(t, metrics)
	mux, _ := newServeMux(sess, metrics, nil, renuver.NewSpanRing(8), quietLogger(), serveLimits{})
	return mux, metrics
}

func TestServeImputeEndpoint(t *testing.T) {
	mux, metrics := newTestMux(t)

	req := httptest.NewRequest("POST", "/impute", strings.NewReader(paperCSV))
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	body := rec.Body.String()
	if strings.Count(body, "Malibu") != 3 {
		t.Fatalf("missing City not imputed:\n%s", body)
	}

	var stats renuver.Stats
	if err := json.Unmarshal([]byte(rec.Header().Get("X-Renuver-Stats")), &stats); err != nil {
		t.Fatalf("X-Renuver-Stats not parseable: %v", err)
	}
	if stats.Imputed != 1 || stats.FaultlessChecks == 0 || stats.Phases.Total <= 0 {
		t.Fatalf("stats header = %+v", stats)
	}

	// The run must have aggregated into the shared recorder, and the gate
	// must have admitted it.
	s := metrics.Snapshot()
	if s.Counters["imputations"] != 1 || s.Counters["faultless_checks"] == 0 {
		t.Fatalf("metrics after impute = %v", s.Counters)
	}
	if s.Counters["serve_accepted"] != 1 || s.Counters["serve_rejected"] != 0 {
		t.Fatalf("gate counters = %v", s.Counters)
	}
	if s.Phases["total"].Count != 1 {
		t.Fatalf("total phase = %+v", s.Phases["total"])
	}
}

func TestServeVersionedRoutes(t *testing.T) {
	mux, _ := newTestMux(t)

	// Every endpoint answers identically under /v1/ and unversioned.
	for _, path := range []string{"/v1/impute", "/impute"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("POST", path, strings.NewReader(paperCSV)))
		if rec.Code != http.StatusOK {
			t.Errorf("POST %s = %d: %s", path, rec.Code, rec.Body.String())
		}
	}
	for _, path := range []string{"/v1/metrics", "/metrics", "/v1/healthz", "/healthz"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != http.StatusOK {
			t.Errorf("GET %s = %d", path, rec.Code)
		}
	}
}

// decodeEnvelope parses the JSON error body every 4xx/5xx must carry.
func decodeEnvelope(t *testing.T, rec *httptest.ResponseRecorder) (errMsg, code string) {
	t.Helper()
	var env struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("error body not the JSON envelope: %v\n%s", err, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("error Content-Type = %q, want application/json", ct)
	}
	return env.Error, env.Code
}

func TestServeMetricsAndHealthEndpoints(t *testing.T) {
	mux, _ := newTestMux(t)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthz = %d %q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", rec.Code)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
		Phases   map[string]any   `json:"phases"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, rec.Body.String())
	}
	if _, ok := snap.Counters["candidates_evaluated"]; !ok {
		t.Fatalf("metrics missing counters: %v", snap.Counters)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("pprof status = %d", rec.Code)
	}
}

func TestServeImputeRejectsBadInput(t *testing.T) {
	mux, _ := newTestMux(t)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/impute", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /impute = %d", rec.Code)
	}
	if allow := rec.Header().Get("Allow"); allow != http.MethodPost {
		t.Fatalf("405 Allow header = %q, want POST", allow)
	}
	if _, code := decodeEnvelope(t, rec); code != "method_not_allowed" {
		t.Fatalf("405 code = %q", code)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("POST", "/impute", strings.NewReader("A,B\n1\n")))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("ragged CSV = %d: %s", rec.Code, rec.Body.String())
	}
	if msg, code := decodeEnvelope(t, rec); code != "bad_request" || msg == "" {
		t.Fatalf("400 envelope = (%q, %q)", msg, code)
	}
}

func TestServeImputeContentTypes(t *testing.T) {
	mux, _ := newTestMux(t)

	// Declared non-CSV, non-JSON bodies are refused up front
	// (application/json now routes to batch mode — see serve_batch_test.go).
	for _, ct := range []string{"application/xml", "multipart/form-data; boundary=x", "garbage/;;"} {
		req := httptest.NewRequest("POST", "/impute", strings.NewReader(paperCSV))
		req.Header.Set("Content-Type", ct)
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if rec.Code != http.StatusUnsupportedMediaType {
			t.Errorf("Content-Type %q = %d, want 415", ct, rec.Code)
		}
		if _, code := decodeEnvelope(t, rec); code != "unsupported_media_type" {
			t.Errorf("Content-Type %q envelope code = %q", ct, code)
		}
	}

	// CSV declarations (and none at all) go through.
	for _, ct := range []string{"", "text/csv", "text/csv; charset=utf-8", "application/csv", "text/plain"} {
		req := httptest.NewRequest("POST", "/impute", strings.NewReader(paperCSV))
		if ct != "" {
			req.Header.Set("Content-Type", ct)
		}
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Errorf("Content-Type %q = %d, want 200: %s", ct, rec.Code, rec.Body.String())
		}
	}
}

// TestServeBackpressure saturates a 1-slot pool with a held slot and a
// full queue, then asserts the next request is shed with 429 and the
// envelope — without blocking.
func TestServeBackpressure(t *testing.T) {
	metrics := renuver.NewMetricsRecorder()
	limits := serveLimits{pool: 1, queue: 1}
	g := newGate(limits, metrics)

	// Occupy the only slot.
	release, err := g.acquire(t.Context())
	if err != nil {
		t.Fatal(err)
	}

	// Fill the queue with one waiter.
	var wg sync.WaitGroup
	wg.Add(1)
	waiterIn := make(chan struct{})
	go func() {
		defer wg.Done()
		close(waiterIn)
		rel, err := g.acquire(t.Context())
		if err != nil {
			t.Errorf("queued acquire failed: %v", err)
			return
		}
		rel()
	}()
	<-waiterIn
	// Give the waiter a moment to enter the queue.
	deadline := time.Now().Add(time.Second)
	for g.waiting.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	// Queue full: the next arrival must shed immediately.
	if _, err := g.acquire(t.Context()); err != errQueueFull {
		t.Fatalf("overflow acquire = %v, want errQueueFull", err)
	}

	release()
	wg.Wait()

	// Both admitted acquires (the slot holder and the queued waiter)
	// recorded their queue wait; the shed arrival must not have.
	if got := metrics.Hist(renuver.HistServeQueueWaitMicros).Count; got != 2 {
		t.Errorf("queue-wait observations = %d, want 2 (admitted requests only)", got)
	}

	// End to end: a mux whose pool is saturated answers 429 + envelope.
	sess := testSession(t, metrics)
	mux, muxGate := newServeMux(sess, metrics, nil, nil, quietLogger(), limits)
	hold, err := muxGate.acquire(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	muxGate.waiting.Add(int64(limits.queueDepth())) // simulate a full queue
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("POST", "/impute", strings.NewReader(paperCSV)))
	muxGate.waiting.Add(-int64(limits.queueDepth()))
	hold()
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated POST = %d: %s", rec.Code, rec.Body.String())
	}
	if _, code := decodeEnvelope(t, rec); code != "queue_full" {
		t.Fatalf("429 code = %q", code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if metrics.Counter(renuver.CtrServeRejected) == 0 {
		t.Error("serve_rejected not counted")
	}
	// The held mux slot is the only further admission; the shed POST
	// added nothing to the queue-wait distribution.
	if got := metrics.Hist(renuver.HistServeQueueWaitMicros).Count; got != 3 {
		t.Errorf("queue-wait observations after shed = %d, want 3", got)
	}
}

func TestServeRequestTimeout(t *testing.T) {
	metrics := renuver.NewMetricsRecorder()
	sess := testSession(t, metrics)
	// A 1ns deadline expires before the run starts; the session's O(1)
	// fast path turns it into an immediate 504.
	mux, _ := newServeMux(sess, metrics, nil, nil, quietLogger(), serveLimits{requestTimeout: time.Nanosecond})
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("POST", "/impute", strings.NewReader(paperCSV)))
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline = %d: %s", rec.Code, rec.Body.String())
	}
	if _, code := decodeEnvelope(t, rec); code != "timeout" {
		t.Fatalf("504 code = %q", code)
	}
	if metrics.Counter(renuver.CtrServeTimeouts) == 0 {
		t.Error("serve_timeouts not counted")
	}
}

// panicHandler stands in for a handler bug; the recovery middleware must
// contain it to the one request.
func TestServePanicIsolation(t *testing.T) {
	metrics := renuver.NewMetricsRecorder()
	inner := http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("handler bug")
	})
	h := recoverPanics(inner, metrics, quietLogger())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/impute", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicked handler = %d", rec.Code)
	}
	if _, code := decodeEnvelope(t, rec); code != "internal" {
		t.Fatalf("500 code = %q", code)
	}
	if metrics.Counter(renuver.CtrServePanics) != 1 {
		t.Errorf("serve_panics = %d", metrics.Counter(renuver.CtrServePanics))
	}
	// The next request on the same handler chain still works.
	rec = httptest.NewRecorder()
	recoverPanics(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	}), metrics, quietLogger()).ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("follow-up request = %d", rec.Code)
	}
}

func TestServeMetricsPrometheusNegotiation(t *testing.T) {
	mux, _ := newTestMux(t)
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "text/plain;version=0.0.4")
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("negotiated Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "# TYPE renuver_") {
		t.Fatalf("body not Prometheus exposition:\n%s", rec.Body.String())
	}
}

func TestServeTraceLastEndpoint(t *testing.T) {
	base, err := renuver.LoadCSVString(paperCSV)
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := renuver.DiscoverRFDs(base, renuver.DiscoveryOptions{MaxThreshold: 6})
	if err != nil {
		t.Fatal(err)
	}
	metrics := renuver.NewMetricsRecorder()
	tracer := renuver.NewRingTracer(0, 1)
	sess, err := renuver.NewSession(nil, sigma,
		renuver.WithRecorder(metrics), renuver.WithTracer(tracer))
	if err != nil {
		t.Fatal(err)
	}
	mux, _ := newServeMux(sess, metrics, tracer, nil, quietLogger(), serveLimits{})

	// Before any run: an empty array, not an error.
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/trace/last", nil))
	if rec.Code != http.StatusOK || strings.TrimSpace(rec.Body.String()) != "[]" {
		t.Fatalf("empty trace = %d %q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("POST", "/impute", strings.NewReader(paperCSV)))
	if rec.Code != http.StatusOK {
		t.Fatalf("impute = %d: %s", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/trace/last", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("trace/last = %d", rec.Code)
	}
	var events []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &events); err != nil {
		t.Fatalf("trace not JSON: %v\n%s", err, rec.Body.String())
	}
	if len(events) == 0 || events[0]["kind"] != "cell_started" {
		t.Fatalf("trace events = %v", events)
	}
	last := events[len(events)-1]["kind"]
	if last != "cell_resolved" && last != "cell_abandoned" {
		t.Fatalf("trace ends with %v", last)
	}

	// Tracing off: the endpoint 404s instead of lying with [].
	muxOff, _ := newServeMux(sess, metrics, nil, nil, quietLogger(), serveLimits{})
	rec = httptest.NewRecorder()
	muxOff.ServeHTTP(rec, httptest.NewRequest("GET", "/trace/last", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("trace/last without tracer = %d, want 404", rec.Code)
	}
}

// TestServeSpanTelemetry drives a traced request end to end: the
// response must identify the request (X-Request-Id, a traceparent
// continuing the inbound trace with this server's span id), and
// /debug/spans must return its full span tree down to the per-cell
// candidate_search / ranking / verify phases.
func TestServeSpanTelemetry(t *testing.T) {
	mux, _ := newTestMux(t)
	const (
		traceID    = "0123456789abcdef0123456789abcdef"
		upstreamID = "00f067aa0ba902b7"
	)
	req := httptest.NewRequest("POST", "/v1/impute", strings.NewReader(paperCSV))
	req.Header.Set("traceparent", "00-"+traceID+"-"+upstreamID+"-01")
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("impute = %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Request-Id"); got != traceID {
		t.Errorf("X-Request-Id = %q, want the upstream trace id %q", got, traceID)
	}
	tp := rec.Header().Get("traceparent")
	if !strings.HasPrefix(tp, "00-"+traceID+"-") {
		t.Errorf("response traceparent %q does not continue the upstream trace", tp)
	}
	if strings.Contains(tp, upstreamID) {
		t.Errorf("response traceparent %q echoes the upstream span id instead of this server's", tp)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/spans", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/spans = %d: %s", rec.Code, rec.Body.String())
	}
	var trees []*renuver.SpanNode
	if err := json.Unmarshal(rec.Body.Bytes(), &trees); err != nil {
		t.Fatalf("/debug/spans not JSON: %v\n%s", err, rec.Body.String())
	}
	var root *renuver.SpanNode
	for _, tr := range trees {
		if tr.TraceID == traceID {
			root = tr
		}
	}
	if root == nil {
		t.Fatalf("no trace %s in /debug/spans:\n%s", traceID, rec.Body.String())
	}
	if root.Name != "POST /impute" {
		t.Errorf("root span name = %q, want POST /impute", root.Name)
	}
	if root.ParentID != upstreamID {
		t.Errorf("root parent = %q, want the upstream span id %q", root.ParentID, upstreamID)
	}
	// JSON numbers decode as float64.
	if root.Attrs["route"] != "/impute" || root.Attrs["status"] != float64(http.StatusOK) {
		t.Errorf("root attrs = %v, want route=/impute status=200", root.Attrs)
	}
	var impute *renuver.SpanNode
	for _, c := range root.Children {
		if c.Name == "impute" {
			impute = c
		}
	}
	if impute == nil {
		t.Fatalf("request trace has no impute child: %+v", root.Children)
	}
	phases := map[string]int{}
	cells := 0
	for _, c := range impute.Children {
		if c.Name == "cell" {
			cells++
			for _, p := range c.Children {
				phases[p.Name]++
			}
		}
	}
	if cells == 0 {
		t.Fatal("impute span has no cell children")
	}
	for _, want := range []string{"candidate_search", "ranking", "verify"} {
		if phases[want] == 0 {
			t.Errorf("no %s span under any cell: %v", want, phases)
		}
	}

	// A request without a span ring still gets its identity headers,
	// but /debug/spans is an honest 404.
	metrics := renuver.NewMetricsRecorder()
	muxOff, _ := newServeMux(testSession(t, metrics), metrics, nil, nil, quietLogger(), serveLimits{})
	rec = httptest.NewRecorder()
	muxOff.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Header().Get("X-Request-Id") == "" || rec.Header().Get("traceparent") == "" {
		t.Error("ring-less request missing identity headers")
	}
	rec = httptest.NewRecorder()
	muxOff.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/spans", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("/debug/spans without a ring = %d, want 404", rec.Code)
	}
}

// TestServeMetricsRegistryExposition pins the composed /metrics surface:
// per-route latency and queue-wait histograms with HELP/TYPE preambles,
// the build-info gauge, and the labeled families in the JSON snapshot's
// extra section.
func TestServeMetricsRegistryExposition(t *testing.T) {
	mux, _ := newTestMux(t)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("POST", "/impute", strings.NewReader(paperCSV)))
	if rec.Code != http.StatusOK {
		t.Fatalf("impute = %d: %s", rec.Code, rec.Body.String())
	}

	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "text/plain;version=0.0.4")
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# HELP renuver_http_request_micros ",
		"# TYPE renuver_http_request_micros histogram",
		`renuver_http_request_micros_bucket{route="/impute",le="+Inf"} 1`,
		"# HELP renuver_serve_queue_wait_micros ",
		"renuver_serve_queue_wait_micros_count 1",
		"# HELP renuver_build_info ",
		`renuver_build_info{version="dev",go_version="` + runtime.Version() +
			`",levenshtein_kernel="` + renuver.ActiveKernelName() + `"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	var snap struct {
		Histograms map[string]renuver.HistogramSnapshot `json:"histograms"`
		Extra      map[string]json.RawMessage           `json:"extra"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, rec.Body.String())
	}
	if snap.Histograms["serve_queue_wait_micros"].Count != 1 {
		t.Errorf("queue-wait snapshot = %+v", snap.Histograms["serve_queue_wait_micros"])
	}
	for _, key := range []string{"http_request_micros", "build_info"} {
		if _, ok := snap.Extra[key]; !ok {
			t.Errorf("JSON snapshot extra missing %q: %v", key, snap.Extra)
		}
	}
	var routes map[string]renuver.HistogramSnapshot
	if err := json.Unmarshal(snap.Extra["http_request_micros"], &routes); err != nil {
		t.Fatalf("http_request_micros extra: %v", err)
	}
	if routes["/impute"].Count != 1 {
		t.Errorf("/impute latency series = %+v", routes["/impute"])
	}
}

// TestServeShardStatsExposed drives a base-backed session (the only
// mode with a long-lived shared cache) and asserts the per-shard
// hit/miss/merge counters reach the exposition and the JSON snapshot.
func TestServeShardStatsExposed(t *testing.T) {
	base, err := renuver.LoadCSVString(paperCSV)
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := renuver.DiscoverRFDs(base, renuver.DiscoveryOptions{MaxThreshold: 6})
	if err != nil {
		t.Fatal(err)
	}
	metrics := renuver.NewMetricsRecorder()
	sess, err := renuver.NewSession(base, sigma, renuver.WithRecorder(metrics))
	if err != nil {
		t.Fatal(err)
	}
	// The serve startup flow: discovery over the compiled base warms the
	// shared distance cache the requests then read.
	if _, err := sess.Discover(t.Context(), renuver.DiscoveryOptions{MaxThreshold: 6}); err != nil {
		t.Fatal(err)
	}
	mux, _ := newServeMux(sess, metrics, nil, nil, quietLogger(), serveLimits{})

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("POST", "/impute", strings.NewReader(paperCSV)))
	if rec.Code != http.StatusOK {
		t.Fatalf("impute = %d: %s", rec.Code, rec.Body.String())
	}

	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "text/plain;version=0.0.4")
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	body := rec.Body.String()
	for _, want := range []string{
		"# HELP renuver_engine_cache_shard_hits_total ",
		"# TYPE renuver_engine_cache_shard_hits_total counter",
		`renuver_engine_cache_shard_hits_total{shard="0"} `,
		`renuver_engine_cache_shard_misses_total{shard="0"} `,
		`renuver_engine_cache_shard_merges_total{shard="0"} `,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	var snap struct {
		Extra map[string]json.RawMessage `json:"extra"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	var shards []renuver.ShardStat
	if err := json.Unmarshal(snap.Extra["engine_cache_shards"], &shards); err != nil {
		t.Fatalf("engine_cache_shards extra: %v", err)
	}
	if len(shards) == 0 {
		t.Fatal("no shard stats in JSON snapshot")
	}
	var total int64
	for _, s := range shards {
		total += s.Hits + s.Misses
	}
	if total == 0 {
		t.Error("shard stats all zero after an imputation against the shared cache")
	}
}

// TestServeDonorShardStatsExposed: a session built with -shards > 1
// exposes the scatter-gather donor sweep's per-sub-pool counters on
// /metrics, in both the Prometheus text exposition (with HELP/TYPE
// preambles) and the JSON snapshot.
func TestServeDonorShardStatsExposed(t *testing.T) {
	base, err := renuver.LoadCSVString(paperCSV)
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := renuver.DiscoverRFDs(base, renuver.DiscoveryOptions{MaxThreshold: 6})
	if err != nil {
		t.Fatal(err)
	}
	metrics := renuver.NewMetricsRecorder()
	sess, err := renuver.NewSession(base, sigma,
		renuver.WithRecorder(metrics), renuver.WithDonorShards(3))
	if err != nil {
		t.Fatal(err)
	}
	mux, _ := newServeMux(sess, metrics, nil, nil, quietLogger(), serveLimits{})

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("POST", "/impute", strings.NewReader(paperCSV)))
	if rec.Code != http.StatusOK {
		t.Fatalf("impute = %d: %s", rec.Code, rec.Body.String())
	}

	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "text/plain;version=0.0.4")
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	body := rec.Body.String()
	for _, want := range []string{
		"# HELP renuver_donor_shard_scans_total ",
		"# TYPE renuver_donor_shard_scans_total counter",
		`renuver_donor_shard_scans_total{shard="0"} `,
		`renuver_donor_shard_donors_total{shard="2"} `,
		`renuver_donor_shard_candidates_total{shard="0"} `,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	var snap struct {
		Extra map[string]json.RawMessage `json:"extra"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	var shards []renuver.DonorShardStat
	if err := json.Unmarshal(snap.Extra["donor_shards"], &shards); err != nil {
		t.Fatalf("donor_shards extra: %v", err)
	}
	if len(shards) != 3 {
		t.Fatalf("donor shard stats = %v, want 3 entries", shards)
	}
	var scans int64
	for _, s := range shards {
		scans += s.Scans
	}
	if scans == 0 {
		t.Error("donor shard stats all zero after a sharded imputation")
	}
}

func TestImputerOptionsValidation(t *testing.T) {
	if _, err := imputerOptions("sideways", "lhs", 0, 0); err == nil {
		t.Fatal("bad order accepted")
	}
	if _, err := imputerOptions("asc", "maybe", 0, 0); err == nil {
		t.Fatal("bad verify accepted")
	}
	if _, err := imputerOptions("asc", "lhs", -1, 0); err == nil {
		t.Fatal("negative workers accepted")
	}
	if _, err := imputerOptions("asc", "lhs", 0, -1); err == nil {
		t.Fatal("negative shards accepted")
	}
	opts, err := imputerOptions("desc", "both", 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(opts) != 4 {
		t.Fatalf("opts = %d, want 4", len(opts))
	}
}

func TestValidateParallelism(t *testing.T) {
	if err := validateParallelism("-shards", 0); err != nil {
		t.Fatalf("zero rejected: %v", err)
	}
	if err := validateParallelism("-shards", renuver.MaxParallelism); err != nil {
		t.Fatalf("boundary value rejected: %v", err)
	}
	if err := validateParallelism("-workers", -3); err == nil {
		t.Fatal("negative accepted")
	}
	if err := validateParallelism("-shards", renuver.MaxParallelism+1); err == nil {
		t.Fatal("absurd value accepted")
	}
}
