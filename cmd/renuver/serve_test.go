package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	renuver "repro"
)

// paperCSV is the running example of the paper (Figure 1 flavor): the
// missing City is recoverable from the Name/Phone neighborhood.
const paperCSV = `Name,City,Phone
Granita,Malibu,310/456-0488
Granita,Malibu,310/456-0488
Granita,,310/456-0488
Spago,W. Hollywood,310/652-4025
Spago,W. Hollywood,310/652-4025
`

func newTestMux(t *testing.T) (*http.ServeMux, *renuver.MetricsRecorder) {
	t.Helper()
	base, err := renuver.LoadCSVString(paperCSV)
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := renuver.DiscoverRFDs(base, renuver.DiscoveryOptions{MaxThreshold: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(sigma) == 0 {
		t.Fatal("no RFDcs discovered on the base")
	}
	metrics := renuver.NewMetricsRecorder()
	im := renuver.NewImputer(sigma, renuver.WithRecorder(metrics))
	return newServeMux(im, metrics, nil, quietLogger()), metrics
}

func TestServeImputeEndpoint(t *testing.T) {
	mux, metrics := newTestMux(t)

	req := httptest.NewRequest("POST", "/impute", strings.NewReader(paperCSV))
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	body := rec.Body.String()
	if strings.Count(body, "Malibu") != 3 {
		t.Fatalf("missing City not imputed:\n%s", body)
	}

	var stats renuver.Stats
	if err := json.Unmarshal([]byte(rec.Header().Get("X-Renuver-Stats")), &stats); err != nil {
		t.Fatalf("X-Renuver-Stats not parseable: %v", err)
	}
	if stats.Imputed != 1 || stats.FaultlessChecks == 0 || stats.Phases.Total <= 0 {
		t.Fatalf("stats header = %+v", stats)
	}

	// The run must have aggregated into the shared recorder.
	s := metrics.Snapshot()
	if s.Counters["imputations"] != 1 || s.Counters["faultless_checks"] == 0 {
		t.Fatalf("metrics after impute = %v", s.Counters)
	}
	if s.Phases["total"].Count != 1 {
		t.Fatalf("total phase = %+v", s.Phases["total"])
	}
}

func TestServeMetricsAndHealthEndpoints(t *testing.T) {
	mux, _ := newTestMux(t)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthz = %d %q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", rec.Code)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
		Phases   map[string]any   `json:"phases"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, rec.Body.String())
	}
	if _, ok := snap.Counters["candidates_evaluated"]; !ok {
		t.Fatalf("metrics missing counters: %v", snap.Counters)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("pprof status = %d", rec.Code)
	}
}

func TestServeImputeRejectsBadInput(t *testing.T) {
	mux, _ := newTestMux(t)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/impute", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /impute = %d", rec.Code)
	}
	if allow := rec.Header().Get("Allow"); allow != http.MethodPost {
		t.Fatalf("405 Allow header = %q, want POST", allow)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("POST", "/impute", strings.NewReader("A,B\n1\n")))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("ragged CSV = %d: %s", rec.Code, rec.Body.String())
	}
}

func TestServeImputeContentTypes(t *testing.T) {
	mux, _ := newTestMux(t)

	// Declared non-CSV bodies are refused up front.
	for _, ct := range []string{"application/json", "multipart/form-data; boundary=x", "garbage/;;"} {
		req := httptest.NewRequest("POST", "/impute", strings.NewReader(paperCSV))
		req.Header.Set("Content-Type", ct)
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if rec.Code != http.StatusUnsupportedMediaType {
			t.Errorf("Content-Type %q = %d, want 415", ct, rec.Code)
		}
	}

	// CSV declarations (and none at all) go through.
	for _, ct := range []string{"", "text/csv", "text/csv; charset=utf-8", "application/csv", "text/plain"} {
		req := httptest.NewRequest("POST", "/impute", strings.NewReader(paperCSV))
		if ct != "" {
			req.Header.Set("Content-Type", ct)
		}
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Errorf("Content-Type %q = %d, want 200: %s", ct, rec.Code, rec.Body.String())
		}
	}
}

func TestServeMetricsPrometheusNegotiation(t *testing.T) {
	mux, _ := newTestMux(t)
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "text/plain;version=0.0.4")
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("negotiated Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "# TYPE renuver_") {
		t.Fatalf("body not Prometheus exposition:\n%s", rec.Body.String())
	}
}

func TestServeTraceLastEndpoint(t *testing.T) {
	base, err := renuver.LoadCSVString(paperCSV)
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := renuver.DiscoverRFDs(base, renuver.DiscoveryOptions{MaxThreshold: 6})
	if err != nil {
		t.Fatal(err)
	}
	metrics := renuver.NewMetricsRecorder()
	tracer := renuver.NewRingTracer(0, 1)
	im := renuver.NewImputer(sigma, renuver.WithRecorder(metrics), renuver.WithTracer(tracer))
	mux := newServeMux(im, metrics, tracer, quietLogger())

	// Before any run: an empty array, not an error.
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/trace/last", nil))
	if rec.Code != http.StatusOK || strings.TrimSpace(rec.Body.String()) != "[]" {
		t.Fatalf("empty trace = %d %q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("POST", "/impute", strings.NewReader(paperCSV)))
	if rec.Code != http.StatusOK {
		t.Fatalf("impute = %d: %s", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/trace/last", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("trace/last = %d", rec.Code)
	}
	var events []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &events); err != nil {
		t.Fatalf("trace not JSON: %v\n%s", err, rec.Body.String())
	}
	if len(events) == 0 || events[0]["kind"] != "cell_started" {
		t.Fatalf("trace events = %v", events)
	}
	last := events[len(events)-1]["kind"]
	if last != "cell_resolved" && last != "cell_abandoned" {
		t.Fatalf("trace ends with %v", last)
	}

	// Tracing off: the endpoint 404s instead of lying with [].
	muxOff := newServeMux(im, metrics, nil, quietLogger())
	rec = httptest.NewRecorder()
	muxOff.ServeHTTP(rec, httptest.NewRequest("GET", "/trace/last", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("trace/last without tracer = %d, want 404", rec.Code)
	}
}

func TestImputerOptionsValidation(t *testing.T) {
	if _, err := imputerOptions("sideways", "lhs", 0); err == nil {
		t.Fatal("bad order accepted")
	}
	if _, err := imputerOptions("asc", "maybe", 0); err == nil {
		t.Fatal("bad verify accepted")
	}
	opts, err := imputerOptions("desc", "both", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(opts) != 3 {
		t.Fatalf("opts = %d, want 3", len(opts))
	}
}
