package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	renuver "repro"
)

// paperCSV is the running example of the paper (Figure 1 flavor): the
// missing City is recoverable from the Name/Phone neighborhood.
const paperCSV = `Name,City,Phone
Granita,Malibu,310/456-0488
Granita,Malibu,310/456-0488
Granita,,310/456-0488
Spago,W. Hollywood,310/652-4025
Spago,W. Hollywood,310/652-4025
`

func testSession(t *testing.T, metrics *renuver.MetricsRecorder) *renuver.Session {
	t.Helper()
	base, err := renuver.LoadCSVString(paperCSV)
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := renuver.DiscoverRFDs(base, renuver.DiscoveryOptions{MaxThreshold: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(sigma) == 0 {
		t.Fatal("no RFDcs discovered on the base")
	}
	sess, err := renuver.NewSession(nil, sigma, renuver.WithRecorder(metrics))
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

func newTestMux(t *testing.T) (http.Handler, *renuver.MetricsRecorder) {
	t.Helper()
	metrics := renuver.NewMetricsRecorder()
	sess := testSession(t, metrics)
	mux, _ := newServeMux(sess, metrics, nil, quietLogger(), serveLimits{})
	return mux, metrics
}

func TestServeImputeEndpoint(t *testing.T) {
	mux, metrics := newTestMux(t)

	req := httptest.NewRequest("POST", "/impute", strings.NewReader(paperCSV))
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	body := rec.Body.String()
	if strings.Count(body, "Malibu") != 3 {
		t.Fatalf("missing City not imputed:\n%s", body)
	}

	var stats renuver.Stats
	if err := json.Unmarshal([]byte(rec.Header().Get("X-Renuver-Stats")), &stats); err != nil {
		t.Fatalf("X-Renuver-Stats not parseable: %v", err)
	}
	if stats.Imputed != 1 || stats.FaultlessChecks == 0 || stats.Phases.Total <= 0 {
		t.Fatalf("stats header = %+v", stats)
	}

	// The run must have aggregated into the shared recorder, and the gate
	// must have admitted it.
	s := metrics.Snapshot()
	if s.Counters["imputations"] != 1 || s.Counters["faultless_checks"] == 0 {
		t.Fatalf("metrics after impute = %v", s.Counters)
	}
	if s.Counters["serve_accepted"] != 1 || s.Counters["serve_rejected"] != 0 {
		t.Fatalf("gate counters = %v", s.Counters)
	}
	if s.Phases["total"].Count != 1 {
		t.Fatalf("total phase = %+v", s.Phases["total"])
	}
}

func TestServeVersionedRoutes(t *testing.T) {
	mux, _ := newTestMux(t)

	// Every endpoint answers identically under /v1/ and unversioned.
	for _, path := range []string{"/v1/impute", "/impute"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("POST", path, strings.NewReader(paperCSV)))
		if rec.Code != http.StatusOK {
			t.Errorf("POST %s = %d: %s", path, rec.Code, rec.Body.String())
		}
	}
	for _, path := range []string{"/v1/metrics", "/metrics", "/v1/healthz", "/healthz"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != http.StatusOK {
			t.Errorf("GET %s = %d", path, rec.Code)
		}
	}
}

// decodeEnvelope parses the JSON error body every 4xx/5xx must carry.
func decodeEnvelope(t *testing.T, rec *httptest.ResponseRecorder) (errMsg, code string) {
	t.Helper()
	var env struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("error body not the JSON envelope: %v\n%s", err, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("error Content-Type = %q, want application/json", ct)
	}
	return env.Error, env.Code
}

func TestServeMetricsAndHealthEndpoints(t *testing.T) {
	mux, _ := newTestMux(t)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthz = %d %q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", rec.Code)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
		Phases   map[string]any   `json:"phases"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, rec.Body.String())
	}
	if _, ok := snap.Counters["candidates_evaluated"]; !ok {
		t.Fatalf("metrics missing counters: %v", snap.Counters)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("pprof status = %d", rec.Code)
	}
}

func TestServeImputeRejectsBadInput(t *testing.T) {
	mux, _ := newTestMux(t)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/impute", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /impute = %d", rec.Code)
	}
	if allow := rec.Header().Get("Allow"); allow != http.MethodPost {
		t.Fatalf("405 Allow header = %q, want POST", allow)
	}
	if _, code := decodeEnvelope(t, rec); code != "method_not_allowed" {
		t.Fatalf("405 code = %q", code)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("POST", "/impute", strings.NewReader("A,B\n1\n")))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("ragged CSV = %d: %s", rec.Code, rec.Body.String())
	}
	if msg, code := decodeEnvelope(t, rec); code != "bad_request" || msg == "" {
		t.Fatalf("400 envelope = (%q, %q)", msg, code)
	}
}

func TestServeImputeContentTypes(t *testing.T) {
	mux, _ := newTestMux(t)

	// Declared non-CSV bodies are refused up front.
	for _, ct := range []string{"application/json", "multipart/form-data; boundary=x", "garbage/;;"} {
		req := httptest.NewRequest("POST", "/impute", strings.NewReader(paperCSV))
		req.Header.Set("Content-Type", ct)
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if rec.Code != http.StatusUnsupportedMediaType {
			t.Errorf("Content-Type %q = %d, want 415", ct, rec.Code)
		}
		if _, code := decodeEnvelope(t, rec); code != "unsupported_media_type" {
			t.Errorf("Content-Type %q envelope code = %q", ct, code)
		}
	}

	// CSV declarations (and none at all) go through.
	for _, ct := range []string{"", "text/csv", "text/csv; charset=utf-8", "application/csv", "text/plain"} {
		req := httptest.NewRequest("POST", "/impute", strings.NewReader(paperCSV))
		if ct != "" {
			req.Header.Set("Content-Type", ct)
		}
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Errorf("Content-Type %q = %d, want 200: %s", ct, rec.Code, rec.Body.String())
		}
	}
}

// TestServeBackpressure saturates a 1-slot pool with a held slot and a
// full queue, then asserts the next request is shed with 429 and the
// envelope — without blocking.
func TestServeBackpressure(t *testing.T) {
	metrics := renuver.NewMetricsRecorder()
	limits := serveLimits{pool: 1, queue: 1}
	g := newGate(limits, metrics)

	// Occupy the only slot.
	release, err := g.acquire(t.Context())
	if err != nil {
		t.Fatal(err)
	}

	// Fill the queue with one waiter.
	var wg sync.WaitGroup
	wg.Add(1)
	waiterIn := make(chan struct{})
	go func() {
		defer wg.Done()
		close(waiterIn)
		rel, err := g.acquire(t.Context())
		if err != nil {
			t.Errorf("queued acquire failed: %v", err)
			return
		}
		rel()
	}()
	<-waiterIn
	// Give the waiter a moment to enter the queue.
	deadline := time.Now().Add(time.Second)
	for g.waiting.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	// Queue full: the next arrival must shed immediately.
	if _, err := g.acquire(t.Context()); err != errQueueFull {
		t.Fatalf("overflow acquire = %v, want errQueueFull", err)
	}

	release()
	wg.Wait()

	// End to end: a mux whose pool is saturated answers 429 + envelope.
	sess := testSession(t, metrics)
	mux, muxGate := newServeMux(sess, metrics, nil, quietLogger(), limits)
	hold, err := muxGate.acquire(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	muxGate.waiting.Add(int64(limits.queueDepth())) // simulate a full queue
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("POST", "/impute", strings.NewReader(paperCSV)))
	muxGate.waiting.Add(-int64(limits.queueDepth()))
	hold()
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated POST = %d: %s", rec.Code, rec.Body.String())
	}
	if _, code := decodeEnvelope(t, rec); code != "queue_full" {
		t.Fatalf("429 code = %q", code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if metrics.Counter(renuver.CtrServeRejected) == 0 {
		t.Error("serve_rejected not counted")
	}
}

func TestServeRequestTimeout(t *testing.T) {
	metrics := renuver.NewMetricsRecorder()
	sess := testSession(t, metrics)
	// A 1ns deadline expires before the run starts; the session's O(1)
	// fast path turns it into an immediate 504.
	mux, _ := newServeMux(sess, metrics, nil, quietLogger(), serveLimits{requestTimeout: time.Nanosecond})
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("POST", "/impute", strings.NewReader(paperCSV)))
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline = %d: %s", rec.Code, rec.Body.String())
	}
	if _, code := decodeEnvelope(t, rec); code != "timeout" {
		t.Fatalf("504 code = %q", code)
	}
	if metrics.Counter(renuver.CtrServeTimeouts) == 0 {
		t.Error("serve_timeouts not counted")
	}
}

// panicHandler stands in for a handler bug; the recovery middleware must
// contain it to the one request.
func TestServePanicIsolation(t *testing.T) {
	metrics := renuver.NewMetricsRecorder()
	inner := http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("handler bug")
	})
	h := recoverPanics(inner, metrics, quietLogger())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/impute", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicked handler = %d", rec.Code)
	}
	if _, code := decodeEnvelope(t, rec); code != "internal" {
		t.Fatalf("500 code = %q", code)
	}
	if metrics.Counter(renuver.CtrServePanics) != 1 {
		t.Errorf("serve_panics = %d", metrics.Counter(renuver.CtrServePanics))
	}
	// The next request on the same handler chain still works.
	rec = httptest.NewRecorder()
	recoverPanics(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	}), metrics, quietLogger()).ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("follow-up request = %d", rec.Code)
	}
}

func TestServeMetricsPrometheusNegotiation(t *testing.T) {
	mux, _ := newTestMux(t)
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "text/plain;version=0.0.4")
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("negotiated Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "# TYPE renuver_") {
		t.Fatalf("body not Prometheus exposition:\n%s", rec.Body.String())
	}
}

func TestServeTraceLastEndpoint(t *testing.T) {
	base, err := renuver.LoadCSVString(paperCSV)
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := renuver.DiscoverRFDs(base, renuver.DiscoveryOptions{MaxThreshold: 6})
	if err != nil {
		t.Fatal(err)
	}
	metrics := renuver.NewMetricsRecorder()
	tracer := renuver.NewRingTracer(0, 1)
	sess, err := renuver.NewSession(nil, sigma,
		renuver.WithRecorder(metrics), renuver.WithTracer(tracer))
	if err != nil {
		t.Fatal(err)
	}
	mux, _ := newServeMux(sess, metrics, tracer, quietLogger(), serveLimits{})

	// Before any run: an empty array, not an error.
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/trace/last", nil))
	if rec.Code != http.StatusOK || strings.TrimSpace(rec.Body.String()) != "[]" {
		t.Fatalf("empty trace = %d %q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("POST", "/impute", strings.NewReader(paperCSV)))
	if rec.Code != http.StatusOK {
		t.Fatalf("impute = %d: %s", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/trace/last", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("trace/last = %d", rec.Code)
	}
	var events []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &events); err != nil {
		t.Fatalf("trace not JSON: %v\n%s", err, rec.Body.String())
	}
	if len(events) == 0 || events[0]["kind"] != "cell_started" {
		t.Fatalf("trace events = %v", events)
	}
	last := events[len(events)-1]["kind"]
	if last != "cell_resolved" && last != "cell_abandoned" {
		t.Fatalf("trace ends with %v", last)
	}

	// Tracing off: the endpoint 404s instead of lying with [].
	muxOff, _ := newServeMux(sess, metrics, nil, quietLogger(), serveLimits{})
	rec = httptest.NewRecorder()
	muxOff.ServeHTTP(rec, httptest.NewRequest("GET", "/trace/last", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("trace/last without tracer = %d, want 404", rec.Code)
	}
}

func TestImputerOptionsValidation(t *testing.T) {
	if _, err := imputerOptions("sideways", "lhs", 0); err == nil {
		t.Fatal("bad order accepted")
	}
	if _, err := imputerOptions("asc", "maybe", 0); err == nil {
		t.Fatal("bad verify accepted")
	}
	if _, err := imputerOptions("asc", "lhs", -1); err == nil {
		t.Fatal("negative workers accepted")
	}
	opts, err := imputerOptions("desc", "both", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(opts) != 3 {
		t.Fatalf("opts = %d, want 3", len(opts))
	}
}
