package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	renuver "repro"
)

// paperCSV is the running example of the paper (Figure 1 flavor): the
// missing City is recoverable from the Name/Phone neighborhood.
const paperCSV = `Name,City,Phone
Granita,Malibu,310/456-0488
Granita,Malibu,310/456-0488
Granita,,310/456-0488
Spago,W. Hollywood,310/652-4025
Spago,W. Hollywood,310/652-4025
`

func newTestMux(t *testing.T) (*http.ServeMux, *renuver.MetricsRecorder) {
	t.Helper()
	base, err := renuver.LoadCSVString(paperCSV)
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := renuver.DiscoverRFDs(base, renuver.DiscoveryOptions{MaxThreshold: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(sigma) == 0 {
		t.Fatal("no RFDcs discovered on the base")
	}
	metrics := renuver.NewMetricsRecorder()
	im := renuver.NewImputer(sigma, renuver.WithRecorder(metrics))
	return newServeMux(im, metrics), metrics
}

func TestServeImputeEndpoint(t *testing.T) {
	mux, metrics := newTestMux(t)

	req := httptest.NewRequest("POST", "/impute", strings.NewReader(paperCSV))
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	body := rec.Body.String()
	if strings.Count(body, "Malibu") != 3 {
		t.Fatalf("missing City not imputed:\n%s", body)
	}

	var stats renuver.Stats
	if err := json.Unmarshal([]byte(rec.Header().Get("X-Renuver-Stats")), &stats); err != nil {
		t.Fatalf("X-Renuver-Stats not parseable: %v", err)
	}
	if stats.Imputed != 1 || stats.FaultlessChecks == 0 || stats.Phases.Total <= 0 {
		t.Fatalf("stats header = %+v", stats)
	}

	// The run must have aggregated into the shared recorder.
	s := metrics.Snapshot()
	if s.Counters["imputations"] != 1 || s.Counters["faultless_checks"] == 0 {
		t.Fatalf("metrics after impute = %v", s.Counters)
	}
	if s.Phases["total"].Count != 1 {
		t.Fatalf("total phase = %+v", s.Phases["total"])
	}
}

func TestServeMetricsAndHealthEndpoints(t *testing.T) {
	mux, _ := newTestMux(t)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthz = %d %q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", rec.Code)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
		Phases   map[string]any   `json:"phases"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, rec.Body.String())
	}
	if _, ok := snap.Counters["candidates_evaluated"]; !ok {
		t.Fatalf("metrics missing counters: %v", snap.Counters)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("pprof status = %d", rec.Code)
	}
}

func TestServeImputeRejectsBadInput(t *testing.T) {
	mux, _ := newTestMux(t)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/impute", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /impute = %d", rec.Code)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("POST", "/impute", strings.NewReader("A,B\n1\n")))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("ragged CSV = %d: %s", rec.Code, rec.Body.String())
	}
}

func TestImputerOptionsValidation(t *testing.T) {
	if _, err := imputerOptions("sideways", "lhs", 0); err == nil {
		t.Fatal("bad order accepted")
	}
	if _, err := imputerOptions("asc", "maybe", 0); err == nil {
		t.Fatal("bad verify accepted")
	}
	opts, err := imputerOptions("desc", "both", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(opts) != 3 {
		t.Fatalf("opts = %d, want 3", len(opts))
	}
}
