package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"mime"
	"net"
	"net/http"
	"os/signal"
	"runtime"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	renuver "repro"
)

// runServe is the `renuver serve` mode: a long-lived imputation service
// built on a renuver.Session. The base instance is compiled once at
// startup (columnar form, interning tables, shared distance cache); Σ is
// discovered on the compiled base (or loaded from a file); every request
// then serves against those read-only artifacts with per-request state
// only. A bounded admission gate caps concurrent runs at -pool-size and
// sheds load with 429 once -queue-depth requests are already waiting;
// each admitted request runs under the -request-timeout deadline, and
// SIGTERM/SIGINT drains in-flight runs for up to -drain-timeout before
// exiting.
//
// Endpoints (all available both under /v1/ and at the unversioned root):
//
//	POST /v1/impute     CSV in the body -> imputed CSV; the run's
//	                    Result.Stats come back in the X-Renuver-Stats
//	                    header as compact JSON. Errors are a JSON
//	                    envelope {"error","code"}: 405 on non-POST, 415
//	                    on non-CSV content types, 429 when the queue is
//	                    full, 504 when the deadline expires mid-run.
//	                    With Content-Type: application/json the same
//	                    endpoint runs in batch mode — many independent
//	                    tuples in one request, admitted once and traced
//	                    as per-tuple child spans, with per-tuple error
//	                    envelopes inside a 200 — see serve_batch.go.
//	POST /v1/delta      JSON mutation batch (inserts / updates / deletes)
//	                    applied atomically to the session base as a new
//	                    epoch; in-flight imputations keep the epoch they
//	                    pinned. Answers the DeltaResult as JSON — see
//	                    serve_delta.go.
//	GET  /v1/metrics    cumulative counters/histograms/phase timings —
//	                    JSON by default, Prometheus text exposition
//	                    format when the Accept header asks for it.
//	GET  /v1/trace/last the most recent sampled cell's decision trace as
//	                    a JSON event array (404 when tracing is off).
//	GET  /debug/spans   the last -span-ring completed request span trees
//	                    as JSON (404 when -span-ring is 0). Every request
//	                    runs under a span trace: a valid inbound W3C
//	                    traceparent is joined, the response carries
//	                    X-Request-Id and a traceparent, and per-phase
//	                    child spans record the run's internals.
//	GET  /healthz       liveness probe.
//	GET  /debug/pprof/  CPU/heap/goroutine profiles.
//
// Flag defaulting follows the repository rule: the zero value picks the
// documented default, negatives are rejected at flag-parse time.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		addr         = fs.String("metrics-addr", "127.0.0.1:8080", "address to serve /impute, /metrics and /debug/pprof on")
		in           = fs.String("in", "", "base CSV/JSONL compiled into the session at startup (required unless -artifact)")
		artifactPath = fs.String("artifact", "", "compiled session artifact (renuver compile output) to boot from instead of -in")
		rfds         = fs.String("rfds", "", "RFDc set file; discovered from the base when omitted")
		threshold    = fs.Float64("threshold", 15, "discovery threshold limit when -rfds is omitted")
		maxLHS       = fs.Int("maxlhs", 2, "discovery LHS size limit when -rfds is omitted")
		order        = fs.String("order", "asc", "RHS-threshold cluster order: asc or desc")
		verify       = fs.String("verify", "lhs", "IS_FAULTLESS scope: lhs, both, off")
		workers      = fs.Int("workers", 0, "parallel workers for discovery and imputation tuple scans (0 = serial imputation, all CPUs for discovery)")
		shards       = fs.Int("shards", 0, "discovery pattern shards and donor-pool sub-indexes (0 = unsharded; output identical for any value)")
		traceSample  = fs.Int("trace-sample", 0, "trace every Nth cell's imputation decisions (0 = tracing off, 1 = every cell)")
		traceCells   = fs.Int("trace-cells", 0, "cell traces retained in the ring (0 = default 256)")
		poolSize     = fs.Int("pool-size", 0, "concurrent imputation runs (0 = number of CPUs)")
		queueDepth   = fs.Int("queue-depth", 0, "requests allowed to wait for a pool slot before 429 (0 = 2x pool size)")
		reqTimeout   = fs.Duration("request-timeout", 30*time.Second, "per-request deadline (0 = none)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "grace for in-flight runs on SIGTERM before the server exits")
		spanRing     = fs.Int("span-ring", 64, "completed request span traces retained for /debug/spans (0 = disable the endpoint)")
		logJSON      = fs.Bool("log-json", false, "emit request logs as JSON lines")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *artifactPath == "" && *in == "" {
		fs.Usage()
		return fmt.Errorf("serve: -in or -artifact is required")
	}
	if *artifactPath != "" && (*in != "" || *rfds != "") {
		// The artifact already carries the compiled base and Σ; mixing in
		// a second source would silently serve something else.
		return fmt.Errorf("serve: -artifact is exclusive with -in and -rfds")
	}
	for name, v := range map[string]int{
		"-pool-size": *poolSize, "-queue-depth": *queueDepth,
		"-trace-sample": *traceSample, "-trace-cells": *traceCells, "-span-ring": *spanRing,
	} {
		if v < 0 {
			return fmt.Errorf("serve: %s must be >= 0, got %d", name, v)
		}
	}
	if err := validateParallelism("-workers", *workers); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if err := validateParallelism("-shards", *shards); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if *reqTimeout < 0 || *drainTimeout < 0 {
		return fmt.Errorf("serve: timeouts must be >= 0")
	}
	logger := newLogger(*logJSON)

	opts, err := imputerOptions(*order, *verify, *workers, *shards)
	if err != nil {
		return err
	}
	renuver.SetGlobalMetricsEnabled(true)
	metrics := renuver.GlobalMetrics()
	opts = append(opts, renuver.WithRecorder(metrics))
	var tracer *renuver.RingTracer
	if *traceSample > 0 {
		tracer = renuver.NewRingTracer(*traceCells, *traceSample)
		opts = append(opts, renuver.WithTracer(tracer))
	}

	var sess *renuver.Session
	if *artifactPath != "" {
		// Instant boot: the compiled base, candidate index, and Σ decode
		// straight from the artifact's flat slabs — no discovery, no
		// compile. This is what lets N stateless replicas come up behind
		// a load balancer in milliseconds.
		bootStart := time.Now()
		if sess, err = renuver.LoadSession(*artifactPath, opts...); err != nil {
			return err
		}
		ai := sess.Artifact()
		logger.Info("session ready", "source", "artifact", "path", *artifactPath,
			"format_version", ai.FormatVersion,
			"checksum", fmt.Sprintf("%016x", ai.Checksum),
			"rfds", ai.Rules, "base_tuples", ai.Tuples,
			"boot", time.Since(bootStart).Round(time.Microsecond).String())
	} else {
		base, err := loadRelation(*in)
		if err != nil {
			return err
		}
		// Compile the base once; Σ either loads from a file or is mined
		// from the compiled view (which also warms the shared distance
		// cache the requests will read).
		if sess, err = renuver.NewSession(base, nil, opts...); err != nil {
			return err
		}
		var sigma renuver.RFDSet
		if *rfds != "" {
			sigma, err = renuver.LoadRFDsFile(*rfds, base.Schema())
		} else {
			sigma, err = sess.Discover(context.Background(), renuver.DiscoveryOptions{
				MaxThreshold: *threshold, MaxLHS: *maxLHS, Workers: *workers,
				Shards: *shards, Recorder: metrics,
			})
		}
		if err != nil {
			return err
		}
		if sess, err = sess.WithSigma(sigma); err != nil {
			return err
		}
		logger.Info("session ready", "source", "compile", "rfds", len(sigma),
			"base_tuples", base.Len(), "schema", base.Schema().String())
	}

	limits := serveLimits{
		pool:           *poolSize,
		queue:          *queueDepth,
		requestTimeout: *reqTimeout,
	}
	var ring *renuver.SpanRing
	if *spanRing > 0 {
		ring = renuver.NewSpanRing(*spanRing)
	}
	mux, _ := newServeMux(sess, metrics, tracer, ring, logger, limits)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	logger.Info("listening", "addr", ln.Addr().String(), "tracing", *traceSample > 0,
		"pool", limits.poolSize(), "queue", limits.queueDepth())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		stop()
		logger.Info("signal received, draining", "timeout", drainTimeout.String())
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return fmt.Errorf("serve: drain: %w", err)
		}
		logger.Info("drained, exiting")
		return nil
	}
}

// validateParallelism enforces the CLI rule for parallelism-shaped
// flags: 0 means the documented default, negatives and absurdly large
// values (nobody runs 10k workers on one box) are rejected before any
// work starts. It is the shared renuver.CheckParallelism rule, so the
// flags, the imputer options, and discovery all enforce one bound.
func validateParallelism(name string, v int) error {
	return renuver.CheckParallelism(name, v)
}

// imputerOptions translates the shared CLI flags into imputer options.
// workers and shards follow the uniform defaulting rule — 0 means the
// default (serial tuple scans, unsharded donor search), negatives are
// rejected here so both the one-shot and serve entry points refuse them
// before any work starts.
func imputerOptions(order, verify string, workers, shards int) ([]renuver.Option, error) {
	var opts []renuver.Option
	switch order {
	case "asc":
	case "desc":
		opts = append(opts, renuver.WithClusterOrder(renuver.DescendingThreshold))
	default:
		return nil, fmt.Errorf("unknown -order %q", order)
	}
	switch verify {
	case "lhs":
	case "both":
		opts = append(opts, renuver.WithVerifyMode(renuver.VerifyBothSides))
	case "off":
		opts = append(opts, renuver.WithVerifyMode(renuver.VerifyOff))
	default:
		return nil, fmt.Errorf("unknown -verify %q", verify)
	}
	if workers < 0 {
		return nil, fmt.Errorf("-workers must be >= 0, got %d", workers)
	}
	if workers > 1 {
		opts = append(opts, renuver.WithWorkers(workers))
	}
	if shards < 0 {
		return nil, fmt.Errorf("-shards must be >= 0, got %d", shards)
	}
	if shards > 1 {
		opts = append(opts, renuver.WithDonorShards(shards))
	}
	return opts, nil
}

// serveLimits is the serve-mode capacity configuration. Zero fields pick
// the documented defaults.
type serveLimits struct {
	pool           int // concurrent runs; 0 = NumCPU
	queue          int // waiting requests before 429; 0 = 2*pool
	requestTimeout time.Duration
}

func (l serveLimits) poolSize() int {
	if l.pool > 0 {
		return l.pool
	}
	return runtime.NumCPU()
}

func (l serveLimits) queueDepth() int {
	if l.queue > 0 {
		return l.queue
	}
	return 2 * l.poolSize()
}

// errQueueFull is the admission gate's shed signal.
var errQueueFull = errors.New("admission queue full")

// gate is the bounded admission control: at most pool requests run at
// once, at most depth more wait for a slot, everything beyond that is
// shed immediately with errQueueFull. The waiting count at each arrival
// is recorded into the queue-depth histogram, so the metrics surface
// shows how close the service runs to shedding.
type gate struct {
	slots   chan struct{}
	waiting atomic.Int64
	depth   int64
	metrics *renuver.MetricsRecorder
}

func newGate(limits serveLimits, metrics *renuver.MetricsRecorder) *gate {
	return &gate{
		slots:   make(chan struct{}, limits.poolSize()),
		depth:   int64(limits.queueDepth()),
		metrics: metrics,
	}
}

// acquire admits the request or reports why it cannot: errQueueFull when
// the queue is over depth, the context's error when the client gave up
// while queued. On success the returned release function must be called
// exactly once. Every admitted request records how long it waited for
// its slot (the SLO-facing queue-wait distribution); shed and abandoned
// requests do not — they never got a slot to wait for.
func (g *gate) acquire(ctx context.Context) (release func(), err error) {
	enqueued := time.Now()
	w := g.waiting.Add(1)
	g.metrics.Observe(renuver.HistServeQueueDepth, float64(w-1))
	defer g.waiting.Add(-1)
	admitted := func() func() {
		g.metrics.Observe(renuver.HistServeQueueWaitMicros,
			float64(time.Since(enqueued).Microseconds()))
		return func() { <-g.slots }
	}
	if w > g.depth {
		// Fast path first: a free slot admits even a nominally-full queue,
		// since the request would not actually wait.
		select {
		case g.slots <- struct{}{}:
			return admitted(), nil
		default:
			return nil, errQueueFull
		}
	}
	select {
	case g.slots <- struct{}{}:
		return admitted(), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// writeError emits the uniform JSON error envelope every 4xx/5xx uses.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg, "code": code})
}

// csvContentType reports whether the request's Content-Type, when
// present, declares a CSV (or generic text/octet) body. An absent
// header is accepted: curl-style clients rarely set one.
func csvContentType(header string) bool {
	if header == "" {
		return true
	}
	mt, _, err := mime.ParseMediaType(header)
	if err != nil {
		return false
	}
	switch mt {
	case "text/csv", "application/csv", "text/plain", "application/octet-stream":
		return true
	}
	return false
}

// handleBoth registers the handler under /v1/<path> and its unversioned
// alias /<path>.
func handleBoth(mux *http.ServeMux, path string, h http.Handler) {
	mux.Handle("/v1"+path, h)
	mux.Handle(path, h)
}

// serveRoutes is the fixed label set of the per-route latency histogram;
// routeLabel folds both the /v1 and unversioned aliases onto one label
// and everything unrecognized onto "other", so the family's cardinality
// is bounded no matter what paths clients probe.
var serveRoutes = []string{
	"/impute", "/delta", "/metrics", "/trace/last", "/healthz", "/debug/spans", "/debug/pprof", "other",
}

func routeLabel(path string) string {
	p := strings.TrimPrefix(path, "/v1")
	switch p {
	case "/impute", "/delta", "/metrics", "/trace/last", "/healthz", "/debug/spans":
		return p
	}
	if strings.HasPrefix(p, "/debug/pprof") {
		return "/debug/pprof"
	}
	return "other"
}

// httpLatencyBounds are the per-route latency buckets, in microseconds:
// 100µs to 60s, the range between a /healthz probe and a request-timeout
// imputation.
var httpLatencyBounds = []float64{100, 1_000, 10_000, 100_000, 1e6, 10e6, 60e6}

// loggerKey carries the request-scoped logger (request id and route
// pre-attached) through the context; reqLogger falls back to the service
// logger for contexts the middleware never saw (tests driving handlers
// directly).
type loggerKey struct{}

func reqLogger(ctx context.Context, fallback *slog.Logger) *slog.Logger {
	if lg, ok := ctx.Value(loggerKey{}).(*slog.Logger); ok {
		return lg
	}
	return fallback
}

// statusWriter captures the response status for the root span and the
// latency histogram.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// telemetry is the outermost middleware: it opens the request trace
// (joining an upstream W3C traceparent when the client sent a valid
// one), threads the span and a request-scoped logger through the
// context, answers with the request's identity (X-Request-Id and a
// response traceparent), and on completion finishes the trace into the
// ring and records the route's latency.
func telemetry(next http.Handler, ring *renuver.SpanRing, latency *renuver.HistVec,
	logger *slog.Logger) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		route := routeLabel(r.URL.Path)
		parent, _ := renuver.ParseTraceparent(r.Header.Get("traceparent"))
		ctx, trace := renuver.StartRequest(r.Context(), ring, r.Method+" "+route, parent)
		sc := trace.Context()
		requestID := sc.TraceID.String()
		w.Header().Set("X-Request-Id", requestID)
		w.Header().Set("traceparent", sc.Traceparent())
		ctx = context.WithValue(ctx, loggerKey{},
			logger.With("request_id", requestID, "route", route))

		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(ctx))

		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		root := trace.Root()
		root.Str("route", route)
		root.Int("status", int64(status))
		trace.Finish()
		latency.ObserveLabel(route, float64(time.Since(start).Microseconds()))
	})
}

// newServeRegistry composes the serve-mode /metrics surface: the shared
// recorder, the per-route latency family, the build-info gauge, and —
// when the session holds a precompiled base — the shared distance
// cache's per-shard counters.
func newServeRegistry(sess *renuver.Session, metrics *renuver.MetricsRecorder) (*renuver.MetricsRegistry, *renuver.HistVec) {
	latency := renuver.NewHistVec("http_request_micros",
		"HTTP request latency per route, microseconds.",
		"route", serveRoutes, httpLatencyBounds)
	reg := renuver.NewMetricsRegistry(metrics)
	reg.Register(latency, renuver.NewConstGauge("build_info",
		"Build and runtime identity; the payload is in the labels.", 1,
		renuver.MetricLabel{Key: "version", Value: version},
		renuver.MetricLabel{Key: "go_version", Value: runtime.Version()},
		renuver.MetricLabel{Key: "levenshtein_kernel", Value: renuver.ActiveKernelName()},
	))
	if ai := sess.Artifact(); ai != nil {
		// The artifact identity the replica serves: the checksum label is
		// what lets a fleet dashboard prove every replica loaded the same
		// compiled session.
		reg.Register(renuver.NewConstGauge("artifact_info",
			"Compiled-session artifact identity; the payload is in the labels.", 1,
			renuver.MetricLabel{Key: "format_version", Value: fmt.Sprintf("v%d", ai.FormatVersion)},
			renuver.MetricLabel{Key: "checksum", Value: fmt.Sprintf("%016x", ai.Checksum)},
			renuver.MetricLabel{Key: "tuples", Value: fmt.Sprintf("%d", ai.Tuples)},
			renuver.MetricLabel{Key: "sigma_rules", Value: fmt.Sprintf("%d", ai.Rules)},
		))
	}
	if sess.BaseView() != nil {
		// The live-session epoch: 0 at boot, +1 per applied /delta. A flat
		// line here means the replica serves exactly what it booted with.
		reg.Register(renuver.NewFuncGauge("session_epoch",
			"Current live-session epoch (deltas applied since boot).",
			func() float64 { return float64(sess.Epoch()) }))
	}
	if sess.CacheShardStats() != nil {
		reg.Register(renuver.NewShardStatsCollector("engine_cache_shard", func() []renuver.ShardStat {
			stats := sess.CacheShardStats()
			out := make([]renuver.ShardStat, len(stats))
			for i, s := range stats {
				out[i] = renuver.ShardStat{Hits: s.Hits, Misses: s.Misses, Merges: s.Merges}
			}
			return out
		}))
	}
	if sess.DonorShardStats() != nil {
		// The scatter-gather donor sweep's per-sub-pool skew view; absent
		// unless the session was built with -shards > 1.
		reg.Register(renuver.NewDonorShardStatsCollector("donor_shard", func() []renuver.DonorShardStat {
			return sess.DonorShardStats()
		}))
	}
	return reg, latency
}

// newServeMux wires the service endpoints over the session; split out so
// tests can drive the handlers without binding a port. The returned gate
// is the handler's admission control (tests saturate it to provoke
// load-shedding). tracer may be nil (tracing off); ring may be nil
// (request-span retention off — /debug/spans then 404s, but requests
// still carry ids and spans for the duration of their run).
func newServeMux(sess *renuver.Session, metrics *renuver.MetricsRecorder,
	tracer *renuver.RingTracer, ring *renuver.SpanRing,
	logger *slog.Logger, limits serveLimits) (http.Handler, *gate) {

	if logger == nil {
		logger = newLogger(false)
	}
	g := newGate(limits, metrics)
	registry, latency := newServeRegistry(sess, metrics)

	mux := http.NewServeMux()
	handleBoth(mux, "/metrics", registry.Handler())
	handleBoth(mux, "/trace/last", renuver.TraceHandler(tracer))
	handleBoth(mux, "/debug/spans", renuver.SpansHandler(ring))
	renuver.MountDebugHandlers(mux)
	handleBoth(mux, "/healthz", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	}))
	handleBoth(mux, "/delta", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handleDelta(w, r, sess, g, metrics, limits, logger)
	}))
	handleBoth(mux, "/impute", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeError(w, http.StatusMethodNotAllowed, "method_not_allowed",
				"POST a CSV document to impute it")
			return
		}
		ct := r.Header.Get("Content-Type")
		if jsonContentType(ct) {
			// Batch mode: a JSON body of many tuples, one admission for
			// the whole batch — see serve_batch.go.
			handleBatchImpute(w, r, sess, g, metrics, limits, logger)
			return
		}
		if !csvContentType(ct) {
			writeError(w, http.StatusUnsupportedMediaType, "unsupported_media_type",
				fmt.Sprintf("unsupported Content-Type %q: POST CSV (text/csv) or a JSON batch (application/json)", ct))
			return
		}

		// Admission before parsing: an overloaded server sheds without
		// buffering the body of work it will not do.
		release, err := g.acquire(r.Context())
		if err != nil {
			if errors.Is(err, errQueueFull) {
				metrics.Add(renuver.CtrServeRejected, 1)
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusTooManyRequests, "queue_full",
					"admission queue full; retry later")
				return
			}
			// The client gave up while queued; nobody is listening, but the
			// envelope keeps intermediaries informed.
			metrics.Add(renuver.CtrServeTimeouts, 1)
			writeError(w, http.StatusServiceUnavailable, "canceled",
				"request abandoned while queued")
			return
		}
		defer release()
		metrics.Add(renuver.CtrServeAccepted, 1)
		lg := reqLogger(r.Context(), logger)

		ctx := r.Context()
		if limits.requestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, limits.requestTimeout)
			defer cancel()
		}

		rel, err := renuver.LoadCSV(r.Body)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", "bad CSV: "+err.Error())
			return
		}
		start := time.Now()
		res, err := sess.Impute(ctx, rel)
		if err != nil {
			if errors.Is(err, renuver.ErrCanceled) {
				metrics.Add(renuver.CtrServeTimeouts, 1)
				lg.Warn("request deadline exceeded",
					"missing", rel.CountMissing(), "elapsed", time.Since(start).String())
				writeError(w, http.StatusGatewayTimeout, "timeout",
					"request deadline exceeded; partial work discarded")
				return
			}
			lg.Error("imputation failed", "error", err)
			writeError(w, http.StatusUnprocessableEntity, "unprocessable",
				"imputation failed: "+err.Error())
			return
		}
		lg.Info("imputed",
			"imputed", res.Stats.Imputed, "missing", res.Stats.MissingCells,
			"donors_scanned", res.Stats.DonorsScanned,
			"faultless_checks", res.Stats.FaultlessChecks,
			"elapsed", time.Since(start).Round(time.Microsecond).String())
		stats, err := json.Marshal(res.Stats)
		if err == nil {
			// Headers must be single-line; compact JSON is.
			w.Header().Set("X-Renuver-Stats", string(stats))
		}
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		if err := renuver.SaveCSV(w, res.Relation); err != nil {
			// Too late for a status change; the truncated body is the
			// only signal left.
			lg.Error("writing response", "error", err)
		}
	}))
	// telemetry sits outermost so panics recover inside the request
	// trace: a 500 still finishes its trace and lands in the histogram.
	return telemetry(recoverPanics(mux, metrics, logger), ring, latency, logger), g
}

// recoverPanics isolates handler panics: one poisoned request answers
// 500 with the error envelope instead of tearing the whole process (and
// every other in-flight request) down.
func recoverPanics(next http.Handler, metrics *renuver.MetricsRecorder, logger *slog.Logger) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				metrics.Add(renuver.CtrServePanics, 1)
				logger.Error("handler panic", "panic", fmt.Sprint(p), "path", r.URL.Path)
				writeError(w, http.StatusInternalServerError, "internal", "internal error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}
