package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"mime"
	"net/http"
	"time"

	renuver "repro"
)

// runServe is the `renuver serve` mode: a long-lived imputation service
// with first-class observability. Σ is prepared once from the base
// instance (or loaded from a file); every POST /impute run then records
// into one process-wide metrics sink, served on /metrics, and — when
// tracing is on — per-cell decision traces land in a bounded ring
// served on /trace/last.
//
// Endpoints:
//
//	POST /impute        CSV in the body -> imputed CSV; the run's
//	                    Result.Stats come back in the X-Renuver-Stats
//	                    header as compact JSON. Non-POST methods get 405
//	                    with an Allow header; non-CSV content types 415.
//	GET  /metrics       cumulative counters/histograms/phase timings —
//	                    JSON by default, Prometheus text exposition
//	                    format when the Accept header asks for it.
//	GET  /trace/last    the most recent sampled cell's decision trace as
//	                    a JSON event array (404 when tracing is off).
//	GET  /healthz       liveness probe.
//	GET  /debug/pprof/  CPU/heap/goroutine profiles.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		addr        = fs.String("metrics-addr", "127.0.0.1:8080", "address to serve /impute, /metrics and /debug/pprof on")
		in          = fs.String("in", "", "base CSV/JSONL the RFDcs are prepared from (required)")
		rfds        = fs.String("rfds", "", "RFDc set file; discovered from the base when omitted")
		threshold   = fs.Float64("threshold", 15, "discovery threshold limit when -rfds is omitted")
		maxLHS      = fs.Int("maxlhs", 2, "discovery LHS size limit when -rfds is omitted")
		order       = fs.String("order", "asc", "RHS-threshold cluster order: asc or desc")
		verify      = fs.String("verify", "lhs", "IS_FAULTLESS scope: lhs, both, off")
		workers     = fs.Int("workers", 0, "parallel tuple-scan workers (0 = serial)")
		traceSample = fs.Int("trace-sample", 0, "trace every Nth cell's imputation decisions (0 = tracing off, 1 = every cell)")
		traceCells  = fs.Int("trace-cells", 0, "cell traces retained in the ring (0 = default 256)")
		logJSON     = fs.Bool("log-json", false, "emit request logs as JSON lines")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		fs.Usage()
		return fmt.Errorf("serve: -in is required")
	}
	logger := newLogger(*logJSON)

	base, err := loadRelation(*in)
	if err != nil {
		return err
	}
	var sigma renuver.RFDSet
	if *rfds != "" {
		sigma, err = renuver.LoadRFDsFile(*rfds, base.Schema())
	} else {
		sigma, err = renuver.DiscoverRFDs(base, renuver.DiscoveryOptions{
			MaxThreshold: *threshold, MaxLHS: *maxLHS, Workers: *workers,
			Recorder: renuver.GlobalMetrics(),
		})
	}
	if err != nil {
		return err
	}
	logger.Info("sigma ready", "rfds", len(sigma), "schema", base.Schema().String())

	opts, err := imputerOptions(*order, *verify, *workers)
	if err != nil {
		return err
	}

	renuver.SetGlobalMetricsEnabled(true)
	metrics := renuver.GlobalMetrics()
	opts = append(opts, renuver.WithRecorder(metrics))

	var tracer *renuver.RingTracer
	if *traceSample > 0 {
		tracer = renuver.NewRingTracer(*traceCells, *traceSample)
		opts = append(opts, renuver.WithTracer(tracer))
	}
	im := renuver.NewImputer(sigma, opts...)

	mux := newServeMux(im, metrics, tracer, logger)
	srv := &http.Server{Addr: *addr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	logger.Info("listening", "addr", *addr, "tracing", *traceSample > 0)
	return srv.ListenAndServe()
}

// imputerOptions translates the shared CLI flags into imputer options.
func imputerOptions(order, verify string, workers int) ([]renuver.Option, error) {
	var opts []renuver.Option
	switch order {
	case "asc":
	case "desc":
		opts = append(opts, renuver.WithClusterOrder(renuver.DescendingThreshold))
	default:
		return nil, fmt.Errorf("unknown -order %q", order)
	}
	switch verify {
	case "lhs":
	case "both":
		opts = append(opts, renuver.WithVerifyMode(renuver.VerifyBothSides))
	case "off":
		opts = append(opts, renuver.WithVerifyMode(renuver.VerifyOff))
	default:
		return nil, fmt.Errorf("unknown -verify %q", verify)
	}
	if workers > 1 {
		opts = append(opts, renuver.WithWorkers(workers))
	}
	return opts, nil
}

// csvContentType reports whether the request's Content-Type, when
// present, declares a CSV (or generic text/octet) body. An absent
// header is accepted: curl-style clients rarely set one.
func csvContentType(header string) bool {
	if header == "" {
		return true
	}
	mt, _, err := mime.ParseMediaType(header)
	if err != nil {
		return false
	}
	switch mt {
	case "text/csv", "application/csv", "text/plain", "application/octet-stream":
		return true
	}
	return false
}

// newServeMux wires the service endpoints; split out so tests can drive
// the handlers without binding a port. tracer may be nil (tracing off).
func newServeMux(im *renuver.Imputer, metrics *renuver.MetricsRecorder,
	tracer *renuver.RingTracer, logger *slog.Logger) *http.ServeMux {

	if logger == nil {
		logger = newLogger(false)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", renuver.MetricsHandler(metrics))
	mux.Handle("/trace/last", renuver.TraceHandler(tracer))
	renuver.MountDebugHandlers(mux)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/impute", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			http.Error(w, "POST a CSV document to impute it", http.StatusMethodNotAllowed)
			return
		}
		if ct := r.Header.Get("Content-Type"); !csvContentType(ct) {
			http.Error(w, fmt.Sprintf("unsupported Content-Type %q: POST CSV (text/csv)", ct),
				http.StatusUnsupportedMediaType)
			return
		}
		rel, err := renuver.LoadCSV(r.Body)
		if err != nil {
			http.Error(w, "bad CSV: "+err.Error(), http.StatusBadRequest)
			return
		}
		start := time.Now()
		res, err := im.ImputeContext(r.Context(), rel)
		if err != nil {
			logger.Error("imputation failed", "error", err)
			http.Error(w, "imputation failed: "+err.Error(), http.StatusUnprocessableEntity)
			return
		}
		logger.Info("imputed",
			"imputed", res.Stats.Imputed, "missing", res.Stats.MissingCells,
			"donors_scanned", res.Stats.DonorsScanned,
			"faultless_checks", res.Stats.FaultlessChecks,
			"elapsed", time.Since(start).Round(time.Microsecond).String())
		stats, err := json.Marshal(res.Stats)
		if err == nil {
			// Headers must be single-line; compact JSON is.
			w.Header().Set("X-Renuver-Stats", string(stats))
		}
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		if err := renuver.SaveCSV(w, res.Relation); err != nil {
			// Too late for a status change; the truncated body is the
			// only signal left.
			logger.Error("writing response", "error", err)
		}
	})
	return mux
}
