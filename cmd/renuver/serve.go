package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	renuver "repro"
)

// runServe is the `renuver serve` mode: a long-lived imputation service
// with first-class observability. Σ is prepared once from the base
// instance (or loaded from a file); every POST /impute run then records
// into one process-wide metrics sink, served as a JSON snapshot on
// /metrics alongside the net/http/pprof endpoints.
//
// Endpoints:
//
//	POST /impute        CSV in the body -> imputed CSV; the run's
//	                    Result.Stats come back in the X-Renuver-Stats
//	                    header as compact JSON.
//	GET  /metrics       cumulative counters/histograms/phase timings.
//	GET  /healthz       liveness probe.
//	GET  /debug/pprof/  CPU/heap/goroutine profiles.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		addr      = fs.String("metrics-addr", "127.0.0.1:8080", "address to serve /impute, /metrics and /debug/pprof on")
		in        = fs.String("in", "", "base CSV/JSONL the RFDcs are prepared from (required)")
		rfds      = fs.String("rfds", "", "RFDc set file; discovered from the base when omitted")
		threshold = fs.Float64("threshold", 15, "discovery threshold limit when -rfds is omitted")
		maxLHS    = fs.Int("maxlhs", 2, "discovery LHS size limit when -rfds is omitted")
		order     = fs.String("order", "asc", "RHS-threshold cluster order: asc or desc")
		verify    = fs.String("verify", "lhs", "IS_FAULTLESS scope: lhs, both, off")
		workers   = fs.Int("workers", 0, "parallel tuple-scan workers (0 = serial)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		fs.Usage()
		return fmt.Errorf("serve: -in is required")
	}

	base, err := loadRelation(*in)
	if err != nil {
		return err
	}
	var sigma renuver.RFDSet
	if *rfds != "" {
		sigma, err = renuver.LoadRFDsFile(*rfds, base.Schema())
	} else {
		sigma, err = renuver.DiscoverRFDs(base, renuver.DiscoveryOptions{
			MaxThreshold: *threshold, MaxLHS: *maxLHS,
			Recorder: renuver.GlobalMetrics(),
		})
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "serve: %d RFDcs over schema %s\n", len(sigma), base.Schema())

	opts, err := imputerOptions(*order, *verify, *workers)
	if err != nil {
		return err
	}

	renuver.SetGlobalMetricsEnabled(true)
	metrics := renuver.GlobalMetrics()
	im := renuver.NewImputer(sigma, append(opts, renuver.WithRecorder(metrics))...)

	mux := newServeMux(im, metrics)
	srv := &http.Server{Addr: *addr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	fmt.Fprintf(os.Stderr, "serve: listening on %s\n", *addr)
	return srv.ListenAndServe()
}

// imputerOptions translates the shared CLI flags into imputer options.
func imputerOptions(order, verify string, workers int) ([]renuver.Option, error) {
	var opts []renuver.Option
	switch order {
	case "asc":
	case "desc":
		opts = append(opts, renuver.WithClusterOrder(renuver.DescendingThreshold))
	default:
		return nil, fmt.Errorf("unknown -order %q", order)
	}
	switch verify {
	case "lhs":
	case "both":
		opts = append(opts, renuver.WithVerifyMode(renuver.VerifyBothSides))
	case "off":
		opts = append(opts, renuver.WithVerifyMode(renuver.VerifyOff))
	default:
		return nil, fmt.Errorf("unknown -verify %q", verify)
	}
	if workers > 1 {
		opts = append(opts, renuver.WithWorkers(workers))
	}
	return opts, nil
}

// newServeMux wires the service endpoints; split out so tests can drive
// the handlers without binding a port.
func newServeMux(im *renuver.Imputer, metrics *renuver.MetricsRecorder) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", renuver.MetricsHandler(metrics))
	renuver.MountDebugHandlers(mux)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/impute", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST a CSV document to impute it", http.StatusMethodNotAllowed)
			return
		}
		rel, err := renuver.LoadCSV(r.Body)
		if err != nil {
			http.Error(w, "bad CSV: "+err.Error(), http.StatusBadRequest)
			return
		}
		res, err := im.ImputeContext(r.Context(), rel)
		if err != nil {
			http.Error(w, "imputation failed: "+err.Error(), http.StatusUnprocessableEntity)
			return
		}
		fmt.Fprintf(os.Stderr, "serve: %s\n", statsSummary(res.Stats))
		stats, err := json.Marshal(res.Stats)
		if err == nil {
			// Headers must be single-line; compact JSON is.
			w.Header().Set("X-Renuver-Stats", string(stats))
		}
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		if err := renuver.SaveCSV(w, res.Relation); err != nil {
			// Too late for a status change; the truncated body is the
			// only signal left.
			fmt.Fprintf(os.Stderr, "serve: writing response: %v\n", err)
		}
	})
	return mux
}

// statsSummary renders the headline counters for log lines.
func statsSummary(s renuver.Stats) string {
	return strings.TrimSpace(fmt.Sprintf(
		"imputed %d/%d, %d donors scanned, %d faultless checks, search %s verify %s",
		s.Imputed, s.MissingCells, s.DonorsScanned, s.FaultlessChecks,
		s.Phases.CandidateSearch.Round(time.Microsecond),
		s.Phases.Verify.Round(time.Microsecond)))
}
