package main

// POST /v1/delta: the live-data mutation endpoint of `renuver serve`.
// One JSON body carries a whole renuver.Delta — inserts, cell updates,
// row deletes — applied atomically through Session.ApplyDelta: the
// server publishes the mutated base as a new epoch while concurrent
// /impute requests keep serving against whichever epoch they pinned at
// admission. The endpoint works identically for sessions compiled from
// -in and sessions booted from a -artifact (the decoded interning
// tables rebuild their id maps, so artifact sessions evolve like any
// other); re-encoding after deltas snapshots the current epoch.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"time"

	renuver "repro"
)

// deltaUpdate is the JSON form of one cell update. Attr accepts either
// the attribute name ("City") or its positional index.
type deltaUpdate struct {
	Row   int             `json:"row"`
	Attr  json.RawMessage `json:"attr"`
	Value json.RawMessage `json:"value"`
}

// deltaRequest is the /delta body: the JSON form of renuver.Delta, with
// inserts in the batch-impute tuple dialect (attribute-name-keyed
// objects) and updates carrying one value each.
type deltaRequest struct {
	Inserts []map[string]json.RawMessage `json:"inserts"`
	Updates []deltaUpdate                `json:"updates"`
	Deletes []int                        `json:"deletes"`
}

// resolveDeltaAttr maps a JSON attribute reference — name or index — to the
// schema position.
func resolveDeltaAttr(schema *renuver.Schema, raw json.RawMessage) (int, error) {
	if len(raw) == 0 {
		return 0, fmt.Errorf("update is missing \"attr\"")
	}
	if raw[0] == '"' {
		var name string
		if err := json.Unmarshal(raw, &name); err != nil {
			return 0, fmt.Errorf("bad attribute reference %s", raw)
		}
		a, ok := schema.Index(name)
		if !ok {
			return 0, fmt.Errorf("unknown attribute %q", name)
		}
		return a, nil
	}
	var a int
	if err := json.Unmarshal(raw, &a); err != nil {
		return 0, fmt.Errorf("bad attribute reference %s", raw)
	}
	if a < 0 || a >= schema.Len() {
		return 0, fmt.Errorf("attribute index %d outside arity %d", a, schema.Len())
	}
	return a, nil
}

// decodeDelta converts the JSON body into the typed mutation batch —
// the same renuver.Delta the Go API and the `renuver delta` CLI verb
// consume.
func decodeDelta(schema *renuver.Schema, body []byte) (renuver.Delta, error) {
	var req deltaRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return renuver.Delta{}, fmt.Errorf("bad JSON delta: %w", err)
	}
	var d renuver.Delta
	for i, obj := range req.Inserts {
		t, err := decodeBatchTuple(schema, obj)
		if err != nil {
			return renuver.Delta{}, fmt.Errorf("insert %d: %w", i, err)
		}
		d.Inserts = append(d.Inserts, t)
	}
	for i, u := range req.Updates {
		a, err := resolveDeltaAttr(schema, u.Attr)
		if err != nil {
			return renuver.Delta{}, fmt.Errorf("update %d: %w", i, err)
		}
		if len(u.Value) == 0 {
			return renuver.Delta{}, fmt.Errorf("update %d: missing \"value\"", i)
		}
		v, err := decodeJSONValue(schema, a, u.Value)
		if err != nil {
			return renuver.Delta{}, fmt.Errorf("update %d: %w", i, err)
		}
		d.Updates = append(d.Updates, renuver.CellUpdate{Row: u.Row, Attr: a, Value: v})
	}
	d.Deletes = req.Deletes
	return d, nil
}

// handleDelta serves POST /delta. A delta is admitted through the same
// gate as imputation work (revalidating Σ over the changed rows is real
// work), applied atomically, and answered with the DeltaResult JSON:
// the new epoch, the applied mutation counts, and what the delta cost
// (Σ repairs, cache invalidation, index rebuild). Error envelopes
// follow the batch-impute conventions: 405 on non-POST, 415 on non-JSON
// bodies, 400 on a body that does not decode against the schema, 422
// when the mutation batch is rejected whole (bad row handles, arity or
// kind mismatches), 429/503 from admission, 504 on deadline expiry —
// the old epoch keeps serving in every error case.
func handleDelta(w http.ResponseWriter, r *http.Request, sess *renuver.Session,
	g *gate, metrics *renuver.MetricsRecorder, limits serveLimits, logger *slog.Logger) {

	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed",
			"POST a JSON delta to mutate the session base")
		return
	}
	if ct := r.Header.Get("Content-Type"); !jsonContentType(ct) {
		writeError(w, http.StatusUnsupportedMediaType, "unsupported_media_type",
			fmt.Sprintf("unsupported Content-Type %q: POST a JSON delta (application/json)", ct))
		return
	}
	baseView := sess.BaseView()
	if baseView == nil {
		writeError(w, http.StatusUnprocessableEntity, "unprocessable",
			"deltas need a session with a base instance")
		return
	}
	schema := baseView.Relation().Schema()

	release, err := g.acquire(r.Context())
	if err != nil {
		if errors.Is(err, errQueueFull) {
			metrics.Add(renuver.CtrServeRejected, 1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "queue_full",
				"admission queue full; retry later")
			return
		}
		metrics.Add(renuver.CtrServeTimeouts, 1)
		writeError(w, http.StatusServiceUnavailable, "canceled",
			"request abandoned while queued")
		return
	}
	defer release()
	metrics.Add(renuver.CtrServeAccepted, 1)
	lg := reqLogger(r.Context(), logger)

	ctx := r.Context()
	if limits.requestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, limits.requestTimeout)
		defer cancel()
	}

	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "reading body: "+err.Error())
		return
	}
	d, err := decodeDelta(schema, body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}

	start := time.Now()
	res, err := sess.ApplyDelta(ctx, d)
	if err != nil {
		if errors.Is(err, renuver.ErrCanceled) {
			metrics.Add(renuver.CtrServeTimeouts, 1)
			lg.Warn("delta deadline exceeded", "elapsed", time.Since(start).String())
			writeError(w, http.StatusGatewayTimeout, "timeout",
				"request deadline exceeded; the delta was not applied")
			return
		}
		lg.Error("delta rejected", "error", err)
		writeError(w, http.StatusUnprocessableEntity, "unprocessable", err.Error())
		return
	}
	lg.Info("delta applied",
		"epoch", res.Epoch, "rows", res.Rows,
		"inserted", res.Inserted, "updated", res.Updated, "deleted", res.Deleted,
		"rules", res.Rules, "sigma_dropped", res.SigmaDropped, "sigma_tightened", res.SigmaTightened,
		"elapsed", time.Since(start).Round(time.Microsecond).String())
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = json.NewEncoder(w).Encode(res)
}
