package main

import (
	"bytes"
	"path/filepath"
	"testing"

	renuver "repro"
)

func TestRunToFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "glass.csv")
	if err := run("glass", 50, 3, out, nil); err != nil {
		t.Fatal(err)
	}
	rel, err := renuver.LoadCSVFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 50 || rel.Schema().Len() != 11 {
		t.Errorf("shape = %dx%d", rel.Len(), rel.Schema().Len())
	}
}

func TestRunToStdout(t *testing.T) {
	var buf bytes.Buffer
	if err := run("bridges", 20, 1, "", &buf); err != nil {
		t.Fatal(err)
	}
	rel, err := renuver.LoadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 20 {
		t.Errorf("rows = %d", rel.Len())
	}
}

func TestRunDefaultSize(t *testing.T) {
	var buf bytes.Buffer
	if err := run("bridges", 0, 1, "", &buf); err != nil {
		t.Fatal(err)
	}
	rel, err := renuver.LoadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 108 { // Table 3 size
		t.Errorf("default size = %d, want 108", rel.Len())
	}
}

func TestRunJSONLinesOutput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "cars.jsonl")
	if err := run("cars", 15, 1, out, nil); err != nil {
		t.Fatal(err)
	}
	rel, err := renuver.LoadJSONLinesFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 15 || rel.Schema().Len() != 9 {
		t.Errorf("shape = %dx%d", rel.Len(), rel.Schema().Len())
	}
}

func TestRunUnknownDataset(t *testing.T) {
	if err := run("bogus", 0, 1, "", nil); err == nil {
		t.Error("unknown dataset accepted")
	}
	if err := run("bogus", 10, 1, "", nil); err == nil {
		t.Error("unknown dataset with explicit n accepted")
	}
}
