// Command datagen writes one of the synthetic evaluation datasets
// (restaurant, cars, glass, bridges, physician) as CSV.
//
// Usage:
//
//	datagen -dataset restaurant [-n 864] [-seed 1] [-out restaurant.csv]
//
// With -n 0 the Table 3 default size of the dataset is used.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	renuver "repro"
	"repro/internal/datagen"
)

func main() {
	var (
		name = flag.String("dataset", "", "dataset name: "+strings.Join(renuver.DatasetNames(), ", "))
		n    = flag.Int("n", 0, "tuple count (0 = the paper's Table 3 size)")
		seed = flag.Int64("seed", 1, "generator seed")
		out  = flag.String("out", "", "output file (default: stdout; .jsonl extension selects JSON lines)")
	)
	flag.Parse()
	if *name == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*name, *n, *seed, *out, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(name string, n int, seed int64, out string, stdout io.Writer) error {
	if n == 0 {
		n = datagen.DefaultSizes[strings.ToLower(name)]
		if n == 0 {
			return fmt.Errorf("unknown dataset %q", name)
		}
	}
	rel, err := renuver.GenerateDataset(name, n, seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "generated %s: %d tuples x %d attributes\n",
		name, rel.Len(), rel.Schema().Len())
	if out == "" {
		return renuver.SaveCSV(stdout, rel)
	}
	if strings.HasSuffix(out, ".jsonl") || strings.HasSuffix(out, ".ndjson") {
		return renuver.SaveJSONLinesFile(out, rel)
	}
	return renuver.SaveCSVFile(out, rel)
}
