// Command benchdiff is the performance-regression gate: it compares a
// freshly measured benchmark JSON document (the BENCH_*.json shape the
// env-gated TestBench*JSON emitters write) against the committed
// baseline and fails when a benchmark got slower than the tolerance
// band allows.
//
// Usage:
//
//	benchdiff [flags] <baseline.json> <current.json> [<baseline> <current> ...]
//
// Files are compared pairwise. Records are matched by benchmark name;
// a benchmark present in the baseline but missing from the current run
// is itself a failure (a silently dropped benchmark is how regressions
// hide). Three dimensions are gated independently:
//
//   - ns/op with -tolerance (default 0.50): wall clock is noisy on
//     shared hosts, so the band is wide; a real regression that matters
//     clears 50% easily.
//   - allocs/op with -allocs-tolerance (default 0.02) plus the absolute
//     -allocs-slack (default 2): allocation counts are deterministic up
//     to amortized map growth, so the band is tight — the zero-alloc
//     guarantees of the hot paths are enforced here, not by eyeballs.
//   - bytes/op with -bytes-tolerance (default 0.50).
//
// Improvements are reported but never fail the gate; refresh the
// committed baselines (make bench-update) to claim them.
//
// `make bench-check` wires this behind fresh measurements; `make
// bench-update` blesses the current figures as the new baselines.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// Record is one benchmark's measured figures, matched by Name across
// the baseline and current documents.
type Record struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Tolerance is the per-dimension regression band.
type Tolerance struct {
	Time        float64 // relative ns/op headroom
	Allocs      float64 // relative allocs/op headroom
	AllocsSlack int64   // absolute allocs/op headroom on top
	Bytes       float64 // relative bytes/op headroom
}

// parseRecords extracts every benchmark record from a BENCH_*.json
// document, wherever it nests: the walker looks for objects carrying a
// "name" string and an "ns_per_op" number, so the per-package envelope
// differences (engine's cache_stats, session's speedup, discovery's
// gomaxprocs) never need schema-specific code. Object keys are walked
// in sorted order and the first occurrence of a name wins, so duplicate
// names resolve deterministically — a historical document with
// "after"/"before" sections yields the "after" figures.
func parseRecords(doc []byte) (map[string]Record, error) {
	var root any
	if err := json.Unmarshal(doc, &root); err != nil {
		return nil, err
	}
	out := make(map[string]Record)
	var walk func(v any)
	walk = func(v any) {
		switch node := v.(type) {
		case []any:
			for _, e := range node {
				walk(e)
			}
		case map[string]any:
			name, hasName := node["name"].(string)
			ns, hasNs := node["ns_per_op"].(float64)
			if hasName && hasNs {
				if _, seen := out[name]; seen {
					return
				}
				r := Record{Name: name, NsPerOp: ns}
				if it, ok := node["iterations"].(float64); ok {
					r.Iterations = int(it)
				}
				if a, ok := node["allocs_per_op"].(float64); ok {
					r.AllocsPerOp = int64(a)
				}
				if b, ok := node["bytes_per_op"].(float64); ok {
					r.BytesPerOp = int64(b)
				}
				out[name] = r
				return
			}
			keys := make([]string, 0, len(node))
			for k := range node {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				walk(node[k])
			}
		}
	}
	walk(root)
	if len(out) == 0 {
		return nil, fmt.Errorf("no benchmark records found")
	}
	return out, nil
}

// diffLine is one compared dimension of one benchmark.
type diffLine struct {
	name, dim  string
	base, curr float64
	failed     bool
}

func (d diffLine) String() string {
	verdict := "ok"
	if d.failed {
		verdict = "REGRESSION"
	} else if d.curr < d.base {
		verdict = "improved"
	}
	delta := 0.0
	if d.base != 0 {
		delta = (d.curr - d.base) / d.base * 100
	}
	return fmt.Sprintf("%-45s %-10s %14.0f -> %14.0f  %+7.1f%%  %s",
		d.name, d.dim, d.base, d.curr, delta, verdict)
}

// compare gates the current records against the baseline. Every line of
// the report is returned; failed reports whether any dimension broke
// its band (or a baseline benchmark vanished).
func compare(baseline, current map[string]Record, tol Tolerance) (report []string, failed bool) {
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base := baseline[name]
		curr, ok := current[name]
		if !ok {
			report = append(report, fmt.Sprintf("%-45s MISSING from current run", name))
			failed = true
			continue
		}
		checks := []diffLine{
			{name, "ns/op", base.NsPerOp, curr.NsPerOp,
				curr.NsPerOp > base.NsPerOp*(1+tol.Time)},
			{name, "allocs/op", float64(base.AllocsPerOp), float64(curr.AllocsPerOp),
				float64(curr.AllocsPerOp) > float64(base.AllocsPerOp)*(1+tol.Allocs)+float64(tol.AllocsSlack)},
			{name, "bytes/op", float64(base.BytesPerOp), float64(curr.BytesPerOp),
				float64(curr.BytesPerOp) > float64(base.BytesPerOp)*(1+tol.Bytes)},
		}
		for _, c := range checks {
			report = append(report, c.String())
			failed = failed || c.failed
		}
	}
	extras := make([]string, 0)
	for name := range current {
		if _, ok := baseline[name]; !ok {
			extras = append(extras, name)
		}
	}
	sort.Strings(extras)
	for _, name := range extras {
		report = append(report, fmt.Sprintf("%-45s new benchmark (no baseline; run make bench-update)", name))
	}
	return report, failed
}

// diffFiles compares one baseline/current file pair.
func diffFiles(baselinePath, currentPath string, tol Tolerance) (report []string, failed bool, err error) {
	baseDoc, err := os.ReadFile(baselinePath)
	if err != nil {
		return nil, false, err
	}
	currDoc, err := os.ReadFile(currentPath)
	if err != nil {
		return nil, false, err
	}
	baseline, err := parseRecords(baseDoc)
	if err != nil {
		return nil, false, fmt.Errorf("%s: %w", baselinePath, err)
	}
	current, err := parseRecords(currDoc)
	if err != nil {
		return nil, false, fmt.Errorf("%s: %w", currentPath, err)
	}
	report, failed = compare(baseline, current, tol)
	return report, failed, nil
}

func run(args []string) (failed bool, err error) {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	var tol Tolerance
	fs.Float64Var(&tol.Time, "tolerance", 0.50, "relative ns/op regression band")
	fs.Float64Var(&tol.Allocs, "allocs-tolerance", 0.02, "relative allocs/op regression band")
	fs.Int64Var(&tol.AllocsSlack, "allocs-slack", 2, "absolute allocs/op headroom on top of the relative band")
	fs.Float64Var(&tol.Bytes, "bytes-tolerance", 0.50, "relative bytes/op regression band")
	if err := fs.Parse(args); err != nil {
		return false, err
	}
	paths := fs.Args()
	if len(paths) == 0 || len(paths)%2 != 0 {
		return false, fmt.Errorf("usage: benchdiff [flags] <baseline.json> <current.json> [...]")
	}
	for i := 0; i < len(paths); i += 2 {
		report, pairFailed, err := diffFiles(paths[i], paths[i+1], tol)
		if err != nil {
			return true, err
		}
		fmt.Printf("== %s vs %s\n", paths[i], paths[i+1])
		for _, line := range report {
			fmt.Println(line)
		}
		failed = failed || pairFailed
	}
	return failed, nil
}

func main() {
	failed, err := run(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchdiff: performance regression detected (see report above)")
		os.Exit(1)
	}
	fmt.Println("benchdiff: all benchmarks within tolerance")
}
