package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const baselineDoc = `{
  "package": "repro/internal/core",
  "benchmarks": [
    {"name": "Impute", "iterations": 1000, "ns_per_op": 40000, "allocs_per_op": 300, "bytes_per_op": 24000},
    {"name": "Levenshtein", "iterations": 100000, "ns_per_op": 100, "allocs_per_op": 0, "bytes_per_op": 0}
  ]
}`

func TestParseRecordsFlat(t *testing.T) {
	recs, err := parseRecords([]byte(baselineDoc))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
	imp := recs["Impute"]
	if imp.NsPerOp != 40000 || imp.AllocsPerOp != 300 || imp.BytesPerOp != 24000 || imp.Iterations != 1000 {
		t.Fatalf("Impute record = %+v", imp)
	}
}

// The engine/session/discovery documents nest their records beside
// extra envelope fields; the walker must find them all, and a
// before/after pair with colliding names must resolve deterministically
// to the "after" (current) figures — keys are walked sorted, first
// occurrence wins.
func TestParseRecordsNested(t *testing.T) {
	doc := `{
	  "host": {"gomaxprocs": 1, "note": "x"},
	  "before": {"benchmarks": [{"name": "Discover/strings", "ns_per_op": 200, "allocs_per_op": 9}]},
	  "after":  {"benchmarks": [{"name": "Discover/strings", "ns_per_op": 100, "allocs_per_op": 5}]},
	  "session_speedup": 1.9
	}`
	recs, err := parseRecords([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	r, ok := recs["Discover/strings"]
	if !ok || r.NsPerOp != 100 || r.AllocsPerOp != 5 {
		t.Fatalf("nested record = %+v (ok=%v), want the later occurrence", r, ok)
	}
}

func TestParseRecordsEmpty(t *testing.T) {
	if _, err := parseRecords([]byte(`{"benchmarks": []}`)); err == nil {
		t.Fatal("empty document accepted")
	}
}

// TestCommittedBaselinesParse keeps the repo's BENCH_*.json files
// loadable by the gate — a baseline the gate cannot read is a gate that
// silently stopped gating.
func TestCommittedBaselinesParse(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join("..", "..", "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Skip("no committed baselines")
	}
	for _, path := range matches {
		doc, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		recs, err := parseRecords(doc)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		for name, r := range recs {
			if r.NsPerOp <= 0 {
				t.Errorf("%s: %s has ns_per_op %v", path, name, r.NsPerOp)
			}
		}
	}
}

func defaultTol() Tolerance {
	return Tolerance{Time: 0.50, Allocs: 0.02, AllocsSlack: 2, Bytes: 0.50}
}

// TestCompareWithinTolerance: jitter inside the bands passes.
func TestCompareWithinTolerance(t *testing.T) {
	base := map[string]Record{"Impute": {Name: "Impute", NsPerOp: 40000, AllocsPerOp: 300, BytesPerOp: 24000}}
	curr := map[string]Record{"Impute": {Name: "Impute", NsPerOp: 55000, AllocsPerOp: 302, BytesPerOp: 30000}}
	if _, failed := compare(base, curr, defaultTol()); failed {
		t.Fatal("in-band jitter flagged as regression")
	}
}

// TestCompareSyntheticRegression proves the gate actually fails: a
// doubled ns/op, an allocation growth past the slack, and a vanished
// benchmark must each trip it.
func TestCompareSyntheticRegression(t *testing.T) {
	base := map[string]Record{
		"Impute":      {Name: "Impute", NsPerOp: 40000, AllocsPerOp: 300, BytesPerOp: 24000},
		"Levenshtein": {Name: "Levenshtein", NsPerOp: 100, AllocsPerOp: 0, BytesPerOp: 0},
	}

	slow := map[string]Record{
		"Impute":      {Name: "Impute", NsPerOp: 80000, AllocsPerOp: 300, BytesPerOp: 24000},
		"Levenshtein": base["Levenshtein"],
	}
	report, failed := compare(base, slow, defaultTol())
	if !failed {
		t.Fatal("2x ns/op not flagged")
	}
	if !strings.Contains(strings.Join(report, "\n"), "REGRESSION") {
		t.Fatalf("report lacks REGRESSION marker:\n%s", strings.Join(report, "\n"))
	}

	leaky := map[string]Record{
		"Impute":      {Name: "Impute", NsPerOp: 40000, AllocsPerOp: 309, BytesPerOp: 24000},
		"Levenshtein": base["Levenshtein"],
	}
	if _, failed := compare(base, leaky, defaultTol()); !failed {
		t.Fatal("allocs/op past the band not flagged")
	}

	// The zero-alloc kernel growing any allocation at all clears the
	// absolute slack only; 3 allocs must fail against a 0 baseline.
	hot := map[string]Record{
		"Impute":      base["Impute"],
		"Levenshtein": {Name: "Levenshtein", NsPerOp: 100, AllocsPerOp: 3, BytesPerOp: 48},
	}
	if _, failed := compare(base, hot, defaultTol()); !failed {
		t.Fatal("zero-alloc kernel growing 3 allocs/op not flagged")
	}

	missing := map[string]Record{"Impute": base["Impute"]}
	report, failed = compare(base, missing, defaultTol())
	if !failed {
		t.Fatal("vanished benchmark not flagged")
	}
	if !strings.Contains(strings.Join(report, "\n"), "MISSING") {
		t.Fatalf("report lacks MISSING marker:\n%s", strings.Join(report, "\n"))
	}
}

// TestCompareImprovementPasses: faster/leaner figures never fail; the
// new-benchmark case is reported but non-fatal.
func TestCompareImprovementPasses(t *testing.T) {
	base := map[string]Record{"Impute": {Name: "Impute", NsPerOp: 40000, AllocsPerOp: 300, BytesPerOp: 24000}}
	curr := map[string]Record{
		"Impute": {Name: "Impute", NsPerOp: 20000, AllocsPerOp: 150, BytesPerOp: 12000},
		"New":    {Name: "New", NsPerOp: 10},
	}
	report, failed := compare(base, curr, defaultTol())
	if failed {
		t.Fatal("improvement flagged as regression")
	}
	joined := strings.Join(report, "\n")
	if !strings.Contains(joined, "improved") || !strings.Contains(joined, "new benchmark") {
		t.Fatalf("report:\n%s", joined)
	}
}

// TestRunEndToEnd drives the CLI surface over temp files: exit-worthy
// regression on one pair, clean pass on identical figures, usage error
// on an odd argument count.
func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.json")
	if err := os.WriteFile(basePath, []byte(baselineDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	slowPath := filepath.Join(dir, "slow.json")
	slowDoc := strings.Replace(baselineDoc, `"ns_per_op": 40000`, `"ns_per_op": 90000`, 1)
	if err := os.WriteFile(slowPath, []byte(slowDoc), 0o644); err != nil {
		t.Fatal(err)
	}

	failed, err := run([]string{basePath, basePath})
	if err != nil || failed {
		t.Fatalf("identical pair: failed=%v err=%v", failed, err)
	}
	failed, err = run([]string{basePath, slowPath})
	if err != nil || !failed {
		t.Fatalf("regressed pair: failed=%v err=%v", failed, err)
	}
	if _, err := run([]string{basePath}); err == nil {
		t.Fatal("odd argument count accepted")
	}
	if failed, err := run([]string{basePath, filepath.Join(dir, "absent.json")}); err == nil || !failed {
		t.Fatal("unreadable current file accepted")
	}
}
