// Command profile prints per-attribute summaries of a CSV or JSON-lines
// file: null rates, distinctness, numeric ranges, top values, and the
// sampled mean pairwise distance that informs RFDc threshold selection.
//
// Usage:
//
//	profile -in data.csv [-topk 5] [-sample-pairs 1000]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	renuver "repro"
	"repro/internal/profile"
)

func main() {
	var (
		in          = flag.String("in", "", "input CSV or .jsonl file (required)")
		topK        = flag.Int("topk", 5, "top values listed per attribute")
		samplePairs = flag.Int("sample-pairs", 1000, "pairs sampled for the mean distance")
		seed        = flag.Int64("seed", 1, "sampling seed")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*in, *topK, *samplePairs, *seed, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "profile:", err)
		os.Exit(1)
	}
}

func run(in string, topK, samplePairs int, seed int64, w io.Writer) error {
	var rel *renuver.Relation
	var err error
	if strings.HasSuffix(in, ".jsonl") || strings.HasSuffix(in, ".ndjson") {
		rel, err = renuver.LoadJSONLinesFile(in)
	} else {
		rel, err = renuver.LoadCSVFile(in)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%d tuples x %d attributes, %d missing cells\n\n",
		rel.Len(), rel.Schema().Len(), rel.CountMissing())
	profiles := profile.Relation(rel, profile.Options{
		TopK: topK, SamplePairs: samplePairs, Seed: seed,
	})
	_, err = io.WriteString(w, profile.Render(profiles))
	return err
}
