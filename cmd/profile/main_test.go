package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunProfilesCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := os.WriteFile(path, []byte("City,Score\nLA,1.0\nNY,\nLA,3.0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run(path, 3, 100, 1, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"3 tuples x 2 attributes, 1 missing", "City", "LA(2)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}
}

func TestRunProfilesJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.jsonl")
	if err := os.WriteFile(path, []byte("{\"a\":1}\n{\"a\":null}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run(path, 5, 100, 1, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "1 missing") {
		t.Errorf("output:\n%s", sb.String())
	}
}

func TestRunMissingFile(t *testing.T) {
	var sb strings.Builder
	if err := run(filepath.Join(t.TempDir(), "nope.csv"), 5, 100, 1, &sb); err == nil {
		t.Error("missing file accepted")
	}
}
