package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	renuver "repro"
)

const sampleCSV = `Name,City,Phone,Class
Granita,Malibu,310/456-0488,6
Granita,Malibu,310-456-0488,6
Citrus,Los Angeles,213/857-0034,6
Citrus,LA,213/857-0034,6
Fenix,Hollywood,213/848-6677,5
`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunWritesLoadableRFDs(t *testing.T) {
	in := writeTemp(t, "data.csv", sampleCSV)
	out := filepath.Join(t.TempDir(), "sigma.rfd")
	if err := run(options{in: in, out: out, threshold: 9, maxLHS: 2, minSupport: 1, seed: 1}, os.Stderr); err != nil {
		t.Fatal(err)
	}
	rel, err := renuver.LoadCSVFile(in)
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := renuver.LoadRFDsFile(out, rel.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if len(sigma) == 0 {
		t.Error("no RFDs written")
	}
}

func TestRunAdaptiveCaps(t *testing.T) {
	in := writeTemp(t, "data.csv", sampleCSV)
	out := filepath.Join(t.TempDir(), "sigma.rfd")
	if err := run(options{in: in, out: out, threshold: 15, maxLHS: 2, minSupport: 1, seed: 1, adaptive: 0.25}, os.Stderr); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "RFDcs") {
		t.Errorf("header missing: %q", strings.SplitN(string(data), "\n", 2)[0])
	}
}

func TestRunToStdoutWithSamplingAndDominated(t *testing.T) {
	in := writeTemp(t, "data.csv", sampleCSV)
	var buf bytes.Buffer
	err := run(options{
		in: in, threshold: 6, maxLHS: 2, minSupport: 1,
		maxPairs: 6, seed: 3, keepDominated: true,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "RFDcs") {
		t.Errorf("stdout output missing header: %q", buf.String()[:40])
	}
	rel, err := renuver.LoadCSVFile(in)
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := renuver.LoadRFDs(&buf, rel.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if len(sigma) == 0 {
		t.Error("no RFDs on stdout")
	}
}

func TestRunMissingInput(t *testing.T) {
	if err := run(options{in: filepath.Join(t.TempDir(), "nope.csv"), threshold: 9}, os.Stdout); err == nil {
		t.Error("missing input accepted")
	}
}

func TestRunBadConfig(t *testing.T) {
	in := writeTemp(t, "data.csv", sampleCSV)
	if err := run(options{in: in, threshold: -5}, os.Stdout); err == nil {
		t.Error("negative threshold accepted")
	}
}
