// Command rfdiscover discovers RFDcs holding on a CSV file and writes
// them one per line (the format cmd/renuver -rfds consumes).
//
// Usage:
//
//	rfdiscover -in data.csv [-threshold 15] [-maxlhs 2] [-out sigma.rfd]
//	           [-max-pairs 0] [-keep-dominated] [-adaptive 0.25] [-workers 0]
//	           [-shards 0]
//
// With -adaptive q, per-attribute threshold caps are derived from the
// q-quantile of each attribute's distance distribution (the paper's
// Sec. 7 extension) before discovery runs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	renuver "repro"
)

type options struct {
	in, out       string
	threshold     float64
	maxLHS        int
	maxPairs      int
	seed          int64
	keepDominated bool
	minSupport    int
	adaptive      float64
	workers       int
	shards        int
}

// validateParallelism enforces the CLI rule for parallelism-shaped
// flags: 0 means the documented default, negatives and absurdly large
// values are rejected before any work starts. It is the shared
// renuver.CheckParallelism rule, so this CLI, the renuver CLI, and the
// library option validators all enforce one bound.
func validateParallelism(name string, v int) error {
	return renuver.CheckParallelism(name, v)
}

func main() {
	var opts options
	flag.StringVar(&opts.in, "in", "", "input CSV (required)")
	flag.StringVar(&opts.out, "out", "", "output RFDc file (default: stdout)")
	flag.Float64Var(&opts.threshold, "threshold", 15, "maximum constraint threshold (the paper sweeps 3..15)")
	flag.IntVar(&opts.maxLHS, "maxlhs", 2, "maximum LHS attribute-set size")
	flag.IntVar(&opts.maxPairs, "max-pairs", 0, "tuple-pair sample cap (0 = exact)")
	flag.Int64Var(&opts.seed, "seed", 1, "sampling seed")
	flag.BoolVar(&opts.keepDominated, "keep-dominated", false, "keep dependencies implied by more general ones")
	flag.IntVar(&opts.minSupport, "min-support", 1, "minimum satisfying pairs per dependency")
	flag.Float64Var(&opts.adaptive, "adaptive", 0, "quantile for per-attribute adaptive threshold caps (0 = off)")
	flag.IntVar(&opts.workers, "workers", 0, "discovery worker goroutines (0 = all CPUs, 1 = serial); output is identical either way")
	flag.IntVar(&opts.shards, "shards", 0, "pattern materialization shards bounding peak memory (0 = unsharded; output identical for any value)")
	flag.Parse()
	if opts.in == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := validateParallelism("-workers", opts.workers); err != nil {
		fmt.Fprintln(os.Stderr, "rfdiscover:", err)
		os.Exit(2)
	}
	if err := validateParallelism("-shards", opts.shards); err != nil {
		fmt.Fprintln(os.Stderr, "rfdiscover:", err)
		os.Exit(2)
	}
	if err := run(opts, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rfdiscover:", err)
		os.Exit(1)
	}
}

func run(opts options, stdout io.Writer) error {
	rel, err := renuver.LoadCSVFile(opts.in)
	if err != nil {
		return err
	}
	cfg := renuver.DiscoveryOptions{
		MaxThreshold:  opts.threshold,
		MaxLHS:        opts.maxLHS,
		MaxPairs:      opts.maxPairs,
		Seed:          opts.seed,
		KeepDominated: opts.keepDominated,
		MinSupport:    opts.minSupport,
		Workers:       opts.workers,
		Shards:        opts.shards,
	}
	if opts.adaptive > 0 {
		cfg.AttrLimits = renuver.AdaptiveThresholdLimitsWorkers(rel, opts.adaptive, opts.maxPairs, opts.seed, opts.workers)
	}
	sigma, err := renuver.DiscoverRFDs(rel, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "discovered %d RFDcs on %d tuples x %d attributes\n",
		len(sigma), rel.Len(), rel.Schema().Len())
	if opts.out == "" {
		return renuver.SaveRFDs(stdout, sigma, rel.Schema())
	}
	return renuver.SaveRFDsFile(opts.out, sigma, rel.Schema())
}
