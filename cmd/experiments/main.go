// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -exp table3|figure2|figure3|table4|table5|ablations|scaling|extended|all
//	            [-scale quick|full|bench] [-format text|csv]
//
// Text output is the numeric series behind each figure (one row per
// series point) and aligned text for each table; csv output is one
// machine-readable block per experiment. See EXPERIMENTS.md for the
// paper-vs-measured record.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment: table3, figure2, figure3, table4, table5, ablations, scaling, extended, mechanisms, all")
		scale  = flag.String("scale", "quick", "campaign scale: quick, full, bench")
		format = flag.String("format", "text", "output format: text, csv")
	)
	flag.Parse()
	if err := run(*exp, *scale, *format, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(exp, scaleName, format string, w io.Writer) error {
	s, ok := experiments.ScaleByName(scaleName)
	if !ok {
		return fmt.Errorf("unknown scale %q", scaleName)
	}
	if format != "text" && format != "csv" {
		return fmt.Errorf("unknown format %q", format)
	}
	env := experiments.NewEnv(s)
	fmt.Fprintf(w, "# scale=%s seed=%d format=%s\n\n", s.Name, s.Seed, format)

	type step struct {
		name string
		fn   func() error
	}
	steps := []step{
		{"table3", func() error {
			rows, err := experiments.Table3(env)
			if err != nil {
				return err
			}
			if format == "csv" {
				return experiments.WriteTable3CSV(w, rows, env.Scale)
			}
			_, err = io.WriteString(w, experiments.RenderTable3(rows, env.Scale))
			return err
		}},
		{"figure2", func() error {
			cells, err := experiments.Figure2(env)
			if err != nil {
				return err
			}
			if format == "csv" {
				return experiments.WriteFigure2CSV(w, cells)
			}
			_, err = io.WriteString(w, experiments.RenderFigure2(cells, env.Scale))
			return err
		}},
		{"figure3", func() error {
			points, err := experiments.Figure3(env)
			if err != nil {
				return err
			}
			if format == "csv" {
				return experiments.WriteFigure3CSV(w, points)
			}
			_, err = io.WriteString(w, experiments.RenderFigure3(points, env.Scale))
			return err
		}},
		{"table4", func() error {
			rows, err := experiments.Table4(env)
			if err != nil {
				return err
			}
			if format == "csv" {
				return experiments.WriteStressCSV(w, rows)
			}
			_, err = io.WriteString(w, experiments.RenderStress(rows))
			return err
		}},
		{"table5", func() error {
			rows, err := experiments.Table5(env)
			if err != nil {
				return err
			}
			if format == "csv" {
				return experiments.WriteStressCSV(w, rows)
			}
			_, err = io.WriteString(w, experiments.RenderStress(rows))
			return err
		}},
		{"ablations", func() error {
			rows, err := experiments.Ablations(env)
			if err != nil {
				return err
			}
			if format == "csv" {
				return experiments.WriteAblationsCSV(w, rows)
			}
			_, err = io.WriteString(w, experiments.RenderAblations(rows))
			return err
		}},
		{"scaling", func() error {
			rows, err := experiments.ComplexityScaling(env)
			if err != nil {
				return err
			}
			if format == "csv" {
				return experiments.WriteScalingCSV(w, rows)
			}
			_, err = io.WriteString(w, experiments.RenderScaling(rows))
			return err
		}},
		{"extended", func() error {
			points, err := experiments.ExtendedComparison(env)
			if err != nil {
				return err
			}
			if format == "csv" {
				return experiments.WriteExtendedCSV(w, points)
			}
			_, err = io.WriteString(w, experiments.RenderExtended(points, env.Scale))
			return err
		}},
		{"mechanisms", func() error {
			rows, err := experiments.MechanismStudy(env)
			if err != nil {
				return err
			}
			_, err = io.WriteString(w, experiments.RenderMechanisms(rows))
			return err
		}},
	}

	matched := false
	for _, st := range steps {
		if exp != "all" && exp != st.name {
			continue
		}
		matched = true
		start := time.Now()
		fmt.Fprintf(w, "== %s ==\n", st.name)
		if err := st.fn(); err != nil {
			return fmt.Errorf("%s: %w", st.name, err)
		}
		fmt.Fprintf(w, "(%s in %s)\n\n", st.name, time.Since(start).Round(time.Millisecond))
	}
	if !matched {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
