package main

import (
	"strings"
	"testing"
)

func TestRunValidation(t *testing.T) {
	var sb strings.Builder
	if err := run("table3", "bogus", "text", &sb); err == nil {
		t.Error("unknown scale accepted")
	}
	if err := run("table3", "bench", "xml", &sb); err == nil {
		t.Error("unknown format accepted")
	}
	if err := run("nonsense", "bench", "text", &sb); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunTable3Text(t *testing.T) {
	var sb strings.Builder
	if err := run("table3", "bench", "text", &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"== table3 ==", "restaurant", "thr="} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}
}

func TestRunAllBenchCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign in -short mode")
	}
	var sb strings.Builder
	if err := run("all", "bench", "csv", &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"== table3 ==", "== figure2 ==", "== figure3 ==",
		"== table4 ==", "== table5 ==", "== ablations ==",
		"== scaling ==", "== extended ==",
		"dataset,method,rate,precision,recall,f1", // figure3 CSV header
		"config,recall,precision,f1,time_ms",      // ablations CSV header
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q", want)
		}
	}
}

func TestRunScalingCSV(t *testing.T) {
	var sb strings.Builder
	if err := run("scaling", "bench", "csv", &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "tuples,sigma,missing,time_ms") {
		t.Errorf("csv header missing:\n%s", out)
	}
}
