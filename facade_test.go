package renuver

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
)

// TestFacadeStreamsAndBuffers exercises the io.Reader/Writer wrappers.
func TestFacadeStreamsAndBuffers(t *testing.T) {
	rel, err := LoadCSV(strings.NewReader(table2CSV))
	if err != nil {
		t.Fatal(err)
	}
	sigma := figure1Set(t, rel.Schema())
	var buf bytes.Buffer
	if err := SaveRFDs(&buf, sigma, rel.Schema()); err != nil {
		t.Fatal(err)
	}
	back, err := LoadRFDs(&buf, rel.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(sigma) {
		t.Errorf("RFD stream round trip: %d -> %d", len(sigma), len(back))
	}
}

func TestFacadeJSONAndMechanisms(t *testing.T) {
	rel := loadTable2(t)
	var buf bytes.Buffer
	if err := SaveJSONLines(&buf, rel); err != nil {
		t.Fatal(err)
	}
	back, err := LoadJSONLines(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != rel.Len() || back.CountMissing() != rel.CountMissing() {
		t.Error("JSON round trip changed shape or nulls")
	}
	for _, mech := range []Mechanism{MCAR, MAR, MNAR} {
		injRel, injected, err := InjectWithMechanism(rel, 0.1, mech, 1)
		if err != nil {
			t.Fatalf("%v: %v", mech, err)
		}
		if injRel.CountMissing() <= rel.CountMissing() || len(injected) == 0 {
			t.Errorf("%v: nothing injected", mech)
		}
	}
}

func TestFacadeExtensionWrappers(t *testing.T) {
	rel := loadTable2(t)

	limits := AdaptiveThresholdLimits(rel, 0.5, 0, 1)
	if len(limits) != rel.Schema().Len() {
		t.Errorf("limits = %v", limits)
	}

	a, err := ParseRFD("Name(<=5) -> Phone(<=1)", rel.Schema())
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseRFD("Name(<=3) -> Phone(<=2)", rel.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if !ImpliesRFD(a, b) || ImpliesRFD(b, a) {
		t.Error("ImpliesRFD wrapper wrong")
	}
	if got := MinimizeRFDs(RFDSet{a, b}); len(got) != 1 {
		t.Errorf("MinimizeRFDs = %d deps, want 1", len(got))
	}

	mt := NewRFDMaintainer(rel, RFDSet{a})
	if mt.Relation().Len() != rel.Len() {
		t.Error("maintainer base wrong")
	}
}

func TestFacadeExtraBaselines(t *testing.T) {
	rel, err := GenerateDataset("glass", 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	dirty, injected, err := Inject(rel, 0.05, 2)
	if err != nil {
		t.Fatal(err)
	}
	mm := NewMeanMode()
	lr, err := NewLocalRegression(RegressionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := DiscoverRFDs(rel, DiscoveryOptions{MaxThreshold: 6})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := NewDerandExact(sigma, DerandOptions{}, 5000)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{mm, lr, ex} {
		out, err := m.Impute(context.Background(), dirty)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		byAttr := ScoreByAttribute(out, injected, NewValidator())
		total := 0
		for _, s := range byAttr {
			total += s.Missing
		}
		if total != len(injected) {
			t.Errorf("%s: per-attribute missing sums to %d, want %d", m.Name(), total, len(injected))
		}
	}
	if _, err := NewDerandExact(sigma, DerandOptions{MaxCandidates: -1}, 0); err == nil {
		t.Error("bad Derand config accepted by NewDerandExact")
	}
}

func TestFacadeMethodContextPath(t *testing.T) {
	rel := loadTable2(t)
	sigma := figure1Set(t, rel.Schema())
	m := AsMethod(NewImputer(sigma))
	if m.Name() != "RENUVER" {
		t.Errorf("Name = %q", m.Name())
	}
	out, err := m.Impute(context.Background(), rel)
	if err != nil {
		t.Fatal(err)
	}
	if out.CountMissing() != 0 {
		t.Errorf("%d cells left", out.CountMissing())
	}
	// A cancelled context surfaces an error matching both the exported
	// sentinel and the context's own error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.Impute(ctx, rel); err == nil {
		t.Error("cancelled context not surfaced")
	} else if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want ErrCanceled and context.Canceled", err)
	}
}

func TestFacadeProfile(t *testing.T) {
	rel := loadTable2(t)
	profiles := Profile(rel, ProfileOptions{TopK: 2, Seed: 1})
	if len(profiles) != rel.Schema().Len() {
		t.Fatalf("profiles = %d", len(profiles))
	}
	byName := map[string]AttrProfile{}
	for _, p := range profiles {
		byName[p.Name] = p
	}
	if byName["Phone"].Nulls != 2 || byName["City"].Nulls != 1 {
		t.Errorf("null counts: Phone=%d City=%d", byName["Phone"].Nulls, byName["City"].Nulls)
	}
	if byName["Class"].Min != 5 || byName["Class"].Max != 6 {
		t.Errorf("Class range = [%v, %v]", byName["Class"].Min, byName["Class"].Max)
	}
}

func TestFacadeStreamAlias(t *testing.T) {
	rel := loadTable2(t)
	sigma := figure1Set(t, rel.Schema())
	var s *Stream = NewImputer(sigma).NewStream(rel.Head(3))
	if _, err := s.Append(rel.Row(3)); err != nil {
		t.Fatal(err)
	}
	if s.Relation().Len() != 4 {
		t.Errorf("stream length = %d", s.Relation().Len())
	}
}
