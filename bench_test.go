// Benchmarks regenerating every table and figure of the paper's
// evaluation (Sec. 6) at the bench scale, plus the ablation and
// complexity-scaling studies from DESIGN.md and micro-benchmarks of the
// hot paths. Each experiment bench reports an experiment-specific metric
// alongside time and allocations; run the cmd/experiments CLI at -scale
// full for the paper-sized campaign.
//
//	go test -bench=. -benchmem
package renuver

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/distance"
	"repro/internal/eval"
	"repro/internal/experiments"
	"repro/internal/impute/derand"
)

func benchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	return experiments.NewEnv(experiments.BenchScale())
}

// BenchmarkTable3Stats regenerates Table 3: dataset statistics, RFDc
// counts per threshold limit, missing counts per rate.
func BenchmarkTable3Stats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := benchEnv(b)
		rows, err := experiments.Table3(env)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkFigure2 regenerates Figure 2: RENUVER's P/R/F1 across
// threshold limits and missing rates on all four datasets. The mean F1
// over all cells is reported.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := benchEnv(b)
		cells, err := experiments.Figure2(env)
		if err != nil {
			b.Fatal(err)
		}
		f1 := 0.0
		for _, c := range cells {
			f1 += c.Metrics.F1
		}
		b.ReportMetric(f1/float64(len(cells)), "meanF1")
	}
}

// BenchmarkFigure3 regenerates Figure 3: the comparative evaluation of
// RENUVER vs Derand vs Holoclean (Restaurant) plus kNN (Glass).
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := benchEnv(b)
		points, err := experiments.Figure3(env)
		if err != nil {
			b.Fatal(err)
		}
		var renuverF1, bestOtherF1 float64
		var nR, nO int
		for _, p := range points {
			if p.Method == "RENUVER" {
				renuverF1 += p.Metrics.F1
				nR++
			} else {
				bestOtherF1 += p.Metrics.F1
				nO++
			}
		}
		b.ReportMetric(renuverF1/float64(nR), "renuverF1")
		b.ReportMetric(bestOtherF1/float64(nO), "baselineF1")
	}
}

// BenchmarkTable4 regenerates Table 4: the Restaurant stress test across
// high missing rates under the scaled time/memory budget.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := benchEnv(b)
		rows, err := experiments.Table4(env)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkTable5 regenerates Table 5: the Physician stress test across
// tuple counts at 1% missing.
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := benchEnv(b)
		rows, err := experiments.Table5(env)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkComplexityScaling is experiment X1: RENUVER wall clock on
// growing prefixes of the Restaurant dataset.
func BenchmarkComplexityScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := benchEnv(b)
		if _, err := experiments.ComplexityScaling(env); err != nil {
			b.Fatal(err)
		}
	}
}

// ablationBench measures one RENUVER variant on the Restaurant dataset
// at the bench scale and reports its F1.
func ablationBench(b *testing.B, opts ...core.Option) {
	env := benchEnv(b)
	rel, err := env.Dataset("restaurant")
	if err != nil {
		b.Fatal(err)
	}
	sigma, err := env.Sigma("restaurant", env.Scale.ComparisonThreshold)
	if err != nil {
		b.Fatal(err)
	}
	validator := experiments.Rules("restaurant")
	dirty, injected, err := eval.Inject(rel, 0.05, env.Scale.Seed)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var f1 float64
	for i := 0; i < b.N; i++ {
		res, err := core.New(sigma, opts...).Impute(dirty)
		if err != nil {
			b.Fatal(err)
		}
		f1 = eval.Score(res.Relation, injected, validator).F1
	}
	b.ReportMetric(f1, "F1")
}

// BenchmarkAblationBaseline is the paper-faithful configuration the
// ablations compare against.
func BenchmarkAblationBaseline(b *testing.B) { ablationBench(b) }

// BenchmarkAblationNoVerify is ablation A1: IS_FAULTLESS off.
func BenchmarkAblationNoVerify(b *testing.B) {
	ablationBench(b, core.WithVerifyMode(core.VerifyOff))
}

// BenchmarkAblationNoClustering is ablation A2: the Λ partition
// flattened into one cluster.
func BenchmarkAblationNoClustering(b *testing.B) {
	ablationBench(b, core.WithoutClustering())
}

// BenchmarkAblationNoRanking is ablation A3: candidates tried in row
// order instead of ascending distance.
func BenchmarkAblationNoRanking(b *testing.B) {
	ablationBench(b, core.WithoutRanking())
}

// BenchmarkAblationVerifyBothSides extends Algorithm 4 to RHS breaches.
func BenchmarkAblationVerifyBothSides(b *testing.B) {
	ablationBench(b, core.WithVerifyMode(core.VerifyBothSides))
}

// BenchmarkAblationNoIndex disables the donor index on
// equality-constrained LHS attributes (results are identical; this
// measures the index's time contribution).
func BenchmarkAblationNoIndex(b *testing.B) {
	ablationBench(b, core.WithoutIndex())
}

// BenchmarkStreamAppend measures arrival-time imputation (the Sec. 7
// incremental extension): one tuple appended to a warm stream.
func BenchmarkStreamAppend(b *testing.B) {
	env := benchEnv(b)
	rel, err := env.Dataset("restaurant")
	if err != nil {
		b.Fatal(err)
	}
	sigma, err := env.Sigma("restaurant", 15)
	if err != nil {
		b.Fatal(err)
	}
	base := rel.Head(rel.Len() - 1)
	arrival := rel.Row(rel.Len() - 1).Clone()
	arrival[2] = Null // damage one cell
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := core.New(sigma).NewStream(base)
		if _, err := s.Append(arrival); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDerandExactVsHeuristic measures the exact branch-and-bound
// (the ILP reference of [23]) against the instance the heuristic solves;
// the reported metric is the optimum's filled-cell count.
func BenchmarkDerandExactVsHeuristic(b *testing.B) {
	env := benchEnv(b)
	rel, err := env.Dataset("restaurant")
	if err != nil {
		b.Fatal(err)
	}
	small := rel.Head(40)
	sigma, err := env.SigmaFor(small, 15)
	if err != nil {
		b.Fatal(err)
	}
	dirty, _, err := eval.Inject(small, 0.05, 1)
	if err != nil {
		b.Fatal(err)
	}
	dr, err := derand.New(sigma, derand.Config{})
	if err != nil {
		b.Fatal(err)
	}
	ex := derand.NewExact(dr, 50000)
	b.ResetTimer()
	var filled int
	for i := 0; i < b.N; i++ {
		out, err := ex.Impute(context.Background(), dirty)
		if err != nil {
			b.Fatal(err)
		}
		filled = dirty.CountMissing() - out.CountMissing()
	}
	b.ReportMetric(float64(filled), "optimumFilled")
}

// --- micro-benchmarks of the hot paths -----------------------------------

// BenchmarkImputeRestaurant measures one full RENUVER run at bench scale.
func BenchmarkImputeRestaurant(b *testing.B) {
	env := benchEnv(b)
	rel, err := env.Dataset("restaurant")
	if err != nil {
		b.Fatal(err)
	}
	sigma, err := env.Sigma("restaurant", 15)
	if err != nil {
		b.Fatal(err)
	}
	dirty, _, err := eval.Inject(rel, 0.05, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.New(sigma).Impute(dirty); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiscovery measures RFDc discovery on the bench Restaurant.
func BenchmarkDiscovery(b *testing.B) {
	env := benchEnv(b)
	rel, err := env.Dataset("restaurant")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.SigmaFor(rel, 15); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDistancePattern measures the per-pair pattern computation
// that dominates both discovery and candidate generation.
func BenchmarkDistancePattern(b *testing.B) {
	env := benchEnv(b)
	rel, err := env.Dataset("restaurant")
	if err != nil {
		b.Fatal(err)
	}
	p := distance.NewPattern(rel.Schema().Len())
	t0, t1 := rel.Row(0), rel.Row(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		distance.PatternInto(p, t0, t1)
	}
}
