package discovery

import (
	"testing"

	"repro/internal/obs"
)

// TestDiscoverEmitsRuleProvenance: with a tracer configured, every
// discovered RFDc is reported exactly once, with a positive support and
// its own rendered rule text.
func TestDiscoverEmitsRuleProvenance(t *testing.T) {
	rel := table2(t)
	tr := obs.NewRingTracer(0, 1)
	sigma, err := Discover(rel, Config{MaxThreshold: 6, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if len(sigma) == 0 {
		t.Fatal("no RFDcs discovered")
	}

	var events []obs.TraceEvent
	for _, cell := range tr.Cells() {
		events = append(events, cell...)
	}
	if len(events) != len(sigma) {
		t.Fatalf("emitted %d rule events for %d discovered RFDcs", len(events), len(sigma))
	}
	seen := make(map[string]bool)
	for i, ev := range events {
		if ev.Kind != obs.EvRuleEmitted {
			t.Fatalf("event %d kind %v, want rule_emitted", i, ev.Kind)
		}
		if len(ev.Rules) != 1 || ev.Rules[0] == "" {
			t.Errorf("event %d carries no rule text: %+v", i, ev)
		}
		if ev.N < 1 {
			t.Errorf("rule %q support %d, want >= MinSupport", ev.Rules[0], ev.N)
		}
		if seen[ev.Rules[0]] {
			t.Errorf("rule %q reported twice", ev.Rules[0])
		}
		seen[ev.Rules[0]] = true
	}
	for _, dep := range sigma {
		if !seen[dep.Format(rel.Schema())] {
			t.Errorf("discovered %s never reported", dep.Format(rel.Schema()))
		}
	}
}

// TestDiscoverNoTracerNoEvents: discovery without a tracer behaves as
// before and emits nothing.
func TestDiscoverNoTracerNoEvents(t *testing.T) {
	rel := table2(t)
	with, err := Discover(rel, Config{MaxThreshold: 6})
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewRingTracer(0, 1)
	traced, err := Discover(rel, Config{MaxThreshold: 6, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	if len(with) != len(traced) {
		t.Errorf("tracer changed discovery: %d vs %d RFDcs", len(with), len(traced))
	}
}
