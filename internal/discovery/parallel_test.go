package discovery

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/rfd"
)

var parityWorkerCounts = []int{1, 2, 4, 8}

// table4Relation is the Table 4 stress workload: the synthetic
// Restaurant integration with its near-duplicate structure, at a size
// that keeps the exhaustive pattern space testable.
func table4Relation(t testing.TB) *dataset.Relation {
	t.Helper()
	rel, err := datagen.ByName("restaurant", 120, 2022)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

// encodeSet renders a discovered set through the textual codec — the
// byte-level identity the parity tests assert.
func encodeSet(t *testing.T, sigma rfd.Set, schema *dataset.Schema) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rfd.WriteSet(&buf, sigma, schema); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// ruleEvents flattens a tracer's cells into the rule_emitted sequence.
func ruleEvents(tr *obs.RingTracer) []obs.TraceEvent {
	var out []obs.TraceEvent
	for _, cell := range tr.Cells() {
		out = append(out, cell...)
	}
	return out
}

// TestDiscoverWorkerParity: the discovered set (textual codec) and the
// rule_emitted trace stream are byte-identical for every worker count,
// on both the Table 2 sample and the Table 4 Restaurant workload.
func TestDiscoverWorkerParity(t *testing.T) {
	workloads := []struct {
		name string
		rel  *dataset.Relation
		cfg  Config
	}{
		{"table2", table2(t), Config{MaxThreshold: 6}},
		{"table2-maxlhs3", table2(t), Config{MaxThreshold: 9, MaxLHS: 3}},
		{"table2-keep-dominated", table2(t), Config{MaxThreshold: 6, KeepDominated: true}},
		{"table4", table4Relation(t), Config{MaxThreshold: 6}},
	}
	for _, wl := range workloads {
		t.Run(wl.name, func(t *testing.T) {
			var refSet []byte
			var refEvents []obs.TraceEvent
			for _, workers := range parityWorkerCounts {
				cfg := wl.cfg
				cfg.Workers = workers
				tr := obs.NewRingTracer(0, 1)
				cfg.Tracer = tr
				sigma, err := Discover(wl.rel, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if len(sigma) == 0 {
					t.Fatalf("workers=%d discovered nothing", workers)
				}
				enc := encodeSet(t, sigma, wl.rel.Schema())
				events := ruleEvents(tr)
				if workers == parityWorkerCounts[0] {
					refSet, refEvents = enc, events
					continue
				}
				if !bytes.Equal(enc, refSet) {
					t.Errorf("workers=%d set differs from workers=%d:\n%s\nvs\n%s",
						workers, parityWorkerCounts[0], enc, refSet)
				}
				if len(events) != len(refEvents) {
					t.Fatalf("workers=%d emitted %d rule events, want %d",
						workers, len(events), len(refEvents))
				}
				for i, ev := range events {
					ref := refEvents[i]
					if ev.Kind != ref.Kind || ev.Attr != ref.Attr || ev.N != ref.N ||
						ev.Threshold != ref.Threshold || ev.Rules[0] != ref.Rules[0] {
						t.Errorf("workers=%d rule event %d = %+v, want %+v", workers, i, ev, ref)
					}
				}
			}
		})
	}
}

// TestDiscoverSampledParity: with MaxPairs forcing the sampled path,
// pair selection stays a single rng sequence, so the discovered set is
// worker-count independent for a fixed seed.
func TestDiscoverSampledParity(t *testing.T) {
	rel := table4Relation(t)
	var ref []byte
	for _, workers := range parityWorkerCounts {
		sigma, err := Discover(rel, Config{
			MaxThreshold: 6, MaxPairs: 500, Seed: 7, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		enc := encodeSet(t, sigma, rel.Schema())
		if workers == parityWorkerCounts[0] {
			ref = enc
			continue
		}
		if !bytes.Equal(enc, ref) {
			t.Errorf("sampled discovery differs at workers=%d", workers)
		}
	}
}

// TestDiscoverViewSharedCache: concurrent DiscoverView calls over one
// shared engine view (one distance cache) must race-cleanly produce the
// same set as a private view. Run under -race via `make race`.
func TestDiscoverViewSharedCache(t *testing.T) {
	rel := table4Relation(t)
	want, err := Discover(rel, Config{MaxThreshold: 6, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantEnc := encodeSet(t, want, rel.Schema())

	v := engine.Compile(rel)
	m := obs.NewMetrics()
	const goroutines = 6
	results := make([][]byte, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Alternate worker counts so parallel searches overlap on the
			// shared cache shards.
			sigma, err := DiscoverView(v, Config{
				MaxThreshold: 6, Workers: 1 + g%4, Recorder: m,
			})
			if err != nil {
				errs[g] = err
				return
			}
			var buf bytes.Buffer
			if err := rfd.WriteSet(&buf, sigma, rel.Schema()); err != nil {
				errs[g] = err
				return
			}
			results[g] = buf.Bytes()
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if !bytes.Equal(results[g], wantEnc) {
			t.Errorf("goroutine %d diverged from the serial private-view set", g)
		}
	}
	s := m.Snapshot()
	if s.Counters["discovery_workers"] == 0 || s.Counters["discovery_pattern_chunks"] == 0 {
		t.Errorf("parallel discovery counters not recorded: %+v", s.Counters)
	}
}

// TestMaintainerWorkerParity: the maintained set after a stream of
// arrivals is identical for every worker count.
func TestMaintainerWorkerParity(t *testing.T) {
	base := table2(t)
	sigma, err := Discover(base, Config{MaxThreshold: 9})
	if err != nil {
		t.Fatal(err)
	}
	arrivals := []dataset.Tuple{
		{dataset.NewString("Granite"), dataset.NewString("Malibu"), dataset.NewString("310/456-0000"), dataset.NewString("Californian"), dataset.NewInt(6)},
		{dataset.NewString("Citroen"), dataset.NewString("LA"), dataset.NewString("213/857-0034"), dataset.NewString("French"), dataset.NewInt(5)},
		{dataset.NewString("Fenix"), dataset.NewString("Hollywood"), dataset.NewString("213/848-6677"), dataset.NewString("French"), dataset.NewInt(4)},
		{dataset.NewString("C. Main"), dataset.NewString("Los Angeles"), dataset.NewString("213/857-0034"), dataset.NewString("French"), dataset.NewInt(5)},
	}
	var ref []byte
	var refDropped, refTightened int
	for _, workers := range parityWorkerCounts {
		mt := NewMaintainerWorkers(base, sigma, workers)
		for _, tpl := range arrivals {
			if _, _, err := mt.Append(tpl); err != nil {
				t.Fatal(err)
			}
		}
		enc := encodeSet(t, mt.Sigma(), base.Schema())
		d, tt := mt.Stats()
		if workers == parityWorkerCounts[0] {
			ref, refDropped, refTightened = enc, d, tt
			continue
		}
		if !bytes.Equal(enc, ref) {
			t.Errorf("maintained set differs at workers=%d", workers)
		}
		if d != refDropped || tt != refTightened {
			t.Errorf("workers=%d stats (%d, %d), want (%d, %d)", workers, d, tt, refDropped, refTightened)
		}
	}
}

// TestAdaptiveLimitsWorkerParity: the per-attribute caps are identical
// for every worker count, exhaustive and sampled.
func TestAdaptiveLimitsWorkerParity(t *testing.T) {
	rel := table4Relation(t)
	for _, maxPairs := range []int{0, 400} {
		ref := AdaptiveAttrLimits(rel, 0.25, maxPairs, 3)
		for _, workers := range parityWorkerCounts {
			got := AdaptiveAttrLimitsWorkers(rel, 0.25, maxPairs, 3, workers)
			for a := range ref {
				if got[a] != ref[a] {
					t.Errorf("maxPairs=%d workers=%d attr %d cap %v, want %v",
						maxPairs, workers, a, got[a], ref[a])
				}
			}
		}
	}
}

// TestPairAt: the flat pair-index decoding matches the serial double
// loop for every index.
func TestPairAt(t *testing.T) {
	const n = 9
	k := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			gi, gj := pairAt(n, k)
			if gi != i || gj != j {
				t.Fatalf("pairAt(%d, %d) = (%d, %d), want (%d, %d)", n, k, gi, gj, i, j)
			}
			k++
		}
	}
}

// TestDiscoverRejectsNegativeWorkers: config validation covers the new
// knob.
func TestDiscoverRejectsNegativeWorkers(t *testing.T) {
	if _, err := Discover(table2(t), Config{MaxThreshold: 3, Workers: -1}); err == nil {
		t.Error("negative Workers accepted")
	}
}

// TestChunkRangesCover: chunking always tiles [0, n) exactly.
func TestChunkRangesCover(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100} {
		for _, w := range []int{1, 2, 3, 8, 200} {
			next := 0
			for _, rg := range chunkRanges(n, w) {
				if rg[0] != next || rg[1] <= rg[0] {
					t.Fatalf("chunkRanges(%d, %d) = bad range %v", n, w, rg)
				}
				next = rg[1]
			}
			if next != n {
				t.Fatalf("chunkRanges(%d, %d) covers [0, %d), want [0, %d)", n, w, next, n)
			}
		}
	}
}

func ExampleConfig_workers() {
	rel, _ := dataset.ReadCSVString("A,B\nx,1\nx,1\ny,2\ny,2\n")
	serial, _ := Discover(rel, Config{MaxThreshold: 0, Workers: 1})
	parallel, _ := Discover(rel, Config{MaxThreshold: 0, Workers: 8})
	fmt.Println(len(serial) == len(parallel))
	// Output: true
}
