package discovery

import (
	"testing"

	"repro/internal/dataset"
)

func TestAdaptiveAttrLimitsShape(t *testing.T) {
	rel := table2(t)
	limits := AdaptiveAttrLimits(rel, 0.5, 0, 1)
	if len(limits) != rel.Schema().Len() {
		t.Fatalf("limits = %v", limits)
	}
	for a, l := range limits {
		if l < 0 {
			t.Errorf("attr %d limit %v negative", a, l)
		}
	}
	// Name distances are large (distinct restaurant names), Class
	// distances tiny (5 vs 6): the caps must reflect that order.
	name := rel.Schema().MustIndex("Name")
	class := rel.Schema().MustIndex("Class")
	if limits[name] <= limits[class] {
		t.Errorf("limit(Name)=%v <= limit(Class)=%v; want domain-aware caps", limits[name], limits[class])
	}
}

func TestAdaptiveAttrLimitsDegenerate(t *testing.T) {
	// Constant attribute: no nonzero distances -> cap 0.
	rel, err := dataset.ReadCSVString("A,B\nc,1\nc,2\nc,3\n")
	if err != nil {
		t.Fatal(err)
	}
	limits := AdaptiveAttrLimits(rel, 0.5, 0, 1)
	if limits[0] != 0 {
		t.Errorf("constant attribute cap = %v, want 0", limits[0])
	}
	if limits[1] == 0 {
		t.Errorf("varying attribute cap = %v, want > 0", limits[1])
	}
	// Single tuple: all zeros, no panic.
	single, err := dataset.ReadCSVString("A\nx\n")
	if err != nil {
		t.Fatal(err)
	}
	if got := AdaptiveAttrLimits(single, 0.5, 0, 1); got[0] != 0 {
		t.Errorf("single-tuple cap = %v", got)
	}
}

func TestAdaptiveAttrLimitsQuantileClamping(t *testing.T) {
	rel := table2(t)
	lo := AdaptiveAttrLimits(rel, -1, 0, 1)  // clamps to default 0.25
	hi := AdaptiveAttrLimits(rel, 2.0, 0, 1) // clamps to 1.0 (max distance)
	for a := range lo {
		if lo[a] > hi[a] {
			t.Errorf("attr %d: quantile 0.25 cap %v > max cap %v", a, lo[a], hi[a])
		}
	}
}

func TestDiscoveryWithAttrLimits(t *testing.T) {
	rel := table2(t)
	limits := AdaptiveAttrLimits(rel, 0.25, 0, 1)
	sigma, err := Discover(rel, Config{MaxThreshold: 15, AttrLimits: limits})
	if err != nil {
		t.Fatal(err)
	}
	for _, dep := range sigma {
		if dep.RHS.Threshold > limits[dep.RHS.Attr] {
			t.Errorf("%s exceeds RHS cap %v", dep.Format(rel.Schema()), limits[dep.RHS.Attr])
		}
		for _, c := range dep.LHS {
			if c.Threshold > limits[c.Attr] {
				t.Errorf("%s exceeds LHS cap %v on attr %d", dep.Format(rel.Schema()), limits[c.Attr], c.Attr)
			}
		}
		if !dep.HoldsOn(rel) {
			t.Errorf("capped discovery emitted a non-holding RFD: %s", dep.Format(rel.Schema()))
		}
	}
	// Capping must not enlarge the candidate set.
	uncapped, err := Discover(rel, Config{MaxThreshold: 15})
	if err != nil {
		t.Fatal(err)
	}
	if len(sigma) > len(uncapped) {
		t.Errorf("capped %d > uncapped %d", len(sigma), len(uncapped))
	}
}

func TestAdaptiveAttrLimitsSampledDeterminism(t *testing.T) {
	rel := table2(t)
	a := AdaptiveAttrLimits(rel, 0.5, 10, 3)
	b := AdaptiveAttrLimits(rel, 0.5, 10, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sampled limits nondeterministic")
		}
	}
}
