// Package discovery finds RFDcs holding on a relation instance. The paper
// delegates discovery to the dominance-based algorithm of Caruccio et al.
// [6], which has no public implementation; this package produces the same
// artifact class — RFDcs with conjunctive LHS distance constraints and a
// single-attribute RHS, discovered under a maximum-threshold limit
// (the paper's {3, 6, 9, 12, 15} sweep) — with a distance-pattern greedy
// lattice search:
//
//  1. The distance patterns of (a sample of) all tuple pairs are
//     materialized once.
//  2. For every RHS attribute A, RHS threshold β in the grid, and LHS
//     attribute set X up to MaxLHS attributes, the maximal per-attribute
//     LHS thresholds are derived greedily from the violating pairs
//     (d_A > β): every such pair must fail at least one LHS constraint,
//     and thresholds only ever decrease, so one pass over the violating
//     pairs suffices.
//  3. Candidates that end up vacuous (key-like: no sampled pair satisfies
//     the LHS) or dominated by a more general discovered RFDc are pruned.
//
// Both expensive steps run on a worker pool (Config.Workers) with a
// deterministic merge, so the discovered set is byte-identical for every
// worker count: pattern materialization writes pre-sized slab rows in
// place (ordering is positional, not merge-dependent), and the
// per-(RHS, β, LHS subset) candidate derivations fan out over an
// explicitly ordered job list whose results are collected by job index
// before the per-RHS dominance pruning runs. See parallel.go.
package discovery

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"

	"repro/internal/dataset"
	"repro/internal/distance"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/rfd"
)

// Config tunes discovery.
type Config struct {
	// MaxThreshold is the threshold limit: no discovered constraint (LHS
	// or RHS) exceeds it. The paper sweeps {3, 6, 9, 12, 15}.
	MaxThreshold float64
	// MaxLHS bounds the LHS attribute-set size. Zero means 2.
	MaxLHS int
	// RHSGrid lists the candidate RHS thresholds. Empty means the
	// integers 0..MaxThreshold.
	RHSGrid []float64
	// MaxPairs caps how many tuple pairs are sampled for pattern
	// materialization. Zero means all pairs. Sampling keeps discovery
	// tractable on large instances at the cost of soundness on the
	// unsampled pairs (discovered RFDcs are then approximate).
	MaxPairs int
	// Seed drives pair sampling. Ignored when all pairs fit.
	Seed int64
	// MinSupport is the minimum number of sampled pairs that must satisfy
	// a candidate's LHS for it to be kept (the non-key requirement).
	// Zero means 1.
	MinSupport int
	// KeepDominated disables the dominance pruning pass, yielding the raw
	// candidate set (closer to the paper's very large Σ sizes).
	KeepDominated bool
	// AttrLimits optionally caps the threshold per attribute (both LHS
	// and RHS), on top of MaxThreshold. Produce distribution-aware caps
	// with AdaptiveAttrLimits — the paper's Sec. 7 threshold-bounding
	// extension. Nil means MaxThreshold everywhere; otherwise the slice
	// must cover every attribute.
	AttrLimits []float64
	// Workers sets the number of goroutines used for pattern-space
	// materialization and the per-candidate lattice search. 0 means
	// runtime.NumCPU(); 1 forces the serial path. The discovered set is
	// byte-identical for every worker count.
	Workers int
	// Shards splits pattern materialization into that many contiguous
	// pair bands, each filled into one reused transient slab and folded
	// into a lossless compact column store before the next band starts,
	// bounding peak pattern memory to one band's slab plus the compact
	// store. The lattice search itself stays global — the greedy fold is
	// not confluent across pattern partitions — and reads patterns
	// through a value-exact accessor, so the discovered set is
	// byte-identical for every shard count. 0 or 1 means the unsharded
	// flat slab (the historical path).
	Shards int
	// Recorder receives discovery observability events (patterns
	// materialized, RFDcs emitted, discovery wall clock). Nil means
	// no-op.
	Recorder obs.Recorder
	// Tracer receives one RuleEmitted event per discovered RFDc, carrying
	// the rendered rule, its RHS threshold, and its pattern support (how
	// many sampled pairs satisfy the LHS — the generating minima of the
	// greedy search). Nil disables rule provenance.
	Tracer obs.Tracer
}

// limitFor returns the effective threshold cap for one attribute.
func (c *Config) limitFor(attr int) float64 {
	if c.AttrLimits == nil {
		return c.MaxThreshold
	}
	return math.Min(c.MaxThreshold, c.AttrLimits[attr])
}

func (c *Config) normalize() error {
	if c.MaxThreshold < 0 {
		return fmt.Errorf("discovery: negative MaxThreshold %v", c.MaxThreshold)
	}
	if c.MaxLHS == 0 {
		c.MaxLHS = 2
	}
	if c.MaxLHS < 0 {
		return fmt.Errorf("discovery: negative MaxLHS %d", c.MaxLHS)
	}
	if err := par.Check("discovery: Workers", c.Workers); err != nil {
		return err
	}
	if err := par.Check("discovery: Shards", c.Shards); err != nil {
		return err
	}
	if len(c.RHSGrid) == 0 {
		for b := 0.0; b <= c.MaxThreshold; b++ {
			c.RHSGrid = append(c.RHSGrid, b)
		}
	}
	sort.Float64s(c.RHSGrid)
	if c.MinSupport == 0 {
		c.MinSupport = 1
	}
	return nil
}

// effectiveWorkers resolves the Workers field: 0 means all CPUs.
func (c *Config) effectiveWorkers() int {
	if c.Workers <= 0 {
		return runtime.NumCPU()
	}
	return c.Workers
}

// effectiveShards resolves the Shards field: 0 means unsharded.
func (c *Config) effectiveShards() int {
	if c.Shards <= 0 {
		return 1
	}
	return c.Shards
}

// Discover returns the RFDcs found on the instance under the config.
// The result is deterministic for a fixed (instance, config, seed),
// independent of the worker count.
func Discover(rel *dataset.Relation, cfg Config) (rfd.Set, error) {
	return DiscoverView(engine.Compile(rel), cfg)
}

// DiscoverContext is Discover with cooperative cancellation: both
// expensive phases (pattern materialization and the lattice search)
// carry checkpoints, and an expired context aborts the run with a typed
// engine.ErrCanceled. Discovery has no partial-result contract — a
// canceled run returns a nil set.
func DiscoverContext(ctx context.Context, rel *dataset.Relation, cfg Config) (rfd.Set, error) {
	return DiscoverViewContext(ctx, engine.Compile(rel), cfg)
}

// DiscoverView runs discovery over an already-compiled engine view, so
// callers that evaluate the same instance repeatedly (or concurrently)
// share one columnar form and one memoized distance cache. View reads
// are safe for concurrent use, so any number of DiscoverView calls may
// run against the same view at once.
func DiscoverView(v *engine.View, cfg Config) (rfd.Set, error) {
	return DiscoverViewContext(context.Background(), v, cfg)
}

// DiscoverViewContext is DiscoverView with cooperative cancellation,
// under the DiscoverContext contract.
func DiscoverViewContext(ctx context.Context, v *engine.View, cfg Config) (rfd.Set, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if ctx.Err() != nil {
		return nil, engine.Canceled(ctx)
	}
	rec := cfg.Recorder
	if rec == nil {
		rec = obs.Nop{}
	}
	start := obs.Now(rec)
	m := v.Arity()
	if m < 2 || v.Len() < 2 {
		return nil, nil
	}
	workers := cfg.effectiveWorkers()
	shards := cfg.effectiveShards()
	rec.Add(obs.CtrDiscoveryWorkers, int64(workers))
	rec.Add(obs.CtrDiscoveryShards, int64(shards))
	sp := obs.SpanFromContext(ctx)

	matStart := obs.Now(rec)
	matSpan := sp.Child("discovery_materialize")
	var st *patStore
	if shards > 1 {
		st = shardedPatterns(ctx, v, &cfg, shards, workers, rec)
	} else {
		st = flatStore(samplePatterns(ctx, v, cfg.MaxPairs, cfg.Seed, workers, rec), m)
		rec.Add(obs.CtrDiscoveryShardSlabBytes, st.peakBytes)
	}
	npat := 0
	if st != nil {
		npat = st.n
	}
	if matSpan.Enabled() {
		matSpan.Int("patterns", int64(npat))
		matSpan.Int("workers", int64(workers))
		matSpan.Int("shards", int64(shards))
		matSpan.End()
	}
	obs.Since(rec, obs.PhaseDiscoveryMaterialize, matStart)
	if ctx.Err() != nil {
		// The slab may hold unmaterialized rows; never derive from it.
		return nil, engine.Canceled(ctx)
	}
	if npat == 0 {
		return nil, nil
	}
	rec.Add(obs.CtrDiscoveryPatterns, int64(npat))
	rec.Add(obs.CtrDiscoveryPatternPeakBytes, st.peakBytes)
	hits, misses := v.CacheStats()
	rec.Add(obs.CtrEngineCacheHits, hits)
	rec.Add(obs.CtrEngineCacheMisses, misses)

	searchStart := obs.Now(rec)
	searchSpan := sp.Child("discovery_search")
	out := searchCandidates(ctx, st, &cfg, m, workers)
	if searchSpan.Enabled() {
		searchSpan.Int("rules", int64(len(out)))
		searchSpan.End()
	}
	obs.Since(rec, obs.PhaseDiscoverySearch, searchStart)
	if ctx.Err() != nil {
		// Jobs skipped by the cancellation checkpoints leave holes in the
		// result slab; the merged set would silently miss rules.
		return nil, engine.Canceled(ctx)
	}

	rec.Add(obs.CtrDiscoveryRFDs, int64(len(out)))
	if cfg.Tracer != nil && cfg.Tracer.Enabled() {
		emitRuleProvenance(cfg.Tracer, v.Relation().Schema(), st, out)
	}
	obs.Since(rec, obs.PhaseDiscovery, start)
	return out, nil
}

// emitRuleProvenance reports each surviving RFDc with its pattern
// support, recomputed once per rule over the sampled patterns. It runs
// strictly after the deterministic merge, so the event order is the set
// order regardless of worker count.
func emitRuleProvenance(t obs.Tracer, schema *dataset.Schema, st *patStore, out rfd.Set) {
	for _, dep := range out {
		lhs := make([]int, len(dep.LHS))
		th := make([]float64, len(dep.LHS))
		for i, c := range dep.LHS {
			lhs[i], th[i] = c.Attr, c.Threshold
		}
		t.EmitEvent(obs.RuleEmitted(dep.RHS.Attr, dep.Format(schema),
			dep.RHS.Threshold, support(st, lhs, th)))
	}
}

// samplePatterns materializes distance patterns for up to maxPairs tuple
// pairs through the engine view, so repeated value pairs (the common
// case on real instances with skewed domains) hit the memoized distance
// cache instead of re-running Levenshtein. With maxPairs == 0 or enough
// room, all n(n-1)/2 pairs are used; otherwise a uniform sample without
// replacement is drawn. Pair selection is always serial (one rng
// sequence), so the sampled pair list — and hence the pattern order —
// is independent of the worker count; only the materialization of the
// selected pairs is chunked across workers.
func samplePatterns(ctx context.Context, v *engine.View, maxPairs int, seed int64, workers int, rec obs.Recorder) []distance.Pattern {
	n := v.Len()
	total := n * (n - 1) / 2
	if maxPairs > 0 && maxPairs < total {
		return materializePairs(ctx, v, samplePairs(n, maxPairs, seed), workers, rec)
	}
	return materializeAllPairs(ctx, v, workers, rec)
}

// samplePairs draws maxPairs distinct (i, j) pairs without replacement,
// i < j, in rng draw order — exactly the sequence the serial sampler
// has always produced for a given seed.
func samplePairs(n, maxPairs int, seed int64) [][2]int {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[[2]int]bool, maxPairs)
	out := make([][2]int, 0, maxPairs)
	for len(out) < maxPairs {
		i := rng.Intn(n)
		j := rng.Intn(n)
		if i == j {
			continue
		}
		if i > j {
			i, j = j, i
		}
		key := [2]int{i, j}
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, key)
	}
	return out
}

// greedyAdvance folds a batch of violating patterns into the running
// threshold vector th (len(lhs)): every violating pattern must fail at
// least one LHS constraint, and the cheapest cut (the attribute with
// the largest distance) is taken each time. It returns false when no
// threshold vector works (some violating pair is identical on every
// LHS attribute).
//
// Because thresholds only ever decrease, a pattern that fails the
// current constraints also fails all later ones, so a single pass is
// exact — and the fold can be resumed: feeding order[prev:cut] batches
// for descending β yields, at each boundary, exactly the vector a
// from-scratch pass over order[:cut] would produce (see deriveSubset).
func greedyAdvance(st *patStore, violating []int, lhs []int, th []float64) bool {
	for _, idx := range violating {
		satisfied := true
		for i, a := range lhs {
			d := st.at(idx, a)
			if distance.IsMissing(d) || d > th[i] {
				satisfied = false
				break
			}
		}
		if !satisfied {
			continue
		}
		// Cut the pair on the attribute with the largest distance — the
		// cheapest cut, keeping the other thresholds as loose as possible.
		best, bestD := -1, -1.0
		for i, a := range lhs {
			if d := st.at(idx, a); d > bestD {
				best, bestD = i, d
			}
		}
		if bestD <= 0 {
			return false // identical on all LHS attributes yet violating
		}
		// Largest integer grid value strictly below bestD.
		next := math.Ceil(bestD) - 1
		if next >= bestD { // bestD was integral
			next = bestD - 1
		}
		if next < 0 {
			return false
		}
		th[best] = next
	}
	return true
}

// support counts the sampled patterns satisfying every LHS constraint —
// the witness count for the non-key requirement.
func support(st *patStore, lhs []int, th []float64) int {
	count := 0
	for k := 0; k < st.n; k++ {
		ok := true
		for i, a := range lhs {
			d := st.at(k, a)
			if distance.IsMissing(d) || d > th[i] {
				ok = false
				break
			}
		}
		if ok {
			count++
		}
	}
	return count
}

// supportAtLeast reports whether at least min sampled patterns satisfy
// every LHS constraint, stopping at the min-th witness. The lattice
// search only needs the MinSupport comparison, not the exact count, so
// this early exit replaces a full pattern sweep per candidate (the
// exact count is still computed — once per surviving rule — for the
// rule_emitted provenance events).
func supportAtLeast(st *patStore, lhs []int, th []float64, min int) bool {
	if min <= 0 {
		return true
	}
	count := 0
	for k := 0; k < st.n; k++ {
		ok := true
		for i, a := range lhs {
			d := st.at(k, a)
			if distance.IsMissing(d) || d > th[i] {
				ok = false
				break
			}
		}
		if ok {
			count++
			if count >= min {
				return true
			}
		}
	}
	return false
}

// enumerateSubsets lists the non-empty subsets of pool with at most k
// elements, in deterministic order (singletons first, then pairs, ...).
func enumerateSubsets(pool []int, k int) [][]int {
	var out [][]int
	var cur []int
	var rec func(start, size int)
	rec = func(start, size int) {
		for i := start; i < len(pool); i++ {
			cur = append(cur, pool[i])
			out = append(out, append([]int(nil), cur...))
			if size+1 < k {
				rec(i+1, size+1)
			}
			cur = cur[:len(cur)-1]
		}
	}
	if k >= 1 {
		rec(0, 0)
	}
	// Order by size, then lexicographically; the recursion above yields
	// depth-first order, so re-sort for by-size determinism.
	sort.Slice(out, func(a, b int) bool {
		if len(out[a]) != len(out[b]) {
			return len(out[a]) < len(out[b])
		}
		for i := range out[a] {
			if out[a][i] != out[b][i] {
				return out[a][i] < out[b][i]
			}
		}
		return false
	})
	return out
}
