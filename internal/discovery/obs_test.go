package discovery

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/obs"
)

// Discovery reports its pattern volume, emitted-RFDc count, and wall
// clock through the configured Recorder.
func TestDiscoverRecordsObservability(t *testing.T) {
	rel, err := dataset.ReadCSVString(
		"Name,City,Phone\n" +
			"Granita,Malibu,310/456-0488\n" +
			"Granita,Malibu,310/456-0488\n" +
			"Spago,W. Hollywood,310/652-4025\n" +
			"Spago,W. Hollywood,310/652-4025\n")
	if err != nil {
		t.Fatal(err)
	}
	m := obs.NewMetrics()
	sigma, err := Discover(rel, Config{MaxThreshold: 6, Recorder: m})
	if err != nil {
		t.Fatal(err)
	}
	if len(sigma) == 0 {
		t.Fatal("no RFDcs discovered")
	}
	s := m.Snapshot()
	// 4 tuples → 6 pairs, all materialized (no sampling cap).
	if got := s.Counters["discovery_patterns"]; got != 6 {
		t.Errorf("discovery_patterns = %d, want 6", got)
	}
	if got := s.Counters["discovery_rfds"]; got != int64(len(sigma)) {
		t.Errorf("discovery_rfds = %d, want %d", got, len(sigma))
	}
	if s.Phases["discovery"].Count != 1 || s.Phases["discovery"].Nanos <= 0 {
		t.Errorf("discovery phase = %+v", s.Phases["discovery"])
	}
}
