package discovery

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/obs"
)

// shardBenchConfig is the sharded-discovery benchmark configuration:
// the shared mid-grid threshold at a fixed worker fan-out, so the only
// variable across runs is the shard count.
func shardBenchConfig(shards int) Config {
	return Config{MaxThreshold: 6, Workers: 4, Shards: shards}
}

// patternPeakBytes runs one discovery and reads back the
// deterministically recorded peak pattern-storage footprint (the
// transient band slab plus the compact store; the whole flat slab when
// unsharded). Host-independent, unlike allocator figures.
func patternPeakBytes(tb testing.TB, shards int) int64 {
	tb.Helper()
	m := obs.NewMetrics()
	cfg := shardBenchConfig(shards)
	cfg.Recorder = m
	if _, err := Discover(benchStringsRelation(tb, 24), cfg); err != nil {
		tb.Fatal(err)
	}
	peak := m.Counter(obs.CtrDiscoveryPatternPeakBytes)
	if peak <= 0 {
		tb.Fatalf("shards=%d recorded peak pattern bytes %d", shards, peak)
	}
	return peak
}

// BenchmarkDiscoverSharded measures end-to-end discovery on the
// strings workload across shard counts (1 is the legacy flat slab).
// The output is byte-identical across shard counts, so the benchmark
// isolates the cost of the bounded-memory partition pipeline.
func BenchmarkDiscoverSharded(b *testing.B) {
	rel := benchStringsRelation(b, 24)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("strings/shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Discover(rel, shardBenchConfig(shards)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// shardBenchRecord extends the shared benchmark record with the
// deterministic peak pattern footprint. benchdiff gates the ns/alloc
// figures and ignores the extra key.
type shardBenchRecord struct {
	benchRecord
	PatternPeakBytes int64 `json:"pattern_peak_bytes"`
}

// TestBenchShardJSON emits the sharded-discovery figures (shards
// 1/2/4/8 on the strings workload) plus each run's recorded peak
// pattern bytes as JSON — the BENCH_shard.json regression record:
//
//	BENCH_SHARD_OUT=BENCH_shard.json go test ./internal/discovery -run TestBenchShardJSON
//
// Without BENCH_SHARD_OUT the test is skipped. Independent of the
// emission, the acceptance bound is asserted whenever the test runs
// with the env set: four shards must at most halve the unsharded peak.
func TestBenchShardJSON(t *testing.T) {
	out := os.Getenv("BENCH_SHARD_OUT")
	if out == "" {
		t.Skip("set BENCH_SHARD_OUT=<file> to emit benchmark JSON")
	}

	rel := benchStringsRelation(t, 24)
	var records []shardBenchRecord
	for _, shards := range []int{1, 2, 4, 8} {
		shards := shards
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Discover(rel, shardBenchConfig(shards)); err != nil {
					b.Fatal(err)
				}
			}
		})
		records = append(records, shardBenchRecord{
			benchRecord: benchRecord{
				Name:        fmt.Sprintf("DiscoverSharded/strings/shards=%d", shards),
				Iterations:  r.N,
				NsPerOp:     float64(r.NsPerOp()),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
			},
			PatternPeakBytes: patternPeakBytes(t, shards),
		})
	}

	unsharded := records[0].PatternPeakBytes
	for _, rec := range records[1:] {
		if rec.PatternPeakBytes >= unsharded {
			t.Errorf("%s peak %d bytes, want below unsharded %d", rec.Name, rec.PatternPeakBytes, unsharded)
		}
	}
	// The acceptance bound: four shards at most halve the unsharded peak.
	if quad := records[2].PatternPeakBytes; quad*2 > unsharded {
		t.Errorf("shards=4 peak %d bytes, want <= half of unsharded %d", quad, unsharded)
	}

	doc, err := json.MarshalIndent(struct {
		Package    string             `json:"package"`
		GOMAXPROCS int                `json:"gomaxprocs"`
		Benchmarks []shardBenchRecord `json:"benchmarks"`
	}{Package: "repro/internal/discovery", GOMAXPROCS: runtime.GOMAXPROCS(0), Benchmarks: records}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(doc, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
	for _, r := range records {
		if r.NsPerOp <= 0 || r.Iterations == 0 {
			t.Errorf("suspicious benchmark record: %+v", r)
		}
	}
}
