package discovery

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/rfd"
)

func table2(t testing.TB) *dataset.Relation {
	t.Helper()
	rel, err := dataset.ReadCSVString(`Name,City,Phone,Type,Class
Granita,Malibu,310/456-0488,Californian,6
Chinois Main,LA,310-392-9025,French,5
Citrus,Los Angeles,213/857-0034,Californian,6
Citrus,Los Angeles,,Californian,6
Fenix,Hollywood,213/848-6677,,5
Fenix Argyle,,213/848-6677,French (new),5
C. Main,Los Angeles,,French,5
`)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

func TestDiscoveredRFDsHold(t *testing.T) {
	rel := table2(t)
	sigma, err := Discover(rel, Config{MaxThreshold: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(sigma) == 0 {
		t.Fatal("no RFDcs discovered")
	}
	for _, dep := range sigma {
		if !dep.HoldsOn(rel) {
			t.Errorf("discovered RFD %s does not hold", dep.Format(rel.Schema()))
		}
	}
}

func TestDiscoveredRFDsAreNonKey(t *testing.T) {
	rel := table2(t)
	sigma, err := Discover(rel, Config{MaxThreshold: 6})
	if err != nil {
		t.Fatal(err)
	}
	for _, dep := range sigma {
		if dep.IsKey(rel) {
			t.Errorf("discovered RFD %s is key (violates MinSupport)", dep.Format(rel.Schema()))
		}
	}
}

func TestDiscoveryRespectsMaxThreshold(t *testing.T) {
	rel := table2(t)
	const limit = 4.0
	sigma, err := Discover(rel, Config{MaxThreshold: limit})
	if err != nil {
		t.Fatal(err)
	}
	for _, dep := range sigma {
		if dep.RHSThreshold() > limit {
			t.Errorf("%s exceeds RHS limit", dep.Format(rel.Schema()))
		}
		for _, c := range dep.LHS {
			if c.Threshold > limit {
				t.Errorf("%s exceeds LHS limit", dep.Format(rel.Schema()))
			}
		}
	}
}

func TestDiscoveryRespectsMaxLHS(t *testing.T) {
	rel := table2(t)
	for _, maxLHS := range []int{1, 2, 3} {
		sigma, err := Discover(rel, Config{MaxThreshold: 6, MaxLHS: maxLHS})
		if err != nil {
			t.Fatal(err)
		}
		for _, dep := range sigma {
			if len(dep.LHS) > maxLHS {
				t.Errorf("MaxLHS=%d: %s too wide", maxLHS, dep.Format(rel.Schema()))
			}
		}
	}
}

func TestDiscoveryGrowsWithThreshold(t *testing.T) {
	// Table 3's pattern: higher threshold limits yield (weakly) more RFDcs
	// before pruning.
	rel := table2(t)
	prev := -1
	for _, th := range []float64{0, 3, 6, 9} {
		sigma, err := Discover(rel, Config{MaxThreshold: th, KeepDominated: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(sigma) < prev {
			t.Errorf("threshold %v produced %d RFDs, fewer than previous %d", th, len(sigma), prev)
		}
		prev = len(sigma)
	}
}

func TestDiscoveryOnExactFD(t *testing.T) {
	// B is functionally determined by A with equality; discovery at
	// threshold 0 must find A(<=0) -> B(<=0).
	rel, err := dataset.ReadCSVString(`A,B
x,1
x,1
y,2
y,2
z,3
`)
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := Discover(rel, Config{MaxThreshold: 0})
	if err != nil {
		t.Fatal(err)
	}
	want := rfd.MustParse("A(<=0) -> B(<=0)", rel.Schema())
	if !sigma.Contains(want) {
		var got []string
		for _, dep := range sigma {
			got = append(got, dep.Format(rel.Schema()))
		}
		t.Errorf("discovered %v, want to contain %s", got, want.Format(rel.Schema()))
	}
}

func TestDiscoveryRejectsNonFD(t *testing.T) {
	// A does not determine B (x maps to both 1 and 9): no A->B RFD can
	// exist with LHS threshold >= 0 and RHS threshold < 8.
	rel, err := dataset.ReadCSVString(`A,B
x,1
x,9
y,5
y,5
`)
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := Discover(rel, Config{MaxThreshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	b := rel.Schema().MustIndex("B")
	for _, dep := range sigma.ForRHS(b) {
		if len(dep.LHS) == 1 && dep.LHS[0].Attr == 0 {
			t.Errorf("impossible RFD discovered: %s", dep.Format(rel.Schema()))
		}
	}
}

func TestDominancePruning(t *testing.T) {
	rel := table2(t)
	pruned, err := Discover(rel, Config{MaxThreshold: 6})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := Discover(rel, Config{MaxThreshold: 6, KeepDominated: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned) > len(raw) {
		t.Errorf("pruned %d > raw %d", len(pruned), len(raw))
	}
	if len(pruned) == len(raw) {
		t.Log("warning: pruning removed nothing (possible but unusual)")
	}
	// Every pruned-set member must appear in the raw set.
	for _, dep := range pruned {
		if !raw.Contains(dep) {
			t.Errorf("pruned set invented %s", dep.Format(rel.Schema()))
		}
	}
}

func TestDiscoveryDeterminism(t *testing.T) {
	rel := table2(t)
	a, err := Discover(rel, Config{MaxThreshold: 6})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Discover(rel, Config{MaxThreshold: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("runs differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Errorf("RFD %d differs between runs", i)
		}
	}
}

func TestDiscoverySampling(t *testing.T) {
	rel := table2(t)
	sigma, err := Discover(rel, Config{MaxThreshold: 6, MaxPairs: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Sampled discovery is approximate; it must still emit structurally
	// valid RFDs within the limits.
	for _, dep := range sigma {
		if dep.RHSThreshold() > 6 {
			t.Errorf("sampled discovery exceeded limit: %s", dep.Format(rel.Schema()))
		}
	}
	// Same seed, same result.
	again, err := Discover(rel, Config{MaxThreshold: 6, MaxPairs: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(sigma) != len(again) {
		t.Errorf("sampling not deterministic: %d vs %d", len(sigma), len(again))
	}
}

func TestDiscoveryEdgeCases(t *testing.T) {
	// Single attribute: no possible LHS.
	one, err := dataset.ReadCSVString("A\nx\ny\n")
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := Discover(one, Config{MaxThreshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(sigma) != 0 {
		t.Errorf("single-attribute relation produced %d RFDs", len(sigma))
	}
	// Single tuple: no pairs.
	single, err := dataset.ReadCSVString("A,B\nx,1\n")
	if err != nil {
		t.Fatal(err)
	}
	sigma, err = Discover(single, Config{MaxThreshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(sigma) != 0 {
		t.Errorf("single-tuple relation produced %d RFDs", len(sigma))
	}
	// Bad config.
	if _, err := Discover(one, Config{MaxThreshold: -1}); err == nil {
		t.Error("negative MaxThreshold accepted")
	}
	if _, err := Discover(one, Config{MaxThreshold: 1, MaxLHS: -2}); err == nil {
		t.Error("negative MaxLHS accepted")
	}
}

func TestDiscoveryMinSupport(t *testing.T) {
	rel := table2(t)
	low, err := Discover(rel, Config{MaxThreshold: 6, MinSupport: 1})
	if err != nil {
		t.Fatal(err)
	}
	high, err := Discover(rel, Config{MaxThreshold: 6, MinSupport: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(high) > len(low) {
		t.Errorf("MinSupport=5 found %d > MinSupport=1's %d", len(high), len(low))
	}
}

func TestEnumerateSubsets(t *testing.T) {
	got := enumerateSubsets([]int{1, 2, 3}, 2)
	want := [][]int{{1}, {2}, {3}, {1, 2}, {1, 3}, {2, 3}}
	if len(got) != len(want) {
		t.Fatalf("subsets = %v", got)
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("subsets = %v, want %v", got, want)
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("subsets = %v, want %v", got, want)
			}
		}
	}
	if out := enumerateSubsets([]int{1, 2}, 0); len(out) != 0 {
		t.Errorf("k=0 subsets = %v", out)
	}
}

func TestDominatesRelation(t *testing.T) {
	rel := table2(t)
	s := rel.Schema()
	general := rfd.MustParse("Name(<=5) -> Phone(<=1)", s)
	tighterRHS := rfd.MustParse("Name(<=5) -> Phone(<=3)", s)
	narrowerLHS := rfd.MustParse("Name(<=3) -> Phone(<=1)", s)
	wider := rfd.MustParse("Name(<=5), City(<=2) -> Phone(<=1)", s)
	if !rfd.Implies(general, tighterRHS) {
		t.Error("tighter RHS at same LHS should be dominated")
	}
	if !rfd.Implies(general, narrowerLHS) {
		t.Error("narrower LHS threshold should be dominated")
	}
	if !rfd.Implies(general, wider) {
		t.Error("superset LHS should be dominated")
	}
	if rfd.Implies(tighterRHS, general) || rfd.Implies(wider, general) {
		t.Error("domination direction reversed")
	}
	if !rfd.Implies(general, general) {
		t.Error("domination must be reflexive")
	}
}
