package discovery

import (
	"context"
	"sort"
	"sync"

	"repro/internal/distance"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/rfd"
)

// chunkRanges splits [0, n) into at most workers contiguous ranges.
func chunkRanges(n, workers int) [][2]int {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var out [][2]int
	size := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// runChunks splits [0, n) across the workers and runs fn once per
// chunk, inline when only one chunk results (the serial path spawns no
// goroutines). It returns the number of chunks. fn receives the chunk
// index so callers can keep per-worker state without sharing.
func runChunks(workers, n int, fn func(chunk, lo, hi int)) int {
	ranges := chunkRanges(n, workers)
	if len(ranges) == 1 {
		fn(0, ranges[0][0], ranges[0][1])
		return 1
	}
	var wg sync.WaitGroup
	for ci, rg := range ranges {
		wg.Add(1)
		go func(ci, lo, hi int) {
			defer wg.Done()
			fn(ci, lo, hi)
		}(ci, rg[0], rg[1])
	}
	wg.Wait()
	return len(ranges)
}

// patternSlab pre-sizes count patterns of arity m over one flat backing
// array: a single allocation instead of one per pair, and positional
// writes so concurrent fillers never contend or reorder.
func patternSlab(count, m int) []distance.Pattern {
	flat := make([]float64, count*m)
	out := make([]distance.Pattern, count)
	for k := range out {
		out[k] = distance.Pattern(flat[k*m : (k+1)*m : (k+1)*m])
	}
	return out
}

// pairAt decodes a flat pair index k into the (i, j) tuple pair, i < j,
// under the row-major enumeration (0,1), (0,2), ..., (1,2), ... that the
// serial sampler has always used. Each worker decodes its chunk's first
// index once and advances incrementally from there.
func pairAt(n, k int) (int, int) {
	i, rowStart := 0, 0
	for {
		rowLen := n - 1 - i
		if k < rowStart+rowLen {
			return i, i + 1 + (k - rowStart)
		}
		rowStart += rowLen
		i++
	}
}

// materializeAllPairs fills the full n(n-1)/2 pattern space, chunking
// the flat pair-index range across the workers. Row order is positional
// (identical to the serial double loop), and the sharded engine cache
// makes the concurrent distance reads safe. Workers check the context
// every engine.CheckEvery pairs; the caller must discard the slab when
// the context expired mid-fill.
func materializeAllPairs(ctx context.Context, v *engine.View, workers int, rec obs.Recorder) []distance.Pattern {
	n := v.Len()
	total := n * (n - 1) / 2
	out := patternSlab(total, v.Arity())
	chunks := runChunks(workers, total, func(_, lo, hi int) {
		m := v.Matcher() // per-chunk kernel arena
		i, j := pairAt(n, lo)
		for k := lo; k < hi; k++ {
			if (k-lo)%engine.CheckEvery == 0 && ctx.Err() != nil {
				return
			}
			m.PatternInto(out[k], i, j)
			j++
			if j == n {
				i++
				j = i + 1
			}
		}
	})
	rec.Add(obs.CtrDiscoveryPatternChunks, int64(chunks))
	return out
}

// materializePairs fills patterns for an explicit pair list (the sampled
// path), chunked across the workers with positional writes, under the
// same cancellation contract as materializeAllPairs.
func materializePairs(ctx context.Context, v *engine.View, pairs [][2]int, workers int, rec obs.Recorder) []distance.Pattern {
	out := patternSlab(len(pairs), v.Arity())
	chunks := runChunks(workers, len(pairs), func(_, lo, hi int) {
		m := v.Matcher() // per-chunk kernel arena
		for k := lo; k < hi; k++ {
			if (k-lo)%engine.CheckEvery == 0 && ctx.Err() != nil {
				return
			}
			m.PatternInto(out[k], pairs[k][0], pairs[k][1])
		}
	})
	rec.Add(obs.CtrDiscoveryPatternChunks, int64(chunks))
	return out
}

// searchJob is one independent derivation unit: a (RHS attribute, LHS
// subset) pair, covering every β of that RHS's grid in one incremental
// greedy pass. res is where the job's per-β results go in the flat
// result slab (stride = the RHS's subset count, so a linear walk of the
// slab visits candidates in the serial order: β-major, subset-minor).
type searchJob struct {
	rhs int
	lhs []int
	res int
}

// rhsPlan is the shared per-RHS search state: the β grid entries under
// the RHS cap (ascending, like Config.RHSGrid), the violating-prefix
// length per β, the job and result ranges, and the subset count (the
// result-slab stride).
type rhsPlan struct {
	betas    []float64
	cuts     []int
	resStart int
	resEnd   int
	stride   int
}

// searchCandidates runs the greedy lattice search over every RHS
// attribute. Jobs are (RHS, LHS subset) pairs in the serial enumeration
// order; workers fill a positional result slab, and the merge walks it
// linearly, so the output is byte-identical for any worker count. Each
// worker reuses one caps/thresholds scratch pair across all its jobs.
//
// Within one job the β grid is processed by a single incremental pass:
// the grid is ascending, so each smaller β's violating prefix extends
// the previous one, and the greedy fold's state at each cut boundary is
// exactly the threshold vector a from-scratch pass for that β would
// produce. This turns Σ_β |prefix(β)| greedy work into max_β |prefix(β)|.
func searchCandidates(ctx context.Context, st *patStore, cfg *Config, m, workers int) rfd.Set {
	// Per-RHS pattern order by descending RHS distance, built
	// concurrently across RHS attributes: each β's violating set is then
	// a prefix.
	orders := make([][]int, m)
	runChunks(workers, m, func(_, lo, hi int) {
		for rhs := lo; rhs < hi; rhs++ {
			orders[rhs] = rhsOrder(st, rhs)
		}
	})

	jobs, plans, resLen := buildJobs(st, orders, cfg, m)

	results := make([]*rfd.RFD, resLen)
	maxW := cfg.MaxLHS
	if maxW > m-1 {
		maxW = m - 1
	}
	runChunks(workers, len(jobs), func(_, lo, hi int) {
		caps := make([]float64, maxW)
		th := make([]float64, maxW)
		for k := lo; k < hi; k++ {
			// One derivation unit per check: each job is a full greedy
			// fold, so the checkpoint granularity is already coarse work.
			if ctx.Err() != nil {
				return
			}
			job := jobs[k]
			plan := &plans[job.rhs]
			deriveSubset(st, orders[job.rhs], plan, job, caps, th, results, cfg)
		}
	})

	var out rfd.Set
	for rhs := 0; rhs < m; rhs++ {
		var cands rfd.Set
		for k := plans[rhs].resStart; k < plans[rhs].resEnd; k++ {
			if results[k] != nil {
				cands = append(cands, results[k])
			}
		}
		if !cfg.KeepDominated {
			cands = rfd.Minimize(cands)
		}
		out = append(out, cands...)
	}
	return out
}

// rhsOrder sorts the indices of patterns whose RHS component is present
// by descending RHS distance (missing components cannot witness a
// violation). sort.Slice on the same input yields the same permutation
// every run, so the order — and the greedy pass that consumes it — is
// deterministic.
func rhsOrder(st *patStore, rhs int) []int {
	order := make([]int, 0, st.n)
	for idx := 0; idx < st.n; idx++ {
		if !distance.IsMissing(st.at(idx, rhs)) {
			order = append(order, idx)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		return st.at(order[a], rhs) > st.at(order[b], rhs)
	})
	return order
}

// buildJobs enumerates every (RHS, LHS subset) derivation unit under
// the config's limits, RHS-major with subsets in enumeration order, and
// returns the job list, the per-RHS plans (β grid, violating-prefix
// cuts, result ranges), and the total result-slab length.
func buildJobs(st *patStore, orders [][]int, cfg *Config, m int) ([]searchJob, []rhsPlan, int) {
	var jobs []searchJob
	plans := make([]rhsPlan, m)
	pool := make([]int, 0, m-1)
	resLen := 0
	for rhs := 0; rhs < m; rhs++ {
		pool = pool[:0]
		for a := 0; a < m; a++ {
			if a != rhs {
				pool = append(pool, a)
			}
		}
		subsets := enumerateSubsets(pool, cfg.MaxLHS)
		order := orders[rhs]
		rhsLimit := cfg.limitFor(rhs)
		plan := &plans[rhs]
		for _, beta := range cfg.RHSGrid {
			if beta > rhsLimit {
				continue
			}
			plan.betas = append(plan.betas, beta)
			// Violating prefix: d_rhs > beta.
			plan.cuts = append(plan.cuts, sort.Search(len(order), func(k int) bool {
				return st.at(order[k], rhs) <= beta
			}))
		}
		plan.resStart = resLen
		plan.stride = len(subsets)
		resLen += len(plan.betas) * len(subsets)
		plan.resEnd = resLen
		for si, lhs := range subsets {
			jobs = append(jobs, searchJob{rhs: rhs, lhs: lhs, res: plan.resStart + si})
		}
	}
	return jobs, plans, resLen
}

// deriveSubset runs one job: a single incremental greedy fold over the
// RHS's pattern order, snapshotting a candidate at every β cut
// boundary, each gated by the MinSupport check. Results land at
// results[job.res + βindex*stride]. caps and th are per-worker scratch
// buffers (cap >= len(job.lhs)); nothing escapes them except the
// constraints of kept candidates.
//
// The grid is ascending, so cuts descend with β: walking β from largest
// to smallest only ever extends the processed prefix, and the fold
// state at each boundary equals a from-scratch greedy pass for that β.
// Once the fold fails (a violating pair identical on every LHS
// attribute), every smaller β shares that pair and fails too.
func deriveSubset(st *patStore, order []int, plan *rhsPlan, job searchJob, caps, th []float64, results []*rfd.RFD, cfg *Config) {
	lhs := job.lhs
	caps = caps[:len(lhs)]
	th = th[:len(lhs)]
	for i, a := range lhs {
		caps[i] = cfg.limitFor(a)
	}
	copy(th, caps)
	prev := 0
	for bi := len(plan.betas) - 1; bi >= 0; bi-- {
		cut := plan.cuts[bi]
		if cut > prev {
			if !greedyAdvance(st, order[prev:cut], lhs, th) {
				return // this β and every smaller one fail
			}
			prev = cut
		}
		if !supportAtLeast(st, lhs, th, cfg.MinSupport) {
			continue
		}
		constraints := make([]rfd.Constraint, len(lhs))
		for i, a := range lhs {
			constraints[i] = rfd.Constraint{Attr: a, Threshold: th[i]}
		}
		dep, err := rfd.New(constraints, rfd.Constraint{Attr: job.rhs, Threshold: plan.betas[bi]})
		if err != nil {
			continue
		}
		results[job.res+bi*plan.stride] = dep
	}
}
