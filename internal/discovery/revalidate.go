package discovery

import (
	"runtime"
	"sort"

	"repro/internal/distance"
	"repro/internal/engine"
	"repro/internal/rfd"
)

// RevalidateRows repairs Σ against every tuple pair a set of changed
// rows introduces — the Maintainer's repair rule applied after an
// in-place mutation instead of an append. It is the Σ-correctness half
// of a live-session delta:
//
//   - deletes need no repair (every RFDc holding on an instance holds
//     on any subset — dropping pairs cannot create a violation), so
//     callers pass only the inserted and updated rows;
//   - an inserted or updated row can witness new violations against
//     every other row, so each changed row is checked against the whole
//     instance; a pair of two changed rows is checked once (by its
//     lower-numbered member's sweep);
//   - repairs reuse the Maintainer's greedy cut (repairAgainst): the
//     LHS threshold with the largest pair distance is tightened just
//     below it, or the dependency is dropped when the pair is identical
//     on the whole LHS. Tightening is monotone, so the returned set
//     holds on the entire new instance, not just the checked pairs.
//
// rows are flat indices into v (deduplicated here). Pattern
// materialization is chunked across workers (0 = all CPUs, 1 = serial);
// repairs apply serially in (row, pair) order, so the returned set is
// identical for every worker count. Σ is deep-copied; the caller's set
// is never mutated.
func RevalidateRows(v *engine.View, sigma rfd.Set, rows []int, workers int) (out rfd.Set, dropped, tightened int) {
	cp := make(rfd.Set, len(sigma))
	for i, dep := range sigma {
		lhs := append([]rfd.Constraint(nil), dep.LHS...)
		cp[i] = rfd.MustNew(lhs, dep.RHS)
	}
	if len(rows) == 0 || len(cp) == 0 {
		return cp, 0, 0
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	n := v.Len()
	changed := make([]bool, n)
	order := append([]int(nil), rows...)
	sort.Ints(order)
	order = order[:uniqInts(order)]
	for _, r := range order {
		changed[r] = true
	}

	repair := func(p distance.Pattern) {
		kept := cp[:0]
		for _, dep := range cp {
			repaired, ok := repairAgainst(dep, p)
			if !ok {
				dropped++
				continue
			}
			if repaired != dep {
				tightened++
			}
			kept = append(kept, repaired)
		}
		cp = kept
	}
	// skip reports whether the pair (r, j) is not this sweep's to check:
	// the row itself, or a changed pair already covered by the sweep of
	// its lower-numbered member.
	skip := func(r, j int) bool { return j == r || (changed[j] && j < r) }

	m := v.Matcher()
	var one distance.Pattern
	var slab []distance.Pattern
	for _, r := range order {
		if len(cp) == 0 {
			break
		}
		if workers <= 1 || n < 2*workers {
			if one == nil {
				one = distance.NewPattern(v.Arity())
			}
			for j := 0; j < n; j++ {
				if skip(r, j) {
					continue
				}
				m.PatternInto(one, r, j)
				repair(one)
			}
			continue
		}
		// Materialize the changed row's patterns against every row
		// concurrently (view reads are safe), then repair serially in pair
		// order — identical to the serial sweep.
		if len(slab) < n {
			slab = patternSlab(n, v.Arity())
		}
		runChunks(workers, n, func(_, lo, hi int) {
			wm := v.Matcher()
			for j := lo; j < hi; j++ {
				if !skip(r, j) {
					wm.PatternInto(slab[j], r, j)
				}
			}
		})
		for j := 0; j < n; j++ {
			if !skip(r, j) {
				repair(slab[j])
			}
		}
	}
	return cp, dropped, tightened
}

// uniqInts compacts a sorted slice in place, returning the new length.
func uniqInts(s []int) int {
	if len(s) == 0 {
		return 0
	}
	w := 1
	for _, x := range s[1:] {
		if x != s[w-1] {
			s[w] = x
			w++
		}
	}
	return w
}
