package discovery

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	"repro/internal/dataset"
)

// benchStringsRelation replicates Table 2 into a larger deterministic
// instance (the strings-heavy discovery workload: Levenshtein-dominated
// pattern materialization over repeated values, so the engine cache has
// real reuse). Block suffixes keep Name values distinct across blocks.
func benchStringsRelation(tb testing.TB, blocks int) *dataset.Relation {
	tb.Helper()
	base := []string{
		"Granita %d,Malibu,310/456-0488,Californian,6",
		"Chinois Main %d,LA,310-392-9025,French,5",
		"Citrus %d,Los Angeles,213/857-0034,Californian,6",
		"Citrus %d,Los Angeles,213/857-0035,Californian,6",
		"Fenix %d,Hollywood,213/848-6677,French,5",
	}
	var sb strings.Builder
	sb.WriteString("Name,City,Phone,Type,Class\n")
	for b := 0; b < blocks; b++ {
		for _, row := range base {
			fmt.Fprintf(&sb, row+"\n", b)
		}
	}
	rel, err := dataset.ReadCSVString(sb.String())
	if err != nil {
		tb.Fatal(err)
	}
	return rel
}

// benchNumericRelation builds a numeric workload: four correlated
// integer attributes, so the lattice search is dominated by range
// comparisons rather than string distances.
func benchNumericRelation(tb testing.TB, n int) *dataset.Relation {
	tb.Helper()
	var sb strings.Builder
	sb.WriteString("A,B,C,D\n")
	for i := 0; i < n; i++ {
		a := i % 17
		fmt.Fprintf(&sb, "%d,%d,%d,%d\n", a, a*2+i%3, a+i%5, i%11)
	}
	rel, err := dataset.ReadCSVString(sb.String())
	if err != nil {
		tb.Fatal(err)
	}
	return rel
}

// benchConfig is the shared discovery configuration of the benchmarks:
// the Table 3 mid-grid threshold with the default MaxLHS of 2.
func benchConfig(workers int) Config {
	return Config{MaxThreshold: 6, Workers: workers}
}

// BenchmarkDiscover measures end-to-end discovery on the two workload
// shapes at worker counts 1/2/4/8 (1 is the serial path). The output is
// byte-identical across worker counts, so the benchmark isolates pure
// pipeline cost.
func BenchmarkDiscover(b *testing.B) {
	workloads := []struct {
		name string
		rel  *dataset.Relation
	}{
		{"strings", benchStringsRelation(b, 24)},  // 120 tuples, 7140 pairs
		{"numeric", benchNumericRelation(b, 160)}, // 160 tuples, 12720 pairs
	}
	for _, wl := range workloads {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", wl.name, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := Discover(wl.rel, benchConfig(workers)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// benchRecord is one benchmark's figures as serialized to
// BENCH_DISCOVERY_OUT (the shape BENCH_core.json uses).
type benchRecord struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// TestBenchDiscoveryJSON emits the discovery benchmark figures (both
// workloads, workers 1/2/4/8) plus the host's CPU budget as JSON — the
// BENCH_discovery.json regression record:
//
//	BENCH_DISCOVERY_OUT=BENCH_discovery.json go test ./internal/discovery -run TestBenchDiscoveryJSON
//
// Without BENCH_DISCOVERY_OUT the test is skipped, so the suite stays
// fast. GOMAXPROCS is recorded because wall-clock speedup from workers
// can only materialize when the host exposes more than one CPU; the
// allocs/op reductions are host-independent.
func TestBenchDiscoveryJSON(t *testing.T) {
	out := os.Getenv("BENCH_DISCOVERY_OUT")
	if out == "" {
		t.Skip("set BENCH_DISCOVERY_OUT=<file> to emit benchmark JSON")
	}

	workloads := []struct {
		name string
		rel  *dataset.Relation
	}{
		{"strings", benchStringsRelation(t, 24)},
		{"numeric", benchNumericRelation(t, 160)},
	}
	var records []benchRecord
	for _, wl := range workloads {
		for _, workers := range []int{1, 2, 4, 8} {
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := Discover(wl.rel, benchConfig(workers)); err != nil {
						b.Fatal(err)
					}
				}
			})
			records = append(records, benchRecord{
				Name:        fmt.Sprintf("Discover/%s/workers=%d", wl.name, workers),
				Iterations:  r.N,
				NsPerOp:     float64(r.NsPerOp()),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
			})
		}
	}

	doc, err := json.MarshalIndent(struct {
		Package    string        `json:"package"`
		GOMAXPROCS int           `json:"gomaxprocs"`
		Benchmarks []benchRecord `json:"benchmarks"`
	}{Package: "repro/internal/discovery", GOMAXPROCS: runtime.GOMAXPROCS(0), Benchmarks: records}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(doc, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
	for _, r := range records {
		if r.NsPerOp <= 0 || r.Iterations == 0 {
			t.Errorf("suspicious benchmark record: %+v", r)
		}
	}
}
