package discovery

import (
	"context"
	"math"

	"repro/internal/distance"
	"repro/internal/engine"
	"repro/internal/obs"
)

// This file is the bounded-memory partition pipeline behind
// Config.Shards: instead of materializing the whole P x m pattern
// matrix as float64 rows, the flat pair-index space is split into
// Shards contiguous anchor bands, each band is materialized into one
// reusable transient float64 slab, and the slab is folded into a
// lossless compact column store before the next band starts. Peak
// pattern memory is then one band's slab plus the compact store —
// on string workloads roughly (8/S + 1)/8 of the unsharded slab —
// instead of the full 8-byte matrix.
//
// Byte-identity across shard counts comes for free from losslessness:
// the lattice search consumes pattern *values* only (comparisons,
// sort.Slice permutations, greedy folds), so a store that returns the
// exact float64 the Matcher produced — which the encodings below
// guarantee — yields bit-identical rules, supports, and trace events
// for every shard count, including the unsharded flat-slab path.

// patStore is the pattern matrix the lattice search reads: n patterns
// of arity m behind a value-exact accessor. Exactly one backing is set:
// rows (the legacy flat slab, Shards <= 1) or cols (the compact
// column-major encoding, Shards >= 2).
type patStore struct {
	n    int
	m    int
	rows []distance.Pattern
	cols []patCol
	// peakBytes is the run's peak pattern-storage footprint: the whole
	// slab when row-backed, the largest transient shard slab plus the
	// final compact store when column-backed.
	peakBytes int64
}

// flatStore wraps the legacy flat slab unchanged.
func flatStore(patterns []distance.Pattern, m int) *patStore {
	return &patStore{
		n:         len(patterns),
		m:         m,
		rows:      patterns,
		peakBytes: int64(len(patterns)) * int64(m) * 8,
	}
}

// at returns pattern k's distance on attribute a — bit-for-bit the
// value the Matcher materialized (missing stays missing; NaN payloads
// are never observed, only distance.IsMissing and comparisons).
func (s *patStore) at(k, a int) float64 {
	if s.rows != nil {
		return s.rows[k][a]
	}
	return s.cols[a].get(k)
}

// storeBytes is the compact store's current payload size.
func (s *patStore) storeBytes() int64 {
	var total int64
	for i := range s.cols {
		total += s.cols[i].bytes()
	}
	return total
}

// Column encodings, narrowest first. Promotion is per column and
// one-way: a value the current encoding cannot hold exactly re-encodes
// the column one step wider. String edit distances (small non-negative
// integers) stay in one byte; absolute numeric differences that are
// float32-exact take four; everything else falls back to the full
// float64.
const (
	encU8  uint8 = iota // integers 0..254; 255 is the missing sentinel
	encF32              // float64-exact float32; NaN is missing
	encF64              // lossless fallback; NaN is missing
)

// missingU8 is the encU8 missing-value sentinel; a legitimate distance
// of 255 promotes the column to encF32 instead.
const missingU8 = 255

// patCol is one attribute's column in the compact store.
type patCol struct {
	enc uint8
	u8  []uint8
	f32 []float32
	f64 []float64
}

// get decodes entry k back to the exact materialized float64.
func (c *patCol) get(k int) float64 {
	switch c.enc {
	case encU8:
		b := c.u8[k]
		if b == missingU8 {
			return distance.Missing
		}
		return float64(b)
	case encF32:
		return float64(c.f32[k])
	default:
		return c.f64[k]
	}
}

// push appends one value, promoting the column when the current
// encoding cannot represent it exactly.
func (c *patCol) push(v float64) {
	for {
		switch c.enc {
		case encU8:
			if distance.IsMissing(v) {
				c.u8 = append(c.u8, missingU8)
				return
			}
			if v >= 0 && v < missingU8 && v == math.Trunc(v) {
				c.u8 = append(c.u8, uint8(v))
				return
			}
		case encF32:
			if f := float32(v); distance.IsMissing(v) || float64(f) == v {
				c.f32 = append(c.f32, f)
				return
			}
		default:
			c.f64 = append(c.f64, v)
			return
		}
		c.promote()
	}
}

// promote re-encodes the column one step wider, preserving every value
// (0..254 integers are float32-exact; the missing sentinel becomes NaN).
func (c *patCol) promote() {
	switch c.enc {
	case encU8:
		c.f32 = make([]float32, len(c.u8))
		for i, b := range c.u8 {
			if b == missingU8 {
				c.f32[i] = float32(math.NaN())
			} else {
				c.f32[i] = float32(b)
			}
		}
		c.u8, c.enc = nil, encF32
	case encF32:
		c.f64 = make([]float64, len(c.f32))
		for i, f := range c.f32 {
			c.f64[i] = float64(f)
		}
		c.f32, c.enc = nil, encF64
	}
}

// bytes is the column's current payload size.
func (c *patCol) bytes() int64 {
	switch c.enc {
	case encU8:
		return int64(len(c.u8))
	case encF32:
		return int64(len(c.f32)) * 4
	default:
		return int64(len(c.f64)) * 8
	}
}

// appendSlab folds rows materialized patterns from the row-major slab
// into the compact columns.
func (s *patStore) appendSlab(slab []float64, rows int) {
	for a := 0; a < s.m; a++ {
		col := &s.cols[a]
		for k := 0; k < rows; k++ {
			col.push(slab[k*s.m+a])
		}
	}
}

// shardedPatterns is the Shards >= 2 materialization pipeline: the flat
// pair-index space [0, P) — all pairs, or the serial sampler's pair
// list — is split into shards contiguous anchor bands; each band fills
// one reusable transient slab (worker-chunked, positional writes, the
// usual cancellation checkpoints) and is then encoded into the compact
// store before the next band is touched. Pattern order is the flat
// pair order, identical to the unsharded slab. Returns nil when the
// context expired mid-band; the partial store must never be searched.
func shardedPatterns(ctx context.Context, v *engine.View, cfg *Config, shards, workers int, rec obs.Recorder) *patStore {
	n := v.Len()
	m := v.Arity()
	total := n * (n - 1) / 2
	var pairs [][2]int
	if cfg.MaxPairs > 0 && cfg.MaxPairs < total {
		pairs = samplePairs(n, cfg.MaxPairs, cfg.Seed)
		total = len(pairs)
	}
	st := &patStore{n: total, m: m, cols: make([]patCol, m)}
	if total == 0 {
		return st
	}
	bands := chunkRanges(total, shards)
	maxBand := 0
	for _, b := range bands {
		if l := b[1] - b[0]; l > maxBand {
			maxBand = l
		}
	}
	slab := make([]float64, maxBand*m)
	for _, band := range bands {
		lo, hi := band[0], band[1]
		chunks := runChunks(workers, hi-lo, func(_, clo, chi int) {
			wm := v.Matcher() // per-chunk kernel arena
			if pairs != nil {
				for k := clo; k < chi; k++ {
					if (k-clo)%engine.CheckEvery == 0 && ctx.Err() != nil {
						return
					}
					p := pairs[lo+k]
					wm.PatternInto(slab[k*m:(k+1)*m], p[0], p[1])
				}
				return
			}
			i, j := pairAt(n, lo+clo)
			for k := clo; k < chi; k++ {
				if (k-clo)%engine.CheckEvery == 0 && ctx.Err() != nil {
					return
				}
				wm.PatternInto(slab[k*m:(k+1)*m], i, j)
				j++
				if j == n {
					i++
					j = i + 1
				}
			}
		})
		rec.Add(obs.CtrDiscoveryPatternChunks, int64(chunks))
		rec.Add(obs.CtrDiscoveryShardSlabBytes, int64(hi-lo)*int64(m)*8)
		if ctx.Err() != nil {
			// The band may hold unmaterialized rows; never encode it.
			return nil
		}
		st.appendSlab(slab, hi-lo)
	}
	// The store only grows, so the peak is the last band's slab
	// coexisting with the finished store.
	st.peakBytes = int64(maxBand)*int64(m)*8 + st.storeBytes()
	return st
}
