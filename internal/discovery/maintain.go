package discovery

import (
	"math"
	"runtime"

	"repro/internal/dataset"
	"repro/internal/distance"
	"repro/internal/engine"
	"repro/internal/rfd"
)

// Maintainer keeps a discovered RFDc set valid as tuples arrive — the
// incremental-discovery capability the paper's Sec. 7 names as a
// prerequisite for streaming scenarios (citing the incremental
// algorithms of Caruccio et al. [4, 5]). Instead of re-running discovery
// after every arrival, the maintainer checks only the pairs the new
// tuple introduces:
//
//   - a pair that witnesses a violation of φ forces a repair: φ's LHS is
//     tightened just below the pair's distance on the cheapest attribute
//     (the same greedy cut discovery uses), or φ is dropped when the
//     pair is identical on the whole LHS;
//   - tightening is monotone, so a dependency only ever gets more
//     restrictive and the maintained set always holds on the instance
//     seen so far.
type Maintainer struct {
	v       *engine.View
	m       *engine.Matcher // serial-path kernel arena over v
	sigma   rfd.Set
	workers int
	// one is the serial-path pattern scratch, reused across appends.
	one distance.Pattern
	// pats is the parallel-path pattern slab (one row per earlier
	// tuple), grown as the instance grows and reused across appends.
	pats []distance.Pattern
	// counters
	dropped   int
	tightened int
}

// NewMaintainer starts incremental maintenance from a base instance and
// a set holding on it. The base is cloned; Σ is deep-copied so repairs
// never mutate the caller's dependencies. The session owns one engine
// view, so distances compared against earlier arrivals stay memoized for
// later ones.
func NewMaintainer(base *dataset.Relation, sigma rfd.Set) *Maintainer {
	return NewMaintainerWorkers(base, sigma, 1)
}

// NewMaintainerWorkers is NewMaintainer with the per-arrival pattern
// materialization chunked across workers (0 means runtime.NumCPU(), 1
// the serial path). Repairs are applied serially in pair order either
// way, so the maintained set is identical for every worker count.
func NewMaintainerWorkers(base *dataset.Relation, sigma rfd.Set, workers int) *Maintainer {
	cp := make(rfd.Set, len(sigma))
	for i, dep := range sigma {
		lhs := append([]rfd.Constraint(nil), dep.LHS...)
		cp[i] = rfd.MustNew(lhs, dep.RHS)
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	v := engine.Compile(base.Clone())
	return &Maintainer{v: v, m: v.Matcher(), sigma: cp, workers: workers}
}

// Sigma returns the currently maintained set. The returned slice is the
// maintainer's working set; callers must not mutate it.
func (mt *Maintainer) Sigma() rfd.Set { return mt.sigma }

// Relation exposes the accumulated instance.
func (mt *Maintainer) Relation() *dataset.Relation { return mt.v.Relation() }

// Stats returns how many dependencies were dropped and how many repair
// tightenings were applied so far.
func (mt *Maintainer) Stats() (dropped, tightened int) { return mt.dropped, mt.tightened }

// Append adds one tuple and repairs the set against the new pairs. It
// returns the number of dependencies dropped and tightened by this
// arrival.
func (mt *Maintainer) Append(t dataset.Tuple) (dropped, tightened int, err error) {
	if err := mt.v.Append(t.Clone()); err != nil {
		return 0, 0, err
	}
	row := mt.v.Len() - 1

	repair := func(p distance.Pattern) {
		// In-place compaction: the write index never passes the read
		// index, so filtering reuses the working set's backing array
		// instead of allocating a fresh slice per pair.
		kept := mt.sigma[:0]
		for _, dep := range mt.sigma {
			repaired, ok := repairAgainst(dep, p)
			if !ok {
				dropped++
				continue
			}
			if repaired != dep {
				tightened++
			}
			kept = append(kept, repaired)
		}
		mt.sigma = kept
	}

	if mt.workers <= 1 || row < 2*mt.workers {
		if mt.one == nil {
			mt.one = distance.NewPattern(mt.v.Arity())
		}
		for j := 0; j < row; j++ {
			mt.m.PatternInto(mt.one, row, j)
			repair(mt.one)
		}
	} else {
		// Materialize the new tuple's patterns against every earlier row
		// concurrently (view reads are safe), then apply repairs serially
		// in pair order — identical to the serial sweep.
		pats := mt.patternsAgainst(row)
		for j := 0; j < row; j++ {
			repair(pats[j])
		}
	}
	mt.dropped += dropped
	mt.tightened += tightened
	return dropped, tightened, nil
}

// patternsAgainst fills (and, when needed, grows) the reusable slab with
// the distance patterns between row and every earlier row, chunked
// across the maintainer's workers.
func (mt *Maintainer) patternsAgainst(row int) []distance.Pattern {
	if len(mt.pats) < row {
		grown := patternSlab(row*2, mt.v.Arity())
		mt.pats = grown
	}
	runChunks(mt.workers, row, func(_, lo, hi int) {
		wm := mt.v.Matcher() // per-chunk kernel arena
		for j := lo; j < hi; j++ {
			wm.PatternInto(mt.pats[j], row, j)
		}
	})
	return mt.pats[:row]
}

// repairAgainst returns the dependency unchanged when the pattern does
// not witness a violation; otherwise it tightens the LHS threshold on
// the attribute with the largest distance so the pair no longer
// satisfies the premise. The second result is false when no repair
// exists (the pair is identical on every LHS attribute).
func repairAgainst(dep *rfd.RFD, p distance.Pattern) (*rfd.RFD, bool) {
	if !dep.ViolatedBy(p) {
		return dep, true
	}
	best, bestD := -1, -1.0
	for i, c := range dep.LHS {
		if d := p[c.Attr]; d > bestD {
			best, bestD = i, d
		}
	}
	if bestD <= 0 {
		return nil, false
	}
	next := math.Ceil(bestD) - 1
	if next >= bestD {
		next = bestD - 1
	}
	if next < 0 {
		return nil, false
	}
	lhs := append([]rfd.Constraint(nil), dep.LHS...)
	lhs[best].Threshold = next
	return rfd.MustNew(lhs, dep.RHS), true
}
