package discovery

import (
	"bytes"
	"context"
	"math"
	"testing"

	"repro/internal/distance"
	"repro/internal/engine"
	"repro/internal/obs"
)

var parityShardCounts = []int{1, 2, 4, 8}

// TestDiscoverShardParity: the discovered set (textual codec) and the
// rule_emitted trace stream are byte-identical across the full
// (shards x workers) grid, on both the Table 2 sample and the Table 4
// Restaurant workload — the contract that lets operators pick Shards
// purely on memory grounds.
func TestDiscoverShardParity(t *testing.T) {
	workloads := []struct {
		name string
		cfg  Config
	}{
		{"table2", Config{MaxThreshold: 6}},
		{"table4", Config{MaxThreshold: 6}},
		{"table4-maxlhs3", Config{MaxThreshold: 9, MaxLHS: 3}},
	}
	for _, wl := range workloads {
		t.Run(wl.name, func(t *testing.T) {
			rel := table2(t)
			if wl.name != "table2" {
				rel = table4Relation(t)
			}
			var refSet []byte
			var refEvents []obs.TraceEvent
			first := true
			for _, shards := range parityShardCounts {
				for _, workers := range []int{1, 4} {
					cfg := wl.cfg
					cfg.Shards = shards
					cfg.Workers = workers
					tr := obs.NewRingTracer(0, 1)
					cfg.Tracer = tr
					sigma, err := Discover(rel, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if len(sigma) == 0 {
						t.Fatalf("shards=%d workers=%d discovered nothing", shards, workers)
					}
					enc := encodeSet(t, sigma, rel.Schema())
					events := ruleEvents(tr)
					if first {
						refSet, refEvents, first = enc, events, false
						continue
					}
					if !bytes.Equal(enc, refSet) {
						t.Errorf("shards=%d workers=%d set differs from reference:\n%s\nvs\n%s",
							shards, workers, enc, refSet)
					}
					if len(events) != len(refEvents) {
						t.Fatalf("shards=%d workers=%d emitted %d rule events, want %d",
							shards, workers, len(events), len(refEvents))
					}
					for i, ev := range events {
						ref := refEvents[i]
						if ev.Kind != ref.Kind || ev.Attr != ref.Attr || ev.N != ref.N ||
							ev.Threshold != ref.Threshold || ev.Rules[0] != ref.Rules[0] {
							t.Errorf("shards=%d workers=%d rule event %d = %+v, want %+v",
								shards, workers, i, ev, ref)
						}
					}
				}
			}
		})
	}
}

// TestDiscoverShardSampledParity: with MaxPairs forcing the sampled
// path, the sharded pipeline bands the sampler's pair list, so the set
// stays shard-count independent for a fixed seed.
func TestDiscoverShardSampledParity(t *testing.T) {
	rel := table4Relation(t)
	var ref []byte
	for _, shards := range parityShardCounts {
		sigma, err := Discover(rel, Config{
			MaxThreshold: 6, MaxPairs: 500, Seed: 7, Workers: 4, Shards: shards,
		})
		if err != nil {
			t.Fatal(err)
		}
		enc := encodeSet(t, sigma, rel.Schema())
		if shards == parityShardCounts[0] {
			ref = enc
			continue
		}
		if !bytes.Equal(enc, ref) {
			t.Errorf("sampled discovery differs at shards=%d", shards)
		}
	}
}

// TestPatColEncoding: the per-column adaptive encoding is lossless for
// every value class, including the u8 sentinel boundary and the
// promotion cascades.
func TestPatColEncoding(t *testing.T) {
	check := func(t *testing.T, vals []float64, wantEnc uint8) {
		t.Helper()
		var c patCol
		for _, v := range vals {
			c.push(v)
		}
		if c.enc != wantEnc {
			t.Fatalf("enc = %d, want %d", c.enc, wantEnc)
		}
		for i, v := range vals {
			got := c.get(i)
			if distance.IsMissing(v) {
				if !distance.IsMissing(got) {
					t.Fatalf("entry %d = %v, want missing", i, got)
				}
				continue
			}
			if math.Float64bits(got) != math.Float64bits(v) {
				t.Fatalf("entry %d = %v (bits %x), want %v (bits %x)",
					i, got, math.Float64bits(got), v, math.Float64bits(v))
			}
		}
	}
	t.Run("u8", func(t *testing.T) {
		check(t, []float64{0, 1, 254, distance.Missing, 7}, encU8)
	})
	t.Run("sentinel-value-promotes", func(t *testing.T) {
		// A legitimate distance of 255 cannot share the missing sentinel.
		check(t, []float64{3, distance.Missing, 255}, encF32)
	})
	t.Run("fraction-promotes", func(t *testing.T) {
		check(t, []float64{2, 0.5, distance.Missing}, encF32)
	})
	t.Run("negative-promotes", func(t *testing.T) {
		check(t, []float64{1, -2}, encF32)
	})
	t.Run("f64-fallback", func(t *testing.T) {
		// 0.1 is not float32-exact; the column lands on the full float64.
		check(t, []float64{4, 0.5, 0.1, distance.Missing, 1e300}, encF64)
	})
	t.Run("straight-to-f64", func(t *testing.T) {
		check(t, []float64{0.1}, encF64)
	})
}

// TestPatStoreMatchesFlat: the sharded compact store returns bit-
// identical values to the legacy flat slab at every (pattern, attr)
// cell, for several shard counts and both the exhaustive and sampled
// pair paths.
func TestPatStoreMatchesFlat(t *testing.T) {
	rel := table4Relation(t)
	v := engine.Compile(rel)
	m := v.Arity()
	for _, maxPairs := range []int{0, 700} {
		cfg := Config{MaxPairs: maxPairs, Seed: 7}
		flat := flatStore(samplePatterns(context.Background(), v, maxPairs, 7, 1, obs.Nop{}), m)
		for _, shards := range []int{2, 3, 8} {
			st := shardedPatterns(context.Background(), v, &cfg, shards, 4, obs.Nop{})
			if st == nil || st.n != flat.n {
				t.Fatalf("maxPairs=%d shards=%d: store n = %v, want %d", maxPairs, shards, st, flat.n)
			}
			for k := 0; k < st.n; k++ {
				for a := 0; a < m; a++ {
					want, got := flat.at(k, a), st.at(k, a)
					same := math.Float64bits(want) == math.Float64bits(got) ||
						(distance.IsMissing(want) && distance.IsMissing(got))
					if !same {
						t.Fatalf("maxPairs=%d shards=%d pattern %d attr %d = %v, want %v",
							maxPairs, shards, k, a, got, want)
					}
				}
			}
			if st.peakBytes <= 0 || st.peakBytes >= flat.peakBytes {
				t.Errorf("maxPairs=%d shards=%d peakBytes = %d, want in (0, %d)",
					maxPairs, shards, st.peakBytes, flat.peakBytes)
			}
		}
	}
}

// TestShardedPatternsPeakBytes: the acceptance bound — at four shards
// the recorded peak pattern footprint is at most half the unsharded
// slab on the string-heavy Restaurant workload.
func TestShardedPatternsPeakBytes(t *testing.T) {
	rel := table4Relation(t)
	v := engine.Compile(rel)
	cfg := Config{}
	flat := flatStore(samplePatterns(context.Background(), v, 0, 0, 1, obs.Nop{}), v.Arity())
	st := shardedPatterns(context.Background(), v, &cfg, 4, 4, obs.Nop{})
	if st == nil {
		t.Fatal("sharded materialization returned nil without cancellation")
	}
	if st.peakBytes*2 > flat.peakBytes {
		t.Errorf("shards=4 peak %d bytes, want <= half of unsharded %d", st.peakBytes, flat.peakBytes)
	}
}

// TestShardedPatternsCancel: a context expiring mid-materialization
// yields nil — the partial store must never reach the search.
func TestShardedPatternsCancel(t *testing.T) {
	rel := table4Relation(t)
	v := engine.Compile(rel)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := Config{}
	if st := shardedPatterns(ctx, v, &cfg, 4, 2, obs.Nop{}); st != nil && st.n > 0 {
		t.Errorf("cancelled materialization returned a non-nil store with %d patterns", st.n)
	}
}

// TestDiscoverRejectsNegativeShards: config validation covers the new
// knob.
func TestDiscoverRejectsNegativeShards(t *testing.T) {
	if _, err := Discover(table2(t), Config{MaxThreshold: 3, Shards: -1}); err == nil {
		t.Error("negative Shards accepted")
	}
}

// TestDiscoverShardCounters: a sharded run reports its fan-out and the
// peak pattern footprint through the recorder.
func TestDiscoverShardCounters(t *testing.T) {
	rel := table4Relation(t)
	m := obs.NewMetrics()
	if _, err := Discover(rel, Config{MaxThreshold: 6, Shards: 4, Recorder: m}); err != nil {
		t.Fatal(err)
	}
	s := m.Snapshot()
	if s.Counters["discovery_shards"] != 4 {
		t.Errorf("discovery_shards = %d, want 4", s.Counters["discovery_shards"])
	}
	for _, name := range []string{"discovery_shard_slab_bytes", "discovery_pattern_peak_bytes"} {
		if s.Counters[name] == 0 {
			t.Errorf("%s not recorded: %+v", name, s.Counters)
		}
	}
}
