package discovery

import (
	"math"
	"math/rand"
	"runtime"
	"sort"

	"repro/internal/dataset"
	"repro/internal/distance"
	"repro/internal/engine"
)

// AdaptiveAttrLimits is the paper's threshold-bounding extension (Sec. 7:
// "we would like to evaluate RENUVER with RFDcs whose thresholds have
// associated an upper bound dependent from attribute domains and value
// distributions"). It returns one threshold cap per attribute: the
// q-quantile of the attribute's non-zero pairwise distances, floored to
// the integer grid the discovery search uses. An attribute whose values
// never differ (or never co-occur) gets cap 0.
//
// Plugged into Config.AttrLimits, the caps keep a wide-domain attribute
// (say, free-text names with typical distances of 15+) from being given
// the same budget as a tight numeric code, which is exactly the failure
// mode the paper observed on Glass ("the RFDc threshold values do not
// capture the correlation among data").
func AdaptiveAttrLimits(rel *dataset.Relation, quantile float64, maxPairs int, seed int64) []float64 {
	return AdaptiveAttrLimitsWorkers(rel, quantile, maxPairs, seed, 1)
}

// AdaptiveAttrLimitsWorkers is AdaptiveAttrLimits with the exhaustive
// pair scan chunked across workers (0 means runtime.NumCPU()). The
// per-attribute distance multiset is identical however it is collected
// and gets sorted before the quantile is read, so the caps are
// worker-count independent. The sampled path (maxPairs set) keeps its
// single rng sequence and stays serial.
func AdaptiveAttrLimitsWorkers(rel *dataset.Relation, quantile float64, maxPairs int, seed int64, workers int) []float64 {
	if quantile <= 0 {
		quantile = 0.25
	}
	if quantile > 1 {
		quantile = 1
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	m := rel.Schema().Len()
	n := rel.Len()
	limits := make([]float64, m)
	if n < 2 {
		return limits
	}

	v := engine.Compile(rel)
	recordInto := func(em *engine.Matcher, samples [][]float64, i, j int) {
		for a := 0; a < m; a++ {
			d := em.Distance(a, i, j)
			if !distance.IsMissing(d) && d > 0 {
				samples[a] = append(samples[a], d)
			}
		}
	}

	var samples [][]float64
	total := n * (n - 1) / 2
	if maxPairs <= 0 || maxPairs >= total {
		// Chunk the flat pair-index range; each worker collects into its
		// own sample set, merged in chunk order below.
		ranges := chunkRanges(total, workers)
		parts := make([][][]float64, len(ranges))
		runChunks(workers, total, func(ci, lo, hi int) {
			em := v.Matcher() // per-chunk kernel arena
			local := make([][]float64, m)
			i, j := pairAt(n, lo)
			for k := lo; k < hi; k++ {
				recordInto(em, local, i, j)
				j++
				if j == n {
					i++
					j = i + 1
				}
			}
			parts[ci] = local
		})
		samples = make([][]float64, m)
		for _, local := range parts {
			for a := 0; a < m; a++ {
				samples[a] = append(samples[a], local[a]...)
			}
		}
	} else {
		samples = make([][]float64, m)
		em := v.Matcher()
		rng := rand.New(rand.NewSource(seed))
		for k := 0; k < maxPairs; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i != j {
				recordInto(em, samples, i, j)
			}
		}
	}

	for a := 0; a < m; a++ {
		if len(samples[a]) == 0 {
			continue
		}
		sort.Float64s(samples[a])
		idx := int(quantile * float64(len(samples[a])-1))
		limits[a] = math.Floor(samples[a][idx])
	}
	return limits
}
