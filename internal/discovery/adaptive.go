package discovery

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/dataset"
	"repro/internal/distance"
	"repro/internal/engine"
)

// AdaptiveAttrLimits is the paper's threshold-bounding extension (Sec. 7:
// "we would like to evaluate RENUVER with RFDcs whose thresholds have
// associated an upper bound dependent from attribute domains and value
// distributions"). It returns one threshold cap per attribute: the
// q-quantile of the attribute's non-zero pairwise distances, floored to
// the integer grid the discovery search uses. An attribute whose values
// never differ (or never co-occur) gets cap 0.
//
// Plugged into Config.AttrLimits, the caps keep a wide-domain attribute
// (say, free-text names with typical distances of 15+) from being given
// the same budget as a tight numeric code, which is exactly the failure
// mode the paper observed on Glass ("the RFDc threshold values do not
// capture the correlation among data").
func AdaptiveAttrLimits(rel *dataset.Relation, quantile float64, maxPairs int, seed int64) []float64 {
	if quantile <= 0 {
		quantile = 0.25
	}
	if quantile > 1 {
		quantile = 1
	}
	m := rel.Schema().Len()
	n := rel.Len()
	limits := make([]float64, m)
	if n < 2 {
		return limits
	}

	v := engine.Compile(rel)
	samples := make([][]float64, m)
	record := func(i, j int) {
		for a := 0; a < m; a++ {
			d := v.Distance(a, i, j)
			if !distance.IsMissing(d) && d > 0 {
				samples[a] = append(samples[a], d)
			}
		}
	}
	total := n * (n - 1) / 2
	if maxPairs <= 0 || maxPairs >= total {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				record(i, j)
			}
		}
	} else {
		rng := rand.New(rand.NewSource(seed))
		for k := 0; k < maxPairs; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i != j {
				record(i, j)
			}
		}
	}

	for a := 0; a < m; a++ {
		if len(samples[a]) == 0 {
			continue
		}
		sort.Float64s(samples[a])
		idx := int(quantile * float64(len(samples[a])-1))
		limits[a] = math.Floor(samples[a][idx])
	}
	return limits
}
