package discovery

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/rfd"
)

// revalidateInstance builds a mutated successor of table2 plus the rows
// a delta would mark changed: a few cell rewrites and a few appends.
func revalidateInstance(t *testing.T, rng *rand.Rand, appends int) (*dataset.Relation, []int) {
	t.Helper()
	rel := table2(t).Clone()
	words := []string{"Granita", "Citrus", "Fenix", "LA", "Hollywood", "French", "Californian", "C. Main"}
	changed := []int{1, 4}
	for _, r := range changed {
		rel.Set(r, rng.Intn(3), dataset.NewString(words[rng.Intn(len(words))]))
	}
	for k := 0; k < appends; k++ {
		tpl := make(dataset.Tuple, rel.Schema().Len())
		for a := 0; a < rel.Schema().Len(); a++ {
			if rel.Schema().Attr(a).Kind == dataset.KindInt {
				tpl[a] = dataset.NewInt(int64(rng.Intn(9)))
			} else {
				tpl[a] = dataset.NewString(words[rng.Intn(len(words))])
			}
		}
		rel.MustAppend(tpl)
		changed = append(changed, rel.Len()-1)
	}
	return rel, changed
}

// TestRevalidateRowsInvariant: the property a live session depends on —
// whatever RevalidateRows returns holds on the ENTIRE mutated instance,
// not just the checked pairs (tightening is monotone), and the caller's
// Σ comes back untouched.
func TestRevalidateRowsInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	base := table2(t)
	sigma, err := Discover(base, Config{MaxThreshold: 9})
	if err != nil {
		t.Fatal(err)
	}
	orig := make(rfd.Set, len(sigma))
	for i, dep := range sigma {
		orig[i] = rfd.MustNew(append([]rfd.Constraint(nil), dep.LHS...), dep.RHS)
	}
	sawRepair := false
	for trial := 0; trial < 10; trial++ {
		rel, changed := revalidateInstance(t, rng, 2+rng.Intn(3))
		out, dropped, tightened := RevalidateRows(engine.Compile(rel), sigma, changed, 1)
		if dropped+tightened > 0 {
			sawRepair = true
		}
		if len(out)+dropped != len(sigma) {
			t.Fatalf("trial %d: %d kept + %d dropped != %d in", trial, len(out), dropped, len(sigma))
		}
		for _, dep := range out {
			if !dep.HoldsOn(rel) {
				t.Errorf("trial %d: revalidated dependency violated on the new instance: %s",
					trial, dep.Format(rel.Schema()))
			}
		}
		for i, dep := range sigma {
			if !dep.Equal(orig[i]) {
				t.Fatalf("trial %d: RevalidateRows mutated the caller's Σ", trial)
			}
		}
	}
	if !sawRepair {
		t.Error("no trial needed a repair; the mutations are not exercising the cut")
	}
}

// TestRevalidateRowsWorkerDeterminism: the repaired set is identical
// for every worker count — the parallel path only materializes
// patterns, repairs stay in (row, pair) order.
func TestRevalidateRowsWorkerDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := table2(t)
	sigma, err := Discover(base, Config{MaxThreshold: 9})
	if err != nil {
		t.Fatal(err)
	}
	rel, changed := revalidateInstance(t, rng, 12) // enough rows for the chunked path
	v := engine.Compile(rel)
	wantOut, wantD, wantT := RevalidateRows(v, sigma, changed, 1)
	for _, workers := range []int{0, 2, 3, 8} {
		out, d, tt := RevalidateRows(v, sigma, changed, workers)
		if d != wantD || tt != wantT {
			t.Fatalf("workers=%d: counts (%d,%d) != serial (%d,%d)", workers, d, tt, wantD, wantT)
		}
		if len(out) != len(wantOut) {
			t.Fatalf("workers=%d: %d deps != serial %d", workers, len(out), len(wantOut))
		}
		for i := range out {
			if !out[i].Equal(wantOut[i]) {
				t.Fatalf("workers=%d: dep %d diverged: %s vs %s", workers, i,
					out[i].Format(rel.Schema()), wantOut[i].Format(rel.Schema()))
			}
		}
	}
}

// TestRevalidateRowsMatchesMaintainer: for a pure append, revalidating
// the new row must agree with the Maintainer's incremental repair —
// same kept set, same drop/tighten counts — since both sweep the same
// pairs in the same order through the same greedy cut.
func TestRevalidateRowsMatchesMaintainer(t *testing.T) {
	base := table2(t)
	sigma, err := Discover(base, Config{MaxThreshold: 9})
	if err != nil {
		t.Fatal(err)
	}
	arrival := dataset.Tuple{
		dataset.NewString("Granita"), dataset.NewString("Hollywood"),
		dataset.NewString("310/456-0488"), dataset.NewString("French"),
		dataset.NewInt(3),
	}
	mt := NewMaintainer(base, sigma)
	wantD, wantT, err := mt.Append(arrival)
	if err != nil {
		t.Fatal(err)
	}

	grown := base.Clone()
	grown.MustAppend(arrival.Clone())
	out, d, tt := RevalidateRows(engine.Compile(grown), sigma, []int{grown.Len() - 1}, 1)
	if d != wantD || tt != wantT {
		t.Fatalf("counts (%d,%d) != maintainer (%d,%d)", d, tt, wantD, wantT)
	}
	want := mt.Sigma()
	if len(out) != len(want) {
		t.Fatalf("%d deps != maintainer %d", len(out), len(want))
	}
	for i := range out {
		if !out[i].Equal(want[i]) {
			t.Fatalf("dep %d diverged: %s vs %s", i,
				out[i].Format(base.Schema()), want[i].Format(base.Schema()))
		}
	}
}

// TestRevalidateRowsEdgeCases: no changed rows or an empty Σ short-
// circuit to a plain deep copy; duplicate row handles collapse.
func TestRevalidateRowsEdgeCases(t *testing.T) {
	base := table2(t)
	sigma, err := Discover(base, Config{MaxThreshold: 9})
	if err != nil {
		t.Fatal(err)
	}
	v := engine.Compile(base)

	out, d, tt := RevalidateRows(v, sigma, nil, 1)
	if d != 0 || tt != 0 || len(out) != len(sigma) {
		t.Fatalf("no-rows call repaired: kept %d, dropped %d, tightened %d", len(out), d, tt)
	}
	out[0] = rfd.MustNew(append([]rfd.Constraint(nil), sigma[1].LHS...), sigma[1].RHS)
	if out[0].Equal(sigma[0]) && len(sigma) > 1 {
		t.Fatal("returned set aliases the caller's Σ")
	}

	if out, d, tt := RevalidateRows(v, rfd.Set{}, []int{0}, 1); len(out) != 0 || d != 0 || tt != 0 {
		t.Fatal("empty Σ produced repairs")
	}

	dupOut, dupD, dupT := RevalidateRows(v, sigma, []int{2, 2, 2, 5, 5}, 1)
	oneOut, oneD, oneT := RevalidateRows(v, sigma, []int{2, 5}, 1)
	if dupD != oneD || dupT != oneT || len(dupOut) != len(oneOut) {
		t.Fatalf("duplicate handles changed the outcome: (%d,%d,%d) vs (%d,%d,%d)",
			len(dupOut), dupD, dupT, len(oneOut), oneD, oneT)
	}
}
