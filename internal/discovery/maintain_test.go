package discovery

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/rfd"
)

func TestMaintainerKeepsValidSetUnchanged(t *testing.T) {
	rel, err := dataset.ReadCSVString("A,B\nx,1\ny,2\n")
	if err != nil {
		t.Fatal(err)
	}
	sigma := rfd.Set{rfd.MustParse("A(<=0) -> B(<=0)", rel.Schema())}
	mt := NewMaintainer(rel, sigma)
	// A consistent arrival: x/1 again.
	d, tt, err := mt.Append(dataset.Tuple{dataset.NewString("x"), dataset.NewInt(1)})
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 || tt != 0 {
		t.Errorf("dropped %d, tightened %d; want 0,0", d, tt)
	}
	if len(mt.Sigma()) != 1 || !mt.Sigma()[0].Equal(sigma[0]) {
		t.Errorf("set changed: %v", mt.Sigma())
	}
}

func TestMaintainerTightensOnViolation(t *testing.T) {
	// The base pair "ax"/"qqqq" is outside the A(<=2) premise, so the
	// dependency holds vacuously on the base.
	rel, err := dataset.ReadCSVString("A,B\nax,1\nqqqq,9\n")
	if err != nil {
		t.Fatal(err)
	}
	sigma := rfd.Set{rfd.MustParse("A(<=2) -> B(<=0)", rel.Schema())}
	if !sigma[0].HoldsOn(rel) {
		t.Fatal("precondition: φ holds on base")
	}
	mt := NewMaintainer(rel, sigma)
	// Arrival "ay"/5: distance("ax","ay") = 1 <= 2 but B differs by 4 ->
	// violation -> tighten A's threshold below 1, i.e. to 0.
	d, tt, err := mt.Append(dataset.Tuple{dataset.NewString("ay"), dataset.NewInt(5)})
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 || tt != 1 {
		t.Fatalf("dropped %d, tightened %d; want 0,1", d, tt)
	}
	got := mt.Sigma()[0]
	if got.LHS[0].Threshold != 0 {
		t.Errorf("tightened threshold = %v, want 0", got.LHS[0].Threshold)
	}
	if !got.HoldsOn(mt.Relation()) {
		t.Error("repaired dependency does not hold")
	}
}

func TestMaintainerDropsUnrepairable(t *testing.T) {
	rel, err := dataset.ReadCSVString("A,B\nx,1\n")
	if err != nil {
		t.Fatal(err)
	}
	sigma := rfd.Set{rfd.MustParse("A(<=0) -> B(<=0)", rel.Schema())}
	mt := NewMaintainer(rel, sigma)
	// Arrival x/9: identical on the whole LHS yet violating -> no
	// threshold can exclude the pair -> dropped.
	d, _, err := mt.Append(dataset.Tuple{dataset.NewString("x"), dataset.NewInt(9)})
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 || len(mt.Sigma()) != 0 {
		t.Errorf("dropped %d, remaining %d; want 1, 0", d, len(mt.Sigma()))
	}
	dTot, _ := mt.Stats()
	if dTot != 1 {
		t.Errorf("Stats dropped = %d", dTot)
	}
}

// TestMaintainerInvariant: after any arrival sequence, every maintained
// dependency holds on the accumulated instance — checked against random
// streams seeded from discovery output.
func TestMaintainerInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	base := table2(t)
	sigma, err := Discover(base, Config{MaxThreshold: 9})
	if err != nil {
		t.Fatal(err)
	}
	mt := NewMaintainer(base, sigma)
	words := []string{"Granita", "Citrus", "Fenix", "C. Main", "LA", "Hollywood", "French", "Californian"}
	for arrivals := 0; arrivals < 25; arrivals++ {
		tpl := make(dataset.Tuple, base.Schema().Len())
		for a := 0; a < base.Schema().Len(); a++ {
			if base.Schema().Attr(a).Kind == dataset.KindInt {
				tpl[a] = dataset.NewInt(int64(rng.Intn(9)))
			} else {
				tpl[a] = dataset.NewString(words[rng.Intn(len(words))])
			}
		}
		if _, _, err := mt.Append(tpl); err != nil {
			t.Fatal(err)
		}
	}
	for _, dep := range mt.Sigma() {
		if !dep.HoldsOn(mt.Relation()) {
			t.Errorf("maintained dependency violated: %s", dep.Format(base.Schema()))
		}
	}
	// The maintainer must have had to do *something* on random data.
	d, tt := mt.Stats()
	if d+tt == 0 {
		t.Log("note: no repairs were needed (unusual but possible)")
	}
}

func TestMaintainerDoesNotMutateInputs(t *testing.T) {
	rel, err := dataset.ReadCSVString("A,B\nax,1\nqqqq,9\n")
	if err != nil {
		t.Fatal(err)
	}
	sigma := rfd.Set{rfd.MustParse("A(<=2) -> B(<=0)", rel.Schema())}
	mt := NewMaintainer(rel, sigma)
	if _, _, err := mt.Append(dataset.Tuple{dataset.NewString("ay"), dataset.NewInt(5)}); err != nil {
		t.Fatal(err)
	}
	if sigma[0].LHS[0].Threshold != 2 {
		t.Error("caller's dependency mutated")
	}
	if rel.Len() != 2 {
		t.Error("caller's relation mutated")
	}
}

func TestMaintainerArityError(t *testing.T) {
	rel, err := dataset.ReadCSVString("A,B\nx,1\n")
	if err != nil {
		t.Fatal(err)
	}
	mt := NewMaintainer(rel, nil)
	if _, _, err := mt.Append(dataset.Tuple{dataset.NewString("x")}); err == nil {
		t.Error("wrong arity accepted")
	}
}
