package rfd

import (
	"math/rand"
	"testing"

	"repro/internal/distance"
)

// randomPattern builds a random distance pattern over m attributes with
// occasional Missing marks.
func randomPattern(rng *rand.Rand, m int) distance.Pattern {
	p := distance.NewPattern(m)
	for i := range p {
		if rng.Float64() < 0.2 {
			p[i] = distance.Missing
		} else {
			p[i] = float64(rng.Intn(10))
		}
	}
	return p
}

// loosen returns a copy of the dependency with every threshold increased
// by the given amounts (LHS by dl, RHS by dr).
func loosen(dep *RFD, dl, dr float64) *RFD {
	lhs := make([]Constraint, len(dep.LHS))
	for i, c := range dep.LHS {
		lhs[i] = Constraint{Attr: c.Attr, Threshold: c.Threshold + dl}
	}
	return MustNew(lhs, Constraint{Attr: dep.RHS.Attr, Threshold: dep.RHS.Threshold + dr})
}

func randomDep(rng *rand.Rand, m int) *RFD {
	rhs := rng.Intn(m)
	var lhs []Constraint
	for a := 0; a < m; a++ {
		if a != rhs && (len(lhs) == 0 || rng.Float64() < 0.5) {
			lhs = append(lhs, Constraint{Attr: a, Threshold: float64(rng.Intn(6))})
		}
	}
	return MustNew(lhs, Constraint{Attr: rhs, Threshold: float64(rng.Intn(6))})
}

// TestPropertyLHSSatisfactionMonotone: loosening LHS thresholds never
// un-satisfies a pattern.
func TestPropertyLHSSatisfactionMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const m = 4
	for trial := 0; trial < 500; trial++ {
		dep := randomDep(rng, m)
		p := randomPattern(rng, m)
		if dep.LHSSatisfiedBy(p) && !loosen(dep, float64(rng.Intn(5)), 0).LHSSatisfiedBy(p) {
			t.Fatalf("trial %d: loosened LHS lost satisfaction", trial)
		}
	}
}

// TestPropertyViolationAntitoneInRHS: loosening the RHS threshold never
// creates a violation.
func TestPropertyViolationAntitoneInRHS(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const m = 4
	for trial := 0; trial < 500; trial++ {
		dep := randomDep(rng, m)
		p := randomPattern(rng, m)
		if !dep.ViolatedBy(p) && loosen(dep, 0, float64(rng.Intn(5))).ViolatedBy(p) {
			t.Fatalf("trial %d: loosened RHS created a violation", trial)
		}
	}
}

// TestPropertyMissingNeverWitnesses: a pattern with Missing on the RHS
// attribute can never violate, whatever the thresholds.
func TestPropertyMissingNeverWitnesses(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const m = 4
	for trial := 0; trial < 500; trial++ {
		dep := randomDep(rng, m)
		p := randomPattern(rng, m)
		p[dep.RHS.Attr] = distance.Missing
		if dep.ViolatedBy(p) {
			t.Fatalf("trial %d: missing RHS witnessed a violation", trial)
		}
	}
}

// TestPropertyKeyAntitoneInLHSThresholds: tightening LHS thresholds can
// only turn a non-key dependency into a key, never the reverse.
func TestPropertyKeyAntitoneInLHSThresholds(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	rel := table2(t)
	m := rel.Schema().Len()
	for trial := 0; trial < 200; trial++ {
		dep := randomDep(rng, m)
		looser := loosen(dep, 1+float64(rng.Intn(4)), 0)
		if !dep.IsKey(rel) && looser.IsKey(rel) {
			t.Fatalf("trial %d: loosening LHS made %s key", trial, looser.Format(rel.Schema()))
		}
	}
}

// TestPropertyHoldsMonotoneInRHSThreshold: if φ holds at RHS threshold
// β, it holds at any larger β.
func TestPropertyHoldsMonotoneInRHSThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	rel := table2(t)
	m := rel.Schema().Len()
	for trial := 0; trial < 200; trial++ {
		dep := randomDep(rng, m)
		if dep.HoldsOn(rel) && !loosen(dep, 0, 1+float64(rng.Intn(4))).HoldsOn(rel) {
			t.Fatalf("trial %d: loosened RHS broke HoldsOn for %s", trial, dep.Format(rel.Schema()))
		}
	}
}

// TestPropertyKeyImpliesHolds: a key dependency holds vacuously.
func TestPropertyKeyImpliesHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rel := table2(t)
	m := rel.Schema().Len()
	for trial := 0; trial < 200; trial++ {
		dep := randomDep(rng, m)
		if dep.IsKey(rel) && !dep.HoldsOn(rel) {
			t.Fatalf("trial %d: key dependency %s does not hold", trial, dep.Format(rel.Schema()))
		}
	}
}

// TestPropertyFormatParseIdentity: Format∘Parse is the identity on
// random dependencies.
func TestPropertyFormatParseIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	rel := table2(t)
	m := rel.Schema().Len()
	for trial := 0; trial < 300; trial++ {
		dep := randomDep(rng, m)
		back, err := Parse(dep.Format(rel.Schema()), rel.Schema())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !back.Equal(dep) {
			t.Fatalf("trial %d: round trip changed %s", trial, dep.Format(rel.Schema()))
		}
	}
}

// TestPropertyClusteringPartitions: clustering is a partition — every
// dependency lands in exactly one cluster, clusters are
// threshold-sorted, and members match their cluster's threshold.
func TestPropertyClusteringPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	rel := table2(t)
	m := rel.Schema().Len()
	for trial := 0; trial < 100; trial++ {
		var set Set
		rhs := rng.Intn(m)
		for k := 0; k < 1+rng.Intn(8); k++ {
			lhsAttr := (rhs + 1 + rng.Intn(m-1)) % m
			set = append(set, MustNew(
				[]Constraint{{Attr: lhsAttr, Threshold: float64(rng.Intn(4))}},
				Constraint{Attr: rhs, Threshold: float64(rng.Intn(4))},
			))
		}
		clusters := ClusterByRHSThreshold(set)
		total := 0
		for i, c := range clusters {
			if i > 0 && clusters[i-1].Threshold >= c.Threshold {
				t.Fatalf("trial %d: clusters not strictly ascending", trial)
			}
			for _, dep := range c.RFDs {
				if dep.RHSThreshold() != c.Threshold {
					t.Fatalf("trial %d: member threshold %v in cluster %v",
						trial, dep.RHSThreshold(), c.Threshold)
				}
			}
			total += len(c.RFDs)
		}
		if total != len(set) {
			t.Fatalf("trial %d: clustering lost members: %d of %d", trial, total, len(set))
		}
	}
}

// TestPropertyValuePairSymmetry: LHS pair satisfaction is symmetric in
// the two tuples.
func TestPropertyValuePairSymmetry(t *testing.T) {
	rel := table2(t)
	rng := rand.New(rand.NewSource(14))
	m := rel.Schema().Len()
	for trial := 0; trial < 300; trial++ {
		dep := randomDep(rng, m)
		i, j := rng.Intn(rel.Len()), rng.Intn(rel.Len())
		pij := distance.PatternBetween(rel.Row(i), rel.Row(j))
		pji := distance.PatternBetween(rel.Row(j), rel.Row(i))
		if dep.LHSSatisfiedBy(pij) != dep.LHSSatisfiedBy(pji) {
			t.Fatalf("trial %d: asymmetric LHS satisfaction", trial)
		}
		if dep.ViolatedBy(pij) != dep.ViolatedBy(pji) {
			t.Fatalf("trial %d: asymmetric violation", trial)
		}
	}
}
