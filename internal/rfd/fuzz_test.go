package rfd

import (
	"testing"

	"repro/internal/dataset"
)

// FuzzParse: arbitrary input never panics; accepted inputs round-trip
// through Format.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"Name(<=4) -> Phone(<=1)",
		"Name(<=8), Phone(<=0), Class(<=1) -> Type(<=0)",
		"City(2) -> Phone(0.5)",
		"",
		"->",
		"Name -> Phone",
		"Name(<=x) -> Phone(<=1)",
		"Name(<=1) -> Name(<=1)",
		"Name((<=1)) -> Phone(<=1)",
		"Name(<=-3) -> Phone(<=1)",
		"Name(<=1e300), City(<=0) -> Phone(<=0)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	schema := dataset.NewSchema(
		dataset.Attribute{Name: "Name", Kind: dataset.KindString},
		dataset.Attribute{Name: "City", Kind: dataset.KindString},
		dataset.Attribute{Name: "Phone", Kind: dataset.KindString},
		dataset.Attribute{Name: "Type", Kind: dataset.KindString},
		dataset.Attribute{Name: "Class", Kind: dataset.KindInt},
	)
	f.Fuzz(func(t *testing.T, input string) {
		dep, err := Parse(input, schema)
		if err != nil {
			return
		}
		text := dep.Format(schema)
		back, err := Parse(text, schema)
		if err != nil {
			t.Fatalf("Format output %q does not re-parse: %v", text, err)
		}
		if !back.Equal(dep) {
			t.Fatalf("round trip changed %q -> %q", input, text)
		}
	})
}
