package rfd

import (
	"math/rand"
	"testing"
)

func TestImpliesBasics(t *testing.T) {
	rel := table2(t)
	s := rel.Schema()
	general := MustParse("Name(<=5) -> Phone(<=1)", s)
	tighterRHS := MustParse("Name(<=5) -> Phone(<=3)", s)
	narrowerLHS := MustParse("Name(<=3) -> Phone(<=1)", s)
	wider := MustParse("Name(<=5), City(<=2) -> Phone(<=1)", s)
	otherRHS := MustParse("Name(<=5) -> City(<=1)", s)
	if !Implies(general, tighterRHS) {
		t.Error("looser RHS should be implied")
	}
	if !Implies(general, narrowerLHS) {
		t.Error("tighter LHS threshold should be implied")
	}
	if !Implies(general, wider) {
		t.Error("superset LHS should be implied")
	}
	if Implies(tighterRHS, general) || Implies(wider, general) {
		t.Error("implication direction reversed")
	}
	if Implies(general, otherRHS) || Implies(otherRHS, general) {
		t.Error("different RHS attributes cannot imply")
	}
	if !Implies(general, general) {
		t.Error("implication must be reflexive")
	}
}

// TestImpliesIsSemanticallySound: whenever Implies(phi, psi), any
// instance where phi holds must also satisfy psi. Checked on random
// dependency pairs against the Table 2 sample.
func TestImpliesIsSemanticallySound(t *testing.T) {
	rel := table2(t)
	rng := rand.New(rand.NewSource(31))
	m := rel.Schema().Len()
	checked := 0
	for trial := 0; trial < 2000 && checked < 200; trial++ {
		phi, psi := randomDep(rng, m), randomDep(rng, m)
		if !Implies(phi, psi) {
			continue
		}
		checked++
		if phi.HoldsOn(rel) && !psi.HoldsOn(rel) {
			t.Fatalf("Implies(%s, %s) but the consequence is violated",
				phi.Format(rel.Schema()), psi.Format(rel.Schema()))
		}
	}
	if checked == 0 {
		t.Skip("no implying pairs sampled")
	}
}

func TestMinimizeDropsImplied(t *testing.T) {
	rel := table2(t)
	s := rel.Schema()
	general := MustParse("Name(<=5) -> Phone(<=1)", s)
	implied := MustParse("Name(<=3) -> Phone(<=2)", s)
	unrelated := MustParse("City(<=2) -> Phone(<=1)", s)
	out := Minimize(Set{implied, general, unrelated})
	if len(out) != 2 {
		t.Fatalf("minimized to %d, want 2", len(out))
	}
	if !out.Contains(general) || !out.Contains(unrelated) {
		t.Errorf("survivors wrong: %v", out)
	}
}

func TestMinimizeKeepsFirstOfEquivalents(t *testing.T) {
	rel := table2(t)
	s := rel.Schema()
	a := MustParse("Name(<=5) -> Phone(<=1)", s)
	b := MustParse("Name(<=5) -> Phone(<=1)", s)
	out := Minimize(Set{a, b})
	if len(out) != 1 || out[0] != a {
		t.Errorf("equivalents not deduped to the first: %v", out)
	}
}

// TestMinimizeIrredundant: no survivor implies another survivor
// (strictly), for random sets.
func TestMinimizeIrredundant(t *testing.T) {
	rel := table2(t)
	rng := rand.New(rand.NewSource(32))
	m := rel.Schema().Len()
	for trial := 0; trial < 100; trial++ {
		var set Set
		for k := 0; k < 2+rng.Intn(10); k++ {
			set = append(set, randomDep(rng, m))
		}
		out := Minimize(set)
		for i, a := range out {
			for j, b := range out {
				if i != j && Implies(a, b) && !Implies(b, a) {
					t.Fatalf("trial %d: survivor %s strictly implies survivor %s",
						trial, a.Format(rel.Schema()), b.Format(rel.Schema()))
				}
			}
		}
		// Everything dropped is implied by some survivor.
		for _, dep := range set {
			covered := false
			for _, s := range out {
				if Implies(s, dep) {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("trial %d: dropped member %s not covered", trial, dep.Format(rel.Schema()))
			}
		}
	}
}
