package rfd

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestSetWriteReadRoundTrip(t *testing.T) {
	rel := table2(t)
	sigma := figure1RFDs(t, rel.Schema())
	var buf bytes.Buffer
	if err := WriteSet(&buf, sigma, rel.Schema()); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSet(&buf, rel.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(sigma) {
		t.Fatalf("round trip %d -> %d RFDs", len(sigma), len(back))
	}
	for i := range sigma {
		if !back[i].Equal(sigma[i]) {
			t.Errorf("RFD %d changed", i)
		}
	}
}

func TestSetFileRoundTrip(t *testing.T) {
	rel := table2(t)
	sigma := figure1RFDs(t, rel.Schema())
	path := filepath.Join(t.TempDir(), "sigma.rfd")
	if err := WriteSetFile(path, sigma, rel.Schema()); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSetFile(path, rel.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(sigma) {
		t.Errorf("file round trip %d -> %d", len(sigma), len(back))
	}
}

func TestReadSetSkipsCommentsAndBlanks(t *testing.T) {
	rel := table2(t)
	doc := "# header\n\nName(<=4) -> Phone(<=1)\n  \n# tail\n"
	set, err := ReadSet(strings.NewReader(doc), rel.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 1 {
		t.Fatalf("read %d RFDs, want 1", len(set))
	}
}

func TestReadSetReportsLineNumber(t *testing.T) {
	rel := table2(t)
	doc := "Name(<=4) -> Phone(<=1)\nBOGUS LINE\n"
	_, err := ReadSet(strings.NewReader(doc), rel.Schema())
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("err = %v, want line 2 mention", err)
	}
}

func TestReadSetFileMissing(t *testing.T) {
	rel := table2(t)
	if _, err := ReadSetFile(filepath.Join(t.TempDir(), "nope"), rel.Schema()); err == nil {
		t.Error("want error for missing file")
	}
}
