package rfd

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/dataset"
)

// Set is a collection Σ of RFDcs.
type Set []*RFD

// NonKeys returns Σ' — the dependencies that are not key-RFDcs on the
// instance (Algorithm 1, line 1). Order is preserved.
func (s Set) NonKeys(rel *dataset.Relation) Set {
	out := make(Set, 0, len(s))
	for _, r := range s {
		if !r.IsKey(rel) {
			out = append(out, r)
		}
	}
	return out
}

// ForRHS returns Σ'_A — the dependencies whose RHS is the given attribute
// (Algorithm 1, line 8). Order is preserved.
func (s Set) ForRHS(attr int) Set {
	var out Set
	for _, r := range s {
		if r.RHS.Attr == attr {
			out = append(out, r)
		}
	}
	return out
}

// HoldsOn reports whether every dependency in the set holds on the
// instance (r ⊨ Σ, Definition 4.3).
func (s Set) HoldsOn(rel *dataset.Relation) bool {
	for _, r := range s {
		if !r.HoldsOn(rel) {
			return false
		}
	}
	return true
}

// Contains reports whether the set holds a structurally equal dependency.
func (s Set) Contains(r *RFD) bool {
	for _, o := range s {
		if o.Equal(r) {
			return true
		}
	}
	return false
}

// Cluster is ρ_A^i: the RFDcs for one RHS attribute sharing the RHS
// threshold i (Sec. 5.2).
type Cluster struct {
	Threshold float64
	RFDs      Set
}

// ClusterByRHSThreshold partitions the set (assumed to share one RHS
// attribute) into Λ_Σ'_A — clusters keyed by RHS threshold, returned in
// ascending threshold order. The prose of step (b) and the worked example
// of Figure 1 consider clusters "from lowest to highest threshold values";
// callers wanting the opposite order (Algorithm 2's literal line 1) can
// reverse the slice.
func ClusterByRHSThreshold(s Set) []Cluster {
	byTh := make(map[float64]Set)
	for _, r := range s {
		byTh[r.RHS.Threshold] = append(byTh[r.RHS.Threshold], r)
	}
	out := make([]Cluster, 0, len(byTh))
	for th, rs := range byTh {
		out = append(out, Cluster{Threshold: th, RFDs: rs})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Threshold < out[j].Threshold })
	return out
}

// WriteSet writes the set one dependency per line in Format form, with a
// leading comment noting the count. The output loads back with ReadSet.
func WriteSet(w io.Writer, s Set, schema *dataset.Schema) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %d RFDcs\n", len(s))
	for _, r := range s {
		if _, err := fmt.Fprintln(bw, r.Format(schema)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSet reads a set written by WriteSet: one dependency per line,
// blank lines and lines starting with '#' ignored.
func ReadSet(r io.Reader, schema *dataset.Schema) (Set, error) {
	var out Set
	sc := bufio.NewScanner(r)
	lineNum := 0
	for sc.Scan() {
		lineNum++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		dep, err := Parse(line, schema)
		if err != nil {
			return nil, fmt.Errorf("rfd: line %d: %w", lineNum, err)
		}
		out = append(out, dep)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadSetFile is ReadSet over a file path.
func ReadSetFile(path string, schema *dataset.Schema) (Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSet(f, schema)
}

// WriteSetFile is WriteSet to a file path.
func WriteSetFile(path string, s Set, schema *dataset.Schema) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteSet(f, s, schema); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
