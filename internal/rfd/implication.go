package rfd

// Implies reports whether phi holding on an instance guarantees psi
// holds on it, by structural comparison:
//
//   - same RHS attribute;
//   - phi's RHS threshold at most psi's (phi promises a tighter bound);
//   - phi's LHS attributes a subset of psi's, each with a threshold at
//     least psi's on the shared attribute (phi's premise is easier to
//     satisfy, so every pair psi's premise admits is already covered).
//
// This is the dependency-implication fragment RENUVER's tooling needs:
// discovery prunes dominated candidates with it and Minimize computes
// irredundant covers.
func Implies(phi, psi *RFD) bool {
	if phi.RHS.Attr != psi.RHS.Attr || phi.RHS.Threshold > psi.RHS.Threshold {
		return false
	}
	for _, cp := range phi.LHS {
		found := false
		for _, cq := range psi.LHS {
			if cq.Attr == cp.Attr {
				found = true
				if cp.Threshold < cq.Threshold {
					return false
				}
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Minimize returns an irredundant subset of the set: every dependency
// structurally implied by another member is dropped, and among mutually
// implying (equivalent) members the first is kept. The relative order of
// the survivors is preserved, and the implied-by relation over the
// survivors is empty.
func Minimize(set Set) Set {
	var out Set
	for i, psi := range set {
		dropped := false
		for j, phi := range set {
			if i == j {
				continue
			}
			if Implies(phi, psi) && !Implies(psi, phi) {
				dropped = true
				break
			}
		}
		if dropped {
			continue
		}
		dup := false
		for _, prev := range out {
			if Implies(prev, psi) && Implies(psi, prev) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, psi)
		}
	}
	return out
}
