// Package rfd models relaxed functional dependencies with distance
// constraints (RFDc, Definition 3.2 of the paper): statements
//
//	X_Φ1 → A_φ2
//
// where every attribute in the LHS set X carries a distance threshold and
// the single RHS attribute A carries one too. A pair of tuples that is
// within every LHS threshold must be within the RHS threshold.
//
// The package provides the dependency type, a textual codec, satisfaction
// and violation checks against relation instances, key-RFDc detection
// (Definition 3.4), and the Σ'_A / Λ clustering machinery of the RFDc
// selection step (Sec. 5.2).
package rfd

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/dataset"
	"repro/internal/distance"
)

// Constraint is one φ[B]: a distance threshold on a single attribute with
// the ≤ operator (the paper fixes the operator to ≤ for RFDc, Sec. 3).
type Constraint struct {
	Attr      int     // attribute position in the schema
	Threshold float64 // inclusive upper bound on the distance
}

// RFD is one RFDc with a conjunctive LHS and a single-attribute RHS.
// LHS constraints are kept sorted by attribute position; attributes are
// unique and never equal to the RHS attribute.
type RFD struct {
	LHS []Constraint
	RHS Constraint
}

// New builds an RFD, normalizing (sorting, copying) the LHS. It returns
// an error on an empty LHS, a duplicate LHS attribute, an RHS attribute
// repeated in the LHS, or a negative threshold.
func New(lhs []Constraint, rhs Constraint) (*RFD, error) {
	if len(lhs) == 0 {
		return nil, fmt.Errorf("rfd: empty LHS")
	}
	cp := append([]Constraint(nil), lhs...)
	sort.Slice(cp, func(i, j int) bool { return cp[i].Attr < cp[j].Attr })
	for i, c := range cp {
		if c.Threshold < 0 {
			return nil, fmt.Errorf("rfd: negative LHS threshold %v on attr %d", c.Threshold, c.Attr)
		}
		if i > 0 && cp[i-1].Attr == c.Attr {
			return nil, fmt.Errorf("rfd: duplicate LHS attribute %d", c.Attr)
		}
		if c.Attr == rhs.Attr {
			return nil, fmt.Errorf("rfd: attribute %d on both sides", c.Attr)
		}
	}
	if rhs.Threshold < 0 {
		return nil, fmt.Errorf("rfd: negative RHS threshold %v", rhs.Threshold)
	}
	return &RFD{LHS: cp, RHS: rhs}, nil
}

// MustNew is New that panics on error; for literals in tests and examples.
func MustNew(lhs []Constraint, rhs Constraint) *RFD {
	r, err := New(lhs, rhs)
	if err != nil {
		panic(err)
	}
	return r
}

// LHSAttrs returns the LHS attribute positions in ascending order.
// The returned slice aliases the RFD's storage and must not be mutated.
func (r *RFD) LHSAttrs() []int {
	attrs := make([]int, len(r.LHS))
	for i, c := range r.LHS {
		attrs[i] = c.Attr
	}
	return attrs
}

// HasLHSAttr reports whether the attribute appears on the LHS.
func (r *RFD) HasLHSAttr(attr int) bool {
	for _, c := range r.LHS {
		if c.Attr == attr {
			return true
		}
	}
	return false
}

// RHSThreshold returns the RHS distance threshold, RHS_th(φ) in the paper.
func (r *RFD) RHSThreshold() float64 { return r.RHS.Threshold }

// LHSSatisfiedBy reports whether a distance pattern satisfies every LHS
// constraint: each component present (not "_") and within its threshold.
func (r *RFD) LHSSatisfiedBy(p distance.Pattern) bool {
	for _, c := range r.LHS {
		if !p.Satisfies(c.Attr, c.Threshold) {
			return false
		}
	}
	return true
}

// RHSSatisfiedBy reports whether the pattern satisfies the RHS constraint.
func (r *RFD) RHSSatisfiedBy(p distance.Pattern) bool {
	return p.Satisfies(r.RHS.Attr, r.RHS.Threshold)
}

// ViolatedBy reports whether the tuple pair behind the pattern witnesses
// a violation: LHS satisfied and the RHS distance present but above the
// threshold. A missing RHS component ("_") is not a witness — an
// unjudgeable pair neither satisfies nor violates, otherwise every
// incomplete instance would trivially violate its own RFDcs and
// IS_FAULTLESS could never accept an imputation.
func (r *RFD) ViolatedBy(p distance.Pattern) bool {
	if !r.LHSSatisfiedBy(p) {
		return false
	}
	d := p[r.RHS.Attr]
	return !distance.IsMissing(d) && d > r.RHS.Threshold
}

// lhsPairSatisfied checks the LHS directly on two tuples, short-circuiting
// per attribute without materializing a full pattern.
func (r *RFD) lhsPairSatisfied(a, b dataset.Tuple) bool {
	for _, c := range r.LHS {
		if !distance.ValuesWithin(a[c.Attr], b[c.Attr], c.Threshold) {
			return false
		}
	}
	return true
}

// HoldsOn reports whether the dependency holds on the instance: no pair
// of distinct tuples witnesses a violation. Pairs with a missing value on
// an LHS attribute never satisfy that constraint, and pairs with a missing
// RHS value cannot witness a violation (see ViolatedBy).
func (r *RFD) HoldsOn(rel *dataset.Relation) bool {
	n := rel.Len()
	for i := 0; i < n; i++ {
		ti := rel.Row(i)
		for j := i + 1; j < n; j++ {
			tj := rel.Row(j)
			if !r.lhsPairSatisfied(ti, tj) {
				continue
			}
			d := distance.Values(ti[r.RHS.Attr], tj[r.RHS.Attr])
			if !distance.IsMissing(d) && d > r.RHS.Threshold {
				return false
			}
		}
	}
	return true
}

// IsKey reports whether the dependency is a key-RFDc on the instance
// (Definition 3.4): it holds vacuously because no pair of distinct tuples
// satisfies all LHS constraints. Key-RFDcs cannot produce candidates and
// are filtered out in pre-processing (Sec. 5.1).
func (r *RFD) IsKey(rel *dataset.Relation) bool {
	n := rel.Len()
	for i := 0; i < n; i++ {
		ti := rel.Row(i)
		for j := i + 1; j < n; j++ {
			if r.lhsPairSatisfied(ti, rel.Row(j)) {
				return false
			}
		}
	}
	return true
}

// Equal reports structural equality of two dependencies.
func (r *RFD) Equal(o *RFD) bool {
	if r.RHS != o.RHS || len(r.LHS) != len(o.LHS) {
		return false
	}
	for i := range r.LHS {
		if r.LHS[i] != o.LHS[i] {
			return false
		}
	}
	return true
}

// Format renders the dependency with attribute names from the schema,
// e.g. "Name(<=6.0), City(<=9.0) -> Phone(<=0.0)". The output parses back
// with Parse.
func (r *RFD) Format(schema *dataset.Schema) string {
	var sb strings.Builder
	for i, c := range r.LHS {
		if i > 0 {
			sb.WriteString(", ")
		}
		writeConstraint(&sb, schema, c)
	}
	sb.WriteString(" -> ")
	writeConstraint(&sb, schema, r.RHS)
	return sb.String()
}

func writeConstraint(sb *strings.Builder, schema *dataset.Schema, c Constraint) {
	sb.WriteString(schema.Attr(c.Attr).Name)
	sb.WriteString("(<=")
	sb.WriteString(strconv.FormatFloat(c.Threshold, 'g', -1, 64))
	sb.WriteString(")")
}

// Parse reads a dependency in the Format textual form. Thresholds accept
// an optional "<=" prefix; attribute names are resolved in the schema.
func Parse(s string, schema *dataset.Schema) (*RFD, error) {
	sides := strings.Split(s, "->")
	if len(sides) != 2 {
		return nil, fmt.Errorf("rfd: %q: want exactly one \"->\"", s)
	}
	lhsParts := strings.Split(sides[0], ",")
	lhs := make([]Constraint, 0, len(lhsParts))
	for _, part := range lhsParts {
		c, err := parseConstraint(part, schema)
		if err != nil {
			return nil, err
		}
		lhs = append(lhs, c)
	}
	rhs, err := parseConstraint(sides[1], schema)
	if err != nil {
		return nil, err
	}
	return New(lhs, rhs)
}

// MustParse is Parse that panics on error.
func MustParse(s string, schema *dataset.Schema) *RFD {
	r, err := Parse(s, schema)
	if err != nil {
		panic(err)
	}
	return r
}

func parseConstraint(s string, schema *dataset.Schema) (Constraint, error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return Constraint{}, fmt.Errorf("rfd: constraint %q: want Name(<=threshold)", s)
	}
	name := strings.TrimSpace(s[:open])
	attr, ok := schema.Index(name)
	if !ok {
		return Constraint{}, fmt.Errorf("rfd: unknown attribute %q", name)
	}
	body := strings.TrimSpace(s[open+1 : len(s)-1])
	body = strings.TrimSpace(strings.TrimPrefix(body, "<="))
	th, err := strconv.ParseFloat(body, 64)
	if err != nil {
		return Constraint{}, fmt.Errorf("rfd: constraint %q: bad threshold: %w", s, err)
	}
	return Constraint{Attr: attr, Threshold: th}, nil
}
