package rfd

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/distance"
)

// table2 builds the paper's Table 2 sample instance.
func table2(t testing.TB) *dataset.Relation {
	t.Helper()
	rel, err := dataset.ReadCSVString(`Name,City,Phone,Type,Class
Granita,Malibu,310/456-0488,Californian,6
Chinois Main,LA,310-392-9025,French,5
Citrus,Los Angeles,213/857-0034,Californian,6
Citrus,Los Angeles,,Californian,6
Fenix,Hollywood,213/848-6677,,5
Fenix Argyle,,213/848-6677,French (new),5
C. Main,Los Angeles,,French,5
`)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

// figure1RFDs returns φ1..φ7 from Figure 1 of the paper, parsed against
// the Table 2 schema.
func figure1RFDs(t testing.TB, schema *dataset.Schema) Set {
	t.Helper()
	specs := []string{
		"Name(<=8), Phone(<=0), Class(<=1) -> Type(<=0)", // φ1
		"Class(<=0) -> Type(<=5)",                        // φ2
		"City(<=2) -> Phone(<=2)",                        // φ3
		"Name(<=4) -> Phone(<=1)",                        // φ4
		"Name(<=8), Phone(<=0) -> City(<=9)",             // φ5
		"Name(<=6), City(<=9) -> Phone(<=0)",             // φ6
		"Phone(<=1) -> Class(<=0)",                       // φ7
	}
	var out Set
	for _, s := range specs {
		out = append(out, MustParse(s, schema))
	}
	return out
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		lhs  []Constraint
		rhs  Constraint
	}{
		{"empty LHS", nil, Constraint{Attr: 0}},
		{"dup LHS attr", []Constraint{{Attr: 1}, {Attr: 1}}, Constraint{Attr: 0}},
		{"attr both sides", []Constraint{{Attr: 0}}, Constraint{Attr: 0}},
		{"negative LHS threshold", []Constraint{{Attr: 1, Threshold: -1}}, Constraint{Attr: 0}},
		{"negative RHS threshold", []Constraint{{Attr: 1}}, Constraint{Attr: 0, Threshold: -2}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := New(c.lhs, c.rhs); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestNewNormalizesLHSOrder(t *testing.T) {
	r := MustNew([]Constraint{{Attr: 3, Threshold: 1}, {Attr: 1, Threshold: 2}}, Constraint{Attr: 0})
	if got := r.LHSAttrs(); got[0] != 1 || got[1] != 3 {
		t.Errorf("LHSAttrs = %v, want sorted", got)
	}
	if !r.HasLHSAttr(3) || r.HasLHSAttr(0) {
		t.Error("HasLHSAttr wrong")
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	rel := table2(t)
	for _, r := range figure1RFDs(t, rel.Schema()) {
		text := r.Format(rel.Schema())
		back, err := Parse(text, rel.Schema())
		if err != nil {
			t.Fatalf("Parse(%q): %v", text, err)
		}
		if !back.Equal(r) {
			t.Errorf("round trip changed %q", text)
		}
	}
}

func TestParseErrors(t *testing.T) {
	rel := table2(t)
	bad := []string{
		"",
		"Name(<=1)",                        // no arrow
		"Name(<=1) -> City(<=1) -> X(<=1)", // two arrows
		"Bogus(<=1) -> City(<=1)",          // unknown attribute
		"Name -> City(<=1)",                // missing parens
		"Name(<=x) -> City(<=1)",           // bad threshold
		"Name(<=1) -> Name(<=1)",           // same attr both sides
	}
	for _, s := range bad {
		if _, err := Parse(s, rel.Schema()); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestParseWithoutOperatorPrefix(t *testing.T) {
	rel := table2(t)
	r, err := Parse("Name(4) -> Phone(1.5)", rel.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if r.LHS[0].Threshold != 4 || r.RHS.Threshold != 1.5 {
		t.Errorf("thresholds = %v, %v", r.LHS[0].Threshold, r.RHS.Threshold)
	}
}

func TestLHSSatisfiedByPaperExample46(t *testing.T) {
	// Example 4.6: under φ: Phone(<=0) -> City(<=10), the only candidate
	// for t6[City] is t5 (equal phone numbers).
	rel := table2(t)
	phi := MustParse("Phone(<=0) -> City(<=10)", rel.Schema())
	t6 := rel.Row(5)
	var matches []int
	for i := 0; i < rel.Len(); i++ {
		if i == 5 {
			continue
		}
		p := distance.PatternBetween(t6, rel.Row(i))
		if phi.LHSSatisfiedBy(p) {
			matches = append(matches, i)
		}
	}
	if len(matches) != 1 || matches[0] != 4 {
		t.Errorf("candidates via LHS = %v, want [4] (t5)", matches)
	}
}

func TestViolationPaperExample44(t *testing.T) {
	// Example 4.4: imputing t7[Phone] with t1[Phone] violates
	// Phone(<=0) -> City(<=10) via the pair (t1, t7).
	rel := table2(t)
	phi := MustParse("Phone(<=0) -> City(<=10)", rel.Schema())
	phone := rel.Schema().MustIndex("Phone")
	rel.Set(6, phone, rel.Get(0, phone))
	p := distance.PatternBetween(rel.Row(0), rel.Row(6))
	if !phi.ViolatedBy(p) {
		t.Errorf("pattern %v should violate φ0", p)
	}
	if phi.HoldsOn(rel) {
		t.Error("φ0 should no longer hold after the bad imputation")
	}
}

func TestViolatedByMissingRHSIsNotWitness(t *testing.T) {
	rel := table2(t)
	phi := MustParse("Phone(<=0) -> City(<=10)", rel.Schema())
	// t5 and t6 share a phone; t6[City] is missing -> no violation witness.
	p := distance.PatternBetween(rel.Row(4), rel.Row(5))
	if !phi.LHSSatisfiedBy(p) {
		t.Fatal("t5,t6 should satisfy Phone(<=0)")
	}
	if phi.ViolatedBy(p) {
		t.Error("missing RHS must not witness a violation")
	}
}

func TestIsKeyDefinition(t *testing.T) {
	rel := table2(t)
	// Tightened φ1 (Name <= 6) is key: (t5,t6) has Name distance 7.
	tight := MustParse("Name(<=6), Phone(<=0), Class(<=1) -> Type(<=0)", rel.Schema())
	if !tight.IsKey(rel) {
		t.Error("tightened φ1 should be key on Table 2")
	}
	// The paper's φ1 (Name <= 8) is NOT key by Definition 3.4: the pair
	// (t5,t6) satisfies its LHS (Name distance 7, equal phones, equal
	// classes). Example 5.2's prose overlooks this pair; we assert the
	// computed truth.
	loose := MustParse("Name(<=8), Phone(<=0), Class(<=1) -> Type(<=0)", rel.Schema())
	if loose.IsKey(rel) {
		t.Error("φ1 with Name<=8 is not key: pair (t5,t6) satisfies LHS")
	}
	// φ2 is not key: (t3,t4) share Class.
	phi2 := MustParse("Class(<=0) -> Type(<=5)", rel.Schema())
	if phi2.IsKey(rel) {
		t.Error("φ2 should not be key")
	}
}

func TestKeyBecomesNonKeyAfterImputation(t *testing.T) {
	// Example 5.1: imputing t4[Phone] from t3 turns a key-RFDc into a
	// non-key one. Use the tightened variant that is actually key first.
	rel := table2(t)
	tight := MustParse("Name(<=6), Phone(<=0), Class(<=1) -> Type(<=0)", rel.Schema())
	if !tight.IsKey(rel) {
		t.Fatal("precondition: tightened φ1 key")
	}
	phone := rel.Schema().MustIndex("Phone")
	rel.Set(3, phone, rel.Get(2, phone))
	if tight.IsKey(rel) {
		t.Error("after imputing t4[Phone]=t3[Phone], (t3,t4) satisfies the LHS")
	}
}

func TestHoldsOnSkipsMissingLHS(t *testing.T) {
	rel := table2(t)
	// City(<=0) -> Phone(<=0): t3,t4 share City but t4 phone missing -> no
	// witness; t3,t7 share City, phones missing -> no witness. Pairs with
	// different cities don't trigger. t4,t7 share City, both phones
	// missing -> no witness. So it holds.
	phi := MustParse("City(<=0) -> Phone(<=0)", rel.Schema())
	if !phi.HoldsOn(rel) {
		t.Error("φ should hold: no witnessed violation")
	}
}

func TestSetNonKeysAndForRHS(t *testing.T) {
	rel := table2(t)
	sigma := figure1RFDs(t, rel.Schema())
	nonKeys := sigma.NonKeys(rel)
	// Only the tightened variant would be key; all seven here are non-key
	// by Definition 3.4 (see TestIsKeyDefinition).
	if len(nonKeys) != 7 {
		t.Errorf("NonKeys = %d RFDs, want 7", len(nonKeys))
	}
	phone := rel.Schema().MustIndex("Phone")
	phoneRFDs := sigma.ForRHS(phone)
	if len(phoneRFDs) != 3 { // φ3, φ4, φ6
		t.Errorf("ForRHS(Phone) = %d, want 3", len(phoneRFDs))
	}
}

func TestClusterByRHSThreshold(t *testing.T) {
	rel := table2(t)
	sigma := figure1RFDs(t, rel.Schema())
	phone := rel.Schema().MustIndex("Phone")
	clusters := ClusterByRHSThreshold(sigma.ForRHS(phone))
	// φ6 (th 0), φ4 (th 1), φ3 (th 2) -> three clusters ascending.
	if len(clusters) != 3 {
		t.Fatalf("clusters = %d, want 3", len(clusters))
	}
	for i, wantTh := range []float64{0, 1, 2} {
		if clusters[i].Threshold != wantTh {
			t.Errorf("cluster %d threshold = %v, want %v", i, clusters[i].Threshold, wantTh)
		}
		if len(clusters[i].RFDs) != 1 {
			t.Errorf("cluster %d size = %d", i, len(clusters[i].RFDs))
		}
	}
}

func TestClusterGroupsEqualThresholds(t *testing.T) {
	rel := table2(t)
	a := MustParse("Name(<=1) -> Phone(<=2)", rel.Schema())
	b := MustParse("City(<=1) -> Phone(<=2)", rel.Schema())
	c := MustParse("Class(<=1) -> Phone(<=0)", rel.Schema())
	clusters := ClusterByRHSThreshold(Set{a, b, c})
	if len(clusters) != 2 {
		t.Fatalf("clusters = %d, want 2", len(clusters))
	}
	if clusters[0].Threshold != 0 || len(clusters[0].RFDs) != 1 {
		t.Errorf("cluster 0 = %+v", clusters[0])
	}
	if clusters[1].Threshold != 2 || len(clusters[1].RFDs) != 2 {
		t.Errorf("cluster 1 = %+v", clusters[1])
	}
}

func TestSetHoldsOnAndContains(t *testing.T) {
	rel := table2(t)
	holds := Set{MustParse("City(<=0) -> Phone(<=0)", rel.Schema())}
	if !holds.HoldsOn(rel) {
		t.Error("set should hold")
	}
	violated := Set{MustParse("Class(<=0) -> Type(<=5)", rel.Schema())}
	// (t2, t6): equal Class, Type distance("French","French (new)") = 6 > 5.
	if violated.HoldsOn(rel) {
		t.Error("φ2 is violated by (t2,t6) on Table 2")
	}
	if !holds.Contains(holds[0]) {
		t.Error("Contains missed a member")
	}
	if holds.Contains(violated[0]) {
		t.Error("Contains matched a non-member")
	}
}

func TestRFDEqual(t *testing.T) {
	rel := table2(t)
	a := MustParse("Name(<=4) -> Phone(<=1)", rel.Schema())
	b := MustParse("Name(<=4) -> Phone(<=1)", rel.Schema())
	c := MustParse("Name(<=5) -> Phone(<=1)", rel.Schema())
	d := MustParse("Name(<=4), City(<=2) -> Phone(<=1)", rel.Schema())
	if !a.Equal(b) || a.Equal(c) || a.Equal(d) {
		t.Error("Equal misbehaves")
	}
}
