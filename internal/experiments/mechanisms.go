package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/eval"
)

// MechanismRow is one point of the missingness-mechanism study (X5):
// RENUVER's averaged metrics on Restaurant under MCAR / MAR / MNAR at a
// fixed rate. The paper evaluates MCAR only; the harder mechanisms show
// how dependency-guided imputation degrades when missingness correlates
// with the data.
type MechanismRow struct {
	Mechanism eval.Mechanism
	Metrics   eval.Metrics
}

// MechanismStudy runs RENUVER under each mechanism at the campaign's
// highest Figure 2 rate, averaging over the usual variant count.
func MechanismStudy(env *Env) ([]MechanismRow, error) {
	rel, err := env.Dataset("restaurant")
	if err != nil {
		return nil, err
	}
	sigma, err := env.Sigma("restaurant", env.Scale.ComparisonThreshold)
	if err != nil {
		return nil, err
	}
	validator := Rules("restaurant")
	rate := env.Scale.Rates[len(env.Scale.Rates)-1]

	var rows []MechanismRow
	for _, mech := range []eval.Mechanism{eval.MCAR, eval.MAR, eval.MNAR} {
		var ms []eval.Metrics
		for v := 0; v < env.Scale.Variants; v++ {
			injRel, injected, err := eval.InjectWithMechanism(rel, rate, mech, env.Scale.Seed+int64(v))
			if err != nil {
				return nil, err
			}
			res, err := core.New(sigma).Impute(injRel)
			if err != nil {
				return nil, err
			}
			ms = append(ms, eval.Score(res.Relation, injected, validator))
		}
		rows = append(rows, MechanismRow{Mechanism: mech, Metrics: eval.Average(ms)})
	}
	return rows, nil
}

// RenderMechanisms prints the study.
func RenderMechanisms(rows []MechanismRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %7s %10s %9s\n", "Mech", "Recall", "Precision", "F1")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s %7.3f %10.3f %9.3f\n",
			r.Mechanism, r.Metrics.Recall, r.Metrics.Precision, r.Metrics.F1)
	}
	return sb.String()
}
