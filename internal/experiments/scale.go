// Package experiments regenerates every table and figure of the paper's
// evaluation section (Sec. 6): Table 3 (dataset statistics), Figure 2
// (RENUVER's P/R/F1 across RHS-threshold limits and missing rates),
// Figure 3 (the comparative evaluation against Derand, Holoclean and
// kNN), Table 4 (the Restaurant stress test across missing rates 5-40%),
// and Table 5 (the Physician stress test across tuple counts), plus the
// ablation studies and complexity-scaling checks DESIGN.md adds.
//
// Every experiment is parameterized by a Scale so the same code drives
// both the paper-sized runs (cmd/experiments -scale full) and the
// CI-sized ones (benchmarks, -scale quick).
package experiments

import (
	"time"

	"repro/internal/eval"
)

// Scale sizes one experiment campaign.
type Scale struct {
	// Name labels the scale in reports.
	Name string
	// Sizes gives per-dataset tuple counts.
	Sizes map[string]int
	// PhysicianSlices are the Table 5 tuple counts, ascending.
	PhysicianSlices []int
	// Rates are the Figure 2/3 missing rates.
	Rates []float64
	// StressRates are the Table 4 missing rates.
	StressRates []float64
	// Variants is how many injected datasets are averaged per rate
	// (the paper uses five).
	Variants int
	// Thresholds are the RFDc discovery threshold limits (the paper's
	// {3, 6, 9, 12, 15}).
	Thresholds []float64
	// ComparisonThreshold is the threshold limit used for Figure 3 and
	// the stress tables (the paper uses 15 for Restaurant/Glass).
	ComparisonThreshold float64
	// DiscoveryMaxPairs caps pair sampling during discovery (0 = exact).
	DiscoveryMaxPairs int
	// DiscoveryWorkers sets the discovery worker-pool size (0 = all
	// CPUs, 1 = serial). Discovery output is byte-identical for every
	// value, so campaigns stay reproducible across hosts.
	DiscoveryWorkers int
	// DiscoveryShards partitions pattern materialization to bound peak
	// memory (0 = unsharded). Like DiscoveryWorkers, the discovered set
	// is byte-identical for every value.
	DiscoveryShards int
	// Budget bounds each stress-table run (scaled stand-in for the
	// paper's 48 h / 30 GB limits).
	Budget eval.Budget
	// Seed drives all derived randomness.
	Seed int64
}

// FullScale is the paper-sized campaign: Table 3 dataset sizes, all five
// thresholds, rates 1-5% with five variants each. Expect hours of wall
// clock, like the original evaluation.
func FullScale() Scale {
	return Scale{
		Name: "full",
		Sizes: map[string]int{
			"restaurant": 864, "cars": 406, "glass": 214, "bridges": 108,
			"physician": 10359,
		},
		PhysicianSlices:     []int{104, 208, 1036, 2072, 10359},
		Rates:               []float64{0.01, 0.02, 0.03, 0.04, 0.05},
		StressRates:         []float64{0.05, 0.10, 0.20, 0.30, 0.40},
		Variants:            5,
		Thresholds:          []float64{3, 6, 9, 12, 15},
		ComparisonThreshold: 15,
		DiscoveryMaxPairs:   200_000,
		Budget:              eval.Budget{TimeLimit: 30 * time.Minute, MemLimit: 8 << 30},
		Seed:                2022,
	}
}

// QuickScale is the CI-sized campaign driving the same code paths in
// minutes: smaller instances, three thresholds, two variants, and tight
// stress budgets so the TL/ML markers actually appear.
func QuickScale() Scale {
	return Scale{
		Name: "quick",
		Sizes: map[string]int{
			"restaurant": 240, "cars": 200, "glass": 120, "bridges": 108,
			"physician": 1200,
		},
		PhysicianSlices:     []int{60, 120, 360, 720, 1200},
		Rates:               []float64{0.01, 0.03, 0.05},
		StressRates:         []float64{0.05, 0.20, 0.40},
		Variants:            2,
		Thresholds:          []float64{3, 9, 15},
		ComparisonThreshold: 15,
		DiscoveryMaxPairs:   30_000,
		Budget:              eval.Budget{TimeLimit: 2 * time.Minute, MemLimit: 4 << 30},
		Seed:                2022,
	}
}

// BenchScale is the smallest campaign, sized for `go test -bench`: it
// exercises every experiment code path in seconds per iteration.
func BenchScale() Scale {
	return Scale{
		Name: "bench",
		Sizes: map[string]int{
			"restaurant": 120, "cars": 100, "glass": 80, "bridges": 60,
			"physician": 240,
		},
		PhysicianSlices:     []int{30, 60, 120, 240},
		Rates:               []float64{0.02, 0.05},
		StressRates:         []float64{0.05, 0.20},
		Variants:            1,
		Thresholds:          []float64{6, 15},
		ComparisonThreshold: 15,
		DiscoveryMaxPairs:   8_000,
		Budget:              eval.Budget{TimeLimit: time.Minute, MemLimit: 4 << 30},
		Seed:                2022,
	}
}

// ScaleByName resolves "full", "quick" or "bench".
func ScaleByName(name string) (Scale, bool) {
	switch name {
	case "full":
		return FullScale(), true
	case "quick":
		return QuickScale(), true
	case "bench":
		return BenchScale(), true
	default:
		return Scale{}, false
	}
}
