package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// The CSV exporters emit one row per series point so the figures can be
// re-plotted outside Go. Every writer starts with a header row.

func writeAll(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, row := range rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

// WriteTable3CSV exports the Table 3 statistics.
func WriteTable3CSV(w io.Writer, rows []Table3Row, scale Scale) error {
	header := []string{"dataset", "attributes", "tuples"}
	for _, th := range scale.Thresholds {
		header = append(header, fmt.Sprintf("rfds_thr%g", th))
	}
	for _, r := range scale.Rates {
		header = append(header, fmt.Sprintf("missing_%g", r))
	}
	var out [][]string
	for _, row := range rows {
		rec := []string{row.Dataset, strconv.Itoa(row.Attributes), strconv.Itoa(row.Tuples)}
		for _, c := range row.RFDCounts {
			rec = append(rec, strconv.Itoa(c))
		}
		for _, m := range row.Missing {
			rec = append(rec, strconv.Itoa(m))
		}
		out = append(out, rec)
	}
	return writeAll(w, header, out)
}

// WriteFigure2CSV exports the Figure 2 sweep, one row per cell.
func WriteFigure2CSV(w io.Writer, cells []Figure2Cell) error {
	var out [][]string
	for _, c := range cells {
		out = append(out, []string{
			c.Dataset, f(c.Threshold), f(c.Rate),
			f(c.Metrics.Precision), f(c.Metrics.Recall), f(c.Metrics.F1),
			strconv.Itoa(c.Metrics.Imputed), strconv.Itoa(c.Metrics.Missing),
		})
	}
	return writeAll(w, []string{
		"dataset", "threshold", "rate", "precision", "recall", "f1", "imputed", "missing",
	}, out)
}

// WriteFigure3CSV exports the comparative evaluation, one row per
// (dataset, method, rate).
func WriteFigure3CSV(w io.Writer, points []Figure3Point) error {
	var out [][]string
	for _, p := range points {
		out = append(out, []string{
			p.Dataset, p.Method, f(p.Rate),
			f(p.Metrics.Precision), f(p.Metrics.Recall), f(p.Metrics.F1),
		})
	}
	return writeAll(w, []string{"dataset", "method", "rate", "precision", "recall", "f1"}, out)
}

// WriteStressCSV exports a Table 4/5 sweep.
func WriteStressCSV(w io.Writer, rows []StressRow) error {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Dataset, r.Method, r.Param,
			f(r.Metrics.Recall), f(r.Metrics.Precision), f(r.Metrics.F1),
			strconv.FormatInt(r.Elapsed.Milliseconds(), 10),
			strconv.FormatUint(r.Peak, 10),
			r.Marker,
		})
	}
	return writeAll(w, []string{
		"dataset", "method", "param", "recall", "precision", "f1",
		"time_ms", "peak_bytes", "marker",
	}, out)
}

// WriteAblationsCSV exports the ablation study.
func WriteAblationsCSV(w io.Writer, rows []AblationRow) error {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Config, f(r.Metrics.Recall), f(r.Metrics.Precision), f(r.Metrics.F1),
			strconv.FormatInt(r.Elapsed.Milliseconds(), 10),
		})
	}
	return writeAll(w, []string{"config", "recall", "precision", "f1", "time_ms"}, out)
}

// WriteScalingCSV exports the complexity-scaling sweep.
func WriteScalingCSV(w io.Writer, rows []ScalingRow) error {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			strconv.Itoa(r.Tuples), strconv.Itoa(r.Sigma), strconv.Itoa(r.Missing),
			strconv.FormatInt(r.Elapsed.Milliseconds(), 10),
		})
	}
	return writeAll(w, []string{"tuples", "sigma", "missing", "time_ms"}, out)
}

// WriteExtendedCSV exports the extended comparison.
func WriteExtendedCSV(w io.Writer, points []ExtendedPoint) error {
	var out [][]string
	for _, p := range points {
		out = append(out, []string{
			p.Method, f(p.Rate),
			f(p.Metrics.Precision), f(p.Metrics.Recall), f(p.Metrics.F1),
			strconv.FormatInt(p.Elapsed.Milliseconds(), 10),
		})
	}
	return writeAll(w, []string{"method", "rate", "precision", "recall", "f1", "time_ms"}, out)
}
