package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
)

// AblationRow is one configuration's averaged outcome in the ablation
// study (DESIGN.md experiments A1-A3 plus the verification-scope and
// cluster-order variants).
type AblationRow struct {
	Config  string
	Metrics eval.Metrics
	Elapsed time.Duration
}

// ablationConfigs enumerates the studied variants. The paper-faithful
// configuration comes first as the reference.
func ablationConfigs() []struct {
	name string
	opts []core.Option
} {
	return []struct {
		name string
		opts []core.Option
	}{
		{"paper-faithful", nil},
		{"no-verify (A1)", []core.Option{core.WithVerifyMode(core.VerifyOff)}},
		{"verify-both-sides", []core.Option{core.WithVerifyMode(core.VerifyBothSides)}},
		{"no-clustering (A2)", []core.Option{core.WithoutClustering()}},
		{"descending-clusters", []core.Option{core.WithClusterOrder(core.DescendingThreshold)}},
		{"no-ranking (A3)", []core.Option{core.WithoutRanking()}},
		{"no-key-reeval", []core.Option{core.WithoutKeyReevaluation()}},
	}
}

// Ablations measures every RENUVER variant on the Restaurant dataset at
// the campaign's comparison threshold, averaging over the usual injected
// variants at the highest Figure 2 rate.
func Ablations(env *Env) ([]AblationRow, error) {
	rel, err := env.Dataset("restaurant")
	if err != nil {
		return nil, err
	}
	sigma, err := env.Sigma("restaurant", env.Scale.ComparisonThreshold)
	if err != nil {
		return nil, err
	}
	validator := Rules("restaurant")
	rate := env.Scale.Rates[len(env.Scale.Rates)-1]
	variants, err := eval.InjectGrid(rel, []float64{rate}, env.Scale.Variants, env.Scale.Seed)
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, cfg := range ablationConfigs() {
		var ms []eval.Metrics
		var total time.Duration
		for _, variant := range variants {
			start := time.Now()
			res, err := core.New(sigma, cfg.opts...).Impute(variant.Relation)
			if err != nil {
				return nil, err
			}
			total += time.Since(start)
			ms = append(ms, eval.Score(res.Relation, variant.Injected, validator))
		}
		rows = append(rows, AblationRow{
			Config:  cfg.name,
			Metrics: eval.Average(ms),
			Elapsed: total / time.Duration(len(variants)),
		})
	}
	return rows, nil
}

// RenderAblations prints the ablation study.
func RenderAblations(rows []AblationRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-22s %7s %10s %9s %10s\n", "Config", "Recall", "Precision", "F1", "Time")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-22s %7.3f %10.3f %9.3f %10s\n",
			r.Config, r.Metrics.Recall, r.Metrics.Precision, r.Metrics.F1,
			r.Elapsed.Round(time.Millisecond))
	}
	return sb.String()
}

// ScalingRow is one point of the complexity-scaling check (experiment
// X1): RENUVER's wall clock as the tuple count grows, everything else
// fixed.
type ScalingRow struct {
	Tuples  int
	Sigma   int
	Missing int
	Elapsed time.Duration
}

// ComplexityScaling measures RENUVER on growing Restaurant prefixes —
// the empirical counterpart of the paper's O(n²·m·|Σ|·(k·m·|Σ| + k log k))
// worst case; wall clock should grow clearly super-linearly but
// polynomially in n.
func ComplexityScaling(env *Env) ([]ScalingRow, error) {
	rel, err := env.Dataset("restaurant")
	if err != nil {
		return nil, err
	}
	var rows []ScalingRow
	for _, frac := range []float64{0.25, 0.5, 0.75, 1.0} {
		n := int(float64(rel.Len()) * frac)
		if n < 10 {
			continue
		}
		slice := rel.Head(n)
		sigma, err := env.SigmaFor(slice, env.Scale.ComparisonThreshold)
		if err != nil {
			return nil, err
		}
		injRel, injected, err := eval.Inject(slice, 0.05, env.Scale.Seed)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := core.New(sigma).Impute(injRel); err != nil {
			return nil, err
		}
		rows = append(rows, ScalingRow{
			Tuples:  n,
			Sigma:   len(sigma),
			Missing: len(injected),
			Elapsed: time.Since(start),
		})
	}
	return rows, nil
}

// RenderScaling prints the scaling sweep.
func RenderScaling(rows []ScalingRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%8s %8s %8s %12s\n", "Tuples", "|Sigma|", "Missing", "Time")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%8d %8d %8d %12s\n", r.Tuples, r.Sigma, r.Missing,
			r.Elapsed.Round(time.Millisecond))
	}
	return sb.String()
}
