package experiments

import (
	"fmt"
	"strings"

	"repro/internal/eval"
)

// Table3Row is one dataset's statistics line of Table 3: shape, RFDc
// counts per threshold limit, and injected-missing counts per rate.
type Table3Row struct {
	Dataset    string
	Attributes int
	Tuples     int
	RFDCounts  []int // aligned with Scale.Thresholds
	Missing    []int // aligned with Scale.Rates
}

// Table3 regenerates Table 3 for the four qualitative-evaluation
// datasets.
func Table3(env *Env) ([]Table3Row, error) {
	var rows []Table3Row
	for _, name := range []string{"restaurant", "cars", "glass", "bridges"} {
		rel, err := env.Dataset(name)
		if err != nil {
			return nil, err
		}
		row := Table3Row{
			Dataset:    name,
			Attributes: rel.Schema().Len(),
			Tuples:     rel.Len(),
		}
		for _, th := range env.Scale.Thresholds {
			sigma, err := env.Sigma(name, th)
			if err != nil {
				return nil, err
			}
			row.RFDCounts = append(row.RFDCounts, len(sigma))
		}
		for _, rate := range env.Scale.Rates {
			_, injected, err := eval.Inject(rel, rate, env.Scale.Seed)
			if err != nil {
				return nil, err
			}
			row.Missing = append(row.Missing, len(injected))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTable3 prints the rows the way the paper lays Table 3 out.
func RenderTable3(rows []Table3Row, scale Scale) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %6s %7s |", "Dataset", "Attrs", "Tuples")
	for _, th := range scale.Thresholds {
		fmt.Fprintf(&sb, " thr=%-4g", th)
	}
	sb.WriteString("|")
	for _, r := range scale.Rates {
		fmt.Fprintf(&sb, " %4.0f%%", r*100)
	}
	sb.WriteString("\n")
	for _, row := range rows {
		fmt.Fprintf(&sb, "%-12s %6d %7d |", row.Dataset, row.Attributes, row.Tuples)
		for _, c := range row.RFDCounts {
			fmt.Fprintf(&sb, " %-8d", c)
		}
		sb.WriteString("|")
		for _, m := range row.Missing {
			fmt.Fprintf(&sb, " %4d ", m)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
