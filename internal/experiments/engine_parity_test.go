package experiments

import (
	"testing"

	"repro/internal/core"
	"repro/internal/eval"
)

// TestTable4EngineCrossConfigParity guards the evaluation-engine
// rewiring on the Table 4 workload: RENUVER on the injected Restaurant
// dataset must impute identically whether candidate search runs through
// the generalized index, the full sweep, or the parallel scan — the
// engine layers are pure optimizations, so any divergence here is a
// correctness bug, not drift.
func TestTable4EngineCrossConfigParity(t *testing.T) {
	env := benchEnv()
	rel, err := env.Dataset("restaurant")
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := env.SigmaFor(rel, env.Scale.Thresholds[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, rate := range []float64{0.10, 0.30} {
		injRel, _, err := eval.Inject(rel, rate, env.Scale.Seed)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := core.New(sigma).Impute(injRel)
		if err != nil {
			t.Fatal(err)
		}
		variants := map[string][]core.Option{
			"no-index": {core.WithoutIndex()},
			"workers":  {core.WithWorkers(4)},
		}
		for name, opts := range variants {
			res, err := core.New(sigma, opts...).Impute(injRel)
			if err != nil {
				t.Fatalf("rate %.0f%% %s: %v", rate*100, name, err)
			}
			if !ref.Relation.Equal(res.Relation) {
				t.Errorf("rate %.0f%% %s: imputed relation diverged", rate*100, name)
			}
			if len(ref.Imputations) != len(res.Imputations) {
				t.Fatalf("rate %.0f%% %s: %d imputations vs %d",
					rate*100, name, len(res.Imputations), len(ref.Imputations))
			}
			for i := range ref.Imputations {
				if ref.Imputations[i] != res.Imputations[i] {
					t.Errorf("rate %.0f%% %s: imputation %d differs:\n%+v\n%+v",
						rate*100, name, i, res.Imputations[i], ref.Imputations[i])
				}
			}
		}
	}
}
