package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/impute"
	"repro/internal/impute/derand"
	"repro/internal/impute/holoclean"
	"repro/internal/impute/knn"
)

// relation shortens the adapter signatures below.
type relation = dataset.Relation

// Figure3Point is one point of Figure 3: a method's averaged metrics on
// a dataset at one missing rate.
type Figure3Point struct {
	Dataset string
	Method  string
	Rate    float64
	Metrics eval.Metrics
}

// renuverAdapter exposes the core imputer as an impute.Method.
type renuverAdapter struct{ im *core.Imputer }

func (r renuverAdapter) Name() string { return "RENUVER" }
func (r renuverAdapter) Impute(ctx context.Context, rel *relation) (*relation, error) {
	res, err := r.im.ImputeContext(ctx, rel)
	if res == nil {
		return nil, err
	}
	return res.Relation, err
}

// Methods builds the Figure 3 contenders for one dataset: RENUVER and
// Derand share the same RFDc/DD set (as in the paper), Holoclean gets
// the discovered DCs, and kNN is added for numeric-only datasets
// (the paper compares kNN on Glass only).
func (e *Env) Methods(name string, includeKNN bool) ([]impute.Method, error) {
	sigma, err := e.Sigma(name, e.Scale.ComparisonThreshold)
	if err != nil {
		return nil, err
	}
	dcs, err := e.DCs(name)
	if err != nil {
		return nil, err
	}
	dr, err := derand.New(sigma, derand.Config{Seed: e.Scale.Seed})
	if err != nil {
		return nil, err
	}
	hc, err := holoclean.New(holoclean.Config{DCs: dcs, Seed: e.Scale.Seed})
	if err != nil {
		return nil, err
	}
	methods := []impute.Method{
		renuverAdapter{im: core.New(sigma)},
		dr,
		hc,
	}
	if includeKNN {
		kn, err := knn.New(knn.Config{})
		if err != nil {
			return nil, err
		}
		methods = append(methods, kn)
	}
	return methods, nil
}

// Figure3 regenerates Figure 3: RENUVER vs Derand vs Holoclean on
// Restaurant (panels a-c) and all four methods on Glass (panels d-f),
// varying the missing rate, every method seeing the same injected
// variants.
func Figure3(env *Env) ([]Figure3Point, error) {
	var points []Figure3Point
	for _, panel := range []struct {
		dataset    string
		includeKNN bool
	}{
		{"restaurant", false},
		{"glass", true},
	} {
		rel, err := env.Dataset(panel.dataset)
		if err != nil {
			return nil, err
		}
		validator := Rules(panel.dataset)
		variants, err := eval.InjectGrid(rel, env.Scale.Rates, env.Scale.Variants, env.Scale.Seed)
		if err != nil {
			return nil, err
		}
		methods, err := env.Methods(panel.dataset, panel.includeKNN)
		if err != nil {
			return nil, err
		}
		for _, method := range methods {
			results := eval.RunGrid(method, variants, validator, eval.Budget{})
			for _, rr := range results {
				points = append(points, Figure3Point{
					Dataset: panel.dataset,
					Method:  method.Name(),
					Rate:    rr.Rate,
					Metrics: rr.Metrics,
				})
			}
		}
	}
	return points, nil
}

// RenderFigure3 prints one series per (dataset, metric, method) with the
// missing rate on the x axis — the six panels of Figure 3.
func RenderFigure3(points []Figure3Point, scale Scale) string {
	var sb strings.Builder
	metric := []struct {
		label string
		get   func(eval.Metrics) float64
	}{
		{"Recall", func(m eval.Metrics) float64 { return m.Recall }},
		{"Precision", func(m eval.Metrics) float64 { return m.Precision }},
		{"F1", func(m eval.Metrics) float64 { return m.F1 }},
	}
	byKey := map[string]eval.Metrics{}
	var datasets, methods []string
	seenDS, seenM := map[string]bool{}, map[string]bool{}
	for _, p := range points {
		byKey[fmt.Sprintf("%s|%s|%g", p.Dataset, p.Method, p.Rate)] = p.Metrics
		if !seenDS[p.Dataset] {
			seenDS[p.Dataset] = true
			datasets = append(datasets, p.Dataset)
		}
		if !seenM[p.Method] {
			seenM[p.Method] = true
			methods = append(methods, p.Method)
		}
	}
	for _, ds := range datasets {
		for _, met := range metric {
			fmt.Fprintf(&sb, "%s / %s\n", ds, met.label)
			fmt.Fprintf(&sb, "  %-12s", "method\\rate")
			for _, r := range scale.Rates {
				fmt.Fprintf(&sb, " %5.0f%%", r*100)
			}
			sb.WriteString("\n")
			for _, m := range methods {
				if _, ok := byKey[fmt.Sprintf("%s|%s|%g", ds, m, scale.Rates[0])]; !ok {
					continue // method not run on this panel (kNN on restaurant)
				}
				fmt.Fprintf(&sb, "  %-12s", m)
				for _, r := range scale.Rates {
					mm := byKey[fmt.Sprintf("%s|%s|%g", ds, m, r)]
					fmt.Fprintf(&sb, " %6.3f", met.get(mm))
				}
				sb.WriteString("\n")
			}
			sb.WriteString("\n")
		}
	}
	return sb.String()
}
