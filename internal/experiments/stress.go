package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/eval"
)

// StressRow is one line of Table 4 or Table 5: a method's quality
// metrics, wall-clock and peak memory at one sweep point, with the
// paper's TL/ML markers when the scaled budget is exceeded.
type StressRow struct {
	Dataset string
	Method  string
	Param   string // "10%" for Table 4, "2072 tuples" for Table 5
	Metrics eval.Metrics
	Elapsed time.Duration
	Peak    uint64
	Marker  string
}

// Table4 regenerates Table 4: RENUVER, Derand, and Holoclean on the
// Restaurant dataset across the high missing rates [5%..40%], under the
// campaign's time/memory budget.
func Table4(env *Env) ([]StressRow, error) {
	rel, err := env.Dataset("restaurant")
	if err != nil {
		return nil, err
	}
	validator := Rules("restaurant")
	methods, err := env.Methods("restaurant", false)
	if err != nil {
		return nil, err
	}
	var rows []StressRow
	for _, method := range methods {
		for _, rate := range env.Scale.StressRates {
			injRel, injected, err := eval.Inject(rel, rate, env.Scale.Seed)
			if err != nil {
				return nil, err
			}
			variant := eval.Variant{Rate: rate, Relation: injRel, Injected: injected}
			run := eval.Run(method, variant, validator, env.Scale.Budget)
			rows = append(rows, StressRow{
				Dataset: "restaurant",
				Method:  method.Name(),
				Param:   fmt.Sprintf("%.0f%%", rate*100),
				Metrics: run.Metrics,
				Elapsed: run.Elapsed,
				Peak:    run.PeakHeap,
				Marker:  run.Marker(),
			})
			// Like the paper, once a method hits its budget at one rate
			// there is no point scaling it further up.
			if run.Marker() != "" {
				for _, r2 := range env.Scale.StressRates {
					if r2 > rate {
						rows = append(rows, StressRow{
							Dataset: "restaurant", Method: method.Name(),
							Param:  fmt.Sprintf("%.0f%%", r2*100),
							Marker: run.Marker(),
						})
					}
				}
				break
			}
		}
	}
	return rows, nil
}

// Table5 regenerates Table 5: the same three methods on the Physician
// dataset, fixing the missing rate at 1% and sweeping the tuple count.
func Table5(env *Env) ([]StressRow, error) {
	validator := Rules("physician")
	var rows []StressRow
	// Methods are rebuilt per slice: Σ and the DCs are discovered on the
	// slice itself, mirroring the paper's per-slice RFDc counts.
	for mi := 0; mi < 3; mi++ {
		budgetHit := ""
		for _, n := range env.Scale.PhysicianSlices {
			param := fmt.Sprintf("%d tuples", n)
			if budgetHit != "" {
				rows = append(rows, StressRow{Dataset: "physician",
					Method: [3]string{"RENUVER", "Derand", "Holoclean"}[mi],
					Param:  param, Marker: budgetHit})
				continue
			}
			slice, err := env.DatasetSized("physician", n)
			if err != nil {
				return nil, err
			}
			method, err := env.methodForSlice(slice, mi)
			if err != nil {
				return nil, err
			}
			injRel, injected, err := eval.Inject(slice, 0.01, env.Scale.Seed)
			if err != nil {
				return nil, err
			}
			variant := eval.Variant{Rate: 0.01, Relation: injRel, Injected: injected}
			run := eval.Run(method, variant, validator, env.Scale.Budget)
			rows = append(rows, StressRow{
				Dataset: "physician",
				Method:  method.Name(),
				Param:   param,
				Metrics: run.Metrics,
				Elapsed: run.Elapsed,
				Peak:    run.PeakHeap,
				Marker:  run.Marker(),
			})
			if run.Marker() != "" {
				budgetHit = run.Marker()
			}
		}
	}
	return rows, nil
}

// methodForSlice builds contender mi (0 RENUVER, 1 Derand, 2 Holoclean)
// with metadata discovered on the given slice.
func (e *Env) methodForSlice(slice *relation, mi int) (method, error) {
	sigma, err := e.SigmaFor(slice, e.Scale.ComparisonThreshold)
	if err != nil {
		return nil, err
	}
	switch mi {
	case 0:
		return renuverMethod(sigma), nil
	case 1:
		return derandMethod(sigma, e.Scale.Seed)
	default:
		return holocleanMethod(e.DCsFor(slice), e.Scale.Seed)
	}
}

// RenderStress prints the rows the way Tables 4-5 lay them out.
func RenderStress(rows []StressRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %-10s %-12s %7s %10s %9s %10s %10s %s\n",
		"Dataset", "Method", "Param", "Recall", "Precision", "F1", "Time", "Mem", "Marker")
	for _, r := range rows {
		if r.Marker != "" && r.Elapsed == 0 {
			fmt.Fprintf(&sb, "%-12s %-10s %-12s %7s %10s %9s %10s %10s %s\n",
				r.Dataset, r.Method, r.Param, "-", "-", "-", "-", "-", r.Marker)
			continue
		}
		fmt.Fprintf(&sb, "%-12s %-10s %-12s %7.3f %10.3f %9.3f %10s %10s %s\n",
			r.Dataset, r.Method, r.Param,
			r.Metrics.Recall, r.Metrics.Precision, r.Metrics.F1,
			r.Elapsed.Round(time.Millisecond), eval.FormatBytes(r.Peak), r.Marker)
	}
	return sb.String()
}
