package experiments

import (
	"testing"

	"repro/internal/core"
	"repro/internal/distance"
	"repro/internal/eval"
)

// TestTable4KernelParity guards the bit-parallel string kernels on the
// Table 4 workload: RENUVER on the injected Restaurant dataset must
// impute byte-identically whether the edit distances come from the
// Myers bit-parallel kernel, the banded-DP reference, or the automatic
// dispatch — same imputations, same final relation, same accuracy.
func TestTable4KernelParity(t *testing.T) {
	env := benchEnv()
	rel, err := env.Dataset("restaurant")
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := env.SigmaFor(rel, env.Scale.Thresholds[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, rate := range []float64{0.10, 0.30} {
		injRel, _, err := eval.Inject(rel, rate, env.Scale.Seed)
		if err != nil {
			t.Fatal(err)
		}
		run := func(k distance.Kernel) *core.Result {
			prev := distance.SetKernel(k)
			defer distance.SetKernel(prev)
			res, err := core.New(sigma).Impute(injRel)
			if err != nil {
				t.Fatalf("rate %.0f%%: %v", rate*100, err)
			}
			return res
		}
		ref := run(distance.KernelAuto)
		for name, k := range map[string]distance.Kernel{
			"myers": distance.KernelMyers, "banded": distance.KernelBanded,
		} {
			res := run(k)
			if !ref.Relation.Equal(res.Relation) {
				t.Errorf("rate %.0f%% %s: imputed relation diverged", rate*100, name)
			}
			if len(ref.Imputations) != len(res.Imputations) {
				t.Fatalf("rate %.0f%% %s: %d imputations vs %d",
					rate*100, name, len(res.Imputations), len(ref.Imputations))
			}
			for i := range ref.Imputations {
				if ref.Imputations[i] != res.Imputations[i] {
					t.Errorf("rate %.0f%% %s: imputation %d differs:\n%+v\n%+v",
						rate*100, name, i, res.Imputations[i], ref.Imputations[i])
				}
			}
			if ref.Stats.Imputed != res.Stats.Imputed || ref.Stats.Unimputed != res.Stats.Unimputed {
				t.Errorf("rate %.0f%% %s: imputed/unimputed %d/%d, want %d/%d", rate*100, name,
					res.Stats.Imputed, res.Stats.Unimputed, ref.Stats.Imputed, ref.Stats.Unimputed)
			}
		}
	}
}
