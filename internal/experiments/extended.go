package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/impute"
	"repro/internal/impute/derand"
	"repro/internal/impute/holoclean"
	"repro/internal/impute/knn"
	"repro/internal/impute/meanmode"
	"repro/internal/impute/regression"
)

// ExtendedPoint is one point of the extended comparison: beyond the
// paper's Figure 3 contenders it adds the statistical floor (mean/mode)
// and the regression class of the related work (local linear
// regression, [26]), all on the numeric Glass dataset.
type ExtendedPoint struct {
	Method  string
	Rate    float64
	Metrics eval.Metrics
	Elapsed time.Duration
}

// ExtendedComparison runs six methods on Glass over the campaign's
// rates, all on identical injected variants.
func ExtendedComparison(env *Env) ([]ExtendedPoint, error) {
	rel, err := env.Dataset("glass")
	if err != nil {
		return nil, err
	}
	validator := Rules("glass")
	variants, err := eval.InjectGrid(rel, env.Scale.Rates, env.Scale.Variants, env.Scale.Seed)
	if err != nil {
		return nil, err
	}
	sigma, err := env.Sigma("glass", env.Scale.ComparisonThreshold)
	if err != nil {
		return nil, err
	}
	dcs, err := env.DCs("glass")
	if err != nil {
		return nil, err
	}
	dr, err := derand.New(sigma, derand.Config{Seed: env.Scale.Seed})
	if err != nil {
		return nil, err
	}
	hc, err := holoclean.New(holoclean.Config{DCs: dcs, Seed: env.Scale.Seed})
	if err != nil {
		return nil, err
	}
	kn, err := knn.New(knn.Config{})
	if err != nil {
		return nil, err
	}
	lr, err := regression.New(regression.Config{})
	if err != nil {
		return nil, err
	}
	methods := []impute.Method{
		renuverAdapter{im: core.New(sigma)},
		dr, hc, kn, meanmode.New(), lr,
	}

	var points []ExtendedPoint
	for _, m := range methods {
		for _, rr := range eval.RunGrid(m, variants, validator, eval.Budget{}) {
			points = append(points, ExtendedPoint{
				Method:  m.Name(),
				Rate:    rr.Rate,
				Metrics: rr.Metrics,
				Elapsed: rr.Elapsed,
			})
		}
	}
	return points, nil
}

// RenderExtended prints the extended comparison.
func RenderExtended(points []ExtendedPoint, scale Scale) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "glass, %d variants per rate, thr=%g\n", scale.Variants, scale.ComparisonThreshold)
	fmt.Fprintf(&sb, "%-14s %5s %10s %8s %8s %10s\n", "method", "rate", "precision", "recall", "F1", "time")
	for _, p := range points {
		fmt.Fprintf(&sb, "%-14s %4.0f%% %10.3f %8.3f %8.3f %10s\n",
			p.Method, p.Rate*100, p.Metrics.Precision, p.Metrics.Recall,
			p.Metrics.F1, p.Elapsed.Round(time.Millisecond))
	}
	return sb.String()
}
