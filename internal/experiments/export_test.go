package experiments

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
	"time"

	"repro/internal/eval"
)

func parseCSV(t *testing.T, doc string) [][]string {
	t.Helper()
	records, err := csv.NewReader(strings.NewReader(doc)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return records
}

func TestWriteTable3CSV(t *testing.T) {
	scale := BenchScale()
	rows := []Table3Row{{
		Dataset: "restaurant", Attributes: 6, Tuples: 120,
		RFDCounts: []int{10, 20}, Missing: []int{5, 12},
	}}
	var buf bytes.Buffer
	if err := WriteTable3CSV(&buf, rows, scale); err != nil {
		t.Fatal(err)
	}
	records := parseCSV(t, buf.String())
	if len(records) != 2 {
		t.Fatalf("records = %v", records)
	}
	if records[0][0] != "dataset" || records[1][0] != "restaurant" {
		t.Errorf("records = %v", records)
	}
	if len(records[0]) != 3+len(scale.Thresholds)+len(scale.Rates) {
		t.Errorf("header width = %d", len(records[0]))
	}
}

func TestWriteFigure2CSV(t *testing.T) {
	cells := []Figure2Cell{{
		Dataset: "glass", Threshold: 9, Rate: 0.03,
		Metrics: eval.Metrics{Precision: 0.8, Recall: 0.7, F1: 0.75, Imputed: 10, Missing: 12},
	}}
	var buf bytes.Buffer
	if err := WriteFigure2CSV(&buf, cells); err != nil {
		t.Fatal(err)
	}
	records := parseCSV(t, buf.String())
	if len(records) != 2 || records[1][0] != "glass" || records[1][3] != "0.8000" {
		t.Errorf("records = %v", records)
	}
}

func TestWriteFigure3CSV(t *testing.T) {
	points := []Figure3Point{{Dataset: "restaurant", Method: "RENUVER", Rate: 0.05,
		Metrics: eval.Metrics{Precision: 0.9, Recall: 0.6, F1: 0.72}}}
	var buf bytes.Buffer
	if err := WriteFigure3CSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	records := parseCSV(t, buf.String())
	if len(records) != 2 || records[1][1] != "RENUVER" {
		t.Errorf("records = %v", records)
	}
}

func TestWriteStressCSV(t *testing.T) {
	rows := []StressRow{{
		Dataset: "physician", Method: "Derand", Param: "2072 tuples",
		Metrics: eval.Metrics{Recall: 0.1}, Elapsed: 1500 * time.Millisecond,
		Peak: 1 << 20, Marker: "TL",
	}}
	var buf bytes.Buffer
	if err := WriteStressCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	records := parseCSV(t, buf.String())
	if records[1][6] != "1500" || records[1][8] != "TL" {
		t.Errorf("records = %v", records)
	}
}

func TestWriteAblationsAndScalingAndExtendedCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAblationsCSV(&buf, []AblationRow{{Config: "paper-faithful"}}); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "config,recall") {
		t.Errorf("ablation csv = %q", buf.String())
	}
	buf.Reset()
	if err := WriteScalingCSV(&buf, []ScalingRow{{Tuples: 60, Sigma: 10, Missing: 5, Elapsed: time.Second}}); err != nil {
		t.Fatal(err)
	}
	records := parseCSV(t, buf.String())
	if records[1][3] != "1000" {
		t.Errorf("scaling csv = %v", records)
	}
	buf.Reset()
	if err := WriteExtendedCSV(&buf, []ExtendedPoint{{Method: "kNN(k=5)", Rate: 0.01}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "kNN(k=5)") {
		t.Errorf("extended csv = %q", buf.String())
	}
}
