package experiments

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the Table 4 golden file from the current output")

// normalizeStressLines strips the nondeterministic Time and Mem columns
// from RenderStress output, keeping the deterministic quality columns
// and the TL/ML markers, so the golden comparison only fails on real
// accuracy drift.
func normalizeStressLines(text string) []string {
	var out []string
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		f := strings.Fields(line)
		if len(f) == 0 {
			continue
		}
		if f[0] == "Dataset" { // header
			out = append(out, "Dataset Method Param Recall Precision F1 Marker")
			continue
		}
		// Data rows: Dataset Method Param Recall Precision F1 Time Mem[2] [Marker].
		// Budget-hit backfill rows render every numeric column as "-"
		// (9 fields); normal rows have a two-field Mem ("4.75 MB").
		if len(f) < 8 {
			continue
		}
		marker := ""
		if last := f[len(f)-1]; last == "TL" || last == "ML" {
			marker = " " + last
		}
		out = append(out, strings.Join(f[:6], " ")+marker)
	}
	return out
}

// diffLines renders a readable per-line diff for golden mismatches.
func diffLines(want, got []string) string {
	var sb strings.Builder
	n := len(want)
	if len(got) > n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		w, g := "<missing>", "<missing>"
		if i < len(want) {
			w = want[i]
		}
		if i < len(got) {
			g = got[i]
		}
		if w == g {
			continue
		}
		fmt.Fprintf(&sb, "line %d:\n  golden: %s\n  got:    %s\n", i+1, w, g)
	}
	return sb.String()
}

// TestTable4Golden reproduces the committed Table 4 output at bench
// scale and fails with a readable diff when the accuracy columns drift.
// Regenerate with:
//
//	go test ./internal/experiments -run TestTable4Golden -update
func TestTable4Golden(t *testing.T) {
	if testing.Short() {
		t.Skip("stress sweep in -short mode")
	}
	rows, err := Table4(benchEnv())
	if err != nil {
		t.Fatal(err)
	}
	got := normalizeStressLines(RenderStress(rows))
	path := filepath.Join("testdata", "table4_bench.golden")

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(strings.Join(got, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden rewritten: %s", path)
		return
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	want := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if diff := diffLines(want, got); diff != "" {
		t.Errorf("Table 4 accuracy drift against %s:\n%s", path, diff)
	}
}

// TestTable4GoldenFull compares a freshly regenerated full-scale Table 4
// against the committed full_table4.txt transcript. The full sweep takes
// ~15 minutes, so the test only runs when RENUVER_FULL_GOLDEN=1.
func TestTable4GoldenFull(t *testing.T) {
	if os.Getenv("RENUVER_FULL_GOLDEN") == "" {
		t.Skip("full-scale sweep; set RENUVER_FULL_GOLDEN=1 to run (~15 min)")
	}
	raw, err := os.ReadFile(filepath.Join("..", "..", "full_table4.txt"))
	if err != nil {
		t.Fatal(err)
	}
	// Extract the table body between the section header and the footer.
	var section []string
	in := false
	for _, line := range strings.Split(string(raw), "\n") {
		switch {
		case strings.HasPrefix(line, "== table4 =="):
			in = true
		case in && (strings.HasPrefix(line, "(table4") || strings.HasPrefix(line, "==")):
			in = false
		case in:
			section = append(section, line)
		}
	}
	want := normalizeStressLines(strings.Join(section, "\n"))

	rows, err := Table4(NewEnv(FullScale()))
	if err != nil {
		t.Fatal(err)
	}
	got := normalizeStressLines(RenderStress(rows))
	if diff := diffLines(want, got); diff != "" {
		t.Errorf("full-scale Table 4 drift against full_table4.txt:\n%s", diff)
	}
}
