package experiments

import (
	"repro/internal/core"
	"repro/internal/dc"
	"repro/internal/impute"
	"repro/internal/impute/derand"
	"repro/internal/impute/holoclean"
	"repro/internal/rfd"
)

// method shortens the stress-table helper signatures.
type method = impute.Method

// renuverMethod wraps a fresh RENUVER imputer over Σ as a method.
func renuverMethod(sigma rfd.Set) method { return renuverAdapter{im: core.New(sigma)} }

// derandMethod builds the Derand contender over the same Σ.
func derandMethod(sigma rfd.Set, seed int64) (method, error) {
	return derand.New(sigma, derand.Config{Seed: seed})
}

// holocleanMethod builds the Holoclean contender over the DC set.
func holocleanMethod(dcs []*dc.DC, seed int64) (method, error) {
	return holoclean.New(holoclean.Config{DCs: dcs, Seed: seed})
}
