package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/eval"
)

// Figure2Cell is one point of Figure 2: RENUVER's averaged metrics for a
// (dataset, threshold limit, missing rate) combination.
type Figure2Cell struct {
	Dataset   string
	Threshold float64
	Rate      float64
	Metrics   eval.Metrics
}

// Figure2Datasets are the four panels of Figure 2, in the paper's order.
var Figure2Datasets = []string{"glass", "bridges", "cars", "restaurant"}

// Figure2 regenerates Figure 2: RENUVER's precision, recall, and
// F1-measure on each dataset, varying the maximum RHS distance threshold
// and the missing rate, averaged over the per-rate variants.
func Figure2(env *Env) ([]Figure2Cell, error) {
	return Figure2For(env, Figure2Datasets)
}

// Figure2For runs the Figure 2 sweep over a chosen subset of panels.
func Figure2For(env *Env, names []string) ([]Figure2Cell, error) {
	var cells []Figure2Cell
	for _, name := range names {
		rel, err := env.Dataset(name)
		if err != nil {
			return nil, err
		}
		validator := Rules(name)
		variants, err := eval.InjectGrid(rel, env.Scale.Rates, env.Scale.Variants, env.Scale.Seed)
		if err != nil {
			return nil, err
		}
		for _, th := range env.Scale.Thresholds {
			sigma, err := env.Sigma(name, th)
			if err != nil {
				return nil, err
			}
			byRate := map[float64][]eval.Metrics{}
			for _, variant := range variants {
				res, err := core.New(sigma).Impute(variant.Relation)
				if err != nil {
					return nil, err
				}
				m := eval.Score(res.Relation, variant.Injected, validator)
				byRate[variant.Rate] = append(byRate[variant.Rate], m)
			}
			for _, rate := range env.Scale.Rates {
				cells = append(cells, Figure2Cell{
					Dataset:   name,
					Threshold: th,
					Rate:      rate,
					Metrics:   eval.Average(byRate[rate]),
				})
			}
		}
	}
	return cells, nil
}

// RenderFigure2 prints one numeric series per (dataset, metric,
// threshold): the x axis is the missing rate, matching the paper's
// twelve sub-plots.
func RenderFigure2(cells []Figure2Cell, scale Scale) string {
	var sb strings.Builder
	metric := []struct {
		label string
		get   func(eval.Metrics) float64
	}{
		{"Recall", func(m eval.Metrics) float64 { return m.Recall }},
		{"Precision", func(m eval.Metrics) float64 { return m.Precision }},
		{"F1", func(m eval.Metrics) float64 { return m.F1 }},
	}
	byKey := map[string]eval.Metrics{}
	var datasets []string
	seen := map[string]bool{}
	for _, c := range cells {
		byKey[fmt.Sprintf("%s|%g|%g", c.Dataset, c.Threshold, c.Rate)] = c.Metrics
		if !seen[c.Dataset] {
			seen[c.Dataset] = true
			datasets = append(datasets, c.Dataset)
		}
	}
	for _, ds := range datasets {
		for _, met := range metric {
			fmt.Fprintf(&sb, "%s / %s\n", ds, met.label)
			fmt.Fprintf(&sb, "  %-8s", "thr\\rate")
			for _, r := range scale.Rates {
				fmt.Fprintf(&sb, " %5.0f%%", r*100)
			}
			sb.WriteString("\n")
			for _, th := range scale.Thresholds {
				fmt.Fprintf(&sb, "  thr=%-4g", th)
				for _, r := range scale.Rates {
					m, ok := byKey[fmt.Sprintf("%s|%g|%g", ds, th, r)]
					if !ok {
						sb.WriteString("     -")
						continue
					}
					fmt.Fprintf(&sb, " %6.3f", met.get(m))
				}
				sb.WriteString("\n")
			}
			sb.WriteString("\n")
		}
	}
	return sb.String()
}
