package experiments

import (
	"fmt"
	"sync"

	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/dc"
	"repro/internal/discovery"
	"repro/internal/eval"
	"repro/internal/rfd"
)

// Env provisions datasets, discovered RFDc sets, denial constraints and
// validators for one campaign, caching everything per (dataset,
// threshold) so repeated experiments do not re-pay discovery.
type Env struct {
	Scale Scale

	mu     sync.Mutex
	rels   map[string]*dataset.Relation
	sigmas map[string]rfd.Set
	dcs    map[string][]*dc.DC
}

// NewEnv returns an empty environment for the scale.
func NewEnv(scale Scale) *Env {
	return &Env{
		Scale:  scale,
		rels:   map[string]*dataset.Relation{},
		sigmas: map[string]rfd.Set{},
		dcs:    map[string][]*dc.DC{},
	}
}

// Dataset returns (and caches) the synthetic dataset at the campaign
// size.
func (e *Env) Dataset(name string) (*dataset.Relation, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if rel, ok := e.rels[name]; ok {
		return rel, nil
	}
	n, ok := e.Scale.Sizes[name]
	if !ok {
		return nil, fmt.Errorf("experiments: no size configured for %q", name)
	}
	rel, err := datagen.ByName(name, n, e.Scale.Seed)
	if err != nil {
		return nil, err
	}
	e.rels[name] = rel
	return rel, nil
}

// DatasetSized returns an uncached dataset at an explicit size (the
// Table 5 tuple sweep).
func (e *Env) DatasetSized(name string, n int) (*dataset.Relation, error) {
	return datagen.ByName(name, n, e.Scale.Seed)
}

// Sigma returns (and caches) the RFDcs discovered on the dataset under
// the threshold limit.
func (e *Env) Sigma(name string, threshold float64) (rfd.Set, error) {
	key := fmt.Sprintf("%s@%g", name, threshold)
	e.mu.Lock()
	if s, ok := e.sigmas[key]; ok {
		e.mu.Unlock()
		return s, nil
	}
	e.mu.Unlock()
	rel, err := e.Dataset(name)
	if err != nil {
		return nil, err
	}
	s, err := e.SigmaFor(rel, threshold)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.sigmas[key] = s
	e.mu.Unlock()
	return s, nil
}

// SigmaFor discovers RFDcs on an arbitrary relation under the campaign's
// discovery settings (no caching).
func (e *Env) SigmaFor(rel *dataset.Relation, threshold float64) (rfd.Set, error) {
	return discovery.Discover(rel, discovery.Config{
		MaxThreshold: threshold,
		MaxPairs:     e.Scale.DiscoveryMaxPairs,
		Seed:         e.Scale.Seed,
		Workers:      e.Scale.DiscoveryWorkers,
		Shards:       e.Scale.DiscoveryShards,
	})
}

// DCs returns (and caches) the denial constraints discovered on the
// dataset for the Holoclean baseline.
func (e *Env) DCs(name string) ([]*dc.DC, error) {
	e.mu.Lock()
	if d, ok := e.dcs[name]; ok {
		e.mu.Unlock()
		return d, nil
	}
	e.mu.Unlock()
	rel, err := e.Dataset(name)
	if err != nil {
		return nil, err
	}
	d := e.DCsFor(rel)
	e.mu.Lock()
	e.dcs[name] = d
	e.mu.Unlock()
	return d, nil
}

// DCsFor discovers denial constraints on an arbitrary relation.
func (e *Env) DCsFor(rel *dataset.Relation) []*dc.DC {
	return dc.Discover(rel, dc.DiscoverConfig{
		MaxViolationRate: 0.01,
		MinEvidence:      2,
		MaxPairs:         e.Scale.DiscoveryMaxPairs,
		Seed:             e.Scale.Seed,
	})
}

// Rules returns the paper-style rule-based validator for the dataset.
// The rule definitions mirror the originals' semantics: phone numbers
// match on digits regardless of separators, city aliases form value
// sets, and numeric attributes admit the delta the paper quotes for
// Horsepower (±25) scaled to each domain.
func Rules(name string) *eval.Validator {
	v := eval.NewValidator()
	switch name {
	case "restaurant":
		mustRegex(v, "Phone", "[0-9]")
		v.AddValueSet("City", "Los Angeles", "LA", "L.A.")
		v.AddValueSet("City", "New York", "New York City", "NY")
		v.AddValueSet("City", "Hollywood", "W. Hollywood")
		v.AddValueSet("City", "Santa Monica", "S. Monica")
		v.AddValueSet("Type", "French", "French (new)")
		v.AddValueSet("Type", "American", "American (new)")
	case "cars":
		mustDelta(v, "Mpg", 3)
		mustDelta(v, "Displacement", 30)
		mustDelta(v, "Horsepower", 25) // the paper's own example
		mustDelta(v, "Weight", 250)
		mustDelta(v, "Acceleration", 2)
		mustDelta(v, "ModelYear", 1)
	case "glass":
		mustDelta(v, "RI", 0.003)
		mustDelta(v, "Na", 0.6)
		mustDelta(v, "Mg", 0.5)
		mustDelta(v, "Al", 0.3)
		mustDelta(v, "Si", 0.8)
		mustDelta(v, "K", 0.2)
		mustDelta(v, "Ca", 0.6)
		mustDelta(v, "Ba", 0.3)
		mustDelta(v, "Fe", 0.1)
	case "bridges":
		mustDelta(v, "Erected", 10)
		mustDelta(v, "Length", 400)
		mustDelta(v, "Location", 3)
	case "physician":
		mustRegex(v, "Phone", "[0-9]")
		mustDelta(v, "GradYear", 2)
		mustDelta(v, "OrgMembers", 50)
		mustDelta(v, "Quality", 1)
	}
	return v
}

func mustRegex(v *eval.Validator, attr, pattern string) {
	if err := v.SetRegex(attr, pattern); err != nil {
		panic(err)
	}
}

func mustDelta(v *eval.Validator, attr string, delta float64) {
	if err := v.SetDelta(attr, delta); err != nil {
		panic(err)
	}
}
