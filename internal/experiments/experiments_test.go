package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/eval"
)

func benchEnv() *Env {
	scale := BenchScale()
	// Even tighter for unit tests: exercise the code paths, not the GHz.
	scale.Sizes = map[string]int{
		"restaurant": 80, "cars": 60, "glass": 50, "bridges": 50, "physician": 120,
	}
	scale.PhysicianSlices = []int{30, 60}
	return NewEnv(scale)
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"full", "quick", "bench"} {
		s, ok := ScaleByName(name)
		if !ok || s.Name != name {
			t.Errorf("ScaleByName(%q) = %+v, %v", name, s, ok)
		}
		if len(s.Rates) == 0 || len(s.Thresholds) == 0 || s.Variants == 0 {
			t.Errorf("scale %q incomplete: %+v", name, s)
		}
	}
	if _, ok := ScaleByName("bogus"); ok {
		t.Error("unknown scale accepted")
	}
}

func TestEnvCaching(t *testing.T) {
	env := benchEnv()
	a, err := env.Dataset("restaurant")
	if err != nil {
		t.Fatal(err)
	}
	b, err := env.Dataset("restaurant")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("dataset not cached")
	}
	s1, err := env.Sigma("restaurant", 6)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := env.Sigma("restaurant", 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(s1) == 0 || len(s1) != len(s2) {
		t.Errorf("sigma caching broken: %d vs %d", len(s1), len(s2))
	}
	if _, err := env.Dataset("unknown"); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestRulesPerDataset(t *testing.T) {
	// Every dataset must return a validator; restaurant's must accept
	// phone separator variants, cars' the ±25 horsepower delta.
	for _, name := range []string{"restaurant", "cars", "glass", "bridges", "physician"} {
		if Rules(name) == nil {
			t.Fatalf("Rules(%q) nil", name)
		}
	}
	v := Rules("restaurant")
	if !v.Correct("Phone", mustVal("213/848-6677"), mustVal("213-848-6677")) {
		t.Error("restaurant phone rule missing")
	}
	if !v.Correct("City", mustVal("LA"), mustVal("Los Angeles")) {
		t.Error("restaurant city value set missing")
	}
}

func TestTable3(t *testing.T) {
	env := benchEnv()
	rows, err := Table3(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, row := range rows {
		if len(row.RFDCounts) != len(env.Scale.Thresholds) {
			t.Errorf("%s: %d RFD counts", row.Dataset, len(row.RFDCounts))
		}
		if len(row.Missing) != len(env.Scale.Rates) {
			t.Errorf("%s: %d missing counts", row.Dataset, len(row.Missing))
		}
		// Missing counts must grow with the rate.
		for i := 1; i < len(row.Missing); i++ {
			if row.Missing[i] < row.Missing[i-1] {
				t.Errorf("%s: missing counts not monotone: %v", row.Dataset, row.Missing)
			}
		}
	}
	text := RenderTable3(rows, env.Scale)
	if !strings.Contains(text, "restaurant") || !strings.Contains(text, "thr=") {
		t.Errorf("render:\n%s", text)
	}
}

func TestFigure2SinglePanel(t *testing.T) {
	env := benchEnv()
	cells, err := Figure2For(env, []string{"bridges"})
	if err != nil {
		t.Fatal(err)
	}
	want := len(env.Scale.Thresholds) * len(env.Scale.Rates)
	if len(cells) != want {
		t.Fatalf("cells = %d, want %d", len(cells), want)
	}
	for _, c := range cells {
		if c.Metrics.Precision < 0 || c.Metrics.Precision > 1 {
			t.Errorf("precision %v out of range", c.Metrics.Precision)
		}
	}
	text := RenderFigure2(cells, env.Scale)
	if !strings.Contains(text, "bridges / Precision") {
		t.Errorf("render:\n%s", text)
	}
}

func TestFigure3(t *testing.T) {
	if testing.Short() {
		t.Skip("comparative sweep in -short mode")
	}
	env := benchEnv()
	points, err := Figure3(env)
	if err != nil {
		t.Fatal(err)
	}
	methods := map[string]bool{}
	datasets := map[string]bool{}
	for _, p := range points {
		methods[p.Method] = true
		datasets[p.Dataset] = true
	}
	for _, m := range []string{"RENUVER", "Derand", "Holoclean"} {
		if !methods[m] {
			t.Errorf("method %s missing from Figure 3", m)
		}
	}
	if !methods["kNN(k=5)"] {
		t.Error("kNN missing from the Glass panel")
	}
	if !datasets["restaurant"] || !datasets["glass"] {
		t.Errorf("datasets = %v", datasets)
	}
	text := RenderFigure3(points, env.Scale)
	if !strings.Contains(text, "glass / Recall") {
		t.Errorf("render:\n%s", text)
	}
}

func TestTable4(t *testing.T) {
	if testing.Short() {
		t.Skip("stress sweep in -short mode")
	}
	env := benchEnv()
	rows, err := Table4(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	// Every method appears, every param of a non-budget-hit method too.
	perMethod := map[string]int{}
	for _, r := range rows {
		perMethod[r.Method]++
	}
	if len(perMethod) != 3 {
		t.Errorf("methods = %v", perMethod)
	}
	for m, c := range perMethod {
		if c != len(env.Scale.StressRates) {
			t.Errorf("%s has %d rows, want %d", m, c, len(env.Scale.StressRates))
		}
	}
	text := RenderStress(rows)
	if !strings.Contains(text, "RENUVER") {
		t.Errorf("render:\n%s", text)
	}
}

func TestTable5(t *testing.T) {
	if testing.Short() {
		t.Skip("stress sweep in -short mode")
	}
	env := benchEnv()
	rows, err := Table5(env)
	if err != nil {
		t.Fatal(err)
	}
	want := 3 * len(env.Scale.PhysicianSlices)
	if len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
}

func TestTable4BudgetMarkers(t *testing.T) {
	// A 1 ns time budget must TL every run and backfill the higher rates.
	env := benchEnv()
	env.Scale.Budget = eval.Budget{TimeLimit: time.Nanosecond}
	rows, err := Table4(env)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Marker != "TL" {
			t.Errorf("row %+v not TL under 1ns budget", r)
		}
	}
	text := RenderStress(rows)
	if !strings.Contains(text, "TL") {
		t.Errorf("render lacks TL:\n%s", text)
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep in -short mode")
	}
	env := benchEnv()
	rows, err := Ablations(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ablationConfigs()) {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Config != "paper-faithful" {
		t.Errorf("reference config first, got %q", rows[0].Config)
	}
	text := RenderAblations(rows)
	if !strings.Contains(text, "no-verify") {
		t.Errorf("render:\n%s", text)
	}
}

func TestExtendedComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("extended sweep in -short mode")
	}
	env := benchEnv()
	points, err := ExtendedComparison(env)
	if err != nil {
		t.Fatal(err)
	}
	methods := map[string]bool{}
	for _, p := range points {
		methods[p.Method] = true
	}
	for _, want := range []string{"RENUVER", "Derand", "Holoclean", "kNN(k=5)", "Mean/Mode", "LocalLR(k=10)"} {
		if !methods[want] {
			t.Errorf("method %s missing", want)
		}
	}
	if want := 6 * len(env.Scale.Rates); len(points) != want {
		t.Errorf("points = %d, want %d", len(points), want)
	}
	text := RenderExtended(points, env.Scale)
	if !strings.Contains(text, "Mean/Mode") {
		t.Errorf("render:\n%s", text)
	}
}

func TestFigure2AllPanels(t *testing.T) {
	if testing.Short() {
		t.Skip("four-panel sweep in -short mode")
	}
	env := benchEnv()
	cells, err := Figure2(env)
	if err != nil {
		t.Fatal(err)
	}
	datasets := map[string]bool{}
	for _, c := range cells {
		datasets[c.Dataset] = true
	}
	for _, want := range Figure2Datasets {
		if !datasets[want] {
			t.Errorf("panel %s missing", want)
		}
	}
}

func TestMechanismStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("mechanism sweep in -short mode")
	}
	env := benchEnv()
	rows, err := MechanismStudy(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want MCAR/MAR/MNAR", len(rows))
	}
	if rows[0].Mechanism != eval.MCAR {
		t.Errorf("first mechanism = %v", rows[0].Mechanism)
	}
	text := RenderMechanisms(rows)
	if !strings.Contains(text, "MNAR") {
		t.Errorf("render:\n%s", text)
	}
}

func TestComplexityScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling sweep in -short mode")
	}
	env := benchEnv()
	rows, err := ComplexityScaling(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Tuples <= rows[i-1].Tuples {
			t.Errorf("tuple counts not increasing: %+v", rows)
		}
	}
	if !strings.Contains(RenderScaling(rows), "Tuples") {
		t.Error("render broken")
	}
}

func mustVal(s string) dataset.Value { return dataset.NewString(s) }
