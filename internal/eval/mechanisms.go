package eval

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/dataset"
)

// Mechanism names a missingness mechanism. The paper's evaluation
// injects uniformly at random (MCAR); MAR and MNAR are the standard
// harder settings of the imputation literature (Donders et al. [12]):
// under MAR missingness depends on an *observed* attribute, under MNAR
// on the removed value itself.
type Mechanism int

const (
	// MCAR removes cells uniformly at random (the paper's protocol).
	MCAR Mechanism = iota
	// MAR removes cells of the target attribute preferentially in the
	// tuples whose *driver* attribute has the most common values —
	// missingness correlates with observed data.
	MAR
	// MNAR removes preferentially the rarest values of the target
	// attribute itself (for numerics: the largest values) — missingness
	// correlates with the removed data.
	MNAR
)

// String names the mechanism.
func (m Mechanism) String() string {
	switch m {
	case MCAR:
		return "MCAR"
	case MAR:
		return "MAR"
	case MNAR:
		return "MNAR"
	default:
		return fmt.Sprintf("mechanism(%d)", int(m))
	}
}

// InjectWithMechanism removes rate·(observed cells) values under the
// mechanism. MCAR delegates to Inject. For MAR and MNAR the candidate
// cells are weighted (2/3 of removals come from the biased half, 1/3
// uniform, so every cell keeps a nonzero removal probability — the
// standard soft-bias protocol).
func InjectWithMechanism(rel *dataset.Relation, rate float64, mech Mechanism, seed int64) (*dataset.Relation, []Injected, error) {
	if mech == MCAR {
		return Inject(rel, rate, seed)
	}
	if rate < 0 || rate > 1 {
		return nil, nil, fmt.Errorf("eval: rate %v outside [0,1]", rate)
	}
	var observed []dataset.Cell
	for i := 0; i < rel.Len(); i++ {
		t := rel.Row(i)
		for j := range t {
			if !t[j].IsNull() {
				observed = append(observed, dataset.Cell{Row: i, Attr: j})
			}
		}
	}
	count := int(float64(len(observed))*rate + 0.5)
	if count > len(observed) {
		count = len(observed)
	}
	rng := rand.New(rand.NewSource(seed))

	scores := make([]float64, len(observed))
	switch mech {
	case MAR:
		driverOf := marDrivers(rel)
		freq := valueFrequencies(rel)
		for k, cell := range observed {
			driver := driverOf[cell.Attr]
			dv := rel.Get(cell.Row, driver)
			if dv.IsNull() {
				scores[k] = 0
				continue
			}
			scores[k] = float64(freq[driver][dv.String()])
		}
	case MNAR:
		freq := valueFrequencies(rel)
		for k, cell := range observed {
			v := rel.Get(cell.Row, cell.Attr)
			if v.Kind().Numeric() {
				scores[k] = v.Float() // larger values more likely missing
			} else {
				scores[k] = -float64(freq[cell.Attr][v.String()]) // rarer first
			}
		}
	default:
		return nil, nil, fmt.Errorf("eval: unknown mechanism %v", mech)
	}

	// Rank by score descending with random jitter for ties, then take
	// 2/3 biased + 1/3 uniform.
	idx := make([]int, len(observed))
	for i := range idx {
		idx[i] = i
	}
	jitter := make([]float64, len(observed))
	for i := range jitter {
		jitter[i] = rng.Float64()
	}
	sort.Slice(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] > scores[idx[b]]
		}
		return jitter[idx[a]] > jitter[idx[b]]
	})

	biased := count * 2 / 3
	chosen := make(map[int]bool, count)
	for _, k := range idx[:min(biased, len(idx))] {
		chosen[k] = true
	}
	for len(chosen) < count {
		chosen[rng.Intn(len(observed))] = true
	}

	out := rel.Clone()
	injected := make([]Injected, 0, count)
	// Deterministic order: row-major over the chosen cells.
	keys := make([]int, 0, len(chosen))
	for k := range chosen {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		cell := observed[k]
		injected = append(injected, Injected{Cell: cell, Truth: rel.Get(cell.Row, cell.Attr)})
		out.Set(cell.Row, cell.Attr, dataset.Null)
	}
	return out, injected, nil
}

// marDrivers picks, per attribute, the driver attribute whose values
// steer its missingness: simply the next attribute cyclically — a fixed,
// documented choice that keeps the mechanism reproducible.
func marDrivers(rel *dataset.Relation) []int {
	m := rel.Schema().Len()
	out := make([]int, m)
	for a := 0; a < m; a++ {
		out[a] = (a + 1) % m
	}
	return out
}

// valueFrequencies counts each attribute's observed value multiplicities.
func valueFrequencies(rel *dataset.Relation) []map[string]int {
	m := rel.Schema().Len()
	out := make([]map[string]int, m)
	for a := 0; a < m; a++ {
		out[a] = map[string]int{}
	}
	for i := 0; i < rel.Len(); i++ {
		t := rel.Row(i)
		for a := range t {
			if !t[a].IsNull() {
				out[a][t[a].String()]++
			}
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
