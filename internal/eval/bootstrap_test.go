package eval

import (
	"math/rand"
	"testing"
)

func TestBootstrapF1CIBasics(t *testing.T) {
	ms := []Metrics{{F1: 0.6}, {F1: 0.7}, {F1: 0.8}, {F1: 0.65}, {F1: 0.75}}
	lo, hi := BootstrapF1CI(ms, 2000, 0.95, 1)
	if lo > hi {
		t.Fatalf("lo %v > hi %v", lo, hi)
	}
	// The interval must bracket the sample mean (0.7) and stay inside
	// the sample range.
	if lo > 0.7 || hi < 0.7 {
		t.Errorf("CI [%v, %v] does not bracket the mean", lo, hi)
	}
	if lo < 0.6 || hi > 0.8 {
		t.Errorf("CI [%v, %v] escapes the sample range", lo, hi)
	}
}

func TestBootstrapF1CIDegenerate(t *testing.T) {
	if lo, hi := BootstrapF1CI(nil, 100, 0.95, 1); lo != 0 || hi != 0 {
		t.Errorf("empty CI = [%v, %v]", lo, hi)
	}
	if lo, hi := BootstrapF1CI([]Metrics{{F1: 0.42}}, 100, 0.95, 1); lo != 0.42 || hi != 0.42 {
		t.Errorf("singleton CI = [%v, %v]", lo, hi)
	}
	// Identical runs: zero-width interval.
	same := []Metrics{{F1: 0.5}, {F1: 0.5}, {F1: 0.5}}
	if lo, hi := BootstrapF1CI(same, 100, 0.95, 1); lo != 0.5 || hi != 0.5 {
		t.Errorf("constant CI = [%v, %v]", lo, hi)
	}
	// Bad params fall back to defaults without panicking.
	if lo, hi := BootstrapF1CI(same, -1, 2.0, 1); lo != 0.5 || hi != 0.5 {
		t.Errorf("fallback CI = [%v, %v]", lo, hi)
	}
}

func TestBootstrapF1CIDeterminismAndWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var ms []Metrics
	for i := 0; i < 10; i++ {
		ms = append(ms, Metrics{F1: rng.Float64()})
	}
	lo1, hi1 := BootstrapF1CI(ms, 500, 0.95, 7)
	lo2, hi2 := BootstrapF1CI(ms, 500, 0.95, 7)
	if lo1 != lo2 || hi1 != hi2 {
		t.Error("same seed diverged")
	}
	// A 50% interval is no wider than a 95% one.
	lo50, hi50 := BootstrapF1CI(ms, 500, 0.50, 7)
	if hi50-lo50 > hi1-lo1 {
		t.Errorf("50%% CI [%v,%v] wider than 95%% [%v,%v]", lo50, hi50, lo1, hi1)
	}
}
