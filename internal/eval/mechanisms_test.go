package eval

import (
	"testing"

	"repro/internal/dataset"
)

func mechSample(t testing.TB) *dataset.Relation {
	t.Helper()
	rel := dataset.NewRelation(dataset.NewSchema(
		dataset.Attribute{Name: "Group", Kind: dataset.KindString},
		dataset.Attribute{Name: "Score", Kind: dataset.KindFloat},
	))
	// 40 common-group rows with low scores, 10 rare-group with high.
	for i := 0; i < 40; i++ {
		rel.MustAppend(dataset.Tuple{dataset.NewString("common"), dataset.NewFloat(float64(i % 5))})
	}
	for i := 0; i < 10; i++ {
		rel.MustAppend(dataset.Tuple{dataset.NewString("rare"), dataset.NewFloat(100 + float64(i))})
	}
	return rel
}

func TestMechanismString(t *testing.T) {
	if MCAR.String() != "MCAR" || MAR.String() != "MAR" || MNAR.String() != "MNAR" {
		t.Error("mechanism names wrong")
	}
	if Mechanism(9).String() == "" {
		t.Error("unknown mechanism unnamed")
	}
}

func TestMCARDelegates(t *testing.T) {
	rel := mechSample(t)
	a, ai, err := InjectWithMechanism(rel, 0.1, MCAR, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, bi, err := Inject(rel, 0.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) || len(ai) != len(bi) {
		t.Error("MCAR mechanism diverged from Inject")
	}
}

func TestMechanismCountsAndTruth(t *testing.T) {
	rel := mechSample(t)
	for _, mech := range []Mechanism{MAR, MNAR} {
		injRel, injected, err := InjectWithMechanism(rel, 0.2, mech, 3)
		if err != nil {
			t.Fatal(err)
		}
		cells := float64(rel.Len() * rel.Schema().Len())
		want := int(cells*0.2 + 0.5)
		if len(injected) != want {
			t.Errorf("%v: injected %d, want %d", mech, len(injected), want)
		}
		for _, inj := range injected {
			if !injRel.Get(inj.Cell.Row, inj.Cell.Attr).IsNull() {
				t.Errorf("%v: cell not nulled", mech)
			}
			if inj.Truth.IsNull() {
				t.Errorf("%v: null truth", mech)
			}
		}
	}
}

func TestMNARBiasTowardLargeNumerics(t *testing.T) {
	rel := mechSample(t)
	_, injected, err := InjectWithMechanism(rel, 0.2, MNAR, 5)
	if err != nil {
		t.Fatal(err)
	}
	// The high scores (>=100) live in 10 of 50 Score cells; under MNAR
	// the biased 2/3 of removals must hit them disproportionately.
	high := 0
	scoreCells := 0
	for _, inj := range injected {
		if inj.Cell.Attr != 1 {
			continue
		}
		scoreCells++
		if inj.Truth.Float() >= 100 {
			high++
		}
	}
	if scoreCells == 0 {
		t.Skip("no score cells drawn (possible with heavy string bias)")
	}
	if float64(high)/float64(scoreCells) <= 0.2 {
		t.Errorf("MNAR high-value share = %d/%d, want clearly above the 20%% base rate",
			high, scoreCells)
	}
}

func TestMARBiasTowardCommonDriver(t *testing.T) {
	rel := mechSample(t)
	_, injected, err := InjectWithMechanism(rel, 0.2, MAR, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Score's driver is Group (next attribute cyclically): cells in
	// "common"-group rows (80% of rows) should dominate the Score
	// removals beyond their base share.
	common, scoreCells := 0, 0
	for _, inj := range injected {
		if inj.Cell.Attr != 1 {
			continue
		}
		scoreCells++
		if rel.Get(inj.Cell.Row, 0).Str() == "common" {
			common++
		}
	}
	if scoreCells > 0 && float64(common)/float64(scoreCells) < 0.8 {
		t.Errorf("MAR common-driver share = %d/%d, want >= base rate", common, scoreCells)
	}
}

func TestMechanismDeterminism(t *testing.T) {
	rel := mechSample(t)
	for _, mech := range []Mechanism{MAR, MNAR} {
		_, a, err := InjectWithMechanism(rel, 0.15, mech, 9)
		if err != nil {
			t.Fatal(err)
		}
		_, b, err := InjectWithMechanism(rel, 0.15, mech, 9)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("%v: lengths differ", mech)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: same seed diverged", mech)
			}
		}
	}
}

func TestMechanismValidation(t *testing.T) {
	rel := mechSample(t)
	if _, _, err := InjectWithMechanism(rel, -0.1, MAR, 1); err == nil {
		t.Error("negative rate accepted")
	}
	if _, _, err := InjectWithMechanism(rel, 0.1, Mechanism(42), 1); err == nil {
		t.Error("unknown mechanism accepted")
	}
}
