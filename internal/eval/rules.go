package eval

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/dataset"
)

// Validator implements the paper's rule-based framework for the automatic
// verification of imputation results (Sec. 6.1): an imputed value is
// judged correct against the expected one not only on strict equality but
// also through per-attribute admissibility rules —
//
//	value sets      — spellings with the same meaning ("new york", "ny");
//	custom regexes  — structural variation is admissible as long as the
//	                  regex-matched parts coincide (e.g. phone separators);
//	delta variation — numeric attributes may deviate by at most ±delta.
//
// Attributes without a rule fall back to strict equality.
type Validator struct {
	sets   map[string][][]string // attr -> groups of equivalent spellings
	regexs map[string]*regexp.Regexp
	deltas map[string]float64
}

// NewValidator returns an empty validator (strict equality everywhere).
func NewValidator() *Validator {
	return &Validator{
		sets:   map[string][][]string{},
		regexs: map[string]*regexp.Regexp{},
		deltas: map[string]float64{},
	}
}

// AddValueSet registers a group of equivalent spellings for the
// attribute. Comparison is case-insensitive.
func (v *Validator) AddValueSet(attr string, values ...string) {
	group := make([]string, len(values))
	for i, s := range values {
		group[i] = strings.ToLower(strings.TrimSpace(s))
	}
	v.sets[attr] = append(v.sets[attr], group)
}

// SetRegex registers the admissibility regex for the attribute: two
// values are equivalent when the concatenations of their regex matches
// coincide.
func (v *Validator) SetRegex(attr, pattern string) error {
	re, err := regexp.Compile(pattern)
	if err != nil {
		return fmt.Errorf("eval: rule regex for %q: %w", attr, err)
	}
	v.regexs[attr] = re
	return nil
}

// SetDelta registers the admissible numeric deviation for the attribute.
func (v *Validator) SetDelta(attr string, delta float64) error {
	if delta < 0 {
		return fmt.Errorf("eval: negative delta %v for %q", delta, attr)
	}
	v.deltas[attr] = delta
	return nil
}

// Correct judges an imputed value against the expected one for the named
// attribute. A null imputed value is never correct.
func (v *Validator) Correct(attr string, imputed, expected dataset.Value) bool {
	if imputed.IsNull() {
		return false
	}
	if imputed.Equal(expected) {
		return true
	}
	if delta, ok := v.deltas[attr]; ok &&
		imputed.Kind().Numeric() && expected.Kind().Numeric() {
		if math.Abs(imputed.Float()-expected.Float()) <= delta {
			return true
		}
	}
	if re, ok := v.regexs[attr]; ok {
		if extract(re, imputed.String()) == extract(re, expected.String()) {
			return true
		}
	}
	for _, group := range v.sets[attr] {
		if inGroup(group, imputed.String()) && inGroup(group, expected.String()) {
			return true
		}
	}
	return false
}

func extract(re *regexp.Regexp, s string) string {
	return strings.Join(re.FindAllString(s, -1), "")
}

func inGroup(group []string, s string) bool {
	s = strings.ToLower(strings.TrimSpace(s))
	for _, g := range group {
		if g == s {
			return true
		}
	}
	return false
}

// ReadRules parses a rule file. One rule per line:
//
//	set   <Attr>: spelling | spelling | spelling
//	regex <Attr>: <pattern>
//	delta <Attr>: <number>
//
// Blank lines and lines starting with '#' are ignored. Attribute names
// may contain spaces (everything up to the first ':').
func ReadRules(r io.Reader) (*Validator, error) {
	v := NewValidator()
	sc := bufio.NewScanner(r)
	lineNum := 0
	for sc.Scan() {
		lineNum++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		kind, rest, found := strings.Cut(line, " ")
		if !found {
			return nil, fmt.Errorf("eval: rules line %d: malformed %q", lineNum, line)
		}
		attr, body, found := strings.Cut(rest, ":")
		if !found {
			return nil, fmt.Errorf("eval: rules line %d: missing ':'", lineNum)
		}
		attr = strings.TrimSpace(attr)
		body = strings.TrimSpace(body)
		switch kind {
		case "set":
			parts := strings.Split(body, "|")
			if len(parts) < 2 {
				return nil, fmt.Errorf("eval: rules line %d: value set needs >=2 spellings", lineNum)
			}
			v.AddValueSet(attr, parts...)
		case "regex":
			if err := v.SetRegex(attr, body); err != nil {
				return nil, fmt.Errorf("eval: rules line %d: %w", lineNum, err)
			}
		case "delta":
			d, err := strconv.ParseFloat(body, 64)
			if err != nil {
				return nil, fmt.Errorf("eval: rules line %d: bad delta: %w", lineNum, err)
			}
			if err := v.SetDelta(attr, d); err != nil {
				return nil, fmt.Errorf("eval: rules line %d: %w", lineNum, err)
			}
		default:
			return nil, fmt.Errorf("eval: rules line %d: unknown rule kind %q", lineNum, kind)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return v, nil
}

// ReadRulesFile is ReadRules over a file path.
func ReadRulesFile(path string) (*Validator, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadRules(f)
}
