package eval

import (
	"strings"
	"testing"

	"repro/internal/dataset"
)

func TestValidatorStrictEqualityDefault(t *testing.T) {
	v := NewValidator()
	if !v.Correct("A", dataset.NewString("x"), dataset.NewString("x")) {
		t.Error("equal strings judged wrong")
	}
	if v.Correct("A", dataset.NewString("x"), dataset.NewString("y")) {
		t.Error("different strings judged correct")
	}
	if !v.Correct("A", dataset.NewInt(5), dataset.NewInt(5)) {
		t.Error("equal ints judged wrong")
	}
	if v.Correct("A", dataset.Null, dataset.NewString("x")) {
		t.Error("null imputation judged correct")
	}
}

func TestValueSetRule(t *testing.T) {
	// The paper's example: "new york", "new york city" and "ny" express
	// the same concept.
	v := NewValidator()
	v.AddValueSet("City", "new york", "new york city", "ny")
	if !v.Correct("City", dataset.NewString("NY"), dataset.NewString("New York")) {
		t.Error("same-set values judged wrong (case-insensitivity expected)")
	}
	if v.Correct("City", dataset.NewString("la"), dataset.NewString("ny")) {
		t.Error("out-of-set value judged correct")
	}
	// The rule only applies to its attribute.
	if v.Correct("Other", dataset.NewString("ny"), dataset.NewString("new york")) {
		t.Error("rule leaked to another attribute")
	}
}

func TestRegexRule(t *testing.T) {
	// The paper's Phone example: same digits, different separators.
	v := NewValidator()
	if err := v.SetRegex("Phone", "[0-9]"); err != nil {
		t.Fatal(err)
	}
	if !v.Correct("Phone", dataset.NewString("213/848-6677"), dataset.NewString("213-848-6677")) {
		t.Error("same digits with different separators judged wrong")
	}
	if v.Correct("Phone", dataset.NewString("213/848-6677"), dataset.NewString("213-848-6678")) {
		t.Error("different digits judged correct")
	}
	if err := v.SetRegex("Bad", "[unclosed"); err == nil {
		t.Error("invalid regex accepted")
	}
}

func TestDeltaRule(t *testing.T) {
	// The paper's example: Horsepower admits ±25.
	v := NewValidator()
	if err := v.SetDelta("Horsepower", 25); err != nil {
		t.Fatal(err)
	}
	if !v.Correct("Horsepower", dataset.NewInt(150), dataset.NewInt(130)) {
		t.Error("within-delta value judged wrong")
	}
	if !v.Correct("Horsepower", dataset.NewFloat(150), dataset.NewInt(175)) {
		t.Error("boundary delta judged wrong")
	}
	if v.Correct("Horsepower", dataset.NewInt(150), dataset.NewInt(180)) {
		t.Error("out-of-delta value judged correct")
	}
	if v.Correct("Horsepower", dataset.NewString("150"), dataset.NewInt(150)) {
		t.Error("delta applied to non-numeric value")
	}
	if err := v.SetDelta("X", -1); err == nil {
		t.Error("negative delta accepted")
	}
}

func TestReadRules(t *testing.T) {
	doc := `# restaurant rules
set City: new york | new york city | ny
regex Phone: [0-9]
delta Class: 1
`
	v, err := ReadRules(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Correct("City", dataset.NewString("ny"), dataset.NewString("new york city")) {
		t.Error("set rule not loaded")
	}
	if !v.Correct("Phone", dataset.NewString("12-3"), dataset.NewString("1/23")) {
		t.Error("regex rule not loaded")
	}
	if !v.Correct("Class", dataset.NewInt(5), dataset.NewInt(6)) {
		t.Error("delta rule not loaded")
	}
}

func TestReadRulesErrors(t *testing.T) {
	cases := []string{
		"set City\n",               // missing colon
		"set City: only-one\n",     // one spelling
		"regex Phone: [unclosed\n", // bad regex
		"delta Class: abc\n",       // bad number
		"delta Class: -4\n",        // negative
		"warp Speed: 9\n",          // unknown kind
		"nonsense-without-space\n", // malformed
	}
	for _, doc := range cases {
		if _, err := ReadRules(strings.NewReader(doc)); err == nil {
			t.Errorf("ReadRules(%q) accepted", doc)
		}
	}
}

func TestReadRulesFileMissing(t *testing.T) {
	if _, err := ReadRulesFile("/nonexistent/rules"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestAttributeNamesWithSpaces(t *testing.T) {
	doc := "delta CLEAR G: 2\n"
	v, err := ReadRules(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if !v.Correct("CLEAR G", dataset.NewInt(4), dataset.NewInt(5)) {
		t.Error("spaced attribute rule not applied")
	}
}
