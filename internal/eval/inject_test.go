package eval

import (
	"testing"

	"repro/internal/dataset"
)

func grid(t testing.TB, rows int) *dataset.Relation {
	t.Helper()
	rel := dataset.NewRelation(dataset.NewSchema(
		dataset.Attribute{Name: "A", Kind: dataset.KindString},
		dataset.Attribute{Name: "B", Kind: dataset.KindInt},
	))
	for i := 0; i < rows; i++ {
		rel.MustAppend(dataset.Tuple{
			dataset.NewString("v"), dataset.NewInt(int64(i)),
		})
	}
	return rel
}

func TestInjectCountAndTruth(t *testing.T) {
	rel := grid(t, 50) // 100 observed cells
	injRel, injected, err := Inject(rel, 0.10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(injected) != 10 {
		t.Fatalf("injected %d cells, want 10", len(injected))
	}
	if injRel.CountMissing() != 10 {
		t.Errorf("relation has %d nulls", injRel.CountMissing())
	}
	for _, inj := range injected {
		if !injRel.Get(inj.Cell.Row, inj.Cell.Attr).IsNull() {
			t.Errorf("cell %+v not nulled", inj.Cell)
		}
		if !rel.Get(inj.Cell.Row, inj.Cell.Attr).Equal(inj.Truth) {
			t.Errorf("truth mismatch at %+v", inj.Cell)
		}
	}
	if rel.CountMissing() != 0 {
		t.Error("input mutated")
	}
}

func TestInjectNeverPicksExistingNulls(t *testing.T) {
	rel, err := dataset.ReadCSVString("A,B\nx,\ny,2\n")
	if err != nil {
		t.Fatal(err)
	}
	injRel, injected, err := Inject(rel, 1.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(injected) != 3 { // 3 observed cells
		t.Fatalf("injected %d, want 3", len(injected))
	}
	for _, inj := range injected {
		if inj.Truth.IsNull() {
			t.Error("injected an already-null cell")
		}
	}
	if injRel.CountMissing() != 4 {
		t.Errorf("total nulls = %d, want 4", injRel.CountMissing())
	}
}

func TestInjectRateValidation(t *testing.T) {
	rel := grid(t, 5)
	if _, _, err := Inject(rel, -0.1, 1); err == nil {
		t.Error("negative rate accepted")
	}
	if _, _, err := Inject(rel, 1.5, 1); err == nil {
		t.Error("rate > 1 accepted")
	}
}

func TestInjectSeedDeterminism(t *testing.T) {
	rel := grid(t, 30)
	_, a, err := Inject(rel, 0.2, 9)
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := Inject(rel, 0.2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
	_, c, err := Inject(rel, 0.2, 10)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical injections (suspicious)")
	}
}

func TestInjectGrid(t *testing.T) {
	rel := grid(t, 40)
	variants, err := InjectGrid(rel, []float64{0.01, 0.05}, 5, 77)
	if err != nil {
		t.Fatal(err)
	}
	if len(variants) != 10 {
		t.Fatalf("variants = %d, want 10", len(variants))
	}
	seeds := map[int64]bool{}
	for _, v := range variants {
		if seeds[v.Seed] {
			t.Errorf("duplicate seed %d", v.Seed)
		}
		seeds[v.Seed] = true
		if v.Rate != 0.01 && v.Rate != 0.05 {
			t.Errorf("unexpected rate %v", v.Rate)
		}
	}
	// 1% of 80 cells = 1 cell (rounded); 5% = 4 cells.
	for _, v := range variants {
		want := int(float64(80)*v.Rate + 0.5)
		if len(v.Injected) != want {
			t.Errorf("rate %v injected %d, want %d", v.Rate, len(v.Injected), want)
		}
	}
}
