package eval

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/dataset"
)

func TestScorePaperDefinitions(t *testing.T) {
	// 4 injected cells; the method imputes 3, of which 2 are correct:
	// precision = 2/3, recall = 2/4.
	truth, err := dataset.ReadCSVString("A,B\nx,1\ny,2\nz,3\nw,4\n")
	if err != nil {
		t.Fatal(err)
	}
	injected := []Injected{
		{Cell: dataset.Cell{Row: 0, Attr: 0}, Truth: dataset.NewString("x")},
		{Cell: dataset.Cell{Row: 1, Attr: 0}, Truth: dataset.NewString("y")},
		{Cell: dataset.Cell{Row: 2, Attr: 0}, Truth: dataset.NewString("z")},
		{Cell: dataset.Cell{Row: 3, Attr: 0}, Truth: dataset.NewString("w")},
	}
	imputed := truth.Clone()
	imputed.Set(0, 0, dataset.NewString("x"))     // correct
	imputed.Set(1, 0, dataset.NewString("y"))     // correct
	imputed.Set(2, 0, dataset.NewString("WRONG")) // wrong
	imputed.Set(3, 0, dataset.Null)               // unimputed

	m := Score(imputed, injected, NewValidator())
	if m.Missing != 4 || m.Imputed != 3 || m.Correct != 2 {
		t.Fatalf("counts = %+v", m)
	}
	if math.Abs(m.Precision-2.0/3.0) > 1e-12 {
		t.Errorf("precision = %v", m.Precision)
	}
	if m.Recall != 0.5 {
		t.Errorf("recall = %v", m.Recall)
	}
	wantF1 := 2 * (2.0 / 3.0) * 0.5 / (2.0/3.0 + 0.5)
	if math.Abs(m.F1-wantF1) > 1e-12 {
		t.Errorf("F1 = %v, want %v", m.F1, wantF1)
	}
	if !strings.Contains(m.String(), "P=0.667") {
		t.Errorf("String() = %q", m.String())
	}
}

func TestScoreEmptyAndDegenerate(t *testing.T) {
	rel, err := dataset.ReadCSVString("A\nx\n")
	if err != nil {
		t.Fatal(err)
	}
	m := Score(rel, nil, NewValidator())
	if m.Precision != 0 || m.Recall != 0 || m.F1 != 0 {
		t.Errorf("empty injection metrics = %+v", m)
	}
	// Nothing imputed: precision 0 (0/0 -> 0 by convention), recall 0.
	injected := []Injected{{Cell: dataset.Cell{Row: 0, Attr: 0}, Truth: dataset.NewString("x")}}
	empty := rel.Clone()
	empty.Set(0, 0, dataset.Null)
	m = Score(empty, injected, NewValidator())
	if m.Imputed != 0 || m.Precision != 0 || m.F1 != 0 {
		t.Errorf("all-abstain metrics = %+v", m)
	}
}

func TestScoreUsesValidatorRules(t *testing.T) {
	rel, err := dataset.ReadCSVString("Phone\n213-848-6677\n")
	if err != nil {
		t.Fatal(err)
	}
	injected := []Injected{{Cell: dataset.Cell{Row: 0, Attr: 0}, Truth: dataset.NewString("213-848-6677")}}
	imputed := rel.Clone()
	imputed.Set(0, 0, dataset.NewString("213/848-6677"))

	strict := Score(imputed, injected, NewValidator())
	if strict.Correct != 0 {
		t.Error("strict validator accepted a separator variant")
	}
	v := NewValidator()
	if err := v.SetRegex("Phone", "[0-9]"); err != nil {
		t.Fatal(err)
	}
	lax := Score(imputed, injected, v)
	if lax.Correct != 1 {
		t.Error("regex validator rejected the separator variant")
	}
}

func TestAverage(t *testing.T) {
	ms := []Metrics{
		{Missing: 10, Imputed: 8, Correct: 6, Precision: 0.75, Recall: 0.6, F1: 2 * 0.75 * 0.6 / 1.35},
		{Missing: 10, Imputed: 4, Correct: 4, Precision: 1.0, Recall: 0.4, F1: 2 * 1.0 * 0.4 / 1.4},
	}
	avg := Average(ms)
	if avg.Missing != 10 || avg.Imputed != 6 || avg.Correct != 5 {
		t.Errorf("averaged counts = %+v", avg)
	}
	if math.Abs(avg.Precision-0.875) > 1e-12 {
		t.Errorf("averaged precision = %v", avg.Precision)
	}
	if got := Average(nil); got != (Metrics{}) {
		t.Errorf("Average(nil) = %+v", got)
	}
}

// sleepMethod is a test double that burns wall-clock time and memory.
type sleepMethod struct {
	d     time.Duration
	alloc int
	fail  bool
}

func (s sleepMethod) Name() string { return "sleepy" }

// Impute deliberately ignores ctx — it stands in for a method that does
// not cooperate, exercising Run's abandon-after-grace watchdog.
func (s sleepMethod) Impute(_ context.Context, rel *dataset.Relation) (*dataset.Relation, error) {
	if s.fail {
		return nil, errors.New("boom")
	}
	if s.alloc > 0 {
		buf := make([]byte, s.alloc)
		for i := range buf {
			buf[i] = byte(i)
		}
		_ = buf
	}
	time.Sleep(s.d)
	return rel.Clone(), nil
}

func variantOf(t *testing.T) Variant {
	t.Helper()
	rel, err := dataset.ReadCSVString("A\nx\n")
	if err != nil {
		t.Fatal(err)
	}
	injRel := rel.Clone()
	injRel.Set(0, 0, dataset.Null)
	return Variant{Rate: 0.5, Relation: injRel,
		Injected: []Injected{{Cell: dataset.Cell{Row: 0, Attr: 0}, Truth: dataset.NewString("x")}}}
}

func TestRunMeasuresAndScores(t *testing.T) {
	res := Run(sleepMethod{d: 10 * time.Millisecond}, variantOf(t), NewValidator(), Budget{})
	if res.Err != nil || res.TimedOut || res.OverMem {
		t.Fatalf("unexpected markers: %+v", res)
	}
	if res.Elapsed < 10*time.Millisecond {
		t.Errorf("elapsed = %v", res.Elapsed)
	}
	if res.Metrics.Missing != 1 {
		t.Errorf("metrics = %+v", res.Metrics)
	}
	if res.Marker() != "" {
		t.Errorf("marker = %q", res.Marker())
	}
}

func TestRunTimeLimit(t *testing.T) {
	res := Run(sleepMethod{d: 300 * time.Millisecond}, variantOf(t), NewValidator(),
		Budget{TimeLimit: 20 * time.Millisecond})
	if !res.TimedOut {
		t.Fatal("TL not marked")
	}
	if res.Marker() != "TL" {
		t.Errorf("marker = %q", res.Marker())
	}
	if res.Metrics.Imputed != 0 {
		t.Error("TL run reported metrics")
	}
}

func TestRunErrMarker(t *testing.T) {
	res := Run(sleepMethod{fail: true}, variantOf(t), NewValidator(), Budget{})
	if res.Err == nil || res.Marker() != "ERR" {
		t.Errorf("res = %+v", res)
	}
}

func TestRunMemLimit(t *testing.T) {
	// 64 MB allocation against a 1-byte budget must trip ML.
	res := Run(sleepMethod{d: 50 * time.Millisecond, alloc: 64 << 20}, variantOf(t),
		NewValidator(), Budget{MemLimit: 1})
	if !res.OverMem {
		t.Fatal("ML not marked")
	}
	if res.Marker() != "ML" {
		t.Errorf("marker = %q", res.Marker())
	}
}

func TestRunGridGroupsByRate(t *testing.T) {
	v1, v2 := variantOf(t), variantOf(t)
	v2.Rate = 0.9
	results := RunGrid(sleepMethod{d: time.Millisecond}, []Variant{v1, v2, v1}, NewValidator(), Budget{})
	if len(results) != 2 {
		t.Fatalf("results = %+v", results)
	}
	if results[0].Rate != 0.5 || results[1].Rate != 0.9 {
		t.Errorf("rates = %v, %v", results[0].Rate, results[1].Rate)
	}
	if results[0].Marker != "" {
		t.Errorf("marker = %q", results[0].Marker)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		in   uint64
		want string
	}{
		{512, "512 B"},
		{2 << 10, "2.00 KB"},
		{3 << 20, "3.00 MB"},
		{1482551501, "1.38 GB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.in); got != c.want {
			t.Errorf("FormatBytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}
