package eval

import (
	"context"
	"testing"
	"time"

	"repro/internal/dataset"
)

// slowCtxMethod cooperates with cancellation: it works cell by cell and
// returns a partial result on deadline.
type slowCtxMethod struct {
	perCell time.Duration
}

func (s slowCtxMethod) Name() string { return "slow-ctx" }
func (s slowCtxMethod) Impute(ctx context.Context, rel *dataset.Relation) (*dataset.Relation, error) {
	out := rel.Clone()
	for _, cell := range rel.MissingCells() {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		time.Sleep(s.perCell)
		out.Set(cell.Row, cell.Attr, dataset.NewString("x"))
	}
	return out, nil
}

// multiCellVariant has several missing cells so the cooperative method
// observes the deadline between cells.
func multiCellVariant(t *testing.T) Variant {
	t.Helper()
	rel, err := dataset.ReadCSVString("A\nx\nx\nx\nx\nx\n")
	if err != nil {
		t.Fatal(err)
	}
	injRel, injected, err := Inject(rel, 1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	return Variant{Rate: 1, Relation: injRel, Injected: injected}
}

func TestRunCooperativeTimeout(t *testing.T) {
	res := Run(slowCtxMethod{perCell: 100 * time.Millisecond}, multiCellVariant(t),
		NewValidator(), Budget{TimeLimit: 20 * time.Millisecond})
	if !res.TimedOut || res.Marker() != "TL" {
		t.Fatalf("res = %+v, want TL", res)
	}
	// The cooperative path returns promptly — well under the per-cell
	// sleep times a watchdog-abandoned goroutine would keep burning.
	if res.Elapsed > time.Second {
		t.Errorf("elapsed = %v, cooperative cancellation too slow", res.Elapsed)
	}
}

func TestRunCooperativeCompletesUnderGenerousBudget(t *testing.T) {
	res := Run(slowCtxMethod{perCell: time.Millisecond}, variantOf(t),
		NewValidator(), Budget{TimeLimit: 5 * time.Second})
	if res.TimedOut || res.Err != nil {
		t.Fatalf("res = %+v", res)
	}
	if res.Metrics.Imputed != 1 {
		t.Errorf("metrics = %+v", res.Metrics)
	}
}
