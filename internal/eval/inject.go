// Package eval provides the paper's evaluation machinery (Sec. 6.1):
// artificial missing-value injection, the rule-based framework for the
// automatic validation of imputation results (value sets, custom regexes,
// numeric deltas), the precision/recall/F1 metrics, and a run harness
// with wall-clock and memory tracking plus the TL/ML budget markers of
// Tables 4-5.
package eval

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
)

// Injected records one artificially removed cell and its ground truth.
type Injected struct {
	Cell  dataset.Cell
	Truth dataset.Value
}

// Inject returns a clone of the relation with rate·(observed cells)
// values turned into nulls, uniformly at random, plus the ground-truth
// list. Cells that are already null are never selected, matching the
// paper's injection protocol ("randomly selecting a certain percentage of
// values in the dataset to be turned into missing values").
func Inject(rel *dataset.Relation, rate float64, seed int64) (*dataset.Relation, []Injected, error) {
	if rate < 0 || rate > 1 {
		return nil, nil, fmt.Errorf("eval: rate %v outside [0,1]", rate)
	}
	var observed []dataset.Cell
	for i := 0; i < rel.Len(); i++ {
		t := rel.Row(i)
		for j := range t {
			if !t[j].IsNull() {
				observed = append(observed, dataset.Cell{Row: i, Attr: j})
			}
		}
	}
	count := int(float64(len(observed))*rate + 0.5)
	if count > len(observed) {
		count = len(observed)
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(observed), func(a, b int) { observed[a], observed[b] = observed[b], observed[a] })

	out := rel.Clone()
	injected := make([]Injected, 0, count)
	for _, cell := range observed[:count] {
		injected = append(injected, Injected{Cell: cell, Truth: rel.Get(cell.Row, cell.Attr)})
		out.Set(cell.Row, cell.Attr, dataset.Null)
	}
	return out, injected, nil
}

// Variant is one injected dataset of a (rate, seed) grid.
type Variant struct {
	Rate     float64
	Seed     int64
	Relation *dataset.Relation
	Injected []Injected
}

// InjectGrid produces the paper's evaluation grid: for each missing rate,
// `variants` independently injected datasets (the paper uses five per
// rate, "to avoid an arrangement of missing values in favor of one
// algorithm over another"). Seeds are derived deterministically from the
// base seed.
func InjectGrid(rel *dataset.Relation, rates []float64, variants int, baseSeed int64) ([]Variant, error) {
	var out []Variant
	for ri, rate := range rates {
		for v := 0; v < variants; v++ {
			seed := baseSeed + int64(ri*1000+v)
			injRel, injected, err := Inject(rel, rate, seed)
			if err != nil {
				return nil, err
			}
			out = append(out, Variant{Rate: rate, Seed: seed, Relation: injRel, Injected: injected})
		}
	}
	return out, nil
}
