package eval

import (
	"strings"
	"testing"

	"repro/internal/dataset"
)

// FuzzReadRules: arbitrary rule documents never panic the parser, and an
// accepted validator never rejects exact equality.
func FuzzReadRules(f *testing.F) {
	seeds := []string{
		"set City: new york | ny\n",
		"regex Phone: [0-9]\n",
		"delta Class: 1\n",
		"# comment\n\nset A: x | y\n",
		"warp Speed: 9\n",
		"set City\n",
		"delta X: not-a-number\n",
		"regex P: [unclosed\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		v, err := ReadRules(strings.NewReader(doc))
		if err != nil {
			return
		}
		for _, val := range []dataset.Value{
			dataset.NewString("x"), dataset.NewInt(5), dataset.NewFloat(1.5),
		} {
			if !v.Correct("City", val, val) || !v.Correct("Phone", val, val) {
				t.Fatalf("validator from %q rejects equality for %v", doc, val)
			}
		}
	})
}
