package eval

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/dataset"
)

// Metrics are the paper's three qualitative measures (Sec. 6.1):
//
//	precision = |true ∩ imputed| / |imputed|
//	recall    = |true ∩ missing| / |missing|
//	F1        = 2·P·R / (P + R)
//
// Precision tracks the algorithm's reliability when it decides to impute
// at all; recall also penalizes cells left missing.
type Metrics struct {
	Missing   int // injected missing cells
	Imputed   int // cells the method filled
	Correct   int // filled cells judged correct by the validator
	Precision float64
	Recall    float64
	F1        float64
}

// Score compares the imputed relation against the injected ground truth
// under the validator. Only the injected cells are inspected.
func Score(imputed *dataset.Relation, injected []Injected, v *Validator) Metrics {
	m := Metrics{Missing: len(injected)}
	schema := imputed.Schema()
	for _, inj := range injected {
		got := imputed.Get(inj.Cell.Row, inj.Cell.Attr)
		if got.IsNull() {
			continue
		}
		m.Imputed++
		if v.Correct(schema.Attr(inj.Cell.Attr).Name, got, inj.Truth) {
			m.Correct++
		}
	}
	if m.Imputed > 0 {
		m.Precision = float64(m.Correct) / float64(m.Imputed)
	}
	if m.Missing > 0 {
		m.Recall = float64(m.Correct) / float64(m.Missing)
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m
}

// BootstrapF1CI returns a percentile bootstrap confidence interval for
// the mean F1 over the variant runs: `resamples` means of samples drawn
// with replacement, cut at the (1±conf)/2 percentiles. With fewer than
// two runs the interval collapses to the single value.
func BootstrapF1CI(ms []Metrics, resamples int, conf float64, seed int64) (lo, hi float64) {
	if len(ms) == 0 {
		return 0, 0
	}
	if len(ms) == 1 {
		return ms[0].F1, ms[0].F1
	}
	if resamples <= 0 {
		resamples = 1000
	}
	if conf <= 0 || conf >= 1 {
		conf = 0.95
	}
	rng := rand.New(rand.NewSource(seed))
	means := make([]float64, resamples)
	for r := range means {
		sum := 0.0
		for k := 0; k < len(ms); k++ {
			sum += ms[rng.Intn(len(ms))].F1
		}
		means[r] = sum / float64(len(ms))
	}
	sort.Float64s(means)
	alpha := (1 - conf) / 2
	loIdx := int(alpha * float64(resamples-1))
	hiIdx := int((1 - alpha) * float64(resamples-1))
	return means[loIdx], means[hiIdx]
}

// StdDevF1 returns the population standard deviation of the F1 scores —
// the across-variant spread the paper's averaging hides. Zero for fewer
// than two samples.
func StdDevF1(ms []Metrics) float64 {
	if len(ms) < 2 {
		return 0
	}
	mean := 0.0
	for _, m := range ms {
		mean += m.F1
	}
	mean /= float64(len(ms))
	varSum := 0.0
	for _, m := range ms {
		d := m.F1 - mean
		varSum += d * d
	}
	return math.Sqrt(varSum / float64(len(ms)))
}

// Average returns the component-wise mean of the metrics — the paper
// averages each missing rate over its five injected variants.
func Average(ms []Metrics) Metrics {
	if len(ms) == 0 {
		return Metrics{}
	}
	var out Metrics
	for _, m := range ms {
		out.Missing += m.Missing
		out.Imputed += m.Imputed
		out.Correct += m.Correct
		out.Precision += m.Precision
		out.Recall += m.Recall
		out.F1 += m.F1
	}
	n := float64(len(ms))
	out.Missing = int(float64(out.Missing)/n + 0.5)
	out.Imputed = int(float64(out.Imputed)/n + 0.5)
	out.Correct = int(float64(out.Correct)/n + 0.5)
	out.Precision /= n
	out.Recall /= n
	out.F1 /= n
	return out
}

// String renders the metrics as "P=0.864 R=0.329 F1=0.476".
func (m Metrics) String() string {
	return fmt.Sprintf("P=%.3f R=%.3f F1=%.3f (missing=%d imputed=%d correct=%d)",
		m.Precision, m.Recall, m.F1, m.Missing, m.Imputed, m.Correct)
}

// ScoreByAttribute breaks the evaluation down per attribute — which
// columns a method fills well is the first question any error analysis
// asks. Keys are attribute names; attributes with no injected cells are
// absent.
func ScoreByAttribute(imputed *dataset.Relation, injected []Injected, v *Validator) map[string]Metrics {
	schema := imputed.Schema()
	grouped := map[string][]Injected{}
	for _, inj := range injected {
		name := schema.Attr(inj.Cell.Attr).Name
		grouped[name] = append(grouped[name], inj)
	}
	out := make(map[string]Metrics, len(grouped))
	for name, cells := range grouped {
		out[name] = Score(imputed, cells, v)
	}
	return out
}
