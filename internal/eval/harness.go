package eval

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"repro/internal/dataset"
	"repro/internal/impute"
)

// Budget bounds one measured run, mirroring the paper's stress limits
// (48 h / 30 GB on the authors' testbed, scaled down here). A zero field
// means unlimited.
type Budget struct {
	// TimeLimit marks the run TL when exceeded. The method is abandoned
	// once the limit passes (its goroutine is left to finish in the
	// background), so a TL run reports no metrics — exactly like the
	// paper's "TL" rows.
	TimeLimit time.Duration
	// MemLimit marks the run ML when the sampled heap exceeds it.
	MemLimit uint64
}

// RunResult is one measured (method, variant) execution.
type RunResult struct {
	Method   string
	Metrics  Metrics
	Elapsed  time.Duration
	PeakHeap uint64 // max sampled heap during the run, bytes
	TimedOut bool   // TL marker
	OverMem  bool   // ML marker
	Err      error
}

// Marker renders the TL/ML flags the way Tables 4-5 print them.
func (r RunResult) Marker() string {
	switch {
	case r.TimedOut:
		return "TL"
	case r.OverMem:
		return "ML"
	case r.Err != nil:
		return "ERR"
	default:
		return ""
	}
}

// cancelGrace is how long Run waits past the time limit for a method to
// notice its expired context and return. Well-behaved methods come back
// within one cancellation-checkpoint stride; a method that ignores the
// context is abandoned after the grace (its goroutine is left to finish
// in the background and its result discarded), so TL rows never block
// the grid.
const cancelGrace = 100 * time.Millisecond

// Run executes the method on the injected variant, scores it against the
// ground truth, and samples the heap while it runs. With a zero Budget
// the run is unbounded.
//
// The budget's time limit becomes the context deadline the method
// receives: methods observe it cooperatively and stop promptly, so no
// goroutine outlives a TL run by more than cancelGrace.
func Run(method impute.Method, variant Variant, v *Validator, budget Budget) RunResult {
	res := RunResult{Method: method.Name()}

	type outcome struct {
		rel *dataset.Relation
		err error
	}
	done := make(chan outcome, 1)
	stopSampling := make(chan struct{})
	peakCh := make(chan uint64, 1)

	go func() {
		var peak uint64
		ticker := time.NewTicker(5 * time.Millisecond)
		defer ticker.Stop()
		var ms runtime.MemStats
		for {
			select {
			case <-stopSampling:
				peakCh <- peak
				return
			case <-ticker.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > peak {
					peak = ms.HeapAlloc
				}
			}
		}
	}()

	start := time.Now()
	ctx := context.Background()
	cancel := context.CancelFunc(func() {})
	if budget.TimeLimit > 0 {
		ctx, cancel = context.WithTimeout(ctx, budget.TimeLimit)
	}
	defer cancel()

	var out outcome
	go func() {
		rel, err := method.Impute(ctx, variant.Relation)
		done <- outcome{rel: rel, err: err}
	}()
	if budget.TimeLimit > 0 {
		select {
		case out = <-done:
			if errors.Is(out.err, context.DeadlineExceeded) || errors.Is(out.err, context.Canceled) {
				res.TimedOut = true
				out = outcome{}
			}
		case <-time.After(budget.TimeLimit + cancelGrace):
			res.TimedOut = true
		}
	} else {
		out = <-done
	}
	res.Elapsed = time.Since(start)
	close(stopSampling)
	res.PeakHeap = <-peakCh

	if budget.MemLimit > 0 && res.PeakHeap > budget.MemLimit {
		res.OverMem = true
	}
	if res.TimedOut {
		return res
	}
	if out.err != nil {
		res.Err = out.err
		return res
	}
	res.Metrics = Score(out.rel, variant.Injected, v)
	return res
}

// RunGrid executes the method over every variant, grouping the averaged
// metrics per missing rate (the paper's reporting unit). Budget-violating
// runs poison their rate's marker and contribute no metrics.
type RateResult struct {
	Rate    float64
	Metrics Metrics
	// F1Spread is the across-variant standard deviation of F1 — the
	// variability the averaged number hides.
	F1Spread float64
	Elapsed  time.Duration // mean wall-clock over the variants
	Peak     uint64        // max peak heap over the variants
	Marker   string        // "", "TL", "ML" or "ERR"
}

// RunGrid measures the method over the whole injection grid.
func RunGrid(method impute.Method, variants []Variant, v *Validator, budget Budget) []RateResult {
	byRate := map[float64][]RunResult{}
	var rates []float64
	for _, variant := range variants {
		if _, seen := byRate[variant.Rate]; !seen {
			rates = append(rates, variant.Rate)
		}
		byRate[variant.Rate] = append(byRate[variant.Rate], Run(method, variant, v, budget))
	}
	var out []RateResult
	for _, rate := range rates {
		rr := RateResult{Rate: rate}
		var ms []Metrics
		var total time.Duration
		for _, run := range byRate[rate] {
			if m := run.Marker(); m != "" && rr.Marker == "" {
				rr.Marker = m
			}
			if run.Marker() == "" {
				ms = append(ms, run.Metrics)
			}
			total += run.Elapsed
			if run.PeakHeap > rr.Peak {
				rr.Peak = run.PeakHeap
			}
		}
		rr.Metrics = Average(ms)
		rr.F1Spread = StdDevF1(ms)
		rr.Elapsed = total / time.Duration(len(byRate[rate]))
		out = append(out, rr)
	}
	return out
}

// FormatBytes renders a byte count the way the paper's tables do
// ("1.38 GB").
func FormatBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2f MB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2f KB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}
