package eval

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

// TestPropertyInjectionAccounting: for any rate and seed, the injected
// count follows the rounding formula, every injected cell was observed,
// and the non-injected cells are untouched.
func TestPropertyInjectionAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 150; trial++ {
		rows := 2 + rng.Intn(40)
		rel := grid(t, rows)
		// Pre-null a few cells so injection must avoid them.
		for k := 0; k < rng.Intn(4); k++ {
			rel.Set(rng.Intn(rows), rng.Intn(2), dataset.Null)
		}
		observed := rows*2 - rel.CountMissing()
		rate := rng.Float64()
		injRel, injected, err := Inject(rel, rate, rng.Int63())
		if err != nil {
			t.Fatal(err)
		}
		want := int(float64(observed)*rate + 0.5)
		if want > observed {
			want = observed
		}
		if len(injected) != want {
			t.Fatalf("trial %d: injected %d, want %d (observed %d, rate %v)",
				trial, len(injected), want, observed, rate)
		}
		if injRel.CountMissing() != rel.CountMissing()+len(injected) {
			t.Fatalf("trial %d: null accounting off", trial)
		}
		for _, inj := range injected {
			if inj.Truth.IsNull() {
				t.Fatalf("trial %d: injected an already-null cell", trial)
			}
		}
	}
}

// TestPropertyScoreBounds: metrics always land in [0,1] and F1 is the
// harmonic mean (hence at most min(P,R)·2/(1+min/max)... just check it
// never exceeds either component's max and is zero iff both are).
func TestPropertyScoreBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 150; trial++ {
		rows := 2 + rng.Intn(30)
		rel := grid(t, rows)
		injRel, injected, err := Inject(rel, 0.3, rng.Int63())
		if err != nil {
			t.Fatal(err)
		}
		// A fake "method": randomly restore truth, impute junk, or skip.
		out := injRel.Clone()
		for _, inj := range injected {
			switch rng.Intn(3) {
			case 0:
				out.Set(inj.Cell.Row, inj.Cell.Attr, inj.Truth)
			case 1:
				out.Set(inj.Cell.Row, inj.Cell.Attr, dataset.NewString("junk"))
			}
		}
		m := Score(out, injected, NewValidator())
		for name, v := range map[string]float64{
			"precision": m.Precision, "recall": m.Recall, "f1": m.F1,
		} {
			if v < 0 || v > 1 {
				t.Fatalf("trial %d: %s = %v out of range", trial, name, v)
			}
		}
		if m.F1 > m.Precision+1e-12 && m.F1 > m.Recall+1e-12 {
			t.Fatalf("trial %d: F1 %v exceeds both P %v and R %v", trial, m.F1, m.Precision, m.Recall)
		}
		if m.Correct > m.Imputed || m.Imputed > m.Missing {
			t.Fatalf("trial %d: counts inconsistent: %+v", trial, m)
		}
		// Recall can never exceed precision·(imputed/missing) scaled...
		// simpler invariant: recall <= imputed/missing.
		if m.Missing > 0 && m.Recall > float64(m.Imputed)/float64(m.Missing)+1e-12 {
			t.Fatalf("trial %d: recall %v > imputed/missing", trial, m.Recall)
		}
	}
}

// TestPropertyPerfectMethodScoresOne: restoring the exact truth yields
// P = R = F1 = 1 under any validator.
func TestPropertyPerfectMethodScoresOne(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 80; trial++ {
		rel := grid(t, 3+rng.Intn(20))
		injRel, injected, err := Inject(rel, 0.4, rng.Int63())
		if err != nil {
			t.Fatal(err)
		}
		if len(injected) == 0 {
			continue
		}
		out := injRel.Clone()
		for _, inj := range injected {
			out.Set(inj.Cell.Row, inj.Cell.Attr, inj.Truth)
		}
		m := Score(out, injected, NewValidator())
		if m.Precision != 1 || m.Recall != 1 || m.F1 != 1 {
			t.Fatalf("trial %d: perfect method scored %+v", trial, m)
		}
	}
}

// TestPropertyValidatorNeverRejectsEquality: whatever rules are loaded,
// an exactly equal imputation is always correct.
func TestPropertyValidatorNeverRejectsEquality(t *testing.T) {
	v := NewValidator()
	v.AddValueSet("A", "x", "y")
	if err := v.SetRegex("A", "[a-z]"); err != nil {
		t.Fatal(err)
	}
	if err := v.SetDelta("A", 0); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	words := []string{"x", "y", "zz", "", "multi word"}
	for trial := 0; trial < 200; trial++ {
		var val dataset.Value
		if rng.Intn(2) == 0 {
			val = dataset.NewString(words[rng.Intn(len(words))])
		} else {
			val = dataset.NewInt(int64(rng.Intn(100)))
		}
		if !v.Correct("A", val, val) {
			t.Fatalf("trial %d: equality rejected for %v", trial, val)
		}
	}
}
