package eval

import (
	"testing"

	"repro/internal/dataset"
)

func TestScoreByAttribute(t *testing.T) {
	rel, err := dataset.ReadCSVString("A,B\nx,1\ny,2\nz,3\n")
	if err != nil {
		t.Fatal(err)
	}
	injected := []Injected{
		{Cell: dataset.Cell{Row: 0, Attr: 0}, Truth: dataset.NewString("x")},
		{Cell: dataset.Cell{Row: 1, Attr: 0}, Truth: dataset.NewString("y")},
		{Cell: dataset.Cell{Row: 2, Attr: 1}, Truth: dataset.NewInt(3)},
	}
	imputed := rel.Clone()
	imputed.Set(0, 0, dataset.NewString("x"))     // A correct
	imputed.Set(1, 0, dataset.NewString("WRONG")) // A wrong
	imputed.Set(2, 1, dataset.NewInt(3))          // B correct

	byAttr := ScoreByAttribute(imputed, injected, NewValidator())
	if len(byAttr) != 2 {
		t.Fatalf("attributes = %v", byAttr)
	}
	a := byAttr["A"]
	if a.Missing != 2 || a.Correct != 1 || a.Precision != 0.5 {
		t.Errorf("A = %+v", a)
	}
	b := byAttr["B"]
	if b.Missing != 1 || b.Precision != 1 || b.Recall != 1 {
		t.Errorf("B = %+v", b)
	}
}

func TestScoreByAttributeConsistentWithOverall(t *testing.T) {
	// Summing the per-attribute counts reproduces the overall Score.
	rel, err := dataset.ReadCSVString("A,B,C\nx,1,q\ny,2,w\nz,3,e\nv,4,r\n")
	if err != nil {
		t.Fatal(err)
	}
	injRel, injected, err := Inject(rel, 0.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	out := injRel.Clone()
	for i, inj := range injected {
		if i%2 == 0 {
			out.Set(inj.Cell.Row, inj.Cell.Attr, inj.Truth)
		}
	}
	overall := Score(out, injected, NewValidator())
	byAttr := ScoreByAttribute(out, injected, NewValidator())
	sumMissing, sumImputed, sumCorrect := 0, 0, 0
	for _, m := range byAttr {
		sumMissing += m.Missing
		sumImputed += m.Imputed
		sumCorrect += m.Correct
	}
	if sumMissing != overall.Missing || sumImputed != overall.Imputed || sumCorrect != overall.Correct {
		t.Errorf("per-attribute sums (%d,%d,%d) != overall (%d,%d,%d)",
			sumMissing, sumImputed, sumCorrect,
			overall.Missing, overall.Imputed, overall.Correct)
	}
}
