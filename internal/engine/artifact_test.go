package engine

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/artifact"
	"repro/internal/dataset"
	"repro/internal/rfd"
)

// artifactSigma constrains every class of the mixed relation on some
// LHS: equality and positive thresholds over strings, numerics, and
// bools, so the index carries all three bucket structures.
func artifactSigma(t testing.TB) rfd.Set {
	t.Helper()
	return rfd.Set{
		rfd.MustNew([]rfd.Constraint{{Attr: 0, Threshold: 2}, {Attr: 1, Threshold: 0}}, rfd.Constraint{Attr: 2, Threshold: 1}),
		rfd.MustNew([]rfd.Constraint{{Attr: 2, Threshold: 1.5}, {Attr: 3, Threshold: 0}}, rfd.Constraint{Attr: 0, Threshold: 3}),
		rfd.MustNew([]rfd.Constraint{{Attr: 4, Threshold: 0}}, rfd.Constraint{Attr: 1, Threshold: 0}),
	}
}

// encodeShared assembles a full artifact around one Shared + Index.
func encodeShared(s *Shared, ix *Index) []byte {
	b := artifact.NewBuilder()
	s.EncodeTo(b)
	ix.EncodeTo(b)
	return b.Finish()
}

// TestSharedRoundTrip: decode(encode(Shared)) reproduces the relation,
// the columnar cells, the interning tables, and every pairwise
// distance; re-encoding the decoded state is byte-identical.
func TestSharedRoundTrip(t *testing.T) {
	rel := randomMixedRelation(rand.New(rand.NewSource(11)), 40)
	s := Precompile(rel)
	sigma := artifactSigma(t)
	data := encodeShared(s, NewIndex(s.View(), sigma))

	r, err := artifact.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeShared(r)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() || got.Arity() != s.Arity() {
		t.Fatalf("decoded %dx%d, want %dx%d", got.Len(), got.Arity(), s.Len(), s.Arity())
	}
	if !got.Relation().Equal(s.Relation()) {
		t.Error("decoded relation diverged")
	}
	if !got.Relation().Schema().Equal(s.Relation().Schema()) {
		t.Error("decoded schema diverged")
	}
	for a := 0; a < s.m; a++ {
		if !reflect.DeepEqual(got.cols[a], s.cols[a]) {
			t.Errorf("attr %d columns diverged", a)
		}
		want, have := s.interns[a], got.interns[a]
		if !reflect.DeepEqual(have.strs, want.strs) ||
			!reflect.DeepEqual(have.lens, want.lens) ||
			!reflect.DeepEqual(have.masks, want.masks) ||
			!reflect.DeepEqual(have.runes, want.runes) ||
			!reflect.DeepEqual(have.ids, want.ids) {
			t.Errorf("attr %d interner diverged", a)
		}
	}

	// Every pairwise distance must agree (the decoded cache starts cold
	// and recomputes from the decoded runes).
	vw, vg := s.View(), got.View()
	for a := 0; a < s.m; a++ {
		for i := 0; i < s.n; i++ {
			for j := i; j < s.n; j++ {
				if dw, dg := vw.Distance(a, i, j), vg.Distance(a, i, j); !sameDist(dw, dg) {
					t.Fatalf("Distance(%d, %d, %d) = %v decoded, %v compiled", a, i, j, dg, dw)
				}
			}
		}
	}

	if !bytes.Equal(data, encodeShared(got, NewIndex(got.View(), sigma))) {
		t.Error("re-encoding the decoded state is not byte-identical")
	}
}

// TestIndexRoundTrip: the decoded index answers every probe with the
// same candidate rows as the one built from scratch.
func TestIndexRoundTrip(t *testing.T) {
	rel := randomMixedRelation(rand.New(rand.NewSource(23)), 50)
	s := Precompile(rel)
	sigma := artifactSigma(t)
	ix := NewIndex(s.View(), sigma)
	if ix == nil {
		t.Fatal("fixture built no index; the round-trip is vacuous")
	}

	r, err := artifact.Decode(encodeShared(s, ix))
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeShared(r)
	if err != nil {
		t.Fatal(err)
	}
	gix, err := DecodeIndex(r, got.View())
	if err != nil {
		t.Fatal(err)
	}
	if gix == nil {
		t.Fatal("index decoded as absent")
	}
	if !reflect.DeepEqual(gix.lhs, ix.lhs) || !reflect.DeepEqual(gix.eq, ix.eq) ||
		!reflect.DeepEqual(gix.numV, ix.numV) || !reflect.DeepEqual(gix.numR, ix.numR) ||
		!reflect.DeepEqual(gix.lens, ix.lens) {
		t.Error("decoded index structures diverged")
	}
	for row := 0; row < s.Len(); row++ {
		want, wok := ix.CandidateRows(row, sigma)
		have, hok := gix.CandidateRows(row, sigma)
		if wok != hok || !reflect.DeepEqual(want, have) {
			t.Fatalf("CandidateRows(%d) = (%v, %v) decoded, (%v, %v) compiled", row, have, hok, want, wok)
		}
	}
}

// TestIndexAbsentRoundTrip: a nil index (Σ with no LHS attributes)
// round-trips as nil.
func TestIndexAbsentRoundTrip(t *testing.T) {
	rel := randomMixedRelation(rand.New(rand.NewSource(5)), 10)
	s := Precompile(rel)
	r, err := artifact.Decode(encodeShared(s, nil))
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeShared(r)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := DecodeIndex(r, got.View())
	if err != nil {
		t.Fatal(err)
	}
	if ix != nil {
		t.Fatalf("absent index decoded as %v", ix)
	}
}

// TestDeterministicSharedEncoding: encoding the same compiled state
// twice — including the map-backed index buckets — is byte-identical.
func TestDeterministicSharedEncoding(t *testing.T) {
	build := func() []byte {
		rel := randomMixedRelation(rand.New(rand.NewSource(37)), 60)
		s := Precompile(rel)
		return encodeShared(s, NewIndex(s.View(), artifactSigma(t)))
	}
	if !bytes.Equal(build(), build()) {
		t.Fatal("two compiles of the same relation encoded differently")
	}
}

// TestDecodeSharedCorrupt: checksum-valid but semantically corrupt
// payloads fail with ErrCorrupt, never a panic or an inconsistent
// engine.
func TestDecodeSharedCorrupt(t *testing.T) {
	rel := randomMixedRelation(rand.New(rand.NewSource(7)), 12)
	s := Precompile(rel)

	// rebuild re-encodes the state with one section swapped out.
	rebuild := func(mutate func(b *artifact.Builder, sec uint32) bool) []byte {
		b := artifact.NewBuilder()
		if !mutate(b, artifact.SecSchema) {
			b.Begin(artifact.SecSchema)
			sch := s.rel.Schema()
			b.Uint32(uint32(sch.Len()))
			for a := 0; a < sch.Len(); a++ {
				b.String(sch.Attr(a).Name)
				b.Uint8(uint8(sch.Attr(a).Kind))
			}
		}
		full := artifact.NewBuilder()
		s.EncodeTo(full)
		fullData := full.Finish()
		r, err := artifact.Decode(fullData)
		if err != nil {
			t.Fatal(err)
		}
		for _, sec := range []uint32{artifact.SecColumns, artifact.SecInterners} {
			if mutate(b, sec) {
				continue
			}
			c, _ := r.Section(sec)
			b.Begin(sec)
			raw := make([]uint8, c.Remaining())
			for i := range raw {
				raw[i] = c.Uint8()
			}
			for _, x := range raw {
				b.Uint8(x)
			}
		}
		return b.Finish()
	}

	cases := []struct {
		name string
		mut  func(b *artifact.Builder, sec uint32) bool
	}{
		{"duplicate schema attr", func(b *artifact.Builder, sec uint32) bool {
			if sec != artifact.SecSchema {
				return false
			}
			b.Begin(sec)
			b.Uint32(2)
			b.String("A")
			b.Uint8(uint8(dataset.KindString))
			b.String("A")
			b.Uint8(uint8(dataset.KindString))
			return true
		}},
		{"unknown kind", func(b *artifact.Builder, sec uint32) bool {
			if sec != artifact.SecSchema {
				return false
			}
			b.Begin(sec)
			b.Uint32(1)
			b.String("A")
			b.Uint8(99)
			return true
		}},
		{"missing columns", func(b *artifact.Builder, sec uint32) bool {
			if sec != artifact.SecColumns {
				return false
			}
			b.Begin(sec) // present but empty: truncated reads
			return true
		}},
		{"missing interners", func(b *artifact.Builder, sec uint32) bool {
			if sec != artifact.SecInterners {
				return false
			}
			b.Begin(sec)
			b.Uint32(0) // arity 0 disagrees with schema
			return true
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := rebuild(tc.mut)
			r, err := artifact.Decode(data)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := DecodeShared(r); !errors.Is(err, artifact.ErrCorrupt) && !errors.Is(err, artifact.ErrTruncated) {
				t.Fatalf("DecodeShared = %v, want ErrCorrupt or ErrTruncated", err)
			}
		})
	}
}
