package engine

import (
	"fmt"

	"repro/internal/dataset"
)

// Interner-compaction trigger: after a delta, an attribute's interning
// table is rebuilt with dense ids when more than half its distinct
// values are no longer referenced by any live row AND the table is big
// enough for the dead weight to matter. Package variables (not consts)
// so the engine tests can force compaction on small instances.
var (
	compactMinDistinct = 256
	// dead/distinct must exceed compactDeadNum/compactDeadDen.
	compactDeadNum = 1
	compactDeadDen = 2
)

// EvolveStats reports what one Evolve did beyond the column rebuild.
type EvolveStats struct {
	// CompactedAttrs is how many attributes had their interning table
	// rebuilt with dense ids (dropping values no live row references).
	CompactedAttrs int
	// InvalidatedCacheShards is how many distance-cache shards held
	// entries keyed by a compacted attribute and were therefore not
	// carried into the new epoch's cache. Zero whenever no attribute
	// compacted: the cache is keyed by interned ids, and an id-stable
	// delta leaves every memoized pair valid.
	InvalidatedCacheShards int
}

// flatClone copies a root interner for append-only extension by a
// successor epoch: the id map is copied (the old epoch's Extend-derived
// upper tiers read the original concurrently, so it must never grow
// under them) and the value slabs are shared with their capacity
// clipped to their length, so the first novel string reallocates
// instead of scribbling past the old epoch's view of the slab.
func (in *interner) flatClone() *interner {
	if in.base != nil {
		// Shared interners are always root (Compile, DecodeShared, and
		// Evolve itself only ever produce root tables).
		panic("engine: flatClone of a two-tier interner")
	}
	ids := make(map[string]int32, len(in.ids))
	for s, id := range in.ids {
		ids[s] = id
	}
	return &interner{
		ids:   ids,
		strs:  in.strs[:len(in.strs):len(in.strs)],
		runes: in.runes[:len(in.runes):len(in.runes)],
		lens:  in.lens[:len(in.lens):len(in.lens)],
		masks: in.masks[:len(in.masks):len(in.masks)],
	}
}

// setColCell writes one cell of a Shared-owned column, the standalone
// form of View.setCell (Evolve builds columns before any View exists).
func setColCell(c *col, in *interner, row int, val dataset.Value) {
	k := val.Kind()
	c.kind[row] = k
	switch k {
	case dataset.KindString:
		c.sid[row] = in.intern(val.Str())
		c.num[row] = 0
	case dataset.KindNull:
		c.sid[row] = -1
		c.num[row] = 0
	default:
		c.num[row] = val.Float()
		c.sid[row] = -1
	}
}

// Evolve compiles the successor of this base — the logical relation
// after a delta — into a new Shared, reusing this one's compiled state
// wherever the delta left it valid:
//
//   - interning tables are flat-cloned, so every string the instances
//     share keeps its id and novel strings extend the id space;
//   - because ids are stable, the memoized distance cache is carried
//     into the new epoch as the same instance — concurrent old-epoch
//     readers and new-epoch readers agree on every entry, the memo
//     being pure over stable ids;
//   - when deletes leave an attribute's table mostly dead (see the
//     compaction trigger above), that attribute is re-interned densely
//     and, since its ids remapped, the new epoch gets a copied cache
//     with exactly that attribute's entries dropped (withoutAttrs) —
//     the old epoch keeps the old instance untouched.
//
// The receiver is never mutated; any number of pinned readers may keep
// using it. next must not be mutated after the call (it becomes the new
// Shared's base relation) and must have the receiver's arity.
func (s *Shared) Evolve(next *dataset.Relation) (*Shared, EvolveStats, error) {
	if next.Schema().Len() != s.m {
		return nil, EvolveStats{}, fmt.Errorf("engine: Evolve arity %d != base arity %d", next.Schema().Len(), s.m)
	}
	n := next.Len()
	out := &Shared{
		rel:     next,
		n:       n,
		m:       s.m,
		cols:    make([]col, s.m),
		interns: make([]*interner, s.m),
	}
	for a := 0; a < s.m; a++ {
		out.interns[a] = s.interns[a].flatClone()
		out.cols[a] = col{
			kind: make([]dataset.Kind, n),
			num:  make([]float64, n),
			sid:  make([]int32, n),
		}
	}
	for i := 0; i < n; i++ {
		t := next.Row(i)
		for a := 0; a < s.m; a++ {
			setColCell(&out.cols[a], out.interns[a], i, t[a])
		}
	}

	var st EvolveStats
	var drop []bool
	for a := 0; a < s.m; a++ {
		in := out.interns[a]
		distinct := len(in.strs)
		if distinct <= compactMinDistinct {
			continue
		}
		live := make([]bool, distinct)
		liveCount := 0
		for _, id := range out.cols[a].sid {
			if id >= 0 && !live[id] {
				live[id] = true
				liveCount++
			}
		}
		if dead := distinct - liveCount; dead*compactDeadDen <= distinct*compactDeadNum {
			continue
		}
		// Re-intern the live values densely in first-appearance order and
		// rewrite the sid column in place (no View references it yet).
		fresh := &interner{ids: make(map[string]int32, liveCount)}
		c := &out.cols[a]
		for i, id := range c.sid {
			if id >= 0 {
				c.sid[i] = fresh.intern(in.strs[id])
			}
		}
		out.interns[a] = fresh
		if drop == nil {
			drop = make([]bool, s.m)
		}
		drop[a] = true
		st.CompactedAttrs++
	}
	if drop == nil {
		out.cache = s.cache
	} else {
		out.cache, st.InvalidatedCacheShards = s.cache.withoutAttrs(drop)
	}
	return out, st, nil
}
