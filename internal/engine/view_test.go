package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/distance"
	"repro/internal/rfd"
)

// randomMixedRelation builds a relation exercising every comparison
// class the view must mirror: strings (with repeats, so interning and
// the cache matter), ints, floats, bools, nulls, and cross-kind cells
// within a column (incomparable pairs).
func randomMixedRelation(rng *rand.Rand, n int) *dataset.Relation {
	schema := dataset.NewSchema(
		dataset.Attribute{Name: "S", Kind: dataset.KindString},
		dataset.Attribute{Name: "I", Kind: dataset.KindInt},
		dataset.Attribute{Name: "F", Kind: dataset.KindFloat},
		dataset.Attribute{Name: "B", Kind: dataset.KindBool},
		dataset.Attribute{Name: "X", Kind: dataset.KindString},
	)
	words := []string{"", "a", "ab", "abc", "granita", "granite", "chinois", "citrus", "fenix", "höllywood"}
	rel := dataset.NewRelation(schema)
	for i := 0; i < n; i++ {
		t := make(dataset.Tuple, schema.Len())
		t[0] = dataset.NewString(words[rng.Intn(len(words))])
		t[1] = dataset.NewInt(int64(rng.Intn(8)))
		t[2] = dataset.NewFloat(float64(rng.Intn(12)) / 2)
		t[3] = dataset.NewBool(rng.Intn(2) == 0)
		t[4] = dataset.NewString(words[rng.Intn(len(words))])
		for a := 0; a < 4; a++ {
			if rng.Float64() < 0.15 {
				t[a] = dataset.Null
			}
		}
		rel.MustAppend(t)
	}
	// X mixes kinds in the same column (Set bypasses Append's kind
	// validation, like an imputation from a cross-typed donor would):
	// incomparable pairs must come out Missing.
	for i := 0; i < n; i++ {
		switch rng.Intn(3) {
		case 0: // keep the string
		case 1:
			rel.Set(i, 4, dataset.NewInt(int64(rng.Intn(5))))
		default:
			rel.Set(i, 4, dataset.Null)
		}
	}
	return rel
}

func sameDist(a, b float64) bool {
	if distance.IsMissing(a) || distance.IsMissing(b) {
		return distance.IsMissing(a) && distance.IsMissing(b)
	}
	return a == b
}

// TestViewDistanceParity: the view's Distance, Within, and
// PatternBetween agree with the scalar distance package on every pair,
// attribute, and threshold — including null and cross-kind cells.
func TestViewDistanceParity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		rel := randomMixedRelation(rng, 12)
		v := Compile(rel)
		for i := 0; i < rel.Len(); i++ {
			for j := 0; j < rel.Len(); j++ {
				ref := distance.PatternBetween(rel.Row(i), rel.Row(j))
				got := v.PatternBetween(i, j)
				for a := 0; a < v.Arity(); a++ {
					if !sameDist(got[a], ref[a]) {
						t.Fatalf("trial %d: Distance(%d,%d,%d) = %v, want %v",
							trial, a, i, j, got[a], ref[a])
					}
					for _, th := range []float64{0, 0.5, 1, 2, 3.7, 10} {
						want := distance.ValuesWithin(rel.Get(i, a), rel.Get(j, a), th)
						if v.Within(a, i, j, th) != want {
							t.Fatalf("trial %d: Within(%d,%d,%d,%v) = %v, want %v",
								trial, a, i, j, th, !want, want)
						}
					}
				}
			}
		}
	}
}

// TestViewMatcherParity: MatchesLHS, Violates, and DistMin agree with
// the pattern-based reference evaluation used before the engine.
func TestViewMatcherParity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		rel := randomMixedRelation(rng, 10)
		schema := rel.Schema()
		sigma := rfd.Set{
			rfd.MustParse("S(<=2) -> I(<=1)", schema),
			rfd.MustParse("I(<=1), F(<=0.5) -> S(<=3)", schema),
			rfd.MustParse("B(<=0), X(<=2) -> F(<=1)", schema),
			rfd.MustParse("S(<=0) -> X(<=0)", schema),
		}
		v := Compile(rel)
		for i := 0; i < rel.Len(); i++ {
			for j := 0; j < rel.Len(); j++ {
				if i == j {
					continue
				}
				p := distance.PatternBetween(rel.Row(i), rel.Row(j))
				for _, dep := range sigma {
					if got, want := v.MatchesLHS(dep, i, j), dep.LHSSatisfiedBy(p); got != want {
						t.Fatalf("trial %d: MatchesLHS(%s,%d,%d) = %v, want %v",
							trial, dep.Format(schema), i, j, got, want)
					}
					if got, want := v.Violates(dep, i, j), dep.ViolatedBy(p); got != want {
						t.Fatalf("trial %d: Violates(%s,%d,%d) = %v, want %v",
							trial, dep.Format(schema), i, j, got, want)
					}
				}
				// DistMin vs the Eq. 2 reference: min MeanOver across
				// dependencies whose LHS the pattern satisfies.
				wantD, wantOK := 0.0, false
				for _, dep := range sigma {
					if !dep.LHSSatisfiedBy(p) {
						continue
					}
					if d, ok := p.MeanOver(dep.LHSAttrs()); ok {
						if !wantOK || d < wantD {
							wantD, wantOK = d, true
						}
					}
				}
				gotD, gotOK := v.DistMin(sigma, i, j)
				if gotOK != wantOK || (wantOK && gotD != wantD) {
					t.Fatalf("trial %d: DistMin(%d,%d) = %v,%v, want %v,%v",
						trial, i, j, gotD, gotOK, wantD, wantOK)
				}
			}
		}
	}
}

// TestViewWriteThrough: Set and Append update both the backing relation
// and the columnar form, so subsequent evaluations see the new values.
func TestViewWriteThrough(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rel := randomMixedRelation(rng, 6)
	v := Compile(rel)
	v.Set(0, 0, dataset.NewString("granita"))
	v.Set(1, 0, dataset.NewString("granite"))
	if rel.Get(0, 0).Str() != "granita" {
		t.Fatal("Set did not write through to the relation")
	}
	if d := v.Distance(0, 0, 1); d != 1 {
		t.Fatalf("Distance after Set = %v, want 1", d)
	}
	t2 := rel.Row(2).Clone()
	t2[0] = dataset.NewString("granitas")
	if err := v.Append(t2); err != nil {
		t.Fatal(err)
	}
	if v.Len() != rel.Len() || rel.Len() != 7 {
		t.Fatalf("Append: view len %d, relation len %d", v.Len(), rel.Len())
	}
	if d := v.Distance(0, 0, 6); d != 1 {
		t.Fatalf("Distance to appended row = %v, want 1", d)
	}
}

// TestViewDonorPool: flat indexing covers target then donors in pool
// order; SourceOf inverts it; Append is rejected on multi-source views.
func TestViewDonorPool(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	target := randomMixedRelation(rng, 4)
	d0 := randomMixedRelation(rng, 3)
	d1 := randomMixedRelation(rng, 2)
	v := CompileWithDonors(target, []*dataset.Relation{d0, d1})
	if v.Len() != 9 || v.TargetLen() != 4 {
		t.Fatalf("Len = %d, TargetLen = %d", v.Len(), v.TargetLen())
	}
	wants := []struct{ source, row int }{
		{-1, 0}, {-1, 1}, {-1, 2}, {-1, 3},
		{0, 0}, {0, 1}, {0, 2},
		{1, 0}, {1, 1},
	}
	rels := []*dataset.Relation{target, d0, d1}
	for flat, want := range wants {
		s, r := v.SourceOf(flat)
		if s != want.source || r != want.row {
			t.Fatalf("SourceOf(%d) = %d,%d, want %d,%d", flat, s, r, want.source, want.row)
		}
		for a := 0; a < v.Arity(); a++ {
			if !v.Value(flat, a).Equal(rels[s+1].Get(r, a)) {
				t.Fatalf("Value(%d,%d) mismatch", flat, a)
			}
		}
	}
	if err := v.Append(target.Row(0).Clone()); err == nil {
		t.Fatal("Append on a multi-source view must fail")
	}
}

// TestViewCacheCounts: a repeated distinct string pair is computed once
// and served from the cache afterwards; equal interned values never
// touch the cache.
func TestViewCacheCounts(t *testing.T) {
	schema := dataset.NewSchema(dataset.Attribute{Name: "S", Kind: dataset.KindString})
	rel := dataset.NewRelation(schema)
	for _, s := range []string{"granita", "granite", "granita", "granite"} {
		rel.MustAppend(dataset.Tuple{dataset.NewString(s)})
	}
	v := Compile(rel)
	if d := v.Distance(0, 0, 2); d != 0 {
		t.Fatalf("equal interned pair distance = %v", d)
	}
	if h, m := v.CacheStats(); h != 0 || m != 0 {
		t.Fatalf("equal pair touched the cache: hits %d misses %d", h, m)
	}
	if d := v.Distance(0, 0, 1); d != 1 {
		t.Fatalf("distinct pair distance = %v", d)
	}
	if h, m := v.CacheStats(); h != 0 || m != 1 {
		t.Fatalf("after first distinct lookup: hits %d misses %d", h, m)
	}
	// Same value pair in either orientation is a hit.
	if d := v.Distance(0, 2, 3); d != 1 {
		t.Fatalf("repeat pair distance = %v", d)
	}
	if d := v.Distance(0, 3, 0); d != 1 {
		t.Fatalf("reversed pair distance = %v", d)
	}
	if h, m := v.CacheStats(); h != 2 || m != 1 {
		t.Fatalf("after repeats: hits %d misses %d", h, m)
	}
}

// TestViewConcurrentReads: the sharded cache keeps concurrent evaluation
// race-free and consistent with the scalar reference (run under -race in
// the race target).
func TestViewConcurrentReads(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rel := randomMixedRelation(rng, 16)
	v := Compile(rel)
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func() {
			for i := 0; i < rel.Len(); i++ {
				for j := 0; j < rel.Len(); j++ {
					for a := 0; a < v.Arity(); a++ {
						got := v.Distance(a, i, j)
						want := distance.Values(rel.Get(i, a), rel.Get(j, a))
						if !sameDist(got, want) {
							errs <- fmt.Errorf("Distance(%d,%d,%d) = %v, want %v", a, i, j, got, want)
							return
						}
					}
				}
			}
			errs <- nil
		}()
	}
	for w := 0; w < 8; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
