package engine

import (
	"repro/internal/distance"
	"repro/internal/rfd"
)

// Matcher binds a View to one per-worker kernel arena
// (distance.Scratch), making every pairwise evaluation allocation-free:
// the Myers pattern-equality table, the banded-DP row, and the rune
// decode buffers all live in the arena and are reused across calls.
//
// A Matcher is NOT safe for concurrent use — the arena is mutable
// worker state. Each goroutine of a parallel scan creates its own with
// View.Matcher(); the View's own methods remain safe for concurrent
// reads and borrow pooled arenas instead.
//
// Every method mirrors the View method of the same name bit-for-bit:
// the arena changes where the kernel's scratch memory lives, never what
// it computes.
type Matcher struct {
	v  *View
	sc *distance.Scratch
}

// Matcher returns a new single-goroutine evaluator over the view.
func (v *View) Matcher() *Matcher {
	return &Matcher{v: v, sc: distance.NewScratch()}
}

// View returns the underlying view.
func (m *Matcher) View() *View { return m.v }

// Distance mirrors View.Distance.
func (m *Matcher) Distance(attr, i, j int) float64 {
	return m.v.distanceSC(m.sc, attr, i, j)
}

// Within mirrors View.Within.
func (m *Matcher) Within(attr, i, j int, max float64) bool {
	return m.v.withinSC(m.sc, attr, i, j, max)
}

// MatchesLHS mirrors View.MatchesLHS.
func (m *Matcher) MatchesLHS(dep *rfd.RFD, i, j int) bool {
	return m.v.matchesLHSSC(m.sc, dep, i, j)
}

// Violates mirrors View.Violates.
func (m *Matcher) Violates(dep *rfd.RFD, i, j int) bool {
	return m.v.violatesSC(m.sc, dep, i, j)
}

// DistMin mirrors View.DistMin.
func (m *Matcher) DistMin(deps rfd.Set, i, j int) (float64, bool) {
	return m.v.distMinSC(m.sc, deps, i, j)
}

// PatternInto mirrors View.PatternInto.
func (m *Matcher) PatternInto(p distance.Pattern, i, j int) {
	m.v.patternIntoSC(m.sc, p, i, j)
}

// PatternBetween mirrors View.PatternBetween.
func (m *Matcher) PatternBetween(i, j int) distance.Pattern {
	p := distance.NewPattern(m.v.m)
	m.v.patternIntoSC(m.sc, p, i, j)
	return p
}
