package engine

import (
	"math"
	"slices"
	"sort"
	"sync/atomic"

	"repro/internal/dataset"
	"repro/internal/rfd"
)

// Index is the generalized candidate index over a view, subsuming the
// threshold-0-only donor index: for every attribute appearing on some
// LHS in Σ it maintains
//
//   - exact-match buckets (value class + payload → rows), answering
//     threshold-0 constraints exactly;
//   - a sorted numeric column (value, row), answering positive numeric
//     thresholds with a range probe [v-th, v+th];
//   - string length buckets (rune count → rows), pruning positive
//     string thresholds via edit distance >= length difference.
//
// A probe returns a superset of the rows that can satisfy the probed
// constraint, so restricting the candidate scan to the probe result is
// always sound; the scan itself still scores every returned row.
type Index struct {
	v      *View
	lhs    []bool            // attr appears on some LHS in Σ
	eq     []map[eqKey][]int // exact-match buckets per attr
	numV   [][]float64       // sorted numeric values per attr
	numR   [][]int           // rows aligned with numV
	lens   []map[int][]int   // string length buckets per attr
	probes atomic.Int64
}

// eqKey buckets a cell by value class and payload: strings by interned
// id, numerics by canonicalized float bits (int/float cross-kind pairs
// with equal payloads must collide, and -0 must match +0), booleans by
// 0/1.
type eqKey struct {
	cls  uint8
	bits uint64
}

const (
	clsString uint8 = iota
	clsNumeric
	clsBool
)

// eqKeyFor returns the bucket key for a flat cell, or ok=false for a
// null cell.
func (ix *Index) eqKeyFor(flat, attr int) (eqKey, bool) {
	c, r := ix.v.colAt(attr, flat)
	switch k := c.kind[r]; {
	case k == dataset.KindNull:
		return eqKey{}, false
	case k == dataset.KindString:
		return eqKey{cls: clsString, bits: uint64(c.sid[r])}, true
	case k == dataset.KindBool:
		return eqKey{cls: clsBool, bits: uint64(c.num[r])}, true
	default:
		f := c.num[r]
		if f == 0 {
			f = 0 // canonicalize -0
		}
		return eqKey{cls: clsNumeric, bits: math.Float64bits(f)}, true
	}
}

// lhsMask returns the attributes Σ constrains on some LHS, or nil when
// there are none (no index is worth building then).
func lhsMask(m int, sigma rfd.Set) []bool {
	lhs := make([]bool, m)
	any := false
	for _, dep := range sigma {
		for _, c := range dep.LHS {
			lhs[c.Attr] = true
			any = true
		}
	}
	if !any {
		return nil
	}
	return lhs
}

// LHSMask returns the mask of attributes Σ constrains on some LHS over
// an arity-m schema, or nil when there are none — the mask NewIndex
// builds for. Exposed so epoch maintenance can decide whether an
// existing index still covers a revalidated Σ.
func LHSMask(m int, sigma rfd.Set) []bool { return lhsMask(m, sigma) }

// NewIndex builds the index over every flat row of the view for the
// attributes Σ constrains on some LHS. It returns nil when Σ is empty.
func NewIndex(v *View, sigma rfd.Set) *Index {
	lhs := lhsMask(v.Arity(), sigma)
	if lhs == nil {
		return nil
	}
	return newIndexRange(v, lhs, 0, v.Len())
}

// newIndexRange builds an index over the contiguous flat row range
// [lo, hi) — the whole view for the monolithic index, one sub-pool band
// for a ShardedIndex member.
func newIndexRange(v *View, lhs []bool, lo, hi int) *Index {
	m := v.Arity()
	ix := &Index{
		v:    v,
		lhs:  lhs,
		eq:   make([]map[eqKey][]int, m),
		numV: make([][]float64, m),
		numR: make([][]int, m),
		lens: make([]map[int][]int, m),
	}
	for a := 0; a < m; a++ {
		if !lhs[a] {
			continue
		}
		ix.eq[a] = make(map[eqKey][]int)
		ix.lens[a] = make(map[int][]int)
	}
	// Bulk build: flat indices arrive ascending, so appending keeps every
	// bucket's row list sorted without per-insert shifting; the sorted
	// numeric columns are sorted once at the end (O(n log n) instead of
	// the O(n²) memmove of repeated sorted inserts).
	for flat := lo; flat < hi; flat++ {
		for a := 0; a < m; a++ {
			if !lhs[a] {
				continue
			}
			key, ok := ix.eqKeyFor(flat, a)
			if !ok {
				continue
			}
			ix.eq[a][key] = append(ix.eq[a][key], flat)
			c, r := v.colAt(a, flat)
			switch c.kind[r] {
			case dataset.KindString:
				l := v.interns[a].lenOf(c.sid[r])
				ix.lens[a][l] = append(ix.lens[a][l], flat)
			case dataset.KindInt, dataset.KindFloat:
				ix.numV[a] = append(ix.numV[a], c.num[r])
				ix.numR[a] = append(ix.numR[a], flat)
			}
		}
	}
	for a := 0; a < m; a++ {
		if lhs[a] && len(ix.numV[a]) > 0 {
			sortNumeric(ix.numV[a], ix.numR[a])
		}
	}
	return ix
}

// CloneFor deep-copies the index onto a successor view — the
// insert-only epoch-maintenance path: when a delta appends rows without
// deleting, updating, remapping interned ids, or changing Σ's LHS
// attribute set, every existing bucket stays valid (flat indices and
// sids are preserved by Evolve), so the new epoch clones the buckets
// and registers only the inserted rows through Insert instead of
// rebuilding over the whole instance. The probe counter starts at zero;
// it is per-instance observability, not state. Nil-safe.
func (ix *Index) CloneFor(v *View) *Index {
	if ix == nil {
		return nil
	}
	m := len(ix.lhs)
	out := &Index{
		v:    v,
		lhs:  slices.Clone(ix.lhs),
		eq:   make([]map[eqKey][]int, m),
		numV: make([][]float64, m),
		numR: make([][]int, m),
		lens: make([]map[int][]int, m),
	}
	for a := 0; a < m; a++ {
		if ix.eq[a] != nil {
			out.eq[a] = make(map[eqKey][]int, len(ix.eq[a]))
			for k, rows := range ix.eq[a] {
				out.eq[a][k] = slices.Clone(rows)
			}
		}
		out.numV[a] = slices.Clone(ix.numV[a])
		out.numR[a] = slices.Clone(ix.numR[a])
		if ix.lens[a] != nil {
			out.lens[a] = make(map[int][]int, len(ix.lens[a]))
			for l, rows := range ix.lens[a] {
				out.lens[a][l] = slices.Clone(rows)
			}
		}
	}
	return out
}

// LHSAttrs returns a copy of the indexed-attribute mask (the attributes
// Σ constrained on some LHS at build time). Nil-safe.
func (ix *Index) LHSAttrs() []bool {
	if ix == nil {
		return nil
	}
	return slices.Clone(ix.lhs)
}

// sortNumeric sorts the paired (value, row) columns by (value, row) in
// lockstep — the order Insert maintains.
func sortNumeric(vals []float64, rows []int) {
	entries := make([]numEntry, len(vals))
	for i := range entries {
		entries[i] = numEntry{v: vals[i], r: rows[i]}
	}
	slices.SortFunc(entries, func(a, b numEntry) int {
		switch {
		case a.v < b.v:
			return -1
		case a.v > b.v:
			return 1
		default:
			return a.r - b.r
		}
	})
	for i, e := range entries {
		vals[i], rows[i] = e.v, e.r
	}
}

type numEntry struct {
	v float64
	r int
}

// add registers one non-null cell in every structure covering its
// class, preserving each structure's order for an arbitrary flat index.
func (ix *Index) add(flat, attr int) {
	key, ok := ix.eqKeyFor(flat, attr)
	if !ok {
		return
	}
	ix.eq[attr][key] = insertRow(ix.eq[attr][key], flat)
	c, r := ix.v.colAt(attr, flat)
	switch c.kind[r] {
	case dataset.KindString:
		l := ix.v.interns[attr].lenOf(c.sid[r])
		ix.lens[attr][l] = insertRow(ix.lens[attr][l], flat)
	case dataset.KindInt, dataset.KindFloat:
		val := c.num[r]
		pos := sort.SearchFloat64s(ix.numV[attr], val)
		// Among equal values, keep rows ascending.
		for pos < len(ix.numV[attr]) && ix.numV[attr][pos] == val && ix.numR[attr][pos] < flat {
			pos++
		}
		ix.numV[attr] = append(ix.numV[attr], 0)
		copy(ix.numV[attr][pos+1:], ix.numV[attr][pos:])
		ix.numV[attr][pos] = val
		ix.numR[attr] = append(ix.numR[attr], 0)
		copy(ix.numR[attr][pos+1:], ix.numR[attr][pos:])
		ix.numR[attr][pos] = flat
	}
}

// insertRow inserts row into an ascending list, keeping order.
func insertRow(list []int, row int) []int {
	pos := sort.SearchInts(list, row)
	list = append(list, 0)
	copy(list[pos+1:], list[pos:])
	list[pos] = row
	return list
}

// Insert records a committed imputation: the new value at (row, attr)
// becomes probeable. Nil-safe; no-op for unindexed attributes and null
// values (imputation only ever turns nulls into values, so no deletes).
func (ix *Index) Insert(row, attr int) {
	if ix == nil || !ix.lhs[attr] {
		return
	}
	ix.add(row, attr)
}

// Probes returns how many index probes were answered. Nil-safe.
func (ix *Index) Probes() int64 {
	if ix == nil {
		return 0
	}
	return ix.probes.Load()
}

// probe describes one answerable constraint probe: an estimate of its
// result size and a collector appending the matching rows.
type probe struct {
	est     int
	collect func(out []int) []int
}

// probeFor returns the cheapest probe answering one LHS constraint for
// the query row, or ok=false when the constraint's class has no
// structure (never happens for indexed attributes with non-null query
// values, kept for safety).
func (ix *Index) probeFor(row int, c rfd.Constraint) (probe, bool) {
	v := ix.v
	attr := c.Attr
	cl, rr := v.colAt(attr, row)
	kind := cl.kind[rr]
	if c.Threshold == 0 {
		key, ok := ix.eqKeyFor(row, attr)
		if !ok {
			return probe{}, false
		}
		rows := ix.eq[attr][key]
		return probe{est: len(rows), collect: func(out []int) []int {
			return append(out, rows...)
		}}, true
	}
	switch {
	case kind == dataset.KindString:
		l := v.interns[attr].lenOf(cl.sid[rr])
		bound := int(math.Floor(c.Threshold))
		est := 0
		for d := l - bound; d <= l+bound; d++ {
			est += len(ix.lens[attr][d])
		}
		return probe{est: est, collect: func(out []int) []int {
			for d := l - bound; d <= l+bound; d++ {
				out = append(out, ix.lens[attr][d]...)
			}
			return out
		}}, true
	case kind.Numeric():
		val := cl.num[rr]
		lo := sort.SearchFloat64s(ix.numV[attr], val-c.Threshold)
		hi := sort.Search(len(ix.numV[attr]), func(k int) bool {
			return ix.numV[attr][k] > val+c.Threshold
		})
		return probe{est: hi - lo, collect: func(out []int) []int {
			return append(out, ix.numR[attr][lo:hi]...)
		}}, true
	case kind == dataset.KindBool:
		if c.Threshold >= 1 {
			t := ix.eq[attr][eqKey{cls: clsBool, bits: 1}]
			f := ix.eq[attr][eqKey{cls: clsBool, bits: 0}]
			return probe{est: len(t) + len(f), collect: func(out []int) []int {
				return append(append(out, t...), f...)
			}}, true
		}
		rows := ix.eq[attr][eqKey{cls: clsBool, bits: uint64(cl.num[rr])}]
		return probe{est: len(rows), collect: func(out []int) []int {
			return append(out, rows...)
		}}, true
	default:
		return probe{}, false
	}
}

// CandidateRows returns the flat rows worth scanning for the cluster:
// for each dependency, the result of its most selective answerable
// probe (a dependency with a null query component on its LHS
// contributes nothing — its premise can never be satisfied). The result
// is a deduplicated ascending row list excluding the query row; the
// boolean is false when the index cannot beat the full sweep — some
// dependency has no answerable probe, or the combined probe estimate
// approaches the instance size. Nil-safe.
func (ix *Index) CandidateRows(row int, deps rfd.Set) ([]int, bool) {
	if ix == nil {
		return nil, false
	}
	v := ix.v
	var probes []probe
	total := 0
	for _, dep := range deps {
		null := false
		for _, c := range dep.LHS {
			if v.IsNull(row, c.Attr) {
				null = true
				break
			}
		}
		if null {
			continue
		}
		var best probe
		found := false
		for _, c := range dep.LHS {
			p, ok := ix.probeFor(row, c)
			if !ok {
				continue
			}
			if !found || p.est < best.est {
				best, found = p, true
			}
		}
		if !found {
			return nil, false
		}
		probes = append(probes, best)
		total += best.est
	}
	if total > v.Len()*3/4 {
		// The probes are barely selective: the dedup + sort overhead
		// would exceed what the sweep saves.
		return nil, false
	}
	var out []int
	for _, p := range probes {
		out = p.collect(out)
	}
	ix.probes.Add(int64(len(probes)))
	return finishCandidates(out, row), true
}

// finishCandidates turns raw probe output into the CandidateRows
// contract: a deduplicated ascending row list excluding the query row.
// Shared by the monolithic and sharded indexes — both feed it the same
// row multiset, so both emit the same list.
func finishCandidates(out []int, row int) []int {
	if len(out) == 0 {
		return nil
	}
	sort.Ints(out)
	dedup := out[:1]
	for _, r := range out[1:] {
		if r != dedup[len(dedup)-1] {
			dedup = append(dedup, r)
		}
	}
	// Exclude the query row itself.
	for k, r := range dedup {
		if r == row {
			dedup = append(dedup[:k], dedup[k+1:]...)
			break
		}
	}
	return dedup
}
