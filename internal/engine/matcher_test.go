package engine

import (
	"fmt"
	"math/rand"
	"runtime/debug"
	"testing"

	"repro/internal/distance"
	"repro/internal/rfd"
)

// TestMatcherViewParity: a Matcher answers every evaluation exactly as
// the View it wraps — the arena changes where scratch memory lives,
// never the result.
func TestMatcherViewParity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		rel := randomMixedRelation(rng, 12)
		schema := rel.Schema()
		sigma := rfd.Set{
			rfd.MustParse("S(<=2) -> I(<=1)", schema),
			rfd.MustParse("I(<=1), F(<=0.5) -> S(<=3)", schema),
			rfd.MustParse("B(<=0), X(<=2) -> F(<=1)", schema),
		}
		v := Compile(rel)
		m := v.Matcher()
		for i := 0; i < rel.Len(); i++ {
			for j := 0; j < rel.Len(); j++ {
				for a := 0; a < v.Arity(); a++ {
					if got, want := m.Distance(a, i, j), v.Distance(a, i, j); !sameDist(got, want) {
						t.Fatalf("trial %d: Matcher.Distance(%d,%d,%d) = %v, view %v",
							trial, a, i, j, got, want)
					}
					for _, th := range []float64{0, 1, 2.5} {
						if got, want := m.Within(a, i, j, th), v.Within(a, i, j, th); got != want {
							t.Fatalf("trial %d: Matcher.Within(%d,%d,%d,%v) = %v, view %v",
								trial, a, i, j, th, got, want)
						}
					}
				}
				for _, dep := range sigma {
					if got, want := m.MatchesLHS(dep, i, j), v.MatchesLHS(dep, i, j); got != want {
						t.Fatalf("trial %d: Matcher.MatchesLHS mismatch at (%d,%d)", trial, i, j)
					}
					if got, want := m.Violates(dep, i, j), v.Violates(dep, i, j); got != want {
						t.Fatalf("trial %d: Matcher.Violates mismatch at (%d,%d)", trial, i, j)
					}
				}
				gd, gok := m.DistMin(sigma, i, j)
				wd, wok := v.DistMin(sigma, i, j)
				if gok != wok || (wok && gd != wd) {
					t.Fatalf("trial %d: Matcher.DistMin(%d,%d) = %v,%v, view %v,%v",
						trial, i, j, gd, gok, wd, wok)
				}
				gp, wp := m.PatternBetween(i, j), v.PatternBetween(i, j)
				for a := range gp {
					if !sameDist(gp[a], wp[a]) {
						t.Fatalf("trial %d: Matcher.PatternBetween(%d,%d)[%d] = %v, view %v",
							trial, i, j, a, gp[a], wp[a])
					}
				}
			}
		}
	}
}

// TestMatcherSteadyStateZeroAlloc: once every distinct pair is
// memoized, a Matcher's evaluations allocate nothing — the arena and
// the frozen cache tier absorb all scratch state.
func TestMatcherSteadyStateZeroAlloc(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	rng := rand.New(rand.NewSource(12))
	rel := randomMixedRelation(rng, 16)
	v := Compile(rel)
	m := v.Matcher()
	p := distance.NewPattern(v.Arity())
	warm := func() {
		for i := 0; i < rel.Len(); i++ {
			for j := 0; j < rel.Len(); j++ {
				m.PatternInto(p, i, j)
				for a := 0; a < v.Arity(); a++ {
					m.Within(a, i, j, 1.5)
				}
			}
		}
	}
	warm() // memoize every pair, size the arena buffers
	warm() // force any pending frozen-tier merges with a second sweep
	if avg := testing.AllocsPerRun(20, warm); avg != 0 {
		t.Errorf("steady-state Matcher sweep allocates %.1f times per run, want 0", avg)
	}
}

// TestCacheMergePublishes: the overflow tier folds into the frozen map
// once it outgrows the merge threshold, and every entry stays readable
// through the promotion in either key order.
func TestCacheMergePublishes(t *testing.T) {
	c := newDistCache()
	const n = mergeFloor * numShards * 2 // enough that every shard merges
	for i := 0; i < n; i++ {
		c.put(0, int32(i), int32(i+1), int32(i%7))
	}
	frozenTotal := 0
	for s := range c.shards {
		if m := c.shards[s].frozen.Load(); m != nil {
			frozenTotal += len(*m)
		}
	}
	if frozenTotal == 0 {
		t.Fatalf("no shard published a frozen tier after %d inserts", n)
	}
	for i := 0; i < n; i++ {
		d, ok := c.get(0, int32(i+1), int32(i)) // reversed order must canonicalize
		if !ok || d != int32(i%7) {
			t.Fatalf("entry %d: got %d,%v want %d,true", i, d, ok, i%7)
		}
	}
	hits, misses := c.stats()
	if hits != n || misses != n {
		t.Fatalf("stats = %d hits, %d misses; want %d, %d", hits, misses, n, n)
	}
}

// TestCacheConcurrentMerge hammers one cache from writers and readers
// at once so the race detector can watch the frozen-tier publication
// (covered by the race make target).
func TestCacheConcurrentMerge(t *testing.T) {
	c := newDistCache()
	const keys = 4096
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			for iter := 0; iter < 20000; iter++ {
				k := int32(rng.Intn(keys))
				if d, ok := c.get(1, k, k+1); ok {
					if d != k%5 {
						errs <- fmt.Errorf("key %d: got %d, want %d", k, d, k%5)
						return
					}
				} else {
					c.put(1, k, k+1, k%5)
				}
			}
			errs <- nil
		}(int64(w))
	}
	for w := 0; w < 8; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestViewKernelParity: the compiled view produces identical distances
// and predicates under the forced banded kernel and the Myers kernel —
// the engine-level face of the differential harness.
func TestViewKernelParity(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	rel := randomMixedRelation(rng, 14)
	type snapshot struct {
		d []float64
		w []bool
	}
	run := func(k distance.Kernel) snapshot {
		prev := distance.SetKernel(k)
		defer distance.SetKernel(prev)
		v := Compile(rel)
		m := v.Matcher()
		var s snapshot
		for i := 0; i < rel.Len(); i++ {
			for j := 0; j < rel.Len(); j++ {
				for a := 0; a < v.Arity(); a++ {
					s.d = append(s.d, m.Distance(a, i, j))
					s.w = append(s.w, m.Within(a, i, j, 2))
				}
			}
		}
		return s
	}
	banded := run(distance.KernelBanded)
	myers := run(distance.KernelMyers)
	auto := run(distance.KernelAuto)
	for i := range banded.d {
		if !sameDist(banded.d[i], myers.d[i]) || !sameDist(banded.d[i], auto.d[i]) {
			t.Fatalf("distance %d: banded %v, myers %v, auto %v",
				i, banded.d[i], myers.d[i], auto.d[i])
		}
		if banded.w[i] != myers.w[i] || banded.w[i] != auto.w[i] {
			t.Fatalf("within %d: banded %v, myers %v, auto %v",
				i, banded.w[i], myers.w[i], auto.w[i])
		}
	}
}
