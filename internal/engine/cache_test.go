package engine

import (
	"math/rand"
	"testing"
)

func TestShardStatsSumToGlobals(t *testing.T) {
	c := newDistCache()
	// Distinct (attr, lo, hi) triples spread across shards.
	for i := int32(0); i < 500; i++ {
		c.put(int(i%7), i, i+1, i%5)
	}
	hits := 0
	for i := int32(0); i < 500; i++ {
		if _, ok := c.get(int(i%7), i, i+1); ok {
			hits++
		}
	}
	if hits != 500 {
		t.Fatalf("got %d hits, want 500", hits)
	}
	gh, gm := c.stats()
	shards := c.shardStats()
	if len(shards) != numShards {
		t.Fatalf("shardStats returned %d shards, want %d", len(shards), numShards)
	}
	var sh, sm int64
	for _, s := range shards {
		sh += s.Hits
		sm += s.Misses
	}
	if sh != gh || sm != gm {
		t.Fatalf("shard sums (%d, %d) != global stats (%d, %d)", sh, sm, gh, gm)
	}
	if gh != 500 || gm != 500 {
		t.Fatalf("global stats = (%d, %d), want (500, 500)", gh, gm)
	}
}

func TestShardMergeCounter(t *testing.T) {
	c := newDistCache()
	// Enough inserts that shards cross mergeFloor and fold their
	// overflow tiers into frozen maps.
	total := numShards * mergeFloor * 4
	for i := 0; i < total; i++ {
		c.put(1, int32(i), int32(i)+100_000, 1)
	}
	var merges int64
	for _, s := range c.shardStats() {
		merges += s.Merges
	}
	if merges == 0 {
		t.Fatalf("no shard merged after %d inserts (mergeFloor %d)", total, mergeFloor)
	}
	// Merged entries must remain readable through the frozen tier.
	if d, ok := c.get(1, 0, 100_000); !ok || d != 1 {
		t.Fatalf("entry lost after merge: d=%d ok=%v", d, ok)
	}
}

func TestSharedCacheShardStats(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	shared := Precompile(randomMixedRelation(rng, 30))
	v := shared.View()
	// String-column distances populate the shared cache; repeated reads
	// hit it.
	const stringAttr = 0
	for i := 0; i < 30; i++ {
		for j := i + 1; j < 30; j++ {
			v.Distance(stringAttr, i, j)
			v.Distance(stringAttr, i, j)
		}
	}
	stats := shared.CacheShardStats()
	if len(stats) != numShards {
		t.Fatalf("got %d shards", len(stats))
	}
	var hits, misses int64
	for _, s := range stats {
		hits += s.Hits
		misses += s.Misses
	}
	gh, gm := shared.CacheStats()
	if hits != gh || misses != gm {
		t.Fatalf("shard sums (%d, %d) != CacheStats (%d, %d)", hits, misses, gh, gm)
	}
	if misses == 0 || hits == 0 {
		t.Fatalf("expected both hits and misses, got (%d, %d)", hits, misses)
	}
}
