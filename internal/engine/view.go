// Package engine is the shared evaluation layer under imputation,
// verification, and discovery. Every consumer that used to hand-roll a
// distance-pattern loop — candidate search (Alg. 3), IS_FAULTLESS
// (Alg. 4), key-RFDc tracking, streaming maintenance, discovery — now
// evaluates tuple pairs through one compiled View:
//
//   - a columnar compiled form of the relation(s): per-attribute typed
//     columns with interned string values and pre-decoded rune slices,
//     so equal interned values short-circuit to distance 0 and the
//     banded Levenshtein kernel early-exits on length difference;
//   - a memoized pairwise distance cache keyed on (attr, interned value
//     pair), sharded for concurrent use from the parallel scans;
//   - one Matcher API (Distance / Within / MatchesLHS / Violates /
//     DistMin / PatternBetween) plus a generalized candidate Index.
//
// A View addresses rows by flat index: the target relation's rows come
// first ([0, TargetLen)), then each donor relation's rows in pool
// order. Single-relation views have Len() == TargetLen().
package engine

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/distance"
	"repro/internal/rfd"
)

// col is one attribute's columnar storage across all flat rows.
// Strings are represented by interned ids (sid); numerics and booleans
// by their float payload (num). Exactly one of the two is meaningful
// per cell, per kind.
type col struct {
	kind []dataset.Kind
	num  []float64
	sid  []int32
}

// interner assigns dense ids to the distinct string values of one
// attribute and pre-decodes each value's comparison symbols once. An
// interner may sit on top of a frozen lower tier (Shared.Extend):
// ids [0, nb) resolve through the base read-only, ids >= nb are local.
// The base tier is never written, so any number of upper tiers can
// share it concurrently.
type interner struct {
	base  *interner // frozen lower tier; nil for a root interner
	nb    int32     // number of ids owned by the base tier
	ids   map[string]int32
	strs  []string
	runes [][]rune
	lens  []int
	masks []uint64 // alphabet signatures (distance.RuneMask), one per id
}

func (in *interner) intern(s string) int32 {
	if in.base != nil {
		if id, ok := in.base.ids[s]; ok {
			return id
		}
	}
	if id, ok := in.ids[s]; ok {
		return id
	}
	if in.ids == nil {
		in.ids = make(map[string]int32)
	}
	id := in.nb + int32(len(in.strs))
	in.ids[s] = id
	r := distance.Runes(s)
	in.strs = append(in.strs, s)
	in.runes = append(in.runes, r)
	in.lens = append(in.lens, len(r))
	in.masks = append(in.masks, distance.RuneMask(r))
	return id
}

// runesOf resolves an id to its pre-decoded comparison symbols.
func (in *interner) runesOf(id int32) []rune {
	if id < in.nb {
		return in.base.runes[id]
	}
	return in.runes[id-in.nb]
}

// lenOf resolves an id to its symbol count.
func (in *interner) lenOf(id int32) int {
	if id < in.nb {
		return in.base.lens[id]
	}
	return in.lens[id-in.nb]
}

// maskOf resolves an id to its alphabet signature, computed once at
// intern time — the bounded predicate's pre-filter reads it instead of
// rescanning the runes.
func (in *interner) maskOf(id int32) uint64 {
	if id < in.nb {
		return in.base.masks[id]
	}
	return in.masks[id-in.nb]
}

// View is the compiled evaluation form of a target relation plus an
// optional donor pool. Reads (Distance, Within, MatchesLHS, ...) are
// safe for concurrent use; writes (Set, Append) must not race with
// reads — the imputation loop mutates only between scans, exactly as
// it did against the raw relation.
type View struct {
	rels    []*dataset.Relation // rels[0] is the target
	offsets []int               // offsets[s] = flat index of rels[s]'s row 0
	n       int                 // total flat rows
	m       int                 // arity
	cols    []col
	interns []*interner
	cache   *distCache

	// Two-tier views (Shared.Extend): flat rows >= baseOff resolve into
	// the shared base columns; cols above holds only the target segment.
	base    *Shared
	baseOff int
	// Shared-cache checkpoint taken at Extend time, so CacheStats can
	// report this view's own share of the shared traffic (approximate
	// when views run concurrently).
	baseHits0, baseMisses0 int64

	// frozen marks a read-only view over a Shared base: Set and Append
	// panic instead of corrupting state other views share.
	frozen bool
}

// colAt resolves a flat row to the columnar segment holding it and the
// row's index within that segment.
func (v *View) colAt(attr, flat int) (*col, int) {
	if v.base != nil && flat >= v.baseOff {
		return &v.base.cols[attr], flat - v.baseOff
	}
	return &v.cols[attr], flat
}

// Compile builds a single-relation view. The relation is referenced,
// not copied: Set and Append write through to it.
func Compile(rel *dataset.Relation) *View {
	return CompileWithDonors(rel, nil)
}

// CompileWithDonors builds a view over the target relation followed by
// the donor pool. Donor schemas must have the target's arity (the
// caller validates full schema compatibility).
func CompileWithDonors(rel *dataset.Relation, donors []*dataset.Relation) *View {
	m := rel.Schema().Len()
	v := &View{
		rels:    append([]*dataset.Relation{rel}, donors...),
		m:       m,
		cols:    make([]col, m),
		interns: make([]*interner, m),
		cache:   newDistCache(),
	}
	v.offsets = make([]int, len(v.rels))
	for s, r := range v.rels {
		v.offsets[s] = v.n
		v.n += r.Len()
	}
	for a := 0; a < m; a++ {
		v.interns[a] = &interner{}
		v.cols[a] = col{
			kind: make([]dataset.Kind, v.n),
			num:  make([]float64, v.n),
			sid:  make([]int32, v.n),
		}
	}
	flat := 0
	for _, r := range v.rels {
		for i := 0; i < r.Len(); i++ {
			t := r.Row(i)
			for a := 0; a < m; a++ {
				v.setCell(flat, a, t[a])
			}
			flat++
		}
	}
	return v
}

// setCell writes one cell into the columnar form.
func (v *View) setCell(flat, attr int, val dataset.Value) {
	c := &v.cols[attr]
	k := val.Kind()
	c.kind[flat] = k
	switch k {
	case dataset.KindString:
		c.sid[flat] = v.interns[attr].intern(val.Str())
		c.num[flat] = 0
	case dataset.KindNull:
		c.sid[flat] = -1
		c.num[flat] = 0
	default:
		c.num[flat] = val.Float()
		c.sid[flat] = -1
	}
}

// Arity returns the schema arity.
func (v *View) Arity() int { return v.m }

// Len returns the total number of flat rows (target + donors).
func (v *View) Len() int { return v.n }

// TargetLen returns the number of target-relation rows.
func (v *View) TargetLen() int { return v.rels[0].Len() }

// Relation returns the target relation the view compiles.
func (v *View) Relation() *dataset.Relation { return v.rels[0] }

// SourceOf resolves a flat row index to (source, row): source -1 is the
// target relation, 0.. indexes the donor pool.
func (v *View) SourceOf(flat int) (source, row int) {
	for s := len(v.offsets) - 1; s >= 0; s-- {
		if flat >= v.offsets[s] {
			return s - 1, flat - v.offsets[s]
		}
	}
	return -1, flat
}

// IsNull reports whether the cell at (flat, attr) is missing.
func (v *View) IsNull(flat, attr int) bool {
	c, r := v.colAt(attr, flat)
	return c.kind[r] == dataset.KindNull
}

// Value returns the cell at (flat, attr).
func (v *View) Value(flat, attr int) dataset.Value {
	s, row := v.SourceOf(flat)
	return v.rels[s+1].Get(row, attr)
}

// Set writes a target-relation cell through to both the relation and
// the columnar form, so tentative imputations are immediately visible
// to every evaluation. Frozen views (Shared.View) panic: their storage
// is shared with every other view derived from the same base.
func (v *View) Set(row, attr int, val dataset.Value) {
	if v.frozen {
		panic("engine: Set on a frozen shared view")
	}
	v.rels[0].Set(row, attr, val)
	v.setCell(row, attr, val)
}

// Append adds one tuple to a single-relation view (the incremental
// consumers: streams and maintainers), keeping relation and columns in
// step. It fails on multi-source views, where flat indices of later
// sources would shift.
func (v *View) Append(t dataset.Tuple) error {
	if len(v.rels) != 1 {
		return fmt.Errorf("engine: Append on a multi-source view")
	}
	if v.frozen {
		return fmt.Errorf("engine: Append on a frozen shared view")
	}
	if err := v.rels[0].Append(t); err != nil {
		return err
	}
	flat := v.n
	v.n++
	for a := 0; a < v.m; a++ {
		c := &v.cols[a]
		c.kind = append(c.kind, dataset.KindNull)
		c.num = append(c.num, 0)
		c.sid = append(c.sid, -1)
		v.setCell(flat, a, t[a])
	}
	return nil
}

// Distance returns the domain-appropriate distance between the cells at
// (i, attr) and (j, attr), mirroring distance.Values exactly: Missing
// when either side is null or the kinds are incomparable. Equal
// interned strings short-circuit to 0; distinct pairs are answered by
// the memoized cache.
func (v *View) Distance(attr, i, j int) float64 {
	return v.distanceSC(nil, attr, i, j)
}

// distanceSC is Distance with an optional per-worker kernel arena: nil
// borrows one from the distance package's pool on the (rare) compute
// path, a Matcher passes its own.
func (v *View) distanceSC(sc *distance.Scratch, attr, i, j int) float64 {
	ci, ri := v.colAt(attr, i)
	cj, rj := v.colAt(attr, j)
	ki, kj := ci.kind[ri], cj.kind[rj]
	if ki == dataset.KindNull || kj == dataset.KindNull {
		return distance.Missing
	}
	switch {
	case ki == dataset.KindString && kj == dataset.KindString:
		a, b := ci.sid[ri], cj.sid[rj]
		if a == b {
			return 0
		}
		return v.stringDistance(sc, attr, a, b)
	case ki.Numeric() && kj.Numeric():
		return math.Abs(ci.num[ri] - cj.num[rj])
	case ki == dataset.KindBool && kj == dataset.KindBool:
		if ci.num[ri] == cj.num[rj] {
			return 0
		}
		return 1
	default:
		return distance.Missing
	}
}

// cacheOf routes an interned pair to the cache tier that owns it: pairs
// of base-tier ids go to the shared base cache (so the memo carries
// across every view of the same Shared), pairs involving a request-local
// id stay in the view's own cache and die with it.
func (v *View) cacheOf(attr int, a, b int32) *distCache {
	if v.base != nil {
		if nb := v.interns[attr].nb; a < nb && b < nb {
			return v.base.cache
		}
	}
	return v.cache
}

// stringDistance answers a distinct interned pair from the cache,
// computing and memoizing on miss (through the caller's arena when one
// is threaded in).
func (v *View) stringDistance(sc *distance.Scratch, attr int, a, b int32) float64 {
	cache := v.cacheOf(attr, a, b)
	if d, ok := cache.get(attr, a, b); ok {
		return float64(d)
	}
	in := v.interns[attr]
	var d int32
	if sc != nil {
		d = int32(sc.LevenshteinRunes(in.runesOf(a), in.runesOf(b)))
	} else {
		d = int32(distance.LevenshteinRunes(in.runesOf(a), in.runesOf(b)))
	}
	cache.put(attr, a, b, d)
	return float64(d)
}

// Within reports whether Distance(attr, i, j) <= max, mirroring
// distance.ValuesWithin: false when either side is null or the kinds
// are incomparable. For strings it consults the cache first and falls
// back to the bounded kernel — behind its length and alphabet-mask
// pre-filters — without storing, so a failed threshold check never pays
// for an exact distance.
func (v *View) Within(attr, i, j int, max float64) bool {
	return v.withinSC(nil, attr, i, j, max)
}

// withinSC is Within with an optional per-worker kernel arena.
func (v *View) withinSC(sc *distance.Scratch, attr, i, j int, max float64) bool {
	ci, ri := v.colAt(attr, i)
	cj, rj := v.colAt(attr, j)
	ki, kj := ci.kind[ri], cj.kind[rj]
	if ki == dataset.KindNull || kj == dataset.KindNull {
		return false
	}
	switch {
	case ki == dataset.KindString && kj == dataset.KindString:
		// The integer bound is taken before the equality fast path so
		// out-of-range thresholds convert exactly as LevenshteinWithin's.
		bound := int(math.Floor(max))
		if bound < 0 {
			return false
		}
		a, b := ci.sid[ri], cj.sid[rj]
		if a == b {
			return true
		}
		in := v.interns[attr]
		if abs(in.lenOf(a)-in.lenOf(b)) > bound {
			// Edit distance is at least the length difference.
			return false
		}
		if d, ok := v.cacheOf(attr, a, b).get(attr, a, b); ok {
			return int(d) <= bound
		}
		// Miss: run the bounded kernel with the interned alphabet
		// signatures, so the mask pre-filter costs two loads, not a
		// rune scan.
		if sc != nil {
			return sc.WithinRunesMasked(in.runesOf(a), in.runesOf(b), in.maskOf(a), in.maskOf(b), bound)
		}
		return distance.LevenshteinRunesWithinMasked(in.runesOf(a), in.runesOf(b), in.maskOf(a), in.maskOf(b), bound)
	case ki.Numeric() && kj.Numeric():
		return math.Abs(ci.num[ri]-cj.num[rj]) <= max
	case ki == dataset.KindBool && kj == dataset.KindBool:
		d := 1.0
		if ci.num[ri] == cj.num[rj] {
			d = 0
		}
		return d <= max
	default:
		return false
	}
}

// MatchesLHS reports whether the pair (i, j) satisfies every LHS
// constraint of the dependency, early-exiting on the first failed
// attribute — the threshold-aware form of LHSSatisfiedBy.
func (v *View) MatchesLHS(dep *rfd.RFD, i, j int) bool {
	return v.matchesLHSSC(nil, dep, i, j)
}

func (v *View) matchesLHSSC(sc *distance.Scratch, dep *rfd.RFD, i, j int) bool {
	for _, c := range dep.LHS {
		if !v.withinSC(sc, c.Attr, i, j, c.Threshold) {
			return false
		}
	}
	return true
}

// Violates reports whether the pair (i, j) witnesses a violation of the
// dependency: LHS satisfied and the RHS distance present but above the
// threshold (a missing RHS component is not a witness).
func (v *View) Violates(dep *rfd.RFD, i, j int) bool {
	return v.violatesSC(nil, dep, i, j)
}

func (v *View) violatesSC(sc *distance.Scratch, dep *rfd.RFD, i, j int) bool {
	if !v.matchesLHSSC(sc, dep, i, j) {
		return false
	}
	d := v.distanceSC(sc, dep.RHS.Attr, i, j)
	return !distance.IsMissing(d) && d > dep.RHS.Threshold
}

// DistMin scores the pair (i, j) with Eq. 2: the minimum, over the
// dependencies whose LHS the pair satisfies, of the mean LHS distance.
// The summation runs in LHS attribute order, so results are
// bit-identical to Pattern.MeanOver over LHSAttrs.
func (v *View) DistMin(deps rfd.Set, i, j int) (float64, bool) {
	return v.distMinSC(nil, deps, i, j)
}

func (v *View) distMinSC(sc *distance.Scratch, deps rfd.Set, i, j int) (float64, bool) {
	distMin, found := 0.0, false
	for _, dep := range deps {
		if !v.matchesLHSSC(sc, dep, i, j) {
			continue
		}
		sum := 0.0
		for _, c := range dep.LHS {
			sum += v.distanceSC(sc, c.Attr, i, j)
		}
		d := sum / float64(len(dep.LHS))
		if !found || d < distMin {
			distMin, found = d, true
		}
	}
	return distMin, found
}

// PatternInto fills p with the full distance pattern of the pair
// (i, j). The slice must have len == Arity().
func (v *View) PatternInto(p distance.Pattern, i, j int) {
	v.patternIntoSC(nil, p, i, j)
}

func (v *View) patternIntoSC(sc *distance.Scratch, p distance.Pattern, i, j int) {
	for a := 0; a < v.m; a++ {
		p[a] = v.distanceSC(sc, a, i, j)
	}
}

// PatternBetween returns the distance pattern of the pair (i, j).
func (v *View) PatternBetween(i, j int) distance.Pattern {
	p := distance.NewPattern(v.m)
	v.PatternInto(p, i, j)
	return p
}

// CacheStats returns the distance cache's cumulative hit and miss
// counts. For two-tier views this is the view's local traffic plus its
// share of the shared base cache since the view was created (the share
// is approximate when sibling views run concurrently).
func (v *View) CacheStats() (hits, misses int64) {
	hits, misses = v.cache.stats()
	if v.base != nil {
		bh, bm := v.base.cache.stats()
		hits += bh - v.baseHits0
		misses += bm - v.baseMisses0
	}
	return hits, misses
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
