package engine

// Artifact codec for the compiled engine state: the columnar View form
// of the base relation, the per-attribute interning tables (string
// blobs, pre-decoded rune slabs, rune lengths, alphabet masks), and the
// candidate Index buckets. Everything is written as flat count-prefixed
// slabs with offset-based references — string i of an interner is the
// blob window [offsets[i], offsets[i+1]), its runes the window of the
// flat rune slab starting at the running sum of lens — so a decode
// reconstructs the pointer graph from integers without chasing any
// serialized pointers, and map-backed structures are written in sorted
// key order so the encoding is deterministic.
//
// The distance cache is deliberately not serialized: it is a pure memo,
// so a freshly loaded Shared starts cold and converges to the same
// contents — and identical results — as a freshly compiled one.

import (
	"math"
	"sort"

	"repro/internal/artifact"
	"repro/internal/dataset"
)

// EncodeTo writes the compiled base state — schema, columns, interning
// tables — into the builder as the SecSchema, SecColumns, and
// SecInterners sections.
func (s *Shared) EncodeTo(b *artifact.Builder) {
	b.Begin(artifact.SecSchema)
	sch := s.rel.Schema()
	b.Uint32(uint32(sch.Len()))
	for a := 0; a < sch.Len(); a++ {
		at := sch.Attr(a)
		b.String(at.Name)
		b.Uint8(uint8(at.Kind))
	}

	b.Begin(artifact.SecColumns)
	b.Uint64(uint64(s.n))
	b.Uint32(uint32(s.m))
	for a := 0; a < s.m; a++ {
		c := &s.cols[a]
		kinds := make([]uint8, s.n)
		for i, k := range c.kind {
			kinds[i] = uint8(k)
		}
		b.Uint8s(kinds)
		b.Float64s(c.num)
		b.Int32s(c.sid)
	}

	b.Begin(artifact.SecInterners)
	b.Uint32(uint32(s.m))
	for a := 0; a < s.m; a++ {
		encodeInterner(b, s.interns[a])
	}
}

// encodeInterner writes one interning table as five slabs: the
// concatenated string blob, the blob offset table (count+1 entries),
// the rune lengths, the alphabet masks, and one flat rune slab holding
// every value's pre-decoded runes back to back.
func encodeInterner(b *artifact.Builder, in *interner) {
	var blob []byte
	offsets := make([]uint32, len(in.strs)+1)
	for i, s := range in.strs {
		blob = append(blob, s...)
		offsets[i+1] = uint32(len(blob))
	}
	lens := make([]int32, len(in.lens))
	total := 0
	for i, l := range in.lens {
		lens[i] = int32(l)
		total += l
	}
	flat := make([]rune, 0, total)
	for _, r := range in.runes {
		flat = append(flat, r...)
	}
	b.Bytes(blob)
	b.Uint32s(offsets)
	b.Int32s(lens)
	b.Uint64s(in.masks)
	b.Runes(flat)
}

// decodeInterner reads one interning table. The string blob is
// converted to a Go string once; every interned value is a substring
// window into it, and every rune slice a window into the one flat rune
// slab — the same single-arena shape the encoder flattened.
func decodeInterner(c *artifact.Cursor) (*interner, error) {
	blobBytes := c.Bytes()
	offsets := c.Uint32s()
	lens32 := c.Int32s()
	masks := c.Uint64s()
	flat := c.Runes()
	if err := c.Err(); err != nil {
		return nil, err
	}
	if len(offsets) == 0 {
		return nil, artifact.Corruptf("interner: empty offset table")
	}
	count := len(offsets) - 1
	if len(lens32) != count || len(masks) != count {
		return nil, artifact.Corruptf("interner: %d offsets but %d lens, %d masks", count, len(lens32), len(masks))
	}
	if offsets[0] != 0 || offsets[count] != uint32(len(blobBytes)) {
		return nil, artifact.Corruptf("interner: offset table does not span the %d-byte blob", len(blobBytes))
	}
	if count == 0 {
		if len(flat) != 0 {
			return nil, artifact.Corruptf("interner: %d runes behind zero values", len(flat))
		}
		// Match a freshly compiled empty interner exactly (nil slabs,
		// ids map allocated lazily on first intern).
		return &interner{}, nil
	}
	blob := string(blobBytes)
	in := &interner{
		ids:   make(map[string]int32, count),
		strs:  make([]string, count),
		runes: make([][]rune, count),
		lens:  make([]int, count),
		masks: masks,
	}
	pos := 0
	for i := 0; i < count; i++ {
		if offsets[i+1] < offsets[i] {
			return nil, artifact.Corruptf("interner: offset table not monotonic at %d", i)
		}
		s := blob[offsets[i]:offsets[i+1]]
		if _, dup := in.ids[s]; dup {
			return nil, artifact.Corruptf("interner: duplicate value %q", s)
		}
		in.ids[s] = int32(i)
		in.strs[i] = s
		l := int(lens32[i])
		if l < 0 || pos+l > len(flat) {
			return nil, artifact.Corruptf("interner: rune window %d+%d exceeds slab of %d", pos, l, len(flat))
		}
		in.runes[i] = flat[pos : pos+l : pos+l]
		in.lens[i] = l
		pos += l
	}
	if pos != len(flat) {
		return nil, artifact.Corruptf("interner: %d runes consumed of %d in slab", pos, len(flat))
	}
	return in, nil
}

// DecodeShared reconstructs a compiled base — columns, interning
// tables, and the backing relation — from an artifact's SecSchema,
// SecColumns, and SecInterners sections. The distance cache starts
// cold. Every structural cross-reference (kinds, interned ids, slab
// lengths) is validated, so a checksum-valid but semantically corrupt
// artifact fails with a typed error instead of compiling an
// inconsistent engine.
func DecodeShared(r *artifact.Reader) (*Shared, error) {
	sc, ok := r.Section(artifact.SecSchema)
	if !ok {
		return nil, artifact.Corruptf("missing schema section")
	}
	m := int(sc.Uint32())
	if sc.Err() != nil {
		return nil, sc.Err()
	}
	if m < 0 || m > sc.Remaining() {
		return nil, artifact.Corruptf("schema: arity %d exceeds section", m)
	}
	attrs := make([]dataset.Attribute, m)
	seen := make(map[string]bool, m)
	for a := 0; a < m; a++ {
		name := sc.String()
		kind := dataset.Kind(sc.Uint8())
		if sc.Err() != nil {
			return nil, sc.Err()
		}
		if name == "" || seen[name] {
			return nil, artifact.Corruptf("schema: empty or duplicate attribute %q", name)
		}
		if kind > dataset.KindBool {
			return nil, artifact.Corruptf("schema: attribute %q has unknown kind %d", name, kind)
		}
		seen[name] = true
		attrs[a] = dataset.Attribute{Name: name, Kind: kind}
	}
	schema := dataset.NewSchema(attrs...)

	cc, ok := r.Section(artifact.SecColumns)
	if !ok {
		return nil, artifact.Corruptf("missing columns section")
	}
	n := int(cc.Uint64())
	if int(cc.Uint32()) != m || cc.Err() != nil {
		if cc.Err() != nil {
			return nil, cc.Err()
		}
		return nil, artifact.Corruptf("columns: arity disagrees with schema")
	}
	if n < 0 || n > cc.Remaining() {
		return nil, artifact.Corruptf("columns: row count %d exceeds section", n)
	}
	cols := make([]col, m)
	for a := 0; a < m; a++ {
		kinds := cc.Uint8s()
		num := cc.Float64s()
		sid := cc.Int32s()
		if err := cc.Err(); err != nil {
			return nil, err
		}
		if len(kinds) != n || len(num) != n || len(sid) != n {
			return nil, artifact.Corruptf("columns: attr %d slabs disagree with row count %d", a, n)
		}
		ck := make([]dataset.Kind, n)
		for i, k := range kinds {
			ck[i] = dataset.Kind(k)
		}
		cols[a] = col{kind: ck, num: num, sid: sid}
	}

	ic, ok := r.Section(artifact.SecInterners)
	if !ok {
		return nil, artifact.Corruptf("missing interners section")
	}
	if int(ic.Uint32()) != m {
		if ic.Err() != nil {
			return nil, ic.Err()
		}
		return nil, artifact.Corruptf("interners: arity disagrees with schema")
	}
	interns := make([]*interner, m)
	for a := 0; a < m; a++ {
		in, err := decodeInterner(ic)
		if err != nil {
			return nil, err
		}
		interns[a] = in
	}

	// The relation is rebuilt cell by cell through Set rather than
	// Append: Append enforces schema kinds, but a live base may carry
	// cross-kind cells written through View.Set (imputations from
	// cross-typed donors), and the decode must reproduce the encoded
	// state exactly.
	rel := dataset.NewRelation(schema)
	for i := 0; i < n; i++ {
		if err := rel.Append(make(dataset.Tuple, m)); err != nil {
			return nil, artifact.Corruptf("row %d: %v", i, err)
		}
		for a := 0; a < m; a++ {
			v, err := cellValue(&cols[a], interns[a], i, a)
			if err != nil {
				return nil, err
			}
			rel.Set(i, a, v)
		}
	}
	return &Shared{rel: rel, n: n, m: m, cols: cols, interns: interns, cache: newDistCache()}, nil
}

// cellValue reconstructs the dataset.Value behind one columnar cell,
// validating that the cell is expressible — the decoded relation must
// re-compile to exactly these columns.
func cellValue(c *col, in *interner, row, attr int) (dataset.Value, error) {
	switch k := c.kind[row]; k {
	case dataset.KindNull:
		return dataset.Null, nil
	case dataset.KindString:
		sid := c.sid[row]
		if sid < 0 || int(sid) >= len(in.strs) {
			return dataset.Value{}, artifact.Corruptf("cell (%d, %d): string id %d of %d", row, attr, sid, len(in.strs))
		}
		return dataset.NewString(in.strs[sid]), nil
	case dataset.KindInt:
		f := c.num[row]
		if f != math.Trunc(f) || math.Abs(f) >= 1<<63 {
			return dataset.Value{}, artifact.Corruptf("cell (%d, %d): non-integral int payload %v", row, attr, f)
		}
		return dataset.NewInt(int64(f)), nil
	case dataset.KindFloat:
		f := c.num[row]
		if math.IsNaN(f) {
			return dataset.Value{}, artifact.Corruptf("cell (%d, %d): NaN float payload", row, attr)
		}
		return dataset.NewFloat(f), nil
	case dataset.KindBool:
		f := c.num[row]
		if f != 0 && f != 1 {
			return dataset.Value{}, artifact.Corruptf("cell (%d, %d): bool payload %v", row, attr, f)
		}
		return dataset.NewBool(f == 1), nil
	default:
		return dataset.Value{}, artifact.Corruptf("cell (%d, %d): unknown kind %d", row, attr, k)
	}
}

// EncodeTo writes the candidate index — LHS attribute set, equality
// buckets, sorted numeric range columns, string length buckets — as the
// SecIndex section. Map buckets are written in sorted key order
// (equality keys by (class, payload), length buckets by length), so
// encoding the same index twice is byte-identical. Nil-safe: a nil
// index (empty Σ LHS) writes a presence byte of 0.
func (ix *Index) EncodeTo(b *artifact.Builder) {
	b.Begin(artifact.SecIndex)
	if ix == nil {
		b.Uint8(0)
		return
	}
	b.Uint8(1)
	m := len(ix.lhs)
	b.Uint32(uint32(m))
	flags := make([]uint8, m)
	for a, on := range ix.lhs {
		if on {
			flags[a] = 1
		}
	}
	b.Uint8s(flags)
	for a := 0; a < m; a++ {
		if !ix.lhs[a] {
			continue
		}
		keys := make([]eqKey, 0, len(ix.eq[a]))
		for k := range ix.eq[a] {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].cls != keys[j].cls {
				return keys[i].cls < keys[j].cls
			}
			return keys[i].bits < keys[j].bits
		})
		b.Uint32(uint32(len(keys)))
		for _, k := range keys {
			b.Uint8(k.cls)
			b.Uint64(k.bits)
			encodeRows(b, ix.eq[a][k])
		}

		b.Float64s(ix.numV[a])
		encodeRows(b, ix.numR[a])

		lenKeys := make([]int, 0, len(ix.lens[a]))
		for l := range ix.lens[a] {
			lenKeys = append(lenKeys, l)
		}
		sort.Ints(lenKeys)
		b.Uint32(uint32(len(lenKeys)))
		for _, l := range lenKeys {
			b.Uint32(uint32(l))
			encodeRows(b, ix.lens[a][l])
		}
	}
}

// encodeRows writes a flat row list as a uint32 slab.
func encodeRows(b *artifact.Builder, rows []int) {
	v := make([]uint32, len(rows))
	for i, r := range rows {
		v[i] = uint32(r)
	}
	b.Uint32s(v)
}

// decodeRows reads a flat row list, validating every row against the
// view size.
func decodeRows(c *artifact.Cursor, n int) ([]int, error) {
	v := c.Uint32s()
	if err := c.Err(); err != nil {
		return nil, err
	}
	if len(v) == 0 {
		// nil, not an empty slice: the from-scratch builder leaves
		// never-appended lists nil, and round-trip tests compare deeply.
		return nil, nil
	}
	rows := make([]int, len(v))
	for i, r := range v {
		if int(r) >= n {
			return nil, artifact.Corruptf("index: row %d of %d view rows", r, n)
		}
		rows[i] = int(r)
	}
	return rows, nil
}

// DecodeIndex reconstructs the candidate index from an artifact's
// SecIndex section, bound to the given view (normally the frozen view
// of the Shared decoded from the same artifact). Returns (nil, nil)
// when the artifact recorded an absent index.
func DecodeIndex(r *artifact.Reader, v *View) (*Index, error) {
	c, ok := r.Section(artifact.SecIndex)
	if !ok {
		return nil, artifact.Corruptf("missing index section")
	}
	present := c.Uint8()
	if c.Err() != nil {
		return nil, c.Err()
	}
	if present == 0 {
		return nil, nil
	}
	m := int(c.Uint32())
	flags := c.Uint8s()
	if err := c.Err(); err != nil {
		return nil, err
	}
	if m != v.Arity() || len(flags) != m {
		return nil, artifact.Corruptf("index: arity %d disagrees with view arity %d", m, v.Arity())
	}
	ix := &Index{
		v:    v,
		lhs:  make([]bool, m),
		eq:   make([]map[eqKey][]int, m),
		numV: make([][]float64, m),
		numR: make([][]int, m),
		lens: make([]map[int][]int, m),
	}
	n := v.Len()
	for a := 0; a < m; a++ {
		if flags[a] == 0 {
			continue
		}
		ix.lhs[a] = true
		nk := int(c.Uint32())
		if c.Err() != nil {
			return nil, c.Err()
		}
		if nk < 0 || nk > c.Remaining() {
			return nil, artifact.Corruptf("index: %d equality keys exceed section", nk)
		}
		ix.eq[a] = make(map[eqKey][]int, nk)
		for k := 0; k < nk; k++ {
			key := eqKey{cls: c.Uint8(), bits: c.Uint64()}
			rows, err := decodeRows(c, n)
			if err != nil {
				return nil, err
			}
			if key.cls > clsBool {
				return nil, artifact.Corruptf("index: unknown value class %d", key.cls)
			}
			if _, dup := ix.eq[a][key]; dup {
				return nil, artifact.Corruptf("index: duplicate equality key")
			}
			ix.eq[a][key] = rows
		}

		numV := c.Float64s()
		if len(numV) == 0 {
			numV = nil
		}
		numR, err := decodeRows(c, n)
		if err != nil {
			return nil, err
		}
		if len(numV) != len(numR) {
			return nil, artifact.Corruptf("index: numeric columns disagree (%d values, %d rows)", len(numV), len(numR))
		}
		for k := 1; k < len(numV); k++ {
			if numV[k] < numV[k-1] {
				return nil, artifact.Corruptf("index: numeric column not sorted at %d", k)
			}
		}
		ix.numV[a], ix.numR[a] = numV, numR

		nl := int(c.Uint32())
		if c.Err() != nil {
			return nil, c.Err()
		}
		if nl < 0 || nl > c.Remaining() {
			return nil, artifact.Corruptf("index: %d length buckets exceed section", nl)
		}
		ix.lens[a] = make(map[int][]int, nl)
		for k := 0; k < nl; k++ {
			l := int(c.Uint32())
			rows, err := decodeRows(c, n)
			if err != nil {
				return nil, err
			}
			if _, dup := ix.lens[a][l]; dup {
				return nil, artifact.Corruptf("index: duplicate length bucket %d", l)
			}
			ix.lens[a][l] = rows
		}
	}
	if err := c.Err(); err != nil {
		return nil, err
	}
	return ix, nil
}
