package engine

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/dataset"
)

// TestExtendParity checks that a two-tier view built from a precompiled
// base answers exactly like a from-scratch CompileWithDonors view over
// the same (target, base) pair — same distances, same Within verdicts,
// same null map — across every comparison class.
func TestExtendParity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := randomMixedRelation(rng, 40)
	target := randomMixedRelation(rng, 12)

	shared := Precompile(base)
	tiered := shared.Extend(target)
	flat := CompileWithDonors(target, []*dataset.Relation{base})

	if tiered.Len() != flat.Len() || tiered.TargetLen() != flat.TargetLen() {
		t.Fatalf("shape mismatch: tiered (%d,%d) vs flat (%d,%d)",
			tiered.Len(), tiered.TargetLen(), flat.Len(), flat.TargetLen())
	}
	n, m := flat.Len(), flat.Arity()
	for a := 0; a < m; a++ {
		for i := 0; i < n; i++ {
			if tiered.IsNull(i, a) != flat.IsNull(i, a) {
				t.Fatalf("IsNull(%d,%d): tiered %v flat %v", i, a, tiered.IsNull(i, a), flat.IsNull(i, a))
			}
			for j := i + 1; j < n; j++ {
				dt, df := tiered.Distance(a, i, j), flat.Distance(a, i, j)
				if !sameDist(dt, df) {
					t.Fatalf("Distance(%d,%d,%d): tiered %v flat %v", a, i, j, dt, df)
				}
				for _, max := range []float64{-1, 0, 0.5, 1, 2, 100} {
					if wt, wf := tiered.Within(a, i, j, max), flat.Within(a, i, j, max); wt != wf {
						t.Fatalf("Within(%d,%d,%d,%v): tiered %v flat %v", a, i, j, max, wt, wf)
					}
				}
			}
		}
	}
}

// TestExtendSetIsolated checks that writes to one extended view are
// invisible to a sibling view and to the base.
func TestExtendSetIsolated(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	base := randomMixedRelation(rng, 20)
	shared := Precompile(base)

	t1 := randomMixedRelation(rng, 4)
	t2 := randomMixedRelation(rng, 4)
	v1, v2 := shared.Extend(t1), shared.Extend(t2)

	v1.Set(0, 0, dataset.NewString("only-in-v1"))
	if got := v1.Value(0, 0).Str(); got != "only-in-v1" {
		t.Fatalf("v1 write not visible: %q", got)
	}
	if got := v2.Value(0, 0); got.Kind() == dataset.KindString && got.Str() == "only-in-v1" {
		t.Fatal("v1 write leaked into v2")
	}
	if got := shared.Relation().Get(0, 0); got.Kind() == dataset.KindString && got.Str() == "only-in-v1" {
		t.Fatal("v1 write leaked into the base relation")
	}
}

// TestFrozenViewRejectsWrites checks the base view's immutability
// contract: Set panics, Append errors.
func TestFrozenViewRejectsWrites(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	shared := Precompile(randomMixedRelation(rng, 8))
	fv := shared.View()
	if err := fv.Append(make(dataset.Tuple, fv.Arity())); err == nil {
		t.Fatal("Append on a frozen view should error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Set on a frozen view should panic")
		}
	}()
	fv.Set(0, 0, dataset.Null)
}

// TestSharedCacheCarriesAcrossViews checks the amortization mechanism:
// base-pair distances computed through one extended view are cache hits
// for the next.
func TestSharedCacheCarriesAcrossViews(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	base := randomMixedRelation(rng, 30)
	shared := Precompile(base)

	warm := shared.Extend(dataset.NewRelation(base.Schema()))
	for i := warm.TargetLen(); i < warm.Len(); i++ {
		for j := i + 1; j < warm.Len(); j++ {
			warm.Distance(0, i, j)
		}
	}
	_, missesAfterWarm := shared.CacheStats()

	cold := shared.Extend(dataset.NewRelation(base.Schema()))
	for i := cold.TargetLen(); i < cold.Len(); i++ {
		for j := i + 1; j < cold.Len(); j++ {
			cold.Distance(0, i, j)
		}
	}
	if _, misses := shared.CacheStats(); misses != missesAfterWarm {
		t.Fatalf("second view recomputed base pairs: misses %d -> %d", missesAfterWarm, misses)
	}
	localHits, _ := cold.cache.stats()
	if localHits != 0 {
		// Base-pair traffic must route to the shared cache, not the local one.
		t.Fatalf("base-pair distances hit the local cache (%d hits)", localHits)
	}
}

// TestExtendConcurrent exercises concurrent extended views reading
// through the shared tier while interning novel local strings — the
// serve-mode access pattern, run under -race.
func TestExtendConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	base := randomMixedRelation(rng, 25)
	shared := Precompile(base)

	targets := make([]*dataset.Relation, 8)
	for k := range targets {
		targets[k] = randomMixedRelation(rand.New(rand.NewSource(int64(100+k))), 6)
	}
	var wg sync.WaitGroup
	for k := range targets {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			v := shared.Extend(targets[k])
			for a := 0; a < v.Arity(); a++ {
				for i := 0; i < v.Len(); i++ {
					for j := i + 1; j < v.Len(); j++ {
						v.Distance(a, i, j)
					}
				}
			}
		}(k)
	}
	wg.Wait()
}

// TestCanceledError checks the sentinel contract: ErrCanceled and the
// context cause are both observable through errors.Is.
func TestCanceledError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Canceled(ctx)
	if !errors.Is(err, ErrCanceled) {
		t.Fatal("want errors.Is(err, ErrCanceled)")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatal("want errors.Is(err, context.Canceled)")
	}

	dctx, dcancel := context.WithTimeout(context.Background(), 0)
	defer dcancel()
	<-dctx.Done()
	derr := Canceled(dctx)
	if !errors.Is(derr, ErrCanceled) || !errors.Is(derr, context.DeadlineExceeded) {
		t.Fatalf("deadline error misses a sentinel: %v", derr)
	}
}
