package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dataset"
)

// appendAnyKind appends a tuple that may carry cross-kind cells in the
// last attribute (randomMixedRelation's X column): Append validates
// kinds, so the X value rides in as Null and is restored via Set, the
// same bypass the generator uses.
func appendAnyKind(rel *dataset.Relation, t dataset.Tuple) {
	c := t.Clone()
	x := len(c) - 1
	orig := c[x]
	c[x] = dataset.Null
	rel.MustAppend(c)
	rel.Set(rel.Len()-1, x, orig)
}

// mutateRelation builds Evolve's `next` from a base: drop some rows,
// rewrite some surviving cells (drawing values from the base so both
// shared and novel strings occur), append fresh rows.
func mutateRelation(rng *rand.Rand, base *dataset.Relation, drop, appendN int) *dataset.Relation {
	next := dataset.NewRelation(base.Schema())
	for i := 0; i < base.Len(); i++ {
		if i < drop {
			continue
		}
		appendAnyKind(next, base.Row(i))
	}
	for i := 0; i < next.Len(); i += 3 {
		src := base.Row(rng.Intn(base.Len()))
		a := rng.Intn(base.Schema().Len() - 1) // stay off the cross-kind X column
		next.Set(i, a, src[a])
	}
	extra := randomMixedRelation(rng, appendN)
	for i := 0; i < extra.Len(); i++ {
		appendAnyKind(next, extra.Row(i))
	}
	return next
}

// assertViewParity checks two views answer identically on every
// comparison class — nulls, distances, Within at several radii.
func assertViewParity(t *testing.T, got, want *View) {
	t.Helper()
	if got.Len() != want.Len() || got.Arity() != want.Arity() {
		t.Fatalf("shape mismatch: got (%d,%d) want (%d,%d)", got.Len(), got.Arity(), want.Len(), want.Arity())
	}
	n, m := want.Len(), want.Arity()
	for a := 0; a < m; a++ {
		for i := 0; i < n; i++ {
			if got.IsNull(i, a) != want.IsNull(i, a) {
				t.Fatalf("IsNull(%d,%d): got %v want %v", i, a, got.IsNull(i, a), want.IsNull(i, a))
			}
			if gv, wv := got.Value(i, a), want.Value(i, a); !gv.Equal(wv) {
				t.Fatalf("Value(%d,%d): got %v want %v", i, a, gv, wv)
			}
			for j := i + 1; j < n; j++ {
				dg, dw := got.Distance(a, i, j), want.Distance(a, i, j)
				if !sameDist(dg, dw) {
					t.Fatalf("Distance(%d,%d,%d): got %v want %v", a, i, j, dg, dw)
				}
				for _, max := range []float64{0, 1, 2.5} {
					if wg, ww := got.Within(a, i, j, max), want.Within(a, i, j, max); wg != ww {
						t.Fatalf("Within(%d,%d,%d,%v): got %v want %v", a, i, j, max, wg, ww)
					}
				}
			}
		}
	}
}

// TestEvolveParity: an evolved Shared must be observationally identical
// to a from-scratch Precompile of the successor relation, across
// delete/update/append mixes and chained evolutions.
func TestEvolveParity(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 6; trial++ {
		base := randomMixedRelation(rng, 24+rng.Intn(20))
		shared := Precompile(base)
		next := mutateRelation(rng, base, rng.Intn(6), 4+rng.Intn(6))

		evolved, _, err := shared.Evolve(next)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if evolved.Len() != next.Len() {
			t.Fatalf("trial %d: evolved len %d, next has %d", trial, evolved.Len(), next.Len())
		}
		assertViewParity(t, evolved.View(), Precompile(next).View())

		// Chain a second evolution off the first: id stability must
		// compose across epochs.
		next2 := mutateRelation(rng, next, rng.Intn(4), 3)
		evolved2, _, err := evolved.Evolve(next2)
		if err != nil {
			t.Fatalf("trial %d: second evolve: %v", trial, err)
		}
		assertViewParity(t, evolved2.View(), Precompile(next2).View())
		// The predecessor epochs must be untouched by their successors.
		assertViewParity(t, evolved.View(), Precompile(next).View())
		assertViewParity(t, shared.View(), Precompile(base).View())
	}
}

// TestEvolveArityMismatch: a successor with different arity is refused.
func TestEvolveArityMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	shared := Precompile(randomMixedRelation(rng, 8))
	narrow := dataset.NewRelation(dataset.NewSchema(
		dataset.Attribute{Name: "S", Kind: dataset.KindString},
	))
	if _, _, err := shared.Evolve(narrow); err == nil {
		t.Fatal("Evolve accepted an arity mismatch")
	}
}

// TestEvolveCarriesCacheWhenIdsStable: without compaction, the memo is
// carried as the SAME instance — entries warmed under the old epoch
// answer under the new one, and the stats confirm nothing invalidated.
func TestEvolveCarriesCacheWhenIdsStable(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	base := randomMixedRelation(rng, 30)
	shared := Precompile(base)

	// Warm the memo: every string pair in every string attribute.
	v := shared.View()
	for a := 0; a < v.Arity(); a++ {
		for i := 0; i < v.Len(); i++ {
			for j := i + 1; j < v.Len(); j++ {
				v.Distance(a, i, j)
			}
		}
	}
	_, missesBefore := shared.CacheStats()
	if missesBefore == 0 {
		t.Fatal("warm-up recorded no cache misses; the memo is not engaged")
	}

	next := mutateRelation(rng, base, 0, 6) // append + update only, no deletes
	evolved, st, err := shared.Evolve(next)
	if err != nil {
		t.Fatal(err)
	}
	if st.CompactedAttrs != 0 || st.InvalidatedCacheShards != 0 {
		t.Fatalf("id-stable evolve reported compaction: %+v", st)
	}
	if evolved.cache != shared.cache {
		t.Fatal("id-stable evolve copied the cache instead of carrying the instance")
	}
	// Replaying the shared-prefix distances through the evolved view
	// must be all hits: same ids, same memo.
	hitsBefore, missesBefore := evolved.CacheStats()
	ev := evolved.View()
	for a := 0; a < ev.Arity(); a++ {
		for i := 0; i < base.Len(); i++ {
			for j := i + 1; j < base.Len(); j++ {
				if base.Row(i)[a].Equal(next.Row(i)[a]) && base.Row(j)[a].Equal(next.Row(j)[a]) {
					ev.Distance(a, i, j)
				}
			}
		}
	}
	hitsAfter, missesAfter := evolved.CacheStats()
	if missesAfter != missesBefore {
		t.Fatalf("replaying warmed pairs missed the carried memo %d times", missesAfter-missesBefore)
	}
	if hitsAfter == hitsBefore {
		t.Fatal("replaying warmed pairs recorded no hits")
	}
}

// TestEvolveCompaction: when deletes leave an attribute's interning
// table mostly dead, Evolve re-interns it densely, hands the successor
// a cache without that attribute's entries, and — the property all of
// this serves — the evolved view still answers exactly like a fresh
// compile while the old epoch keeps its instance untouched.
func TestEvolveCompaction(t *testing.T) {
	defer func(minD, num, den int) {
		compactMinDistinct, compactDeadNum, compactDeadDen = minD, num, den
	}(compactMinDistinct, compactDeadNum, compactDeadDen)
	compactMinDistinct = 4

	schema := dataset.NewSchema(
		dataset.Attribute{Name: "S", Kind: dataset.KindString},
		dataset.Attribute{Name: "K", Kind: dataset.KindString},
	)
	base := dataset.NewRelation(schema)
	for i := 0; i < 24; i++ {
		base.MustAppend(dataset.Tuple{
			dataset.NewString(fmt.Sprintf("unique-%02d", i)), // 24 distinct, mostly dying
			dataset.NewString("keep"),                        // 1 distinct, always live
		})
	}
	shared := Precompile(base)
	v := shared.View()
	for i := 0; i < v.Len(); i++ {
		for j := i + 1; j < v.Len(); j++ {
			v.Distance(0, i, j) // warm S entries so invalidation has something to drop
			v.Distance(1, i, j)
		}
	}

	// Keep 3 of 24 rows: S drops to 3 live of 24 distinct (dead 21/24 >
	// 1/2), K stays fully live.
	next := dataset.NewRelation(schema)
	for i := 0; i < 3; i++ {
		next.MustAppend(base.Row(i * 7).Clone())
	}
	evolved, st, err := shared.Evolve(next)
	if err != nil {
		t.Fatal(err)
	}
	if st.CompactedAttrs != 1 {
		t.Fatalf("CompactedAttrs = %d, want 1 (S only)", st.CompactedAttrs)
	}
	if st.InvalidatedCacheShards == 0 {
		t.Fatal("compaction with a warmed cache invalidated no shards")
	}
	if evolved.cache == shared.cache {
		t.Fatal("compacting evolve shared the cache instance with its predecessor")
	}
	if got := len(evolved.interns[0].strs); got != 3 {
		t.Fatalf("compacted interner holds %d strings, want 3", got)
	}
	assertViewParity(t, evolved.View(), Precompile(next).View())
	assertViewParity(t, shared.View(), Precompile(base).View())
}

// TestWithoutAttrs: the copy-on-invalidate cache drops exactly the
// dropped attribute's entries — every other attribute's memo survives,
// even in shards the drop touched.
func TestWithoutAttrs(t *testing.T) {
	c := newDistCache()
	for i := int32(0); i < 64; i++ {
		c.put(0, i, i+1, i)
		c.put(1, i, i+1, i+100)
	}
	out, invalidated := c.withoutAttrs([]bool{true, false})
	if invalidated == 0 {
		t.Fatal("dropping a populated attribute invalidated no shards")
	}
	for i := int32(0); i < 64; i++ {
		if _, ok := out.get(0, i, i+1); ok {
			t.Fatalf("dropped attr 0 entry (%d,%d) survived", i, i+1)
		}
		d, ok := out.get(1, i, i+1)
		if !ok || d != i+100 {
			t.Fatalf("kept attr 1 entry (%d,%d): got (%d,%v), want (%d,true)", i, i+1, d, ok, i+100)
		}
	}
	// The source instance is untouched.
	for i := int32(0); i < 64; i++ {
		if _, ok := c.get(0, i, i+1); !ok {
			t.Fatalf("withoutAttrs mutated its source: attr 0 entry (%d,%d) gone", i, i+1)
		}
	}
}

// TestIndexCloneForInsertParity: the insert-only maintenance path —
// CloneFor plus one Insert per appended cell — must answer candidate
// probes exactly like an index rebuilt from scratch over the evolved
// view, for every query row.
func TestIndexCloneForInsertParity(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 6; trial++ {
		base := randomMixedRelation(rng, 18+rng.Intn(20))
		sigma := shardedParitySigma(base.Schema())
		shared := Precompile(base)
		ix := NewIndex(shared.View(), sigma)
		if ix == nil {
			t.Fatal("no index built")
		}

		next := base.Clone()
		extra := randomMixedRelation(rng, 5)
		for i := 0; i < extra.Len(); i++ {
			appendAnyKind(next, extra.Row(i))
		}
		evolved, st, err := shared.Evolve(next)
		if err != nil {
			t.Fatal(err)
		}
		if st.CompactedAttrs != 0 {
			t.Fatalf("append-only evolve compacted %d attrs", st.CompactedAttrs)
		}
		maintained := ix.CloneFor(evolved.View())
		for i := base.Len(); i < next.Len(); i++ {
			for a := 0; a < next.Schema().Len(); a++ {
				maintained.Insert(i, a)
			}
		}
		rebuilt := NewIndex(evolved.View(), sigma)
		for row := 0; row < next.Len(); row++ {
			wantRows, wantOK := rebuilt.CandidateRows(row, sigma)
			gotRows, gotOK := maintained.CandidateRows(row, sigma)
			if gotOK != wantOK || !reflect.DeepEqual(gotRows, wantRows) {
				t.Fatalf("trial %d row %d: maintained (%v,%v) != rebuilt (%v,%v)",
					trial, row, gotRows, gotOK, wantRows, wantOK)
			}
		}
		if !reflect.DeepEqual(maintained.LHSAttrs(), rebuilt.LHSAttrs()) {
			t.Fatalf("trial %d: LHS masks diverged", trial)
		}
	}
}
