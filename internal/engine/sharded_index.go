package engine

import (
	"sort"
	"sync/atomic"

	"repro/internal/rfd"
)

// ShardedIndex splits the donor pool into independent sub-Indexes over
// contiguous flat row bands and scatter-gathers candidate search across
// them. Because the bands partition the view's rows, every per-shard
// structure (exact-match buckets, numeric ranges, length buckets)
// partitions its monolithic counterpart, so per-constraint estimates
// sum exactly to the monolithic estimate and the union of per-shard
// collects is the monolithic row set — CandidateRows is byte-identical
// to a single Index over the whole view for any shard count. What
// sharding buys is build and update locality: each sub-Index is built
// over its own band, and an Insert touches only the owning band's
// (smaller) sorted structures.
type ShardedIndex struct {
	v      *View
	subs   []*Index
	starts []int // starts[i] is subs[i]'s first flat row
	probes atomic.Int64
}

// NewShardedIndex builds shards sub-Indexes over equal contiguous row
// bands. Like NewIndex it returns nil when Σ constrains no LHS
// attribute; shards <= 1 degenerates to one band (still exact, just a
// monolithic index behind the sharded interface).
func NewShardedIndex(v *View, sigma rfd.Set, shards int) *ShardedIndex {
	lhs := lhsMask(v.Arity(), sigma)
	if lhs == nil {
		return nil
	}
	n := v.Len()
	if shards < 1 {
		shards = 1
	}
	if shards > n && n > 0 {
		shards = n
	}
	sx := &ShardedIndex{v: v}
	if n == 0 {
		sx.subs = []*Index{newIndexRange(v, lhs, 0, 0)}
		sx.starts = []int{0}
		return sx
	}
	size := (n + shards - 1) / shards
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		sx.subs = append(sx.subs, newIndexRange(v, lhs, lo, hi))
		sx.starts = append(sx.starts, lo)
	}
	return sx
}

// Shards returns the sub-Index fan-out. Nil-safe.
func (sx *ShardedIndex) Shards() int {
	if sx == nil {
		return 0
	}
	return len(sx.subs)
}

// Insert records a committed imputation in the sub-Index owning the
// row. Nil-safe.
func (sx *ShardedIndex) Insert(row, attr int) {
	if sx == nil {
		return
	}
	// Last band whose start <= row.
	i := sort.SearchInts(sx.starts, row+1) - 1
	if i >= 0 {
		sx.subs[i].Insert(row, attr)
	}
}

// Probes returns how many logical index probes were answered — one per
// dependency, not one per (dependency, shard), so the count matches the
// monolithic index. Nil-safe.
func (sx *ShardedIndex) Probes() int64 {
	if sx == nil {
		return 0
	}
	return sx.probes.Load()
}

// CandidateRows scatter-gathers the monolithic CandidateRows contract:
// each dependency's constraints are probed on every sub-Index, the
// per-shard estimates are summed (exactly the monolithic estimate,
// since the bands partition the rows), the most selective constraint is
// chosen by the same first-wins comparison, and the per-shard collects
// are concatenated in shard order before the shared sort + dedup. The
// gather is sequential — sub-probes are map lookups and binary
// searches, far below goroutine cost — but each shard's work touches
// only its own band's structures. Nil-safe.
func (sx *ShardedIndex) CandidateRows(row int, deps rfd.Set) ([]int, bool) {
	if sx == nil {
		return nil, false
	}
	v := sx.v
	var probes [][]probe // one inner probe per shard
	total := 0
	scratch := make([]probe, 0, len(sx.subs))
	for _, dep := range deps {
		null := false
		for _, c := range dep.LHS {
			if v.IsNull(row, c.Attr) {
				null = true
				break
			}
		}
		if null {
			continue
		}
		var best []probe
		bestEst := 0
		found := false
		for _, c := range dep.LHS {
			scratch = scratch[:0]
			est := 0
			answerable := true
			for _, sub := range sx.subs {
				p, ok := sub.probeFor(row, c)
				if !ok {
					// Answerability depends only on the query cell's class,
					// identical across shards; bail like the monolithic path.
					answerable = false
					break
				}
				scratch = append(scratch, p)
				est += p.est
			}
			if !answerable {
				continue
			}
			if !found || est < bestEst {
				best = append([]probe(nil), scratch...)
				bestEst, found = est, true
			}
		}
		if !found {
			return nil, false
		}
		probes = append(probes, best)
		total += bestEst
	}
	if total > v.Len()*3/4 {
		// Same sweep-beats-index cutoff as the monolithic path.
		return nil, false
	}
	var out []int
	for _, shardProbes := range probes {
		for _, p := range shardProbes {
			out = p.collect(out)
		}
	}
	sx.probes.Add(int64(len(probes)))
	return finishCandidates(out, row), true
}
