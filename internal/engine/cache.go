package engine

import (
	"sync"
	"sync/atomic"
)

// numShards bounds lock contention: pairwise lookups from the parallel
// scan workers hash across independent RWMutex-guarded maps.
const numShards = 64

// cacheKey identifies one memoized pair: the attribute and the two
// interned value ids in canonical (lo <= hi) order, so (a, b) and
// (b, a) share one entry.
type cacheKey struct {
	attr, lo, hi int32
}

type cacheShard struct {
	mu sync.RWMutex
	m  map[cacheKey]int32
}

// distCache memoizes exact string edit distances per (attr, value
// pair). Only strings are cached: numeric and boolean distances are a
// subtraction, cheaper than any lookup.
type distCache struct {
	shards [numShards]cacheShard
	hits   atomic.Int64
	misses atomic.Int64
}

func newDistCache() *distCache { return &distCache{} }

func (c *distCache) shardOf(k cacheKey) *cacheShard {
	h := uint32(k.attr)*0x9E3779B1 ^ uint32(k.lo)*0x85EBCA6B ^ uint32(k.hi)*0xC2B2AE35
	return &c.shards[h%numShards]
}

// get returns the memoized distance for the pair, counting a hit when
// present. The ids may be passed in either order.
func (c *distCache) get(attr int, a, b int32) (int32, bool) {
	if a > b {
		a, b = b, a
	}
	k := cacheKey{attr: int32(attr), lo: a, hi: b}
	sh := c.shardOf(k)
	sh.mu.RLock()
	d, ok := sh.m[k]
	sh.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	}
	return d, ok
}

// put memoizes a freshly computed distance, counting a miss. Concurrent
// writers of the same key store the same value (the distance function
// is pure), so last-write-wins is harmless.
func (c *distCache) put(attr int, a, b int32, d int32) {
	if a > b {
		a, b = b, a
	}
	k := cacheKey{attr: int32(attr), lo: a, hi: b}
	sh := c.shardOf(k)
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[cacheKey]int32)
	}
	sh.m[k] = d
	sh.mu.Unlock()
	c.misses.Add(1)
}

func (c *distCache) stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}
