package engine

import (
	"sync"
	"sync/atomic"
)

// numShards bounds lock contention: pairwise lookups from the parallel
// scan workers hash across independent shards.
const numShards = 64

// cacheKey identifies one memoized pair: the attribute and the two
// interned value ids in canonical (lo <= hi) order, so (a, b) and
// (b, a) share one entry.
type cacheKey struct {
	attr, lo, hi int32
}

// cacheShard holds one shard's entries in two tiers:
//
//   - frozen is an immutable map published through an atomic pointer.
//     The read path loads it with a single atomic load and probes it
//     with no lock at all — under the ~92% hit rates of the string
//     workloads, almost every lookup ends here.
//   - overflow collects fresh entries under a mutex. When it grows past
//     a fraction of the frozen tier, the writer rebuilds frozen as
//     (frozen ∪ overflow) and publishes the new map; the geometric
//     merge threshold keeps the amortized per-insert copy cost
//     constant.
//
// A reader that misses frozen takes the mutex to probe overflow — but a
// frozen miss almost always precedes a Levenshtein computation, whose
// cost dwarfs the lock.
type cacheShard struct {
	frozen atomic.Pointer[map[cacheKey]int32]
	mu     sync.Mutex
	over   map[cacheKey]int32
	hits   atomic.Int64
	misses atomic.Int64
	merges atomic.Int64
	// pad spaces shards a cache line apart so the per-shard counters
	// and mutexes of neighbors never false-share.
	_ [16]byte
}

// mergeFloor is the minimum overflow size that triggers a merge into
// the frozen tier; below it, rebuilding maps would dominate.
const mergeFloor = 64

// distCache memoizes exact string edit distances per (attr, value
// pair). Only strings are cached: numeric and boolean distances are a
// subtraction, cheaper than any lookup. Hit and miss counts are kept
// per shard and summed on demand, so the hot read path never contends
// on a shared counter.
type distCache struct {
	shards [numShards]cacheShard
}

func newDistCache() *distCache { return &distCache{} }

func (c *distCache) shardOf(k cacheKey) *cacheShard {
	h := uint32(k.attr)*0x9E3779B1 ^ uint32(k.lo)*0x85EBCA6B ^ uint32(k.hi)*0xC2B2AE35
	return &c.shards[h%numShards]
}

// get returns the memoized distance for the pair, counting a hit when
// present. The ids may be passed in either order. The fast path — the
// pair is in the frozen tier — is one atomic load plus a map probe,
// with no lock and no shared-counter contention.
func (c *distCache) get(attr int, a, b int32) (int32, bool) {
	if a > b {
		a, b = b, a
	}
	k := cacheKey{attr: int32(attr), lo: a, hi: b}
	sh := c.shardOf(k)
	if m := sh.frozen.Load(); m != nil {
		if d, ok := (*m)[k]; ok {
			sh.hits.Add(1)
			return d, true
		}
	}
	sh.mu.Lock()
	d, ok := sh.over[k]
	sh.mu.Unlock()
	if ok {
		sh.hits.Add(1)
	}
	return d, ok
}

// put memoizes a freshly computed distance, counting a miss. Concurrent
// writers of the same key store the same value (the distance function
// is pure), so last-write-wins is harmless. When the overflow tier
// outgrows a quarter of the frozen tier it is folded in and a new
// frozen map is published; readers switch to it on their next atomic
// load.
func (c *distCache) put(attr int, a, b int32, d int32) {
	if a > b {
		a, b = b, a
	}
	k := cacheKey{attr: int32(attr), lo: a, hi: b}
	sh := c.shardOf(k)
	sh.mu.Lock()
	if sh.over == nil {
		sh.over = make(map[cacheKey]int32)
	}
	sh.over[k] = d
	frozen := sh.frozen.Load()
	frozenLen := 0
	if frozen != nil {
		frozenLen = len(*frozen)
	}
	if n := len(sh.over); n >= mergeFloor && n*4 >= frozenLen {
		merged := make(map[cacheKey]int32, frozenLen+n)
		if frozen != nil {
			for fk, fv := range *frozen {
				merged[fk] = fv
			}
		}
		for ok_, ov := range sh.over {
			merged[ok_] = ov
		}
		sh.frozen.Store(&merged)
		sh.over = make(map[cacheKey]int32)
		sh.merges.Add(1)
	}
	sh.mu.Unlock()
	sh.misses.Add(1)
}

// withoutAttrs builds a NEW cache carrying every memoized entry except
// those keyed by a dropped attribute, returning it and the number of
// shards that held at least one dropped entry. Copy-on-invalidate is
// what makes interner compaction safe under epochs: compaction remaps
// an attribute's interned ids, so the successor epoch must not share a
// cache instance with its predecessors — a pinned reader of an old
// epoch would keep inserting entries keyed by old ids that collide
// with the remapped ones. Old epochs keep the old instance; shards the
// drop never touched share their frozen map pointer with the new cache
// (safe: published frozen maps are immutable — merges always build new
// maps), so the copy is proportional to the invalidated shards only.
func (c *distCache) withoutAttrs(drop []bool) (*distCache, int) {
	out := newDistCache()
	invalidated := 0
	for i := range c.shards {
		sh := &c.shards[i]
		frozen := sh.frozen.Load()
		sh.mu.Lock()
		var over map[cacheKey]int32
		if len(sh.over) > 0 {
			over = make(map[cacheKey]int32, len(sh.over))
			for k, v := range sh.over {
				over[k] = v
			}
		}
		sh.mu.Unlock()
		touched := false
		if frozen != nil {
			for k := range *frozen {
				if drop[k.attr] {
					touched = true
					break
				}
			}
		}
		if !touched {
			for k := range over {
				if drop[k.attr] {
					touched = true
					break
				}
			}
		}
		switch {
		case touched:
			invalidated++
			kept := make(map[cacheKey]int32)
			if frozen != nil {
				for k, v := range *frozen {
					if !drop[k.attr] {
						kept[k] = v
					}
				}
			}
			for k, v := range over {
				if !drop[k.attr] {
					kept[k] = v
				}
			}
			if len(kept) > 0 {
				out.shards[i].frozen.Store(&kept)
			}
		case over == nil:
			if frozen != nil {
				out.shards[i].frozen.Store(frozen)
			}
		default:
			merged := over
			if frozen != nil {
				merged = make(map[cacheKey]int32, len(*frozen)+len(over))
				for k, v := range *frozen {
					merged[k] = v
				}
				for k, v := range over {
					merged[k] = v
				}
			}
			out.shards[i].frozen.Store(&merged)
		}
	}
	return out, invalidated
}

func (c *distCache) stats() (hits, misses int64) {
	for i := range c.shards {
		hits += c.shards[i].hits.Load()
		misses += c.shards[i].misses.Load()
	}
	return hits, misses
}

// CacheShardStat is one shard's counters: lookups answered, lookups
// computed, and overflow-tier merges into the frozen tier. The obs
// package mirrors this struct; engine stays below obs in the dependency
// order, so the two cannot share a definition.
type CacheShardStat struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Merges int64 `json:"merges"`
}

// shardStats snapshots every shard's counters, in shard order. The
// per-shard view exposes what the summed stats hide: hash skew (one hot
// shard serializing its neighbors) and merge churn.
func (c *distCache) shardStats() []CacheShardStat {
	out := make([]CacheShardStat, numShards)
	for i := range c.shards {
		out[i] = CacheShardStat{
			Hits:   c.shards[i].hits.Load(),
			Misses: c.shards[i].misses.Load(),
			Merges: c.shards[i].merges.Load(),
		}
	}
	return out
}
