package engine

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/rfd"
)

// shardedParitySigma covers equality, numeric-threshold and
// string-length probes over the mixed relation.
func shardedParitySigma(schema *dataset.Schema) rfd.Set {
	return rfd.Set{
		rfd.MustParse("S(<=2) -> I(<=1)", schema),
		rfd.MustParse("I(<=1), F(<=0.5) -> S(<=3)", schema),
		rfd.MustParse("B(<=0), X(<=2) -> F(<=1)", schema),
		rfd.MustParse("S(<=0) -> X(<=0)", schema),
	}
}

// TestShardedIndexNilSafety mirrors the monolithic index's nil
// contract.
func TestShardedIndexNilSafety(t *testing.T) {
	var sx *ShardedIndex
	if _, ok := sx.CandidateRows(0, nil); ok {
		t.Error("nil sharded index claimed candidate rows")
	}
	sx.Insert(0, 0) // must not panic
	if sx.Probes() != 0 || sx.Shards() != 0 {
		t.Error("nil sharded index reported probes or shards")
	}
}

// TestShardedIndexDeclinesNoLHS: like NewIndex, a Σ constraining no LHS
// attribute yields no index.
func TestShardedIndexDeclinesNoLHS(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	v := Compile(randomMixedRelation(rng, 10))
	if sx := NewShardedIndex(v, nil, 4); sx != nil {
		t.Error("sharded index built for empty sigma")
	}
}

// TestShardedIndexParity: for every query row and every shard count —
// including shards beyond the row count — the scatter-gather answer
// (rows, coverage decision, cumulative probe count) is identical to the
// monolithic index, both on the fresh pool and after a committed
// Insert.
func TestShardedIndexParity(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 8; trial++ {
		rel := randomMixedRelation(rng, 20+rng.Intn(40))
		sigma := shardedParitySigma(rel.Schema())

		compare := func(t *testing.T, mono *Index, sx *ShardedIndex, stage string) {
			t.Helper()
			for row := 0; row < mono.v.Len(); row++ {
				wantRows, wantOK := mono.CandidateRows(row, sigma)
				gotRows, gotOK := sx.CandidateRows(row, sigma)
				if wantOK != gotOK {
					t.Fatalf("%s row %d: ok = %v, want %v", stage, row, gotOK, wantOK)
				}
				if len(wantRows) != len(gotRows) {
					t.Fatalf("%s row %d: rows = %v, want %v", stage, row, gotRows, wantRows)
				}
				for i := range wantRows {
					if wantRows[i] != gotRows[i] {
						t.Fatalf("%s row %d: rows = %v, want %v", stage, row, gotRows, wantRows)
					}
				}
			}
			if mono.Probes() != sx.Probes() {
				t.Fatalf("%s: probes = %d, want %d", stage, sx.Probes(), mono.Probes())
			}
		}

		for _, shards := range []int{1, 2, 3, 8, 1000} {
			// Independent views: Insert mutates view state below.
			vm := Compile(rel.Clone())
			vs := Compile(rel.Clone())
			mono := NewIndex(vm, sigma)
			sx := NewShardedIndex(vs, sigma, shards)
			if mono == nil || sx == nil {
				t.Fatal("index not built")
			}
			if got := sx.Shards(); got < 1 || got > vs.Len() {
				t.Fatalf("shards = %d for %d rows (asked %d)", got, vs.Len(), shards)
			}
			compare(t, mono, sx, "fresh")

			// Commit the same imputation on both and re-compare: the
			// sharded Insert must land in the owning band.
			sAttr := rel.Schema().MustIndex("S")
			for row := 0; row < rel.Len(); row++ {
				if vm.IsNull(row, sAttr) {
					val := dataset.NewString("granite")
					vm.Set(row, sAttr, val)
					vs.Set(row, sAttr, val)
					mono.Insert(row, sAttr)
					sx.Insert(row, sAttr)
				}
			}
			compare(t, mono, sx, "after-insert")
		}
	}
}

// TestShardedIndexEmptyView: a zero-row pool builds and answers without
// panicking.
func TestShardedIndexEmptyView(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	rel := randomMixedRelation(rng, 1)
	empty := dataset.NewRelation(rel.Schema())
	sx := NewShardedIndex(Compile(empty), shardedParitySigma(rel.Schema()), 4)
	if sx == nil {
		t.Fatal("index not built over the empty view")
	}
	if sx.Shards() != 1 {
		t.Errorf("empty view shards = %d, want 1", sx.Shards())
	}
}
