package engine

import (
	"repro/internal/dataset"
)

// Shared is a compiled relation frozen for concurrent reuse: the
// columnar form, the interning tables (with their pre-decoded rune
// slices), and the memoized distance cache of one base instance,
// compiled once and then shared read-only across any number of
// concurrent evaluations — the compile-once serve-many artifact under
// core.Session.
//
// Two consumers derive views from it:
//
//   - View() is a frozen single-relation view over the base itself —
//     discovery and profiling run against it and warm the shared
//     distance cache for everyone else;
//   - Extend(target) is a two-tier view: the target's rows are compiled
//     into request-local columns (copy-on-write — novel strings intern
//     into a local upper tier), while every base row, interned id, and
//     memoized base-pair distance is shared. Distances between two base
//     values read and write the shared cache, so the hit rate carries
//     across requests; pairs involving request-local values stay in a
//     request-local cache that dies with the view.
//
// The base relation must not be mutated after Precompile; callers that
// cannot guarantee that should pass a clone.
type Shared struct {
	rel     *dataset.Relation
	n       int
	m       int
	cols    []col
	interns []*interner
	cache   *distCache
}

// Precompile compiles the base instance into a Shared.
func Precompile(base *dataset.Relation) *Shared {
	v := Compile(base)
	return &Shared{rel: base, n: v.n, m: v.m, cols: v.cols, interns: v.interns, cache: v.cache}
}

// Relation returns the base instance. Callers must not mutate it.
func (s *Shared) Relation() *dataset.Relation { return s.rel }

// Len returns the number of base rows.
func (s *Shared) Len() int { return s.n }

// Arity returns the schema arity.
func (s *Shared) Arity() int { return s.m }

// CacheStats returns the shared distance cache's cumulative hit and
// miss counts (across every view ever derived from this Shared).
func (s *Shared) CacheStats() (hits, misses int64) { return s.cache.stats() }

// CacheShardStats returns the shared distance cache's per-shard hit /
// miss / merge counters, in shard order.
func (s *Shared) CacheShardStats() []CacheShardStat { return s.cache.shardStats() }

// View returns a frozen single-relation view over the base: reads are
// safe for any number of concurrent users and hit the shared cache;
// Set and Append panic — the base is immutable by contract.
func (s *Shared) View() *View {
	return &View{
		rels:    []*dataset.Relation{s.rel},
		offsets: []int{0},
		n:       s.n,
		m:       s.m,
		cols:    s.cols,
		interns: s.interns,
		cache:   s.cache,
		frozen:  true,
	}
}

// Extend compiles the target relation into a two-tier view over
// target rows followed by the base rows (the donor-pool layout of
// CompileWithDonors), sharing the base's columns, interning tables, and
// distance cache. Only the target's rows are compiled — O(target), not
// O(target+base) — which is what makes a long-lived Session's per-call
// cost independent of the base size. The target's schema must have the
// base's arity (the caller validates full compatibility).
//
// The returned view is private to the caller: Set writes only the
// target segment, novel strings intern into a view-local upper tier,
// and base-pair distances are the only state written back to the
// Shared (the memo is pure, so concurrent writers agree).
func (s *Shared) Extend(target *dataset.Relation) *View {
	tlen := target.Len()
	v := &View{
		rels:    []*dataset.Relation{target, s.rel},
		offsets: []int{0, tlen},
		n:       tlen + s.n,
		m:       s.m,
		cols:    make([]col, s.m),
		interns: make([]*interner, s.m),
		cache:   newDistCache(),
		base:    s,
		baseOff: tlen,
	}
	v.baseHits0, v.baseMisses0 = s.cache.stats()
	for a := 0; a < s.m; a++ {
		v.interns[a] = &interner{base: s.interns[a], nb: int32(len(s.interns[a].strs))}
		v.cols[a] = col{
			kind: make([]dataset.Kind, tlen),
			num:  make([]float64, tlen),
			sid:  make([]int32, tlen),
		}
	}
	for i := 0; i < tlen; i++ {
		t := target.Row(i)
		for a := 0; a < s.m; a++ {
			v.setCell(i, a, t[a])
		}
	}
	return v
}
