package engine

import (
	"context"
	"errors"
	"fmt"
)

// ErrCanceled is the typed error every cancellable run in this
// repository returns when its context expires mid-run: imputation
// (core), discovery, and the serve-mode request handlers. It wraps the
// context's own error, so all three of these hold for a canceled run:
//
//	errors.Is(err, engine.ErrCanceled)
//	errors.Is(err, context.Canceled)          // when the client canceled
//	errors.Is(err, context.DeadlineExceeded)  // when the deadline passed
//
// It lives in the engine package — the one evaluation layer under both
// imputation and discovery — so the two pipelines share a single
// sentinel without an import cycle.
var ErrCanceled = errors.New("run canceled")

// canceledError carries the context cause behind ErrCanceled.
type canceledError struct{ cause error }

func (e *canceledError) Error() string        { return fmt.Sprintf("run canceled: %v", e.cause) }
func (e *canceledError) Unwrap() error        { return e.cause }
func (e *canceledError) Is(target error) bool { return target == ErrCanceled }

// Canceled wraps the context's error as an ErrCanceled. Call it only
// when ctx.Err() != nil.
func Canceled(ctx context.Context) error {
	return &canceledError{cause: context.Cause(ctx)}
}

// CheckEvery is the cancellation-checkpoint stride of the hot loops:
// ctx.Err() is consulted once per this many iterations, keeping the
// overhead of cooperative cancellation under measurement noise while
// bounding the latency between a cancel and the loop noticing it.
const CheckEvery = 1024
