package engine

import (
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/distance"
)

// FuzzDistanceCache drives the memoized string-distance path with
// arbitrary values under concurrent readers: every cached answer must
// equal a fresh distance.Values computation, in both orientations, and
// threshold checks must agree with ValuesWithin. Run under -race (the
// race target includes this package) it also exercises the shard
// locking.
func FuzzDistanceCache(f *testing.F) {
	f.Add("granita", "granite", "fenix", 1.0)
	f.Add("", "a", "ab", 0.0)
	f.Add("höllywood", "hollywood", "hollywood", 2.5)
	f.Add("310/456-0488", "310-392-9025", "213/848-6677", 3.0)
	f.Fuzz(func(t *testing.T, a, b, c string, th float64) {
		schema := dataset.NewSchema(
			dataset.Attribute{Name: "S", Kind: dataset.KindString},
			dataset.Attribute{Name: "T", Kind: dataset.KindString},
		)
		rel := dataset.NewRelation(schema)
		for _, s := range []string{a, b, c, a} {
			rel.MustAppend(dataset.Tuple{dataset.NewString(s), dataset.NewString(s + b)})
		}
		v := Compile(rel)
		var wg sync.WaitGroup
		fail := make(chan string, 4)
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for rep := 0; rep < 2; rep++ {
					for i := 0; i < rel.Len(); i++ {
						for j := 0; j < rel.Len(); j++ {
							for attr := 0; attr < 2; attr++ {
								got := v.Distance(attr, i, j)
								want := distance.Values(rel.Get(i, attr), rel.Get(j, attr))
								if got != want {
									select {
									case fail <- "cached distance diverged from fresh computation":
									default:
									}
									return
								}
								if v.Within(attr, i, j, th) != distance.ValuesWithin(rel.Get(i, attr), rel.Get(j, attr), th) {
									select {
									case fail <- "Within diverged from ValuesWithin":
									default:
									}
									return
								}
							}
						}
					}
				}
			}()
		}
		wg.Wait()
		select {
		case msg := <-fail:
			t.Fatal(msg)
		default:
		}
		hits, misses := v.CacheStats()
		if hits < 0 || misses < 0 {
			t.Fatalf("negative cache stats: %d/%d", hits, misses)
		}
	})
}
