package dataset

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

const sampleCSV = `Name,City,Phone,Type,Class
Granita,Malibu,310/456-0488,Californian,6
Chinois Main,LA,310-392-9025,French,5
Citrus,Los Angeles,213/857-0034,Californian,6
Citrus,Los Angeles,,Californian,6
Fenix,Hollywood,213/848-6677,,5
Fenix Argyle,,213/848-6677,French (new),5
C. Main,Los Angeles,,French,5
`

func TestReadCSVInference(t *testing.T) {
	r, err := ReadCSVString(sampleCSV)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 7 {
		t.Fatalf("Len = %d", r.Len())
	}
	s := r.Schema()
	wantKinds := map[string]Kind{
		"Name": KindString, "City": KindString, "Phone": KindString,
		"Type": KindString, "Class": KindInt,
	}
	for name, kind := range wantKinds {
		i, ok := s.Index(name)
		if !ok {
			t.Fatalf("missing attribute %q", name)
		}
		if s.Attr(i).Kind != kind {
			t.Errorf("attribute %q inferred %v, want %v", name, s.Attr(i).Kind, kind)
		}
	}
	if got := r.CountMissing(); got != 4 {
		t.Errorf("CountMissing = %d, want 4", got)
	}
	if got := r.Get(0, s.MustIndex("Class")); got.Int() != 6 {
		t.Errorf("Class[0] = %v", got)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r, err := ReadCSVString(sampleCSV)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	r2, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Equal(r2) {
		t.Error("round-trip changed relation")
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	r, err := ReadCSVString(sampleCSV)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sample.csv")
	if err := WriteCSVFile(path, r); err != nil {
		t.Fatal(err)
	}
	r2, err := ReadCSVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Equal(r2) {
		t.Error("file round-trip changed relation")
	}
}

func TestReadCSVFileMissing(t *testing.T) {
	if _, err := ReadCSVFile(filepath.Join(t.TempDir(), "nope.csv")); err == nil {
		t.Error("reading nonexistent file should fail")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
	}{
		{"empty document", ""},
		{"ragged row", "A,B\n1,2\n3\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadCSVString(c.doc); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestReadCSVHeaderOnly(t *testing.T) {
	r, err := ReadCSVString("A,B,C\n")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 || r.Schema().Len() != 3 {
		t.Errorf("shape = %dx%d", r.Len(), r.Schema().Len())
	}
}

func TestReadCSVDuplicateAndEmptyHeaders(t *testing.T) {
	r, err := ReadCSVString("A,A,,A\n1,2,3,4\n")
	if err != nil {
		t.Fatal(err)
	}
	names := r.Schema().Names()
	if names[0] != "A" || names[1] != "A_2" || names[2] != "col3" || names[3] != "A_3" {
		t.Errorf("deduped names = %v", names)
	}
}

func TestReadCSVMixedNumericColumn(t *testing.T) {
	r, err := ReadCSVString("X\n1\n2.5\n?\n")
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Schema().Attr(0).Kind; got != KindFloat {
		t.Errorf("inferred %v, want float", got)
	}
	if !r.Get(2, 0).IsNull() {
		t.Error("'?' not parsed as null")
	}
}

func TestReadCSVBoolColumn(t *testing.T) {
	r, err := ReadCSVString("Flag\ntrue\nfalse\n\n")
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Schema().Attr(0).Kind; got != KindBool {
		t.Errorf("inferred %v, want bool", got)
	}
	if !r.Get(0, 0).Bool() || r.Get(1, 0).Bool() {
		t.Error("bool payloads wrong")
	}
}

func TestWriteCSVNullsAsEmpty(t *testing.T) {
	r := NewRelation(NewSchema(Attribute{Name: "A", Kind: KindString}))
	r.MustAppend(Tuple{Null})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.String(), "A\n_\n"; got != want {
		t.Errorf("null cell written as %q, want %q", got, want)
	}
	// The empty field must read back as null.
	r2, err := ReadCSV(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if r2.Len() != 1 || !r2.Get(0, 0).IsNull() {
		t.Errorf("round-tripped null = %v over %d rows", r2.Get(0, 0), r2.Len())
	}
}

func TestReadCSVQuotedFields(t *testing.T) {
	r, err := ReadCSVString("A,B\n\"hello, world\",\"line\"\n")
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Get(0, 0).Str(); got != "hello, world" {
		t.Errorf("quoted field = %q", got)
	}
}
