package dataset

import (
	"fmt"
)

// Tuple is one row of a relation, positional against the schema.
type Tuple []Value

// Clone returns an independent copy of the tuple.
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }

// HasMissing reports whether any cell of the tuple is null.
func (t Tuple) HasMissing() bool {
	for _, v := range t {
		if v.IsNull() {
			return true
		}
	}
	return false
}

// MissingAttrs returns the positions of the null cells.
func (t Tuple) MissingAttrs() []int {
	var out []int
	for i, v := range t {
		if v.IsNull() {
			out = append(out, i)
		}
	}
	return out
}

// Cell identifies a single position in a relation instance: row index and
// attribute index.
type Cell struct {
	Row  int
	Attr int
}

// Relation is a mutable relation instance r over a fixed schema.
// Rows are addressed by index; the imputation algorithms mutate cells in
// place via Set.
type Relation struct {
	schema *Schema
	rows   []Tuple
}

// NewRelation returns an empty relation over the schema.
func NewRelation(schema *Schema) *Relation {
	return &Relation{schema: schema}
}

// Schema returns the relation schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Len returns the number of tuples, n in the paper's notation.
func (r *Relation) Len() int { return len(r.rows) }

// Row returns the tuple at index i. The returned slice aliases the
// relation's storage; callers that mutate it must use Set instead.
func (r *Relation) Row(i int) Tuple { return r.rows[i] }

// Get returns the cell value at (row, attr).
func (r *Relation) Get(row, attr int) Value { return r.rows[row][attr] }

// Set overwrites the cell value at (row, attr).
func (r *Relation) Set(row, attr int, v Value) { r.rows[row][attr] = v }

// Append adds a tuple to the relation. The tuple's arity must match the
// schema; cell kinds must match the attribute kind or be null.
func (r *Relation) Append(t Tuple) error {
	if len(t) != r.schema.Len() {
		return fmt.Errorf("dataset: tuple arity %d != schema arity %d", len(t), r.schema.Len())
	}
	for i, v := range t {
		if v.IsNull() {
			continue
		}
		want := r.schema.Attr(i).Kind
		if v.Kind() != want && !(v.Kind().Numeric() && want.Numeric()) {
			return fmt.Errorf("dataset: attribute %q expects %v, got %v",
				r.schema.Attr(i).Name, want, v.Kind())
		}
	}
	r.rows = append(r.rows, t)
	return nil
}

// MustAppend is Append that panics on error; used by generators that
// construct tuples against their own schema.
func (r *Relation) MustAppend(t Tuple) {
	if err := r.Append(t); err != nil {
		panic(err)
	}
}

// Clone returns a deep copy of the relation: imputation runs clone the
// injected instance so every algorithm sees identical input.
func (r *Relation) Clone() *Relation {
	c := &Relation{schema: r.schema, rows: make([]Tuple, len(r.rows))}
	for i, t := range r.rows {
		c.rows[i] = t.Clone()
	}
	return c
}

// MissingCells returns every null cell in the relation, in row-major order.
func (r *Relation) MissingCells() []Cell {
	var cells []Cell
	for i, t := range r.rows {
		for j, v := range t {
			if v.IsNull() {
				cells = append(cells, Cell{Row: i, Attr: j})
			}
		}
	}
	return cells
}

// IncompleteRows returns the indices of tuples with at least one missing
// value — the set r-hat of the paper.
func (r *Relation) IncompleteRows() []int {
	var rows []int
	for i, t := range r.rows {
		if t.HasMissing() {
			rows = append(rows, i)
		}
	}
	return rows
}

// CountMissing returns the number of null cells.
func (r *Relation) CountMissing() int {
	n := 0
	for _, t := range r.rows {
		for _, v := range t {
			if v.IsNull() {
				n++
			}
		}
	}
	return n
}

// Complete reports whether the relation has no missing cells.
func (r *Relation) Complete() bool { return r.CountMissing() == 0 }

// Select returns the row indices for which keep returns true.
func (r *Relation) Select(keep func(Tuple) bool) []int {
	var rows []int
	for i, t := range r.rows {
		if keep(t) {
			rows = append(rows, i)
		}
	}
	return rows
}

// Project returns a new relation holding copies of the given attributes.
func (r *Relation) Project(attrNames ...string) (*Relation, error) {
	idx := make([]int, len(attrNames))
	attrs := make([]Attribute, len(attrNames))
	for k, name := range attrNames {
		i, ok := r.schema.Index(name)
		if !ok {
			return nil, fmt.Errorf("dataset: project on unknown attribute %q", name)
		}
		idx[k] = i
		attrs[k] = r.schema.Attr(i)
	}
	out := NewRelation(NewSchema(attrs...))
	for _, t := range r.rows {
		row := make(Tuple, len(idx))
		for k, i := range idx {
			row[k] = t[i]
		}
		out.rows = append(out.rows, row)
	}
	return out, nil
}

// Head returns a new relation holding copies of the first n rows (all rows
// if n exceeds the length). Used by the Table 5 tuple-count sweep.
func (r *Relation) Head(n int) *Relation {
	if n > len(r.rows) {
		n = len(r.rows)
	}
	out := NewRelation(r.schema)
	for i := 0; i < n; i++ {
		out.rows = append(out.rows, r.rows[i].Clone())
	}
	return out
}

// ActiveDomain returns the distinct non-null values of the attribute, in
// first-appearance order.
func (r *Relation) ActiveDomain(attr int) []Value {
	seen := make(map[string]bool)
	var out []Value
	for _, t := range r.rows {
		v := t[attr]
		if v.IsNull() {
			continue
		}
		key := v.Kind().String() + "\x00" + v.String()
		if !seen[key] {
			seen[key] = true
			out = append(out, v)
		}
	}
	return out
}

// Equal reports whether two relations have the same schema and identical
// cell contents.
func (r *Relation) Equal(o *Relation) bool {
	if !r.schema.Equal(o.schema) || len(r.rows) != len(o.rows) {
		return false
	}
	for i := range r.rows {
		for j := range r.rows[i] {
			if !r.rows[i][j].Equal(o.rows[i][j]) {
				return false
			}
		}
	}
	return true
}
