// Package dataset provides the relational substrate RENUVER operates on:
// typed attribute values, relation schemas with type inference, mutable
// relation instances, and a CSV codec.
//
// The package is deliberately self-contained — Go has no mainstream
// dataframe library, so everything the imputation stack needs from a
// "table" lives here: typed cells with an explicit null, cheap projection,
// row cloning, and missing-cell enumeration.
package dataset

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the value domains RENUVER understands (Sec. 5.3 of the
// paper: string, int, float/double, and boolean attributes, plus null).
type Kind uint8

// Supported value kinds. KindNull is the zero value so that a zero Value
// is a missing cell.
const (
	KindNull Kind = iota
	KindString
	KindInt
	KindFloat
	KindBool
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Numeric reports whether the kind carries a numeric payload.
func (k Kind) Numeric() bool { return k == KindInt || k == KindFloat }

// Value is a single typed cell. The zero Value is null (a missing value,
// written "_" in the paper). Values are immutable once constructed.
type Value struct {
	kind Kind
	s    string  // payload for KindString
	n    float64 // payload for KindInt/KindFloat/KindBool (0 or 1)
}

// Null is the missing-value cell, t[A] = _ in the paper's notation.
var Null = Value{}

// NewString returns a string value.
func NewString(s string) Value { return Value{kind: KindString, s: s} }

// NewInt returns an integer value.
func NewInt(i int64) Value { return Value{kind: KindInt, n: float64(i)} }

// NewFloat returns a floating-point value. NaN is treated as null because
// a NaN cell cannot participate in any distance computation.
func NewFloat(f float64) Value {
	if math.IsNaN(f) {
		return Null
	}
	return Value{kind: KindFloat, n: f}
}

// NewBool returns a boolean value.
func NewBool(b bool) Value {
	v := Value{kind: KindBool}
	if b {
		v.n = 1
	}
	return v
}

// Kind returns the domain of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the cell is missing.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Str returns the string payload. It is only meaningful for KindString.
func (v Value) Str() string { return v.s }

// Float returns the numeric payload as float64 (0/1 for booleans).
func (v Value) Float() float64 { return v.n }

// Int returns the numeric payload truncated to int64.
func (v Value) Int() int64 { return int64(v.n) }

// Bool returns the boolean payload.
func (v Value) Bool() bool { return v.kind == KindBool && v.n != 0 }

// Equal reports deep equality of two cells. Two nulls are equal to each
// other; null never equals a present value.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		// Int/float cross-kind comparison still counts when payloads match:
		// type inference can legitimately widen a column between loads.
		if v.kind.Numeric() && o.kind.Numeric() {
			return v.n == o.n
		}
		return false
	}
	switch v.kind {
	case KindNull:
		return true
	case KindString:
		return v.s == o.s
	default:
		return v.n == o.n
	}
}

// String renders the value the way the CSV codec writes it. Null renders
// as the empty string.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return ""
	case KindString:
		return v.s
	case KindInt:
		return strconv.FormatInt(int64(v.n), 10)
	case KindFloat:
		return strconv.FormatFloat(v.n, 'g', -1, 64)
	case KindBool:
		if v.n != 0 {
			return "true"
		}
		return "false"
	default:
		return ""
	}
}

// nullTokens are raw CSV spellings parsed as a missing value.
var nullTokens = map[string]bool{
	"": true, "_": true, "?": true, "na": true, "n/a": true,
	"nan": true, "null": true, "none": true, "nil": true, "missing": true,
}

// IsNullToken reports whether a raw string denotes a missing value.
func IsNullToken(raw string) bool {
	return nullTokens[strings.ToLower(strings.TrimSpace(raw))]
}

// Parse converts a raw string into a Value of the requested kind.
// Null tokens parse to Null for every kind. Parsing a non-null token into
// a numeric or boolean kind fails loudly rather than guessing.
func Parse(raw string, kind Kind) (Value, error) {
	if IsNullToken(raw) {
		return Null, nil
	}
	trimmed := strings.TrimSpace(raw)
	switch kind {
	case KindString:
		return NewString(raw), nil
	case KindInt:
		i, err := strconv.ParseInt(trimmed, 10, 64)
		if err != nil {
			return Null, fmt.Errorf("dataset: parse %q as int: %w", raw, err)
		}
		return NewInt(i), nil
	case KindFloat:
		f, err := strconv.ParseFloat(trimmed, 64)
		if err != nil {
			return Null, fmt.Errorf("dataset: parse %q as float: %w", raw, err)
		}
		return NewFloat(f), nil
	case KindBool:
		switch strings.ToLower(trimmed) {
		case "true", "t", "yes", "y", "1":
			return NewBool(true), nil
		case "false", "f", "no", "n", "0":
			return NewBool(false), nil
		}
		return Null, fmt.Errorf("dataset: parse %q as bool", raw)
	case KindNull:
		return Null, nil
	default:
		return Null, fmt.Errorf("dataset: parse into unknown kind %v", kind)
	}
}

// InferKind guesses the narrowest kind that can represent every non-null
// token in the sample. Order of preference: bool, int, float, string.
func InferKind(sample []string) Kind {
	couldBool, couldInt, couldFloat := true, true, true
	sawValue := false
	for _, raw := range sample {
		if IsNullToken(raw) {
			continue
		}
		sawValue = true
		t := strings.ToLower(strings.TrimSpace(raw))
		switch t {
		case "true", "false", "t", "f", "yes", "no":
		default:
			couldBool = false
		}
		if _, err := strconv.ParseInt(strings.TrimSpace(raw), 10, 64); err != nil {
			couldInt = false
		}
		if _, err := strconv.ParseFloat(strings.TrimSpace(raw), 64); err != nil {
			couldFloat = false
		}
		if !couldBool && !couldInt && !couldFloat {
			return KindString
		}
	}
	switch {
	case !sawValue:
		return KindString
	case couldBool:
		return KindBool
	case couldInt:
		return KindInt
	case couldFloat:
		return KindFloat
	default:
		return KindString
	}
}
