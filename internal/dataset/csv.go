package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strings"
)

// ReadCSV loads a relation from CSV. The first record is the header; value
// kinds are inferred per column from every data row (see InferKind).
// Duplicate header names are disambiguated with a numeric suffix.
func ReadCSV(r io.Reader) (*Relation, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: read csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("dataset: csv has no header row")
	}
	header := dedupeHeader(records[0])
	body := records[1:]

	m := len(header)
	cols := make([][]string, m)
	for i := range cols {
		cols[i] = make([]string, 0, len(body))
	}
	for rowNum, rec := range body {
		if len(rec) != m {
			return nil, fmt.Errorf("dataset: row %d has %d fields, want %d", rowNum+2, len(rec), m)
		}
		for i, f := range rec {
			cols[i] = append(cols[i], f)
		}
	}

	attrs := make([]Attribute, m)
	for i, name := range header {
		attrs[i] = Attribute{Name: name, Kind: InferKind(cols[i])}
	}
	rel := NewRelation(NewSchema(attrs...))
	for rowNum, rec := range body {
		t := make(Tuple, m)
		for i, f := range rec {
			v, err := Parse(f, attrs[i].Kind)
			if err != nil {
				return nil, fmt.Errorf("dataset: row %d: %w", rowNum+2, err)
			}
			t[i] = v
		}
		rel.rows = append(rel.rows, t)
	}
	return rel, nil
}

// ReadCSVFile is ReadCSV over a file path.
func ReadCSVFile(path string) (*Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f)
}

// ReadCSVString is ReadCSV over an in-memory document; handy in tests.
func ReadCSVString(doc string) (*Relation, error) {
	return ReadCSV(strings.NewReader(doc))
}

// WriteCSV writes the relation as CSV with a header row. Null cells are
// written as empty fields, except in single-column relations where an
// all-empty record would be a blank line (which csv readers skip); there
// the explicit null token "_" is written instead.
func WriteCSV(w io.Writer, rel *Relation) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(rel.Schema().Names()); err != nil {
		return err
	}
	rec := make([]string, rel.Schema().Len())
	for i := 0; i < rel.Len(); i++ {
		t := rel.Row(i)
		for j, v := range t {
			rec[j] = v.String()
		}
		if len(rec) == 1 && rec[0] == "" {
			rec[0] = "_"
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile is WriteCSV to a file path.
func WriteCSVFile(path string, rel *Relation) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCSV(f, rel); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// dedupeHeader makes header names unique and non-empty.
func dedupeHeader(header []string) []string {
	used := make(map[string]bool, len(header))
	out := make([]string, len(header))
	for i, name := range header {
		name = strings.TrimSpace(name)
		if name == "" {
			name = fmt.Sprintf("col%d", i+1)
		}
		candidate := name
		for n := 2; used[candidate]; n++ {
			candidate = fmt.Sprintf("%s_%d", name, n)
		}
		used[candidate] = true
		out[i] = candidate
	}
	return out
}
