package dataset

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// randomRelation builds a random typed relation with CSV-safe values.
func randomRelation(rng *rand.Rand) *Relation {
	m := 1 + rng.Intn(5)
	attrs := make([]Attribute, m)
	for a := 0; a < m; a++ {
		attrs[a] = Attribute{
			Name: fmt.Sprintf("C%d", a),
			Kind: []Kind{KindString, KindInt, KindFloat, KindBool}[rng.Intn(4)],
		}
	}
	rel := NewRelation(NewSchema(attrs...))
	words := []string{"alpha", "beta gamma", "x,y", `quo"te`, "Granita"}
	n := rng.Intn(20)
	for i := 0; i < n; i++ {
		t := make(Tuple, m)
		for a := 0; a < m; a++ {
			if rng.Float64() < 0.2 {
				t[a] = Null
				continue
			}
			switch attrs[a].Kind {
			case KindString:
				t[a] = NewString(words[rng.Intn(len(words))])
			case KindInt:
				t[a] = NewInt(int64(rng.Intn(2000) - 1000))
			case KindFloat:
				t[a] = NewFloat(float64(rng.Intn(1000)) / 8)
			case KindBool:
				t[a] = NewBool(rng.Intn(2) == 0)
			}
		}
		rel.MustAppend(t)
	}
	return rel
}

// TestPropertyCSVRoundTrip: writing and re-reading any random relation
// reproduces shape and null positions; typed cells survive when the
// type is inferable (string columns whose every value looks numeric may
// legitimately re-infer, so compare the rendering).
func TestPropertyCSVRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 200; trial++ {
		rel := randomRelation(rng)
		var buf bytes.Buffer
		if err := WriteCSV(&buf, rel); err != nil {
			t.Fatal(err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if back.Len() != rel.Len() || back.Schema().Len() != rel.Schema().Len() {
			t.Fatalf("trial %d: shape changed %dx%d -> %dx%d", trial,
				rel.Len(), rel.Schema().Len(), back.Len(), back.Schema().Len())
		}
		for i := 0; i < rel.Len(); i++ {
			for a := 0; a < rel.Schema().Len(); a++ {
				orig, got := rel.Get(i, a), back.Get(i, a)
				if orig.IsNull() != got.IsNull() {
					t.Fatalf("trial %d: null position changed at (%d,%d): %v -> %v",
						trial, i, a, orig, got)
				}
				if !orig.IsNull() && orig.String() != got.String() {
					t.Fatalf("trial %d: cell (%d,%d) rendering changed %q -> %q",
						trial, i, a, orig.String(), got.String())
				}
			}
		}
	}
}

// TestPropertyCloneIsDeepEverywhere: mutating any cell of a clone never
// leaks into the original.
func TestPropertyCloneIsDeepEverywhere(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	for trial := 0; trial < 100; trial++ {
		rel := randomRelation(rng)
		if rel.Len() == 0 {
			continue
		}
		clone := rel.Clone()
		i, a := rng.Intn(rel.Len()), rng.Intn(rel.Schema().Len())
		orig := rel.Get(i, a)
		clone.Set(i, a, NewString("MUTATED"))
		if !rel.Get(i, a).Equal(orig) {
			t.Fatalf("trial %d: clone mutation leaked", trial)
		}
	}
}

// TestPropertyMissingAccountingAgrees: CountMissing equals the length
// of MissingCells and the sum over IncompleteRows' missing attrs.
func TestPropertyMissingAccountingAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 150; trial++ {
		rel := randomRelation(rng)
		count := rel.CountMissing()
		if got := len(rel.MissingCells()); got != count {
			t.Fatalf("trial %d: MissingCells %d != CountMissing %d", trial, got, count)
		}
		sum := 0
		for _, row := range rel.IncompleteRows() {
			sum += len(rel.Row(row).MissingAttrs())
		}
		if sum != count {
			t.Fatalf("trial %d: per-row sum %d != CountMissing %d", trial, sum, count)
		}
		if (count == 0) != rel.Complete() {
			t.Fatalf("trial %d: Complete() disagrees", trial)
		}
	}
}

// TestPropertyActiveDomainInvariants: domain values are distinct,
// non-null, and all present in the column.
func TestPropertyActiveDomainInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 100; trial++ {
		rel := randomRelation(rng)
		for a := 0; a < rel.Schema().Len(); a++ {
			dom := rel.ActiveDomain(a)
			seen := map[string]bool{}
			for _, v := range dom {
				if v.IsNull() {
					t.Fatalf("trial %d: null in active domain", trial)
				}
				key := v.String()
				if seen[key] {
					t.Fatalf("trial %d: duplicate %q in active domain", trial, key)
				}
				seen[key] = true
			}
			// Every observed value is in the domain.
			for i := 0; i < rel.Len(); i++ {
				if v := rel.Get(i, a); !v.IsNull() && !seen[v.String()] {
					t.Fatalf("trial %d: observed %q missing from domain", trial, v.String())
				}
			}
		}
	}
}
