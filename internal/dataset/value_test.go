package dataset

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	cases := []struct {
		name string
		v    Value
		kind Kind
		str  string
	}{
		{"null", Null, KindNull, ""},
		{"string", NewString("Granita"), KindString, "Granita"},
		{"empty string", NewString(""), KindString, ""},
		{"int", NewInt(42), KindInt, "42"},
		{"negative int", NewInt(-7), KindInt, "-7"},
		{"float", NewFloat(3.25), KindFloat, "3.25"},
		{"bool true", NewBool(true), KindBool, "true"},
		{"bool false", NewBool(false), KindBool, "false"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if c.v.Kind() != c.kind {
				t.Errorf("Kind() = %v, want %v", c.v.Kind(), c.kind)
			}
			if c.v.String() != c.str {
				t.Errorf("String() = %q, want %q", c.v.String(), c.str)
			}
		})
	}
}

func TestZeroValueIsNull(t *testing.T) {
	var v Value
	if !v.IsNull() {
		t.Fatal("zero Value must be null")
	}
	if !v.Equal(Null) {
		t.Fatal("zero Value must equal Null")
	}
}

func TestNewFloatNaNBecomesNull(t *testing.T) {
	if v := NewFloat(math.NaN()); !v.IsNull() {
		t.Fatalf("NewFloat(NaN) = %v, want Null", v)
	}
}

func TestValueEqual(t *testing.T) {
	cases := []struct {
		name string
		a, b Value
		want bool
	}{
		{"null==null", Null, Null, true},
		{"null!=string", Null, NewString(""), false},
		{"string==string", NewString("x"), NewString("x"), true},
		{"string!=string", NewString("x"), NewString("y"), false},
		{"int==int", NewInt(5), NewInt(5), true},
		{"int!=int", NewInt(5), NewInt(6), false},
		{"int==float crosskind", NewInt(5), NewFloat(5), true},
		{"int!=float crosskind", NewInt(5), NewFloat(5.5), false},
		{"bool==bool", NewBool(true), NewBool(true), true},
		{"bool!=bool", NewBool(true), NewBool(false), false},
		{"string!=int", NewString("5"), NewInt(5), false},
		{"bool!=int despite payload", NewBool(true), NewInt(1), false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.a.Equal(c.b); got != c.want {
				t.Errorf("Equal = %v, want %v", got, c.want)
			}
			if got := c.b.Equal(c.a); got != c.want {
				t.Errorf("Equal not symmetric: %v, want %v", got, c.want)
			}
		})
	}
}

func TestValueEqualReflexiveProperty(t *testing.T) {
	f := func(s string, i int64, fl float64, b bool) bool {
		vals := []Value{NewString(s), NewInt(i), NewFloat(fl), NewBool(b), Null}
		for _, v := range vals {
			if !v.Equal(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseRoundTripProperty(t *testing.T) {
	// Parsing a value's String() back at its own kind must reproduce it.
	f := func(i int64, b bool) bool {
		vi, err := Parse(NewInt(i).String(), KindInt)
		if err != nil || !vi.Equal(NewInt(i)) {
			return false
		}
		vb, err := Parse(NewBool(b).String(), KindBool)
		return err == nil && vb.Equal(NewBool(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseFloatRoundTripProperty(t *testing.T) {
	f := func(fl float64) bool {
		want := NewFloat(fl)
		got, err := Parse(want.String(), KindFloat)
		if want.IsNull() { // NaN input
			return err == nil && got.IsNull()
		}
		return err == nil && got.Equal(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseNullTokens(t *testing.T) {
	for _, tok := range []string{"", "_", "?", "NA", "n/a", "NaN", "NULL", "none", " nil ", "missing"} {
		for _, k := range []Kind{KindString, KindInt, KindFloat, KindBool} {
			v, err := Parse(tok, k)
			if err != nil {
				t.Errorf("Parse(%q, %v) error: %v", tok, k, err)
			}
			if !v.IsNull() {
				t.Errorf("Parse(%q, %v) = %v, want Null", tok, k, v)
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		raw  string
		kind Kind
	}{
		{"abc", KindInt},
		{"1.5", KindInt},
		{"abc", KindFloat},
		{"maybe", KindBool},
		{"2", KindBool},
	}
	for _, c := range cases {
		if _, err := Parse(c.raw, c.kind); err == nil {
			t.Errorf("Parse(%q, %v) succeeded, want error", c.raw, c.kind)
		}
	}
}

func TestParseBoolSpellings(t *testing.T) {
	truthy := []string{"true", "T", "YES", "y", "1"}
	falsy := []string{"false", "F", "NO", "n", "0"}
	for _, s := range truthy {
		v, err := Parse(s, KindBool)
		if err != nil || !v.Bool() {
			t.Errorf("Parse(%q, bool) = %v, %v; want true", s, v, err)
		}
	}
	for _, s := range falsy {
		v, err := Parse(s, KindBool)
		if err != nil || v.Bool() || v.IsNull() {
			t.Errorf("Parse(%q, bool) = %v, %v; want false", s, v, err)
		}
	}
}

func TestInferKind(t *testing.T) {
	cases := []struct {
		name   string
		sample []string
		want   Kind
	}{
		{"all ints", []string{"1", "2", "-3"}, KindInt},
		{"ints with nulls", []string{"1", "", "3", "?"}, KindInt},
		{"floats", []string{"1.5", "2"}, KindFloat},
		{"scientific", []string{"1e3", "2"}, KindFloat},
		{"bools", []string{"true", "false", "T"}, KindBool},
		{"strings", []string{"Granita", "Fenix"}, KindString},
		{"mixed digits and text", []string{"1", "abc"}, KindString},
		{"empty sample", nil, KindString},
		{"all nulls", []string{"", "?", "NA"}, KindString},
		{"phone-like", []string{"310/456-0488"}, KindString},
		{"numeric with leading space", []string{" 12 ", "5"}, KindInt},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := InferKind(c.sample); got != c.want {
				t.Errorf("InferKind(%v) = %v, want %v", c.sample, got, c.want)
			}
		})
	}
}

func TestKindString(t *testing.T) {
	if KindFloat.String() != "float" || KindNull.String() != "null" {
		t.Error("Kind.String mismatch")
	}
	if Kind(99).String() != "kind(99)" {
		t.Errorf("unknown kind String() = %q", Kind(99).String())
	}
	if !KindInt.Numeric() || !KindFloat.Numeric() || KindString.Numeric() || KindBool.Numeric() {
		t.Error("Kind.Numeric mismatch")
	}
}
