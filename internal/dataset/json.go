package dataset

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// ReadJSONLines loads a relation from newline-delimited JSON (one object
// per line). The schema is the union of all keys, ordered
// alphabetically; value kinds are inferred from the JSON types (numbers
// become float, or int when every occurrence is integral; booleans stay
// boolean; everything else is a string). JSON null and absent keys are
// missing values.
func ReadJSONLines(r io.Reader) (*Relation, error) {
	var objects []map[string]any
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	lineNum := 0
	for sc.Scan() {
		lineNum++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var obj map[string]any
		if err := json.Unmarshal(line, &obj); err != nil {
			return nil, fmt.Errorf("dataset: json line %d: %w", lineNum, err)
		}
		objects = append(objects, obj)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return relationFromObjects(objects)
}

// ReadJSONLinesFile is ReadJSONLines over a file path.
func ReadJSONLinesFile(path string) (*Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSONLines(f)
}

// relationFromObjects builds the union schema and typed tuples.
func relationFromObjects(objects []map[string]any) (*Relation, error) {
	keySet := map[string]bool{}
	for _, obj := range objects {
		for k := range obj {
			keySet[k] = true
		}
	}
	keys := make([]string, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if len(keys) == 0 {
		return nil, fmt.Errorf("dataset: json input has no keys")
	}

	kinds := make([]Kind, len(keys))
	for i, k := range keys {
		kinds[i] = inferJSONKind(objects, k)
	}
	attrs := make([]Attribute, len(keys))
	for i, k := range keys {
		attrs[i] = Attribute{Name: k, Kind: kinds[i]}
	}
	rel := NewRelation(NewSchema(attrs...))
	for lineNum, obj := range objects {
		t := make(Tuple, len(keys))
		for i, k := range keys {
			v, err := jsonValue(obj[k], kinds[i])
			if err != nil {
				return nil, fmt.Errorf("dataset: json object %d, key %q: %w", lineNum+1, k, err)
			}
			t[i] = v
		}
		rel.rows = append(rel.rows, t)
	}
	return rel, nil
}

// inferJSONKind picks the narrowest kind covering every non-null value.
func inferJSONKind(objects []map[string]any, key string) Kind {
	sawValue, allBool, allNumber, allIntegral := false, true, true, true
	for _, obj := range objects {
		raw, ok := obj[key]
		if !ok || raw == nil {
			continue
		}
		sawValue = true
		switch x := raw.(type) {
		case bool:
			allNumber = false
		case float64:
			allBool = false
			if x != float64(int64(x)) {
				allIntegral = false
			}
		default:
			return KindString
		}
	}
	switch {
	case !sawValue:
		return KindString
	case allBool:
		return KindBool
	case allNumber && allIntegral:
		return KindInt
	case allNumber:
		return KindFloat
	default:
		return KindString
	}
}

// jsonValue converts one decoded JSON value into the target kind.
func jsonValue(raw any, kind Kind) (Value, error) {
	if raw == nil {
		return Null, nil
	}
	switch kind {
	case KindBool:
		b, ok := raw.(bool)
		if !ok {
			return Null, fmt.Errorf("want bool, got %T", raw)
		}
		return NewBool(b), nil
	case KindInt:
		f, ok := raw.(float64)
		if !ok {
			return Null, fmt.Errorf("want number, got %T", raw)
		}
		return NewInt(int64(f)), nil
	case KindFloat:
		f, ok := raw.(float64)
		if !ok {
			return Null, fmt.Errorf("want number, got %T", raw)
		}
		return NewFloat(f), nil
	default:
		switch x := raw.(type) {
		case string:
			return NewString(x), nil
		case bool:
			return NewBool(x).toStringValue(), nil
		case float64:
			return NewFloat(x).toStringValue(), nil
		default:
			data, err := json.Marshal(raw)
			if err != nil {
				return Null, err
			}
			return NewString(string(data)), nil
		}
	}
}

// toStringValue renders a typed value as a string cell — used when a
// mixed-type JSON column degrades to the string kind.
func (v Value) toStringValue() Value { return NewString(v.String()) }

// WriteJSONLines writes the relation as newline-delimited JSON objects.
// Missing cells are emitted as JSON null so the document round-trips.
func WriteJSONLines(w io.Writer, rel *Relation) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	names := rel.Schema().Names()
	for i := 0; i < rel.Len(); i++ {
		obj := make(map[string]any, len(names))
		t := rel.Row(i)
		for j, name := range names {
			obj[name] = jsonEncodable(t[j])
		}
		if err := enc.Encode(obj); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteJSONLinesFile is WriteJSONLines to a file path.
func WriteJSONLinesFile(path string, rel *Relation) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteJSONLines(f, rel); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func jsonEncodable(v Value) any {
	switch v.Kind() {
	case KindNull:
		return nil
	case KindBool:
		return v.Bool()
	case KindInt:
		return v.Int()
	case KindFloat:
		return v.Float()
	default:
		return v.Str()
	}
}
