package dataset

import (
	"fmt"
	"strings"
)

// Attribute describes one column of a relation schema: its name and the
// value domain dom(A).
type Attribute struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of attributes. Attribute order is significant
// (tuples are positional) and names are unique.
type Schema struct {
	attrs []Attribute
	index map[string]int
}

// NewSchema builds a schema from the given attributes. It panics on
// duplicate or empty attribute names; schemas are constructed from trusted
// code paths (CSV headers are deduplicated by the reader).
func NewSchema(attrs ...Attribute) *Schema {
	s := &Schema{
		attrs: append([]Attribute(nil), attrs...),
		index: make(map[string]int, len(attrs)),
	}
	for i, a := range attrs {
		if a.Name == "" {
			panic("dataset: empty attribute name")
		}
		if _, dup := s.index[a.Name]; dup {
			panic(fmt.Sprintf("dataset: duplicate attribute %q", a.Name))
		}
		s.index[a.Name] = i
	}
	return s
}

// Len returns the number of attributes, m in the paper's notation.
func (s *Schema) Len() int { return len(s.attrs) }

// Attr returns the attribute at position i.
func (s *Schema) Attr(i int) Attribute { return s.attrs[i] }

// Attrs returns a copy of the attribute list.
func (s *Schema) Attrs() []Attribute { return append([]Attribute(nil), s.attrs...) }

// Index returns the position of the named attribute and whether it exists.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// MustIndex is Index that panics on unknown names; used where the
// attribute name was already validated.
func (s *Schema) MustIndex(name string) int {
	i, ok := s.index[name]
	if !ok {
		panic(fmt.Sprintf("dataset: unknown attribute %q", name))
	}
	return i
}

// Names returns the attribute names in order.
func (s *Schema) Names() []string {
	names := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		names[i] = a.Name
	}
	return names
}

// Equal reports whether two schemas have identical attribute lists.
func (s *Schema) Equal(o *Schema) bool {
	if s.Len() != o.Len() {
		return false
	}
	for i := range s.attrs {
		if s.attrs[i] != o.attrs[i] {
			return false
		}
	}
	return true
}

// String renders the schema as "name:kind, ...".
func (s *Schema) String() string {
	parts := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		parts[i] = a.Name + ":" + a.Kind.String()
	}
	return strings.Join(parts, ", ")
}
