package dataset

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

const jsonSample = `{"name":"Granita","class":6,"score":4.5,"open":true}
{"name":"Citrus","class":6,"score":3.25,"open":false}
{"name":null,"class":5,"open":true}
`

func TestReadJSONLinesInference(t *testing.T) {
	rel, err := ReadJSONLines(strings.NewReader(jsonSample))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 3 {
		t.Fatalf("rows = %d", rel.Len())
	}
	s := rel.Schema()
	// Keys sorted alphabetically: class, name, open, score.
	wantKinds := map[string]Kind{
		"class": KindInt, "name": KindString, "open": KindBool, "score": KindFloat,
	}
	for name, kind := range wantKinds {
		i, ok := s.Index(name)
		if !ok {
			t.Fatalf("missing attribute %q", name)
		}
		if s.Attr(i).Kind != kind {
			t.Errorf("attr %q kind = %v, want %v", name, s.Attr(i).Kind, kind)
		}
	}
	// JSON null and absent key both become missing.
	nameIdx := s.MustIndex("name")
	scoreIdx := s.MustIndex("score")
	if !rel.Get(2, nameIdx).IsNull() {
		t.Error("json null not missing")
	}
	if !rel.Get(2, scoreIdx).IsNull() {
		t.Error("absent key not missing")
	}
	if got := rel.Get(0, s.MustIndex("class")); got.Int() != 6 {
		t.Errorf("class = %v", got)
	}
}

func TestJSONLinesRoundTrip(t *testing.T) {
	rel, err := ReadJSONLines(strings.NewReader(jsonSample))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSONLines(&buf, rel); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONLines(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !rel.Equal(back) {
		t.Error("round trip changed relation")
	}
}

func TestJSONLinesFileRoundTrip(t *testing.T) {
	rel, err := ReadJSONLines(strings.NewReader(jsonSample))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "rel.jsonl")
	if err := WriteJSONLinesFile(path, rel); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONLinesFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rel.Equal(back) {
		t.Error("file round trip changed relation")
	}
	if _, err := ReadJSONLinesFile(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestReadJSONLinesMixedTypesDegradeToString(t *testing.T) {
	doc := `{"x":"text"}
{"x":5}
{"x":true}
{"x":[1,2]}
`
	rel, err := ReadJSONLines(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if got := rel.Schema().Attr(0).Kind; got != KindString {
		t.Fatalf("mixed column kind = %v", got)
	}
	if got := rel.Get(1, 0).Str(); got != "5" {
		t.Errorf("number as string = %q", got)
	}
	if got := rel.Get(2, 0).Str(); got != "true" {
		t.Errorf("bool as string = %q", got)
	}
	if got := rel.Get(3, 0).Str(); got != "[1,2]" {
		t.Errorf("array as string = %q", got)
	}
}

func TestReadJSONLinesErrors(t *testing.T) {
	if _, err := ReadJSONLines(strings.NewReader("{broken\n")); err == nil {
		t.Error("malformed json accepted")
	}
	if _, err := ReadJSONLines(strings.NewReader("")); err == nil {
		t.Error("empty document accepted (no keys)")
	}
	if _, err := ReadJSONLines(strings.NewReader("[1,2,3]\n")); err == nil {
		t.Error("non-object line accepted")
	}
}

func TestReadJSONLinesSkipsBlankLines(t *testing.T) {
	rel, err := ReadJSONLines(strings.NewReader("{\"a\":1}\n\n{\"a\":2}\n"))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Errorf("rows = %d", rel.Len())
	}
}

func TestJSONIntegralFloatsStayInt(t *testing.T) {
	rel, err := ReadJSONLines(strings.NewReader("{\"n\":1}\n{\"n\":2}\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got := rel.Schema().Attr(0).Kind; got != KindInt {
		t.Errorf("kind = %v, want int", got)
	}
	rel2, err := ReadJSONLines(strings.NewReader("{\"n\":1}\n{\"n\":2.5}\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got := rel2.Schema().Attr(0).Kind; got != KindFloat {
		t.Errorf("kind = %v, want float", got)
	}
}
