package dataset

import (
	"bytes"
	"testing"
)

// FuzzReadCSV: arbitrary CSV documents never panic the reader; accepted
// documents survive a write/read cycle with shape and null positions
// intact.
func FuzzReadCSV(f *testing.F) {
	seeds := []string{
		"A,B\n1,2\n",
		"A\nx\n",
		"",
		"A,B\n1\n",
		"A,A,\n1,2,3\n",
		"Name,Class\nGranita,6\n,5\n",
		"X\n1.5\nNaN\n",
		"F\ntrue\nfalse\n?\n",
		"\"q,u\",B\n\"a\"\"b\",2\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		rel, err := ReadCSVString(doc)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, rel); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("re-read failed: %v\ndoc: %q\nwritten: %q", err, doc, buf.String())
		}
		if back.Len() != rel.Len() || back.Schema().Len() != rel.Schema().Len() {
			t.Fatalf("shape changed: %dx%d -> %dx%d",
				rel.Len(), rel.Schema().Len(), back.Len(), back.Schema().Len())
		}
		for i := 0; i < rel.Len(); i++ {
			for a := 0; a < rel.Schema().Len(); a++ {
				if rel.Get(i, a).IsNull() != back.Get(i, a).IsNull() {
					t.Fatalf("null position changed at (%d,%d)", i, a)
				}
			}
		}
	})
}

// FuzzParseValue: Parse never panics for any kind and any input.
func FuzzParseValue(f *testing.F) {
	f.Add("42", uint8(KindInt))
	f.Add("3.14", uint8(KindFloat))
	f.Add("true", uint8(KindBool))
	f.Add("hello", uint8(KindString))
	f.Add("", uint8(KindNull))
	f.Add("1e400", uint8(KindFloat))
	f.Fuzz(func(t *testing.T, raw string, kindByte uint8) {
		kind := Kind(kindByte % 5)
		v, err := Parse(raw, kind)
		if err != nil {
			return
		}
		if !v.IsNull() && kind != KindString && kind != KindNull && v.Kind() != kind {
			t.Fatalf("Parse(%q, %v) produced kind %v", raw, kind, v.Kind())
		}
		_ = v.String() // must not panic
	})
}
