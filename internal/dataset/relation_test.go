package dataset

import (
	"testing"
)

func restaurantSchema() *Schema {
	return NewSchema(
		Attribute{Name: "Name", Kind: KindString},
		Attribute{Name: "City", Kind: KindString},
		Attribute{Name: "Phone", Kind: KindString},
		Attribute{Name: "Type", Kind: KindString},
		Attribute{Name: "Class", Kind: KindInt},
	)
}

// paperSample builds the Table 2 instance from the paper.
func paperSample() *Relation {
	r := NewRelation(restaurantSchema())
	rows := [][]any{
		{"Granita", "Malibu", "310/456-0488", "Californian", int64(6)},
		{"Chinois Main", "LA", "310-392-9025", "French", int64(5)},
		{"Citrus", "Los Angeles", "213/857-0034", "Californian", int64(6)},
		{"Citrus", "Los Angeles", nil, "Californian", int64(6)},
		{"Fenix", "Hollywood", "213/848-6677", nil, int64(5)},
		{"Fenix Argyle", nil, "213/848-6677", "French (new)", int64(5)},
		{"C. Main", "Los Angeles", nil, "French", int64(5)},
	}
	for _, raw := range rows {
		t := make(Tuple, len(raw))
		for i, f := range raw {
			switch x := f.(type) {
			case nil:
				t[i] = Null
			case string:
				t[i] = NewString(x)
			case int64:
				t[i] = NewInt(x)
			}
		}
		r.MustAppend(t)
	}
	return r
}

func TestSchemaBasics(t *testing.T) {
	s := restaurantSchema()
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5", s.Len())
	}
	if i, ok := s.Index("Phone"); !ok || i != 2 {
		t.Errorf("Index(Phone) = %d,%v", i, ok)
	}
	if _, ok := s.Index("Nope"); ok {
		t.Error("Index(Nope) should not exist")
	}
	if s.MustIndex("Class") != 4 {
		t.Error("MustIndex(Class) != 4")
	}
	if got := s.Names(); got[0] != "Name" || got[4] != "Class" {
		t.Errorf("Names = %v", got)
	}
	if s.String() == "" {
		t.Error("String() empty")
	}
}

func TestSchemaMustIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustIndex on unknown attribute should panic")
		}
	}()
	restaurantSchema().MustIndex("Missing")
}

func TestSchemaDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate attribute should panic")
		}
	}()
	NewSchema(Attribute{Name: "A"}, Attribute{Name: "A"})
}

func TestSchemaEqual(t *testing.T) {
	a, b := restaurantSchema(), restaurantSchema()
	if !a.Equal(b) {
		t.Error("identical schemas not Equal")
	}
	c := NewSchema(Attribute{Name: "X", Kind: KindInt})
	if a.Equal(c) {
		t.Error("different schemas Equal")
	}
}

func TestRelationMissingAccounting(t *testing.T) {
	r := paperSample()
	if r.Len() != 7 {
		t.Fatalf("Len = %d", r.Len())
	}
	if got := r.CountMissing(); got != 4 {
		t.Errorf("CountMissing = %d, want 4", got)
	}
	incomplete := r.IncompleteRows()
	want := []int{3, 4, 5, 6}
	if len(incomplete) != len(want) {
		t.Fatalf("IncompleteRows = %v, want %v", incomplete, want)
	}
	for i := range want {
		if incomplete[i] != want[i] {
			t.Fatalf("IncompleteRows = %v, want %v", incomplete, want)
		}
	}
	cells := r.MissingCells()
	if len(cells) != 4 {
		t.Fatalf("MissingCells = %v", cells)
	}
	if cells[0] != (Cell{Row: 3, Attr: 2}) {
		t.Errorf("first missing cell = %+v", cells[0])
	}
	if r.Complete() {
		t.Error("Complete() true on instance with nulls")
	}
}

func TestRelationSetAndGet(t *testing.T) {
	r := paperSample()
	r.Set(3, 2, NewString("213/857-0034"))
	if got := r.Get(3, 2); got.Str() != "213/857-0034" {
		t.Errorf("Get after Set = %v", got)
	}
	if got := r.CountMissing(); got != 3 {
		t.Errorf("CountMissing after imputation = %d, want 3", got)
	}
}

func TestRelationCloneIndependence(t *testing.T) {
	r := paperSample()
	c := r.Clone()
	if !r.Equal(c) {
		t.Fatal("clone not Equal to original")
	}
	c.Set(0, 0, NewString("Changed"))
	if r.Get(0, 0).Str() != "Granita" {
		t.Error("mutating clone affected original")
	}
	if r.Equal(c) {
		t.Error("Equal true after divergence")
	}
}

func TestRelationAppendErrors(t *testing.T) {
	r := NewRelation(restaurantSchema())
	if err := r.Append(Tuple{NewString("x")}); err == nil {
		t.Error("arity mismatch accepted")
	}
	bad := Tuple{NewInt(1), NewString("c"), NewString("p"), NewString("t"), NewInt(5)}
	if err := r.Append(bad); err == nil {
		t.Error("kind mismatch accepted")
	}
	// Numeric widening is allowed.
	ok := Tuple{NewString("n"), NewString("c"), NewString("p"), NewString("t"), NewFloat(5)}
	if err := r.Append(ok); err != nil {
		t.Errorf("float into int column rejected: %v", err)
	}
	// Nulls are allowed anywhere.
	nulls := Tuple{Null, Null, Null, Null, Null}
	if err := r.Append(nulls); err != nil {
		t.Errorf("all-null tuple rejected: %v", err)
	}
}

func TestRelationProject(t *testing.T) {
	r := paperSample()
	p, err := r.Project("Name", "Class")
	if err != nil {
		t.Fatal(err)
	}
	if p.Schema().Len() != 2 || p.Len() != r.Len() {
		t.Fatalf("projection shape %dx%d", p.Len(), p.Schema().Len())
	}
	if p.Get(0, 0).Str() != "Granita" || p.Get(0, 1).Int() != 6 {
		t.Errorf("projected row 0 = %v %v", p.Get(0, 0), p.Get(0, 1))
	}
	if _, err := r.Project("Nope"); err == nil {
		t.Error("projecting unknown attribute should fail")
	}
}

func TestRelationHead(t *testing.T) {
	r := paperSample()
	h := r.Head(3)
	if h.Len() != 3 {
		t.Fatalf("Head(3).Len = %d", h.Len())
	}
	h.Set(0, 0, NewString("Z"))
	if r.Get(0, 0).Str() != "Granita" {
		t.Error("Head rows alias original storage")
	}
	if r.Head(100).Len() != r.Len() {
		t.Error("Head larger than relation should clamp")
	}
}

func TestRelationActiveDomain(t *testing.T) {
	r := paperSample()
	cities := r.ActiveDomain(r.Schema().MustIndex("City"))
	// Malibu, LA, Los Angeles, Hollywood — nulls excluded, dupes collapsed.
	if len(cities) != 4 {
		t.Fatalf("ActiveDomain(City) = %v", cities)
	}
	if cities[0].Str() != "Malibu" {
		t.Errorf("first domain value = %v, want first-appearance order", cities[0])
	}
	classes := r.ActiveDomain(r.Schema().MustIndex("Class"))
	if len(classes) != 2 {
		t.Errorf("ActiveDomain(Class) = %v", classes)
	}
}

func TestRelationSelect(t *testing.T) {
	r := paperSample()
	classAttr := r.Schema().MustIndex("Class")
	rows := r.Select(func(t Tuple) bool { return !t[classAttr].IsNull() && t[classAttr].Int() == 6 })
	if len(rows) != 3 {
		t.Errorf("Select class=6 = %v", rows)
	}
}

func TestTupleHelpers(t *testing.T) {
	tp := Tuple{NewString("a"), Null, NewInt(1)}
	if !tp.HasMissing() {
		t.Error("HasMissing false")
	}
	if got := tp.MissingAttrs(); len(got) != 1 || got[0] != 1 {
		t.Errorf("MissingAttrs = %v", got)
	}
	c := tp.Clone()
	c[0] = NewString("b")
	if tp[0].Str() != "a" {
		t.Error("Clone aliases storage")
	}
	full := Tuple{NewString("a")}
	if full.HasMissing() || full.MissingAttrs() != nil {
		t.Error("complete tuple reported missing")
	}
}
