package core

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/rfd"
)

// chunkRanges splits [0, n) into at most workers contiguous ranges.
func chunkRanges(n, workers int) [][2]int {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var out [][2]int
	size := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// findCandidateTuplesParallel computes the same candidate list as
// findCandidateTuples, chunking the donor scan across workers. Chunks
// are contiguous row ranges concatenated in order, so the output is
// bit-identical to the serial scan. The workers read the view
// concurrently; the sharded distance cache makes that safe. Trace
// emission happens strictly after this merge (and traced cells verify
// with the serial witness-reporting path), so a cell's DonorConsidered
// events are in deterministic ranked order regardless of worker count,
// and a cell's whole event sequence reaches the Tracer in one atomic
// EmitCell.
//
// Cancellation: each worker checks the context every engine.CheckEvery
// rows and returns early; the merged result is then partial and the
// caller (which re-checks ctx after the scan) must discard it.
//
// m is the run goroutine's matcher (used directly on the serial
// fallback); each worker goroutine evaluates through a matcher of its
// own, so the kernel arenas are never shared across goroutines.
func findCandidateTuplesParallel(ctx context.Context, m *engine.Matcher, row, attr int, deps rfd.Set, workers int) []candidate {
	v := m.View()
	n := v.Len()
	if workers <= 1 || n < 2*workers {
		return findCandidateTuples(ctx, m, row, attr, deps)
	}
	ranges := chunkRanges(n, workers)
	parts := make([][]candidate, len(ranges))
	var wg sync.WaitGroup
	for ci, rg := range ranges {
		wg.Add(1)
		go func(ci int, lo, hi int) {
			defer wg.Done()
			wm := v.Matcher()
			var local []candidate
			for j := lo; j < hi; j++ {
				if (j-lo)%engine.CheckEvery == 0 && ctx.Err() != nil {
					break
				}
				if j == row {
					continue
				}
				if v.IsNull(j, attr) {
					continue
				}
				if d, ok := wm.DistMin(deps, row, j); ok {
					local = append(local, candidate{row: j, dist: d})
				}
			}
			parts[ci] = local
		}(ci, rg[0], rg[1])
	}
	wg.Wait()
	var out []candidate
	for _, part := range parts {
		out = append(out, part...)
	}
	return out
}

// isFaultlessParallel mirrors isFaultless with a chunked scan over the
// target rows; the first violation found anywhere flips a shared flag
// and stops the other workers at their next check.
func (im *Imputer) isFaultlessParallel(ctx context.Context, m *engine.Matcher, row, attr int, sigmaPrime rfd.Set) bool {
	if im.opts.Verify == VerifyOff {
		return true
	}
	relevant := im.relevantForVerify(sigmaPrime, attr)
	if len(relevant) == 0 {
		return true
	}
	v := m.View()
	n := v.TargetLen()
	if im.opts.Workers <= 1 || n < 2*im.opts.Workers {
		return im.isFaultless(ctx, m, row, attr, sigmaPrime)
	}
	var violated atomic.Bool
	var wg sync.WaitGroup
	for _, rg := range chunkRanges(n, im.opts.Workers) {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			wm := v.Matcher()
			for i := lo; i < hi; i++ {
				if (i-lo)%engine.CheckEvery == 0 && ctx.Err() != nil {
					return
				}
				if i == row {
					continue
				}
				if violated.Load() {
					return
				}
				for _, dep := range relevant {
					if wm.Violates(dep, row, i) {
						violated.Store(true)
						return
					}
				}
			}
		}(rg[0], rg[1])
	}
	wg.Wait()
	return !violated.Load()
}

// newKeyTrackerParallel computes the initial key status with the pair
// scan chunked over the first index. Each dependency's status is an
// atomic flag: a stale read only causes redundant work, never a wrong
// verdict, because absorb-marking is monotone.
func newKeyTrackerParallel(ctx context.Context, v *engine.View, sigma rfd.Set, workers int) *keyTracker {
	n := v.TargetLen()
	if workers <= 1 || n < 2*workers || len(sigma) == 0 {
		return newKeyTracker(ctx, v, sigma)
	}
	kt := &keyTracker{v: v, m: v.Matcher(), sigma: sigma, isKey: make([]bool, len(sigma))}
	flags := make([]atomic.Bool, len(sigma)) // true = still key
	for i := range flags {
		flags[i].Store(true)
	}
	var remaining atomic.Int64
	remaining.Store(int64(len(sigma)))

	var wg sync.WaitGroup
	for _, rg := range chunkRanges(n, workers) {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			wm := v.Matcher()
			for i := lo; i < hi; i++ {
				if remaining.Load() == 0 || ctx.Err() != nil {
					return
				}
				for j := i + 1; j < v.Len(); j++ {
					for s, dep := range sigma {
						if flags[s].Load() && wm.MatchesLHS(dep, i, j) {
							if flags[s].CompareAndSwap(true, false) {
								remaining.Add(-1)
							}
						}
					}
				}
			}
		}(rg[0], rg[1])
	}
	wg.Wait()
	for s := range flags {
		kt.isKey[s] = flags[s].Load()
		if kt.isKey[s] {
			kt.keys++
		}
	}
	return kt
}
