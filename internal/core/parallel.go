package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/dataset"
	"repro/internal/distance"
	"repro/internal/rfd"
)

// chunkRanges splits [0, n) into at most workers contiguous ranges.
func chunkRanges(n, workers int) [][2]int {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var out [][2]int
	size := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// findCandidateTuplesParallel computes the same candidate list as
// findCandidateTuples, chunking the donor scan across workers. Chunks
// are contiguous row ranges concatenated in order, so the output is
// bit-identical to the serial scan. Trace emission happens strictly
// after this merge (and traced cells verify with the serial
// witness-reporting path), so a cell's DonorConsidered events are in
// deterministic ranked order regardless of worker count, and a cell's
// whole event sequence reaches the Tracer in one atomic EmitCell.
func findCandidateTuplesParallel(work *dataset.Relation, row, attr int, deps rfd.Set, workers int) []candidate {
	n := work.Len()
	if workers <= 1 || n < 2*workers {
		return findCandidateTuples(work, row, attr, deps)
	}
	m := work.Schema().Len()
	needed := make([]int, 0, m)
	seen := make([]bool, m)
	for _, dep := range deps {
		for _, c := range dep.LHS {
			if !seen[c.Attr] {
				seen[c.Attr] = true
				needed = append(needed, c.Attr)
			}
		}
	}
	t := work.Row(row)
	ranges := chunkRanges(n, workers)
	parts := make([][]candidate, len(ranges))
	var wg sync.WaitGroup
	for ci, rg := range ranges {
		wg.Add(1)
		go func(ci int, lo, hi int) {
			defer wg.Done()
			p := make(distance.Pattern, m)
			var local []candidate
			for j := lo; j < hi; j++ {
				if j == row {
					continue
				}
				tj := work.Row(j)
				if tj[attr].IsNull() {
					continue
				}
				for _, a := range needed {
					p[a] = distance.Values(t[a], tj[a])
				}
				distMin, found := 0.0, false
				for _, dep := range deps {
					if !dep.LHSSatisfiedBy(p) {
						continue
					}
					d, ok := p.MeanOver(dep.LHSAttrs())
					if !ok {
						continue
					}
					if !found || d < distMin {
						distMin, found = d, true
					}
				}
				if found {
					local = append(local, candidate{row: j, dist: distMin})
				}
			}
			parts[ci] = local
		}(ci, rg[0], rg[1])
	}
	wg.Wait()
	var out []candidate
	for _, part := range parts {
		out = append(out, part...)
	}
	return out
}

// isFaultlessParallel mirrors isFaultless with a chunked scan; the first
// violation found anywhere flips a shared flag and stops the other
// workers at their next check.
func (im *Imputer) isFaultlessParallel(work *dataset.Relation, row, attr int, sigmaPrime rfd.Set) bool {
	if im.opts.Verify == VerifyOff {
		return true
	}
	var relevant rfd.Set
	for _, dep := range sigmaPrime {
		if dep.HasLHSAttr(attr) || (im.opts.Verify == VerifyBothSides && dep.RHS.Attr == attr) {
			relevant = append(relevant, dep)
		}
	}
	if len(relevant) == 0 {
		return true
	}
	n := work.Len()
	if im.opts.Workers <= 1 || n < 2*im.opts.Workers {
		return im.isFaultless(work, row, attr, sigmaPrime)
	}
	m := work.Schema().Len()
	needed := make([]int, 0, m)
	seen := make([]bool, m)
	mark := func(a int) {
		if !seen[a] {
			seen[a] = true
			needed = append(needed, a)
		}
	}
	for _, dep := range relevant {
		for _, c := range dep.LHS {
			mark(c.Attr)
		}
		mark(dep.RHS.Attr)
	}
	t := work.Row(row)
	var violated atomic.Bool
	var wg sync.WaitGroup
	for _, rg := range chunkRanges(n, im.opts.Workers) {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			p := make(distance.Pattern, m)
			for i := lo; i < hi; i++ {
				if i == row {
					continue
				}
				if violated.Load() {
					return
				}
				ti := work.Row(i)
				for _, a := range needed {
					p[a] = distance.Values(t[a], ti[a])
				}
				for _, dep := range relevant {
					if dep.ViolatedBy(p) {
						violated.Store(true)
						return
					}
				}
			}
		}(rg[0], rg[1])
	}
	wg.Wait()
	return !violated.Load()
}

// newKeyTrackerParallel computes the initial key status with the pair
// scan chunked over the first index. Each dependency's status is an
// atomic flag: a stale read only causes redundant work, never a wrong
// verdict, because absorb-marking is monotone.
func newKeyTrackerParallel(rel *dataset.Relation, sigma rfd.Set, workers int) *keyTracker {
	n := rel.Len()
	if workers <= 1 || n < 2*workers || len(sigma) == 0 {
		return newKeyTracker(rel, sigma)
	}
	kt := &keyTracker{rel: rel, sigma: sigma, isKey: make([]bool, len(sigma))}
	flags := make([]atomic.Bool, len(sigma)) // true = still key
	for i := range flags {
		flags[i].Store(true)
	}
	var remaining atomic.Int64
	remaining.Store(int64(len(sigma)))

	m := rel.Schema().Len()
	var wg sync.WaitGroup
	for _, rg := range chunkRanges(n, workers) {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			p := make(distance.Pattern, m)
			for i := lo; i < hi; i++ {
				if remaining.Load() == 0 {
					return
				}
				ti := rel.Row(i)
				for j := i + 1; j < n; j++ {
					distance.PatternInto(p, ti, rel.Row(j))
					for s, dep := range sigma {
						if flags[s].Load() && dep.LHSSatisfiedBy(p) {
							if flags[s].CompareAndSwap(true, false) {
								remaining.Add(-1)
							}
						}
					}
				}
			}
		}(rg[0], rg[1])
	}
	wg.Wait()
	for s := range flags {
		kt.isKey[s] = flags[s].Load()
		if kt.isKey[s] {
			kt.keys++
		}
	}
	return kt
}
