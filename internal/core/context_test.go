package core

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestImputeContextBackgroundMatchesImpute(t *testing.T) {
	rel := table2(t)
	sigma := figure1Sigma(t, rel.Schema())
	plain, err := New(sigma).Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	ctxRes, err := New(sigma).ImputeContext(context.Background(), rel)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Relation.Equal(ctxRes.Relation) {
		t.Error("background-context run diverged from Impute")
	}
}

func TestImputeContextAlreadyCancelled(t *testing.T) {
	rel := table2(t)
	sigma := figure1Sigma(t, rel.Schema())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := New(sigma).ImputeContext(ctx, rel)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if res == nil {
		t.Fatal("partial result missing")
	}
	if res.Stats.Imputed != 0 {
		t.Errorf("imputed %d cells under a cancelled context", res.Stats.Imputed)
	}
	// Counters are still reconciled for the partial result.
	if res.Stats.Imputed+res.Stats.Unimputed != res.Stats.MissingCells {
		t.Errorf("partial stats inconsistent: %+v", res.Stats)
	}
}

func TestImputeContextDeadline(t *testing.T) {
	rel := table2(t)
	sigma := figure1Sigma(t, rel.Schema())
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := New(sigma).ImputeContext(ctx, rel)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestImputeContextPartialResultWellFormed(t *testing.T) {
	// Cancel mid-run by using a context that cancels after the first
	// check; with four missing values at least the checks between cells
	// fire. We can't control exactly how many cells complete, but every
	// completed imputation must be valid and recorded.
	rel := table2(t)
	sigma := figure1Sigma(t, rel.Schema())
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(time.Millisecond)
		cancel()
	}()
	res, err := New(sigma).ImputeContext(ctx, rel)
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if res.Stats.Imputed+res.Stats.Unimputed != res.Stats.MissingCells {
		t.Errorf("partial stats inconsistent: %+v", res.Stats)
	}
	for _, imp := range res.Imputations {
		if res.Relation.Get(imp.Cell.Row, imp.Cell.Attr).IsNull() {
			t.Error("recorded imputation not applied")
		}
	}
}
