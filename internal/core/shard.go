package core

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/rfd"
)

// donorIndex is the candidate-index surface the imputation loop probes,
// satisfied by both *engine.Index (the monolithic index) and
// *engine.ShardedIndex (the scatter-gather one). Call sites guard with
// a plain nil check — constructors below never wrap a typed nil into
// the interface.
type donorIndex interface {
	// CandidateRows returns the rows worth scanning for the cluster, or
	// ok=false when a full sweep is cheaper or required.
	CandidateRows(row int, deps rfd.Set) ([]int, bool)
	// Insert makes a committed imputation probeable.
	Insert(row, attr int)
	// Probes reports how many logical probes were answered.
	Probes() int64
}

// newDonorIndex builds the candidate index for a run: sharded when the
// options ask for it, monolithic otherwise, nil when Σ constrains no
// LHS attribute (both constructors decline then).
func newDonorIndex(eng *engine.View, sigma rfd.Set, shards int) donorIndex {
	if shards > 1 {
		if sx := engine.NewShardedIndex(eng, sigma, shards); sx != nil {
			return sx
		}
		return nil
	}
	if ix := engine.NewIndex(eng, sigma); ix != nil {
		return ix
	}
	return nil
}

// candidateRowsOf probes a possibly-absent index.
func candidateRowsOf(idx donorIndex, row int, deps rfd.Set) ([]int, bool) {
	if idx == nil {
		return nil, false
	}
	return idx.CandidateRows(row, deps)
}

// donorShardStats accumulates per-sub-pool scatter-gather counters
// across runs — the /metrics skew view. The counters are deliberately
// kept out of Stats: Stats must stay byte-identical across shard
// counts, and a per-shard breakdown cannot be.
type donorShardStats struct {
	shards []donorShardCounters
}

type donorShardCounters struct {
	scans, donors, candidates atomic.Int64
}

func newDonorShardStats(n int) *donorShardStats {
	return &donorShardStats{shards: make([]donorShardCounters, n)}
}

// record accumulates one sub-pool sweep. Nil-safe; out-of-range shard
// indices (a pool smaller than the configured shard count) are dropped.
func (s *donorShardStats) record(shard int, donors, candidates int64) {
	if s == nil || shard < 0 || shard >= len(s.shards) {
		return
	}
	c := &s.shards[shard]
	c.scans.Add(1)
	c.donors.Add(donors)
	c.candidates.Add(candidates)
}

// snapshot copies the accumulated counters for /metrics exposition.
func (s *donorShardStats) snapshot() []obs.DonorShardStat {
	if s == nil {
		return nil
	}
	out := make([]obs.DonorShardStat, len(s.shards))
	for i := range s.shards {
		out[i] = obs.DonorShardStat{
			Scans:      s.shards[i].scans.Load(),
			Donors:     s.shards[i].donors.Load(),
			Candidates: s.shards[i].candidates.Load(),
		}
	}
	return out
}

// donorsIn counts the donor rows a band examines: the band size minus
// the query row if it falls inside. Summed over all bands this equals
// the serial sweep's Len()-1.
func donorsIn(lo, hi, row int) int64 {
	n := hi - lo
	if row >= lo && row < hi {
		n--
	}
	return int64(n)
}

// findCandidateTuplesSharded is the scatter-gather donor sweep: the
// flat row space is split into shards contiguous sub-pools, each
// scanned by its own goroutine (own matcher, own kernel arena, the
// usual cancellation checkpoints), and the per-pool candidate lists are
// concatenated in pool order — exactly the serial scan order, so the
// output is bit-identical to findCandidateTuples for any shard count.
// stats and rec receive the per-shard skew counters, the fan-out
// counter, and the gather-merge timing; neither touches Stats.
func findCandidateTuplesSharded(ctx context.Context, m *engine.Matcher, row, attr int,
	deps rfd.Set, shards int, stats *donorShardStats, rec obs.Recorder) []candidate {

	v := m.View()
	ranges := chunkRanges(v.Len(), shards)
	rec.Add(obs.CtrDonorShardFanout, int64(len(ranges)))
	if len(ranges) == 1 {
		out := findCandidateTuples(ctx, m, row, attr, deps)
		stats.record(0, donorsIn(ranges[0][0], ranges[0][1], row), int64(len(out)))
		return out
	}
	parts := make([][]candidate, len(ranges))
	var wg sync.WaitGroup
	for ci, rg := range ranges {
		wg.Add(1)
		go func(ci, lo, hi int) {
			defer wg.Done()
			wm := v.Matcher()
			var local []candidate
			for j := lo; j < hi; j++ {
				if (j-lo)%engine.CheckEvery == 0 && ctx.Err() != nil {
					break
				}
				if j == row {
					continue
				}
				if v.IsNull(j, attr) {
					continue
				}
				if d, ok := wm.DistMin(deps, row, j); ok {
					local = append(local, candidate{row: j, dist: d})
				}
			}
			parts[ci] = local
		}(ci, rg[0], rg[1])
	}
	wg.Wait()
	mergeStart := obs.Now(rec)
	var out []candidate
	for ci, part := range parts {
		stats.record(ci, donorsIn(ranges[ci][0], ranges[ci][1], row), int64(len(part)))
		out = append(out, part...)
	}
	obs.Since(rec, obs.PhaseDonorMerge, mergeStart)
	return out
}
