package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/artifact"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/discovery"
	"repro/internal/obs"
	"repro/internal/rfd"
)

// table4Base is the Table 4-style workload: the deterministic
// restaurant generator at a fleet-plausible size.
func table4Base(tb testing.TB) *dataset.Relation {
	tb.Helper()
	rel, err := datagen.ByName("restaurant", 120, 2022)
	if err != nil {
		tb.Fatal(err)
	}
	return rel
}

// table4Sigma mines Σ from the Table 4 base — the compile-time flow a
// replica skips when booting from the artifact.
func table4Sigma(tb testing.TB, base *dataset.Relation) rfd.Set {
	tb.Helper()
	sigma, err := discovery.Discover(base, discovery.Config{MaxThreshold: 3, MaxLHS: 2})
	if err != nil {
		tb.Fatal(err)
	}
	if len(sigma) == 0 {
		tb.Fatal("discovery found no RFDcs; the artifact workload is vacuous")
	}
	return sigma
}

// table4Request copies a few base rows under a different seed and
// knocks cells out, giving the imputer recoverable holes.
func table4Request(tb testing.TB, base *dataset.Relation) *dataset.Relation {
	tb.Helper()
	sample, err := datagen.ByName("restaurant", 8, 7)
	if err != nil {
		tb.Fatal(err)
	}
	req := dataset.NewRelation(base.Schema())
	for i := 0; i < sample.Len(); i++ {
		t := sample.Row(i).Clone()
		t[(i+1)%len(t)] = dataset.Null
		req.MustAppend(t)
	}
	return req
}

// runSession imputes the request and returns the result plus the
// normalized trace JSONL bytes.
func runSession(t *testing.T, sess *Session, req *dataset.Relation) (*Result, []byte) {
	t.Helper()
	tr := obs.NewRingTracer(0, 1)
	traced, err := sess.WithSigma(sess.Sigma())
	if err != nil {
		t.Fatal(err)
	}
	traced.im.opts.Tracer = tr
	res, err := traced.Impute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	return res, traceJSONL(t, tr)
}

// assertArtifactParity pins the acceptance property: a session loaded
// from the artifact must be indistinguishable — imputations, final
// relation bytes, Stats, trace JSONL — from the freshly compiled
// session it was encoded from.
func assertArtifactParity(t *testing.T, label string, base *dataset.Relation, sigma rfd.Set, req *dataset.Relation) {
	t.Helper()
	fresh, err := NewSession(base, sigma)
	if err != nil {
		t.Fatal(err)
	}
	data, err := fresh.EncodeArtifact()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := NewSessionFromArtifact(data)
	if err != nil {
		t.Fatal(err)
	}

	wantRes, wantTrace := runSession(t, fresh, req)
	gotRes, gotTrace := runSession(t, loaded, req)

	if wantRes.Stats.Imputed == 0 {
		t.Fatalf("%s: workload imputed nothing; the parity check is vacuous", label)
	}
	if !gotRes.Relation.Equal(wantRes.Relation) {
		t.Errorf("%s: imputed relation diverged", label)
	}
	if !reflect.DeepEqual(gotRes.Imputations, wantRes.Imputations) {
		t.Errorf("%s: imputations diverged:\nloaded:  %+v\ncompiled: %+v", label, gotRes.Imputations, wantRes.Imputations)
	}
	wantStats, gotStats := wantRes.Stats, gotRes.Stats
	wantStats.Phases, gotStats.Phases = PhaseTimes{}, PhaseTimes{} // wall clock
	if !reflect.DeepEqual(gotStats, wantStats) {
		t.Errorf("%s: stats diverged:\nloaded:  %+v\ncompiled: %+v", label, gotStats, wantStats)
	}
	if !bytes.Equal(gotTrace, wantTrace) {
		t.Errorf("%s: trace JSONL diverged:\n--- loaded ---\n%s\n--- compiled ---\n%s", label, gotTrace, wantTrace)
	}

	// CSV render of the final relation — the byte form a serve replica
	// returns — must match too.
	var wantCSV, gotCSV bytes.Buffer
	if err := dataset.WriteCSV(&wantCSV, wantRes.Relation); err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteCSV(&gotCSV, gotRes.Relation); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotCSV.Bytes(), wantCSV.Bytes()) {
		t.Errorf("%s: CSV bytes diverged", label)
	}

	// The loaded session must carry the artifact's metadata.
	ai := loaded.Artifact()
	if ai == nil {
		t.Fatalf("%s: loaded session has no artifact info", label)
	}
	if ai.FormatVersion != artifact.FormatVersion || ai.Tuples != base.Len() ||
		ai.Arity != base.Schema().Len() || ai.Rules != len(sigma) || ai.Bytes != len(data) {
		t.Errorf("%s: artifact info %+v disagrees with workload", label, ai)
	}
	if enc := fresh.Artifact(); enc == nil || *enc != *ai {
		t.Errorf("%s: encoder-side artifact info %+v != loader-side %+v", label, enc, ai)
	}
}

func TestArtifactRoundTripTable2(t *testing.T) {
	base := table2(t)
	assertArtifactParity(t, "table2", base, figure1Sigma(t, base.Schema()), sessionRequest(t))
}

func TestArtifactRoundTripTable4(t *testing.T) {
	base := table4Base(t)
	assertArtifactParity(t, "table4", base, table4Sigma(t, base), table4Request(t, base))
}

// TestArtifactFileRoundTrip: SaveArtifactFile + LoadSession is the
// compile-subcommand-to-serve-replica path.
func TestArtifactFileRoundTrip(t *testing.T) {
	base := table2(t)
	sigma := figure1Sigma(t, base.Schema())
	sess, err := NewSession(base, sigma)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "table2.rnv")
	if err := sess.SaveArtifactFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSession(path)
	if err != nil {
		t.Fatal(err)
	}
	req := sessionRequest(t)
	want, err := sess.Impute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Impute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Relation.Equal(want.Relation) {
		t.Error("file round-trip diverged")
	}
}

// TestArtifactSelfContainedRejected: a nil-base session has no compiled
// state to persist.
func TestArtifactSelfContainedRejected(t *testing.T) {
	sess, err := NewSession(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.EncodeArtifact(); err == nil {
		t.Fatal("nil-base EncodeArtifact did not error")
	}
}

// TestArtifactGoldenChecksum pins the deterministic-encoding guarantee
// end to end: compiling the Table 4 testdata twice yields byte-identical
// artifacts, and their checksum matches the committed golden value, so
// any unnoticed encoding change (map-order leak, slab reorder, header
// drift) fails loudly. Regenerate intentionally with:
//
//	go test ./internal/core/ -run Golden -update-golden
func TestArtifactGoldenChecksum(t *testing.T) {
	base := table4Base(t)
	sigma := table4Sigma(t, base)
	encode := func() []byte {
		sess, err := NewSession(base, sigma)
		if err != nil {
			t.Fatal(err)
		}
		data, err := sess.EncodeArtifact()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	first, second := encode(), encode()
	if !bytes.Equal(first, second) {
		t.Fatal("two compiles of the Table 4 testdata encoded differently")
	}

	sum := binary.LittleEndian.Uint64(first[len(first)-8:])
	got := fmt.Sprintf("crc64:%016x bytes:%d\n", sum, len(first))
	golden := filepath.Join("testdata", "artifact_table4.checksum")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden checksum missing (regenerate with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Errorf("artifact encoding drifted from golden:\ngot  %swant %s", got, want)
	}
}

// resealArtifact recomputes the declared size and trailer checksum so a
// mutation survives the outer integrity checks and exercises the layer
// under it.
func resealArtifact(data []byte) []byte {
	binary.LittleEndian.PutUint64(data[12:], uint64(len(data)))
	sum := crc64.Checksum(data[:len(data)-8], crc64.MakeTable(crc64.ECMA))
	binary.LittleEndian.PutUint64(data[len(data)-8:], sum)
	return data
}

// TestArtifactDecodeTypedErrors drives the full session decoder with
// truncated, bit-flipped, and version-skewed artifacts: every failure
// must be one of the typed sentinels.
func TestArtifactDecodeTypedErrors(t *testing.T) {
	base := table2(t)
	sess, err := NewSession(base, figure1Sigma(t, base.Schema()))
	if err != nil {
		t.Fatal(err)
	}
	good, err := sess.EncodeArtifact()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func([]byte) []byte
		want error
	}{
		{"empty", func(d []byte) []byte { return nil }, artifact.ErrTruncated},
		{"bad magic", func(d []byte) []byte { d[3] = '?'; return d }, artifact.ErrBadMagic},
		{"version skew", func(d []byte) []byte {
			binary.LittleEndian.PutUint16(d[4:], 99)
			return d
		}, artifact.ErrVersion},
		{"truncated half", func(d []byte) []byte { return d[:len(d)/2] }, artifact.ErrTruncated},
		{"bit flip", func(d []byte) []byte { d[len(d)/2] ^= 0x40; return d }, artifact.ErrChecksum},
		{"resealed bit flip", func(d []byte) []byte {
			d[len(d)/2] ^= 0x40
			return resealArtifact(d)
		}, nil}, // any typed error (or a survivable flip) is acceptable
	}
	typed := []error{artifact.ErrBadMagic, artifact.ErrVersion, artifact.ErrChecksum,
		artifact.ErrTruncated, artifact.ErrCorrupt}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mut(append([]byte(nil), good...))
			_, err := NewSessionFromArtifact(data)
			if tc.want != nil {
				if !errors.Is(err, tc.want) {
					t.Fatalf("NewSessionFromArtifact = %v, want %v", err, tc.want)
				}
				return
			}
			if err == nil {
				return
			}
			for _, sentinel := range typed {
				if errors.Is(err, sentinel) {
					return
				}
			}
			t.Fatalf("untyped decode error: %v", err)
		})
	}
}

// FuzzArtifactDecode: the decoder must return typed errors — never
// panic, never over-allocate — on arbitrary mutations of a valid
// artifact (and on arbitrary garbage).
func FuzzArtifactDecode(f *testing.F) {
	base := table2(f)
	sess, err := NewSession(base, figure1Sigma(f, base.Schema()))
	if err != nil {
		f.Fatal(err)
	}
	good, err := sess.EncodeArtifact()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add(good[:24])
	f.Add([]byte("RNVA"))
	f.Add([]byte{})
	skew := append([]byte(nil), good...)
	binary.LittleEndian.PutUint16(skew[4:], 2)
	f.Add(skew)
	flip := append([]byte(nil), good...)
	flip[len(flip)/3] ^= 0x80
	f.Add(resealArtifact(flip))

	typed := []error{artifact.ErrBadMagic, artifact.ErrVersion, artifact.ErrChecksum,
		artifact.ErrTruncated, artifact.ErrCorrupt}
	f.Fuzz(func(t *testing.T, data []byte) {
		sess, err := NewSessionFromArtifact(data)
		if err == nil {
			// A surviving mutation must have produced a coherent session.
			if sess.cur.Load() == nil {
				t.Fatal("decode succeeded with no shared state")
			}
			return
		}
		for _, sentinel := range typed {
			if errors.Is(err, sentinel) {
				return
			}
		}
		t.Fatalf("untyped decode error: %v", err)
	})
}
