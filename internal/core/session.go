package core

import (
	"context"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/discovery"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/rfd"
)

// Session is the compile-once serve-many form of the imputer: one
// NewSession call validates Σ and the options and — when a base
// instance is supplied — precompiles it into a shared engine artifact
// (columnar form, interning tables, memoized distance cache). Every
// subsequent Impute call then serves against those read-only artifacts
// with only per-request state (a clone of the request relation, a
// request-local column/interner tier, a request-local distance cache),
// so concurrent calls never contend and per-call cost is O(request),
// not O(request + base).
//
// The two base modes:
//
//   - base != nil: the base acts as the donor pool of every request
//     (the multi-dataset extension, ImputeWithDonors semantics): its
//     tuples contribute candidate values but are never imputed, never
//     verified against, and donate pairs to key-RFDc detection.
//   - base == nil: each request is self-contained — identical semantics
//     to Imputer.Impute, with the per-request donor index enabled. This
//     is the ephemeral mode the free functions wrap.
//
// A Session is immutable after construction and safe for any number of
// concurrent Impute / Explain calls.
type Session struct {
	im     *Imputer
	shared *engine.Shared // nil in self-contained mode

	// baseIndex is the candidate index over the base's Σ-LHS attributes
	// decoded from a compiled-session artifact (nil otherwise). It is
	// retained for artifact round-trips and future index-accelerated
	// donor scans; the Impute hot path does not consult it, so loaded
	// and freshly compiled sessions stay byte-identical.
	baseIndex *engine.Index
	// art is the metadata of the artifact this session was loaded from
	// or last encoded to; nil for sessions that never touched one.
	art *ArtifactInfo
}

// NewSession builds a Session over Σ. base may be nil (self-contained
// mode). A non-nil base is cloned, so later caller-side mutation of the
// original cannot corrupt the compiled artifacts. Option values are
// validated here — once — rather than on every request.
func NewSession(base *dataset.Relation, sigma rfd.Set, opts ...Option) (*Session, error) {
	im := New(sigma, opts...)
	if err := im.opts.Validate(); err != nil {
		return nil, err
	}
	im.attachDonorStats()
	s := &Session{im: im}
	if base != nil {
		if err := validateSigma(sigma, base.Schema().Len()); err != nil {
			return nil, err
		}
		s.shared = engine.Precompile(base.Clone())
	}
	return s, nil
}

// attachDonorStats installs the session-lifetime scatter-gather
// accumulator when donor sharding is on. One accumulator per session:
// WithSigma-derived sessions and Explain reruns copy the options and
// keep feeding it.
func (im *Imputer) attachDonorStats() {
	if im.opts.DonorShards > 1 {
		im.opts.donorStats = newDonorShardStats(im.opts.DonorShards)
	}
}

// WithSigma derives a Session serving a different Σ against the same
// precompiled base — the serve-mode flow (precompile the base, discover
// Σ from it, then serve with the discovered Σ) without a second compile
// of the base. The receiver's options carry over.
func (s *Session) WithSigma(sigma rfd.Set) (*Session, error) {
	if s.shared != nil {
		if err := validateSigma(sigma, s.shared.Arity()); err != nil {
			return nil, err
		}
	}
	// The decoded candidate index and artifact metadata do not carry
	// over: both are bound to the Σ they were compiled with.
	return &Session{im: &Imputer{sigma: sigma, opts: s.im.opts}, shared: s.shared}, nil
}

// Sigma returns the session's dependency set. Callers must not mutate
// it.
func (s *Session) Sigma() rfd.Set { return s.im.sigma }

// BaseView returns a frozen read-only view over the precompiled base —
// the input for running discovery against the base without recompiling
// it — or nil in self-contained mode. Reads through it warm the shared
// distance cache for every future Impute call.
func (s *Session) BaseView() *engine.View {
	if s.shared == nil {
		return nil
	}
	return s.shared.View()
}

// CacheShardStats returns the per-shard hit / miss / merge counters of
// the session's shared distance cache, or nil in self-contained mode
// (ephemeral caches die with their request; there is nothing long-lived
// to inspect).
func (s *Session) CacheShardStats() []engine.CacheShardStat {
	if s.shared == nil {
		return nil
	}
	return s.shared.CacheShardStats()
}

// DonorShardStats returns the accumulated per-sub-pool scatter-gather
// counters of the session's sharded donor sweeps, or nil when the
// session was not built with WithDonorShards > 1 (there is no
// partitioning to report then).
func (s *Session) DonorShardStats() []obs.DonorShardStat {
	return s.im.opts.donorStats.snapshot()
}

// Discover mines RFDcs from the session's precompiled base without
// recompiling it; the pairwise distances it computes land in the shared
// cache, so a Discover-then-serve flow starts Impute calls warm. Pair it
// with WithSigma to serve the discovered set. Self-contained sessions
// (nil base) have no instance to mine and return an error.
func (s *Session) Discover(ctx context.Context, cfg discovery.Config) (rfd.Set, error) {
	if s.shared == nil {
		return nil, fmt.Errorf("core: session has no base instance to discover from")
	}
	if sp := obs.SpanFromContext(ctx).Child("discover"); sp.Enabled() {
		// Re-anchor the context so the discovery phases nest under this
		// span; the rewrite (one allocation) happens only when a request
		// trace is live.
		defer sp.End()
		ctx = obs.ContextWithSpan(ctx, sp)
	}
	return discovery.DiscoverViewContext(ctx, s.shared.View(), cfg)
}

// Impute runs RENUVER on the request relation against the session's
// compiled artifacts. The input is never mutated. An expired context is
// rejected in O(1) — before any clone or compile — with a non-nil empty
// Result and engine.ErrCanceled; mid-run expiry returns the partial
// well-formed result the cancellation checkpoints produced.
func (s *Session) Impute(ctx context.Context, rel *dataset.Relation) (*Result, error) {
	if ctx.Err() != nil {
		return &Result{}, engine.Canceled(ctx)
	}
	if s.shared != nil && !rel.Schema().Equal(s.shared.Relation().Schema()) {
		return nil, fmt.Errorf("core: request schema %q incompatible with session base %q",
			rel.Schema(), s.shared.Relation().Schema())
	}
	if err := validateSigma(s.im.sigma, rel.Schema().Len()); err != nil {
		return nil, err
	}
	work := rel.Clone()
	var eng *engine.View
	useIndex := !s.im.opts.NoIndex
	if s.shared != nil {
		// Donor-pool mode: only the request rows are compiled; the base
		// tier is shared. No per-request donor index — building one would
		// rescan every base row and forfeit the O(request) per-call cost.
		eng = s.shared.Extend(work)
		useIndex = false
	} else {
		eng = engine.Compile(work)
	}
	return s.im.runImpute(ctx, work, eng, useIndex)
}

// Explain reruns the request with a tracer pinned to one cell and
// renders the decision tree for it: which clusters applied, which
// donors ranked where, which RFDc vetoed a candidate, and why the cell
// resolved (or didn't). It returns "" when the cell was not missing in
// the request.
func (s *Session) Explain(ctx context.Context, rel *dataset.Relation, row, attr int) (string, error) {
	if ctx.Err() != nil {
		return "", engine.Canceled(ctx)
	}
	if row < 0 || row >= rel.Len() || attr < 0 || attr >= rel.Schema().Len() {
		return "", fmt.Errorf("core: cell (row %d, attr %d) outside a %dx%d relation",
			row, attr, rel.Len(), rel.Schema().Len())
	}
	if sp := obs.SpanFromContext(ctx).Child("explain"); sp.Enabled() {
		sp.Int("row", int64(row))
		sp.Int("attr", int64(attr))
		defer sp.End()
		ctx = obs.ContextWithSpan(ctx, sp)
	}
	tr := obs.NewRingTracer(1, 1)
	tr.Only(row, attr)
	traced := &Imputer{sigma: s.im.sigma, opts: s.im.opts}
	traced.opts.Tracer = tr
	res, err := (&Session{im: traced, shared: s.shared}).Impute(ctx, rel)
	if err != nil {
		return "", err
	}
	return res.ExplainText(rel.Schema(), row, attr), nil
}
