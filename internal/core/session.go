package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/dataset"
	"repro/internal/discovery"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/rfd"
)

// Session is the compile-once serve-many form of the imputer: one
// NewSession call validates Σ and the options and — when a base
// instance is supplied — precompiles it into a shared engine artifact
// (columnar form, interning tables, memoized distance cache). Every
// subsequent Impute call then serves against those read-only artifacts
// with only per-request state (a clone of the request relation, a
// request-local column/interner tier, a request-local distance cache),
// so concurrent calls never contend and per-call cost is O(request),
// not O(request + base).
//
// The two base modes:
//
//   - base != nil: the base acts as the donor pool of every request
//     (the multi-dataset extension, ImputeWithDonors semantics): its
//     tuples contribute candidate values but are never imputed, never
//     verified against, and donate pairs to key-RFDc detection.
//   - base == nil: each request is self-contained — identical semantics
//     to Imputer.Impute, with the per-request donor index enabled. This
//     is the ephemeral mode the free functions wrap.
//
// Sessions with a base are live: ApplyDelta evolves the base in place
// by publishing a new epoch (see delta.go), and every read serves
// against the one epoch it pinned at entry. A Session is safe for any
// number of concurrent Impute / Explain calls, concurrently with at
// most-serialized ApplyDelta writers.
type Session struct {
	im *Imputer

	// cur is the session's current epoch — the compiled base, its
	// candidate index, and the Σ in force, published together so readers
	// can never observe a half-applied delta. Nil in self-contained
	// mode (and in the internal Imputer-wrapping constructions).
	cur atomic.Pointer[epochState]
	// applyMu serializes ApplyDelta writers; readers never take it.
	applyMu sync.Mutex

	// art is the metadata of the artifact this session was loaded from
	// or last encoded to; nil for sessions that never touched one. It is
	// boot provenance: deltas applied afterwards do not clear it.
	art *ArtifactInfo
}

// newEpoch publishes the session's first epoch (seq 0).
func (s *Session) newEpoch(shared *engine.Shared, ix *engine.Index, sigma rfd.Set) {
	s.cur.Store(&epochState{
		shared: shared,
		index:  ix,
		sigma:  sigma,
		rec:    s.im.opts.recorder(),
	})
}

// NewSession builds a Session over Σ. base may be nil (self-contained
// mode). A non-nil base is cloned, so later caller-side mutation of the
// original cannot corrupt the compiled artifacts — ApplyDelta is the
// only way to change a session's base. Option values are validated
// here — once — rather than on every request.
func NewSession(base *dataset.Relation, sigma rfd.Set, opts ...Option) (*Session, error) {
	im := New(sigma, opts...)
	if err := im.opts.Validate(); err != nil {
		return nil, err
	}
	im.attachDonorStats()
	s := &Session{im: im}
	if base != nil {
		if err := validateSigma(sigma, base.Schema().Len()); err != nil {
			return nil, err
		}
		s.newEpoch(engine.Precompile(base.Clone()), nil, sigma)
	}
	return s, nil
}

// attachDonorStats installs the session-lifetime scatter-gather
// accumulator when donor sharding is on. One accumulator per session:
// WithSigma-derived sessions and Explain reruns copy the options and
// keep feeding it.
func (im *Imputer) attachDonorStats() {
	if im.opts.DonorShards > 1 {
		im.opts.donorStats = newDonorShardStats(im.opts.DonorShards)
	}
}

// WithSigma derives a Session serving a different Σ against the same
// precompiled base — the serve-mode flow (precompile the base, discover
// Σ from it, then serve with the discovered Σ) without a second compile
// of the base. The receiver's options carry over.
//
// The derived session snapshots the receiver's current epoch: it keeps
// serving that compiled base even if deltas later evolve the receiver,
// and deltas applied to the derived session do not reach the receiver.
func (s *Session) WithSigma(sigma rfd.Set) (*Session, error) {
	ep := s.cur.Load()
	if ep != nil {
		if err := validateSigma(sigma, ep.shared.Arity()); err != nil {
			return nil, err
		}
	}
	out := &Session{im: &Imputer{sigma: sigma, opts: s.im.opts}}
	if ep != nil {
		// The decoded candidate index and artifact metadata do not carry
		// over: both are bound to the Σ they were compiled with.
		out.cur.Store(&epochState{
			seq:    ep.seq,
			shared: ep.shared,
			sigma:  sigma,
			rec:    out.im.opts.recorder(),
		})
	}
	return out, nil
}

// Sigma returns the dependency set currently in force — the
// constructor's set as repaired by any applied deltas' revalidation.
// Callers must not mutate it.
func (s *Session) Sigma() rfd.Set { return s.sigmaAt(s.cur.Load()) }

// BaseView returns a frozen read-only view over the precompiled base at
// the current epoch — the input for running discovery against the base
// without recompiling it — or nil in self-contained mode. Reads through
// it warm the shared distance cache for every future Impute call.
func (s *Session) BaseView() *engine.View {
	ep := s.cur.Load()
	if ep == nil {
		return nil
	}
	return ep.shared.View()
}

// CacheShardStats returns the per-shard hit / miss / merge counters of
// the current epoch's shared distance cache, or nil in self-contained
// mode (ephemeral caches die with their request; there is nothing
// long-lived to inspect).
func (s *Session) CacheShardStats() []engine.CacheShardStat {
	ep := s.cur.Load()
	if ep == nil {
		return nil
	}
	return ep.shared.CacheShardStats()
}

// DonorShardStats returns the accumulated per-sub-pool scatter-gather
// counters of the session's sharded donor sweeps, or nil when the
// session was not built with WithDonorShards > 1 (there is no
// partitioning to report then).
func (s *Session) DonorShardStats() []obs.DonorShardStat {
	return s.im.opts.donorStats.snapshot()
}

// Discover mines RFDcs from the session's precompiled base without
// recompiling it; the pairwise distances it computes land in the shared
// cache, so a Discover-then-serve flow starts Impute calls warm. Pair it
// with WithSigma to serve the discovered set. Self-contained sessions
// (nil base) have no instance to mine and return an error.
func (s *Session) Discover(ctx context.Context, cfg discovery.Config) (rfd.Set, error) {
	ep := s.pin()
	if ep == nil {
		return nil, fmt.Errorf("core: session has no base instance to discover from")
	}
	defer ep.unpin()
	if sp := obs.SpanFromContext(ctx).Child("discover"); sp.Enabled() {
		// Re-anchor the context so the discovery phases nest under this
		// span; the rewrite (one allocation) happens only when a request
		// trace is live.
		defer sp.End()
		ctx = obs.ContextWithSpan(ctx, sp)
	}
	return discovery.DiscoverViewContext(ctx, ep.shared.View(), cfg)
}

// Impute runs RENUVER on the request relation against the session's
// compiled artifacts. The input is never mutated. An expired context is
// rejected in O(1) — before any clone or compile — with a non-nil empty
// Result and engine.ErrCanceled; mid-run expiry returns the partial
// well-formed result the cancellation checkpoints produced.
//
// The call pins the current epoch for its whole duration: a concurrent
// ApplyDelta neither blocks it nor changes what it sees.
func (s *Session) Impute(ctx context.Context, rel *dataset.Relation) (*Result, error) {
	if ctx.Err() != nil {
		return &Result{}, engine.Canceled(ctx)
	}
	ep := s.pin()
	if ep != nil {
		defer ep.unpin()
	}
	return s.imputeEpoch(ctx, rel, s.im, ep)
}

// imputeEpoch runs one imputation against a pinned epoch (nil = the
// self-contained path). The options always come from im; the compiled
// base and the Σ served come from the epoch when one is pinned, so the
// (view, Σ) pair can never tear against a concurrent delta.
func (s *Session) imputeEpoch(ctx context.Context, rel *dataset.Relation, im *Imputer, ep *epochState) (*Result, error) {
	if ep != nil {
		if !rel.Schema().Equal(ep.shared.Relation().Schema()) {
			return nil, fmt.Errorf("core: request schema %q incompatible with session base %q",
				rel.Schema(), ep.shared.Relation().Schema())
		}
		im = &Imputer{sigma: ep.sigma, opts: im.opts}
	}
	if err := validateSigma(im.sigma, rel.Schema().Len()); err != nil {
		return nil, err
	}
	work := rel.Clone()
	var eng *engine.View
	useIndex := !im.opts.NoIndex
	if ep != nil {
		// Donor-pool mode: only the request rows are compiled; the base
		// tier is shared. No per-request donor index — building one would
		// rescan every base row and forfeit the O(request) per-call cost.
		eng = ep.shared.Extend(work)
		useIndex = false
	} else {
		eng = engine.Compile(work)
	}
	return im.runImpute(ctx, work, eng, useIndex)
}

// Explain reruns the request with a tracer pinned to one cell and
// renders the decision tree for it: which clusters applied, which
// donors ranked where, which RFDc vetoed a candidate, and why the cell
// resolved (or didn't). It returns "" when the cell was not missing in
// the request.
func (s *Session) Explain(ctx context.Context, rel *dataset.Relation, row, attr int) (string, error) {
	if ctx.Err() != nil {
		return "", engine.Canceled(ctx)
	}
	if row < 0 || row >= rel.Len() || attr < 0 || attr >= rel.Schema().Len() {
		return "", fmt.Errorf("core: cell (row %d, attr %d) outside a %dx%d relation",
			row, attr, rel.Len(), rel.Schema().Len())
	}
	if sp := obs.SpanFromContext(ctx).Child("explain"); sp.Enabled() {
		sp.Int("row", int64(row))
		sp.Int("attr", int64(attr))
		defer sp.End()
		ctx = obs.ContextWithSpan(ctx, sp)
	}
	ep := s.pin()
	if ep != nil {
		defer ep.unpin()
	}
	tr := obs.NewRingTracer(1, 1)
	tr.Only(row, attr)
	traced := &Imputer{sigma: s.sigmaAt(ep), opts: s.im.opts}
	traced.opts.Tracer = tr
	res, err := s.imputeEpoch(ctx, rel, traced, ep)
	if err != nil {
		return "", err
	}
	return res.ExplainText(rel.Schema(), row, attr), nil
}
