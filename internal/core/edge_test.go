package core

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/rfd"
)

func TestAllNullTupleImputable(t *testing.T) {
	// A tuple missing every value: patterns against it are all "_", so no
	// premise is ever satisfied — every cell must stay missing and
	// nothing may panic.
	rel, err := dataset.ReadCSVString("A,B\nx,1\ny,2\n_,_\n")
	if err != nil {
		t.Fatal(err)
	}
	sigma := rfd.Set{rfd.MustParse("A(<=0) -> B(<=0)", rel.Schema())}
	res, err := New(sigma).Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Imputed != 0 || res.Stats.Unimputed != 2 {
		t.Errorf("stats = %+v", res.Stats)
	}
}

func TestAllCellsMissingInstance(t *testing.T) {
	rel, err := dataset.ReadCSVString("A,B\n_,_\n_,_\n")
	if err != nil {
		t.Fatal(err)
	}
	sigma := rfd.Set{rfd.MustParse("A(<=0) -> B(<=0)", rel.Schema())}
	res, err := New(sigma).Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Imputed != 0 {
		t.Errorf("imputed %d with no donors at all", res.Stats.Imputed)
	}
}

func TestEmptyRelation(t *testing.T) {
	rel := dataset.NewRelation(dataset.NewSchema(
		dataset.Attribute{Name: "A", Kind: dataset.KindString},
		dataset.Attribute{Name: "B", Kind: dataset.KindInt},
	))
	sigma := rfd.Set{rfd.MustParse("A(<=0) -> B(<=0)", rel.Schema())}
	res, err := New(sigma).Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation.Len() != 0 || res.Stats.MissingCells != 0 {
		t.Errorf("empty relation mishandled: %+v", res.Stats)
	}
}

func TestOptionCombination(t *testing.T) {
	// Every option together must still reproduce a well-formed run.
	rel := table2(t)
	sigma := figure1Sigma(t, rel.Schema())
	res, err := New(sigma,
		WithClusterOrder(DescendingThreshold),
		WithVerifyMode(VerifyBothSides),
		WithoutClustering(),
		WithoutRanking(),
		WithoutKeyReevaluation(),
		WithMaxCandidates(2),
		WithWorkers(3),
		WithoutIndex(),
	).Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.Imputed+s.Unimputed != s.MissingCells {
		t.Errorf("stats inconsistent under full option stack: %+v", s)
	}
	if s.CandidatesTried != s.Imputed+s.VerifyRejections {
		t.Errorf("candidate accounting broken: %+v", s)
	}
}

func TestDuplicateRFDsInSigma(t *testing.T) {
	// Σ with duplicated dependencies must behave like the deduplicated
	// set (clusters just contain the duplicate; candidates identical).
	rel := table2(t)
	dep := rfd.MustParse("Name(<=6), City(<=9) -> Phone(<=0)", rel.Schema())
	dup := rfd.Set{dep, dep, dep}
	a, err := New(dup).Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(rfd.Set{dep}).Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Relation.Equal(b.Relation) {
		t.Error("duplicate dependencies changed the outcome")
	}
}

func TestSingleTupleRelation(t *testing.T) {
	rel, err := dataset.ReadCSVString("A,B\nx,\n")
	if err != nil {
		t.Fatal(err)
	}
	sigma := rfd.Set{rfd.MustParse("A(<=0) -> B(<=0)", rel.Schema())}
	res, err := New(sigma).Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Imputed != 0 {
		t.Error("imputed with a single tuple (no possible donor)")
	}
}

func TestImputedValueKindMatchesColumn(t *testing.T) {
	// The imputed value is copied from a donor, so its kind always
	// matches the column's (numeric widening included).
	rel, err := dataset.ReadCSVString("K,N\nk,1.5\nk,\n")
	if err != nil {
		t.Fatal(err)
	}
	sigma := rfd.Set{rfd.MustParse("K(<=0) -> N(<=100)", rel.Schema())}
	res, err := New(sigma).Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Relation.Get(1, 1)
	if got.IsNull() {
		t.Fatal("not imputed")
	}
	if !got.Kind().Numeric() {
		t.Errorf("imputed kind = %v", got.Kind())
	}
	if got.Float() != 1.5 {
		t.Errorf("imputed %v, want 1.5", got.Float())
	}
}

func TestZeroThresholdBooleanAttr(t *testing.T) {
	rel, err := dataset.ReadCSVString("F,V\ntrue,a\ntrue,\nfalse,b\n")
	if err != nil {
		t.Fatal(err)
	}
	sigma := rfd.Set{rfd.MustParse("F(<=0) -> V(<=0)", rel.Schema())}
	res, err := New(sigma).Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Relation.Get(1, 1); got.Str() != "a" {
		t.Errorf("boolean-keyed imputation = %v, want a", got)
	}
}
