package core

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/rfd"
)

// assertWellFormed checks the trace invariants promised by Explain: the
// sequence opens with CellStarted, closes with CellResolved or
// CellAbandoned, carries uniform cell coordinates, and its Seq numbers
// are the positions — i.e. no foreign events interleaved.
func assertWellFormed(t *testing.T, evs []obs.TraceEvent, row, attr int) {
	t.Helper()
	if len(evs) == 0 {
		t.Fatalf("cell (%d,%d): empty trace", row, attr)
	}
	if evs[0].Kind != obs.EvCellStarted {
		t.Errorf("cell (%d,%d): first event %v, want cell_started", row, attr, evs[0].Kind)
	}
	last := evs[len(evs)-1].Kind
	if last != obs.EvCellResolved && last != obs.EvCellAbandoned {
		t.Errorf("cell (%d,%d): last event %v, want cell_resolved or cell_abandoned", row, attr, last)
	}
	for i, ev := range evs {
		if ev.Row != row || ev.Attr != attr {
			t.Errorf("cell (%d,%d): event %d belongs to (%d,%d)", row, attr, i, ev.Row, ev.Attr)
		}
		if ev.Seq != i {
			t.Errorf("cell (%d,%d): event %d has Seq %d", row, attr, i, ev.Seq)
		}
	}
}

// TestExplainPaperExample runs the Figure 1 walk-through with tracing at
// 100%% sampling and checks every imputed cell yields a well-ordered
// explain sequence (the PR's acceptance criterion).
func TestExplainPaperExample(t *testing.T) {
	rel := table2(t)
	tr := obs.NewRingTracer(0, 1)
	im := New(figure1Sigma(t, rel.Schema()), WithTracer(tr))
	res, err := im.Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Imputations) == 0 {
		t.Fatal("no imputations")
	}
	for _, imp := range res.Imputations {
		evs := res.Explain(imp.Cell.Row, imp.Cell.Attr)
		assertWellFormed(t, evs, imp.Cell.Row, imp.Cell.Attr)
		final := evs[len(evs)-1]
		if final.Kind != obs.EvCellResolved {
			t.Errorf("imputed cell %v trace ends with %v", imp.Cell, final.Kind)
		}
		if final.Donor != imp.Donor || final.Value != imp.Value.String() || final.Attempt != imp.Attempt {
			t.Errorf("cell %v resolved event (donor %d, %q, attempt %d) disagrees with Imputation (%d, %q, %d)",
				imp.Cell, final.Donor, final.Value, final.Attempt, imp.Donor, imp.Value.String(), imp.Attempt)
		}
		// A resolved cell must have considered at least one donor and
		// received a faultless verdict for the winning attempt.
		var sawDonor, sawVerdict bool
		for _, ev := range evs {
			if ev.Kind == obs.EvDonorConsidered {
				sawDonor = true
			}
			if ev.Kind == obs.EvFaultlessVerdict && ev.OK && ev.Attempt == imp.Attempt {
				sawVerdict = true
			}
		}
		if !sawDonor || !sawVerdict {
			t.Errorf("cell %v trace missing donor_considered (%v) or faultless verdict (%v)",
				imp.Cell, sawDonor, sawVerdict)
		}
	}
	// The ring saw the same cells, delivered atomically.
	if tr.Len() != len(res.Traces) {
		t.Errorf("ring holds %d cells, result holds %d", tr.Len(), len(res.Traces))
	}
}

// TestExplainRecordsRejection replays Example 5.9: for t7[Phone] the
// closest candidate t3 violates φ7 (Phone(<=1) -> Class(<=0)) and must
// appear in the trace as a rejected attempt before t2 wins.
func TestExplainRecordsRejection(t *testing.T) {
	rel := table2(t)
	tr := obs.NewRingTracer(0, 1)
	im := New(figure1Sigma(t, rel.Schema()), WithTracer(tr))
	res, err := im.Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	phone := rel.Schema().MustIndex("Phone")
	evs := res.Explain(6, phone)
	assertWellFormed(t, evs, 6, phone)

	var rejected *obs.TraceEvent
	for i := range evs {
		if evs[i].Kind == obs.EvCandidateRejected {
			rejected = &evs[i]
			break
		}
	}
	if rejected == nil {
		t.Fatal("t7[Phone] trace has no candidate_rejected event")
	}
	if rejected.Donor != 2 {
		t.Errorf("rejected donor row = %d, want 2 (t3)", rejected.Donor)
	}
	if len(rejected.Rules) != 1 || !strings.Contains(rejected.Rules[0], "Class") {
		t.Errorf("violated rule = %v, want the Phone->Class RFDc", rejected.Rules)
	}
	if rejected.Witness < 0 {
		t.Errorf("rejection carries no witness row: %+v", rejected)
	}

	text := res.ExplainText(rel.Schema(), 6, phone)
	for _, want := range []string{"cell (row 7, Phone)", "violates", "resolved", "310-392-9025"} {
		if !strings.Contains(text, want) {
			t.Errorf("ExplainText missing %q:\n%s", want, text)
		}
	}
}

// TestExplainAbandonedCell traces a cell with no plausible candidate.
func TestExplainAbandonedCell(t *testing.T) {
	rel, err := dataset.ReadCSVString(`A,B
x,
y,v2
`)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewRingTracer(0, 1)
	sigma := rfd.Set{rfd.MustParse("A(<=0) -> B(<=0)", rel.Schema())}
	res, err := New(sigma, WithTracer(tr)).Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	evs := res.Explain(0, 1)
	assertWellFormed(t, evs, 0, 1)
	final := evs[len(evs)-1]
	if final.Kind != obs.EvCellAbandoned {
		t.Fatalf("trace ends with %v, want cell_abandoned", final.Kind)
	}
	if !strings.Contains(final.Note, "no plausible candidate") {
		t.Errorf("abandon note = %q", final.Note)
	}
}

// TestExplainDonorPoolProvenance checks ImputeWithDonors traces carry the
// donor-dataset source index.
func TestExplainDonorPoolProvenance(t *testing.T) {
	target, err := dataset.ReadCSVString(`A,B
x,
y,v2
`)
	if err != nil {
		t.Fatal(err)
	}
	donor, err := dataset.ReadCSVString(`A,B
x,v1
`)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewRingTracer(0, 1)
	sigma := rfd.Set{rfd.MustParse("A(<=0) -> B(<=0)", target.Schema())}
	res, err := New(sigma, WithTracer(tr)).ImputeWithDonors(target, []*dataset.Relation{donor})
	if err != nil {
		t.Fatal(err)
	}
	evs := res.Explain(0, 1)
	assertWellFormed(t, evs, 0, 1)
	final := evs[len(evs)-1]
	if final.Kind != obs.EvCellResolved || final.Source != 0 || final.Value != "v1" {
		t.Fatalf("resolved event = %+v, want source 0 value v1", final)
	}
	text := res.ExplainText(target.Schema(), 0, 1)
	if !strings.Contains(text, "donor dataset 0") {
		t.Errorf("ExplainText missing donor-pool provenance:\n%s", text)
	}
}

// TestExplainWithoutTracer: no tracer means no traces, nil Explain, and
// empty ExplainText — the zero-cost default.
func TestExplainWithoutTracer(t *testing.T) {
	rel := table2(t)
	res, err := New(figure1Sigma(t, rel.Schema())).Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	if res.Traces != nil {
		t.Errorf("untraced run has Traces: %v", res.Traces)
	}
	if evs := res.Explain(3, rel.Schema().MustIndex("Phone")); evs != nil {
		t.Errorf("Explain on untraced run = %v", evs)
	}
	if s := res.ExplainText(rel.Schema(), 3, 2); s != "" {
		t.Errorf("ExplainText on untraced run = %q", s)
	}
}

// TestExplainSampling: with sampling every-Nth, only sampled cells carry
// traces, and unsampled cells impute identically.
func TestExplainSampling(t *testing.T) {
	rel := table2(t)
	full, err := New(figure1Sigma(t, rel.Schema())).Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewRingTracer(0, 3)
	res, err := New(figure1Sigma(t, rel.Schema()), WithTracer(tr)).Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Imputations) != len(full.Imputations) {
		t.Fatalf("sampled tracing changed imputations: %d vs %d",
			len(res.Imputations), len(full.Imputations))
	}
	for cell, evs := range res.Traces {
		if !tr.Sample(cell.Row, cell.Attr) {
			t.Errorf("cell %v traced but not in sample", cell)
		}
		assertWellFormed(t, evs, cell.Row, cell.Attr)
	}
}

// TestStreamImputerTraces: the streaming path shares imputeMissingValue;
// each appended tuple's traced cells land in the ring, well-formed.
func TestStreamImputerTraces(t *testing.T) {
	rel, err := dataset.ReadCSVString(`A,B
k1,v1
k2,v2
`)
	if err != nil {
		t.Fatal(err)
	}
	sigma := rfd.Set{rfd.MustParse("A(<=0) -> B(<=0)", rel.Schema())}
	tr := obs.NewRingTracer(0, 1)
	st := New(sigma, WithTracer(tr)).NewStream(rel)
	if _, err := st.Append(dataset.Tuple{dataset.NewString("k1"), dataset.Null}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(dataset.Tuple{dataset.NewString("k9"), dataset.Null}); err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("stream run produced no traces")
	}
	for _, evs := range tr.Cells() {
		assertWellFormed(t, evs, evs[0].Row, evs[0].Attr)
	}
}
