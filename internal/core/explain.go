package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dataset"
	"repro/internal/distance"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/rfd"
)

// This file is the explain surface over the trace layer: the per-cell
// event sequences collected during a traced run (WithTracer) are kept on
// the Result and rendered either raw (Explain) or as a human-readable
// decision tree (ExplainText) — the answer to "why did cell (t, A) get
// value X instead of Y, and which RFDc vetoed the alternative?".

// Explain returns the decision trace recorded for one cell: a
// well-ordered event sequence opening with CellStarted and closing with
// CellResolved or CellAbandoned. It returns nil when the run had no
// tracer, or the cell was not sampled, or the cell was never missing.
func (res *Result) Explain(row, attr int) []obs.TraceEvent {
	return res.Traces[dataset.Cell{Row: row, Attr: attr}]
}

// addTrace closes the collector and attaches its events to the result.
func (res *Result) addTrace(cell dataset.Cell, ct *obs.CellTrace) {
	evs := ct.Close()
	if evs == nil {
		return
	}
	if res.Traces == nil {
		res.Traces = make(map[dataset.Cell][]obs.TraceEvent)
	}
	res.Traces[cell] = evs
}

// ExplainText renders one cell's trace as an indented decision tree with
// attribute names from the schema and 1-based rows (matching Report).
// It returns "" when the cell has no trace.
func (res *Result) ExplainText(schema *dataset.Schema, row, attr int) string {
	evs := res.Explain(row, attr)
	if len(evs) == 0 {
		return ""
	}
	var sb strings.Builder
	name := schema.Attr(attr).Name
	for _, ev := range evs {
		switch ev.Kind {
		case obs.EvCellStarted:
			fmt.Fprintf(&sb, "cell (row %d, %s): %d cluster(s) of applicable RFDcs\n", row+1, name, ev.N)
		case obs.EvRuleSelected:
			fmt.Fprintf(&sb, "  cluster threshold %g:\n", ev.Threshold)
			for _, r := range ev.Rules {
				fmt.Fprintf(&sb, "    %s\n", r)
			}
		case obs.EvDonorConsidered:
			fmt.Fprintf(&sb, "  candidate row %d%s: Eq.2 score %.3f%s\n",
				ev.Donor+1, sourceSuffix(ev.Source), ev.Score, distSuffix(ev.Dists))
		case obs.EvFaultlessVerdict:
			verdict := "faultless"
			if !ev.OK {
				verdict = "rejected"
			}
			fmt.Fprintf(&sb, "  attempt %d: tentatively impute from row %d -> %s\n",
				ev.Attempt, ev.Donor+1, verdict)
		case obs.EvCandidateRejected:
			fmt.Fprintf(&sb, "    violates %s (witness row %d)\n", strings.Join(ev.Rules, "; "), ev.Witness+1)
		case obs.EvCellResolved:
			fmt.Fprintf(&sb, "  resolved: %q from donor row %d%s (dist %.3f, attempt %d)\n",
				ev.Value, ev.Donor+1, sourceSuffix(ev.Source), ev.Score, ev.Attempt)
		case obs.EvCellAbandoned:
			fmt.Fprintf(&sb, "  abandoned: %s\n", ev.Note)
		case obs.EvTraceTruncated:
			fmt.Fprintf(&sb, "  ... %d event(s) elided: %s\n", ev.N, ev.Note)
		}
	}
	return sb.String()
}

// sourceSuffix labels donors from the multi-dataset pool.
func sourceSuffix(source int) string {
	if source < 0 {
		return ""
	}
	return fmt.Sprintf(" [donor dataset %d]", source)
}

// distSuffix renders the per-attribute distances of a considered donor.
func distSuffix(dists []obs.AttrDist) string {
	if len(dists) == 0 {
		return ""
	}
	parts := make([]string, len(dists))
	for i, d := range dists {
		label := d.Name
		if label == "" {
			label = fmt.Sprintf("attr%d", d.Attr)
		}
		parts[i] = fmt.Sprintf("%s=%g", label, d.Dist)
	}
	return " (" + strings.Join(parts, ", ") + ")"
}

// formatRules renders a cluster's RFDcs with schema attribute names.
func formatRules(deps rfd.Set, schema *dataset.Schema) []string {
	out := make([]string, len(deps))
	for i, dep := range deps {
		out[i] = dep.Format(schema)
	}
	return out
}

// maxDonorTraces caps DonorConsidered events per cluster: the ranked
// head is the decision-relevant part, and a cell with thousands of
// candidates must not dominate the trace.
const maxDonorTraces = 16

// traceDonorEvents emits DonorConsidered events for the first
// (ranked-best) candidates with each donor's per-attribute LHS
// distances against the incomplete tuple. The lookups go through the
// engine's memoized distance cache, so for traced cells the
// per-attribute breakdown is a cache read of the distances the ranking
// already computed, not a second Levenshtein pass.
func traceDonorEvents(ct *obs.CellTrace, v *engine.View, row int, deps rfd.Set,
	n int, at func(k int) (flat int, score float64)) {

	if ct == nil || n == 0 {
		return
	}
	schema := v.Relation().Schema()
	needed := unionLHSAttrs(deps, schema.Len())
	shown := n
	if shown > maxDonorTraces {
		shown = maxDonorTraces
	}
	for k := 0; k < shown; k++ {
		flat, score := at(k)
		source, donor := v.SourceOf(flat)
		dists := make([]obs.AttrDist, 0, len(needed))
		for _, a := range needed {
			d := v.Distance(a, row, flat)
			if !distance.IsMissing(d) {
				dists = append(dists, obs.AttrDist{Attr: a, Name: schema.Attr(a).Name, Dist: d})
			}
		}
		ct.Add(obs.DonorConsidered(donor, source, dists, score))
	}
	if n > shown {
		ct.Add(obs.TraceTruncated(n-shown, "further ranked candidates not traced"))
	}
}

// unionLHSAttrs returns the sorted union of LHS attribute positions.
func unionLHSAttrs(deps rfd.Set, m int) []int {
	seen := make([]bool, m)
	out := make([]int, 0, m)
	for _, dep := range deps {
		for _, c := range dep.LHS {
			if !seen[c.Attr] {
				seen[c.Attr] = true
				out = append(out, c.Attr)
			}
		}
	}
	sort.Ints(out)
	return out
}
