package core

// Compiled-session artifacts: a Session with a precompiled base can be
// serialized into the versioned binary format of internal/artifact and
// reconstructed on another replica without re-running RFD discovery or
// the engine compile — the flat columnar slabs, interning tables,
// candidate index, and Σ load directly. The distance cache is a pure
// memo and is not serialized; a loaded session starts cold and produces
// byte-identical imputations, Stats, and traces versus a from-scratch
// compile.

import (
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/artifact"
	"repro/internal/engine"
	"repro/internal/rfd"
)

// ArtifactInfo summarizes a compiled-session artifact — the metadata a
// serving replica reports (version output, the artifact-info gauge)
// without decoding the payload sections.
type ArtifactInfo struct {
	// FormatVersion is the artifact layout version.
	FormatVersion uint16
	// Checksum is the whole-file CRC-64 trailer.
	Checksum uint64
	// Tuples is the compiled base instance's row count.
	Tuples int
	// Arity is the schema arity.
	Arity int
	// Rules is |Σ|, the serialized dependency count.
	Rules int
	// Bytes is the artifact's total encoded length.
	Bytes int
}

// String renders the metadata in the one-line form the CLI logs.
func (ai *ArtifactInfo) String() string {
	return fmt.Sprintf("format=v%d checksum=%016x tuples=%d arity=%d rules=%d bytes=%d",
		ai.FormatVersion, ai.Checksum, ai.Tuples, ai.Arity, ai.Rules, ai.Bytes)
}

// Artifact returns the metadata of the artifact this session was loaded
// from or last encoded to, or nil for a session that has never touched
// one.
func (s *Session) Artifact() *ArtifactInfo { return s.art }

// encodeSigma writes Σ as the SecSigma section: a dependency count,
// then per dependency the LHS constraint list and the RHS constraint,
// each as (attribute, threshold-bits).
func encodeSigma(b *artifact.Builder, sigma rfd.Set) {
	b.Begin(artifact.SecSigma)
	b.Uint32(uint32(len(sigma)))
	for _, dep := range sigma {
		b.Uint32(uint32(len(dep.LHS)))
		for _, c := range dep.LHS {
			b.Uint32(uint32(c.Attr))
			b.Float64(c.Threshold)
		}
		b.Uint32(uint32(dep.RHS.Attr))
		b.Float64(dep.RHS.Threshold)
	}
}

// decodeSigma reads Σ back, revalidating every dependency through
// rfd.New and the schema-arity check — a corrupt rule set fails decode
// rather than surfacing later as an impossible imputation.
func decodeSigma(r *artifact.Reader, arity int) (rfd.Set, error) {
	c, ok := r.Section(artifact.SecSigma)
	if !ok {
		return nil, artifact.Corruptf("missing sigma section")
	}
	n := int(c.Uint32())
	if c.Err() != nil {
		return nil, c.Err()
	}
	if n < 0 || n > c.Remaining() {
		return nil, artifact.Corruptf("sigma: %d rules exceed section", n)
	}
	sigma := make(rfd.Set, 0, n)
	for i := 0; i < n; i++ {
		nl := int(c.Uint32())
		if c.Err() != nil {
			return nil, c.Err()
		}
		if nl < 0 || nl > c.Remaining() {
			return nil, artifact.Corruptf("sigma: rule %d LHS of %d exceeds section", i, nl)
		}
		lhs := make([]rfd.Constraint, nl)
		for j := range lhs {
			lhs[j] = rfd.Constraint{Attr: int(c.Uint32()), Threshold: c.Float64()}
		}
		rhs := rfd.Constraint{Attr: int(c.Uint32()), Threshold: c.Float64()}
		if err := c.Err(); err != nil {
			return nil, err
		}
		for _, con := range append(lhs, rhs) {
			if math.IsNaN(con.Threshold) || math.IsInf(con.Threshold, 0) {
				return nil, artifact.Corruptf("sigma: rule %d has non-finite threshold", i)
			}
		}
		dep, err := rfd.New(lhs, rhs)
		if err != nil {
			return nil, artifact.Corruptf("sigma: rule %d: %v", i, err)
		}
		sigma = append(sigma, dep)
	}
	if err := validateSigma(sigma, arity); err != nil {
		return nil, artifact.Corruptf("sigma: %v", err)
	}
	return sigma, nil
}

// EncodeArtifact serializes the session's compiled state — base
// columns, interning tables, candidate index over Σ's LHS attributes,
// and Σ itself — into one artifact, all read from the one epoch the
// call pins (an artifact can never mix two epochs' state, even while
// deltas apply concurrently). Encoding the same session twice at the
// same epoch yields byte-identical output. Self-contained sessions
// (nil base) have no compiled state to persist and return an error.
func (s *Session) EncodeArtifact() ([]byte, error) {
	ep := s.pin()
	if ep == nil {
		return nil, fmt.Errorf("core: session has no base instance to encode")
	}
	defer ep.unpin()
	b := artifact.NewBuilder()
	b.Begin(artifact.SecMeta)
	b.Uint64(uint64(ep.shared.Len()))
	b.Uint32(uint32(ep.shared.Arity()))
	b.Uint32(uint32(len(ep.sigma)))
	ep.shared.EncodeTo(b)
	ix := ep.index
	if ix == nil {
		ix = engine.NewIndex(ep.shared.View(), ep.sigma)
	}
	ix.EncodeTo(b)
	encodeSigma(b, ep.sigma)
	data := b.Finish()
	r, err := artifact.Decode(data)
	if err != nil {
		// Decoding bytes we just built cannot fail unless the builder is
		// broken; surface it rather than shipping a bad artifact.
		return nil, fmt.Errorf("core: self-check of encoded artifact: %w", err)
	}
	s.art = &ArtifactInfo{
		FormatVersion: r.Version(),
		Checksum:      r.Checksum(),
		Tuples:        ep.shared.Len(),
		Arity:         ep.shared.Arity(),
		Rules:         len(ep.sigma),
		Bytes:         len(data),
	}
	return data, nil
}

// SaveArtifact writes the encoded artifact to w.
func (s *Session) SaveArtifact(w io.Writer) error {
	data, err := s.EncodeArtifact()
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// SaveArtifactFile writes the encoded artifact to path atomically: a
// temp file in the same directory, renamed into place, so a crashed
// compile never leaves a torn artifact for a replica to reject.
func (s *Session) SaveArtifactFile(path string) error {
	data, err := s.EncodeArtifact()
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepathDir(path), ".rnv-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// filepathDir is filepath.Dir without pulling path/filepath into every
// core consumer — artifacts use forward-slash-free local paths too.
func filepathDir(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if os.IsPathSeparator(path[i]) {
			if i == 0 {
				return path[:1]
			}
			return path[:i]
		}
	}
	return "."
}

// NewSessionFromArtifact reconstructs a serving Session from an encoded
// artifact, skipping RFD discovery and the engine compile entirely: the
// columnar base, interning tables, candidate index, and Σ decode
// straight from the flat slabs. The data slice is read during decode
// and not retained (string blobs are copied once per attribute), so an
// mmap-backed caller may unmap after this returns. Options are
// validated exactly as NewSession validates them.
func NewSessionFromArtifact(data []byte, opts ...Option) (*Session, error) {
	r, err := artifact.Decode(data)
	if err != nil {
		return nil, err
	}
	shared, err := engine.DecodeShared(r)
	if err != nil {
		return nil, err
	}
	sigma, err := decodeSigma(r, shared.Arity())
	if err != nil {
		return nil, err
	}
	mc, ok := r.Section(artifact.SecMeta)
	if !ok {
		return nil, artifact.Corruptf("missing meta section")
	}
	tuples, arity, rules := int(mc.Uint64()), int(mc.Uint32()), int(mc.Uint32())
	if err := mc.Err(); err != nil {
		return nil, err
	}
	if tuples != shared.Len() || arity != shared.Arity() || rules != len(sigma) {
		return nil, artifact.Corruptf("meta (%d tuples, arity %d, %d rules) disagrees with payload (%d, %d, %d)",
			tuples, arity, rules, shared.Len(), shared.Arity(), len(sigma))
	}
	ix, err := engine.DecodeIndex(r, shared.View())
	if err != nil {
		return nil, err
	}
	im := New(sigma, opts...)
	if err := im.opts.Validate(); err != nil {
		return nil, err
	}
	im.attachDonorStats()
	s := &Session{
		im: im,
		art: &ArtifactInfo{
			FormatVersion: r.Version(),
			Checksum:      r.Checksum(),
			Tuples:        tuples,
			Arity:         arity,
			Rules:         rules,
			Bytes:         len(data),
		},
	}
	// The decoded state becomes epoch 0; the decoded index is carried so
	// a later EncodeArtifact round-trips it, and insert-only deltas
	// extend it incrementally.
	s.newEpoch(shared, ix, sigma)
	return s, nil
}

// LoadSession reads a compiled-session artifact from disk and
// reconstructs the Session — the replica boot path behind
// `renuver serve -artifact`.
func LoadSession(path string, opts ...Option) (*Session, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return NewSessionFromArtifact(data, opts...)
}
