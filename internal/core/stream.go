package core

import (
	"context"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/obs"
)

// Stream is the paper's incremental-scenario extension (Sec. 7: "we
// would like to study the applicability of RENUVER over incremental
// scenarios ... which would require the usage of incremental RFDc
// discovery algorithms"). It keeps a growing instance and imputes each
// arriving tuple's missing values on arrival, maintaining the key-RFDc
// status incrementally instead of rescanning all tuple pairs:
//
//   - appending a tuple only adds pairs involving that tuple, so only
//     those pairs can flip a key-RFDc to non-key (key status is monotone
//     under growth, like under imputation);
//   - an arriving tuple immediately becomes a donor for later arrivals,
//     and earlier cells that stayed missing can be retried with
//     RetryMissing once new donors have accumulated.
//
// The session owns one engine view for its whole lifetime, so the
// memoized distances survive across arrivals: a value pair compared when
// tuple t arrived is a cache hit when tuple t' repeats it.
type Stream struct {
	im *Imputer
	v  *engine.View
	m  *engine.Matcher // stream-goroutine kernel arena over v
	kt *keyTracker
	// stats accumulates over the stream's lifetime.
	stats Stats
	// cacheHits/cacheMisses checkpoint the view's cache counters so each
	// per-cell Stats carries only that cell's delta.
	cacheHits, cacheMisses int64
}

// NewStream starts an incremental session seeded with the base instance
// (which is cloned; missing values in the base are NOT imputed — call
// RetryMissing for that).
func (im *Imputer) NewStream(base *dataset.Relation) *Stream {
	v := engine.Compile(base.Clone())
	return &Stream{
		im: im,
		v:  v,
		m:  v.Matcher(),
		kt: newKeyTracker(context.Background(), v, im.sigma),
	}
}

// Relation exposes the accumulated instance. Callers must not mutate it.
func (s *Stream) Relation() *dataset.Relation { return s.v.Relation() }

// Stats returns the counters accumulated so far.
func (s *Stream) Stats() Stats { return s.stats }

// Append adds one tuple, updates the key-RFDc status with the new pairs,
// and imputes the tuple's missing values against the accumulated
// instance. It returns the imputations performed for this tuple.
func (s *Stream) Append(t dataset.Tuple) ([]Imputation, error) {
	work := s.v.Relation()
	if len(t) != work.Schema().Len() {
		return nil, fmt.Errorf("core: stream tuple arity %d != schema arity %d",
			len(t), work.Schema().Len())
	}
	if err := s.v.Append(t.Clone()); err != nil {
		return nil, err
	}
	row := work.Len() - 1
	s.absorbNewRow(row)
	s.im.opts.recorder().Add(obs.CtrStreamAppends, 1)

	var out []Imputation
	for _, attr := range work.Row(row).MissingAttrs() {
		s.stats.MissingCells++
		res := &Result{Relation: work}
		res.Stats.MissingCells = 1
		sigmaPrime := s.kt.nonKeys()
		clusters := s.im.clustersFor(sigmaPrime, attr)
		if ok, _ := s.im.imputeMissingValue(context.Background(), s.m, row, attr, sigmaPrime, clusters, res, nil, obs.Span{}); ok {
			if !s.im.opts.NoKeyReevaluation {
				before := s.kt.keys
				s.kt.afterImpute(row, attr)
				s.stats.KeyFlips += before - s.kt.keys
				res.Stats.KeyFlips = before - s.kt.keys
			}
			out = append(out, res.Imputations...)
			s.stats.Imputed++
		} else {
			s.stats.Unimputed++
		}
		res.Stats.Imputed = len(res.Imputations)
		s.accumulate(res)
	}
	return out, nil
}

// RetryMissing re-attempts every still-missing cell in the accumulated
// instance — earlier arrivals may have become imputable as donors and
// freed key-RFDcs accumulated. It returns the new imputations.
func (s *Stream) RetryMissing() []Imputation {
	work := s.v.Relation()
	var out []Imputation
	for _, cell := range work.MissingCells() {
		res := &Result{Relation: work}
		sigmaPrime := s.kt.nonKeys()
		clusters := s.im.clustersFor(sigmaPrime, cell.Attr)
		if ok, _ := s.im.imputeMissingValue(context.Background(), s.m, cell.Row, cell.Attr, sigmaPrime, clusters, res, nil, obs.Span{}); ok {
			if !s.im.opts.NoKeyReevaluation {
				before := s.kt.keys
				s.kt.afterImpute(cell.Row, cell.Attr)
				s.stats.KeyFlips += before - s.kt.keys
				res.Stats.KeyFlips = before - s.kt.keys
			}
			out = append(out, res.Imputations...)
			s.stats.Imputed++
			s.stats.Unimputed--
		}
		res.Stats.Imputed = len(res.Imputations)
		s.accumulate(res)
	}
	return out
}

// absorbNewRow updates key status with the pairs the new row introduces.
func (s *Stream) absorbNewRow(row int) {
	for j := 0; j < s.v.Len() && s.kt.keys > 0; j++ {
		if j == row {
			continue
		}
		s.kt.absorbPair(j, row)
	}
}

// accumulate folds one per-cell run's counters into the stream totals
// and forwards them to the configured recorder. The engine cache
// counters are deltas against the previous checkpoint, since the view
// (and its cache) is shared across the stream's lifetime.
func (s *Stream) accumulate(res *Result) {
	hits, misses := s.v.CacheStats()
	res.Stats.EngineCacheHits = int(hits - s.cacheHits)
	res.Stats.EngineCacheMisses = int(misses - s.cacheMisses)
	s.cacheHits, s.cacheMisses = hits, misses

	st := res.Stats
	s.stats.DonorsScanned += st.DonorsScanned
	s.stats.CandidatesEvaluated += st.CandidatesEvaluated
	s.stats.DonorsRanked += st.DonorsRanked
	s.stats.CandidatesTried += st.CandidatesTried
	s.stats.FaultlessChecks += st.FaultlessChecks
	s.stats.VerifyRejections += st.VerifyRejections
	s.stats.ClustersScanned += st.ClustersScanned
	s.stats.IndexHits += st.IndexHits
	s.stats.IndexMisses += st.IndexMisses
	s.stats.EngineCacheHits += st.EngineCacheHits
	s.stats.EngineCacheMisses += st.EngineCacheMisses
	for attr, n := range st.ImputedByAttr {
		for i := 0; i < n; i++ {
			s.stats.countImputed(attr, s.v.Arity())
		}
	}
	s.stats.Phases.CandidateSearch += st.Phases.CandidateSearch
	s.stats.Phases.Ranking += st.Phases.Ranking
	s.stats.Phases.Verify += st.Phases.Verify
	s.stats.Phases.KeyReeval += st.Phases.KeyReeval
	publishStats(s.im.opts.recorder(), &st)
}
