package core

import (
	"repro/internal/dataset"
	"repro/internal/distance"
	"repro/internal/rfd"
)

// donorIndex is an inverted index value → row list for the attributes
// that appear with threshold 0 on some LHS in Σ. An RFDc premise with an
// equality constraint (threshold 0 means exact match for every domain)
// can only be satisfied by donors sharing the tuple's value on that
// attribute, so the candidate scan can jump straight to the matching
// rows instead of sweeping the whole instance. Attributes constrained
// only with positive thresholds fall back to the full scan.
//
// The index tracks the working relation: committed imputations insert
// the new value (nulls are never indexed, and imputation only ever
// turns nulls into values, so no deletions are needed).
type donorIndex struct {
	// rows[attr][value string] = row indices holding that value, in
	// ascending order. Nil map entry = attribute not indexed.
	rows []map[string][]int
}

// newDonorIndex builds the index over the attributes that some
// dependency in Σ constrains with threshold 0.
func newDonorIndex(rel *dataset.Relation, sigma rfd.Set) *donorIndex {
	m := rel.Schema().Len()
	indexed := make([]bool, m)
	any := false
	for _, dep := range sigma {
		for _, c := range dep.LHS {
			if c.Threshold == 0 {
				indexed[c.Attr] = true
				any = true
			}
		}
	}
	if !any {
		return nil
	}
	idx := &donorIndex{rows: make([]map[string][]int, m)}
	for a := 0; a < m; a++ {
		if indexed[a] {
			idx.rows[a] = map[string][]int{}
		}
	}
	for i := 0; i < rel.Len(); i++ {
		t := rel.Row(i)
		for a := 0; a < m; a++ {
			if idx.rows[a] == nil || t[a].IsNull() {
				continue
			}
			key := t[a].String()
			idx.rows[a][key] = append(idx.rows[a][key], i)
		}
	}
	return idx
}

// insert records a committed imputation.
func (idx *donorIndex) insert(row, attr int, v dataset.Value) {
	if idx == nil || idx.rows[attr] == nil || v.IsNull() {
		return
	}
	key := v.String()
	list := idx.rows[attr][key]
	// Keep ascending order; imputation order is row-major so appends are
	// usually already sorted, but donors.go and streams can insert out
	// of order.
	pos := len(list)
	for pos > 0 && list[pos-1] > row {
		pos--
	}
	list = append(list, 0)
	copy(list[pos+1:], list[pos:])
	list[pos] = row
	idx.rows[attr][key] = list
}

// lookup returns the rows whose attr equals the value, or (nil, false)
// when the attribute is not indexed.
func (idx *donorIndex) lookup(attr int, v dataset.Value) ([]int, bool) {
	if idx == nil || idx.rows[attr] == nil {
		return nil, false
	}
	return idx.rows[attr][v.String()], true
}

// candidateRows returns the donor rows worth scanning for the cluster:
// for each dependency, the rows matching one of its equality constraints
// (via the index) or all rows when the dependency has no usable equality
// constraint. The result is a deduplicated ascending row list; the
// boolean is false when at least one dependency required the full scan,
// in which case the caller should sweep everything.
func (idx *donorIndex) candidateRows(work *dataset.Relation, row int, deps rfd.Set) ([]int, bool) {
	if idx == nil {
		return nil, false
	}
	t := work.Row(row)
	seen := map[int]bool{}
	var out []int
	for _, dep := range deps {
		matched := false
		for _, c := range dep.LHS {
			if c.Threshold != 0 {
				continue
			}
			if t[c.Attr].IsNull() {
				// The premise can never be satisfied for this tuple:
				// a missing component fails the constraint, so this
				// dependency contributes no candidates at all.
				matched = true
				break
			}
			if rows, ok := idx.lookup(c.Attr, t[c.Attr]); ok {
				matched = true
				for _, r := range rows {
					if r != row && !seen[r] {
						seen[r] = true
						out = append(out, r)
					}
				}
				break
			}
		}
		if !matched {
			return nil, false // this dependency needs the full sweep
		}
	}
	// Ascending order for deterministic downstream processing.
	insertionSort(out)
	return out, true
}

func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}

// findCandidateTuplesIndexed is findCandidateTuples restricted to the
// index-provided row set. Results are identical to the full scan because
// every donor outside the set fails all premises.
func findCandidateTuplesIndexed(work *dataset.Relation, rows []int, row, attr int, deps rfd.Set) []candidate {
	m := work.Schema().Len()
	needed := make([]int, 0, m)
	seen := make([]bool, m)
	for _, dep := range deps {
		for _, c := range dep.LHS {
			if !seen[c.Attr] {
				seen[c.Attr] = true
				needed = append(needed, c.Attr)
			}
		}
	}
	t := work.Row(row)
	p := make(distance.Pattern, m)
	var cands []candidate
	for _, j := range rows {
		tj := work.Row(j)
		if tj[attr].IsNull() {
			continue
		}
		for _, a := range needed {
			p[a] = distance.Values(t[a], tj[a])
		}
		distMin, found := 0.0, false
		for _, dep := range deps {
			if !dep.LHSSatisfiedBy(p) {
				continue
			}
			d, ok := p.MeanOver(dep.LHSAttrs())
			if !ok {
				continue
			}
			if !found || d < distMin {
				distMin, found = d, true
			}
		}
		if found {
			cands = append(cands, candidate{row: j, dist: distMin})
		}
	}
	return cands
}
