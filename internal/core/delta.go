package core

// Live-data sessions: ApplyDelta evolves a compiled Session's base
// instance in place — epoch-based RCU instead of a full recompile.
//
// A Session with a base holds its compiled state (engine.Shared, the
// optional candidate index, and the Σ in force) in an immutable
// epochState published through an atomic pointer. Readers (Impute,
// Explain, EncodeArtifact, BaseView) pin the current epoch for the
// duration of one call — a counter increment, no lock — so a
// concurrent ApplyDelta can never tear the (view, Σ) pair a run sees.
// The writer (serialized by applyMu) builds the entire next epoch off
// to the side, publishes it with one atomic store, and marks the old
// epoch superseded; the old epoch is retired — an accounting event,
// the GC owns the memory — when its last pinned reader unpins.
//
// What a delta invalidates is deliberately minimal:
//
//   - interned string ids are stable across epochs (Evolve flat-clones
//     the interning tables), so the memoized distance cache is carried
//     as-is; only an interner compaction — deletes leaving a table
//     mostly dead — remaps ids, and then the new epoch gets a copy of
//     the cache with exactly the compacted attributes' shards rebuilt;
//   - Σ is revalidated only against the pairs the delta introduces
//     (discovery.RevalidateRows); deletes are monotone-safe and check
//     nothing;
//   - the candidate index is cloned + incrementally extended for
//     insert-only deltas and rebuilt otherwise.

import (
	"context"
	"fmt"
	"slices"
	"sync/atomic"
	"time"

	"repro/internal/dataset"
	"repro/internal/discovery"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/rfd"
)

// epochState is one immutable published generation of a session's
// compiled base. Everything a reader dereferences through it is frozen;
// successor epochs share structure (interner slabs, cache shards,
// index buckets) but never mutate it.
type epochState struct {
	// seq is the epoch number: 0 at construction, +1 per applied delta.
	seq uint64
	// shared is the compiled base instance of this epoch.
	shared *engine.Shared
	// index is the candidate index over sigma's LHS attributes, carried
	// from an artifact load (nil for freshly compiled sessions — the
	// Impute hot path does not consult it).
	index *engine.Index
	// sigma is the dependency set in force at this epoch.
	sigma rfd.Set
	// rec receives the retirement event.
	rec obs.Recorder

	pins       atomic.Int64
	superseded atomic.Bool
	retired    atomic.Bool
}

// pin takes a read reference on the current epoch, or returns nil for
// self-contained sessions. The recheck after the increment closes the
// race with a concurrent publish: if the epoch moved on while we were
// pinning, drop the stale pin and take the new epoch instead.
func (s *Session) pin() *epochState {
	for {
		ep := s.cur.Load()
		if ep == nil {
			return nil
		}
		ep.pins.Add(1)
		if s.cur.Load() == ep {
			return ep
		}
		ep.unpin()
	}
}

// unpin drops a read reference; the last reader off a superseded epoch
// retires it.
func (ep *epochState) unpin() {
	if ep.pins.Add(-1) == 0 && ep.superseded.Load() {
		ep.retire()
	}
}

// retire records the epoch's end of life exactly once. Memory is the
// GC's business; this is the accounting half of reclamation.
func (ep *epochState) retire() {
	if ep.retired.CompareAndSwap(false, true) {
		ep.rec.Add(obs.CtrEpochsRetired, 1)
	}
}

// Epoch returns the session's current epoch sequence number: 0 at
// construction (and always 0 for self-contained sessions), incremented
// by every applied delta.
func (s *Session) Epoch() uint64 {
	if ep := s.cur.Load(); ep != nil {
		return ep.seq
	}
	return 0
}

// CellUpdate assigns one value to one cell of the base instance, row
// and attribute addressed in the pre-delta numbering.
type CellUpdate struct {
	// Row is the base row in the current epoch's numbering.
	Row int
	// Attr is the attribute index.
	Attr int
	// Value is the new cell value; its kind must match the schema
	// (dataset.Null clears the cell).
	Value dataset.Value
}

// Delta is the one mutation surface of a live session: a batch of
// inserts, cell updates, and row deletes applied atomically by
// ApplyDelta. Row handles (Updates[i].Row, Deletes[i]) address the
// pre-delta epoch's numbering; the three groups apply as updates, then
// deletes, then inserts, so an update to a deleted row is legal and
// wasted, later updates to the same cell win, and duplicate deletes
// collapse silently. Do not mutate a served session's base Relation
// directly — every read path snapshots compiled state that direct
// mutation would silently diverge from.
type Delta struct {
	// Inserts appends tuples (schema arity, schema kinds) to the base.
	Inserts []dataset.Tuple
	// Updates assigns values to existing cells.
	Updates []CellUpdate
	// Deletes removes rows; surviving rows compact in order.
	Deletes []int
}

// Empty reports whether the delta mutates nothing.
func (d *Delta) Empty() bool {
	return len(d.Inserts) == 0 && len(d.Updates) == 0 && len(d.Deletes) == 0
}

// DeltaResult reports what one ApplyDelta published.
type DeltaResult struct {
	// Epoch is the new epoch's sequence number.
	Epoch uint64 `json:"epoch"`
	// Rows is the base instance's row count at the new epoch.
	Rows int `json:"rows"`
	// Inserted, Updated, Deleted count the applied mutations (Updated
	// excludes updates wasted on rows the same delta deleted; Deleted
	// excludes duplicate handles).
	Inserted int `json:"inserted"`
	Updated  int `json:"updated"`
	Deleted  int `json:"deleted"`
	// Rules is |Σ| after revalidation; SigmaDropped and SigmaTightened
	// are the repairs revalidation applied.
	Rules          int `json:"rules"`
	SigmaDropped   int `json:"sigma_dropped"`
	SigmaTightened int `json:"sigma_tightened"`
	// CompactedAttrs and InvalidatedCacheShards report the only state a
	// delta discards: densely re-interned attributes and the
	// distance-cache shards their entries lived in.
	CompactedAttrs         int `json:"compacted_attrs"`
	InvalidatedCacheShards int `json:"invalidated_cache_shards"`
	// IndexRebuilt is true when the candidate index could not be
	// maintained incrementally (false also when the session carries no
	// index).
	IndexRebuilt bool `json:"index_rebuilt"`
}

// validateDelta bounds- and kind-checks every mutation against the
// current epoch before anything is built, so a bad delta is rejected
// whole. It returns the delete mask and the distinct delete count.
func validateDelta(d *Delta, schema *dataset.Schema, n int) ([]bool, int, error) {
	if d.Empty() {
		return nil, 0, fmt.Errorf("core: delta has no mutations")
	}
	m := schema.Len()
	for i, u := range d.Updates {
		if u.Row < 0 || u.Row >= n {
			return nil, 0, fmt.Errorf("core: delta update %d: row %d outside base of %d rows", i, u.Row, n)
		}
		if u.Attr < 0 || u.Attr >= m {
			return nil, 0, fmt.Errorf("core: delta update %d: attr %d outside arity %d", i, u.Attr, m)
		}
		if v := u.Value; !v.IsNull() {
			want := schema.Attr(u.Attr).Kind
			if v.Kind() != want && !(v.Kind().Numeric() && want.Numeric()) {
				return nil, 0, fmt.Errorf("core: delta update %d: attribute %q expects %v, got %v",
					i, schema.Attr(u.Attr).Name, want, v.Kind())
			}
		}
	}
	var del []bool
	deleted := 0
	if len(d.Deletes) > 0 {
		del = make([]bool, n)
		for i, r := range d.Deletes {
			if r < 0 || r >= n {
				return nil, 0, fmt.Errorf("core: delta delete %d: row %d outside base of %d rows", i, r, n)
			}
			if !del[r] {
				del[r] = true
				deleted++
			}
		}
	}
	for i, t := range d.Inserts {
		if len(t) != m {
			return nil, 0, fmt.Errorf("core: delta insert %d: tuple arity %d != schema arity %d", i, len(t), m)
		}
	}
	return del, deleted, nil
}

// ApplyDelta atomically applies one batch of mutations to the session's
// base instance and publishes the result as a new epoch. In-flight and
// future Impute/Explain calls are never disturbed: each call pins one
// epoch for its whole duration, and the logical relation at every epoch
// is exactly what a from-scratch NewSession over the mutated relation
// would compile — imputations are byte-identical to that recompile.
//
// Σ is revalidated against the pairs the delta introduces through the
// discovery repair rule (the set may come back with dependencies
// tightened or dropped; Sigma() always returns the set in force).
// Writers are serialized; concurrency costs fall only on writers.
//
// Self-contained sessions (nil base) have no live instance and return
// an error. A cancelled context aborts before publication — the
// session then still serves the old epoch.
func (s *Session) ApplyDelta(ctx context.Context, d Delta) (*DeltaResult, error) {
	if ctx.Err() != nil {
		return nil, engine.Canceled(ctx)
	}
	s.applyMu.Lock()
	defer s.applyMu.Unlock()
	cur := s.cur.Load()
	if cur == nil {
		return nil, fmt.Errorf("core: ApplyDelta on a session without a base instance")
	}
	rec := s.im.opts.recorder()
	sp := obs.SpanFromContext(ctx).Child("apply_delta")
	defer sp.End()

	old := cur.shared.Relation()
	schema := old.Schema()
	n, m := old.Len(), schema.Len()
	del, deleted, err := validateDelta(&d, schema, n)
	if err != nil {
		return nil, err
	}

	// Build the next logical relation: updates on the pre-delta
	// numbering, then deletes (order-preserving compaction), then
	// inserts appended.
	buildStart := time.Now()
	buildSpan := sp.Child("delta_build")
	next := dataset.NewRelation(schema)
	newRow := make([]int, n)
	for i := 0; i < n; i++ {
		if del != nil && del[i] {
			newRow[i] = -1
			continue
		}
		newRow[i] = next.Len()
		next.MustAppend(old.Row(i).Clone())
	}
	updated := 0
	for _, u := range d.Updates {
		if newRow[u.Row] >= 0 {
			next.Set(newRow[u.Row], u.Attr, u.Value)
			updated++
		}
	}
	for i, t := range d.Inserts {
		if err := next.Append(t.Clone()); err != nil {
			return nil, fmt.Errorf("core: delta insert %d: %w", i, err)
		}
	}
	evolved, est, err := cur.shared.Evolve(next)
	if err != nil {
		return nil, err
	}
	buildSpan.End()
	rec.Time(obs.PhaseDeltaBuild, time.Since(buildStart))
	if ctx.Err() != nil {
		return nil, engine.Canceled(ctx)
	}

	// Revalidate Σ against the pairs the changed rows introduce, in the
	// new numbering. Deletes alone introduce no pairs.
	revalStart := time.Now()
	revalSpan := sp.Child("delta_revalidate")
	affected := make([]int, 0, len(d.Updates)+len(d.Inserts))
	for _, u := range d.Updates {
		if newRow[u.Row] >= 0 {
			affected = append(affected, newRow[u.Row])
		}
	}
	for i := range d.Inserts {
		affected = append(affected, n-deleted+i)
	}
	sigma, dropped, tightened := discovery.RevalidateRows(evolved.View(), cur.sigma, affected, s.im.opts.Workers)
	if revalSpan.Enabled() {
		revalSpan.Int("dropped", int64(dropped))
		revalSpan.Int("tightened", int64(tightened))
	}
	revalSpan.End()
	rec.Time(obs.PhaseDeltaRevalidate, time.Since(revalStart))
	if ctx.Err() != nil {
		return nil, engine.Canceled(ctx)
	}

	// Candidate-index maintenance: clone + incremental Insert when every
	// existing bucket provably survived (insert-only, no id remap, same
	// LHS attribute set), full rebuild otherwise. Sessions without an
	// index stay without one — the hot path never consults it.
	indexStart := time.Now()
	indexSpan := sp.Child("delta_index")
	var ix *engine.Index
	rebuilt := false
	if cur.index != nil {
		insertOnly := updated == 0 && len(d.Updates) == 0 && deleted == 0
		if insertOnly && est.CompactedAttrs == 0 &&
			slices.Equal(cur.index.LHSAttrs(), engine.LHSMask(m, sigma)) {
			ix = cur.index.CloneFor(evolved.View())
			for i := range d.Inserts {
				for a := 0; a < m; a++ {
					ix.Insert(n+i, a)
				}
			}
		} else {
			ix = engine.NewIndex(evolved.View(), sigma)
			rebuilt = true
		}
	}
	indexSpan.End()
	rec.Time(obs.PhaseDeltaIndex, time.Since(indexStart))

	ep := &epochState{
		seq:    cur.seq + 1,
		shared: evolved,
		index:  ix,
		sigma:  sigma,
		rec:    rec,
	}
	s.cur.Store(ep)
	cur.superseded.Store(true)
	if cur.pins.Load() == 0 {
		cur.retire()
	}

	rec.Add(obs.CtrDeltaApplied, 1)
	rec.Add(obs.CtrDeltaRowsInserted, int64(len(d.Inserts)))
	rec.Add(obs.CtrDeltaRowsUpdated, int64(updated))
	rec.Add(obs.CtrDeltaRowsDeleted, int64(deleted))
	rec.Add(obs.CtrDeltaSigmaDropped, int64(dropped))
	rec.Add(obs.CtrDeltaSigmaTightened, int64(tightened))
	rec.Add(obs.CtrDeltaCacheShardsInvalidated, int64(est.InvalidatedCacheShards))
	rec.Add(obs.CtrInternersCompacted, int64(est.CompactedAttrs))
	res := &DeltaResult{
		Epoch:                  ep.seq,
		Rows:                   evolved.Len(),
		Inserted:               len(d.Inserts),
		Updated:                updated,
		Deleted:                deleted,
		Rules:                  len(sigma),
		SigmaDropped:           dropped,
		SigmaTightened:         tightened,
		CompactedAttrs:         est.CompactedAttrs,
		InvalidatedCacheShards: est.InvalidatedCacheShards,
		IndexRebuilt:           rebuilt,
	}
	if sp.Enabled() {
		sp.Int("epoch", int64(ep.seq))
		sp.Int("inserted", int64(res.Inserted))
		sp.Int("updated", int64(res.Updated))
		sp.Int("deleted", int64(res.Deleted))
		sp.Int("rules", int64(res.Rules))
	}
	return res, nil
}

// sigmaAt returns the dependency set a pinned epoch serves (nil epoch =
// the constructor-time set of a self-contained session).
func (s *Session) sigmaAt(ep *epochState) rfd.Set {
	if ep != nil {
		return ep.sigma
	}
	return s.im.sigma
}
