// Package core implements RENUVER (RFD-based NUll ValuE Repairer), the
// paper's primary contribution: Algorithms 1-4 of Breve et al., EDBT 2022.
//
// Given a relation instance with missing values and a set Σ of RFDcs
// holding on it, RENUVER:
//
//	(a) pre-processes — collects the incomplete tuples r̂ and drops
//	    key-RFDcs from Σ (they cannot produce candidates);
//	(b) selects, per missing value t[A], the RFDcs with RHS A and clusters
//	    them by RHS threshold (tightest first);
//	(c) per cluster, finds plausible candidate tuples via the LHS
//	    constraints, ranks them by mean LHS distance (Eq. 2), and imputes
//	    with the closest candidate that keeps the instance semantically
//	    consistent (IS_FAULTLESS); imputed tuples immediately become donors
//	    for later missing values, and key-RFDcs are re-evaluated after
//	    every successful imputation (a key can turn non-key, Example 5.1).
//
// Observability: every run fills Result.Stats (counters plus per-phase
// wall clock) unconditionally, and an optional obs.Recorder — see
// WithRecorder — additionally receives the same events for cross-run
// aggregation (the `renuver serve -metrics-addr` mode). The default
// recorder is a no-op, so the hook costs library users nothing.
package core

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/par"
)

// ClusterOrder selects the order in which RHS-threshold clusters are
// tried for one missing value.
type ClusterOrder int

const (
	// AscendingThreshold tries the tightest RHS cluster first. This is
	// the order in the prose of Sec. 5 step (b) and the worked example of
	// Figure 1 (ρ⁰ before ρ¹ before ρ²), and the package default.
	AscendingThreshold ClusterOrder = iota
	// DescendingThreshold tries the loosest cluster first — the literal
	// reading of Algorithm 2 line 1. Exposed for the ablation study.
	DescendingThreshold
)

// VerifyMode selects which dependencies IS_FAULTLESS re-checks after a
// tentative imputation of attribute A.
type VerifyMode int

const (
	// VerifyLHS re-checks only the RFDcs with A on the LHS — the literal
	// Algorithm 4 (its line 1 selects φ with A ⊆ X).
	VerifyLHS VerifyMode = iota
	// VerifyBothSides additionally re-checks RFDcs with A as the RHS
	// attribute: imputing t[A] can also newly witness an RHS breach.
	// This is the full Definition 4.3 semantic-consistency guarantee.
	VerifyBothSides
	// VerifyOff skips verification entirely (ablation A1): the closest
	// candidate always wins.
	VerifyOff
)

// Options tunes the imputer.
//
// Defaulting rule (uniform across Options, discovery.Config, and the
// serve flags): the zero value of every field is the paper-faithful
// default, zero numeric values mean "pick the default" (serial scans,
// unlimited candidates), and negative numeric values are invalid —
// rejected by Validate and therefore by NewSession and the CLI at
// construction time, never silently clamped mid-run.
type Options struct {
	// ClusterOrder is the order RHS-threshold clusters are tried in.
	ClusterOrder ClusterOrder
	// Verify selects the IS_FAULTLESS behaviour.
	Verify VerifyMode
	// NoClustering disables the Λ partition (ablation A2): all RFDcs for
	// the attribute are treated as one flat cluster.
	NoClustering bool
	// NoRanking disables the distance sort of T_candidate (ablation A3):
	// candidates are tried in row order.
	NoRanking bool
	// NoKeyReevaluation disables Algorithm 1 line 14 (re-checking key
	// status after each imputation). Key-RFDcs then stay filtered with
	// their initial status for the whole run.
	NoKeyReevaluation bool
	// MaxCandidates, when positive, caps how many ranked candidates are
	// tried per cluster before moving on. Zero means unlimited.
	MaxCandidates int
	// Workers, when above 1, parallelizes the tuple scans (candidate
	// generation, verification, and the initial key-RFDc detection)
	// across that many goroutines. Results are bit-identical to the
	// serial run; the imputation loop itself stays sequential because
	// imputed tuples become donors for later cells.
	Workers int
	// NoIndex disables the donor index — the inverted value index on
	// equality-constrained (threshold 0) LHS attributes that lets
	// candidate generation skip donors that cannot satisfy any premise.
	// Results are identical either way.
	NoIndex bool
	// DonorShards, when above 1, splits the donor pool into that many
	// independent sub-pools: the candidate index becomes a scatter-gather
	// over per-band sub-indexes, and full donor sweeps scan the bands
	// concurrently and concatenate in band order. Imputations, Stats, and
	// traces are byte-identical to the unsharded run for any shard count;
	// only the per-shard obs counters (donor_shard_* on /metrics) see the
	// partitioning. 0 or 1 means the single-pool path.
	DonorShards int
	// Recorder receives pipeline events (counters, histograms, phase
	// timings) across runs. Nil means obs.Nop: Result.Stats is still
	// filled, but nothing is aggregated process-wide.
	Recorder obs.Recorder
	// Tracer receives per-cell decision traces (which donors were
	// considered, which RFDc vetoed a candidate, why a cell resolved the
	// way it did). Sampled cells also land in Result.Traces, queryable
	// with Result.Explain. Nil disables tracing entirely.
	Tracer obs.Tracer

	// donorStats accumulates per-sub-pool scatter-gather counters across
	// runs when DonorShards > 1. Attached by NewSession (so derived
	// sessions and Explain reruns feed the same accumulator) and surfaced
	// via Session.DonorShardStats; nil means no accumulation.
	donorStats *donorShardStats
}

// Validate rejects option values outside their documented domains, per
// the package defaulting rule: zero means default, negative is an
// error. Parallelism knobs share the par bounds (negatives and values
// beyond par.Max rejected); enum fields are checked against their
// defined values.
func (o *Options) Validate() error {
	if err := par.Check("core: Workers", o.Workers); err != nil {
		return err
	}
	if o.MaxCandidates < 0 {
		return fmt.Errorf("core: MaxCandidates must be >= 0, got %d", o.MaxCandidates)
	}
	if err := par.Check("core: DonorShards", o.DonorShards); err != nil {
		return err
	}
	if o.ClusterOrder != AscendingThreshold && o.ClusterOrder != DescendingThreshold {
		return fmt.Errorf("core: unknown ClusterOrder %d", o.ClusterOrder)
	}
	if o.Verify != VerifyLHS && o.Verify != VerifyBothSides && o.Verify != VerifyOff {
		return fmt.Errorf("core: unknown VerifyMode %d", o.Verify)
	}
	return nil
}

// recorder returns the configured Recorder, defaulting to the no-op.
func (o *Options) recorder() obs.Recorder {
	if o.Recorder == nil {
		return obs.Nop{}
	}
	return o.Recorder
}

// Option mutates Options; used by New.
type Option func(*Options)

// WithClusterOrder sets the cluster traversal order.
func WithClusterOrder(o ClusterOrder) Option { return func(op *Options) { op.ClusterOrder = o } }

// WithVerifyMode sets the IS_FAULTLESS behaviour.
func WithVerifyMode(m VerifyMode) Option { return func(op *Options) { op.Verify = m } }

// WithoutClustering flattens the Λ partition (ablation A2).
func WithoutClustering() Option { return func(op *Options) { op.NoClustering = true } }

// WithoutRanking keeps candidates in row order (ablation A3).
func WithoutRanking() Option { return func(op *Options) { op.NoRanking = true } }

// WithoutKeyReevaluation freezes key status at pre-processing time.
func WithoutKeyReevaluation() Option { return func(op *Options) { op.NoKeyReevaluation = true } }

// WithMaxCandidates caps the candidates tried per cluster.
func WithMaxCandidates(k int) Option { return func(op *Options) { op.MaxCandidates = k } }

// WithWorkers parallelizes the tuple scans across n goroutines.
func WithWorkers(n int) Option { return func(op *Options) { op.Workers = n } }

// WithoutIndex disables the donor index on equality-constrained LHS
// attributes.
func WithoutIndex() Option { return func(op *Options) { op.NoIndex = true } }

// WithDonorShards splits the donor pool into n independent sub-pools
// for scatter-gather candidate search. Results are byte-identical to
// the single-pool run.
func WithDonorShards(n int) Option { return func(op *Options) { op.DonorShards = n } }

// WithRecorder aggregates run events into r (typically an *obs.Metrics
// shared across runs). r must be safe for concurrent use when the same
// Imputer serves concurrent calls.
func WithRecorder(r obs.Recorder) Option { return func(op *Options) { op.Recorder = r } }

// WithTracer records per-cell decision traces into t (typically an
// *obs.RingTracer). Sampled cells additionally land in Result.Traces for
// Result.Explain. t must be safe for concurrent use when the same
// Imputer serves concurrent calls.
func WithTracer(t obs.Tracer) Option { return func(op *Options) { op.Tracer = t } }
