package core

import (
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/rfd"
)

func TestCandidateIndexNilSafety(t *testing.T) {
	var idx *engine.Index
	if _, ok := idx.CandidateRows(0, nil); ok {
		t.Error("nil index claimed candidate rows")
	}
	idx.Insert(0, 0) // must not panic
	if idx.Probes() != 0 {
		t.Error("nil index reported probes")
	}
}

func TestCandidateIndexEqualityProbe(t *testing.T) {
	rel := table2(t)
	// Cluster with a single equality-using dependency: φ5's premise needs
	// Phone(<=0), so only equal-phone donors are worth scanning.
	sigma := rfd.Set{rfd.MustParse("Name(<=8), Phone(<=0) -> City(<=9)", rel.Schema())}
	idx := engine.NewIndex(engine.Compile(rel), sigma)
	if idx == nil {
		t.Fatal("index not built")
	}
	// t6 (row 5) has phone 213/848-6677 -> candidate rows must be {4}.
	rows, ok := idx.CandidateRows(5, sigma)
	if !ok {
		t.Fatal("index did not cover the cluster")
	}
	if len(rows) != 1 || rows[0] != 4 {
		t.Errorf("candidate rows = %v, want [4]", rows)
	}
	// A tuple with a missing value on an LHS attribute contributes
	// nothing for that dependency (premise unsatisfiable).
	rows, ok = idx.CandidateRows(3, sigma) // t4's phone is missing
	if !ok || len(rows) != 0 {
		t.Errorf("unsatisfiable premise: rows = %v, ok = %v", rows, ok)
	}
}

// TestCandidateIndexThresholdProbe: unlike the retired threshold-0-only
// donor index, the generalized index also answers positive-threshold
// constraints (here via string length buckets), returning a sound
// superset of the rows that can satisfy the probed constraint.
func TestCandidateIndexThresholdProbe(t *testing.T) {
	rel := table2(t)
	sigma := rfd.Set{rfd.MustParse("Name(<=1) -> Phone(<=1)", rel.Schema())}
	v := engine.Compile(rel)
	idx := engine.NewIndex(v, sigma)
	if idx == nil {
		t.Fatal("index not built for threshold-only sigma")
	}
	name := rel.Schema().MustIndex("Name")
	for row := 0; row < rel.Len(); row++ {
		rows, ok := idx.CandidateRows(row, sigma)
		if !ok {
			continue // selectivity fallback is allowed, never wrong
		}
		member := make(map[int]bool, len(rows))
		for _, r := range rows {
			if r == row {
				t.Fatalf("row %d: candidate set contains the query row", row)
			}
			member[r] = true
		}
		// Soundness: every row satisfying the constraint is in the set.
		for j := 0; j < rel.Len(); j++ {
			if j == row {
				continue
			}
			if v.Within(name, row, j, 1) && !member[j] {
				t.Errorf("row %d: satisfying row %d missing from probe result", row, j)
			}
		}
	}
}

// TestCandidateIndexInsert: a committed imputation becomes probeable.
func TestCandidateIndexInsert(t *testing.T) {
	rel := table2(t)
	sigma := rfd.Set{rfd.MustParse("Name(<=8), Phone(<=0) -> City(<=9)", rel.Schema())}
	v := engine.Compile(rel)
	idx := engine.NewIndex(v, sigma)
	phone := rel.Schema().MustIndex("Phone")
	// Give t4 (row 3, missing phone) the shared Fenix phone; after Insert
	// it must show up in the equality probe from row 5.
	v.Set(3, phone, rel.Get(4, phone))
	idx.Insert(3, phone)
	rows, ok := idx.CandidateRows(5, sigma)
	if !ok {
		t.Fatal("index did not cover the cluster")
	}
	if len(rows) != 2 || rows[0] != 3 || rows[1] != 4 {
		t.Errorf("candidate rows after insert = %v, want [3 4]", rows)
	}
}

// TestIndexedImputeEquivalence: the index never changes results — on
// random instances and on the paper example, indexed and unindexed runs
// are bit-identical.
func TestIndexedImputeEquivalence(t *testing.T) {
	rel := table2(t)
	sigma := figure1Sigma(t, rel.Schema())
	withIdx, err := New(sigma).Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	without, err := New(sigma, WithoutIndex()).Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	if !withIdx.Relation.Equal(without.Relation) {
		t.Fatal("paper example: indexed run diverged")
	}

	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 120; trial++ {
		inst := randomInstance(rng)
		sg := randomSigma(rng, inst.Schema().Len())
		a, err := New(sg).Impute(inst)
		if err != nil {
			t.Fatal(err)
		}
		b, err := New(sg, WithoutIndex()).Impute(inst)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Relation.Equal(b.Relation) {
			t.Fatalf("trial %d: indexed run diverged", trial)
		}
		if len(a.Imputations) != len(b.Imputations) {
			t.Fatalf("trial %d: imputation counts differ", trial)
		}
		for i := range a.Imputations {
			if a.Imputations[i] != b.Imputations[i] {
				t.Fatalf("trial %d: imputation %d differs:\n%+v\n%+v",
					trial, i, a.Imputations[i], b.Imputations[i])
			}
		}
	}
}
