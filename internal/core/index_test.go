package core

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/rfd"
)

func TestDonorIndexNilSafety(t *testing.T) {
	var idx *donorIndex
	if _, ok := idx.lookup(0, dataset.NewString("x")); ok {
		t.Error("nil index claimed a lookup")
	}
	if _, ok := idx.candidateRows(nil, 0, nil); ok {
		t.Error("nil index claimed candidate rows")
	}
	idx.insert(0, 0, dataset.NewString("x")) // must not panic
}

func TestDonorIndexOnlyEqualityAttrsIndexed(t *testing.T) {
	rel := table2(t)
	sigma := figure1Sigma(t, rel.Schema())
	idx := newDonorIndex(rel, sigma)
	if idx == nil {
		t.Fatal("index not built despite threshold-0 constraints (Phone in φ1, φ5)")
	}
	phone := rel.Schema().MustIndex("Phone")
	name := rel.Schema().MustIndex("Name")
	if idx.rows[phone] == nil {
		t.Error("Phone (threshold 0 in φ1/φ5) not indexed")
	}
	if idx.rows[name] != nil {
		t.Error("Name (never threshold 0) indexed")
	}
	// Lookup correctness: the shared Fenix phone maps to rows 4 and 5.
	rows, ok := idx.lookup(phone, dataset.NewString("213/848-6677"))
	if !ok || len(rows) != 2 || rows[0] != 4 || rows[1] != 5 {
		t.Errorf("lookup = %v, %v", rows, ok)
	}
}

func TestDonorIndexNoEqualityConstraints(t *testing.T) {
	rel := table2(t)
	sigma := rfd.Set{rfd.MustParse("Name(<=4) -> Phone(<=1)", rel.Schema())}
	if idx := newDonorIndex(rel, sigma); idx != nil {
		t.Error("index built with no threshold-0 constraint")
	}
}

func TestDonorIndexInsertKeepsOrder(t *testing.T) {
	rel := table2(t)
	sigma := figure1Sigma(t, rel.Schema())
	idx := newDonorIndex(rel, sigma)
	phone := rel.Schema().MustIndex("Phone")
	// Insert a row out of order (smaller index than existing entries).
	idx.insert(1, phone, dataset.NewString("213/848-6677"))
	rows, _ := idx.lookup(phone, dataset.NewString("213/848-6677"))
	if len(rows) != 3 || rows[0] != 1 || rows[1] != 4 || rows[2] != 5 {
		t.Errorf("rows after insert = %v", rows)
	}
}

// TestIndexedImputeEquivalence: the index never changes results — on
// random instances and on the paper example, indexed and unindexed runs
// are bit-identical.
func TestIndexedImputeEquivalence(t *testing.T) {
	rel := table2(t)
	sigma := figure1Sigma(t, rel.Schema())
	withIdx, err := New(sigma).Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	without, err := New(sigma, WithoutIndex()).Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	if !withIdx.Relation.Equal(without.Relation) {
		t.Fatal("paper example: indexed run diverged")
	}

	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 120; trial++ {
		inst := randomInstance(rng)
		sg := randomSigma(rng, inst.Schema().Len())
		a, err := New(sg).Impute(inst)
		if err != nil {
			t.Fatal(err)
		}
		b, err := New(sg, WithoutIndex()).Impute(inst)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Relation.Equal(b.Relation) {
			t.Fatalf("trial %d: indexed run diverged", trial)
		}
		if len(a.Imputations) != len(b.Imputations) {
			t.Fatalf("trial %d: imputation counts differ", trial)
		}
		for i := range a.Imputations {
			if a.Imputations[i] != b.Imputations[i] {
				t.Fatalf("trial %d: imputation %d differs:\n%+v\n%+v",
					trial, i, a.Imputations[i], b.Imputations[i])
			}
		}
	}
}

func TestCandidateRowsSemantics(t *testing.T) {
	rel := table2(t)
	// Cluster with a single equality-using dependency: φ5's premise needs
	// Phone(<=0), so only equal-phone donors are worth scanning.
	sigma := rfd.Set{rfd.MustParse("Name(<=8), Phone(<=0) -> City(<=9)", rel.Schema())}
	idx := newDonorIndex(rel, sigma)
	// t6 (row 5) has phone 213/848-6677 -> candidate rows must be {4}.
	rows, ok := idx.candidateRows(rel, 5, sigma)
	if !ok {
		t.Fatal("index did not cover the cluster")
	}
	if len(rows) != 1 || rows[0] != 4 {
		t.Errorf("candidate rows = %v, want [4]", rows)
	}
	// A cluster containing a dependency without equality constraints
	// forces the full sweep.
	mixed := rfd.Set{sigma[0], rfd.MustParse("Name(<=4) -> City(<=9)", rel.Schema())}
	if _, ok := idx.candidateRows(rel, 5, mixed); ok {
		t.Error("cluster with non-equality dependency should fall back")
	}
	// A tuple with a missing value on the equality attribute contributes
	// nothing for that dependency (premise unsatisfiable).
	rows, ok = idx.candidateRows(rel, 3, sigma) // t4's phone is missing
	if !ok || len(rows) != 0 {
		t.Errorf("unsatisfiable premise: rows = %v, ok = %v", rows, ok)
	}
}
