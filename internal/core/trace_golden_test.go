package core

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// TestTraceJSONLGolden pins the exported JSONL trace schema: the paper's
// Table 2 run is fully deterministic, so — after normalizing wall-clock
// timestamps — the serialized trace must match testdata byte for byte.
// Any field rename, reorder, or kind change shows up as a diff here.
// Regenerate intentionally with: go test ./internal/core/ -run Golden -update-golden
func TestTraceJSONLGolden(t *testing.T) {
	rel := table2(t)
	tr := obs.NewRingTracer(0, 1)
	if _, err := New(figure1Sigma(t, rel.Schema()), WithTracer(tr)).Impute(rel); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, cell := range tr.Cells() {
		for _, ev := range cell {
			ev.UnixNano = 0 // wall clock is the only nondeterministic field
			if err := enc.Encode(ev); err != nil {
				t.Fatal(err)
			}
		}
	}

	golden := filepath.Join("testdata", "trace_table2.jsonl")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file missing (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace JSONL schema drifted from golden.\n--- got ---\n%s\n--- want ---\n%s",
			buf.Bytes(), want)
	}
}
