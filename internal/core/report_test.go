package core

import (
	"strings"
	"testing"

	"repro/internal/dataset"
)

func TestResultReport(t *testing.T) {
	rel := table2(t)
	sigma := figure1Sigma(t, rel.Schema())
	res, err := New(sigma).Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	report := res.Report(rel.Schema())
	for _, want := range []string{
		"imputed 4/4 cells, 0 left missing",
		`row 7, Phone <- "310-392-9025"`,
		"attempt 3",
		`row 6, City <- "Hollywood"`,
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report lacks %q:\n%s", want, report)
		}
	}
}

func TestResultReportUnimputedAndDonorSource(t *testing.T) {
	target, err := New(nil).Impute(table2(t))
	if err != nil {
		t.Fatal(err)
	}
	report := target.Report(table2(t).Schema())
	if !strings.Contains(report, "left missing") {
		t.Errorf("report lacks unimputed lines:\n%s", report)
	}
	// Donor-source annotation appears for pool imputations.
	rel := table2(t)
	sigma := figure1Sigma(t, rel.Schema())
	res, err := New(sigma).ImputeWithDonors(rel.Head(7), []*dataset.Relation{rel})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report(rel.Schema())
	if len(res.Imputations) > 0 {
		hasPool := false
		for _, imp := range res.Imputations {
			if imp.DonorSource >= 0 {
				hasPool = true
			}
		}
		if hasPool && !strings.Contains(rep, "donor dataset") {
			t.Errorf("pool provenance missing:\n%s", rep)
		}
	}
}
