package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/rfd"
)

// Imputer runs the RENUVER imputation process for one Σ and one Options
// configuration. It is stateless across Impute calls and safe to reuse.
type Imputer struct {
	sigma rfd.Set
	opts  Options
}

// New returns an Imputer over Σ with the given options applied to the
// paper-faithful defaults.
func New(sigma rfd.Set, opts ...Option) *Imputer {
	im := &Imputer{sigma: sigma}
	for _, o := range opts {
		o(&im.opts)
	}
	return im
}

// Imputation records one successfully imputed cell with its provenance.
type Imputation struct {
	Cell  dataset.Cell  // the imputed position
	Value dataset.Value // the value taken from the donor
	Donor int           // row index of the donor tuple t_j
	// DonorSource is -1 for the target instance itself; 0.. indexes the
	// donor pool when the multi-dataset extension (ImputeWithDonors) was
	// used.
	DonorSource      int
	Distance         float64 // dist_min of the winning candidate (Eq. 2)
	ClusterThreshold float64 // RHS threshold of the cluster that produced it
	Attempt          int     // how many ranked candidates were tried (1 = first)
}

// PhaseTimes breaks one run's wall clock into the pipeline phases the
// paper's cost model names: candidate retrieval and ranking (Algorithm 3
// + Eq. 2) and IS_FAULTLESS verification (Algorithm 4), plus the
// bookkeeping around them. Phases do not sum to Total: the loop glue and
// result assembly are unattributed.
type PhaseTimes struct {
	// Preprocess is key-RFDc detection plus the donor-index build.
	Preprocess time.Duration
	// CandidateSearch is the donor scans of Algorithm 3.
	CandidateSearch time.Duration
	// Ranking is the distance sort of T_candidate.
	Ranking time.Duration
	// Verify is IS_FAULTLESS across all tentative imputations.
	Verify time.Duration
	// KeyReeval is the post-imputation key re-evaluation (Alg. 1 l. 14).
	KeyReeval time.Duration
	// Total is the whole run, entry to return.
	Total time.Duration
}

// Stats aggregates counters over one Impute run.
type Stats struct {
	MissingCells        int // cells that were null on input
	Imputed             int // cells successfully imputed
	Unimputed           int // cells left null
	KeyRFDs             int // RFDcs filtered as keys during pre-processing
	DonorsScanned       int // donor tuples examined during candidate search
	CandidatesEvaluated int // (tuple, cluster) candidate tuples scored
	DonorsRanked        int // candidates that entered the distance sort
	CandidatesTried     int // tentative imputations attempted
	FaultlessChecks     int // IS_FAULTLESS invocations
	VerifyRejections    int // tentative imputations rejected by IS_FAULTLESS
	ClustersScanned     int // clusters examined across all missing values
	KeyFlips            int // key-RFDcs that became non-key mid-run
	IndexHits           int // candidate scans answered by the donor index
	IndexMisses         int // scans that fell back to the full sweep despite an index
	EngineCacheHits     int // engine distance-cache lookups answered from memo
	EngineCacheMisses   int // engine distance-cache lookups that computed fresh
	EngineIndexProbes   int // engine candidate-index probes issued
	// ImputedByAttr counts successful imputations per attribute position
	// (len = schema arity; nil when the run imputed nothing).
	ImputedByAttr []int
	// Phases is the per-phase wall-clock breakdown.
	Phases PhaseTimes
}

// countImputed attributes one successful imputation to its attribute.
func (s *Stats) countImputed(attr, arity int) {
	if s.ImputedByAttr == nil {
		s.ImputedByAttr = make([]int, arity)
	}
	s.ImputedByAttr[attr]++
}

// publishStats forwards one run's counters and phase timings to a
// recorder, as a single batch so the hot loops never pay interface
// dispatch per event.
func publishStats(rec obs.Recorder, s *Stats) {
	if rec == nil || !rec.Enabled() {
		return
	}
	rec.Add(obs.CtrMissingCells, int64(s.MissingCells))
	rec.Add(obs.CtrImputations, int64(s.Imputed))
	rec.Add(obs.CtrDonorsScanned, int64(s.DonorsScanned))
	rec.Add(obs.CtrCandidatesEvaluated, int64(s.CandidatesEvaluated))
	rec.Add(obs.CtrDonorsRanked, int64(s.DonorsRanked))
	rec.Add(obs.CtrCandidatesTried, int64(s.CandidatesTried))
	rec.Add(obs.CtrFaultlessChecks, int64(s.FaultlessChecks))
	rec.Add(obs.CtrFaultlessFailures, int64(s.VerifyRejections))
	rec.Add(obs.CtrClustersScanned, int64(s.ClustersScanned))
	rec.Add(obs.CtrKeyFlips, int64(s.KeyFlips))
	rec.Add(obs.CtrIndexHits, int64(s.IndexHits))
	rec.Add(obs.CtrIndexMisses, int64(s.IndexMisses))
	rec.Add(obs.CtrEngineCacheHits, int64(s.EngineCacheHits))
	rec.Add(obs.CtrEngineCacheMisses, int64(s.EngineCacheMisses))
	rec.Add(obs.CtrEngineIndexProbes, int64(s.EngineIndexProbes))
	rec.Time(obs.PhasePreprocess, s.Phases.Preprocess)
	rec.Time(obs.PhaseCandidateSearch, s.Phases.CandidateSearch)
	rec.Time(obs.PhaseRanking, s.Phases.Ranking)
	rec.Time(obs.PhaseVerify, s.Phases.Verify)
	rec.Time(obs.PhaseKeyReeval, s.Phases.KeyReeval)
	rec.Time(obs.PhaseTotal, s.Phases.Total)
}

// Result is the outcome of one Impute run.
type Result struct {
	// Relation is the imputed instance r' (a clone; the input is not
	// mutated).
	Relation *dataset.Relation
	// Imputations lists the filled cells in imputation order.
	Imputations []Imputation
	// Unimputed lists the cells left missing because no candidate passed.
	Unimputed []dataset.Cell
	// Stats carries the run counters.
	Stats Stats
	// Traces holds the per-cell decision traces collected for the cells
	// the run's Tracer sampled (nil without WithTracer). Query with
	// Explain / ExplainText.
	Traces map[dataset.Cell][]obs.TraceEvent
}

// ImputedValue returns the imputation record for a cell, if that cell was
// filled during the run.
func (res *Result) ImputedValue(c dataset.Cell) (Imputation, bool) {
	for _, imp := range res.Imputations {
		if imp.Cell == c {
			return imp, true
		}
	}
	return Imputation{}, false
}

// validateSigma rejects dependencies referencing attributes outside the
// schema.
func validateSigma(sigma rfd.Set, m int) error {
	for _, dep := range sigma {
		if dep.RHS.Attr >= m {
			return fmt.Errorf("core: RFD references attribute %d, schema has %d", dep.RHS.Attr, m)
		}
		for _, c := range dep.LHS {
			if c.Attr >= m {
				return fmt.Errorf("core: RFD references attribute %d, schema has %d", c.Attr, m)
			}
		}
	}
	return nil
}

// Impute runs RENUVER (Algorithm 1) on the instance and returns the
// imputed clone. The input relation is never mutated. It fails if an RFDc
// in Σ references an attribute outside the relation's schema.
//
// The RFDc selection step (Algorithm 1, lines 7-10) is folded into the
// imputation loop: Σ'_A and its Λ clusters are derived from the *current*
// Σ' for each missing value, so that key-RFDcs freed by earlier
// imputations (line 14, Example 5.1) immediately become available.
func (im *Imputer) Impute(rel *dataset.Relation) (*Result, error) {
	return im.ImputeContext(context.Background(), rel)
}

// clustersFor builds Λ_Σ'_A for the attribute under the configured
// ordering and clustering options.
func (im *Imputer) clustersFor(sigmaPrime rfd.Set, attr int) []rfd.Cluster {
	forA := sigmaPrime.ForRHS(attr)
	if len(forA) == 0 {
		return nil
	}
	if im.opts.NoClustering {
		// Ablation A2: one flat cluster holding every RFDc for A.
		maxTh := forA[0].RHSThreshold()
		for _, dep := range forA[1:] {
			if th := dep.RHSThreshold(); th > maxTh {
				maxTh = th
			}
		}
		return []rfd.Cluster{{Threshold: maxTh, RFDs: forA}}
	}
	clusters := rfd.ClusterByRHSThreshold(forA)
	if im.opts.ClusterOrder == DescendingThreshold {
		for i, j := 0, len(clusters)-1; i < j; i, j = i+1, j-1 {
			clusters[i], clusters[j] = clusters[j], clusters[i]
		}
	}
	return clusters
}

// candidate is one entry of T_candidate: a donor row and its dist_min.
type candidate struct {
	row  int
	dist float64
}

// imputeMissingValue is Algorithm 2. It returns true when the cell was
// imputed, and a non-nil error when the context expired mid-cell — the
// working relation is then left consistent (any tentative value was
// reverted) but the cell unresolved. idx may be nil (no donor index
// available). m is the run goroutine's matcher over the compiled view
// of the working relation (plus, for the multi-dataset extension, the
// donor pool): candidate rows are flat view indices.
func (im *Imputer) imputeMissingValue(ctx context.Context, m *engine.Matcher, row, attr int,
	sigmaPrime rfd.Set, clusters []rfd.Cluster, res *Result, idx donorIndex, cell obs.Span) (bool, error) {

	rec := im.opts.recorder()
	eng := m.View()
	work := eng.Relation()
	ct := obs.StartCell(im.opts.Tracer, row, attr)
	if ct != nil {
		ct.Add(obs.CellStarted(len(clusters)))
		defer res.addTrace(dataset.Cell{Row: row, Attr: attr}, ct)
	}
	anyCandidate := false
	for _, cluster := range clusters {
		if ctx.Err() != nil {
			return false, engine.Canceled(ctx)
		}
		res.Stats.ClustersScanned++
		if ct != nil {
			ct.Add(obs.RuleSelected(cluster.Threshold, formatRules(cluster.RFDs, work.Schema())))
		}
		searchStart := time.Now()
		searchSpan := cell.Child("candidate_search")
		var donorPool int
		var cands []candidate
		if rows, ok := candidateRowsOf(idx, row, cluster.RFDs); ok {
			res.Stats.IndexHits++
			res.Stats.DonorsScanned += len(rows)
			donorPool = len(rows)
			cands = findCandidateTuplesIndexed(ctx, m, rows, row, attr, cluster.RFDs)
		} else {
			if idx != nil {
				res.Stats.IndexMisses++
			}
			res.Stats.DonorsScanned += eng.Len() - 1
			donorPool = eng.Len() - 1
			switch {
			case im.opts.DonorShards > 1:
				cands = findCandidateTuplesSharded(ctx, m, row, attr, cluster.RFDs,
					im.opts.DonorShards, im.opts.donorStats, rec)
			case im.opts.Workers > 1:
				cands = findCandidateTuplesParallel(ctx, m, row, attr, cluster.RFDs, im.opts.Workers)
			default:
				cands = findCandidateTuples(ctx, m, row, attr, cluster.RFDs)
			}
		}
		if searchSpan.Enabled() {
			searchSpan.Int("donor_pool", int64(donorPool))
			searchSpan.Int("candidates", int64(len(cands)))
			searchSpan.End()
		}
		res.Stats.Phases.CandidateSearch += time.Since(searchStart)
		if ctx.Err() != nil {
			// The scan may have returned early with a partial candidate
			// list; drop it rather than rank and impute from it.
			return false, engine.Canceled(ctx)
		}
		res.Stats.CandidatesEvaluated += len(cands)
		if rec.Enabled() {
			rec.Observe(obs.HistCandidatesPerCell, float64(len(cands)))
		}
		if len(cands) == 0 {
			continue
		}
		anyCandidate = true
		if !im.opts.NoRanking {
			res.Stats.DonorsRanked += len(cands)
			rankStart := time.Now()
			rankSpan := cell.Child("ranking")
			// Ascending dist; ties broken by flat row index, which orders
			// target rows before donor-pool rows — the same (source, row)
			// tiebreak as before.
			sort.Slice(cands, func(i, j int) bool {
				if cands[i].dist != cands[j].dist {
					return cands[i].dist < cands[j].dist
				}
				return cands[i].row < cands[j].row
			})
			if rankSpan.Enabled() {
				rankSpan.Int("ranked", int64(len(cands)))
				rankSpan.End()
			}
			res.Stats.Phases.Ranking += time.Since(rankStart)
		}
		traceDonorEvents(ct, eng, row, cluster.RFDs, len(cands),
			func(k int) (int, float64) {
				return cands[k].row, cands[k].dist
			})
		limit := len(cands)
		if im.opts.MaxCandidates > 0 && im.opts.MaxCandidates < limit {
			limit = im.opts.MaxCandidates
		}
		verifySpan := cell.Child("verify")
		for k := 0; k < limit; k++ {
			if ctx.Err() != nil {
				verifySpan.End()
				return false, engine.Canceled(ctx)
			}
			cand := cands[k]
			source, donorRow := eng.SourceOf(cand.row)
			value := eng.Value(cand.row, attr)
			eng.Set(row, attr, value) // tentative t[A] <- t_j[A]
			res.Stats.CandidatesTried++
			res.Stats.FaultlessChecks++
			verifyStart := time.Now()
			var faultless bool
			if ct != nil {
				// Traced cells take the serial witness-reporting verifier:
				// the violated RFDc and witness row are part of the trace,
				// and per-cell serial verification keeps the event order
				// deterministic. Sampling keeps this affordable.
				ok, violated, witness := im.isFaultlessWitness(ctx, m, row, attr, sigmaPrime)
				faultless = ok
				ct.Add(obs.FaultlessVerdict(donorRow, k+1, ok))
				if !ok && violated != nil {
					// violated is nil when the verifier was aborted by an
					// expired context: no witness to report, and the
					// ctx check below discards the attempt anyway.
					ct.Add(obs.CandidateRejected(donorRow, source, k+1,
						violated.Format(work.Schema()), witness))
				}
			} else {
				faultless = im.isFaultlessParallel(ctx, m, row, attr, sigmaPrime)
			}
			res.Stats.Phases.Verify += time.Since(verifyStart)
			if ctx.Err() != nil {
				// A verdict reached under an expired context is not
				// trusted: revert the tentative value and bail.
				eng.Set(row, attr, dataset.Null)
				verifySpan.End()
				return false, engine.Canceled(ctx)
			}
			if faultless {
				res.Imputations = append(res.Imputations, Imputation{
					Cell:             dataset.Cell{Row: row, Attr: attr},
					Value:            value,
					Donor:            donorRow,
					DonorSource:      source,
					Distance:         cand.dist,
					ClusterThreshold: cluster.Threshold,
					Attempt:          k + 1,
				})
				res.Stats.countImputed(attr, work.Schema().Len())
				if rec.Enabled() {
					rec.Observe(obs.HistAttemptsPerImputation, float64(k+1))
				}
				ct.Add(obs.CellResolved(donorRow, source, value.String(), cand.dist, k+1))
				if verifySpan.Enabled() {
					verifySpan.Int("attempts", int64(k+1))
					verifySpan.Int("faultless", 1)
				}
				verifySpan.End()
				return true, nil
			}
			res.Stats.VerifyRejections++
			eng.Set(row, attr, dataset.Null) // revert
		}
		if verifySpan.Enabled() {
			verifySpan.Int("attempts", int64(limit))
			verifySpan.Int("faultless", 0)
		}
		verifySpan.End()
	}
	if ct != nil {
		note := "no plausible candidate tuple in any cluster"
		if anyCandidate {
			note = "every ranked candidate failed IS_FAULTLESS"
		}
		ct.Add(obs.CellAbandoned(note))
	}
	return false, nil
}

// findCandidateTuples is Algorithm 3: every tuple t_j ≠ t with a value on
// A whose distance pattern against t satisfies the LHS of at least one
// RFDc in the cluster becomes a candidate, scored with the minimum mean
// LHS distance (Eq. 2) over the matching RFDcs. The scan covers every
// flat row of the view — the working relation plus, in the
// multi-dataset extension, the donor pool. The context is checked every
// engine.CheckEvery rows; an expired context makes the scan return
// early with a partial list the caller must discard.
func findCandidateTuples(ctx context.Context, m *engine.Matcher, row, attr int, deps rfd.Set) []candidate {
	v := m.View()
	var cands []candidate
	for j := 0; j < v.Len(); j++ {
		if j%engine.CheckEvery == 0 && ctx.Err() != nil {
			return cands
		}
		if j == row {
			continue
		}
		if v.IsNull(j, attr) {
			continue
		}
		if d, ok := m.DistMin(deps, row, j); ok {
			cands = append(cands, candidate{row: j, dist: d})
		}
	}
	return cands
}

// findCandidateTuplesIndexed is findCandidateTuples restricted to the
// index-provided row set. Results are identical to the full scan because
// every donor outside the set fails all premises.
func findCandidateTuplesIndexed(ctx context.Context, m *engine.Matcher, rows []int, row, attr int, deps rfd.Set) []candidate {
	v := m.View()
	var cands []candidate
	for k, j := range rows {
		if k%engine.CheckEvery == 0 && ctx.Err() != nil {
			return cands
		}
		if v.IsNull(j, attr) {
			continue
		}
		if d, ok := m.DistMin(deps, row, j); ok {
			cands = append(cands, candidate{row: j, dist: d})
		}
	}
	return cands
}

// isFaultless is Algorithm 4: after tentatively imputing t[A], check that
// no tuple pair (t, t_i) witnesses a violation of a dependency that
// constrains A. Under VerifyLHS (the literal Algorithm 4) only RFDcs with
// A on the LHS are re-checked; VerifyBothSides also re-checks RFDcs with
// A as RHS attribute, giving the full Definition 4.3 guarantee.
func (im *Imputer) isFaultless(ctx context.Context, m *engine.Matcher, row, attr int, sigmaPrime rfd.Set) bool {
	ok, _, _ := im.isFaultlessWitness(ctx, m, row, attr, sigmaPrime)
	return ok
}

// isFaultlessWitness is isFaultless with provenance: on rejection it also
// returns the violated dependency and the row of the witness tuple t_i —
// the two facts a decision trace needs to justify a CandidateRejected.
// Verification scans only the target rows of the view: semantic
// consistency per Definition 4.3 concerns the target instance, never the
// donor pool.
func (im *Imputer) isFaultlessWitness(ctx context.Context, m *engine.Matcher, row, attr int, sigmaPrime rfd.Set) (bool, *rfd.RFD, int) {
	if im.opts.Verify == VerifyOff {
		return true, nil, -1
	}
	relevant := im.relevantForVerify(sigmaPrime, attr)
	if len(relevant) == 0 {
		return true, nil, -1
	}
	for i := 0; i < m.View().TargetLen(); i++ {
		if i%engine.CheckEvery == 0 && ctx.Err() != nil {
			// No verdict under an expired context; the caller re-checks
			// ctx and discards whatever this returns.
			return false, nil, -1
		}
		if i == row {
			continue
		}
		for _, dep := range relevant {
			if m.Violates(dep, row, i) {
				return false, dep, i
			}
		}
	}
	return true, nil, -1
}

// relevantForVerify selects the dependencies IS_FAULTLESS must re-check
// after imputing attr, per the configured verification mode.
func (im *Imputer) relevantForVerify(sigmaPrime rfd.Set, attr int) rfd.Set {
	var relevant rfd.Set
	for _, dep := range sigmaPrime {
		if dep.HasLHSAttr(attr) || (im.opts.Verify == VerifyBothSides && dep.RHS.Attr == attr) {
			relevant = append(relevant, dep)
		}
	}
	return relevant
}
