package core

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/rfd"
)

// table2 builds the paper's Table 2 sample instance.
func table2(t testing.TB) *dataset.Relation {
	t.Helper()
	rel, err := dataset.ReadCSVString(`Name,City,Phone,Type,Class
Granita,Malibu,310/456-0488,Californian,6
Chinois Main,LA,310-392-9025,French,5
Citrus,Los Angeles,213/857-0034,Californian,6
Citrus,Los Angeles,,Californian,6
Fenix,Hollywood,213/848-6677,,5
Fenix Argyle,,213/848-6677,French (new),5
C. Main,Los Angeles,,French,5
`)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

// figure1Sigma returns φ1..φ7 of Figure 1.
func figure1Sigma(t testing.TB, schema *dataset.Schema) rfd.Set {
	t.Helper()
	specs := []string{
		"Name(<=8), Phone(<=0), Class(<=1) -> Type(<=0)", // φ1
		"Class(<=0) -> Type(<=5)",                        // φ2
		"City(<=2) -> Phone(<=2)",                        // φ3
		"Name(<=4) -> Phone(<=1)",                        // φ4
		"Name(<=8), Phone(<=0) -> City(<=9)",             // φ5
		"Name(<=6), City(<=9) -> Phone(<=0)",             // φ6
		"Phone(<=1) -> Class(<=0)",                       // φ7
	}
	var out rfd.Set
	for _, s := range specs {
		out = append(out, rfd.MustParse(s, schema))
	}
	return out
}

func cellValue(t *testing.T, res *Result, rel *dataset.Relation, attrName string, row int) dataset.Value {
	t.Helper()
	return res.Relation.Get(row, rel.Schema().MustIndex(attrName))
}

// TestPaperWorkedExample replays the full Figure 1 / Sec. 5 walk-through:
// the four missing values of Table 2 are imputed in row-major order and
// every outcome the paper derives must hold.
func TestPaperWorkedExample(t *testing.T) {
	rel := table2(t)
	im := New(figure1Sigma(t, rel.Schema()))
	res, err := im.Impute(rel)
	if err != nil {
		t.Fatal(err)
	}

	// t4[Phone] <- t3[Phone] (Example 5.1's premise).
	if got := cellValue(t, res, rel, "Phone", 3); got.Str() != "213/857-0034" {
		t.Errorf("t4[Phone] = %q, want 213/857-0034", got.Str())
	}
	// t6[City] <- t5[City] = Hollywood (Example 4.6).
	if got := cellValue(t, res, rel, "City", 5); got.Str() != "Hollywood" {
		t.Errorf("t6[City] = %q, want Hollywood", got.Str())
	}
	// t7[Phone]: t3 is closest (dist 3, Example 5.8) but violates
	// Phone(<=1)->Class(<=0) (Example 5.9); t2's phone wins (Sec. 5 text).
	if got := cellValue(t, res, rel, "Phone", 6); got.Str() != "310-392-9025" {
		t.Errorf("t7[Phone] = %q, want 310-392-9025 (t2's phone after t3 is rejected)", got.Str())
	}
	// t5[Type] <- t6[Type] via φ1 (the only tuple with equal phone).
	if got := cellValue(t, res, rel, "Type", 4); got.Str() != "French (new)" {
		t.Errorf("t5[Type] = %q, want French (new)", got.Str())
	}

	if res.Stats.Imputed != 4 || res.Stats.Unimputed != 0 {
		t.Errorf("stats = %+v, want 4 imputed / 0 unimputed", res.Stats)
	}
	if res.Stats.VerifyRejections == 0 {
		t.Error("expected at least one verification rejection (t3's phone for t7)")
	}
	// Input must be untouched.
	if !rel.Get(3, rel.Schema().MustIndex("Phone")).IsNull() {
		t.Error("input relation was mutated")
	}
}

func TestImputationProvenance(t *testing.T) {
	rel := table2(t)
	im := New(figure1Sigma(t, rel.Schema()))
	res, err := im.Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	phone := rel.Schema().MustIndex("Phone")
	imp, ok := res.ImputedValue(dataset.Cell{Row: 6, Attr: phone})
	if !ok {
		t.Fatal("t7[Phone] not recorded")
	}
	if imp.Donor != 1 {
		t.Errorf("t7[Phone] donor = t%d, want t2 (row 1)", imp.Donor+1)
	}
	if imp.Distance != 7.5 { // Example 5.8: dist(t2,t7) = 7.5
		t.Errorf("t7[Phone] distance = %v, want 7.5", imp.Distance)
	}
	if imp.ClusterThreshold != 0 { // found in ρ⁰ via φ6
		t.Errorf("t7[Phone] cluster threshold = %v, want 0", imp.ClusterThreshold)
	}
	if imp.Attempt < 2 {
		t.Errorf("t7[Phone] attempt = %d, want >= 2 (t3-like donors rejected first)", imp.Attempt)
	}
	if _, ok := res.ImputedValue(dataset.Cell{Row: 0, Attr: 0}); ok {
		t.Error("non-missing cell reported as imputed")
	}
}

func TestImputedTupleBecomesDonor(t *testing.T) {
	// Sec. 4: "an imputed tuple t could itself become a candidate tuple
	// for imputing another tuple". Build an instance where the only viable
	// donor for the second missing value is a tuple imputed first.
	rel2, err := dataset.ReadCSVString(`A,B,C
k1,v1,w1
k1,,w1
,v1,w1
`)
	if err != nil {
		t.Fatal(err)
	}
	schema := rel2.Schema()
	sigma := rfd.Set{
		rfd.MustParse("A(<=0) -> B(<=0)", schema), // imputes row1.B from row0
		rfd.MustParse("B(<=0), C(<=0) -> A(<=0)", schema),
	}
	res, err := New(sigma).Impute(rel2)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Relation.Get(1, 1); got.Str() != "v1" {
		t.Fatalf("row1.B = %q, want v1", got.Str())
	}
	// row2.A needs a donor pair matching on B and C; row1 matches only
	// after its B was imputed (row0 matches too — both donate "k1").
	if got := res.Relation.Get(2, 0); got.Str() != "k1" {
		t.Errorf("row2.A = %q, want k1 via chained imputation", got.Str())
	}
}

func TestKeyRFDFreedMidRun(t *testing.T) {
	// Example 5.1: an imputation can turn a key-RFDc into a usable one.
	// D is only imputable via φk: A(<=0),B(<=0) -> D(<=0), which is key at
	// start because row1.B is missing; imputing row1.B via φb first frees
	// φk, whose candidates then fill row1.D.
	rel, err := dataset.ReadCSVString(`A,B,C,D
x,y,c1,d1
x,,c1,
z,q,c2,d2
`)
	if err != nil {
		t.Fatal(err)
	}
	schema := rel.Schema()
	phiB := rfd.MustParse("C(<=0) -> B(<=0)", schema)
	phiK := rfd.MustParse("A(<=0), B(<=0) -> D(<=0)", schema)
	if !phiK.IsKey(rel) {
		t.Fatal("precondition: φk key on input")
	}
	res, err := New(rfd.Set{phiB, phiK}).Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Relation.Get(1, 1); got.Str() != "y" {
		t.Fatalf("row1.B = %q, want y", got.Str())
	}
	if got := res.Relation.Get(1, 3); got.Str() != "d1" {
		t.Errorf("row1.D = %q, want d1 (φk freed mid-run)", got.Str())
	}
	if res.Stats.KeyFlips == 0 {
		t.Error("expected a key flip to be recorded")
	}
	if res.Stats.KeyRFDs != 1 {
		t.Errorf("KeyRFDs = %d, want 1 (φk initially key)", res.Stats.KeyRFDs)
	}
}

func TestKeyReevaluationDisabled(t *testing.T) {
	rel, err := dataset.ReadCSVString(`A,B,C,D
x,y,c1,d1
x,,c1,
z,q,c2,d2
`)
	if err != nil {
		t.Fatal(err)
	}
	schema := rel.Schema()
	sigma := rfd.Set{
		rfd.MustParse("C(<=0) -> B(<=0)", schema),
		rfd.MustParse("A(<=0), B(<=0) -> D(<=0)", schema),
	}
	res, err := New(sigma, WithoutKeyReevaluation()).Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Relation.Get(1, 3).IsNull() {
		t.Error("row1.D imputed although key re-evaluation is off")
	}
	if res.Stats.KeyFlips != 0 {
		t.Errorf("KeyFlips = %d, want 0", res.Stats.KeyFlips)
	}
}

func TestUnimputableLeftMissing(t *testing.T) {
	// No RFD has B as RHS -> the missing B must stay missing.
	rel, err := dataset.ReadCSVString(`A,B
x,1
x,
`)
	if err != nil {
		t.Fatal(err)
	}
	sigma := rfd.Set{rfd.MustParse("B(<=0) -> A(<=0)", rel.Schema())}
	res, err := New(sigma).Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Imputed != 0 || res.Stats.Unimputed != 1 {
		t.Errorf("stats = %+v, want 0/1", res.Stats)
	}
	if len(res.Unimputed) != 1 || res.Unimputed[0] != (dataset.Cell{Row: 1, Attr: 1}) {
		t.Errorf("Unimputed = %v", res.Unimputed)
	}
}

func TestVerificationBlocksAllCandidates(t *testing.T) {
	// The only candidate value violates a dependency with the imputed
	// attribute on the LHS -> the cell must stay missing (Sec. 4: "it is
	// better to leave t[A] unimputed").
	rel, err := dataset.ReadCSVString(`A,B,C
x,b1,1
x,,2
y,b1,9
`)
	if err != nil {
		t.Fatal(err)
	}
	schema := rel.Schema()
	sigma := rfd.Set{
		rfd.MustParse("A(<=0) -> B(<=0)", schema), // candidate: row0's b1
		rfd.MustParse("B(<=0) -> C(<=1)", schema), // but then rows 1,2 share B with C gap 7
	}
	res, err := New(sigma).Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Relation.Get(1, 1).IsNull() {
		t.Errorf("row1.B = %v, want missing (all candidates faulty)", res.Relation.Get(1, 1))
	}
	if res.Stats.VerifyRejections == 0 {
		t.Error("expected rejections recorded")
	}
}

func TestVerifyOffAcceptsFirstCandidate(t *testing.T) {
	rel, err := dataset.ReadCSVString(`A,B,C
x,b1,1
x,,2
y,b1,9
`)
	if err != nil {
		t.Fatal(err)
	}
	schema := rel.Schema()
	sigma := rfd.Set{
		rfd.MustParse("A(<=0) -> B(<=0)", schema),
		rfd.MustParse("B(<=0) -> C(<=1)", schema),
	}
	res, err := New(sigma, WithVerifyMode(VerifyOff)).Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Relation.Get(1, 1); got.Str() != "b1" {
		t.Errorf("row1.B = %v, want b1 under VerifyOff", got)
	}
}

func TestVerifyBothSidesCatchesRHSBreach(t *testing.T) {
	// Imputing B can newly witness a violation of φ with B on the RHS:
	// rows 1 and 2 share A (so A(<=0) -> B(<=0) fires) but the imputed B
	// would differ from row 2's. The literal Algorithm 4 (VerifyLHS)
	// misses it; VerifyBothSides must reject.
	rel, err := dataset.ReadCSVString(`A,B,K
p,b1,k1
q,,k1
q,b2,zzz
`)
	if err != nil {
		t.Fatal(err)
	}
	schema := rel.Schema()
	sigma := rfd.Set{
		rfd.MustParse("K(<=0) -> B(<=0)", schema), // donor: row0 (K k1)
		rfd.MustParse("A(<=0) -> B(<=0)", schema), // rows 1,2 share A
	}
	lhsOnly, err := New(sigma).Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	if got := lhsOnly.Relation.Get(1, 1); got.Str() != "b1" {
		t.Fatalf("VerifyLHS run imputed %v, want b1 (breach invisible to Algorithm 4)", got)
	}
	both, err := New(sigma, WithVerifyMode(VerifyBothSides)).Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	if !both.Relation.Get(1, 1).IsNull() {
		t.Errorf("VerifyBothSides imputed %v, want rejection", both.Relation.Get(1, 1))
	}
}

func TestClusterOrderAscendingPrefersTightCluster(t *testing.T) {
	// Two clusters can impute B: a tight one (RHS<=0) via attribute K and
	// a loose one (RHS<=5) via attribute L. Donor values differ; the
	// ascending order must take the tight cluster's donor.
	rel, err := dataset.ReadCSVString(`K,L,B
k1,l9,tight
k9,l1,loose
k1,l1,
`)
	if err != nil {
		t.Fatal(err)
	}
	schema := rel.Schema()
	sigma := rfd.Set{
		rfd.MustParse("K(<=0) -> B(<=0)", schema),
		rfd.MustParse("L(<=0) -> B(<=5)", schema),
	}
	asc, err := New(sigma).Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	if got := asc.Relation.Get(2, 2); got.Str() != "tight" {
		t.Errorf("ascending order imputed %q, want tight", got.Str())
	}
	desc, err := New(sigma, WithClusterOrder(DescendingThreshold)).Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	if got := desc.Relation.Get(2, 2); got.Str() != "loose" {
		t.Errorf("descending order imputed %q, want loose", got.Str())
	}
}

func TestNoClusteringFlattens(t *testing.T) {
	rel, err := dataset.ReadCSVString(`K,L,B
k1,l9,tight
k9,l1,loose
k1,l1,
`)
	if err != nil {
		t.Fatal(err)
	}
	schema := rel.Schema()
	sigma := rfd.Set{
		rfd.MustParse("K(<=0) -> B(<=0)", schema),
		rfd.MustParse("L(<=0) -> B(<=5)", schema),
	}
	res, err := New(sigma, WithoutClustering()).Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	// One flat cluster: both donors are candidates at dist 0; tie broken
	// by row index -> row 0's value.
	if got := res.Relation.Get(2, 2); got.Str() != "tight" {
		t.Errorf("flat cluster imputed %q, want tight (row-index tie-break)", got.Str())
	}
	if res.Stats.ClustersScanned != 1 {
		t.Errorf("ClustersScanned = %d, want 1", res.Stats.ClustersScanned)
	}
}

func TestNoRankingTakesRowOrder(t *testing.T) {
	// Candidates at distances 2 (row0) and 0 (row1). Ranked: row1 wins.
	// Unranked: row0 wins.
	rel, err := dataset.ReadCSVString(`K,B
kaa,far
kzz,near
kzz,
`)
	if err != nil {
		t.Fatal(err)
	}
	sigma := rfd.Set{rfd.MustParse("K(<=3) -> B(<=100)", rel.Schema())}
	ranked, err := New(sigma).Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	if got := ranked.Relation.Get(2, 1); got.Str() != "near" {
		t.Errorf("ranked imputed %q, want near", got.Str())
	}
	unranked, err := New(sigma, WithoutRanking()).Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	if got := unranked.Relation.Get(2, 1); got.Str() != "far" {
		t.Errorf("unranked imputed %q, want far (row order)", got.Str())
	}
}

func TestMaxCandidatesCap(t *testing.T) {
	// The nearest candidate is rejected by verification; with the cap at 1
	// the cell stays missing, without a cap the second candidate passes.
	// Row 2 exists only to make the verifying dependency non-key on the
	// input (a key-RFDc would be filtered from Σ' and never verified).
	rel, err := dataset.ReadCSVString(`K,B,C
kz,bad,1
kzz,good,5
qqqqq,bad,1
kz,,5
`)
	if err != nil {
		t.Fatal(err)
	}
	schema := rel.Schema()
	sigma := rfd.Set{
		rfd.MustParse("K(<=2) -> B(<=100)", schema),
		rfd.MustParse("B(<=0) -> C(<=1)", schema),
	}
	free, err := New(sigma).Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	if got := free.Relation.Get(3, 1); got.Str() != "good" {
		t.Fatalf("uncapped imputed %q, want good", got.Str())
	}
	capped, err := New(sigma, WithMaxCandidates(1)).Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	if !capped.Relation.Get(3, 1).IsNull() {
		t.Errorf("capped imputed %v, want missing", capped.Relation.Get(3, 1))
	}
}

func TestCompleteInstanceNoOp(t *testing.T) {
	rel, err := dataset.ReadCSVString("A,B\nx,1\ny,2\n")
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(rfd.Set{rfd.MustParse("A(<=0) -> B(<=0)", rel.Schema())}).Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Relation.Equal(rel) {
		t.Error("complete instance changed")
	}
	if res.Stats.MissingCells != 0 || res.Stats.Imputed != 0 {
		t.Errorf("stats = %+v", res.Stats)
	}
}

func TestEmptySigma(t *testing.T) {
	rel := table2(t)
	res, err := New(nil).Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Imputed != 0 || res.Stats.Unimputed != 4 {
		t.Errorf("stats = %+v, want nothing imputed", res.Stats)
	}
}

func TestSchemaMismatchError(t *testing.T) {
	rel, err := dataset.ReadCSVString("A,B\nx,1\n")
	if err != nil {
		t.Fatal(err)
	}
	bad := rfd.MustNew([]rfd.Constraint{{Attr: 5}}, rfd.Constraint{Attr: 1})
	if _, err := New(rfd.Set{bad}).Impute(rel); err == nil {
		t.Error("LHS attr out of schema accepted")
	}
	bad2 := rfd.MustNew([]rfd.Constraint{{Attr: 0}}, rfd.Constraint{Attr: 7})
	if _, err := New(rfd.Set{bad2}).Impute(rel); err == nil {
		t.Error("RHS attr out of schema accepted")
	}
}

func TestSemanticConsistencyPreserved(t *testing.T) {
	// Definition 4.3 under the literal Algorithm 4: after the run, no
	// dependency that held before may be violated via the imputed
	// attribute's LHS occurrences. With VerifyBothSides the full r' ⊨ Σ'
	// must hold for every dependency that held on the input.
	rel := table2(t)
	sigma := figure1Sigma(t, rel.Schema())
	res, err := New(sigma, WithVerifyMode(VerifyBothSides)).Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	for i, dep := range sigma {
		if dep.HoldsOn(rel) && !dep.HoldsOn(res.Relation) {
			t.Errorf("φ%d held on input but is violated after imputation", i+1)
		}
	}
}

func TestStatsCountersConsistent(t *testing.T) {
	rel := table2(t)
	res, err := New(figure1Sigma(t, rel.Schema())).Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.Imputed+s.Unimputed != s.MissingCells {
		t.Errorf("imputed %d + unimputed %d != missing %d", s.Imputed, s.Unimputed, s.MissingCells)
	}
	if s.CandidatesTried != s.Imputed+s.VerifyRejections {
		t.Errorf("tried %d != imputed %d + rejected %d", s.CandidatesTried, s.Imputed, s.VerifyRejections)
	}
	if s.CandidatesEvaluated < s.CandidatesTried {
		t.Errorf("evaluated %d < tried %d", s.CandidatesEvaluated, s.CandidatesTried)
	}
}

func TestDeterminism(t *testing.T) {
	rel := table2(t)
	sigma := figure1Sigma(t, rel.Schema())
	a, err := New(sigma).Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(sigma).Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Relation.Equal(b.Relation) {
		t.Error("two identical runs diverged")
	}
}
