package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/discovery"
	"repro/internal/engine"
)

// sessionRequest builds a small request instance over the benchRelation
// schema with two recoverable missing cells (a Phone and a City).
func sessionRequest(tb testing.TB) *dataset.Relation {
	tb.Helper()
	rel, err := dataset.ReadCSVString(`Name,City,Phone,Type,Class
Granita 0,Malibu,310/456-0488,Californian,6
Granita 0,Malibu,,Californian,6
Citrus 0,,213/857-0034,Californian,6
Citrus 0,Los Angeles,213/857-0034,Californian,6
`)
	if err != nil {
		tb.Fatal(err)
	}
	return rel
}

// TestSessionDonorPoolMatchesImputeWithDonors: a base-backed Session
// must produce byte-identical results to the one-shot donor-pool path —
// the tiered view is an optimization, not a semantic change.
func TestSessionDonorPoolMatchesImputeWithDonors(t *testing.T) {
	base := benchRelation(t, 8)
	sigma := figure1Sigma(t, base.Schema())
	req := sessionRequest(t)

	oneShot, err := New(sigma).ImputeWithDonorsContext(context.Background(), req, []*dataset.Relation{base})
	if err != nil {
		t.Fatal(err)
	}

	sess, err := NewSession(base, sigma)
	if err != nil {
		t.Fatal(err)
	}
	viaSession, err := sess.Impute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	if !oneShot.Relation.Equal(viaSession.Relation) {
		t.Error("session result diverged from ImputeWithDonors")
	}
	if oneShot.Stats.Imputed != viaSession.Stats.Imputed ||
		oneShot.Stats.MissingCells != viaSession.Stats.MissingCells {
		t.Errorf("stats diverged: one-shot %+v, session %+v", oneShot.Stats, viaSession.Stats)
	}
	if viaSession.Stats.Imputed == 0 {
		t.Error("fixture imputed nothing; the parity check is vacuous")
	}
}

// TestSessionSelfContainedMatchesImpute: with a nil base each request is
// identical to the classic one-shot Impute.
func TestSessionSelfContainedMatchesImpute(t *testing.T) {
	rel := table2(t)
	sigma := figure1Sigma(t, rel.Schema())
	plain, err := New(sigma).Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(nil, sigma)
	if err != nil {
		t.Fatal(err)
	}
	viaSession, err := sess.Impute(context.Background(), rel)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Relation.Equal(viaSession.Relation) {
		t.Error("self-contained session diverged from Impute")
	}
}

// TestSessionExpiredContextFastPath: an already-expired context must
// come back in O(1) — under 50ms regardless of input size — with the
// typed sentinel and a well-formed empty result.
func TestSessionExpiredContextFastPath(t *testing.T) {
	base := benchRelation(t, 400) // 2000 tuples
	sigma := figure1Sigma(t, base.Schema())
	sess, err := NewSession(base, sigma)
	if err != nil {
		t.Fatal(err)
	}
	req := benchRelation(t, 200) // 1000 tuples, 200 missing cells

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res, err := sess.Impute(ctx, req)
	elapsed := time.Since(start)

	if elapsed > 50*time.Millisecond {
		t.Errorf("expired-context Impute took %v, want <50ms", elapsed)
	}
	if !errors.Is(err, engine.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled and context.Canceled", err)
	}
	if res == nil {
		t.Fatal("expired-context result is nil")
	}
	if res.Stats.Imputed+res.Stats.Unimputed != res.Stats.MissingCells {
		t.Errorf("fast-path stats inconsistent: %+v", res.Stats)
	}
}

// TestSessionDeadlinePartialStats: mid-run expiry returns promptly with
// the typed error and a partial result whose counters reconcile and
// whose recorded imputations are actually applied.
func TestSessionDeadlinePartialStats(t *testing.T) {
	base := benchRelation(t, 40)
	sigma := figure1Sigma(t, base.Schema())
	sess, err := NewSession(base, sigma)
	if err != nil {
		t.Fatal(err)
	}
	req := benchRelation(t, 20) // 20 missing Phones

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := sess.Impute(ctx, req)
	elapsed := time.Since(start)

	if err != nil && !errors.Is(err, engine.ErrCanceled) {
		t.Fatalf("err = %v", err)
	}
	if err != nil && elapsed > time.Second {
		t.Errorf("cancelled run took %v to stop", elapsed)
	}
	if res == nil {
		t.Fatal("result is nil")
	}
	if res.Stats.Imputed+res.Stats.Unimputed != res.Stats.MissingCells {
		t.Errorf("partial stats inconsistent: %+v", res.Stats)
	}
	if len(res.Imputations) != res.Stats.Imputed {
		t.Errorf("imputations %d != stats.Imputed %d", len(res.Imputations), res.Stats.Imputed)
	}
	for _, imp := range res.Imputations {
		if res.Relation.Get(imp.Cell.Row, imp.Cell.Attr).IsNull() {
			t.Error("recorded imputation not applied")
		}
	}
}

// TestSessionCancelLeaksNoGoroutines: cancelled parallel runs must not
// strand scan workers.
func TestSessionCancelLeaksNoGoroutines(t *testing.T) {
	base := benchRelation(t, 40)
	sigma := figure1Sigma(t, base.Schema())
	sess, err := NewSession(base, sigma, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	req := benchRelation(t, 20)

	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		_, _ = sess.Impute(ctx, req)
		cancel()
	}
	// Workers drain cooperatively; give them a bounded moment.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked: %d before, %d after cancelled runs", before, after)
	}
}

// TestSessionConcurrentRequests is the shared-artifact race test (runs
// under `make race`): many goroutines impute through one Session and
// every result must equal the serial reference.
func TestSessionConcurrentRequests(t *testing.T) {
	base := benchRelation(t, 8)
	sigma := figure1Sigma(t, base.Schema())
	sess, err := NewSession(base, sigma)
	if err != nil {
		t.Fatal(err)
	}
	req := sessionRequest(t)
	ref, err := sess.Impute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines, rounds = 8, 4
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*rounds)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				res, err := sess.Impute(context.Background(), req)
				if err != nil {
					errs <- err
					return
				}
				if !res.Relation.Equal(ref.Relation) {
					errs <- errors.New("concurrent result diverged from reference")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSessionConcurrentMixedSessions: two sessions over the same shared
// base (via WithSigma) serving concurrently must not interfere.
func TestSessionConcurrentMixedSessions(t *testing.T) {
	base := benchRelation(t, 8)
	sigma := figure1Sigma(t, base.Schema())
	s1, err := NewSession(base, sigma)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := s1.WithSigma(sigma[:3])
	if err != nil {
		t.Fatal(err)
	}
	req := sessionRequest(t)
	ref1, err := s1.Impute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	ref2, err := s2.Impute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess, ref := s1, ref1
			if g%2 == 1 {
				sess, ref = s2, ref2
			}
			for i := 0; i < 3; i++ {
				res, err := sess.Impute(context.Background(), req)
				if err != nil {
					errs <- err
					return
				}
				if !res.Relation.Equal(ref.Relation) {
					errs <- fmt.Errorf("session %d diverged", g%2+1)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestNewSessionValidatesOptions(t *testing.T) {
	rel := table2(t)
	sigma := figure1Sigma(t, rel.Schema())
	if _, err := NewSession(rel, sigma, WithWorkers(-1)); err == nil {
		t.Error("negative Workers accepted")
	}
	if _, err := NewSession(rel, sigma, WithMaxCandidates(-2)); err == nil {
		t.Error("negative MaxCandidates accepted")
	}
	if _, err := NewSession(nil, sigma); err != nil {
		t.Errorf("nil base rejected: %v", err)
	}
}

func TestSessionSchemaMismatchRejected(t *testing.T) {
	base := table2(t)
	sigma := figure1Sigma(t, base.Schema())
	sess, err := NewSession(base, sigma)
	if err != nil {
		t.Fatal(err)
	}
	other, err := dataset.ReadCSVString("A,B\nx,y\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Impute(context.Background(), other); err == nil {
		t.Error("mismatched schema accepted")
	}
}

func TestSessionExplain(t *testing.T) {
	base := benchRelation(t, 8)
	sigma := figure1Sigma(t, base.Schema())
	sess, err := NewSession(base, sigma)
	if err != nil {
		t.Fatal(err)
	}
	req := sessionRequest(t)
	phone := req.Schema().MustIndex("Phone")
	text, err := sess.Explain(context.Background(), req, 1, phone)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "Phone") {
		t.Errorf("explain text does not mention the attribute:\n%s", text)
	}
	// A cell that was never missing has no decision trace.
	text, err = sess.Explain(context.Background(), req, 0, phone)
	if err != nil {
		t.Fatal(err)
	}
	if text != "" {
		t.Errorf("non-missing cell produced a trace: %q", text)
	}
	if _, err := sess.Explain(context.Background(), req, 99, phone); err == nil {
		t.Error("out-of-range cell accepted")
	}
}

func TestSessionDiscover(t *testing.T) {
	base := table2(t)
	cfg := discovery.Config{MaxThreshold: 6}
	direct, err := discovery.Discover(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	mined, err := sess.Discover(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(mined) != len(direct) {
		t.Errorf("session discovery found %d RFDcs, direct %d", len(mined), len(direct))
	}
	served, err := sess.WithSigma(mined)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := served.Impute(context.Background(), table2(t)); err != nil {
		t.Fatal(err)
	}

	selfContained, err := NewSession(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := selfContained.Discover(context.Background(), cfg); err == nil {
		t.Error("nil-base Discover did not error")
	}
}

// BenchmarkSessionImpute measures the compile-once serve-many path: the
// base donor pool is compiled once at session construction and every
// iteration pays only the per-request cost.
func BenchmarkSessionImpute(b *testing.B) {
	base := benchRelation(b, 200) // 1000 tuples
	sigma := figure1Sigma(b, base.Schema())
	sess, err := NewSession(base, sigma)
	if err != nil {
		b.Fatal(err)
	}
	req := sessionRequest(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Impute(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOneShotImputeWithDonors is the baseline the Session
// amortizes away: every iteration recompiles the full donor pool.
func BenchmarkOneShotImputeWithDonors(b *testing.B) {
	base := benchRelation(b, 200)
	sigma := figure1Sigma(b, base.Schema())
	im := New(sigma)
	req := sessionRequest(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := im.ImputeWithDonorsContext(context.Background(), req, []*dataset.Relation{base}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionCompile measures the serve compile-on-boot path: each
// iteration compiles the base from scratch and mines Σ on it — the full
// cost every replica pays at startup without an artifact.
func BenchmarkSessionCompile(b *testing.B) {
	base := benchRelation(b, 40) // 200 tuples
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess, err := NewSession(base, nil)
		if err != nil {
			b.Fatal(err)
		}
		sigma, err := sess.Discover(context.Background(), discovery.Config{
			MaxThreshold: 6, MaxLHS: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sess.WithSigma(sigma); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionFromArtifact measures the serve -artifact boot path
// over the same base: each iteration reconstructs the full serving
// session (view, interners, index, Σ) from pre-encoded artifact bytes.
func BenchmarkSessionFromArtifact(b *testing.B) {
	base := benchRelation(b, 40)
	sess, err := NewSession(base, nil)
	if err != nil {
		b.Fatal(err)
	}
	sigma, err := sess.Discover(context.Background(), discovery.Config{
		MaxThreshold: 6, MaxLHS: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	if sess, err = sess.WithSigma(sigma); err != nil {
		b.Fatal(err)
	}
	data, err := sess.EncodeArtifact()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewSessionFromArtifact(data); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBenchSessionJSON records the amortization evidence: with
// BENCH_SESSION_OUT set it runs both benchmarks via testing.Benchmark
// and writes their figures (plus the speedup ratio) as JSON.
//
//	BENCH_SESSION_OUT=BENCH_session.json go test ./internal/core -run TestBenchSessionJSON
func TestBenchSessionJSON(t *testing.T) {
	out := os.Getenv("BENCH_SESSION_OUT")
	if out == "" {
		t.Skip("set BENCH_SESSION_OUT=<file> to emit benchmark JSON")
	}
	session := testing.Benchmark(BenchmarkSessionImpute)
	oneShot := testing.Benchmark(BenchmarkOneShotImputeWithDonors)
	compile := testing.Benchmark(BenchmarkSessionCompile)
	fromArtifact := testing.Benchmark(BenchmarkSessionFromArtifact)
	doc, err := json.MarshalIndent(struct {
		Package     string        `json:"package"`
		Workload    string        `json:"workload"`
		Benchmarks  []BenchRecord `json:"benchmarks"`
		Speedup     float64       `json:"session_speedup"`
		BootSpeedup float64       `json:"artifact_boot_speedup"`
	}{
		Package:  "repro/internal/core",
		Workload: "1000-tuple donor pool, 4-tuple request with 2 missing cells; 200-tuple base for the boot pair",
		Benchmarks: []BenchRecord{
			record("SessionImpute", session),
			record("OneShotImputeWithDonors", oneShot),
			record("SessionCompile", compile),
			record("SessionFromArtifact", fromArtifact),
		},
		Speedup:     float64(oneShot.NsPerOp()) / float64(session.NsPerOp()),
		BootSpeedup: float64(compile.NsPerOp()) / float64(fromArtifact.NsPerOp()),
	}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(doc, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	if session.NsPerOp() >= oneShot.NsPerOp() {
		t.Errorf("session (%d ns/op) did not beat one-shot (%d ns/op)",
			session.NsPerOp(), oneShot.NsPerOp())
	}
	// The acceptance bar for the artifact layer: booting from the
	// compiled artifact must be at least 10x faster than compiling (and
	// mining Σ on) the same base from scratch.
	if speedup := float64(compile.NsPerOp()) / float64(fromArtifact.NsPerOp()); speedup < 10 {
		t.Errorf("artifact boot speedup = %.1fx (compile %d ns/op, from-artifact %d ns/op), want >= 10x",
			speedup, compile.NsPerOp(), fromArtifact.NsPerOp())
	}
}
