package core

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/rfd"
)

func TestImputeWithDonorsFillsWhatTargetAlone(t *testing.T) {
	// The target has no donor for row1.B, but the reference dataset does
	// (Sec. 7: "selecting plausible candidate tuples among multiple
	// datasets").
	target, err := dataset.ReadCSVString(`A,B
x,
y,v2
`)
	if err != nil {
		t.Fatal(err)
	}
	donor, err := dataset.ReadCSVString(`A,B
x,v1
z,v3
`)
	if err != nil {
		t.Fatal(err)
	}
	sigma := rfd.Set{rfd.MustParse("A(<=0) -> B(<=0)", target.Schema())}
	im := New(sigma)

	solo, err := im.Impute(target)
	if err != nil {
		t.Fatal(err)
	}
	if !solo.Relation.Get(0, 1).IsNull() {
		t.Fatal("precondition: target alone cannot impute row0.B")
	}

	res, err := im.ImputeWithDonors(target, []*dataset.Relation{donor})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Relation.Get(0, 1); got.Str() != "v1" {
		t.Errorf("row0.B = %v, want v1 from the donor pool", got)
	}
	imp, ok := res.ImputedValue(dataset.Cell{Row: 0, Attr: 1})
	if !ok {
		t.Fatal("imputation not recorded")
	}
	if imp.DonorSource != 0 || imp.Donor != 0 {
		t.Errorf("provenance = source %d row %d, want donor pool 0 row 0", imp.DonorSource, imp.Donor)
	}
	// Donor relations must be untouched.
	if donor.CountMissing() != 0 || donor.Len() != 2 {
		t.Error("donor mutated")
	}
}

func TestImputeWithDonorsPrefersCloserCandidate(t *testing.T) {
	// Target donor at distance 2, pool donor at distance 0: pool wins.
	target, err := dataset.ReadCSVString(`A,B
kxx,far
k,
`)
	if err != nil {
		t.Fatal(err)
	}
	donor, err := dataset.ReadCSVString(`A,B
k,near
`)
	if err != nil {
		t.Fatal(err)
	}
	sigma := rfd.Set{rfd.MustParse("A(<=2) -> B(<=100)", target.Schema())}
	res, err := New(sigma).ImputeWithDonors(target, []*dataset.Relation{donor})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Relation.Get(1, 1); got.Str() != "near" {
		t.Errorf("imputed %v, want near (donor pool candidate is closer)", got)
	}
}

func TestImputeWithDonorsVerifiesAgainstTargetOnly(t *testing.T) {
	// The candidate value violates a dependency against another TARGET
	// tuple -> rejected, even though it is consistent with the donor.
	target, err := dataset.ReadCSVString(`A,B,C
k,,1
q,bb,9
zz,bb,9
`)
	if err != nil {
		t.Fatal(err)
	}
	donor, err := dataset.ReadCSVString(`A,B,C
k,bb,1
`)
	if err != nil {
		t.Fatal(err)
	}
	schema := target.Schema()
	sigma := rfd.Set{
		rfd.MustParse("A(<=0) -> B(<=0)", schema), // proposes bb from the donor
		rfd.MustParse("B(<=0) -> C(<=1)", schema), // but target row1 has B=bb with C=9
	}
	res, err := New(sigma).ImputeWithDonors(target, []*dataset.Relation{donor})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Relation.Get(0, 1).IsNull() {
		t.Errorf("imputed %v, want rejection (violates against target row 1)", res.Relation.Get(0, 1))
	}
	if res.Stats.VerifyRejections == 0 {
		t.Error("no rejection recorded")
	}
}

func TestImputeWithDonorsSchemaMismatch(t *testing.T) {
	target, err := dataset.ReadCSVString("A,B\nx,1\n")
	if err != nil {
		t.Fatal(err)
	}
	donor, err := dataset.ReadCSVString("A\nx\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(nil).ImputeWithDonors(target, []*dataset.Relation{donor}); err == nil {
		t.Error("mismatched donor schema accepted")
	}
}

func TestImputeWithDonorsEmptyPoolMatchesImpute(t *testing.T) {
	rel := table2(t)
	sigma := figure1Sigma(t, rel.Schema())
	im := New(sigma)
	a, err := im.Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	b, err := im.ImputeWithDonors(rel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Relation.Equal(b.Relation) {
		t.Error("empty donor pool diverged from plain Impute")
	}
	if len(a.Imputations) != len(b.Imputations) {
		t.Errorf("imputation counts differ: %d vs %d", len(a.Imputations), len(b.Imputations))
	}
}
