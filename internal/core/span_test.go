package core

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"repro/internal/obs"
)

// imputeOutcome captures everything a span-on/span-off parity check
// compares: the imputed bytes, the provenance records, the accuracy
// counters, and the decision-trace JSONL.
func imputeOutcome(t *testing.T, ctx context.Context) (*Result, []byte) {
	t.Helper()
	rel := table2(t)
	sigma := figure1Sigma(t, rel.Schema())
	tr := obs.NewRingTracer(0, 1)
	sess, err := NewSession(nil, sigma, WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.Impute(ctx, rel)
	if err != nil {
		t.Fatal(err)
	}
	return res, traceJSONL(t, tr)
}

// TestSpanParity asserts the imputation output is byte-identical with
// request tracing enabled and disabled: spans observe the run, they
// must never steer it.
func TestSpanParity(t *testing.T) {
	offRes, offTrace := imputeOutcome(t, context.Background())

	ring := obs.NewSpanRing(4)
	ctx, reqTrace := obs.StartRequest(context.Background(), ring, "test", obs.SpanContext{})
	onRes, onTrace := imputeOutcome(t, ctx)
	reqTrace.Finish()

	if !offRes.Relation.Equal(onRes.Relation) {
		t.Error("imputed relation diverged with spans enabled")
	}
	if len(offRes.Imputations) != len(onRes.Imputations) {
		t.Fatalf("imputation counts diverged: %d vs %d", len(offRes.Imputations), len(onRes.Imputations))
	}
	for i := range offRes.Imputations {
		if offRes.Imputations[i] != onRes.Imputations[i] {
			t.Errorf("imputation %d diverged:\n off: %+v\n on:  %+v",
				i, offRes.Imputations[i], onRes.Imputations[i])
		}
	}
	if accuracyOf(offRes) != accuracyOf(onRes) {
		t.Errorf("accuracy counters diverged:\n off: %+v\n on:  %+v",
			accuracyOf(offRes), accuracyOf(onRes))
	}
	if !bytes.Equal(offTrace, onTrace) {
		t.Error("decision-trace JSONL diverged with spans enabled")
	}
	if err := reqTrace.CheckWellFormed(); err != nil {
		t.Errorf("request trace malformed: %v", err)
	}
}

// TestSessionImputeSpanTree pins the shape of the span tree one Impute
// run emits: impute → preprocess + per-cell spans, each cell holding
// candidate_search / ranking / verify children with the donor-pool and
// cache-delta attributes.
func TestSessionImputeSpanTree(t *testing.T) {
	ring := obs.NewSpanRing(4)
	ctx, reqTrace := obs.StartRequest(context.Background(), ring, "POST /v1/impute", obs.SpanContext{})
	res, _ := imputeOutcome(t, ctx)
	reqTrace.Finish()
	if res.Stats.Imputed == 0 {
		t.Fatal("fixture imputed nothing; the tree assertions below would be vacuous")
	}
	if err := reqTrace.CheckWellFormed(); err != nil {
		t.Fatalf("trace malformed: %v", err)
	}

	root := reqTrace.Tree()
	if len(root.Children) != 1 || root.Children[0].Name != "impute" {
		t.Fatalf("root children = %+v, want one impute span", names(root.Children))
	}
	imp := root.Children[0]
	if imp.Attrs["missing_cells"] != int64(res.Stats.MissingCells) ||
		imp.Attrs["imputed"] != int64(res.Stats.Imputed) {
		t.Errorf("impute attrs = %+v, want missing_cells=%d imputed=%d",
			imp.Attrs, res.Stats.MissingCells, res.Stats.Imputed)
	}

	var cells, reevals int
	sawPre := false
	for _, child := range imp.Children {
		switch child.Name {
		case "preprocess":
			sawPre = true
			if child.Attrs["missing_cells"] != int64(res.Stats.MissingCells) {
				t.Errorf("preprocess attrs = %+v", child.Attrs)
			}
		case "cell":
			cells++
			for _, key := range []string{"row", "attr", "cache_hit_delta", "cache_miss_delta", "imputed"} {
				if _, ok := child.Attrs[key]; !ok {
					t.Errorf("cell missing attr %q: %+v", key, child.Attrs)
				}
			}
			var search, rank, verify int
			for _, phase := range child.Children {
				switch phase.Name {
				case "candidate_search":
					search++
					if _, ok := phase.Attrs["donor_pool"]; !ok {
						t.Errorf("candidate_search missing donor_pool: %+v", phase.Attrs)
					}
					if _, ok := phase.Attrs["candidates"]; !ok {
						t.Errorf("candidate_search missing candidates: %+v", phase.Attrs)
					}
				case "ranking":
					rank++
				case "verify":
					verify++
				default:
					t.Errorf("unexpected cell child %q", phase.Name)
				}
			}
			if search == 0 {
				t.Error("cell span has no candidate_search child")
			}
			// A cell whose clusters all came up empty legitimately has no
			// ranking/verify spans; the resolved cells must have both.
			if child.Attrs["imputed"] == int64(1) && (rank == 0 || verify == 0) {
				t.Errorf("imputed cell lacks ranking/verify children: rank=%d verify=%d", rank, verify)
			}
		case "key_reeval":
			reevals++
		default:
			t.Errorf("unexpected impute child %q", child.Name)
		}
	}
	if !sawPre {
		t.Error("no preprocess span")
	}
	if cells != res.Stats.MissingCells {
		t.Errorf("got %d cell spans, want %d", cells, res.Stats.MissingCells)
	}
	if reevals != res.Stats.Imputed {
		t.Errorf("got %d key_reeval spans, want %d", reevals, res.Stats.Imputed)
	}
}

func names(nodes []*obs.SpanNode) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.Name
	}
	return out
}

// TestSpanDisabledAddsNoAllocs is the end-to-end allocation guard for
// the disabled path: an Impute through a value-carrying context without
// a span must allocate exactly as much as one through a bare context —
// the span plumbing's context lookups and inert Child/End calls cost
// nothing. (The per-op micro-guard lives in obs.TestSpanDisabledZeroAlloc;
// the absolute per-Impute allocation count is pinned by the benchdiff
// baselines.)
func TestSpanDisabledAddsNoAllocs(t *testing.T) {
	rel := table2(t)
	sigma := figure1Sigma(t, rel.Schema())
	sess, err := NewSession(nil, sigma)
	if err != nil {
		t.Fatal(err)
	}
	run := func(ctx context.Context) float64 {
		return testing.AllocsPerRun(10, func() {
			if _, err := sess.Impute(ctx, rel); err != nil {
				t.Fatal(err)
			}
		})
	}
	type otherKey struct{}
	bare := run(context.Background())
	withValues := run(context.WithValue(context.Background(), otherKey{}, 42))
	if withValues > bare {
		t.Fatalf("span-less Impute allocates more through a value-carrying context: %v > %v allocs",
			withValues, bare)
	}
}

// TestSpanRingRaceUnderConcurrentSessions stress-tests the span ring
// and the per-shard cache stats under concurrent Session traffic (run
// under -race by make race): every completed trace must be well-formed
// — children inside their parents' windows, no orphan parents — while
// shard stats are read mid-flight.
func TestSpanRingRaceUnderConcurrentSessions(t *testing.T) {
	rel := table2(t)
	sigma := figure1Sigma(t, rel.Schema())
	base := table2(t)
	sess, err := NewSession(base, sigma)
	if err != nil {
		t.Fatal(err)
	}
	ring := obs.NewSpanRing(8)
	const workers, rounds = 8, 6
	var wg, readerWG sync.WaitGroup
	stop := make(chan struct{})
	readerWG.Add(1)
	go func() { // concurrent shard-stat reader
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			stats := sess.CacheShardStats()
			var total int64
			for _, s := range stats {
				total += s.Hits + s.Misses + s.Merges
			}
			_ = total
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				ctx, reqTrace := obs.StartRequest(context.Background(), ring, "impute", obs.SpanContext{})
				if _, err := sess.Impute(ctx, rel); err != nil {
					t.Error(err)
				}
				reqTrace.Finish()
				if err := reqTrace.CheckWellFormed(); err != nil {
					t.Errorf("trace malformed: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()
	if ring.Len() == 0 {
		t.Fatal("ring retained no traces")
	}
	for _, tr := range ring.Traces() {
		if err := tr.CheckWellFormed(); err != nil {
			t.Errorf("retained trace malformed: %v", err)
		}
	}
}
