package core

import (
	"context"
	"encoding/json"
	"os"
	"testing"

	"repro/internal/dataset"
)

// benchSteadyDelta builds the steady-state mutation for iteration i
// over an n-row instance: one cell rewrite, one delete, one insert of
// the deleted row's values — the row count is invariant, so row handles
// stay valid across any number of applications and every ApplyDelta
// iteration does the same amount of work (build, revalidate two rows,
// maintain the index).
func benchSteadyDelta(rel *dataset.Relation, i, n int) Delta {
	victim := i % n
	donor := (i*7 + 1) % n
	return Delta{
		Updates: []CellUpdate{{Row: (i*13 + 3) % n, Attr: 1, Value: rel.Row(donor)[1]}},
		Deletes: []int{victim},
		Inserts: []dataset.Tuple{rel.Row(donor).Clone()},
	}
}

// BenchmarkApplyDelta measures the writer half of a live session: one
// epoch publication — successor build, Σ revalidation over the changed
// rows, index maintenance, snapshot swap — on a 200-tuple instance.
func BenchmarkApplyDelta(b *testing.B) {
	base := benchRelation(b, 40) // 200 tuples
	sigma := figure1Sigma(b, base.Schema())
	sess, err := NewSession(base, sigma)
	if err != nil {
		b.Fatal(err)
	}
	n := base.Len()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.ApplyDelta(context.Background(), benchSteadyDelta(base, i, n)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkImputeUnderDeltas measures the per-request cost of a session
// whose base is being rolled: every iteration applies one steady-state
// delta and then serves one imputation against the fresh epoch. The
// spread over BenchmarkSessionImpute is the price of serving live data
// instead of a frozen snapshot (epoch pin/unpin plus the cold donor
// rows each delta introduces).
func BenchmarkImputeUnderDeltas(b *testing.B) {
	base := benchRelation(b, 40)
	sigma := figure1Sigma(b, base.Schema())
	sess, err := NewSession(base, sigma)
	if err != nil {
		b.Fatal(err)
	}
	req := sessionRequest(b)
	n := base.Len()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.ApplyDelta(context.Background(), benchSteadyDelta(base, i, n)); err != nil {
			b.Fatal(err)
		}
		if _, err := sess.Impute(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBenchDeltaJSON emits the live-session trajectory: with
// BENCH_DELTA_OUT set, both delta benchmarks run via testing.Benchmark
// and land as JSON next to the other BENCH_*.json baselines, plus the
// steady-state imputation figure for the overhead ratio.
//
//	BENCH_DELTA_OUT=BENCH_delta.json go test ./internal/core -run TestBenchDeltaJSON
//
// Without BENCH_DELTA_OUT the test is skipped, so the suite stays fast.
func TestBenchDeltaJSON(t *testing.T) {
	out := os.Getenv("BENCH_DELTA_OUT")
	if out == "" {
		t.Skip("set BENCH_DELTA_OUT=<file> to emit delta benchmark JSON")
	}
	apply := testing.Benchmark(BenchmarkApplyDelta)
	under := testing.Benchmark(BenchmarkImputeUnderDeltas)
	// The frozen-session comparator over the SAME 200-tuple base (the
	// package's SessionImpute benchmark serves a 1000-tuple pool and is
	// not comparable).
	base := benchRelation(t, 40)
	sigma := figure1Sigma(t, base.Schema())
	sess, err := NewSession(base, sigma)
	if err != nil {
		t.Fatal(err)
	}
	req := sessionRequest(t)
	steady := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sess.Impute(context.Background(), req); err != nil {
				b.Fatal(err)
			}
		}
	})
	doc, err := json.MarshalIndent(struct {
		Package    string        `json:"package"`
		Workload   string        `json:"workload"`
		Benchmarks []BenchRecord `json:"benchmarks"`
		// LiveOverhead is (delta+impute) ns relative to a frozen-session
		// impute; the delta publication itself is the dominant term.
		LiveOverhead float64 `json:"live_overhead"`
	}{
		Package:  "repro/internal/core",
		Workload: "200-tuple base; per-op delta = 1 update + 1 delete + 1 insert (row count invariant)",
		Benchmarks: []BenchRecord{
			record("ApplyDelta", apply),
			record("ImputeUnderDeltas", under),
			record("FrozenSessionImpute", steady),
		},
		LiveOverhead: float64(under.NsPerOp()) / float64(steady.NsPerOp()),
	}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(doc, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
	for _, r := range []testing.BenchmarkResult{apply, under, steady} {
		if r.NsPerOp() <= 0 || r.N == 0 {
			t.Errorf("suspicious benchmark result: %+v", r)
		}
	}
}
