package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/rfd"
)

// ImputeWithDonors is the paper's first future-work extension (Sec. 7):
// "to increase the number of imputed values, we would like to extend
// RENUVER with the possibility of selecting plausible candidate tuples
// among multiple datasets."
//
// The algorithm is unchanged except that FIND_CANDIDATE_TUPLES also
// scans the donor relations: their tuples can contribute candidate
// values but are never imputed themselves, never verified against
// (semantic consistency per Definition 4.3 concerns the target
// instance), and never affect key-RFDc status (Definition 3.4 is defined
// on the target instance). Donor schemas must match the target's.
//
// The combined search space is one engine view: target rows first, then
// each donor relation's rows, so candidate flat indices order by
// (source, row) exactly as the ranking tiebreak requires.
func (im *Imputer) ImputeWithDonors(rel *dataset.Relation, donors []*dataset.Relation) (*Result, error) {
	for i, d := range donors {
		if !d.Schema().Equal(rel.Schema()) {
			return nil, fmt.Errorf("core: donor %d schema %q incompatible with target %q",
				i, d.Schema(), rel.Schema())
		}
	}
	if err := validateSigma(im.sigma, rel.Schema().Len()); err != nil {
		return nil, err
	}

	runStart := time.Now()
	work := rel.Clone()
	res := &Result{Relation: work}

	preStart := time.Now()
	eng := engine.CompileWithDonors(work, donors)
	kt := newKeyTracker(eng, im.sigma)
	res.Stats.KeyRFDs = kt.keys
	incomplete := work.IncompleteRows()
	res.Stats.MissingCells = work.CountMissing()
	res.Stats.Phases.Preprocess = time.Since(preStart)

	for _, row := range incomplete {
		for _, attr := range work.Row(row).MissingAttrs() {
			sigmaPrime := kt.nonKeys()
			clusters := im.clustersFor(sigmaPrime, attr)
			if im.imputeWithDonorPool(eng, row, attr, sigmaPrime, clusters, res) {
				if !im.opts.NoKeyReevaluation {
					reevalStart := time.Now()
					before := kt.keys
					kt.afterImpute(row, attr)
					res.Stats.KeyFlips += before - kt.keys
					res.Stats.Phases.KeyReeval += time.Since(reevalStart)
				}
			}
		}
	}

	im.finishRun(res, eng, nil, runStart)
	return res, nil
}

// imputeWithDonorPool is Algorithm 2 over the combined candidate space.
func (im *Imputer) imputeWithDonorPool(eng *engine.View, row, attr int,
	sigmaPrime rfd.Set, clusters []rfd.Cluster, res *Result) bool {

	rec := im.opts.recorder()
	work := eng.Relation()
	ct := obs.StartCell(im.opts.Tracer, row, attr)
	if ct != nil {
		ct.Add(obs.CellStarted(len(clusters)))
		defer res.addTrace(dataset.Cell{Row: row, Attr: attr}, ct)
	}
	anyCandidate := false
	poolSize := eng.Len() - 1
	for _, cluster := range clusters {
		res.Stats.ClustersScanned++
		if ct != nil {
			ct.Add(obs.RuleSelected(cluster.Threshold, formatRules(cluster.RFDs, work.Schema())))
		}
		searchStart := time.Now()
		cands := findCandidateTuples(eng, row, attr, cluster.RFDs)
		res.Stats.Phases.CandidateSearch += time.Since(searchStart)
		res.Stats.DonorsScanned += poolSize
		res.Stats.CandidatesEvaluated += len(cands)
		if rec.Enabled() {
			rec.Observe(obs.HistCandidatesPerCell, float64(len(cands)))
		}
		if len(cands) == 0 {
			continue
		}
		anyCandidate = true
		if !im.opts.NoRanking {
			res.Stats.DonorsRanked += len(cands)
			rankStart := time.Now()
			// Flat index order is (source, row) order: target rows come
			// before every donor pool's rows.
			sort.Slice(cands, func(i, j int) bool {
				if cands[i].dist != cands[j].dist {
					return cands[i].dist < cands[j].dist
				}
				return cands[i].row < cands[j].row
			})
			res.Stats.Phases.Ranking += time.Since(rankStart)
		}
		traceDonorEvents(ct, eng, row, cluster.RFDs, len(cands),
			func(k int) (int, float64) {
				return cands[k].row, cands[k].dist
			})
		limit := len(cands)
		if im.opts.MaxCandidates > 0 && im.opts.MaxCandidates < limit {
			limit = im.opts.MaxCandidates
		}
		for k := 0; k < limit; k++ {
			cand := cands[k]
			source, donorRow := eng.SourceOf(cand.row)
			value := eng.Value(cand.row, attr)
			eng.Set(row, attr, value)
			res.Stats.CandidatesTried++
			res.Stats.FaultlessChecks++
			verifyStart := time.Now()
			faultless, violated, witness := im.isFaultlessWitness(eng, row, attr, sigmaPrime)
			res.Stats.Phases.Verify += time.Since(verifyStart)
			if ct != nil {
				ct.Add(obs.FaultlessVerdict(donorRow, k+1, faultless))
				if !faultless {
					ct.Add(obs.CandidateRejected(donorRow, source, k+1,
						violated.Format(work.Schema()), witness))
				}
			}
			if faultless {
				res.Imputations = append(res.Imputations, Imputation{
					Cell:             dataset.Cell{Row: row, Attr: attr},
					Value:            value,
					Donor:            donorRow,
					DonorSource:      source,
					Distance:         cand.dist,
					ClusterThreshold: cluster.Threshold,
					Attempt:          k + 1,
				})
				res.Stats.countImputed(attr, work.Schema().Len())
				if rec.Enabled() {
					rec.Observe(obs.HistAttemptsPerImputation, float64(k+1))
				}
				ct.Add(obs.CellResolved(donorRow, source, value.String(), cand.dist, k+1))
				return true
			}
			res.Stats.VerifyRejections++
			eng.Set(row, attr, dataset.Null)
		}
	}
	if ct != nil {
		note := "no plausible candidate tuple in any cluster"
		if anyCandidate {
			note = "every ranked candidate failed IS_FAULTLESS"
		}
		ct.Add(obs.CellAbandoned(note))
	}
	return false
}
