package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/dataset"
	"repro/internal/distance"
	"repro/internal/obs"
	"repro/internal/rfd"
)

// ImputeWithDonors is the paper's first future-work extension (Sec. 7):
// "to increase the number of imputed values, we would like to extend
// RENUVER with the possibility of selecting plausible candidate tuples
// among multiple datasets."
//
// The algorithm is unchanged except that FIND_CANDIDATE_TUPLES also
// scans the donor relations: their tuples can contribute candidate
// values but are never imputed themselves, never verified against
// (semantic consistency per Definition 4.3 concerns the target
// instance), and never affect key-RFDc status (Definition 3.4 is defined
// on the target instance). Donor schemas must match the target's.
func (im *Imputer) ImputeWithDonors(rel *dataset.Relation, donors []*dataset.Relation) (*Result, error) {
	for i, d := range donors {
		if !d.Schema().Equal(rel.Schema()) {
			return nil, fmt.Errorf("core: donor %d schema %q incompatible with target %q",
				i, d.Schema(), rel.Schema())
		}
	}
	if err := validateSigma(im.sigma, rel.Schema().Len()); err != nil {
		return nil, err
	}

	runStart := time.Now()
	work := rel.Clone()
	res := &Result{Relation: work}

	preStart := time.Now()
	kt := newKeyTrackerWithDonors(work, im.sigma, donors)
	res.Stats.KeyRFDs = kt.keys
	incomplete := work.IncompleteRows()
	res.Stats.MissingCells = work.CountMissing()
	res.Stats.Phases.Preprocess = time.Since(preStart)

	for _, row := range incomplete {
		for _, attr := range work.Row(row).MissingAttrs() {
			sigmaPrime := kt.nonKeys()
			clusters := im.clustersFor(sigmaPrime, attr)
			if im.imputeWithDonorPool(work, donors, row, attr, sigmaPrime, clusters, res) {
				if !im.opts.NoKeyReevaluation {
					reevalStart := time.Now()
					before := kt.keys
					kt.afterImpute(row, attr)
					res.Stats.KeyFlips += before - kt.keys
					res.Stats.Phases.KeyReeval += time.Since(reevalStart)
				}
			}
		}
	}

	im.finishRun(res, work, runStart)
	return res, nil
}

// donorRef addresses a candidate tuple in the combined search space:
// source -1 is the target instance, 0.. indexes the donor pool.
type donorRef struct {
	source int
	row    int
}

// donorCandidate extends candidate with its provenance.
type donorCandidate struct {
	ref  donorRef
	dist float64
}

// imputeWithDonorPool is Algorithm 2 over the combined candidate space.
func (im *Imputer) imputeWithDonorPool(work *dataset.Relation, donors []*dataset.Relation,
	row, attr int, sigmaPrime rfd.Set, clusters []rfd.Cluster, res *Result) bool {

	rec := im.opts.recorder()
	ct := obs.StartCell(im.opts.Tracer, row, attr)
	if ct != nil {
		ct.Add(obs.CellStarted(len(clusters)))
		defer res.addTrace(dataset.Cell{Row: row, Attr: attr}, ct)
	}
	anyCandidate := false
	poolSize := work.Len() - 1
	for _, d := range donors {
		poolSize += d.Len()
	}
	for _, cluster := range clusters {
		res.Stats.ClustersScanned++
		if ct != nil {
			ct.Add(obs.RuleSelected(cluster.Threshold, formatRules(cluster.RFDs, work.Schema())))
		}
		searchStart := time.Now()
		cands := findDonorCandidates(work, donors, row, attr, cluster.RFDs)
		res.Stats.Phases.CandidateSearch += time.Since(searchStart)
		res.Stats.DonorsScanned += poolSize
		res.Stats.CandidatesEvaluated += len(cands)
		if rec.Enabled() {
			rec.Observe(obs.HistCandidatesPerCell, float64(len(cands)))
		}
		if len(cands) == 0 {
			continue
		}
		anyCandidate = true
		if !im.opts.NoRanking {
			res.Stats.DonorsRanked += len(cands)
			rankStart := time.Now()
			sort.Slice(cands, func(i, j int) bool {
				if cands[i].dist != cands[j].dist {
					return cands[i].dist < cands[j].dist
				}
				if cands[i].ref.source != cands[j].ref.source {
					return cands[i].ref.source < cands[j].ref.source
				}
				return cands[i].ref.row < cands[j].ref.row
			})
			res.Stats.Phases.Ranking += time.Since(rankStart)
		}
		traceDonorEvents(ct, work, row, cluster.RFDs, len(cands),
			func(k int) (dataset.Tuple, int, int, float64) {
				c := cands[k]
				if c.ref.source < 0 {
					return work.Row(c.ref.row), c.ref.row, -1, c.dist
				}
				return donors[c.ref.source].Row(c.ref.row), c.ref.row, c.ref.source, c.dist
			})
		limit := len(cands)
		if im.opts.MaxCandidates > 0 && im.opts.MaxCandidates < limit {
			limit = im.opts.MaxCandidates
		}
		for k := 0; k < limit; k++ {
			cand := cands[k]
			var value dataset.Value
			if cand.ref.source < 0 {
				value = work.Get(cand.ref.row, attr)
			} else {
				value = donors[cand.ref.source].Get(cand.ref.row, attr)
			}
			work.Set(row, attr, value)
			res.Stats.CandidatesTried++
			res.Stats.FaultlessChecks++
			verifyStart := time.Now()
			faultless, violated, witness := im.isFaultlessWitness(work, row, attr, sigmaPrime)
			res.Stats.Phases.Verify += time.Since(verifyStart)
			if ct != nil {
				ct.Add(obs.FaultlessVerdict(cand.ref.row, k+1, faultless))
				if !faultless {
					ct.Add(obs.CandidateRejected(cand.ref.row, cand.ref.source, k+1,
						violated.Format(work.Schema()), witness))
				}
			}
			if faultless {
				res.Imputations = append(res.Imputations, Imputation{
					Cell:             dataset.Cell{Row: row, Attr: attr},
					Value:            value,
					Donor:            cand.ref.row,
					DonorSource:      cand.ref.source,
					Distance:         cand.dist,
					ClusterThreshold: cluster.Threshold,
					Attempt:          k + 1,
				})
				res.Stats.countImputed(attr, work.Schema().Len())
				if rec.Enabled() {
					rec.Observe(obs.HistAttemptsPerImputation, float64(k+1))
				}
				ct.Add(obs.CellResolved(cand.ref.row, cand.ref.source, value.String(), cand.dist, k+1))
				return true
			}
			res.Stats.VerifyRejections++
			work.Set(row, attr, dataset.Null)
		}
	}
	if ct != nil {
		note := "no plausible candidate tuple in any cluster"
		if anyCandidate {
			note = "every ranked candidate failed IS_FAULTLESS"
		}
		ct.Add(obs.CellAbandoned(note))
	}
	return false
}

// findDonorCandidates is Algorithm 3 over the target plus the donor
// pool.
func findDonorCandidates(work *dataset.Relation, donors []*dataset.Relation,
	row, attr int, deps rfd.Set) []donorCandidate {

	m := work.Schema().Len()
	needed := make([]int, 0, m)
	seen := make([]bool, m)
	for _, dep := range deps {
		for _, c := range dep.LHS {
			if !seen[c.Attr] {
				seen[c.Attr] = true
				needed = append(needed, c.Attr)
			}
		}
	}
	t := work.Row(row)
	p := make(distance.Pattern, m)
	var cands []donorCandidate

	score := func(tj dataset.Tuple, ref donorRef) {
		if tj[attr].IsNull() {
			return
		}
		for _, a := range needed {
			p[a] = distance.Values(t[a], tj[a])
		}
		distMin, found := 0.0, false
		for _, dep := range deps {
			if !dep.LHSSatisfiedBy(p) {
				continue
			}
			d, ok := p.MeanOver(dep.LHSAttrs())
			if !ok {
				continue
			}
			if !found || d < distMin {
				distMin, found = d, true
			}
		}
		if found {
			cands = append(cands, donorCandidate{ref: ref, dist: distMin})
		}
	}

	for j := 0; j < work.Len(); j++ {
		if j == row {
			continue
		}
		score(work.Row(j), donorRef{source: -1, row: j})
	}
	for s, donor := range donors {
		for j := 0; j < donor.Len(); j++ {
			score(donor.Row(j), donorRef{source: s, row: j})
		}
	}
	return cands
}
