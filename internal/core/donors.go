package core

import (
	"context"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/engine"
)

// ImputeWithDonors is the paper's first future-work extension (Sec. 7):
// "to increase the number of imputed values, we would like to extend
// RENUVER with the possibility of selecting plausible candidate tuples
// among multiple datasets."
//
// The algorithm is unchanged except that FIND_CANDIDATE_TUPLES also
// scans the donor relations: their tuples can contribute candidate
// values but are never imputed themselves, never verified against
// (semantic consistency per Definition 4.3 concerns the target
// instance), and never affect key-RFDc status (Definition 3.4 is defined
// on the target instance). Donor schemas must match the target's.
//
// The combined search space is one engine view: target rows first, then
// each donor relation's rows, so candidate flat indices order by
// (source, row) exactly as the ranking tiebreak requires.
func (im *Imputer) ImputeWithDonors(rel *dataset.Relation, donors []*dataset.Relation) (*Result, error) {
	return im.ImputeWithDonorsContext(context.Background(), rel, donors)
}

// ImputeWithDonorsContext is ImputeWithDonors with cooperative
// cancellation, under the same contract as ImputeContext: an expired
// context returns the partial well-formed result and a typed
// engine.ErrCanceled. Callers imputing many requests against the same
// donor pool should precompile it once via NewSession instead.
func (im *Imputer) ImputeWithDonorsContext(ctx context.Context, rel *dataset.Relation, donors []*dataset.Relation) (*Result, error) {
	for i, d := range donors {
		if !d.Schema().Equal(rel.Schema()) {
			return nil, fmt.Errorf("core: donor %d schema %q incompatible with target %q",
				i, d.Schema(), rel.Schema())
		}
	}
	if err := validateSigma(im.sigma, rel.Schema().Len()); err != nil {
		return nil, err
	}
	if ctx.Err() != nil {
		return &Result{}, engine.Canceled(ctx)
	}
	work := rel.Clone()
	eng := engine.CompileWithDonors(work, donors)
	// No donor index: probe results over the combined space would mix
	// target and pool rows per bucket, and the historical donor-pool path
	// has always run the plain scan. Σ' selection, ranking, and
	// verification are shared with the single-instance path via runImpute.
	return im.runImpute(ctx, work, eng, false)
}
