package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/rfd"
)

// parityConfigs are the evaluation-engine configurations that must all
// produce the same imputations: the engine's cache, index, and parallel
// scans are pure optimizations.
func parityConfigs() map[string][]Option {
	return map[string][]Option{
		"default":          nil,
		"no-index":         {WithoutIndex()},
		"workers":          {WithWorkers(4)},
		"no-index-workers": {WithoutIndex(), WithWorkers(4)},
	}
}

// accuracyStats extracts the Stats fields that are algorithmic outcomes
// (as opposed to scan-efficiency counters, which legitimately differ
// between indexed and sweeping configurations).
type accuracyStats struct {
	Imputed, Unimputed, MissingCells     int
	KeyRFDs, KeyFlips                    int
	ClustersScanned, CandidatesEvaluated int
	DonorsRanked, CandidatesTried        int
	FaultlessChecks, VerifyRejections    int
	ImputedByAttrLen                     int
}

func accuracyOf(res *Result) accuracyStats {
	return accuracyStats{
		Imputed: res.Stats.Imputed, Unimputed: res.Stats.Unimputed,
		MissingCells: res.Stats.MissingCells,
		KeyRFDs:      res.Stats.KeyRFDs, KeyFlips: res.Stats.KeyFlips,
		ClustersScanned:     res.Stats.ClustersScanned,
		CandidatesEvaluated: res.Stats.CandidatesEvaluated,
		DonorsRanked:        res.Stats.DonorsRanked,
		CandidatesTried:     res.Stats.CandidatesTried,
		FaultlessChecks:     res.Stats.FaultlessChecks,
		VerifyRejections:    res.Stats.VerifyRejections,
		ImputedByAttrLen:    len(res.Stats.ImputedByAttr),
	}
}

// traceJSONL serializes a traced run's cells the way the export surface
// does, with the wall clock normalized — the byte-level form the trace
// golden pins.
func traceJSONL(t *testing.T, tr *obs.RingTracer) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, cell := range tr.Cells() {
		for _, ev := range cell {
			ev.UnixNano = 0
			if err := enc.Encode(ev); err != nil {
				t.Fatal(err)
			}
		}
	}
	return buf.Bytes()
}

// runParity imputes one workload under every engine configuration and
// fails unless the imputations, final relation, accuracy counters, and
// trace JSONL bytes are identical across all of them.
func runParity(t *testing.T, label string, rel *dataset.Relation, sigma rfd.Set) {
	t.Helper()
	type outcome struct {
		res   *Result
		trace []byte
	}
	outcomes := map[string]outcome{}
	for name, opts := range parityConfigs() {
		tr := obs.NewRingTracer(0, 1)
		res, err := New(sigma, append(opts, WithTracer(tr))...).Impute(rel)
		if err != nil {
			t.Fatalf("%s/%s: %v", label, name, err)
		}
		outcomes[name] = outcome{res: res, trace: traceJSONL(t, tr)}
	}
	ref := outcomes["default"]
	for name, o := range outcomes {
		if !ref.res.Relation.Equal(o.res.Relation) {
			t.Errorf("%s/%s: final relation diverged from default config", label, name)
		}
		if len(ref.res.Imputations) != len(o.res.Imputations) {
			t.Fatalf("%s/%s: %d imputations vs %d", label, name,
				len(o.res.Imputations), len(ref.res.Imputations))
		}
		for i := range ref.res.Imputations {
			if ref.res.Imputations[i] != o.res.Imputations[i] {
				t.Errorf("%s/%s: imputation %d differs:\n%+v\n%+v",
					label, name, i, o.res.Imputations[i], ref.res.Imputations[i])
			}
		}
		if accuracyOf(ref.res) != accuracyOf(o.res) {
			t.Errorf("%s/%s: accuracy counters diverged:\n%+v\n%+v",
				label, name, accuracyOf(o.res), accuracyOf(ref.res))
		}
		if !bytes.Equal(ref.trace, o.trace) {
			t.Errorf("%s/%s: trace JSONL diverged from default config", label, name)
		}
	}
}

// TestEngineParityTable2 guards the engine rewiring on the paper's
// worked example: every configuration reproduces the known Table 2
// imputations (t7's Phone from its Chinois donor) byte-identically.
func TestEngineParityTable2(t *testing.T) {
	rel := table2(t)
	sigma := figure1Sigma(t, rel.Schema())
	runParity(t, "table2", rel, sigma)

	res, err := New(sigma).Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	phone := rel.Schema().MustIndex("Phone")
	if got := res.Relation.Get(6, phone).Str(); got != "310-392-9025" {
		t.Errorf("t7[Phone] = %q, want the Chinois donor value", got)
	}
	if res.Stats.Imputed != 4 {
		t.Errorf("imputed %d, want 4", res.Stats.Imputed)
	}
}

// TestEngineParityWorkloads runs the two bench workloads (Table 2
// replicated at scale; correlated numerics) through every configuration,
// and checks that the engine's observability counters actually move:
// the string workload must hit the distance cache, and the default
// configuration must answer candidate probes from the index.
func TestEngineParityWorkloads(t *testing.T) {
	srel, ssigma := engineBenchStrings(t, 12)
	runParity(t, "strings", srel, ssigma)
	nrel, nsigma := engineBenchNumeric(t, 120)
	runParity(t, "numeric", nrel, nsigma)

	res, err := New(ssigma).Impute(srel)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.EngineCacheHits == 0 {
		t.Error("string workload produced no distance-cache hits")
	}
	// Range probes are selective on the numeric workload (the string
	// workload's near-uniform name lengths legitimately fall back to the
	// sweep, which the selectivity guard is for).
	nres, err := New(nsigma).Impute(nrel)
	if err != nil {
		t.Fatal(err)
	}
	if nres.Stats.EngineIndexProbes == 0 {
		t.Error("indexed numeric run answered no index probes")
	}
	if noIdx, err := New(nsigma, WithoutIndex()).Impute(nrel); err != nil {
		t.Fatal(err)
	} else if noIdx.Stats.EngineIndexProbes != 0 {
		t.Error("WithoutIndex run reported index probes")
	}
}
