package core

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/rfd"
)

// engineBenchStrings is the string-heavy workload: Table 2 replicated
// into blocks (benchRelation), so the candidate scans are dominated by
// Levenshtein over a small set of repeated values — the case the
// engine's interning + distance cache targets.
func engineBenchStrings(tb testing.TB, blocks int) (*dataset.Relation, rfd.Set) {
	tb.Helper()
	rel := benchRelation(tb, blocks)
	return rel, figure1Sigma(tb, rel.Schema())
}

// engineBenchNumeric is the numeric-heavy workload: four correlated
// integer attributes with periodic structure and a missing C cell every
// tenth row, so candidate search is dominated by range comparisons —
// the case the engine's sorted-column range probes target.
func engineBenchNumeric(tb testing.TB, n int) (*dataset.Relation, rfd.Set) {
	tb.Helper()
	var sb strings.Builder
	sb.WriteString("A,B,C,D\n")
	for i := 0; i < n; i++ {
		a := i % 25
		bv := a*2 + i%3
		c := fmt.Sprintf("%d", a+40)
		if i%10 == 3 {
			c = ""
		}
		d := (i * 7) % 50
		fmt.Fprintf(&sb, "%d,%d,%s,%d\n", a, bv, c, d)
	}
	rel, err := dataset.ReadCSVString(sb.String())
	if err != nil {
		tb.Fatal(err)
	}
	sigma := rfd.Set{
		rfd.MustParse("A(<=1), B(<=2) -> C(<=2)", rel.Schema()),
		rfd.MustParse("D(<=0) -> C(<=3)", rel.Schema()),
	}
	return rel, sigma
}

// BenchmarkImputeEngine measures the end-to-end Impute hot path on the
// two workload shapes the evaluation engine optimizes. It uses only the
// public API, so it is directly comparable across the engine refactor
// (the before/after trajectory lives in EXPERIMENTS.md and
// BENCH_engine.json).
func BenchmarkImputeEngine(b *testing.B) {
	b.Run("strings", func(b *testing.B) {
		rel, sigma := engineBenchStrings(b, 40) // 200 tuples, 40 missing cells
		im := New(sigma)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := im.Impute(rel); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("numeric", func(b *testing.B) {
		rel, sigma := engineBenchNumeric(b, 400) // 400 tuples, 40 missing cells
		im := New(sigma)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := im.Impute(rel); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestBenchEngineJSON emits the engine bench trajectory: when
// BENCH_ENGINE_OUT names a file (e.g. BENCH_engine.json), both
// BenchmarkImputeEngine workloads are run via testing.Benchmark and
// written as JSON, alongside the run's cache hit-rate.
//
//	BENCH_ENGINE_OUT=BENCH_engine.json go test ./internal/core -run TestBenchEngineJSON
//
// Without BENCH_ENGINE_OUT the test is skipped, so the suite stays fast.
func TestBenchEngineJSON(t *testing.T) {
	out := os.Getenv("BENCH_ENGINE_OUT")
	if out == "" {
		t.Skip("set BENCH_ENGINE_OUT=<file> to emit engine benchmark JSON")
	}

	type workload struct {
		name string
		rel  *dataset.Relation
		deps rfd.Set
	}
	srel, ssigma := engineBenchStrings(t, 40)
	nrel, nsigma := engineBenchNumeric(t, 400)
	workloads := []workload{
		{"ImputeEngine/strings", srel, ssigma},
		{"ImputeEngine/numeric", nrel, nsigma},
	}

	var records []BenchRecord
	cacheStats := map[string]map[string]int{}
	for _, w := range workloads {
		im := New(w.deps)
		records = append(records, record(w.name, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := im.Impute(w.rel); err != nil {
					b.Fatal(err)
				}
			}
		})))
		res, err := im.Impute(w.rel)
		if err != nil {
			t.Fatal(err)
		}
		cacheStats[w.name] = map[string]int{
			"engine_cache_hits":   res.Stats.EngineCacheHits,
			"engine_cache_misses": res.Stats.EngineCacheMisses,
			"engine_index_probes": res.Stats.EngineIndexProbes,
			"imputed":             res.Stats.Imputed,
		}
	}

	doc, err := json.MarshalIndent(struct {
		Package    string                    `json:"package"`
		Benchmarks []BenchRecord             `json:"benchmarks"`
		CacheStats map[string]map[string]int `json:"cache_stats"`
	}{Package: "repro/internal/core", Benchmarks: records, CacheStats: cacheStats}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(doc, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
	for _, r := range records {
		if r.NsPerOp <= 0 || r.Iterations == 0 {
			t.Errorf("suspicious benchmark record: %+v", r)
		}
	}
}
