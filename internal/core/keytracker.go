package core

import (
	"context"

	"repro/internal/engine"
	"repro/internal/rfd"
)

// keyTracker maintains the key / non-key status of every RFDc in Σ as the
// instance is imputed (Algorithm 1 line 14 done incrementally).
//
// Key status is monotone under imputation: filling a cell can only turn a
// "_" pattern component into a value, which can newly satisfy an LHS but
// never un-satisfy one, so a non-key RFDc stays non-key. After imputing
// cell (row, attr) only the still-key RFDcs with attr on their LHS can
// flip, and only via pairs involving that row — which keeps the
// re-evaluation far below the naive O(|Σ|·n²) full rescan.
//
// The tracker evaluates pairs through the engine view, whose flat rows
// cover the target instance and, in the multi-dataset extension, the
// donor pool: a dependency is useful — non-key for our purposes — as
// soon as some pair of one target tuple and any tuple in the search
// space satisfies its LHS.
type keyTracker struct {
	v     *engine.View
	m     *engine.Matcher // the owning goroutine's kernel arena over v
	sigma rfd.Set
	isKey []bool
	keys  int // number of true entries in isKey
}

// newKeyTracker computes the initial key status of every RFDc with one
// shared pass over the tuple pairs: target×target pairs plus
// target×donor pairs (j ranges over every flat row after i, and only
// target rows are taken as i, so donor×donor pairs are never absorbed).
// An expired context stops the pass early; the caller must then abandon
// the (incomplete) tracker.
func newKeyTracker(ctx context.Context, v *engine.View, sigma rfd.Set) *keyTracker {
	kt := &keyTracker{v: v, m: v.Matcher(), sigma: sigma,
		isKey: make([]bool, len(sigma)), keys: len(sigma)}
	for i := range kt.isKey {
		kt.isKey[i] = true
	}
	n := v.TargetLen()
	for i := 0; i < n && kt.keys > 0; i++ {
		// The inner loop is O(Len) work, so one check per outer row keeps
		// cancellation latency bounded at a single row scan.
		if ctx.Err() != nil {
			return kt
		}
		for j := i + 1; j < v.Len() && kt.keys > 0; j++ {
			kt.absorbPair(i, j)
		}
	}
	return kt
}

// absorbPair marks non-key every still-key RFDc whose LHS the pair
// satisfies.
func (kt *keyTracker) absorbPair(i, j int) {
	for s, dep := range kt.sigma {
		if kt.isKey[s] && kt.m.MatchesLHS(dep, i, j) {
			kt.isKey[s] = false
			kt.keys--
		}
	}
}

// afterImpute re-evaluates key status after cell (row, attr) gained a
// value: pairs (row, j) are re-tested against the still-key RFDcs that
// constrain attr on their LHS.
func (kt *keyTracker) afterImpute(row, attr int) {
	if kt.keys == 0 {
		return
	}
	affected := false
	for s, dep := range kt.sigma {
		if kt.isKey[s] && dep.HasLHSAttr(attr) {
			affected = true
			break
		}
	}
	if !affected {
		return
	}
	for j := 0; j < kt.v.Len() && kt.keys > 0; j++ {
		if j == row {
			continue
		}
		for s, dep := range kt.sigma {
			if kt.isKey[s] && dep.HasLHSAttr(attr) && kt.m.MatchesLHS(dep, row, j) {
				kt.isKey[s] = false
				kt.keys--
			}
		}
	}
}

// nonKeys returns the current Σ' in Σ order.
func (kt *keyTracker) nonKeys() rfd.Set {
	out := make(rfd.Set, 0, len(kt.sigma)-kt.keys)
	for s, dep := range kt.sigma {
		if !kt.isKey[s] {
			out = append(out, dep)
		}
	}
	return out
}
