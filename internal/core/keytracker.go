package core

import (
	"repro/internal/dataset"
	"repro/internal/distance"
	"repro/internal/rfd"
)

// keyTracker maintains the key / non-key status of every RFDc in Σ as the
// instance is imputed (Algorithm 1 line 14 done incrementally).
//
// Key status is monotone under imputation: filling a cell can only turn a
// "_" pattern component into a value, which can newly satisfy an LHS but
// never un-satisfy one, so a non-key RFDc stays non-key. After imputing
// cell (row, attr) only the still-key RFDcs with attr on their LHS can
// flip, and only via pairs involving that row — which keeps the
// re-evaluation far below the naive O(|Σ|·n²) full rescan.
type keyTracker struct {
	rel   *dataset.Relation
	sigma rfd.Set
	// donors optionally extends the candidate search space (the
	// multi-dataset extension): a dependency is useful — non-key for our
	// purposes — as soon as some pair of one target tuple and any tuple
	// in the search space satisfies its LHS.
	donors []*dataset.Relation
	isKey  []bool
	keys   int // number of true entries in isKey
}

// newKeyTracker computes the initial key status of every RFDc with one
// shared pass over the tuple pairs: each pair's distance pattern is
// computed once and tested against every RFDc still marked key.
func newKeyTracker(rel *dataset.Relation, sigma rfd.Set) *keyTracker {
	return newKeyTrackerWithDonors(rel, sigma, nil)
}

// newKeyTrackerWithDonors additionally absorbs target×donor pairs.
func newKeyTrackerWithDonors(rel *dataset.Relation, sigma rfd.Set, donors []*dataset.Relation) *keyTracker {
	kt := &keyTracker{rel: rel, sigma: sigma, donors: donors,
		isKey: make([]bool, len(sigma)), keys: len(sigma)}
	for i := range kt.isKey {
		kt.isKey[i] = true
	}
	n := rel.Len()
	m := rel.Schema().Len()
	p := make(distance.Pattern, m)
	for i := 0; i < n && kt.keys > 0; i++ {
		ti := rel.Row(i)
		for j := i + 1; j < n && kt.keys > 0; j++ {
			distance.PatternInto(p, ti, rel.Row(j))
			kt.absorb(p)
		}
		for _, donor := range kt.donors {
			for j := 0; j < donor.Len() && kt.keys > 0; j++ {
				distance.PatternInto(p, ti, donor.Row(j))
				kt.absorb(p)
			}
		}
	}
	return kt
}

// absorb marks non-key every still-key RFDc whose LHS the pattern
// satisfies.
func (kt *keyTracker) absorb(p distance.Pattern) {
	for s, dep := range kt.sigma {
		if kt.isKey[s] && dep.LHSSatisfiedBy(p) {
			kt.isKey[s] = false
			kt.keys--
		}
	}
}

// afterImpute re-evaluates key status after cell (row, attr) gained a
// value: pairs (row, j) are re-tested against the still-key RFDcs that
// constrain attr on their LHS.
func (kt *keyTracker) afterImpute(row, attr int) {
	if kt.keys == 0 {
		return
	}
	affected := false
	for s, dep := range kt.sigma {
		if kt.isKey[s] && dep.HasLHSAttr(attr) {
			affected = true
			break
		}
	}
	if !affected {
		return
	}
	n := kt.rel.Len()
	m := kt.rel.Schema().Len()
	p := make(distance.Pattern, m)
	t := kt.rel.Row(row)
	check := func(other dataset.Tuple) {
		distance.PatternInto(p, t, other)
		for s, dep := range kt.sigma {
			if kt.isKey[s] && dep.HasLHSAttr(attr) && dep.LHSSatisfiedBy(p) {
				kt.isKey[s] = false
				kt.keys--
			}
		}
	}
	for j := 0; j < n && kt.keys > 0; j++ {
		if j == row {
			continue
		}
		check(kt.rel.Row(j))
	}
	for _, donor := range kt.donors {
		for j := 0; j < donor.Len() && kt.keys > 0; j++ {
			check(donor.Row(j))
		}
	}
}

// nonKeys returns the current Σ' in Σ order.
func (kt *keyTracker) nonKeys() rfd.Set {
	out := make(rfd.Set, 0, len(kt.sigma)-kt.keys)
	for s, dep := range kt.sigma {
		if !kt.isKey[s] {
			out = append(out, dep)
		}
	}
	return out
}
