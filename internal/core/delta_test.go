package core

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/obs"
)

// deltaPool is the reservoir the delta streams draw inserted tuples
// from: same generator family as the base, different seed, so inserts
// mix familiar strings (shared interned ids) with novel ones (id-space
// growth) — both evolution paths exercised.
func deltaPool(tb testing.TB, n int) *dataset.Relation {
	tb.Helper()
	pool, err := datagen.ByName("restaurant", n, 904)
	if err != nil {
		tb.Fatal(err)
	}
	return pool
}

// applyDeltaToRelation mirrors ApplyDelta's documented semantics on a
// plain relation — updates on the pre-delta numbering, then deletes
// with order-preserving compaction, then inserts — giving the parity
// tests an independent model of what each epoch's logical base must be.
func applyDeltaToRelation(tb testing.TB, rel *dataset.Relation, d Delta) *dataset.Relation {
	tb.Helper()
	n := rel.Len()
	rows := make([]dataset.Tuple, n)
	for i := 0; i < n; i++ {
		rows[i] = rel.Row(i).Clone()
	}
	for _, u := range d.Updates {
		rows[u.Row][u.Attr] = u.Value
	}
	del := make([]bool, n)
	for _, r := range d.Deletes {
		del[r] = true
	}
	out := dataset.NewRelation(rel.Schema())
	for i, t := range rows {
		if !del[i] {
			out.MustAppend(t)
		}
	}
	for _, t := range d.Inserts {
		out.MustAppend(t.Clone())
	}
	return out
}

// deltaStream builds a deterministic mixed mutation stream: inserts
// from the reservoir, updates splicing values across rows (plus a null
// knock-out), deletes walking the instance — every third step touching
// each mutation kind so no step shape goes untested.
func deltaStream(tb testing.TB, base *dataset.Relation, pool *dataset.Relation, steps int) []Delta {
	tb.Helper()
	m := base.Schema().Len()
	out := make([]Delta, 0, steps)
	cur := base.Len()
	next := 0 // next reservoir row to insert
	for s := 0; s < steps; s++ {
		var d Delta
		switch s % 3 {
		case 0: // grow
			for k := 0; k < 2; k++ {
				d.Inserts = append(d.Inserts, pool.Row((next+k)%pool.Len()).Clone())
			}
			next += 2
		case 1: // mutate in place
			r1, r2 := (s*7)%cur, (s*13+5)%cur
			a1, a2 := s%m, (s+2)%m
			d.Updates = []CellUpdate{
				{Row: r1, Attr: a1, Value: pool.Row((s * 3) % pool.Len())[a1]},
				{Row: r2, Attr: a2, Value: dataset.Null},
				{Row: r1, Attr: a1, Value: pool.Row((s*5 + 1) % pool.Len())[a1]}, // later update wins
			}
		case 2: // churn: shrink and grow in one batch
			d.Deletes = []int{(s * 11) % cur, (s * 11) % cur, (s*17 + 3) % cur} // duplicate on purpose
			d.Inserts = append(d.Inserts, pool.Row(next%pool.Len()).Clone())
			next++
		}
		dd := map[int]bool{}
		for _, r := range d.Deletes {
			dd[r] = true
		}
		cur += len(d.Inserts) - len(dd)
		out = append(out, d)
	}
	return out
}

// assertDeltaParity is assertRunsEqual with the distance-cache counters
// additionally zeroed: an evolved session carries the prior epochs' warm
// memo (pure over stable interned ids), a fresh recompile starts cold,
// so EngineCacheHits/Misses report memo warmth, not run semantics —
// everything else must match byte for byte.
func assertDeltaParity(t *testing.T, label string, wantRes, gotRes *Result, wantTrace, gotTrace []byte) {
	t.Helper()
	if !gotRes.Relation.Equal(wantRes.Relation) {
		t.Errorf("%s: imputed relation diverged", label)
	}
	if !reflect.DeepEqual(gotRes.Imputations, wantRes.Imputations) {
		t.Errorf("%s: imputations diverged:\ngot:  %+v\nwant: %+v", label, gotRes.Imputations, wantRes.Imputations)
	}
	wantStats, gotStats := wantRes.Stats, gotRes.Stats
	wantStats.Phases, gotStats.Phases = PhaseTimes{}, PhaseTimes{} // wall clock
	wantStats.EngineCacheHits, gotStats.EngineCacheHits = 0, 0     // memo warmth
	wantStats.EngineCacheMisses, gotStats.EngineCacheMisses = 0, 0
	if !reflect.DeepEqual(gotStats, wantStats) {
		t.Errorf("%s: stats diverged:\ngot:  %+v\nwant: %+v", label, gotStats, wantStats)
	}
	if !bytes.Equal(gotTrace, wantTrace) {
		t.Errorf("%s: trace JSONL diverged:\n--- got ---\n%s\n--- want ---\n%s", label, gotTrace, wantTrace)
	}
	var wantCSV, gotCSV bytes.Buffer
	if err := dataset.WriteCSV(&wantCSV, wantRes.Relation); err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteCSV(&gotCSV, gotRes.Relation); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotCSV.Bytes(), wantCSV.Bytes()) {
		t.Errorf("%s: CSV bytes diverged", label)
	}
}

// TestEpochParityGrid is the tentpole's correctness bar: drive a
// 21-step mixed delta stream (inserts, updates with null knock-outs and
// same-cell overwrites, duplicate deletes) through a live session and,
// at every epoch, demand the evolved session is indistinguishable —
// imputations, Stats, trace JSONL, CSV bytes — from a from-scratch
// NewSession over the same logical relation with the same repaired Σ.
// The grid covers the unsharded and sharded donor-sweep configurations.
func TestEpochParityGrid(t *testing.T) {
	base := table4Base(t)
	sigma := table4Sigma(t, base)
	pool := deltaPool(t, 90)
	req := table4Request(t, base)
	stream := deltaStream(t, base, pool, 21)

	for _, shards := range []int{1, 4} {
		shards := shards
		t.Run(fmt.Sprintf("donorShards=%d", shards), func(t *testing.T) {
			var opts []Option
			if shards > 1 {
				opts = append(opts, WithDonorShards(shards))
			}
			live, err := NewSession(base, sigma, opts...)
			if err != nil {
				t.Fatal(err)
			}
			mirror := base.Clone()
			for step, d := range stream {
				dr, err := live.ApplyDelta(context.Background(), d)
				if err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				if dr.Epoch != uint64(step+1) {
					t.Fatalf("step %d: epoch %d, want %d", step, dr.Epoch, step+1)
				}
				mirror = applyDeltaToRelation(t, mirror, d)
				if dr.Rows != mirror.Len() {
					t.Fatalf("step %d: %d rows, mirror has %d", step, dr.Rows, mirror.Len())
				}

				fresh, err := NewSession(mirror, live.Sigma(), opts...)
				if err != nil {
					t.Fatalf("step %d: fresh recompile: %v", step, err)
				}
				wantRes, wantTrace := runSession(t, fresh, req)
				gotRes, gotTrace := runSession(t, live, req)
				assertDeltaParity(t, fmt.Sprintf("epoch %d", step+1), wantRes, gotRes, wantTrace, gotTrace)
			}
			if live.Epoch() != uint64(len(stream)) {
				t.Fatalf("final epoch %d, want %d", live.Epoch(), len(stream))
			}
		})
	}
}

// TestApplyDeltaConcurrentImpute is the RCU liveness half: a rolling
// update stream publishes epochs while reader goroutines hammer Impute
// and Explain. No reader may ever error, block on a writer, or observe
// a torn (view, Σ) pair — and the race detector (make race covers this
// package) must stay quiet. Run counts are kept modest so -race
// finishes quickly; the interleaving, not the volume, is the test.
func TestApplyDeltaConcurrentImpute(t *testing.T) {
	base := table4Base(t)
	sigma := table4Sigma(t, base)
	pool := deltaPool(t, 60)
	req := table4Request(t, base)
	sess, err := NewSession(base, sigma)
	if err != nil {
		t.Fatal(err)
	}
	stream := deltaStream(t, base, pool, 24)

	const readers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if r == 0 && i%4 == 3 {
					if _, err := sess.Explain(context.Background(), req, 0, 1); err != nil {
						errs <- fmt.Errorf("reader %d explain: %w", r, err)
						return
					}
					continue
				}
				res, err := sess.Impute(context.Background(), req)
				if err != nil {
					errs <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
				if res.Stats.MissingCells != req.CountMissing() {
					errs <- fmt.Errorf("reader %d: torn run: %d missing, want %d",
						r, res.Stats.MissingCells, req.CountMissing())
					return
				}
			}
		}(r)
	}
	for step, d := range stream {
		if _, err := sess.ApplyDelta(context.Background(), d); err != nil {
			close(stop)
			wg.Wait()
			t.Fatalf("step %d: %v", step, err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if sess.Epoch() != uint64(len(stream)) {
		t.Fatalf("epoch %d after %d deltas", sess.Epoch(), len(stream))
	}
}

// TestApplyDeltaValidation: a bad batch is rejected whole — the epoch
// does not advance, and the session keeps serving.
func TestApplyDeltaValidation(t *testing.T) {
	base := table2(t)
	sigma := figure1Sigma(t, base.Schema())
	sess, err := NewSession(base, sigma)
	if err != nil {
		t.Fatal(err)
	}
	n, m := base.Len(), base.Schema().Len()
	classAttr, ok := base.Schema().Index("Class")
	if !ok {
		t.Fatal("table2 lost its Class attribute")
	}
	bad := []struct {
		name string
		d    Delta
	}{
		{"empty", Delta{}},
		{"update row out of range", Delta{Updates: []CellUpdate{{Row: n, Attr: 0, Value: dataset.NewString("x")}}}},
		{"update negative row", Delta{Updates: []CellUpdate{{Row: -1, Attr: 0, Value: dataset.NewString("x")}}}},
		{"update attr out of range", Delta{Updates: []CellUpdate{{Row: 0, Attr: m, Value: dataset.NewString("x")}}}},
		{"update kind mismatch", Delta{Updates: []CellUpdate{{Row: 0, Attr: classAttr, Value: dataset.NewString("six")}}}},
		{"delete out of range", Delta{Deletes: []int{n}}},
		{"delete negative", Delta{Deletes: []int{-2}}},
		{"insert arity", Delta{Inserts: []dataset.Tuple{make(dataset.Tuple, m+1)}}},
		{"insert kind mismatch", Delta{Inserts: []dataset.Tuple{func() dataset.Tuple {
			tu := base.Row(0).Clone()
			tu[classAttr] = dataset.NewString("six")
			return tu
		}()}}},
	}
	for _, tc := range bad {
		if _, err := sess.ApplyDelta(context.Background(), tc.d); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if sess.Epoch() != 0 {
		t.Fatalf("epoch advanced to %d on rejected deltas", sess.Epoch())
	}
	if _, err := sess.Impute(context.Background(), sessionRequest(t)); err != nil {
		t.Fatalf("session broken after rejected deltas: %v", err)
	}

	// Self-contained sessions have no base to mutate.
	selfContained, err := NewSession(nil, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := selfContained.ApplyDelta(context.Background(), Delta{Deletes: []int{0}}); err == nil {
		t.Fatal("self-contained ApplyDelta accepted")
	}

	// A cancelled context aborts before publication.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.ApplyDelta(ctx, Delta{Deletes: []int{0}}); err == nil {
		t.Fatal("cancelled ApplyDelta succeeded")
	}
	if sess.Epoch() != 0 {
		t.Fatal("cancelled ApplyDelta advanced the epoch")
	}
}

// TestApplyDeltaSigmaRevalidation: an update that breaks a dependency
// must come back repaired — the set still holds on the new instance.
func TestApplyDeltaSigmaRevalidation(t *testing.T) {
	base := table4Base(t)
	sigma := table4Sigma(t, base)
	sess, err := NewSession(base, sigma)
	if err != nil {
		t.Fatal(err)
	}
	// Clone row 0 with one attribute swapped to a distant value: the
	// near-duplicate pair pressures every rule whose LHS still matches.
	tu := base.Row(0).Clone()
	nameAttr := 0
	if a, ok := base.Schema().Index("name"); ok {
		nameAttr = a
	}
	tu[nameAttr] = dataset.NewString("zzzzzzzzzzzzzzzzzzzzzzzz")
	res, err := sess.ApplyDelta(context.Background(), Delta{Inserts: []dataset.Tuple{tu}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rules != len(sess.Sigma()) {
		t.Fatalf("DeltaResult.Rules %d != |Sigma()| %d", res.Rules, len(sess.Sigma()))
	}
	// The repaired set must hold on the evolved instance: a fresh
	// discovery-grade check is overkill, but a fresh session over the
	// same relation and set must at minimum impute without tripping the
	// key-RFDc machinery differently (covered by the parity grid); here
	// we pin the accounting: dropped + kept = original.
	if res.SigmaDropped+res.Rules != len(sigma) {
		t.Fatalf("dropped %d + kept %d != original %d", res.SigmaDropped, res.Rules, len(sigma))
	}
}

// TestApplyDeltaEpochAccounting: epochs retire exactly when their last
// reader lets go — immediately on publish with no readers pinned.
func TestApplyDeltaEpochAccounting(t *testing.T) {
	rec := obs.NewMetrics()
	base := table2(t)
	sigma := figure1Sigma(t, base.Schema())
	sess, err := NewSession(base, sigma, WithRecorder(rec))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		tu := base.Row(i % base.Len()).Clone()
		if _, err := sess.ApplyDelta(context.Background(), Delta{Inserts: []dataset.Tuple{tu}}); err != nil {
			t.Fatal(err)
		}
	}
	if got := rec.Counter(obs.CtrEpochsRetired); got != 3 {
		t.Fatalf("epochs_retired = %d, want 3", got)
	}
	if got := rec.Counter(obs.CtrDeltaApplied); got != 3 {
		t.Fatalf("delta_applied = %d, want 3", got)
	}
	if got := rec.Counter(obs.CtrDeltaRowsInserted); got != 3 {
		t.Fatalf("delta_rows_inserted = %d, want 3", got)
	}
}

// TestWithSigmaSnapshotsEpoch: a WithSigma-derived session is a
// snapshot — the parent's later deltas must not reach it.
func TestWithSigmaSnapshotsEpoch(t *testing.T) {
	base := table4Base(t)
	sigma := table4Sigma(t, base)
	req := table4Request(t, base)
	parent, err := NewSession(base, sigma)
	if err != nil {
		t.Fatal(err)
	}
	derived, err := parent.WithSigma(sigma)
	if err != nil {
		t.Fatal(err)
	}
	before, err := derived.Impute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	pool := deltaPool(t, 10)
	for _, d := range deltaStream(t, base, pool, 3) {
		if _, err := parent.ApplyDelta(context.Background(), d); err != nil {
			t.Fatal(err)
		}
	}
	if parent.Epoch() != 3 {
		t.Fatalf("parent epoch %d, want 3", parent.Epoch())
	}
	if derived.Epoch() != 0 {
		t.Fatalf("derived epoch %d, want the snapshot's 0", derived.Epoch())
	}
	after, err := derived.Impute(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !after.Relation.Equal(before.Relation) {
		t.Fatal("derived session's results changed under the parent's deltas")
	}
}

// TestArtifactRoundTripAfterDeltas: encoding an evolved session
// snapshots the current epoch, the loaded replica serves it
// byte-identically, and — the artifact-session half of the live-data
// story — the loaded replica accepts further deltas itself.
func TestArtifactRoundTripAfterDeltas(t *testing.T) {
	base := table4Base(t)
	sigma := table4Sigma(t, base)
	pool := deltaPool(t, 30)
	req := table4Request(t, base)
	sess, err := NewSession(base, sigma)
	if err != nil {
		t.Fatal(err)
	}
	mirror := base.Clone()
	stream := deltaStream(t, base, pool, 6)
	for _, d := range stream {
		if _, err := sess.ApplyDelta(context.Background(), d); err != nil {
			t.Fatal(err)
		}
		mirror = applyDeltaToRelation(t, mirror, d)
	}

	data, err := sess.EncodeArtifact()
	if err != nil {
		t.Fatal(err)
	}
	if ai := sess.Artifact(); ai == nil || ai.Tuples != mirror.Len() {
		t.Fatalf("artifact info %+v does not describe the evolved epoch (%d rows)", sess.Artifact(), mirror.Len())
	}
	loaded, err := NewSessionFromArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Epoch() != 0 {
		t.Fatalf("loaded session epoch %d, want a fresh 0", loaded.Epoch())
	}
	wantRes, wantTrace := runSession(t, sess, req)
	gotRes, gotTrace := runSession(t, loaded, req)
	assertDeltaParity(t, "loaded-after-deltas", wantRes, gotRes, wantTrace, gotTrace)

	// The loaded session is itself live: one more delta, checked against
	// a fresh recompile of the mirrored relation.
	extra := deltaStream(t, mirror, pool, 1)[0]
	if _, err := loaded.ApplyDelta(context.Background(), extra); err != nil {
		t.Fatalf("delta on artifact-loaded session: %v", err)
	}
	mirror = applyDeltaToRelation(t, mirror, extra)
	fresh, err := NewSession(mirror, loaded.Sigma())
	if err != nil {
		t.Fatal(err)
	}
	wantRes, wantTrace = runSession(t, fresh, req)
	gotRes, gotTrace = runSession(t, loaded, req)
	assertDeltaParity(t, "artifact-then-delta", wantRes, gotRes, wantTrace, gotTrace)
}
