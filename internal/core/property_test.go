package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/rfd"
)

// randomInstance builds a small random relation with string and int
// attributes, duplicate-prone values, and missing cells.
func randomInstance(rng *rand.Rand) *dataset.Relation {
	m := 2 + rng.Intn(3) // 2-4 attributes
	attrs := make([]dataset.Attribute, m)
	for a := 0; a < m; a++ {
		kind := dataset.KindString
		if rng.Intn(2) == 0 {
			kind = dataset.KindInt
		}
		attrs[a] = dataset.Attribute{Name: fmt.Sprintf("A%d", a), Kind: kind}
	}
	rel := dataset.NewRelation(dataset.NewSchema(attrs...))
	n := 4 + rng.Intn(10)
	words := []string{"aa", "ab", "ba", "abc", "zz"}
	for i := 0; i < n; i++ {
		t := make(dataset.Tuple, m)
		for a := 0; a < m; a++ {
			switch {
			case rng.Float64() < 0.15:
				t[a] = dataset.Null
			case attrs[a].Kind == dataset.KindInt:
				t[a] = dataset.NewInt(int64(rng.Intn(4)))
			default:
				t[a] = dataset.NewString(words[rng.Intn(len(words))])
			}
		}
		rel.MustAppend(t)
	}
	return rel
}

// randomSigma builds a small random RFDc set over the schema.
func randomSigma(rng *rand.Rand, m int) rfd.Set {
	var sigma rfd.Set
	count := 1 + rng.Intn(4)
	for k := 0; k < count; k++ {
		rhs := rng.Intn(m)
		var lhs []rfd.Constraint
		for a := 0; a < m; a++ {
			if a != rhs && rng.Float64() < 0.6 {
				lhs = append(lhs, rfd.Constraint{Attr: a, Threshold: float64(rng.Intn(3))})
			}
		}
		if len(lhs) == 0 {
			lhs = []rfd.Constraint{{Attr: (rhs + 1) % m, Threshold: float64(rng.Intn(3))}}
		}
		dep, err := rfd.New(lhs, rfd.Constraint{Attr: rhs, Threshold: float64(rng.Intn(3))})
		if err != nil {
			continue
		}
		sigma = append(sigma, dep)
	}
	return sigma
}

// TestPropertyOnlyMissingCellsChange: an imputation run may only touch
// cells that were null on input, and every filled value must equal some
// donor's value on that attribute.
func TestPropertyOnlyMissingCellsChange(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		rel := randomInstance(rng)
		sigma := randomSigma(rng, rel.Schema().Len())
		res, err := New(sigma).Impute(rel)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := 0; i < rel.Len(); i++ {
			for a := 0; a < rel.Schema().Len(); a++ {
				before, after := rel.Get(i, a), res.Relation.Get(i, a)
				if !before.IsNull() && !before.Equal(after) {
					t.Fatalf("trial %d: observed cell (%d,%d) changed %v -> %v",
						trial, i, a, before, after)
				}
				if before.IsNull() && !after.IsNull() {
					// Must be a value present somewhere on the attribute.
					found := false
					for j := 0; j < rel.Len() && !found; j++ {
						if rel.Get(j, a).Equal(after) {
							found = true
						}
					}
					if !found {
						t.Fatalf("trial %d: imputed value %v not from any donor", trial, after)
					}
				}
			}
		}
	}
}

// TestPropertyStatsAlwaysConsistent: run counters must reconcile on any
// input.
func TestPropertyStatsAlwaysConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		rel := randomInstance(rng)
		sigma := randomSigma(rng, rel.Schema().Len())
		res, err := New(sigma).Impute(rel)
		if err != nil {
			t.Fatal(err)
		}
		s := res.Stats
		if s.Imputed+s.Unimputed != s.MissingCells {
			t.Fatalf("trial %d: %d + %d != %d", trial, s.Imputed, s.Unimputed, s.MissingCells)
		}
		if s.CandidatesTried != s.Imputed+s.VerifyRejections {
			t.Fatalf("trial %d: tried %d != imputed %d + rejected %d",
				trial, s.CandidatesTried, s.Imputed, s.VerifyRejections)
		}
		if len(res.Imputations) != s.Imputed || len(res.Unimputed) != s.Unimputed {
			t.Fatalf("trial %d: record lengths disagree with counters", trial)
		}
	}
}

// TestPropertyVerifyBothSidesPreservesHolding: with the full
// Definition 4.3 check, every non-key dependency that held on the input
// still holds on the output.
func TestPropertyVerifyBothSidesPreservesHolding(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 120; trial++ {
		rel := randomInstance(rng)
		sigma := randomSigma(rng, rel.Schema().Len())
		res, err := New(sigma, WithVerifyMode(VerifyBothSides)).Impute(rel)
		if err != nil {
			t.Fatal(err)
		}
		for i, dep := range sigma {
			if dep.HoldsOn(rel) && !dep.HoldsOn(res.Relation) {
				t.Fatalf("trial %d: dep %d held before, violated after (VerifyBothSides)", trial, i)
			}
		}
	}
}

// TestPropertyMonotoneFillCount: turning verification off can only fill
// at least as many cells as the paper-faithful configuration.
func TestPropertyMonotoneFillCount(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 120; trial++ {
		rel := randomInstance(rng)
		sigma := randomSigma(rng, rel.Schema().Len())
		strict, err := New(sigma).Impute(rel)
		if err != nil {
			t.Fatal(err)
		}
		loose, err := New(sigma, WithVerifyMode(VerifyOff)).Impute(rel)
		if err != nil {
			t.Fatal(err)
		}
		if loose.Stats.Imputed < strict.Stats.Imputed {
			t.Fatalf("trial %d: VerifyOff imputed %d < VerifyLHS %d",
				trial, loose.Stats.Imputed, strict.Stats.Imputed)
		}
	}
}

// TestPropertyStreamEquivalentDonorVisibility: a stream fed the same
// tuples row by row ends with at most as many missing cells as a single
// batch run over the full instance, because both retry logic and batch
// order see the same donors. (The stream additionally retries, so it
// can only do better or equal.)
func TestPropertyStreamFillsAtLeastBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 60; trial++ {
		rel := randomInstance(rng)
		sigma := randomSigma(rng, rel.Schema().Len())
		batch, err := New(sigma).Impute(rel)
		if err != nil {
			t.Fatal(err)
		}
		s := New(sigma).NewStream(rel.Head(0))
		for i := 0; i < rel.Len(); i++ {
			if _, err := s.Append(rel.Row(i)); err != nil {
				t.Fatal(err)
			}
		}
		s.RetryMissing()
		if s.Relation().CountMissing() > batch.Relation.CountMissing()+rel.CountMissing() {
			t.Fatalf("trial %d: stream left %d missing, batch %d",
				trial, s.Relation().CountMissing(), batch.Relation.CountMissing())
		}
	}
}

// TestPropertyKeyTrackerAgreesWithDefinition: the incremental tracker's
// verdicts must match Definition 3.4 evaluated from scratch after every
// imputation run.
func TestPropertyKeyTrackerAgreesWithDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 120; trial++ {
		rel := randomInstance(rng)
		sigma := randomSigma(rng, rel.Schema().Len())
		kt := newKeyTracker(context.Background(), engine.Compile(rel), sigma)
		for s, dep := range sigma {
			if kt.isKey[s] != dep.IsKey(rel) {
				t.Fatalf("trial %d: tracker says key=%v, definition says %v for dep %d",
					trial, kt.isKey[s], dep.IsKey(rel), s)
			}
		}
	}
}
