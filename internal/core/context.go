package core

import (
	"context"

	"repro/internal/dataset"
)

// ImputeContext is Impute with cooperative cancellation: the context is
// checked between missing values, so a cancelled or deadline-exceeded
// run stops promptly and returns the partially imputed result alongside
// the context's error. The partial result is well-formed — every cell
// already imputed passed verification — which makes time-bounded
// best-effort imputation a first-class mode rather than an abandoned
// goroutine.
func (im *Imputer) ImputeContext(ctx context.Context, rel *dataset.Relation) (*Result, error) {
	if err := validateSigma(im.sigma, rel.Schema().Len()); err != nil {
		return nil, err
	}
	work := rel.Clone()
	res := &Result{Relation: work}
	kt := newKeyTrackerParallel(work, im.sigma, im.opts.Workers)
	res.Stats.KeyRFDs = kt.keys
	incomplete := work.IncompleteRows()
	res.Stats.MissingCells = work.CountMissing()

	var idx *donorIndex
	if !im.opts.NoIndex {
		idx = newDonorIndex(work, im.sigma)
	}

	for _, row := range incomplete {
		for _, attr := range work.Row(row).MissingAttrs() {
			if err := ctx.Err(); err != nil {
				res.finish(work)
				return res, err
			}
			sigmaPrime := kt.nonKeys()
			clusters := im.clustersFor(sigmaPrime, attr)
			if im.imputeMissingValue(work, row, attr, sigmaPrime, clusters, res, idx) {
				idx.insert(row, attr, work.Get(row, attr))
				if !im.opts.NoKeyReevaluation {
					before := kt.keys
					kt.afterImpute(row, attr)
					res.Stats.KeyFlips += before - kt.keys
				}
			}
		}
	}
	res.finish(work)
	return res, nil
}

// finish populates the unimputed list and the tail counters.
func (res *Result) finish(work *dataset.Relation) {
	res.Unimputed = res.Unimputed[:0]
	for _, c := range work.MissingCells() {
		res.Unimputed = append(res.Unimputed, c)
	}
	res.Stats.Imputed = len(res.Imputations)
	res.Stats.Unimputed = len(res.Unimputed)
}
