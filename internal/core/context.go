package core

import (
	"context"
	"time"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/obs"
)

// ImputeContext is Impute with cooperative cancellation: the context is
// checked between missing values, so a cancelled or deadline-exceeded
// run stops promptly and returns the partially imputed result alongside
// the context's error. The partial result is well-formed — every cell
// already imputed passed verification — which makes time-bounded
// best-effort imputation a first-class mode rather than an abandoned
// goroutine.
func (im *Imputer) ImputeContext(ctx context.Context, rel *dataset.Relation) (*Result, error) {
	if err := validateSigma(im.sigma, rel.Schema().Len()); err != nil {
		return nil, err
	}
	runStart := time.Now()
	work := rel.Clone()
	res := &Result{Relation: work}

	preStart := time.Now()
	eng := engine.Compile(work)
	kt := newKeyTrackerParallel(eng, im.sigma, im.opts.Workers)
	res.Stats.KeyRFDs = kt.keys
	incomplete := work.IncompleteRows()
	res.Stats.MissingCells = work.CountMissing()

	var idx *engine.Index
	if !im.opts.NoIndex {
		idx = engine.NewIndex(eng, im.sigma)
	}
	res.Stats.Phases.Preprocess = time.Since(preStart)

	for _, row := range incomplete {
		for _, attr := range work.Row(row).MissingAttrs() {
			if err := ctx.Err(); err != nil {
				im.finishRun(res, eng, idx, runStart)
				return res, err
			}
			sigmaPrime := kt.nonKeys()
			clusters := im.clustersFor(sigmaPrime, attr)
			if im.imputeMissingValue(eng, row, attr, sigmaPrime, clusters, res, idx) {
				idx.Insert(row, attr)
				if !im.opts.NoKeyReevaluation {
					reevalStart := time.Now()
					before := kt.keys
					kt.afterImpute(row, attr)
					res.Stats.KeyFlips += before - kt.keys
					res.Stats.Phases.KeyReeval += time.Since(reevalStart)
				}
			}
		}
	}
	im.finishRun(res, eng, idx, runStart)
	return res, nil
}

// finishRun seals the result (tail counters, engine cache/index
// counters, total wall clock) and forwards the run to the configured
// recorder.
func (im *Imputer) finishRun(res *Result, eng *engine.View, idx *engine.Index, runStart time.Time) {
	res.finish(eng.Relation())
	hits, misses := eng.CacheStats()
	res.Stats.EngineCacheHits = int(hits)
	res.Stats.EngineCacheMisses = int(misses)
	res.Stats.EngineIndexProbes = int(idx.Probes())
	res.Stats.Phases.Total = time.Since(runStart)
	rec := im.opts.recorder()
	publishStats(rec, &res.Stats)
	if rec.Enabled() {
		rec.Observe(obs.HistImputeMicros, float64(res.Stats.Phases.Total.Microseconds()))
	}
}

// finish populates the unimputed list and the tail counters.
func (res *Result) finish(work *dataset.Relation) {
	res.Unimputed = res.Unimputed[:0]
	for _, c := range work.MissingCells() {
		res.Unimputed = append(res.Unimputed, c)
	}
	res.Stats.Imputed = len(res.Imputations)
	res.Stats.Unimputed = len(res.Unimputed)
}
