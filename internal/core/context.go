package core

import (
	"context"
	"time"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/obs"
)

// ImputeContext is Impute with cooperative cancellation: the context is
// checked between missing values and inside the donor-scan and
// verification loops, so a cancelled or deadline-exceeded run stops
// promptly and returns the partially imputed result alongside a typed
// engine.ErrCanceled (which also matches the context's own error under
// errors.Is). The partial result is well-formed — every cell already
// imputed passed verification — which makes time-bounded best-effort
// imputation a first-class mode rather than an abandoned goroutine.
//
// Deprecated semantics note: this used to be the one ad-hoc
// context-aware entry point. It is now a thin wrapper over an ephemeral
// Session; long-lived callers should construct a Session once and call
// Session.Impute per request instead.
func (im *Imputer) ImputeContext(ctx context.Context, rel *dataset.Relation) (*Result, error) {
	s := &Session{im: im}
	return s.Impute(ctx, rel)
}

// runImpute is Algorithm 1 over an already-compiled view: key-RFDc
// detection, optional donor-index build, then the per-cell imputation
// loop with cancellation checkpoints. work must be the relation the
// view compiles (a private clone of the caller's input). It returns the
// (possibly partial) result and engine.ErrCanceled when the context
// expired mid-run.
func (im *Imputer) runImpute(ctx context.Context, work *dataset.Relation, eng *engine.View, useIndex bool) (*Result, error) {
	runStart := time.Now()
	res := &Result{Relation: work}

	// One context lookup per run, not per cell: the request span (when
	// serve-mode middleware installed one) parents the whole run; a plain
	// context yields the zero span and every Child/End below is an inert
	// nil check.
	sp := obs.SpanFromContext(ctx).Child("impute")
	defer sp.End()

	// One kernel arena for the run goroutine: every serial scan below
	// evaluates through it, so the string kernels never allocate.
	// Parallel scans give each worker its own.
	m := eng.Matcher()

	preStart := time.Now()
	preSpan := sp.Child("preprocess")
	kt := newKeyTrackerParallel(ctx, eng, im.sigma, im.opts.Workers)
	res.Stats.KeyRFDs = kt.keys
	incomplete := work.IncompleteRows()
	res.Stats.MissingCells = work.CountMissing()

	var idx donorIndex
	if useIndex {
		idx = newDonorIndex(eng, im.sigma, im.opts.DonorShards)
	}
	if preSpan.Enabled() {
		preSpan.Int("key_rfds", int64(kt.keys))
		preSpan.Int("missing_cells", int64(res.Stats.MissingCells))
		preSpan.End()
	}
	res.Stats.Phases.Preprocess = time.Since(preStart)
	if ctx.Err() != nil {
		// The key tracker may be incomplete; impute nothing from it.
		im.finishRun(res, eng, idx, runStart, sp)
		return res, engine.Canceled(ctx)
	}

	schema := work.Schema()
	for _, row := range incomplete {
		for _, attr := range work.Row(row).MissingAttrs() {
			if ctx.Err() != nil {
				im.finishRun(res, eng, idx, runStart, sp)
				return res, engine.Canceled(ctx)
			}
			sigmaPrime := kt.nonKeys()
			clusters := im.clustersFor(sigmaPrime, attr)
			cell := sp.Child("cell")
			var hits0, misses0 int64
			if cell.Enabled() {
				cell.Int("row", int64(row))
				cell.Str("attr", schema.Attr(attr).Name)
				hits0, misses0 = eng.CacheStats()
			}
			imputed, err := im.imputeMissingValue(ctx, m, row, attr, sigmaPrime, clusters, res, idx, cell)
			if cell.Enabled() {
				hits1, misses1 := eng.CacheStats()
				cell.Int("cache_hit_delta", hits1-hits0)
				cell.Int("cache_miss_delta", misses1-misses0)
				if imputed {
					cell.Int("imputed", 1)
				} else {
					cell.Int("imputed", 0)
				}
			}
			cell.End()
			if imputed {
				if idx != nil {
					idx.Insert(row, attr)
				}
				if !im.opts.NoKeyReevaluation {
					reevalStart := time.Now()
					krSpan := sp.Child("key_reeval")
					before := kt.keys
					kt.afterImpute(row, attr)
					res.Stats.KeyFlips += before - kt.keys
					if krSpan.Enabled() {
						krSpan.Int("key_flips", int64(before-kt.keys))
						krSpan.End()
					}
					res.Stats.Phases.KeyReeval += time.Since(reevalStart)
				}
			}
			if err != nil {
				im.finishRun(res, eng, idx, runStart, sp)
				return res, err
			}
		}
	}
	im.finishRun(res, eng, idx, runStart, sp)
	return res, nil
}

// finishRun seals the result (tail counters, engine cache/index
// counters, total wall clock) and forwards the run to the configured
// recorder and the run span.
func (im *Imputer) finishRun(res *Result, eng *engine.View, idx donorIndex, runStart time.Time, sp obs.Span) {
	res.finish(eng.Relation())
	hits, misses := eng.CacheStats()
	res.Stats.EngineCacheHits = int(hits)
	res.Stats.EngineCacheMisses = int(misses)
	if idx != nil {
		res.Stats.EngineIndexProbes = int(idx.Probes())
	}
	res.Stats.Phases.Total = time.Since(runStart)
	if sp.Enabled() {
		sp.Int("missing_cells", int64(res.Stats.MissingCells))
		sp.Int("imputed", int64(res.Stats.Imputed))
		sp.Int("unimputed", int64(res.Stats.Unimputed))
	}
	rec := im.opts.recorder()
	publishStats(rec, &res.Stats)
	if rec.Enabled() {
		rec.Observe(obs.HistImputeMicros, float64(res.Stats.Phases.Total.Microseconds()))
	}
}

// finish populates the unimputed list and the tail counters.
func (res *Result) finish(work *dataset.Relation) {
	res.Unimputed = res.Unimputed[:0]
	for _, c := range work.MissingCells() {
		res.Unimputed = append(res.Unimputed, c)
	}
	res.Stats.Imputed = len(res.Imputations)
	res.Stats.Unimputed = len(res.Unimputed)
}
