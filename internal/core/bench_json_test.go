package core

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/distance"
	"repro/internal/engine"
)

// BenchRecord is one benchmark's figures as serialized to BENCH_OUT.
type BenchRecord struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// benchRelation replicates Table 2 into a larger deterministic instance
// so the parallel scan benchmark has real fan-out. Row 3's Phone stays
// missing in every block.
func benchRelation(tb testing.TB, blocks int) *dataset.Relation {
	tb.Helper()
	base := []string{
		"Granita %d,Malibu,310/456-0488,Californian,6",
		"Chinois Main %d,LA,310-392-9025,French,5",
		"Citrus %d,Los Angeles,213/857-0034,Californian,6",
		"Citrus %d,Los Angeles,,Californian,6",
		"Fenix %d,Hollywood,213/848-6677,French,5",
	}
	var sb strings.Builder
	sb.WriteString("Name,City,Phone,Type,Class\n")
	for b := 0; b < blocks; b++ {
		for _, row := range base {
			fmt.Fprintf(&sb, row+"\n", b)
		}
	}
	rel, err := dataset.ReadCSVString(sb.String())
	if err != nil {
		tb.Fatal(err)
	}
	return rel
}

// TestBenchJSON seeds the bench-regression trajectory: when BENCH_OUT
// names a file (e.g. BENCH_core.json), the three hot-path benchmarks —
// Impute, findCandidateTuplesParallel, Levenshtein — are run via
// testing.Benchmark and their ns/op and allocs/op written as JSON.
//
//	BENCH_OUT=BENCH_core.json go test ./internal/core -run TestBenchJSON
//
// Without BENCH_OUT the test is skipped, so the suite stays fast.
func TestBenchJSON(t *testing.T) {
	out := os.Getenv("BENCH_OUT")
	if out == "" {
		t.Skip("set BENCH_OUT=<file> to emit benchmark JSON")
	}

	rel := table2(t)
	sigma := figure1Sigma(t, rel.Schema())
	im := New(sigma)

	big := benchRelation(t, 40) // 200 tuples
	bigSigma := figure1Sigma(t, big.Schema())
	clusters := New(bigSigma).clustersFor(bigSigma, big.Schema().MustIndex("Phone"))
	if len(clusters) == 0 {
		t.Fatal("no clusters for Phone")
	}
	deps := clusters[0].RFDs
	phone := big.Schema().MustIndex("Phone")

	records := []BenchRecord{
		record("Impute", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := im.Impute(rel); err != nil {
					b.Fatal(err)
				}
			}
		})),
		record("findCandidateTuplesParallel", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			bigMatcher := engine.Compile(big).Matcher()
			for i := 0; i < b.N; i++ {
				findCandidateTuplesParallel(context.Background(), bigMatcher, 3, phone, deps, 4)
			}
		})),
		record("Levenshtein", testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				distance.Levenshtein("310/456-0488", "310-392-9025")
			}
		})),
	}

	doc, err := json.MarshalIndent(struct {
		Package    string        `json:"package"`
		Benchmarks []BenchRecord `json:"benchmarks"`
	}{Package: "repro/internal/core", Benchmarks: records}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(doc, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
	for _, r := range records {
		if r.NsPerOp <= 0 || r.Iterations == 0 {
			t.Errorf("suspicious benchmark record: %+v", r)
		}
	}
}

func record(name string, r testing.BenchmarkResult) BenchRecord {
	return BenchRecord{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}
