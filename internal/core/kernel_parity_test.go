package core

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/distance"
	"repro/internal/obs"
	"repro/internal/rfd"
)

// kernelVariants are the string-kernel selections that must be
// end-to-end indistinguishable: the bit-parallel Myers kernel and the
// banded-DP reference compute the same function, so swapping them can
// never change an imputation, a counter, or a trace byte.
var kernelVariants = []struct {
	name string
	k    distance.Kernel
}{
	{"auto", distance.KernelAuto},
	{"myers", distance.KernelMyers},
	{"banded", distance.KernelBanded},
}

// runKernelParity imputes one workload under every kernel and fails
// unless the imputations, final relation, full Stats (accuracy AND
// scan-efficiency counters — the kernels share one dispatch path, so
// even cache traffic must match), and trace JSONL bytes are identical.
func runKernelParity(t *testing.T, label string, rel *dataset.Relation, sigma rfd.Set, opts ...Option) {
	t.Helper()
	type outcome struct {
		res   *Result
		trace []byte
	}
	outcomes := map[string]outcome{}
	for _, kv := range kernelVariants {
		prev := distance.SetKernel(kv.k)
		tr := obs.NewRingTracer(0, 1)
		res, err := New(sigma, append(append([]Option{}, opts...), WithTracer(tr))...).Impute(rel)
		distance.SetKernel(prev)
		if err != nil {
			t.Fatalf("%s/%s: %v", label, kv.name, err)
		}
		outcomes[kv.name] = outcome{res: res, trace: traceJSONL(t, tr)}
	}
	ref := outcomes["auto"]
	for _, kv := range kernelVariants {
		o := outcomes[kv.name]
		if !ref.res.Relation.Equal(o.res.Relation) {
			t.Errorf("%s/%s: final relation diverged from auto kernel", label, kv.name)
		}
		if len(ref.res.Imputations) != len(o.res.Imputations) {
			t.Fatalf("%s/%s: %d imputations vs %d", label, kv.name,
				len(o.res.Imputations), len(ref.res.Imputations))
		}
		for i := range ref.res.Imputations {
			if ref.res.Imputations[i] != o.res.Imputations[i] {
				t.Errorf("%s/%s: imputation %d differs:\n%+v\n%+v",
					label, kv.name, i, o.res.Imputations[i], ref.res.Imputations[i])
			}
		}
		// The whole Stats struct except wall clock: kernels may differ in
		// speed, never in what they scanned, cached, or rejected.
		rs, os := ref.res.Stats, o.res.Stats
		rs.Phases, os.Phases = PhaseTimes{}, PhaseTimes{}
		if !reflect.DeepEqual(rs, os) {
			t.Errorf("%s/%s: Stats diverged:\n%+v\n%+v", label, kv.name, os, rs)
		}
		if !bytes.Equal(ref.trace, o.trace) {
			t.Errorf("%s/%s: trace JSONL diverged from auto kernel", label, kv.name)
		}
	}
}

// TestKernelParityTable2: the paper's worked example imputes
// byte-identically under every string kernel, serial and parallel.
func TestKernelParityTable2(t *testing.T) {
	rel := table2(t)
	sigma := figure1Sigma(t, rel.Schema())
	runKernelParity(t, "table2", rel, sigma)
	runKernelParity(t, "table2-workers", rel, sigma, WithWorkers(4))
}

// TestKernelParityWorkloads: the bench workloads (replicated Table 2
// strings; correlated numerics) under every kernel, with and without
// the donor index.
func TestKernelParityWorkloads(t *testing.T) {
	srel, ssigma := engineBenchStrings(t, 12)
	runKernelParity(t, "strings", srel, ssigma)
	runKernelParity(t, "strings-no-index", srel, ssigma, WithoutIndex())
	nrel, nsigma := engineBenchNumeric(t, 120)
	runKernelParity(t, "numeric", nrel, nsigma)
}
