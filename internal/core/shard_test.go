package core

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/rfd"
)

// dirtyTable4 copies the Table 4 base and knocks out a rotating cell in
// every ninth row — a self-contained workload with plenty of intact
// donors left for each hole.
func dirtyTable4(tb testing.TB, base *dataset.Relation) *dataset.Relation {
	tb.Helper()
	rel := dataset.NewRelation(base.Schema())
	for i := 0; i < base.Len(); i++ {
		t := base.Row(i).Clone()
		if i%9 == 0 {
			t[(i/9)%len(t)] = dataset.Null
		}
		rel.MustAppend(t)
	}
	return rel
}

// assertRunsEqual pins the full byte-identity contract between two
// session runs: final relation (struct and CSV bytes), Imputations,
// Stats (wall clock zeroed), and the trace JSONL stream.
func assertRunsEqual(t *testing.T, label string, wantRes, gotRes *Result, wantTrace, gotTrace []byte) {
	t.Helper()
	if !gotRes.Relation.Equal(wantRes.Relation) {
		t.Errorf("%s: imputed relation diverged", label)
	}
	if !reflect.DeepEqual(gotRes.Imputations, wantRes.Imputations) {
		t.Errorf("%s: imputations diverged:\ngot:  %+v\nwant: %+v", label, gotRes.Imputations, wantRes.Imputations)
	}
	wantStats, gotStats := wantRes.Stats, gotRes.Stats
	wantStats.Phases, gotStats.Phases = PhaseTimes{}, PhaseTimes{} // wall clock
	if !reflect.DeepEqual(gotStats, wantStats) {
		t.Errorf("%s: stats diverged:\ngot:  %+v\nwant: %+v", label, gotStats, wantStats)
	}
	if !bytes.Equal(gotTrace, wantTrace) {
		t.Errorf("%s: trace JSONL diverged:\n--- got ---\n%s\n--- want ---\n%s", label, gotTrace, wantTrace)
	}
	var wantCSV, gotCSV bytes.Buffer
	if err := dataset.WriteCSV(&wantCSV, wantRes.Relation); err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteCSV(&gotCSV, gotRes.Relation); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotCSV.Bytes(), wantCSV.Bytes()) {
		t.Errorf("%s: CSV bytes diverged", label)
	}
}

// TestDonorShardGridParity: across the (shards x workers) grid, both
// session modes produce byte-identical results to the unsharded serial
// reference — the contract that makes -shards a pure capacity knob.
func TestDonorShardGridParity(t *testing.T) {
	table4 := table4Base(t)
	workloads := []struct {
		name  string
		base  *dataset.Relation // nil = self-contained mode
		sigma rfd.Set
		req   *dataset.Relation
	}{
		{"table2-self", nil, figure1Sigma(t, table2(t).Schema()), table2(t)},
		{"table4-self", nil, table4Sigma(t, table4), dirtyTable4(t, table4)},
		{"table4-donor-pool", table4, table4Sigma(t, table4), table4Request(t, table4)},
	}
	for _, wl := range workloads {
		t.Run(wl.name, func(t *testing.T) {
			ref, err := NewSession(wl.base, wl.sigma)
			if err != nil {
				t.Fatal(err)
			}
			wantRes, wantTrace := runSession(t, ref, wl.req)
			if wantRes.Stats.Imputed == 0 {
				t.Fatal("workload imputed nothing; the parity grid is vacuous")
			}
			for _, shards := range []int{1, 2, 4, 8} {
				for _, workers := range []int{1, 4} {
					sess, err := NewSession(wl.base, wl.sigma,
						WithDonorShards(shards), WithWorkers(workers))
					if err != nil {
						t.Fatal(err)
					}
					gotRes, gotTrace := runSession(t, sess, wl.req)
					label := fmt.Sprintf("%s shards=%d workers=%d", wl.name, shards, workers)
					assertRunsEqual(t, label, wantRes, gotRes, wantTrace, gotTrace)
				}
			}
		})
	}
}

// TestShardedCandidateScanEquivalence: the scatter-gather donor sweep
// returns bit-identical candidate lists to the serial scan on random
// instances, for every shard count, and its per-sub-pool counters
// account for every donor row exactly once.
func TestShardedCandidateScanEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	for trial := 0; trial < 60; trial++ {
		rel := randomInstance(rng)
		sigma := randomSigma(rng, rel.Schema().Len())
		var deps rfd.Set
		attr := rng.Intn(rel.Schema().Len())
		for _, dep := range sigma {
			if dep.RHS.Attr == attr {
				deps = append(deps, dep)
			}
		}
		if len(deps) == 0 {
			continue
		}
		row := rng.Intn(rel.Len())
		m := engine.Compile(rel).Matcher()
		serial := findCandidateTuples(context.Background(), m, row, attr, deps)
		for _, shards := range []int{1, 2, 3, 8} {
			stats := newDonorShardStats(shards)
			rec := obs.NewMetrics()
			got := findCandidateTuplesSharded(context.Background(), m, row, attr, deps, shards, stats, rec)
			if len(serial) != len(got) {
				t.Fatalf("trial %d shards %d: candidate counts %d vs %d", trial, shards, len(serial), len(got))
			}
			for i := range serial {
				if serial[i] != got[i] {
					t.Fatalf("trial %d shards %d: candidate %d differs: %+v vs %+v",
						trial, shards, i, serial[i], got[i])
				}
			}
			var donors, cands int64
			for _, s := range stats.snapshot() {
				donors += s.Donors
				cands += s.Candidates
			}
			if donors != int64(rel.Len()-1) {
				t.Errorf("trial %d shards %d: counters saw %d donors, want %d",
					trial, shards, donors, rel.Len()-1)
			}
			if cands != int64(len(serial)) {
				t.Errorf("trial %d shards %d: counters saw %d candidates, want %d",
					trial, shards, cands, len(serial))
			}
			snap := rec.Snapshot()
			if snap.Counters["donor_shard_fanout"] == 0 {
				t.Errorf("trial %d shards %d: fan-out counter not recorded", trial, shards)
			}
		}
	}
}

// TestDonorShardStatsSurface: the session-level accumulator exists
// exactly when donor sharding is on, and a sharded run feeds it.
func TestDonorShardStatsSurface(t *testing.T) {
	rel := table2(t)
	sigma := figure1Sigma(t, rel.Schema())

	plain, err := NewSession(nil, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if plain.DonorShardStats() != nil {
		t.Error("unsharded session exposes donor shard stats")
	}

	sess, err := NewSession(nil, sigma, WithDonorShards(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Impute(context.Background(), rel); err != nil {
		t.Fatal(err)
	}
	stats := sess.DonorShardStats()
	if len(stats) != 4 {
		t.Fatalf("donor shard stats = %v, want 4 entries", stats)
	}
	var scans int64
	for _, s := range stats {
		scans += s.Scans
	}
	if scans == 0 {
		t.Error("sharded run recorded no sub-pool scans")
	}
}

// TestArtifactSessionDonorShards: the artifact boot path honors
// WithDonorShards — the loaded replica runs the scatter-gather sweep,
// exposes the accumulator, and stays byte-identical to the unsharded
// freshly compiled session.
func TestArtifactSessionDonorShards(t *testing.T) {
	base := table4Base(t)
	sigma := table4Sigma(t, base)
	req := table4Request(t, base)
	fresh, err := NewSession(base, sigma)
	if err != nil {
		t.Fatal(err)
	}
	data, err := fresh.EncodeArtifact()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := NewSessionFromArtifact(data, WithDonorShards(4))
	if err != nil {
		t.Fatal(err)
	}
	wantRes, wantTrace := runSession(t, fresh, req)
	gotRes, gotTrace := runSession(t, loaded, req)
	assertRunsEqual(t, "artifact-donor-shards", wantRes, gotRes, wantTrace, gotTrace)
	stats := loaded.DonorShardStats()
	if len(stats) != 4 {
		t.Fatalf("loaded session donor shard stats = %v, want 4 entries", stats)
	}
	var scans int64
	for _, s := range stats {
		scans += s.Scans
	}
	if scans == 0 {
		t.Error("loaded session recorded no sub-pool scans")
	}
}

// TestDonorShardStatsNilSafety: the accumulator's methods tolerate nil
// and out-of-range shards.
func TestDonorShardStatsNilSafety(t *testing.T) {
	var s *donorShardStats
	s.record(0, 1, 1) // must not panic
	if s.snapshot() != nil {
		t.Error("nil accumulator produced a snapshot")
	}
	st := newDonorShardStats(2)
	st.record(-1, 5, 5)
	st.record(2, 5, 5)
	for _, sh := range st.snapshot() {
		if sh.Scans != 0 {
			t.Error("out-of-range record landed in a shard")
		}
	}
}

// TestOptionsRejectNegativeDonorShards: construction-time validation
// covers the new knob.
func TestOptionsRejectNegativeDonorShards(t *testing.T) {
	rel := table2(t)
	sigma := figure1Sigma(t, rel.Schema())
	if _, err := NewSession(nil, sigma, WithDonorShards(-2)); err == nil {
		t.Error("negative DonorShards accepted")
	}
}

// TestDonorsIn: the per-band donor accounting sums to the serial
// sweep's Len()-1 wherever the query row falls.
func TestDonorsIn(t *testing.T) {
	for _, n := range []int{1, 2, 7, 20} {
		for _, shards := range []int{1, 2, 3, 8} {
			for row := 0; row < n; row++ {
				var total int64
				for _, rg := range chunkRanges(n, shards) {
					total += donorsIn(rg[0], rg[1], row)
				}
				if total != int64(n-1) {
					t.Fatalf("n=%d shards=%d row=%d: donors %d, want %d", n, shards, row, total, n-1)
				}
			}
		}
	}
}
