package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/rfd"
)

func TestChunkRanges(t *testing.T) {
	cases := []struct {
		n, workers int
		wantChunks int
	}{
		{10, 3, 3},
		{10, 1, 1},
		{3, 8, 3},
		{0, 4, 0},
		{7, 0, 1},
	}
	for _, c := range cases {
		got := chunkRanges(c.n, c.workers)
		if len(got) != c.wantChunks {
			t.Errorf("chunkRanges(%d,%d) = %v", c.n, c.workers, got)
		}
		// Ranges must tile [0,n) exactly.
		next := 0
		for _, rg := range got {
			if rg[0] != next || rg[1] <= rg[0] {
				t.Fatalf("chunkRanges(%d,%d) = %v not contiguous", c.n, c.workers, got)
			}
			next = rg[1]
		}
		if next != c.n {
			t.Errorf("chunkRanges(%d,%d) covers [0,%d)", c.n, c.workers, next)
		}
	}
}

// TestParallelEquivalentToSerial: every worker count produces the exact
// serial result on random instances — Imputations, Unimputed, and the
// final relation all match.
func TestParallelEquivalentToSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 80; trial++ {
		rel := randomInstance(rng)
		sigma := randomSigma(rng, rel.Schema().Len())
		serial, err := New(sigma).Impute(rel)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 8} {
			par, err := New(sigma, WithWorkers(workers)).Impute(rel)
			if err != nil {
				t.Fatal(err)
			}
			if !serial.Relation.Equal(par.Relation) {
				t.Fatalf("trial %d workers %d: relations diverge", trial, workers)
			}
			if len(serial.Imputations) != len(par.Imputations) {
				t.Fatalf("trial %d workers %d: imputation counts %d vs %d",
					trial, workers, len(serial.Imputations), len(par.Imputations))
			}
			for i := range serial.Imputations {
				if serial.Imputations[i] != par.Imputations[i] {
					t.Fatalf("trial %d workers %d: imputation %d differs:\n%+v\n%+v",
						trial, workers, i, serial.Imputations[i], par.Imputations[i])
				}
			}
			if serial.Stats.KeyRFDs != par.Stats.KeyRFDs {
				t.Fatalf("trial %d workers %d: key counts differ", trial, workers)
			}
		}
	}
}

func TestParallelPaperExample(t *testing.T) {
	rel := table2(t)
	sigma := figure1Sigma(t, rel.Schema())
	res, err := New(sigma, WithWorkers(4)).Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	phone := rel.Schema().MustIndex("Phone")
	if got := res.Relation.Get(6, phone).Str(); got != "310-392-9025" {
		t.Errorf("parallel t7[Phone] = %q", got)
	}
	if res.Stats.Imputed != 4 {
		t.Errorf("parallel imputed %d", res.Stats.Imputed)
	}
}

func TestParallelKeyTrackerAgreesWithSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for trial := 0; trial < 60; trial++ {
		rel := randomInstance(rng)
		sigma := randomSigma(rng, rel.Schema().Len())
		serial := newKeyTracker(context.Background(), engine.Compile(rel), sigma)
		for _, workers := range []int{2, 5} {
			par := newKeyTrackerParallel(context.Background(), engine.Compile(rel), sigma, workers)
			if par.keys != serial.keys {
				t.Fatalf("trial %d: key counts %d vs %d", trial, par.keys, serial.keys)
			}
			for s := range sigma {
				if par.isKey[s] != serial.isKey[s] {
					t.Fatalf("trial %d: dep %d verdicts differ", trial, s)
				}
			}
		}
	}
}

func TestParallelCandidateScanEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 60; trial++ {
		rel := randomInstance(rng)
		sigma := randomSigma(rng, rel.Schema().Len())
		var deps rfd.Set
		attr := rng.Intn(rel.Schema().Len())
		for _, dep := range sigma {
			if dep.RHS.Attr == attr {
				deps = append(deps, dep)
			}
		}
		if len(deps) == 0 {
			continue
		}
		row := rng.Intn(rel.Len())
		m := engine.Compile(rel).Matcher()
		serial := findCandidateTuples(context.Background(), m, row, attr, deps)
		par := findCandidateTuplesParallel(context.Background(), m, row, attr, deps, 3)
		if len(serial) != len(par) {
			t.Fatalf("trial %d: candidate counts %d vs %d", trial, len(serial), len(par))
		}
		for i := range serial {
			if serial[i] != par[i] {
				t.Fatalf("trial %d: candidate %d differs: %+v vs %+v", trial, i, serial[i], par[i])
			}
		}
	}
}
