package core

import (
	"fmt"
	"strings"

	"repro/internal/dataset"
)

// Report renders a human-readable audit of the run: one line per imputed
// cell with full provenance (donor row, distance, cluster, attempt) and
// one per cell left missing. Attribute names come from the schema. This
// is the text cmd/renuver prints under -report.
func (res *Result) Report(schema *dataset.Schema) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "imputed %d/%d cells, %d left missing\n",
		res.Stats.Imputed, res.Stats.MissingCells, res.Stats.Unimputed)
	for _, imp := range res.Imputations {
		source := ""
		if imp.DonorSource >= 0 {
			source = fmt.Sprintf(" [donor dataset %d]", imp.DonorSource)
		}
		fmt.Fprintf(&sb, "  row %d, %s <- %q (donor row %d%s, dist %.3f, cluster thr %g, attempt %d)\n",
			imp.Cell.Row+1, schema.Attr(imp.Cell.Attr).Name, imp.Value.String(),
			imp.Donor+1, source, imp.Distance, imp.ClusterThreshold, imp.Attempt)
	}
	for _, cell := range res.Unimputed {
		fmt.Fprintf(&sb, "  row %d, %s left missing\n",
			cell.Row+1, schema.Attr(cell.Attr).Name)
	}
	return sb.String()
}
