package core

import (
	"context"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/rfd"
)

// TestImputeStatsObservability is the acceptance check for the metrics
// layer: a paper-example run must report non-zero search, verification,
// and phase-timing figures, and the recorder must see the same totals.
func TestImputeStatsObservability(t *testing.T) {
	rel := table2(t)
	m := obs.NewMetrics()
	im := New(figure1Sigma(t, rel.Schema()), WithRecorder(m))
	res, err := im.Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats

	if st.DonorsScanned == 0 {
		t.Error("DonorsScanned = 0, want > 0")
	}
	if st.CandidatesEvaluated == 0 {
		t.Error("CandidatesEvaluated = 0, want > 0")
	}
	if st.FaultlessChecks == 0 {
		t.Error("FaultlessChecks = 0, want > 0")
	}
	if st.ClustersScanned == 0 {
		t.Error("ClustersScanned = 0, want > 0")
	}
	if st.CandidatesTried < st.Imputed {
		t.Errorf("CandidatesTried = %d < Imputed = %d", st.CandidatesTried, st.Imputed)
	}
	for name, d := range map[string]int64{
		"Preprocess":      int64(st.Phases.Preprocess),
		"CandidateSearch": int64(st.Phases.CandidateSearch),
		"Verify":          int64(st.Phases.Verify),
		"Total":           int64(st.Phases.Total),
	} {
		if d <= 0 {
			t.Errorf("Phases.%s = %d, want > 0", name, d)
		}
	}
	if st.Phases.Total < st.Phases.CandidateSearch {
		t.Errorf("Total %v < CandidateSearch %v", st.Phases.Total, st.Phases.CandidateSearch)
	}

	// Per-attribute attribution must account for every imputation.
	if len(st.ImputedByAttr) != rel.Schema().Len() {
		t.Fatalf("len(ImputedByAttr) = %d, want %d", len(st.ImputedByAttr), rel.Schema().Len())
	}
	sum := 0
	for _, n := range st.ImputedByAttr {
		sum += n
	}
	if sum != st.Imputed {
		t.Errorf("sum(ImputedByAttr) = %d, want Imputed = %d", sum, st.Imputed)
	}

	// The recorder received the same totals, batched at run end.
	s := m.Snapshot()
	for ctr, want := range map[string]int{
		"missing_cells":        st.MissingCells,
		"imputations":          st.Imputed,
		"donors_scanned":       st.DonorsScanned,
		"candidates_evaluated": st.CandidatesEvaluated,
		"faultless_checks":     st.FaultlessChecks,
		"faultless_failures":   st.VerifyRejections,
		"clusters_scanned":     st.ClustersScanned,
	} {
		if got := s.Counters[ctr]; got != int64(want) {
			t.Errorf("recorder %s = %d, want %d", ctr, got, want)
		}
	}
	if s.Phases["total"].Count != 1 || s.Phases["total"].Nanos != int64(st.Phases.Total) {
		t.Errorf("recorder total phase = %+v, want 1 obs of %d ns", s.Phases["total"], int64(st.Phases.Total))
	}
	if histN := s.Histograms["candidates_per_cell"].Count; histN != int64(st.ClustersScanned) {
		t.Errorf("candidates_per_cell observations = %d, want one per cluster scan (%d)", histN, st.ClustersScanned)
	}
}

// TestImputeStatsWithoutRecorder checks Result.Stats is populated even
// when no recorder is configured (the default Nop path).
func TestImputeStatsWithoutRecorder(t *testing.T) {
	rel := table2(t)
	res, err := New(figure1Sigma(t, rel.Schema())).Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DonorsScanned == 0 || res.Stats.FaultlessChecks == 0 || res.Stats.Phases.Total <= 0 {
		t.Errorf("stats without recorder = %+v", res.Stats)
	}
}

// TestParallelImputeRaceStress drives many concurrent ImputeContext calls
// over a shared Σ, a shared input relation, and a shared recorder with
// parallel workers enabled. Run with -race this pins down that the
// imputer is stateless across calls and the metrics sink is lock-free
// safe.
func TestParallelImputeRaceStress(t *testing.T) {
	rel := table2(t)
	sigma := figure1Sigma(t, rel.Schema())
	m := obs.NewMetrics()
	// A shared sampling tracer at 100%: every concurrent run's every cell
	// delivers its full event sequence into one ring. The capacity covers
	// all traces, so none is evicted and all can be audited afterwards.
	const goroutines = 8
	const iterations = 5
	tr := obs.NewRingTracer(goroutines*iterations*4, 1)
	im := New(sigma, WithRecorder(m), WithWorkers(4), WithTracer(tr))

	var wg sync.WaitGroup
	errs := make(chan error, goroutines*iterations)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				res, err := im.ImputeContext(context.Background(), rel)
				if err != nil {
					errs <- err
					return
				}
				if res.Stats.Imputed != 4 {
					errs <- &statErr{got: res.Stats.Imputed}
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	s := m.Snapshot()
	if got := s.Counters["imputations"]; got != goroutines*iterations*4 {
		t.Errorf("shared recorder imputations = %d, want %d", got, goroutines*iterations*4)
	}
	if got := s.Phases["total"].Count; got != goroutines*iterations {
		t.Errorf("shared recorder total-phase count = %d, want %d", got, goroutines*iterations)
	}

	// Every traced cell's sequence must be well-formed and free of
	// foreign events: concurrent runs deliver whole cells atomically, so
	// no interleaving is possible.
	cells := tr.Cells()
	if len(cells) != goroutines*iterations*4 {
		t.Fatalf("ring holds %d cell traces, want %d (evicted %d)",
			len(cells), goroutines*iterations*4, tr.Evicted())
	}
	for _, evs := range cells {
		if len(evs) == 0 {
			t.Fatal("empty cell trace in ring")
		}
		row, attr := evs[0].Row, evs[0].Attr
		if evs[0].Kind != obs.EvCellStarted {
			t.Errorf("cell (%d,%d): first event %v, want cell_started", row, attr, evs[0].Kind)
		}
		last := evs[len(evs)-1].Kind
		if last != obs.EvCellResolved && last != obs.EvCellAbandoned {
			t.Errorf("cell (%d,%d): last event %v, want terminal", row, attr, last)
		}
		for i, ev := range evs {
			if ev.Row != row || ev.Attr != attr {
				t.Errorf("cell (%d,%d): foreign event for (%d,%d) interleaved at %d",
					row, attr, ev.Row, ev.Attr, i)
			}
			if ev.Seq != i {
				t.Errorf("cell (%d,%d): event %d has Seq %d", row, attr, i, ev.Seq)
			}
		}
	}
}

// TestParallelImputeSampledTracer is the stress shape users actually
// run: a small ring with every-Nth sampling under concurrency. Traces
// may be evicted, but the retained ones must still be whole.
func TestParallelImputeSampledTracer(t *testing.T) {
	rel := table2(t)
	sigma := figure1Sigma(t, rel.Schema())
	tr := obs.NewRingTracer(4, 2)
	im := New(sigma, WithWorkers(4), WithTracer(tr))

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				if _, err := im.ImputeContext(context.Background(), rel); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	if tr.Len() == 0 {
		t.Fatal("sampled tracer retained nothing")
	}
	for _, evs := range tr.Cells() {
		if !tr.Sample(evs[0].Row, evs[0].Attr) {
			t.Errorf("cell (%d,%d) traced but outside the sample", evs[0].Row, evs[0].Attr)
		}
		if evs[0].Kind != obs.EvCellStarted {
			t.Errorf("trace starts with %v", evs[0].Kind)
		}
		last := evs[len(evs)-1].Kind
		if last != obs.EvCellResolved && last != obs.EvCellAbandoned {
			t.Errorf("trace ends with %v", last)
		}
		for i, ev := range evs {
			if ev.Row != evs[0].Row || ev.Attr != evs[0].Attr || ev.Seq != i {
				t.Errorf("malformed event %d: %+v", i, ev)
			}
		}
	}
}

type statErr struct{ got int }

func (e *statErr) Error() string { return "concurrent run imputed unexpected cell count" }

// TestDonorPoolStatsParity is the regression test for the donor-pool
// accounting fix: with an empty pool, ImputeWithDonors must produce the
// same imputations, provenance lookups, and statistics as Impute.
func TestDonorPoolStatsParity(t *testing.T) {
	rel := table2(t)
	sigma := figure1Sigma(t, rel.Schema())

	base, err := New(sigma).Impute(rel)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := New(sigma).ImputeWithDonors(rel, nil)
	if err != nil {
		t.Fatal(err)
	}

	if pooled.Stats.Imputed != base.Stats.Imputed ||
		pooled.Stats.MissingCells != base.Stats.MissingCells ||
		pooled.Stats.FaultlessChecks != base.Stats.FaultlessChecks ||
		pooled.Stats.CandidatesTried != base.Stats.CandidatesTried ||
		pooled.Stats.VerifyRejections != base.Stats.VerifyRejections ||
		pooled.Stats.ClustersScanned != base.Stats.ClustersScanned {
		t.Errorf("donor-pool stats diverge:\n base   %+v\n pooled %+v", base.Stats, pooled.Stats)
	}
	if len(pooled.Stats.ImputedByAttr) != len(base.Stats.ImputedByAttr) {
		t.Fatalf("ImputedByAttr arity: %d vs %d", len(pooled.Stats.ImputedByAttr), len(base.Stats.ImputedByAttr))
	}
	for a := range base.Stats.ImputedByAttr {
		if pooled.Stats.ImputedByAttr[a] != base.Stats.ImputedByAttr[a] {
			t.Errorf("ImputedByAttr[%d] = %d, want %d", a, pooled.Stats.ImputedByAttr[a], base.Stats.ImputedByAttr[a])
		}
	}
	for _, imp := range base.Imputations {
		got, ok := pooled.ImputedValue(imp.Cell)
		if !ok {
			t.Errorf("cell %v imputed by Impute but not by ImputeWithDonors", imp.Cell)
			continue
		}
		if got.Donor != imp.Donor || got.DonorSource != -1 || !got.Value.Equal(imp.Value) {
			t.Errorf("cell %v: pooled %+v vs base %+v", imp.Cell, got, imp)
		}
	}
	if pooled.Stats.Phases.Total <= 0 || pooled.Stats.Phases.CandidateSearch <= 0 {
		t.Errorf("donor-pool phases not timed: %+v", pooled.Stats.Phases)
	}
}

// TestDonorSourcedStatsAttribution checks that imputations whose value
// came from the donor pool are counted and attributed exactly like
// target-sourced ones.
func TestDonorSourcedStatsAttribution(t *testing.T) {
	rel, err := dataset.ReadCSVString(`Name,City,Phone
Granita,Malibu,
Spago,W. Hollywood,310/652-4025
`)
	if err != nil {
		t.Fatal(err)
	}
	donor, err := dataset.ReadCSVString(`Name,City,Phone
Granita,Malibu,310/456-0488
`)
	if err != nil {
		t.Fatal(err)
	}
	// φ4: Name(<=4) -> Phone(<=1) alone suffices and keeps the example
	// focused on the donor path: only the pool tuple shares the Name.
	sigma := rfd.Set{rfd.MustParse("Name(<=4) -> Phone(<=1)", rel.Schema())}
	m := obs.NewMetrics()
	im := New(sigma, WithRecorder(m))
	res, err := im.ImputeWithDonors(rel, []*dataset.Relation{donor})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Imputed != 1 {
		t.Fatalf("imputed = %d, want 1 (stats %+v)", res.Stats.Imputed, res.Stats)
	}
	phone := rel.Schema().MustIndex("Phone")
	imp, ok := res.ImputedValue(dataset.Cell{Row: 0, Attr: phone})
	if !ok {
		t.Fatal("donor-sourced imputation not retrievable via ImputedValue")
	}
	if imp.DonorSource != 0 || imp.Donor != 0 {
		t.Errorf("provenance = source %d row %d, want donor pool 0 row 0", imp.DonorSource, imp.Donor)
	}
	if res.Stats.ImputedByAttr[phone] != 1 {
		t.Errorf("ImputedByAttr[Phone] = %d, want 1", res.Stats.ImputedByAttr[phone])
	}
	if got := m.Counter(obs.CtrImputations); got != 1 {
		t.Errorf("recorder imputations = %d, want 1", got)
	}
	// The donor tuple itself must count toward the scan volume.
	if res.Stats.DonorsScanned < 2 {
		t.Errorf("DonorsScanned = %d, want >= 2 (target peer + pool tuple)", res.Stats.DonorsScanned)
	}
}
