package core

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/rfd"
)

func streamBase(t *testing.T) (*dataset.Relation, rfd.Set) {
	t.Helper()
	rel, err := dataset.ReadCSVString(`A,B
k1,v1
k2,v2
`)
	if err != nil {
		t.Fatal(err)
	}
	return rel, rfd.Set{rfd.MustParse("A(<=0) -> B(<=0)", rel.Schema())}
}

func TestStreamAppendImputesOnArrival(t *testing.T) {
	rel, sigma := streamBase(t)
	s := New(sigma).NewStream(rel)
	imps, err := s.Append(dataset.Tuple{dataset.NewString("k1"), dataset.Null})
	if err != nil {
		t.Fatal(err)
	}
	if len(imps) != 1 {
		t.Fatalf("imputations = %v", imps)
	}
	if got := s.Relation().Get(2, 1); got.Str() != "v1" {
		t.Errorf("appended tuple B = %v, want v1", got)
	}
	if st := s.Stats(); st.Imputed != 1 || st.MissingCells != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestStreamArrivalBecomesDonor(t *testing.T) {
	rel, sigma := streamBase(t)
	s := New(sigma).NewStream(rel)
	// New key "k9" arrives complete, then an incomplete "k9" arrives and
	// must be fillable from the earlier arrival.
	if _, err := s.Append(dataset.Tuple{dataset.NewString("k9"), dataset.NewString("v9")}); err != nil {
		t.Fatal(err)
	}
	imps, err := s.Append(dataset.Tuple{dataset.NewString("k9"), dataset.Null})
	if err != nil {
		t.Fatal(err)
	}
	if len(imps) != 1 || imps[0].Value.Str() != "v9" {
		t.Errorf("imputations = %+v, want v9 from the earlier arrival", imps)
	}
}

func TestStreamUnimputableStaysMissingThenRetry(t *testing.T) {
	rel, sigma := streamBase(t)
	s := New(sigma).NewStream(rel)
	// "k7" has no donor yet: stays missing.
	if _, err := s.Append(dataset.Tuple{dataset.NewString("k7"), dataset.Null}); err != nil {
		t.Fatal(err)
	}
	if !s.Relation().Get(2, 1).IsNull() {
		t.Fatal("imputed without any donor")
	}
	if st := s.Stats(); st.Unimputed != 1 {
		t.Errorf("stats = %+v", st)
	}
	// The donor arrives later; RetryMissing fills the backlog.
	if _, err := s.Append(dataset.Tuple{dataset.NewString("k7"), dataset.NewString("v7")}); err != nil {
		t.Fatal(err)
	}
	imps := s.RetryMissing()
	if len(imps) != 1 || imps[0].Value.Str() != "v7" {
		t.Fatalf("RetryMissing = %+v", imps)
	}
	if got := s.Relation().Get(2, 1); got.Str() != "v7" {
		t.Errorf("backlog cell = %v", got)
	}
	if st := s.Stats(); st.Unimputed != 0 || st.Imputed != 1 {
		t.Errorf("stats after retry = %+v", st)
	}
}

func TestStreamKeyRFDFreedByArrival(t *testing.T) {
	// φ is key on the base (no pair satisfies A(<=0)); an arriving
	// duplicate key makes it usable without a full rescan.
	rel, err := dataset.ReadCSVString(`A,B
k1,v1
k2,v2
`)
	if err != nil {
		t.Fatal(err)
	}
	sigma := rfd.Set{rfd.MustParse("A(<=0) -> B(<=0)", rel.Schema())}
	if !sigma[0].IsKey(rel) {
		t.Fatal("precondition: φ key on base")
	}
	s := New(sigma).NewStream(rel)
	// Incomplete k1 arrives first: the pair (row0, new) satisfies the
	// LHS... wait, its B is missing, but the LHS is A only -> the pair
	// (k1, k1) flips φ to non-key AND provides the donor.
	imps, err := s.Append(dataset.Tuple{dataset.NewString("k1"), dataset.Null})
	if err != nil {
		t.Fatal(err)
	}
	if len(imps) != 1 || imps[0].Value.Str() != "v1" {
		t.Errorf("imputations = %+v", imps)
	}
}

func TestStreamArityValidation(t *testing.T) {
	rel, sigma := streamBase(t)
	s := New(sigma).NewStream(rel)
	if _, err := s.Append(dataset.Tuple{dataset.NewString("x")}); err == nil {
		t.Error("wrong arity accepted")
	}
}

func TestStreamDoesNotMutateBase(t *testing.T) {
	rel, sigma := streamBase(t)
	s := New(sigma).NewStream(rel)
	if _, err := s.Append(dataset.Tuple{dataset.NewString("k1"), dataset.Null}); err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Error("base relation mutated by stream")
	}
}

func TestStreamMatchesBatchOnSameData(t *testing.T) {
	// Feeding the incomplete tuples of Table 2 one at a time (after the
	// complete ones) must impute at least as consistently as the batch
	// run does on the same donors: each imputed value must match what a
	// batch imputation over the final instance would accept.
	rel := table2(t)
	sigma := figure1Sigma(t, rel.Schema())
	base := rel.Head(3) // t1..t3 are complete
	s := New(sigma).NewStream(base)
	for i := 3; i < rel.Len(); i++ {
		if _, err := s.Append(rel.Row(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.RetryMissing()
	got := s.Relation()
	if got.Len() != rel.Len() {
		t.Fatalf("stream length %d", got.Len())
	}
	// The worked-example cells must agree with the batch outcome.
	phone := rel.Schema().MustIndex("Phone")
	city := rel.Schema().MustIndex("City")
	if v := got.Get(3, phone); v.Str() != "213/857-0034" {
		t.Errorf("t4[Phone] = %q", v.Str())
	}
	if v := got.Get(5, city); v.Str() != "Hollywood" {
		t.Errorf("t6[City] = %q", v.Str())
	}
	if v := got.Get(6, phone); v.Str() != "310-392-9025" {
		t.Errorf("t7[Phone] = %q", v.Str())
	}
}
