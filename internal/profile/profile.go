// Package profile computes per-attribute summaries of a relation — the
// first step of any cleaning workflow and the statistics that inform
// threshold selection for RFDc discovery (domain width, null rate,
// distinctness, typical pairwise distance).
package profile

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/dataset"
	"repro/internal/distance"
)

// ValueCount is one entry of an attribute's top-values list.
type ValueCount struct {
	Value string
	Count int
}

// AttrProfile summarizes one attribute.
type AttrProfile struct {
	Name     string
	Kind     dataset.Kind
	Rows     int
	Nulls    int
	Distinct int
	// Min/Max/Mean are populated for numeric attributes only.
	Min, Max, Mean float64
	// TopValues lists the most frequent values, ties broken
	// alphabetically, capped by Options.TopK.
	TopValues []ValueCount
	// MeanPairDistance is the mean domain distance over sampled value
	// pairs — the number a discovery threshold is calibrated against.
	MeanPairDistance float64
}

// NullRate is the fraction of missing cells.
func (p AttrProfile) NullRate() float64 {
	if p.Rows == 0 {
		return 0
	}
	return float64(p.Nulls) / float64(p.Rows)
}

// Options tunes profiling.
type Options struct {
	// TopK caps the per-attribute top-values list. Zero means 5.
	TopK int
	// SamplePairs caps the pairwise-distance sample. Zero means 1000.
	SamplePairs int
	// Seed drives pair sampling.
	Seed int64
}

// Relation profiles every attribute of the instance.
func Relation(rel *dataset.Relation, opts Options) []AttrProfile {
	if opts.TopK == 0 {
		opts.TopK = 5
	}
	if opts.SamplePairs == 0 {
		opts.SamplePairs = 1000
	}
	m := rel.Schema().Len()
	out := make([]AttrProfile, m)
	rng := rand.New(rand.NewSource(opts.Seed))
	for a := 0; a < m; a++ {
		out[a] = profileAttr(rel, a, opts, rng)
	}
	return out
}

func profileAttr(rel *dataset.Relation, attr int, opts Options, rng *rand.Rand) AttrProfile {
	p := AttrProfile{
		Name: rel.Schema().Attr(attr).Name,
		Kind: rel.Schema().Attr(attr).Kind,
		Rows: rel.Len(),
		Min:  math.NaN(), Max: math.NaN(), Mean: math.NaN(),
	}
	counts := map[string]int{}
	var observed []dataset.Value
	sum := 0.0
	for i := 0; i < rel.Len(); i++ {
		v := rel.Get(i, attr)
		if v.IsNull() {
			p.Nulls++
			continue
		}
		observed = append(observed, v)
		counts[v.String()]++
		if p.Kind.Numeric() {
			f := v.Float()
			if math.IsNaN(p.Min) || f < p.Min {
				p.Min = f
			}
			if math.IsNaN(p.Max) || f > p.Max {
				p.Max = f
			}
			sum += f
		}
	}
	p.Distinct = len(counts)
	if p.Kind.Numeric() && len(observed) > 0 {
		p.Mean = sum / float64(len(observed))
	}

	type kv struct {
		k string
		c int
	}
	var tops []kv
	for k, c := range counts {
		tops = append(tops, kv{k, c})
	}
	sort.Slice(tops, func(i, j int) bool {
		if tops[i].c != tops[j].c {
			return tops[i].c > tops[j].c
		}
		return tops[i].k < tops[j].k
	})
	for i := 0; i < len(tops) && i < opts.TopK; i++ {
		p.TopValues = append(p.TopValues, ValueCount{Value: tops[i].k, Count: tops[i].c})
	}

	// Sampled mean pairwise distance.
	if len(observed) >= 2 {
		total, n := 0.0, 0
		for k := 0; k < opts.SamplePairs; k++ {
			i, j := rng.Intn(len(observed)), rng.Intn(len(observed))
			if i == j {
				continue
			}
			d := distance.Values(observed[i], observed[j])
			if !distance.IsMissing(d) {
				total += d
				n++
			}
		}
		if n > 0 {
			p.MeanPairDistance = total / float64(n)
		}
	}
	return p
}

// Render prints the profiles as an aligned text table.
func Render(profiles []AttrProfile) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %-7s %6s %6s %8s %10s %10s %10s %9s  %s\n",
		"Attribute", "Kind", "Rows", "Nulls", "Distinct", "Min", "Max", "Mean", "PairDist", "Top values")
	for _, p := range profiles {
		minS, maxS, meanS := "-", "-", "-"
		if !math.IsNaN(p.Min) {
			minS = fmt.Sprintf("%.3g", p.Min)
			maxS = fmt.Sprintf("%.3g", p.Max)
			meanS = fmt.Sprintf("%.3g", p.Mean)
		}
		var tops []string
		for _, tv := range p.TopValues {
			tops = append(tops, fmt.Sprintf("%s(%d)", tv.Value, tv.Count))
		}
		fmt.Fprintf(&sb, "%-16s %-7s %6d %6d %8d %10s %10s %10s %9.2f  %s\n",
			p.Name, p.Kind, p.Rows, p.Nulls, p.Distinct, minS, maxS, meanS,
			p.MeanPairDistance, strings.Join(tops, " "))
	}
	return sb.String()
}
