package profile

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dataset"
)

func sample(t testing.TB) *dataset.Relation {
	t.Helper()
	rel, err := dataset.ReadCSVString(`City,Score
LA,1.0
LA,2.0
NY,3.0
NY,
SF,5.0
`)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

func TestProfileBasics(t *testing.T) {
	profiles := Relation(sample(t), Options{Seed: 1})
	if len(profiles) != 2 {
		t.Fatalf("profiles = %d", len(profiles))
	}
	city := profiles[0]
	if city.Name != "City" || city.Kind != dataset.KindString {
		t.Errorf("city header = %+v", city)
	}
	if city.Rows != 5 || city.Nulls != 0 || city.Distinct != 3 {
		t.Errorf("city counts = %+v", city)
	}
	if !math.IsNaN(city.Min) {
		t.Error("string attribute has numeric min")
	}
	score := profiles[1]
	if score.Nulls != 1 || score.NullRate() != 0.2 {
		t.Errorf("score nulls = %d rate %v", score.Nulls, score.NullRate())
	}
	if score.Min != 1 || score.Max != 5 {
		t.Errorf("score range = [%v, %v]", score.Min, score.Max)
	}
	if math.Abs(score.Mean-2.75) > 1e-9 {
		t.Errorf("score mean = %v, want 2.75", score.Mean)
	}
}

func TestProfileTopValues(t *testing.T) {
	profiles := Relation(sample(t), Options{TopK: 2, Seed: 1})
	city := profiles[0]
	if len(city.TopValues) != 2 {
		t.Fatalf("top values = %v", city.TopValues)
	}
	// LA and NY both have count 2; alphabetical tie-break puts LA first.
	if city.TopValues[0].Value != "LA" || city.TopValues[0].Count != 2 {
		t.Errorf("top value = %+v", city.TopValues[0])
	}
	if city.TopValues[1].Value != "NY" {
		t.Errorf("second value = %+v", city.TopValues[1])
	}
}

func TestProfilePairDistance(t *testing.T) {
	profiles := Relation(sample(t), Options{Seed: 1, SamplePairs: 500})
	score := profiles[1]
	// Scores {1,2,3,5}: mean pairwise |diff| is about 1.9-2.2.
	if score.MeanPairDistance < 1 || score.MeanPairDistance > 3 {
		t.Errorf("score mean pair distance = %v", score.MeanPairDistance)
	}
	city := profiles[0]
	if city.MeanPairDistance <= 0 {
		t.Errorf("city mean pair distance = %v", city.MeanPairDistance)
	}
}

func TestProfileDegenerate(t *testing.T) {
	empty := dataset.NewRelation(dataset.NewSchema(
		dataset.Attribute{Name: "A", Kind: dataset.KindInt}))
	profiles := Relation(empty, Options{})
	if profiles[0].Rows != 0 || profiles[0].Distinct != 0 {
		t.Errorf("empty profile = %+v", profiles[0])
	}
	allNull, err := dataset.ReadCSVString("A\n_\n_\n")
	if err != nil {
		t.Fatal(err)
	}
	p := Relation(allNull, Options{})[0]
	if p.Nulls != 2 || p.NullRate() != 1 || len(p.TopValues) != 0 {
		t.Errorf("all-null profile = %+v", p)
	}
}

func TestRender(t *testing.T) {
	text := Render(Relation(sample(t), Options{Seed: 1}))
	for _, want := range []string{"City", "Score", "LA(2)", "Distinct"} {
		if !strings.Contains(text, want) {
			t.Errorf("render lacks %q:\n%s", want, text)
		}
	}
}

func TestProfileDeterminism(t *testing.T) {
	a := Relation(sample(t), Options{Seed: 9})
	b := Relation(sample(t), Options{Seed: 9})
	for i := range a {
		if a[i].MeanPairDistance != b[i].MeanPairDistance {
			t.Fatal("sampled distances nondeterministic")
		}
	}
}
