package par

import (
	"strings"
	"testing"
)

func TestCheck(t *testing.T) {
	for _, v := range []int{0, 1, 7, Max} {
		if err := Check("Workers", v); err != nil {
			t.Errorf("Check(%d) = %v, want nil", v, err)
		}
	}
	for _, v := range []int{-1, -100, Max + 1, 1 << 20} {
		if err := Check("Workers", v); err == nil {
			t.Errorf("Check(%d) accepted", v)
		}
	}
}

func TestCheckNamesTheKnob(t *testing.T) {
	err := Check("-donor-shards", -3)
	if err == nil || !strings.Contains(err.Error(), "-donor-shards") {
		t.Errorf("error %v does not name the knob", err)
	}
}

func TestParallelismValidate(t *testing.T) {
	if err := (Parallelism{}).Validate(); err != nil {
		t.Errorf("zero value invalid: %v", err)
	}
	if err := (Parallelism{Workers: 4, Shards: 8, DonorShards: 2}).Validate(); err != nil {
		t.Errorf("valid triple rejected: %v", err)
	}
	cases := []struct {
		p    Parallelism
		want string
	}{
		{Parallelism{Workers: -1}, "Workers"},
		{Parallelism{Shards: Max + 1}, "Shards"},
		{Parallelism{DonorShards: -2}, "DonorShards"},
	}
	for _, c := range cases {
		err := c.p.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Validate(%+v) = %v, want error naming %s", c.p, err, c.want)
		}
	}
}
