// Package par is the single home for the repo's parallelism-knob
// validation rule. Imputation options, discovery config, and the CLI
// flags of cmd/renuver and cmd/rfdiscover all carry some subset of
// {Workers, Shards, DonorShards}; before this package each surface
// re-implemented the same bounds with slightly different wording. The
// rule is uniform:
//
//   - 0 means the documented default (all CPUs, unsharded, single pool);
//   - negative values are invalid — rejected at construction or flag
//     parse, never clamped mid-run;
//   - values above Max are invalid — a parallelism degree beyond 1024 is
//     almost certainly a typo, and catching it early beats spawning a
//     goroutine storm.
package par

import "fmt"

// Max bounds every parallelism-shaped knob in the repo (workers,
// discovery shards, donor shards).
const Max = 1024

// Check enforces the shared rule for one knob. name appears verbatim in
// the error, so callers pass their own surface's spelling ("-workers"
// at flag parse, "core: Workers" from Options.Validate).
func Check(name string, v int) error {
	if v < 0 {
		return fmt.Errorf("%s must be >= 0, got %d", name, v)
	}
	if v > Max {
		return fmt.Errorf("%s must be <= %d, got %d", name, Max, v)
	}
	return nil
}

// Parallelism bundles the three parallelism knobs every layer of the
// stack understands. The zero value means "all defaults" and is always
// valid.
type Parallelism struct {
	// Workers is the number of goroutines for tuple scans and discovery
	// search (0 = all CPUs, 1 = serial). Output is bit-identical for any
	// value.
	Workers int
	// Shards splits discovery pattern materialization into contiguous
	// bands bounding peak memory (0 = unsharded). Output is identical
	// for any value.
	Shards int
	// DonorShards splits the imputation donor pool into independent
	// sub-pools for scatter-gather candidate search (0 or 1 = single
	// pool). Output is byte-identical for any value.
	DonorShards int
}

// Validate applies Check to each knob, naming the offending field.
func (p Parallelism) Validate() error {
	if err := Check("Workers", p.Workers); err != nil {
		return err
	}
	if err := Check("Shards", p.Shards); err != nil {
		return err
	}
	return Check("DonorShards", p.DonorShards)
}
