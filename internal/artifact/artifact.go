// Package artifact is the binary codec under the compiled-session
// artifact format: a versioned, checksummed container of flat slabs
// addressed by an offset table, designed so a serving replica can load
// a precompiled session near-instantly — full-read or mmap-style — and
// skip RFD discovery and engine compilation entirely.
//
// Layout (all integers little-endian, independent of the host):
//
//	offset 0   magic      [4]byte "RNVA"
//	       4   version    uint16 — the format version, bumped on any
//	                      incompatible layout change
//	       6   endian     uint8 0x01 (little); a big-endian writer would
//	                      stamp 0x02, and this decoder rejects it
//	       7   reserved   uint8 0
//	       8   sections   uint32 — entry count of the section table
//	      12   size       uint64 — total file length, trailer included
//	      20   table      sections × {id uint32, pad uint32,
//	                                  offset uint64, length uint64}
//	       …   payload    the sections' slabs, each 8-byte aligned
//	  size-8   checksum   uint64 — CRC-64/ECMA over bytes [0, size-8)
//
// Sections carry application state (columnar view, interning tables,
// candidate-index buckets, the Σ rule set — see the Sec* ids); inside a
// section every slab is count-prefixed and fixed-width, so references
// between structures are integer offsets, never pointers, and a decoder
// can either copy slabs out or keep reading the mapped bytes in place.
//
// Decoding is defensive: every count is validated against the bytes
// actually remaining before any allocation, so a truncated or
// bit-flipped input fails with a typed error (ErrBadMagic, ErrVersion,
// ErrChecksum, ErrTruncated, ErrCorrupt) instead of panicking or
// over-allocating.
package artifact

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"math"
)

// FormatVersion is the artifact layout version this package writes and
// the only version it accepts back.
const FormatVersion uint16 = 1

// magic identifies a RENUVER artifact file.
var magic = [4]byte{'R', 'N', 'V', 'A'}

// endianLittle is the endianness marker the writer stamps; the format
// is defined little-endian regardless of the host.
const endianLittle uint8 = 1

// headerLen is the fixed prefix before the section table.
const headerLen = 20

// trailerLen is the checksum suffix.
const trailerLen = 8

// tableEntryLen is one section-table entry.
const tableEntryLen = 24

// Section ids of the compiled-session artifact. Ids are stable across
// format versions; a reader asks for the sections it understands and
// ignores the rest.
const (
	// SecMeta is the compiled-session summary (tuple count, arity, rule
	// count) — readable without decoding anything else.
	SecMeta uint32 = 1
	// SecSchema is the relation schema: attribute names and kinds.
	SecSchema uint32 = 2
	// SecColumns is the columnar cell data: per-attribute kind, numeric
	// payload, and interned-string id slabs.
	SecColumns uint32 = 3
	// SecInterners is the per-attribute interning tables: string blobs
	// with offset tables, pre-decoded rune slabs, rune counts, and the
	// PR 6 alphabet masks.
	SecInterners uint32 = 4
	// SecIndex is the candidate Index: equality buckets, sorted numeric
	// range columns, and string length buckets.
	SecIndex uint32 = 5
	// SecSigma is the Σ rule set (RFDc LHS/RHS constraints).
	SecSigma uint32 = 6
)

// The typed decode failures. Every error returned by Decode and by
// Cursor reads wraps one of these, so callers (and the fuzz harness)
// can classify failures with errors.Is.
var (
	// ErrBadMagic: the input does not start with the artifact magic.
	ErrBadMagic = errors.New("artifact: bad magic")
	// ErrVersion: the input's format version is not FormatVersion.
	ErrVersion = errors.New("artifact: unsupported format version")
	// ErrChecksum: the whole-file CRC does not match the trailer.
	ErrChecksum = errors.New("artifact: checksum mismatch")
	// ErrTruncated: the input is shorter than its structure declares.
	ErrTruncated = errors.New("artifact: truncated input")
	// ErrCorrupt: a structurally invalid value (overlapping sections,
	// out-of-range offset, impossible count) with a valid checksum.
	ErrCorrupt = errors.New("artifact: corrupt input")
)

// crcTable is the CRC-64/ECMA polynomial table used for the trailer.
var crcTable = crc64.MakeTable(crc64.ECMA)

// Builder assembles an artifact: begin a section, append slabs, begin
// the next, then Finish. Sections are laid out in Begin order; encoders
// must iterate any map state in sorted key order so that encoding the
// same state twice yields byte-identical files.
type Builder struct {
	secs []builderSection
}

type builderSection struct {
	id  uint32
	buf []byte
}

// NewBuilder returns an empty artifact builder.
func NewBuilder() *Builder { return &Builder{} }

// Begin opens a new section; subsequent appends write into it. It
// panics on a duplicate id — section ids are the decoder's only lookup
// key, so a duplicate is always an encoder bug.
func (b *Builder) Begin(id uint32) {
	for _, s := range b.secs {
		if s.id == id {
			panic(fmt.Sprintf("artifact: duplicate section id %d", id))
		}
	}
	b.secs = append(b.secs, builderSection{id: id})
}

func (b *Builder) cur() *builderSection {
	if len(b.secs) == 0 {
		panic("artifact: append before Begin")
	}
	return &b.secs[len(b.secs)-1]
}

// Uint8 appends one byte.
func (b *Builder) Uint8(v uint8) {
	s := b.cur()
	s.buf = append(s.buf, v)
}

// Uint32 appends one 32-bit integer.
func (b *Builder) Uint32(v uint32) {
	s := b.cur()
	s.buf = binary.LittleEndian.AppendUint32(s.buf, v)
}

// Uint64 appends one 64-bit integer.
func (b *Builder) Uint64(v uint64) {
	s := b.cur()
	s.buf = binary.LittleEndian.AppendUint64(s.buf, v)
}

// Float64 appends one float64 by bit pattern.
func (b *Builder) Float64(v float64) { b.Uint64(math.Float64bits(v)) }

// Bytes appends a count-prefixed byte blob.
func (b *Builder) Bytes(p []byte) {
	b.Uint32(uint32(len(p)))
	s := b.cur()
	s.buf = append(s.buf, p...)
}

// String appends a count-prefixed UTF-8 string.
func (b *Builder) String(v string) {
	b.Uint32(uint32(len(v)))
	s := b.cur()
	s.buf = append(s.buf, v...)
}

// Uint8s appends a count-prefixed byte slab.
func (b *Builder) Uint8s(v []uint8) { b.Bytes(v) }

// Uint32s appends a count-prefixed slab of 32-bit integers.
func (b *Builder) Uint32s(v []uint32) {
	b.Uint32(uint32(len(v)))
	s := b.cur()
	for _, x := range v {
		s.buf = binary.LittleEndian.AppendUint32(s.buf, x)
	}
}

// Int32s appends a count-prefixed slab of signed 32-bit integers.
func (b *Builder) Int32s(v []int32) {
	b.Uint32(uint32(len(v)))
	s := b.cur()
	for _, x := range v {
		s.buf = binary.LittleEndian.AppendUint32(s.buf, uint32(x))
	}
}

// Runes appends a count-prefixed slab of runes (int32 code points).
func (b *Builder) Runes(v []rune) {
	b.Uint32(uint32(len(v)))
	s := b.cur()
	for _, x := range v {
		s.buf = binary.LittleEndian.AppendUint32(s.buf, uint32(x))
	}
}

// Uint64s appends a count-prefixed slab of 64-bit integers.
func (b *Builder) Uint64s(v []uint64) {
	b.Uint32(uint32(len(v)))
	s := b.cur()
	for _, x := range v {
		s.buf = binary.LittleEndian.AppendUint64(s.buf, x)
	}
}

// Float64s appends a count-prefixed slab of float64 bit patterns.
func (b *Builder) Float64s(v []float64) {
	b.Uint32(uint32(len(v)))
	s := b.cur()
	for _, x := range v {
		s.buf = binary.LittleEndian.AppendUint64(s.buf, math.Float64bits(x))
	}
}

// Finish lays the sections out after the header and table — each
// aligned to 8 bytes for mmap-friendly in-place reads — and returns the
// complete artifact with its checksum trailer.
func (b *Builder) Finish() []byte {
	tableLen := len(b.secs) * tableEntryLen
	off := headerLen + tableLen
	type span struct{ off, length int }
	spans := make([]span, len(b.secs))
	for i, s := range b.secs {
		off = align8(off)
		spans[i] = span{off: off, length: len(s.buf)}
		off += len(s.buf)
	}
	size := align8(off) + trailerLen

	out := make([]byte, size)
	copy(out, magic[:])
	binary.LittleEndian.PutUint16(out[4:], FormatVersion)
	out[6] = endianLittle
	out[7] = 0
	binary.LittleEndian.PutUint32(out[8:], uint32(len(b.secs)))
	binary.LittleEndian.PutUint64(out[12:], uint64(size))
	for i, s := range b.secs {
		e := headerLen + i*tableEntryLen
		binary.LittleEndian.PutUint32(out[e:], s.id)
		binary.LittleEndian.PutUint32(out[e+4:], 0)
		binary.LittleEndian.PutUint64(out[e+8:], uint64(spans[i].off))
		binary.LittleEndian.PutUint64(out[e+16:], uint64(spans[i].length))
		copy(out[spans[i].off:], s.buf)
	}
	sum := crc64.Checksum(out[:size-trailerLen], crcTable)
	binary.LittleEndian.PutUint64(out[size-trailerLen:], sum)
	return out
}

func align8(n int) int { return (n + 7) &^ 7 }

// Reader is a decoded artifact: the verified header plus the section
// table. Section payloads are not copied — cursors read the underlying
// byte slice in place, which is what makes an mmap-backed decode
// zero-copy until a consumer materializes a slab.
type Reader struct {
	data     []byte
	sections map[uint32]span
	checksum uint64
	version  uint16
}

type span struct{ off, length uint64 }

// Decode verifies the input (magic, version, declared size, checksum,
// section table) and returns a Reader over it. The input is retained,
// not copied; callers backing it with an mmap must keep the mapping
// alive for the Reader's lifetime.
func Decode(data []byte) (*Reader, error) {
	if len(data) < len(magic) {
		return nil, fmt.Errorf("%w: %d bytes", ErrTruncated, len(data))
	}
	if [4]byte(data[:4]) != magic {
		return nil, fmt.Errorf("%w: % x", ErrBadMagic, data[:4])
	}
	if len(data) < headerLen+trailerLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrTruncated, len(data))
	}
	version := binary.LittleEndian.Uint16(data[4:])
	if version != FormatVersion {
		return nil, fmt.Errorf("%w: got v%d, support v%d", ErrVersion, version, FormatVersion)
	}
	if data[6] != endianLittle {
		return nil, fmt.Errorf("%w: endianness marker %d", ErrCorrupt, data[6])
	}
	size := binary.LittleEndian.Uint64(data[12:])
	if size != uint64(len(data)) {
		return nil, fmt.Errorf("%w: declared %d bytes, have %d", ErrTruncated, size, len(data))
	}
	want := binary.LittleEndian.Uint64(data[len(data)-trailerLen:])
	got := crc64.Checksum(data[:len(data)-trailerLen], crcTable)
	if got != want {
		return nil, fmt.Errorf("%w: computed %016x, trailer %016x", ErrChecksum, got, want)
	}

	count := binary.LittleEndian.Uint32(data[8:])
	tableEnd := uint64(headerLen) + uint64(count)*tableEntryLen
	payloadEnd := uint64(len(data) - trailerLen)
	if tableEnd > payloadEnd {
		return nil, fmt.Errorf("%w: section table for %d entries exceeds file", ErrCorrupt, count)
	}
	r := &Reader{
		data:     data,
		sections: make(map[uint32]span, count),
		checksum: want,
		version:  version,
	}
	for i := uint32(0); i < count; i++ {
		e := headerLen + int(i)*tableEntryLen
		id := binary.LittleEndian.Uint32(data[e:])
		off := binary.LittleEndian.Uint64(data[e+8:])
		length := binary.LittleEndian.Uint64(data[e+16:])
		if off < tableEnd || off > payloadEnd || length > payloadEnd-off {
			return nil, fmt.Errorf("%w: section %d spans [%d, %d+%d) outside payload", ErrCorrupt, id, off, off, length)
		}
		if _, dup := r.sections[id]; dup {
			return nil, fmt.Errorf("%w: duplicate section id %d", ErrCorrupt, id)
		}
		r.sections[id] = span{off: off, length: length}
	}
	return r, nil
}

// Version returns the artifact's format version.
func (r *Reader) Version() uint16 { return r.version }

// Checksum returns the artifact's verified CRC-64 trailer.
func (r *Reader) Checksum() uint64 { return r.checksum }

// Size returns the artifact's total byte length.
func (r *Reader) Size() int { return len(r.data) }

// Section returns a cursor over the identified section's payload, or
// ok=false when the artifact does not carry it.
func (r *Reader) Section(id uint32) (*Cursor, bool) {
	s, ok := r.sections[id]
	if !ok {
		return nil, false
	}
	return &Cursor{data: r.data[s.off : s.off+s.length]}, true
}

// Cursor reads one section's slabs in sequence. Errors are sticky:
// after the first failed read every subsequent read returns zero values
// and Err reports the failure, so decoders can be written straight-line
// and check once at the end. All counts are validated against the bytes
// actually remaining before any allocation.
type Cursor struct {
	data []byte
	off  int
	err  error
}

// Err returns the first read failure, or nil.
func (c *Cursor) Err() error { return c.err }

// Remaining returns the unread byte count.
func (c *Cursor) Remaining() int { return len(c.data) - c.off }

// fail records the sticky error.
func (c *Cursor) fail(err error) { c.err = err }

// need checks that n more bytes exist.
func (c *Cursor) need(n int) bool {
	if c.err != nil {
		return false
	}
	if n < 0 || c.Remaining() < n {
		c.fail(fmt.Errorf("%w: need %d bytes, have %d", ErrTruncated, n, c.Remaining()))
		return false
	}
	return true
}

// Uint8 reads one byte.
func (c *Cursor) Uint8() uint8 {
	if !c.need(1) {
		return 0
	}
	v := c.data[c.off]
	c.off++
	return v
}

// Uint32 reads one 32-bit integer.
func (c *Cursor) Uint32() uint32 {
	if !c.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(c.data[c.off:])
	c.off += 4
	return v
}

// Uint64 reads one 64-bit integer.
func (c *Cursor) Uint64() uint64 {
	if !c.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(c.data[c.off:])
	c.off += 8
	return v
}

// Float64 reads one float64 bit pattern.
func (c *Cursor) Float64() float64 { return math.Float64frombits(c.Uint64()) }

// count reads a slab length prefix and validates it against the
// remaining bytes at elemSize bytes per element — the over-allocation
// guard: a corrupt count can never make the decoder allocate more than
// the input's own size.
func (c *Cursor) count(elemSize int) (int, bool) {
	n := int(c.Uint32())
	if c.err != nil {
		return 0, false
	}
	if n < 0 || c.Remaining() < n*elemSize {
		c.fail(fmt.Errorf("%w: slab of %d × %d bytes, %d remaining", ErrTruncated, n, elemSize, c.Remaining()))
		return 0, false
	}
	return n, true
}

// Bytes reads a count-prefixed blob, returning a subslice of the
// underlying data (no copy). Callers must treat it as read-only.
func (c *Cursor) Bytes() []byte {
	n, ok := c.count(1)
	if !ok {
		return nil
	}
	v := c.data[c.off : c.off+n : c.off+n]
	c.off += n
	return v
}

// String reads a count-prefixed UTF-8 string (one copy).
func (c *Cursor) String() string { return string(c.Bytes()) }

// Uint8s reads a count-prefixed byte slab (no copy; read-only).
func (c *Cursor) Uint8s() []uint8 { return c.Bytes() }

// Uint32s reads a count-prefixed slab of 32-bit integers.
func (c *Cursor) Uint32s() []uint32 {
	n, ok := c.count(4)
	if !ok {
		return nil
	}
	v := make([]uint32, n)
	for i := range v {
		v[i] = binary.LittleEndian.Uint32(c.data[c.off:])
		c.off += 4
	}
	return v
}

// Int32s reads a count-prefixed slab of signed 32-bit integers.
func (c *Cursor) Int32s() []int32 {
	n, ok := c.count(4)
	if !ok {
		return nil
	}
	v := make([]int32, n)
	for i := range v {
		v[i] = int32(binary.LittleEndian.Uint32(c.data[c.off:]))
		c.off += 4
	}
	return v
}

// Runes reads a count-prefixed slab of runes.
func (c *Cursor) Runes() []rune {
	n, ok := c.count(4)
	if !ok {
		return nil
	}
	v := make([]rune, n)
	for i := range v {
		v[i] = rune(binary.LittleEndian.Uint32(c.data[c.off:]))
		c.off += 4
	}
	return v
}

// Uint64s reads a count-prefixed slab of 64-bit integers.
func (c *Cursor) Uint64s() []uint64 {
	n, ok := c.count(8)
	if !ok {
		return nil
	}
	v := make([]uint64, n)
	for i := range v {
		v[i] = binary.LittleEndian.Uint64(c.data[c.off:])
		c.off += 8
	}
	return v
}

// Float64s reads a count-prefixed slab of float64 bit patterns.
func (c *Cursor) Float64s() []float64 {
	n, ok := c.count(8)
	if !ok {
		return nil
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(c.data[c.off:]))
		c.off += 8
	}
	return v
}

// Corruptf builds an ErrCorrupt-wrapping error for section decoders
// that find structurally impossible values behind a valid checksum.
func Corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}
