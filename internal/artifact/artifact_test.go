package artifact

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc64"
	"math"
	"testing"
)

// buildSample assembles a two-section artifact exercising every slab
// writer.
func buildSample() []byte {
	b := NewBuilder()
	b.Begin(SecMeta)
	b.Uint8(7)
	b.Uint32(42)
	b.Uint64(1 << 40)
	b.Float64(3.5)
	b.String("hello, artifact")
	b.Begin(SecColumns)
	b.Bytes([]byte{1, 2, 3})
	b.Uint8s([]uint8{9, 8})
	b.Uint32s([]uint32{10, 20, 30})
	b.Int32s([]int32{-1, 0, 5})
	b.Runes([]rune("héllo"))
	b.Uint64s([]uint64{math.MaxUint64})
	b.Float64s([]float64{0, -1.25, math.Inf(1)})
	return b.Finish()
}

func TestRoundTrip(t *testing.T) {
	data := buildSample()
	r, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if r.Version() != FormatVersion {
		t.Errorf("version = %d, want %d", r.Version(), FormatVersion)
	}
	if r.Size() != len(data) {
		t.Errorf("size = %d, want %d", r.Size(), len(data))
	}

	c, ok := r.Section(SecMeta)
	if !ok {
		t.Fatal("meta section missing")
	}
	if v := c.Uint8(); v != 7 {
		t.Errorf("Uint8 = %d", v)
	}
	if v := c.Uint32(); v != 42 {
		t.Errorf("Uint32 = %d", v)
	}
	if v := c.Uint64(); v != 1<<40 {
		t.Errorf("Uint64 = %d", v)
	}
	if v := c.Float64(); v != 3.5 {
		t.Errorf("Float64 = %v", v)
	}
	if v := c.String(); v != "hello, artifact" {
		t.Errorf("String = %q", v)
	}
	if c.Err() != nil {
		t.Fatalf("meta cursor: %v", c.Err())
	}
	if c.Remaining() != 0 {
		t.Errorf("meta has %d unread bytes", c.Remaining())
	}

	c, ok = r.Section(SecColumns)
	if !ok {
		t.Fatal("columns section missing")
	}
	if v := c.Bytes(); !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Errorf("Bytes = %v", v)
	}
	if v := c.Uint8s(); !bytes.Equal(v, []uint8{9, 8}) {
		t.Errorf("Uint8s = %v", v)
	}
	if v := c.Uint32s(); len(v) != 3 || v[2] != 30 {
		t.Errorf("Uint32s = %v", v)
	}
	if v := c.Int32s(); len(v) != 3 || v[0] != -1 || v[2] != 5 {
		t.Errorf("Int32s = %v", v)
	}
	if v := c.Runes(); string(v) != "héllo" {
		t.Errorf("Runes = %q", string(v))
	}
	if v := c.Uint64s(); len(v) != 1 || v[0] != math.MaxUint64 {
		t.Errorf("Uint64s = %v", v)
	}
	if v := c.Float64s(); len(v) != 3 || v[1] != -1.25 || !math.IsInf(v[2], 1) {
		t.Errorf("Float64s = %v", v)
	}
	if c.Err() != nil {
		t.Fatalf("columns cursor: %v", c.Err())
	}

	if _, ok := r.Section(SecSigma); ok {
		t.Error("absent section reported present")
	}
}

// TestDeterministicEncoding: the same build sequence yields the same
// bytes.
func TestDeterministicEncoding(t *testing.T) {
	if !bytes.Equal(buildSample(), buildSample()) {
		t.Fatal("two identical builds produced different bytes")
	}
}

// TestSectionAlignment: every section payload starts on an 8-byte
// boundary, the property that keeps the slabs directly addressable in
// an mmap.
func TestSectionAlignment(t *testing.T) {
	data := buildSample()
	count := binary.LittleEndian.Uint32(data[8:])
	for i := uint32(0); i < count; i++ {
		e := headerLen + int(i)*tableEntryLen
		off := binary.LittleEndian.Uint64(data[e+8:])
		if off%8 != 0 {
			t.Errorf("section %d at unaligned offset %d", i, off)
		}
	}
	if len(data)%8 != 0 {
		t.Errorf("total size %d not 8-byte aligned", len(data))
	}
}

// reseal recomputes the declared-size and checksum trailer after a
// test mutates the body, so the mutation reaches the layer under
// verification instead of tripping the checksum first.
func reseal(data []byte) []byte {
	binary.LittleEndian.PutUint64(data[12:], uint64(len(data)))
	sum := crc64.Checksum(data[:len(data)-trailerLen], crcTable)
	binary.LittleEndian.PutUint64(data[len(data)-trailerLen:], sum)
	return data
}

func TestDecodeTypedErrors(t *testing.T) {
	good := buildSample()
	cases := []struct {
		name string
		mut  func([]byte) []byte
		want error
	}{
		{"empty", func(d []byte) []byte { return nil }, ErrTruncated},
		{"short magic", func(d []byte) []byte { return d[:3] }, ErrTruncated},
		{"bad magic", func(d []byte) []byte { d[0] = 'X'; return d }, ErrBadMagic},
		{"header only", func(d []byte) []byte { return d[:headerLen-1] }, ErrTruncated},
		{"version skew", func(d []byte) []byte {
			binary.LittleEndian.PutUint16(d[4:], FormatVersion+1)
			return d
		}, ErrVersion},
		{"big endian", func(d []byte) []byte {
			d[6] = 2
			return reseal(d)
		}, ErrCorrupt},
		{"truncated tail", func(d []byte) []byte { return d[:len(d)-9] }, ErrTruncated},
		{"flipped payload bit", func(d []byte) []byte {
			d[headerLen+2*tableEntryLen+1] ^= 0x10
			return d
		}, ErrChecksum},
		{"flipped checksum bit", func(d []byte) []byte {
			d[len(d)-1] ^= 0x01
			return d
		}, ErrChecksum},
		{"section past payload", func(d []byte) []byte {
			binary.LittleEndian.PutUint64(d[headerLen+16:], uint64(len(d)))
			return reseal(d)
		}, ErrCorrupt},
		{"table past payload", func(d []byte) []byte {
			binary.LittleEndian.PutUint32(d[8:], 1<<20)
			return reseal(d)
		}, ErrCorrupt},
		{"duplicate section", func(d []byte) []byte {
			id := binary.LittleEndian.Uint32(d[headerLen:])
			binary.LittleEndian.PutUint32(d[headerLen+tableEntryLen:], id)
			return reseal(d)
		}, ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mut(append([]byte(nil), good...))
			_, err := Decode(data)
			if !errors.Is(err, tc.want) {
				t.Fatalf("Decode = %v, want %v", err, tc.want)
			}
		})
	}
}

// TestCursorOverAllocationGuard: a slab whose declared count exceeds
// the remaining bytes fails with ErrTruncated before any allocation of
// that size could happen.
func TestCursorOverAllocationGuard(t *testing.T) {
	b := NewBuilder()
	b.Begin(SecMeta)
	b.Uint32(0xFFFFFF00) // a count with no bytes behind it
	data := b.Finish()
	r, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := r.Section(SecMeta)
	if v := c.Uint64s(); v != nil {
		t.Errorf("Uint64s = %v, want nil", v)
	}
	if !errors.Is(c.Err(), ErrTruncated) {
		t.Errorf("Err = %v, want ErrTruncated", c.Err())
	}
}

// TestCursorStickyError: after the first failure every read returns
// zero values and the original error is preserved.
func TestCursorStickyError(t *testing.T) {
	b := NewBuilder()
	b.Begin(SecMeta)
	b.Uint8(1)
	data := b.Finish()
	r, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := r.Section(SecMeta)
	c.Uint8()
	if c.Uint64() != 0 || c.Err() == nil {
		t.Fatal("expected failure reading past the section")
	}
	first := c.Err()
	if c.Uint32() != 0 || c.String() != "" || c.Float64s() != nil {
		t.Error("reads after failure returned non-zero values")
	}
	if c.Err() != first {
		t.Errorf("sticky error replaced: %v -> %v", first, c.Err())
	}
}

// TestDuplicateBeginPanics: section ids are the decoder's lookup key,
// so the builder refuses duplicates loudly.
func TestDuplicateBeginPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Begin did not panic")
		}
	}()
	b := NewBuilder()
	b.Begin(SecMeta)
	b.Begin(SecMeta)
}
