package obs

// This file is the request-scoped telemetry layer: where metrics.go
// aggregates *how much* work the process did and trace.go records *which
// decision* one cell took, a span tree records *where the time of one
// request went* — the root HTTP request, the Impute run under it, every
// imputed cell, and the candidate_search / ranking / verify phases
// inside each cell, each with a start/end window and typed attributes
// (donor-pool size, candidate count, cache hit/miss deltas).
//
// Design rules, shared with the rest of the package:
//
//   - Zero external dependencies.
//   - The disabled path is free: a context without a trace yields the
//     zero Span, and every Span method starts with a nil-receiver check
//     before touching the clock — no allocation, no atomic RMW, one
//     predictable branch. TestSpanDisabledZeroAlloc pins this with
//     testing.AllocsPerRun.
//   - Bounded memory: a Trace caps its span count (excess children are
//     counted, not stored) and completed traces live in a fixed-size
//     ring that evicts oldest-first.
//   - Interoperable identity: ids follow the W3C Trace Context format,
//     so a `traceparent` header from an upstream proxy threads through
//     to the exported trees and back out in the response headers.

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// TraceID identifies one request across process boundaries (W3C
// trace-id: 16 bytes, rendered as 32 lowercase hex digits).
type TraceID [16]byte

// IsZero reports whether the id is the invalid all-zero id.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the id as 32 lowercase hex digits.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// SpanID identifies one span within a trace (W3C parent-id: 8 bytes,
// 16 lowercase hex digits).
type SpanID [8]byte

// IsZero reports whether the id is the invalid all-zero id.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String renders the id as 16 lowercase hex digits.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// SpanContext is the propagated identity of a span: the trace it
// belongs to and its own id — what a `traceparent` header carries.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	// Sampled is the W3C sampled flag (trace-flags bit 0).
	Sampled bool
}

// IsValid reports whether both ids are non-zero, per the W3C rules.
func (sc SpanContext) IsValid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// Traceparent renders the context as a W3C traceparent header value
// (version 00).
func (sc SpanContext) Traceparent() string {
	flags := "00"
	if sc.Sampled {
		flags = "01"
	}
	return "00-" + sc.TraceID.String() + "-" + sc.SpanID.String() + "-" + flags
}

// ParseTraceparent parses a W3C traceparent header value
// ("00-<32 hex>-<16 hex>-<2 hex>"). It returns ok=false on malformed
// input, unknown lengths, or the all-zero ids the spec forbids; callers
// then mint a fresh trace instead of propagating garbage.
func ParseTraceparent(s string) (SpanContext, bool) {
	var sc SpanContext
	// version "00" plus three dash-separated fields: 2+1+32+1+16+1+2.
	if len(s) != 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return sc, false
	}
	if s[0] != '0' || s[1] != '0' { // only version 00 is understood
		return sc, false
	}
	if _, err := hex.Decode(sc.TraceID[:], []byte(s[3:35])); err != nil {
		return sc, false
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(s[36:52])); err != nil {
		return sc, false
	}
	flags := s[53:55]
	if !isHexByte(flags[0]) || !isHexByte(flags[1]) {
		return sc, false
	}
	sc.Sampled = flags == "01"
	if !sc.IsValid() {
		return sc, false
	}
	return sc, true
}

func isHexByte(b byte) bool {
	return (b >= '0' && b <= '9') || (b >= 'a' && b <= 'f')
}

// attrKind discriminates the typed attribute payloads.
type attrKind uint8

const (
	attrInt attrKind = iota
	attrFloat
	attrStr
)

// Attr is one typed key/value attribute on a span. The three payload
// fields avoid interface boxing on the enabled path.
type Attr struct {
	Key  string
	kind attrKind
	i    int64
	f    float64
	s    string
}

// Value returns the attribute's payload as an any (for JSON export and
// tests).
func (a Attr) Value() any {
	switch a.kind {
	case attrFloat:
		return a.f
	case attrStr:
		return a.s
	default:
		return a.i
	}
}

// spanData is one span's record inside its trace's arena.
type spanData struct {
	name   string
	parent int32 // arena index of the parent, -1 for the root
	start  int64 // UnixNano
	end    int64 // UnixNano, 0 while open
	attrs  []Attr
}

// MaxSpansPerTrace bounds one request's span tree: a pathological
// request (thousands of cells, each with per-cluster children) cannot
// blow up memory. Children beyond the cap are counted, not stored.
const MaxSpansPerTrace = 4096

// Trace is one request's span collector: a mutex-guarded arena of
// spans sharing a TraceID. It is safe for concurrent use — parallel
// phases may open children from their own goroutines — and is pushed
// into its SpanRing exactly once, on Finish.
type Trace struct {
	mu      sync.Mutex
	traceID TraceID
	remote  SpanID // upstream parent span id, zero when the trace is local
	seed    uint64 // per-trace counter state for span-id derivation
	spans   []spanData
	dropped int
	ring    *SpanRing
	done    bool
}

// NewTrace opens a trace whose root span has the given name. A valid
// parent context links the root under the upstream span and reuses its
// TraceID; otherwise a fresh TraceID is minted.
func NewTrace(name string, parent SpanContext) *Trace {
	t := &Trace{seed: rand.Uint64() | 1}
	if parent.IsValid() {
		t.traceID = parent.TraceID
		t.remote = parent.SpanID
	} else {
		var id TraceID
		for id.IsZero() {
			hi, lo := rand.Uint64(), rand.Uint64()
			for i := 0; i < 8; i++ {
				id[i] = byte(hi >> (8 * i))
				id[8+i] = byte(lo >> (8 * i))
			}
		}
		t.traceID = id
	}
	t.spans = append(t.spans, spanData{name: name, parent: -1, start: time.Now().UnixNano()})
	return t
}

// spanIDOf derives span idx's id from the per-trace seed (splitmix64),
// so ids are unique within the trace without per-span entropy.
func (t *Trace) spanIDOf(idx int32) SpanID {
	z := t.seed + (uint64(idx)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	var id SpanID
	for i := 0; i < 8; i++ {
		id[i] = byte(z >> (8 * i))
	}
	if id.IsZero() {
		id[0] = 1
	}
	return id
}

// TraceID returns the trace's id.
func (t *Trace) TraceID() TraceID { return t.traceID }

// Context returns the propagated identity of the root span — what the
// response's traceparent header should carry.
func (t *Trace) Context() SpanContext {
	return SpanContext{TraceID: t.traceID, SpanID: t.spanIDOf(0), Sampled: true}
}

// Root returns the root span.
func (t *Trace) Root() Span { return Span{t: t, idx: 0} }

// Dropped returns how many spans the per-trace cap elided.
func (t *Trace) Dropped() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Len returns the number of retained spans.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Finish closes the root span (clamping any still-open children to the
// root's end) and pushes the completed trace into its ring. It is
// idempotent; only the first call publishes.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return
	}
	t.done = true
	now := time.Now().UnixNano()
	for i := range t.spans {
		if t.spans[i].end == 0 {
			t.spans[i].end = now
		}
	}
	ring := t.ring
	t.mu.Unlock()
	if ring != nil {
		ring.push(t)
	}
}

// Span is a lightweight handle into a Trace's arena. The zero Span is
// the disabled span: every method is an inert nil-check, so the hot
// paths thread Span values unconditionally. Copying a Span is cheap
// and safe.
type Span struct {
	t   *Trace
	idx int32
}

// Enabled reports whether the span records anything. Callers use it to
// skip attribute preparation (e.g. cache-stat deltas) when disabled.
func (s Span) Enabled() bool { return s.t != nil }

// Trace returns the owning trace, nil for the zero Span.
func (s Span) Trace() *Trace { return s.t }

// Child opens a sub-span. On the zero Span, or past the per-trace span
// cap, it returns the zero Span (the cap also counts the drop, so the
// exported tree discloses its own truncation).
func (s Span) Child(name string) Span {
	if s.t == nil {
		return Span{}
	}
	now := time.Now().UnixNano()
	t := s.t
	t.mu.Lock()
	if len(t.spans) >= MaxSpansPerTrace {
		t.dropped++
		t.mu.Unlock()
		return Span{}
	}
	idx := int32(len(t.spans))
	t.spans = append(t.spans, spanData{name: name, parent: s.idx, start: now})
	t.mu.Unlock()
	return Span{t: t, idx: idx}
}

// End closes the span. Closing an already-closed span is a no-op, so
// deferred Ends compose with early explicit ones.
func (s Span) End() {
	if s.t == nil {
		return
	}
	now := time.Now().UnixNano()
	s.t.mu.Lock()
	if s.t.spans[s.idx].end == 0 {
		s.t.spans[s.idx].end = now
	}
	s.t.mu.Unlock()
}

func (s Span) addAttr(a Attr) {
	s.t.mu.Lock()
	s.t.spans[s.idx].attrs = append(s.t.spans[s.idx].attrs, a)
	s.t.mu.Unlock()
}

// Int attaches an integer attribute. No-op on the zero Span.
func (s Span) Int(key string, v int64) {
	if s.t == nil {
		return
	}
	s.addAttr(Attr{Key: key, kind: attrInt, i: v})
}

// Float attaches a float attribute. No-op on the zero Span.
func (s Span) Float(key string, v float64) {
	if s.t == nil {
		return
	}
	s.addAttr(Attr{Key: key, kind: attrFloat, f: v})
}

// Str attaches a string attribute. No-op on the zero Span.
func (s Span) Str(key, v string) {
	if s.t == nil {
		return
	}
	s.addAttr(Attr{Key: key, kind: attrStr, s: v})
}

// SpanContext returns the span's propagated identity, ok=false for the
// zero Span.
func (s Span) SpanContext() (SpanContext, bool) {
	if s.t == nil {
		return SpanContext{}, false
	}
	return SpanContext{TraceID: s.t.traceID, SpanID: s.t.spanIDOf(s.idx), Sampled: true}, true
}

// ---- context plumbing ---------------------------------------------------

type spanCtxKey struct{}

// ContextWithSpan installs a span as the context's current span;
// children opened downstream (Session.Impute, discovery) nest under it.
func ContextWithSpan(ctx context.Context, s Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the context's current span, or the zero
// (disabled) Span when none was installed. The lookup does not
// allocate, so hot paths may call it per request without cost when
// telemetry is off.
func SpanFromContext(ctx context.Context) Span {
	s, _ := ctx.Value(spanCtxKey{}).(Span)
	return s
}

// StartRequest opens a request trace named `name` (optionally linked
// under an upstream traceparent), registers it with the ring, and
// returns a derived context carrying the root span. The caller must
// call Trace.Finish when the request completes; the finished tree then
// lands in the ring. A nil ring is valid — the tree is built and
// discarded — so the call sites need no conditionals.
func StartRequest(ctx context.Context, ring *SpanRing, name string, parent SpanContext) (context.Context, *Trace) {
	t := NewTrace(name, parent)
	t.ring = ring
	return ContextWithSpan(ctx, t.Root()), t
}

// ---- export -------------------------------------------------------------

// SpanNode is one span in the exported tree form.
type SpanNode struct {
	Name       string         `json:"name"`
	SpanID     string         `json:"span_id"`
	TraceID    string         `json:"trace_id,omitempty"` // root only
	ParentID   string         `json:"parent_id,omitempty"`
	StartNano  int64          `json:"start_unix_nano"`
	DurationUS float64        `json:"duration_us"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []*SpanNode    `json:"children,omitempty"`
	// Dropped, on the root, is how many spans the per-trace cap elided.
	Dropped int `json:"dropped_spans,omitempty"`
}

// Tree renders the trace as a nested tree rooted at the request span.
// Children appear in creation order.
func (t *Trace) Tree() *SpanNode {
	t.mu.Lock()
	defer t.mu.Unlock()
	nodes := make([]*SpanNode, len(t.spans))
	for i, sd := range t.spans {
		n := &SpanNode{
			Name:       sd.name,
			SpanID:     t.spanIDOf(int32(i)).String(),
			StartNano:  sd.start,
			DurationUS: float64(sd.end-sd.start) / 1e3,
		}
		if len(sd.attrs) > 0 {
			n.Attrs = make(map[string]any, len(sd.attrs))
			for _, a := range sd.attrs {
				n.Attrs[a.Key] = a.Value()
			}
		}
		nodes[i] = n
		if sd.parent < 0 {
			n.TraceID = t.traceID.String()
			if !t.remote.IsZero() {
				n.ParentID = t.remote.String()
			}
			n.Dropped = t.dropped
		} else {
			parent := nodes[sd.parent]
			n.ParentID = parent.SpanID
			parent.Children = append(parent.Children, n)
		}
	}
	return nodes[0]
}

// CheckWellFormed verifies the structural invariants the race harness
// asserts: the first span is the only root, every other span's parent
// precedes it, and every child's [start, end] window lies within its
// parent's. It returns the first violation found, nil when sound.
func (t *Trace) CheckWellFormed() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) == 0 {
		return fmt.Errorf("obs: trace %s has no spans", t.traceID)
	}
	for i, sd := range t.spans {
		if i == 0 {
			if sd.parent != -1 {
				return fmt.Errorf("obs: span 0 %q is not the root", sd.name)
			}
			continue
		}
		if sd.parent < 0 || int(sd.parent) >= i {
			return fmt.Errorf("obs: span %d %q has orphan parent %d", i, sd.name, sd.parent)
		}
		p := t.spans[sd.parent]
		if sd.end != 0 && sd.end < sd.start {
			return fmt.Errorf("obs: span %d %q ends before it starts", i, sd.name)
		}
		if sd.start < p.start {
			return fmt.Errorf("obs: span %d %q starts before its parent %q", i, sd.name, p.name)
		}
		if sd.end != 0 && p.end != 0 && sd.end > p.end {
			return fmt.Errorf("obs: span %d %q ends after its parent %q", i, sd.name, p.name)
		}
	}
	return nil
}

// spanRecord is the flat JSONL form: one span per line with explicit
// parent links, importable into any trace viewer.
type spanRecord struct {
	TraceID   string         `json:"trace_id"`
	SpanID    string         `json:"span_id"`
	ParentID  string         `json:"parent_id,omitempty"`
	Name      string         `json:"name"`
	StartNano int64          `json:"start_unix_nano"`
	EndNano   int64          `json:"end_unix_nano"`
	Attrs     map[string]any `json:"attrs,omitempty"`
}

// WriteJSONL exports the trace's spans, arena order, one per line.
func (t *Trace) WriteJSONL(w io.Writer) error {
	t.mu.Lock()
	records := make([]spanRecord, len(t.spans))
	for i, sd := range t.spans {
		r := spanRecord{
			TraceID:   t.traceID.String(),
			SpanID:    t.spanIDOf(int32(i)).String(),
			Name:      sd.name,
			StartNano: sd.start,
			EndNano:   sd.end,
		}
		if sd.parent >= 0 {
			r.ParentID = t.spanIDOf(sd.parent).String()
		} else if !t.remote.IsZero() {
			r.ParentID = t.remote.String()
		}
		if len(sd.attrs) > 0 {
			r.Attrs = make(map[string]any, len(sd.attrs))
			for _, a := range sd.attrs {
				r.Attrs[a.Key] = a.Value()
			}
		}
		records[i] = r
	}
	t.mu.Unlock()
	for _, r := range records {
		doc, err := json.Marshal(r)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(doc, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// ---- the ring -----------------------------------------------------------

// DefaultSpanTraces is the SpanRing capacity when NewSpanRing gets <= 0.
const DefaultSpanTraces = 64

// SpanRing retains the last N completed request traces. When full, the
// oldest trace is evicted, so a long-lived server always holds the most
// recent requests. All methods are safe for concurrent use.
type SpanRing struct {
	mu      sync.Mutex
	traces  []*Trace
	start   int
	count   int
	evicted uint64
}

// NewSpanRing returns a ring retaining up to capacity traces (<= 0
// means DefaultSpanTraces).
func NewSpanRing(capacity int) *SpanRing {
	if capacity <= 0 {
		capacity = DefaultSpanTraces
	}
	return &SpanRing{traces: make([]*Trace, capacity)}
}

func (r *SpanRing) push(t *Trace) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.count < len(r.traces) {
		r.traces[(r.start+r.count)%len(r.traces)] = t
		r.count++
		return
	}
	r.traces[r.start] = t
	r.start = (r.start + 1) % len(r.traces)
	r.evicted++
}

// Len returns the number of retained traces.
func (r *SpanRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Evicted returns how many traces the ring has dropped.
func (r *SpanRing) Evicted() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.evicted
}

// Last returns the most recently finished trace, nil when empty.
func (r *SpanRing) Last() *Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.count == 0 {
		return nil
	}
	return r.traces[(r.start+r.count-1)%len(r.traces)]
}

// Traces returns the retained traces, oldest first.
func (r *SpanRing) Traces() []*Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Trace, 0, r.count)
	for i := 0; i < r.count; i++ {
		out = append(out, r.traces[(r.start+i)%len(r.traces)])
	}
	return out
}

// WriteJSONL exports every retained trace, oldest first, one span per
// line.
func (r *SpanRing) WriteJSONL(w io.Writer) error {
	for _, t := range r.Traces() {
		if err := t.WriteJSONL(w); err != nil {
			return err
		}
	}
	return nil
}

// SpansHandler serves the ring's retained span trees as a JSON array
// (oldest first) — the `/debug/spans` endpoint of `renuver serve`. The
// `n` query parameter limits the response to the newest n trees. A nil
// ring yields 404s so the endpoint can be mounted unconditionally.
func SpansHandler(r *SpanRing) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if r == nil {
			http.Error(w, "span telemetry disabled; restart with -span-ring > 0", http.StatusNotFound)
			return
		}
		traces := r.Traces()
		if nStr := req.URL.Query().Get("n"); nStr != "" {
			n, err := strconv.Atoi(nStr)
			if err != nil || n < 0 {
				http.Error(w, "n must be a non-negative integer", http.StatusBadRequest)
				return
			}
			if n < len(traces) {
				traces = traces[len(traces)-n:]
			}
		}
		trees := make([]*SpanNode, len(traces))
		for i, t := range traces {
			trees[i] = t.Tree()
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(trees)
	})
}
