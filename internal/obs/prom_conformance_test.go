package obs

import (
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// promFamily is one metric family reconstructed from the exposition.
type promFamily struct {
	help    string
	typ     string
	samples int
}

var promSampleRe = regexp.MustCompile(
	`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*,?\})? (-?[0-9.eE+]+|\+Inf|NaN)$`)

// parsePromExposition is a strict format parser: every line must be a
// well-formed HELP, TYPE, or sample line; HELP/TYPE must precede their
// family's samples and appear exactly once; every sample must belong to
// a declared family (histogram samples via the _bucket/_sum/_count
// suffixes, counters via _total).
func parsePromExposition(t *testing.T, out string) map[string]*promFamily {
	t.Helper()
	families := map[string]*promFamily{}
	owner := func(name string) *promFamily {
		if f, ok := families[name]; ok {
			return f
		}
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(name, suffix); ok {
				if f, ok := families[base]; ok && f.typ == "histogram" {
					return f
				}
			}
		}
		return nil
	}
	for ln, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || help == "" {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			if _, dup := families[name]; dup {
				t.Fatalf("line %d: duplicate HELP for %s", ln+1, name)
			}
			families[name] = &promFamily{help: help}
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			f, declared := families[name]
			if !declared {
				t.Fatalf("line %d: TYPE for %s precedes its HELP", ln+1, name)
			}
			if f.typ != "" {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
				f.typ = typ
			default:
				t.Fatalf("line %d: unknown type %q", ln+1, typ)
			}
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unknown comment %q", ln+1, line)
		default:
			match := promSampleRe.FindStringSubmatch(line)
			if match == nil {
				t.Fatalf("line %d: malformed sample %q", ln+1, line)
			}
			name := match[1]
			f := owner(name)
			if f == nil {
				t.Fatalf("line %d: sample %s has no declared family", ln+1, name)
			}
			if f.typ == "" {
				t.Fatalf("line %d: sample %s precedes its TYPE", ln+1, name)
			}
			if f.typ == "counter" && !strings.HasSuffix(name, "_total") {
				t.Fatalf("line %d: counter sample %s does not end in _total", ln+1, name)
			}
			f.samples++
		}
	}
	for name, f := range families {
		if f.typ == "" {
			t.Fatalf("family %s has HELP but no TYPE", name)
		}
		if f.samples == 0 {
			t.Fatalf("family %s declared but has no samples", name)
		}
	}
	return families
}

// TestPrometheusConformance scrapes a fully loaded registry — core
// metrics plus every collector kind — and strict-parses the entire
// output.
func TestPrometheusConformance(t *testing.T) {
	reg, vec := testRegistry()
	m := reg.Metrics()
	m.Add(CtrImputations, 3)
	m.Time(PhaseVerify, 2*time.Millisecond)
	m.Observe(HistImputeMicros, 1234)
	m.Observe(HistServeQueueWaitMicros, 55)
	vec.ObserveLabel("v1/impute", 500)
	vec.ObserveLabel("v1/impute", 50_000)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	families := parsePromExposition(t, buf.String())

	// Every enum metric family must be declared.
	for c := 0; c < numCounters; c++ {
		name := promName(Counter(c).String()) + "_total"
		if f := families[name]; f == nil || f.typ != "counter" {
			t.Errorf("counter family %s missing or mistyped", name)
		}
	}
	for h := 0; h < numHists; h++ {
		name := promName(Hist(h).String())
		if f := families[name]; f == nil || f.typ != "histogram" {
			t.Errorf("histogram family %s missing or mistyped", name)
		}
	}
	for _, name := range []string{"renuver_phase_seconds_total", "renuver_phase_events_total",
		"renuver_http_request_micros", "renuver_build_info",
		"renuver_engine_cache_shard_hits_total", "renuver_engine_cache_shard_merges_total",
		"renuver_donor_shard_scans_total", "renuver_donor_shard_donors_total",
		"renuver_donor_shard_candidates_total"} {
		if families[name] == nil {
			t.Errorf("family %s missing", name)
		}
	}

	// Histogram buckets must be cumulative and end at +Inf == _count.
	checkHistogram(t, buf.String(), "renuver_http_request_micros", `route="v1/impute",`)
	checkHistogram(t, buf.String(), "renuver_impute_micros", "")
}

// checkHistogram asserts the le buckets of one histogram series are
// monotonically non-decreasing and that the +Inf bucket equals _count.
func checkHistogram(t *testing.T, out, name, labels string) {
	t.Helper()
	var prev, inf, count int64 = -1, -1, -1
	sawInf := false
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, name+"_bucket{"+labels+"le=") {
			v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			if err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			if v < prev {
				t.Fatalf("%s buckets not cumulative at %q", name, line)
			}
			prev = v
			if strings.Contains(line, `le="+Inf"`) {
				inf, sawInf = v, true
			}
		}
		countPrefix := name + "_count"
		if labels != "" {
			countPrefix += "{" + strings.TrimSuffix(labels, ",") + "}"
		}
		if strings.HasPrefix(line, countPrefix+" ") {
			v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
			if err != nil {
				t.Fatalf("bad count line %q: %v", line, err)
			}
			count = v
		}
	}
	if !sawInf {
		t.Fatalf("%s has no +Inf bucket", name)
	}
	if inf != count {
		t.Fatalf("%s +Inf bucket %d != count %d", name, inf, count)
	}
}
