package obs

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestWritePrometheus(t *testing.T) {
	m := NewMetrics()
	m.Add(CtrImputations, 3)
	m.Add(CtrEngineCacheHits, 7)
	m.Add(CtrEngineCacheMisses, 2)
	m.Add(CtrEngineIndexProbes, 5)
	m.Time(PhaseVerify, 1500*time.Microsecond)
	m.Observe(HistAttemptsPerImputation, 1)
	m.Observe(HistAttemptsPerImputation, 4)

	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		"# TYPE renuver_imputations_total counter",
		"renuver_imputations_total 3",
		"# TYPE renuver_engine_cache_hits_total counter",
		"renuver_engine_cache_hits_total 7",
		"renuver_engine_cache_misses_total 2",
		"renuver_engine_index_probes_total 5",
		`renuver_phase_seconds_total{phase="verify"} 0.0015`,
		`renuver_phase_events_total{phase="verify"} 1`,
		"# TYPE renuver_attempts_per_imputation histogram",
		`renuver_attempts_per_imputation_bucket{le="1"} 1`,
		`renuver_attempts_per_imputation_bucket{le="5"} 2`,
		`renuver_attempts_per_imputation_bucket{le="+Inf"} 2`,
		"renuver_attempts_per_imputation_sum 5",
		"renuver_attempts_per_imputation_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Buckets must be cumulative: le="2" includes the le="1" sample.
	if !strings.Contains(out, `renuver_attempts_per_imputation_bucket{le="2"} 1`) {
		t.Errorf("le buckets not cumulative:\n%s", out)
	}
}

func TestMetricsHandlerContentNegotiation(t *testing.T) {
	m := NewMetrics()
	m.Add(CtrImputations, 1)
	h := Handler(m)

	// Default: JSON snapshot.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("default Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), `"counters"`) {
		t.Errorf("default body not the JSON snapshot: %s", rec.Body.String())
	}

	// Prometheus scrape: text exposition.
	req := httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "text/plain;version=0.0.4;q=0.5,*/*;q=0.1")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); ct != PrometheusContentType {
		t.Errorf("negotiated Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "renuver_imputations_total 1") {
		t.Errorf("negotiated body not exposition format: %s", rec.Body.String())
	}

	// Explicit JSON preference wins even alongside text/plain.
	req = httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "application/json, text/plain")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if !strings.Contains(rec.Header().Get("Content-Type"), "application/json") {
		t.Errorf("JSON-first Accept served %q", rec.Header().Get("Content-Type"))
	}
}
